package streams

import (
	"io"
	"time"

	"streams/internal/pe"
	"streams/internal/spl"
)

// SPLOptions configures mini-SPL compilation.
type SPLOptions struct {
	// Main names the main composite (default "Main", or the only one).
	Main string
	// ReaderFor opens FileSource inputs; nil uses os.Open.
	ReaderFor func(file string) (io.ReadCloser, error)
	// WriterFor opens FileSink outputs; nil uses os.Create.
	WriterFor func(file string) (io.WriteCloser, error)
}

// SPLProgram is a compiled mini-SPL program: a fused stream graph plus
// the program's submission-time directives.
type SPLProgram struct {
	compiled *spl.Compiled
}

// CompileSPL compiles a mini-SPL source file (see internal/spl for the
// supported subset, which covers the paper's Figure 1).
func CompileSPL(src string, opts SPLOptions) (*SPLProgram, error) {
	c, err := spl.Compile(src, spl.Options{
		Main:      opts.Main,
		ReaderFor: opts.ReaderFor,
		WriterFor: opts.WriterFor,
	})
	if err != nil {
		return nil, err
	}
	return &SPLProgram{compiled: c}, nil
}

// Graph returns the lowered stream graph.
func (p *SPLProgram) Graph() *Graph { return p.compiled.Graph }

// Threading returns the @threading model directive and thread count; ok
// is false when the program carries no annotation.
func (p *SPLProgram) Threading() (model Model, threads int, ok bool) {
	switch p.compiled.Threading {
	case "manual":
		return ModelManual, p.compiled.Threads, true
	case "dedicated":
		return ModelDedicated, p.compiled.Threads, true
	case "dynamic":
		return ModelDynamic, p.compiled.Threads, true
	default:
		return ModelDynamic, 0, false
	}
}

// SinkCounts returns, per FileSink alias, the number of tuples written
// so far.
func (p *SPLProgram) SinkCounts() map[string]uint64 {
	out := make(map[string]uint64, len(p.compiled.Sinks))
	for name, s := range p.compiled.Sinks {
		out[name] = s.Count()
	}
	return out
}

// Run starts the compiled program. Zero-value RunConfig fields default
// to the program's own @threading annotation.
func (p *SPLProgram) Run(cfg RunConfig) (*Job, error) {
	if model, threads, ok := p.Threading(); ok {
		if cfg.Model == pe.Dynamic && !cfg.Elastic && cfg.Threads == 0 {
			cfg.Model = model
		}
		if cfg.Threads == 0 && threads > 0 {
			cfg.Threads = threads
		}
	}
	if cfg.AdaptPeriod == 0 {
		cfg.AdaptPeriod = 10 * time.Second
	}
	return RunGraph(p.compiled.Graph, cfg)
}
