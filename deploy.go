package streams

import (
	"streams/internal/fuse"
	"streams/internal/pe"
)

// Deployment is a multi-PE execution of one topology: operators are
// fused into `parts` processing elements and streams crossing PE
// boundaries travel over loopback TCP, the way Streams deploys
// applications across hosts.
type Deployment struct {
	d *fuse.Deployment
}

// Deploy partitions the topology into parts PEs (balanced contiguous
// blocks of a topological order) and starts nothing yet; call Start.
// Boundary streams carry only tuple payload words — keep Ref-payload
// edges inside one PE (see internal/xport).
func Deploy(t *Topology, parts int, cfg RunConfig) (*Deployment, error) {
	g, err := t.Build()
	if err != nil {
		return nil, err
	}
	d, err := fuse.Plan(g, parts, pe.Config{
		Model:       cfg.Model,
		Threads:     cfg.Threads,
		MaxThreads:  cfg.MaxThreads,
		AdaptPeriod: cfg.AdaptPeriod,
		QueueCap:    cfg.QueueCap,
	})
	if err != nil {
		return nil, err
	}
	return &Deployment{d: d}, nil
}

// Start launches every PE.
func (d *Deployment) Start() error { return d.d.Start() }

// Wait drains the deployment front to back (bounded sources).
func (d *Deployment) Wait() { d.d.Wait() }

// Stop ends an unbounded run and drains in-flight tuples.
func (d *Deployment) Stop() { d.d.Stop() }

// Err returns the first boundary-transport error, if any.
func (d *Deployment) Err() error { return d.d.Err() }

// PEs returns the number of processing elements in the deployment.
func (d *Deployment) PEs() int { return len(d.d.PEs) }
