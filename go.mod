module streams

go 1.22
