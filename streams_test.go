package streams_test

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"streams"
)

func pipeline(t *testing.T, limit uint64, depth int) (*streams.Topology, *streams.Sink) {
	t.Helper()
	top := streams.NewTopology()
	src := top.Add(&streams.Generator{Limit: limit}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		w := top.Add(&streams.Worker{Cost: 10}, 1, 1)
		top.Connect(prev, 0, w, 0)
		prev = w
	}
	snk := &streams.Sink{}
	out := top.Add(snk, 1, 0)
	top.Connect(prev, 0, out, 0)
	return top, snk
}

func TestRunDefaultsToDynamic(t *testing.T) {
	top, snk := pipeline(t, 5000, 5)
	job, err := streams.Run(top, streams.RunConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	if snk.Count() != 5000 {
		t.Fatalf("sink saw %d", snk.Count())
	}
	if job.SinkDelivered() != 5000 {
		t.Fatalf("SinkDelivered = %d", job.SinkDelivered())
	}
	if job.Executed() != 5000*6 {
		t.Fatalf("Executed = %d", job.Executed())
	}
}

func TestRunAllModels(t *testing.T) {
	for _, m := range []streams.Model{streams.ModelManual, streams.ModelDedicated, streams.ModelDynamic} {
		top, snk := pipeline(t, 2000, 3)
		job, err := streams.Run(top, streams.RunConfig{Model: m, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		job.Wait()
		if snk.Count() != 2000 {
			t.Fatalf("%v: sink saw %d", m, snk.Count())
		}
	}
}

func TestTopologyBuildOnce(t *testing.T) {
	top, _ := pipeline(t, 1, 1)
	if _, err := top.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := top.Build(); err == nil {
		t.Fatal("second Build accepted")
	}
}

func TestRunRejectsBadTopology(t *testing.T) {
	top := streams.NewTopology()
	top.Add(&streams.Generator{}, 0, 1) // dangling output
	if _, err := streams.Run(top, streams.RunConfig{}); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestJobStopUnbounded(t *testing.T) {
	top, snk := pipeline(t, 0, 3)
	job, err := streams.Run(top, streams.RunConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for snk.Count() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("no flow")
		}
		time.Sleep(time.Millisecond)
	}
	job.Stop()
	select {
	case <-job.Done():
	default:
		t.Fatal("Done not closed after Stop")
	}
}

func TestElasticTraceCallback(t *testing.T) {
	top, _ := pipeline(t, 0, 4)
	var mu sync.Mutex
	n := 0
	job, err := streams.Run(top, streams.RunConfig{
		Elastic:     true,
		MaxThreads:  2,
		AdaptPeriod: 20 * time.Millisecond,
		CPUUsage:    func() (float64, error) { return 0.1, nil },
		Trace: func(s streams.Sample) {
			mu.Lock()
			n++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		enough := n >= 3
		mu.Unlock()
		if enough {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no trace samples")
		}
		time.Sleep(5 * time.Millisecond)
	}
	job.Stop()
	if job.Level() < 1 {
		t.Fatalf("Level = %d", job.Level())
	}
}

func TestNewDataHelper(t *testing.T) {
	tp := streams.NewData(7, 8)
	if tp.Words[0] != 7 || tp.Words[1] != 8 {
		t.Fatalf("NewData payload %v", tp.Words)
	}
}

const apiSPL = `
@threading(model=manual)
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 100; }
    stream<int64 i> E = Filter(N) { param filter: i % 2 == 0; }
    () as Out = FileSink(E) { param file: "evens"; }
}
`

type discardCloser struct{ strings.Builder }

func (d *discardCloser) Close() error { return nil }

func TestCompileSPLAndRun(t *testing.T) {
	prog, err := streams.CompileSPL(apiSPL, streams.SPLOptions{
		WriterFor: func(string) (io.WriteCloser, error) { return &discardCloser{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	model, threads, ok := prog.Threading()
	if !ok || model != streams.ModelManual || threads != 0 {
		t.Fatalf("Threading() = %v, %d, %v", model, threads, ok)
	}
	if prog.Graph() == nil {
		t.Fatal("nil graph")
	}
	job, err := prog.Run(streams.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	if got := prog.SinkCounts()["Out"]; got != 50 {
		t.Fatalf("SPL sink wrote %d, want 50", got)
	}
}

func TestCompileSPLError(t *testing.T) {
	if _, err := streams.CompileSPL("not spl", streams.SPLOptions{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDeployAcrossPEs(t *testing.T) {
	const n = 6000
	top, snk := pipeline(t, n, 8)
	d, err := streams.Deploy(top, 3, streams.RunConfig{Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.PEs() != 3 {
		t.Fatalf("PEs() = %d, want 3", d.PEs())
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { d.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deployment did not drain")
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != n {
		t.Fatalf("sink saw %d of %d tuples", snk.Count(), n)
	}
}
