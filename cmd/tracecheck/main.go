// Command tracecheck validates a Chrome trace_event JSON file of the
// shape streamsim's -trace flag (and /debugz/trace) emits, so CI can
// prove a trace loads in chrome://tracing before anyone opens it.
//
//	tracecheck [-strict] [-require kind,kind,...] trace.json
//
// It checks the document structure (a traceEvents array of objects with
// name/ph/ts/pid/tid, a known phase, non-negative timestamps, and a
// non-negative dur on complete events), prints a per-event-name tally,
// and — with -require — fails unless every named event kind appears at
// least once. With -strict it additionally fails on any event kind the
// runtime's exporter does not emit, so a schema drift between exporter
// and checker breaks CI instead of silently passing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"streams/internal/trace"
)

// event is one trace_event record; pointers distinguish absent fields
// from zero values.
type event struct {
	Name *string        `json:"name"`
	Ph   *string        `json:"ph"`
	TS   *float64       `json:"ts"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

// knownPhases is the set of trace_event phase codes the exporter emits:
// complete spans, instants, and metadata.
var knownPhases = map[string]bool{"X": true, "i": true, "M": true}

// chainStopReasons is the closed set of fall-back reasons the exporter
// writes on chain-stop instants (trace.ChainStopReason).
var chainStopReasons = map[string]bool{
	"depth": true, "budget": true, "lock": true, "occupied": true, "halt": true,
}

// flightRecReasons is the closed set of trigger names the flight
// recorder writes on flightrec-dump instants, derived from the trace
// package's own reason table so the two cannot drift.
var flightRecReasons = func() map[string]bool {
	m := map[string]bool{}
	for _, c := range []int32{
		trace.FlightRecQuarantine, trace.FlightRecWatchdog,
		trace.FlightRecShutdown, trace.FlightRecOverload, trace.FlightRecManual,
	} {
		m[trace.FlightRecReason(c)] = true
	}
	return m
}()

// knownNames is every event name the exporter can emit: the trace
// kinds plus the drain/park spans the exporter synthesizes from
// start/end pairs. -strict fails on anything else.
var knownNames = func() map[string]bool {
	m := map[string]bool{"drain": true, "park": true}
	for _, n := range trace.KindNames() {
		m[n] = true
	}
	return m
}()

// checkArgs validates the argument payload of the instants with a
// typed schema: a chain link must carry its 1-based depth and a
// non-negative port, a chain-stop must name a known fall-back reason,
// a steal must carry victim/port and a distance class in [0, 2], a
// relax-level must carry a width of at least 1, a fair-claim a
// non-negative wait, a vm-fuse a fused segment count of at least 2
// on a non-negative port, and a vm-vec (or vm-vec-abort) a vectorized
// batch of at least one row. Any other event name passes through
// untouched.
func checkArgs(e event) error {
	num := func(key string, min float64) (float64, error) {
		v, ok := e.Args[key]
		if !ok {
			return 0, fmt.Errorf("missing arg %q", key)
		}
		f, ok := v.(float64)
		if !ok {
			return 0, fmt.Errorf("arg %q is %T, want number", key, v)
		}
		if f < min {
			return 0, fmt.Errorf("arg %q = %v, want >= %v", key, f, min)
		}
		return f, nil
	}
	switch *e.Name {
	case "chain":
		if _, err := num("depth", 1); err != nil {
			return err
		}
		if _, err := num("port", 0); err != nil {
			return err
		}
	case "chain-stop":
		v, ok := e.Args["reason"]
		if !ok {
			return fmt.Errorf("missing arg %q", "reason")
		}
		r, ok := v.(string)
		if !ok || !chainStopReasons[r] {
			return fmt.Errorf("arg \"reason\" = %v, want one of depth/budget/lock/occupied/halt", v)
		}
		if _, err := num("port", 0); err != nil {
			return err
		}
	case "steal":
		if _, err := num("victim", 0); err != nil {
			return err
		}
		if _, err := num("port", 0); err != nil {
			return err
		}
		d, err := num("dist", 0)
		if err != nil {
			return err
		}
		if d > 2 {
			return fmt.Errorf("arg \"dist\" = %v, want a distance class in [0, 2]", d)
		}
	case "relax-level":
		if _, err := num("width", 1); err != nil {
			return err
		}
		if _, err := num("rate", 0); err != nil {
			return err
		}
	case "fair-claim":
		if _, err := num("port", 0); err != nil {
			return err
		}
		if _, err := num("wait_ns", 0); err != nil {
			return err
		}
	case "vm-fuse":
		if _, err := num("segs", 2); err != nil {
			return err
		}
		if _, err := num("port", 0); err != nil {
			return err
		}
	case "vm-vec", "vm-vec-abort":
		if _, err := num("rows", 1); err != nil {
			return err
		}
		if _, err := num("port", 0); err != nil {
			return err
		}
	case "admit", "shed", "throttle":
		if _, err := num("tenant", 0); err != nil {
			return err
		}
		if _, err := num("count", 1); err != nil {
			return err
		}
	case "bp-sample":
		// port is -1 when every queue was empty at the sample.
		if _, err := num("port", -1); err != nil {
			return err
		}
		if _, err := num("occ", 0); err != nil {
			return err
		}
	case "flightrec-dump":
		v, ok := e.Args["reason"]
		if !ok {
			return fmt.Errorf("missing arg %q", "reason")
		}
		r, ok := v.(string)
		if !ok || !flightRecReasons[r] {
			return fmt.Errorf("arg \"reason\" = %v, want a flight-recorder trigger name", v)
		}
		if _, err := num("samples", 0); err != nil {
			return err
		}
	}
	return nil
}

func check(path string, require []string, strict bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("%s: no traceEvents array", path)
	}

	counts := map[string]int{}
	for i, e := range doc.TraceEvents {
		switch {
		case e.Name == nil || *e.Name == "":
			return fmt.Errorf("%s: event %d has no name", path, i)
		case e.Ph == nil:
			return fmt.Errorf("%s: event %d (%s) has no ph", path, i, *e.Name)
		case !knownPhases[*e.Ph]:
			return fmt.Errorf("%s: event %d (%s) has unknown phase %q", path, i, *e.Name, *e.Ph)
		case e.PID == nil || e.TID == nil:
			return fmt.Errorf("%s: event %d (%s) missing pid/tid", path, i, *e.Name)
		}
		if *e.Ph == "M" {
			continue // metadata records carry no timestamp
		}
		if strict && !knownNames[*e.Name] {
			return fmt.Errorf("%s: event %d has unknown kind %q (-strict)", path, i, *e.Name)
		}
		switch {
		case e.TS == nil || *e.TS < 0:
			return fmt.Errorf("%s: event %d (%s) has bad ts", path, i, *e.Name)
		case *e.Ph == "X" && (e.Dur == nil || *e.Dur < 0):
			return fmt.Errorf("%s: event %d (%s) is a complete event with bad dur", path, i, *e.Name)
		}
		if err := checkArgs(e); err != nil {
			return fmt.Errorf("%s: event %d (%s): %w", path, i, *e.Name, err)
		}
		counts[*e.Name]++
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d events ok\n", path, len(doc.TraceEvents))
	for _, n := range names {
		fmt.Printf("  %-16s %d\n", n, counts[n])
	}

	var missing []string
	for _, k := range require {
		if counts[k] == 0 {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: required event kinds missing: %s", path, strings.Join(missing, ", "))
	}
	return nil
}

func main() {
	requireFlag := flag.String("require", "", "comma-separated event names that must each appear at least once")
	strict := flag.Bool("strict", false, "fail on event kinds the runtime's exporter does not emit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-strict] [-require kind,...] trace.json")
		os.Exit(2)
	}
	var require []string
	if *requireFlag != "" {
		for _, k := range strings.Split(*requireFlag, ",") {
			if k = strings.TrimSpace(k); k != "" {
				require = append(require, k)
			}
		}
	}
	if err := check(flag.Arg(0), require, *strict); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}
