package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streams/internal/trace"
)

func writeFile(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckValid(t *testing.T) {
	p := writeFile(t, "ok.json", `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"x"}},
		{"name":"drain","ph":"X","ts":1.5,"dur":2.0,"pid":1,"tid":0},
		{"name":"steal","ph":"i","ts":3.0,"pid":1,"tid":1,"s":"t","args":{"victim":0,"port":4,"dist":1}},
		{"name":"relax-level","ph":"i","ts":4.0,"pid":1,"tid":1,"s":"t","args":{"width":2,"rate":80}},
		{"name":"fair-claim","ph":"i","ts":5.0,"pid":1,"tid":1,"s":"t","args":{"port":4,"wait_ns":1200}}
	]}`)
	if err := check(p, []string{"steal", "drain", "relax-level", "fair-claim"}, false); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRequireMissing(t *testing.T) {
	p := writeFile(t, "m.json", `{"traceEvents":[
		{"name":"steal","ph":"i","ts":1,"pid":1,"tid":0,"args":{"victim":1,"port":2,"dist":0}}
	]}`)
	err := check(p, []string{"steal", "park"}, false)
	if err == nil || !strings.Contains(err.Error(), "park") {
		t.Fatalf("err = %v, want missing park", err)
	}
}

func TestCheckMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":    `{`,
		"no array":    `{"displayTimeUnit":"ms"}`,
		"no name":     `{"traceEvents":[{"ph":"i","ts":1,"pid":1,"tid":0}]}`,
		"bad phase":   `{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":1,"tid":0}]}`,
		"no pid":      `{"traceEvents":[{"name":"a","ph":"i","ts":1,"tid":0}]}`,
		"negative ts": `{"traceEvents":[{"name":"a","ph":"i","ts":-1,"pid":1,"tid":0}]}`,
		"X no dur":    `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":0}]}`,

		// Inline-chain instants carry a validated payload: a chain link
		// needs a 1-based depth, a chain-stop a known fall-back reason.
		"chain no args":      `{"traceEvents":[{"name":"chain","ph":"i","ts":1,"pid":1,"tid":0}]}`,
		"chain depth 0":      `{"traceEvents":[{"name":"chain","ph":"i","ts":1,"pid":1,"tid":0,"args":{"depth":0,"port":2}}]}`,
		"chain no port":      `{"traceEvents":[{"name":"chain","ph":"i","ts":1,"pid":1,"tid":0,"args":{"depth":1}}]}`,
		"chain bad depth":    `{"traceEvents":[{"name":"chain","ph":"i","ts":1,"pid":1,"tid":0,"args":{"depth":"x","port":2}}]}`,
		"stop no reason":     `{"traceEvents":[{"name":"chain-stop","ph":"i","ts":1,"pid":1,"tid":0,"args":{"port":2}}]}`,
		"stop bad reason":    `{"traceEvents":[{"name":"chain-stop","ph":"i","ts":1,"pid":1,"tid":0,"args":{"reason":"tired","port":2}}]}`,
		"stop numeric code":  `{"traceEvents":[{"name":"chain-stop","ph":"i","ts":1,"pid":1,"tid":0,"args":{"reason":3,"port":2}}]}`,
		"stop negative port": `{"traceEvents":[{"name":"chain-stop","ph":"i","ts":1,"pid":1,"tid":0,"args":{"reason":"lock","port":-1}}]}`,

		// The contention-adaptive instants carry typed payloads too: a
		// steal names its victim, port and a distance class in [0, 2], a
		// relax-level a width of at least 1, a fair-claim its wait.
		"steal no args":   `{"traceEvents":[{"name":"steal","ph":"i","ts":1,"pid":1,"tid":0}]}`,
		"steal bad dist":  `{"traceEvents":[{"name":"steal","ph":"i","ts":1,"pid":1,"tid":0,"args":{"victim":1,"port":2,"dist":7}}]}`,
		"steal no victim": `{"traceEvents":[{"name":"steal","ph":"i","ts":1,"pid":1,"tid":0,"args":{"port":2,"dist":1}}]}`,
		"relax width 0":   `{"traceEvents":[{"name":"relax-level","ph":"i","ts":1,"pid":1,"tid":0,"args":{"width":0,"rate":5}}]}`,
		"relax no rate":   `{"traceEvents":[{"name":"relax-level","ph":"i","ts":1,"pid":1,"tid":0,"args":{"width":2}}]}`,
		"claim no wait":   `{"traceEvents":[{"name":"fair-claim","ph":"i","ts":1,"pid":1,"tid":0,"args":{"port":2}}]}`,
		"claim bad wait":  `{"traceEvents":[{"name":"fair-claim","ph":"i","ts":1,"pid":1,"tid":0,"args":{"port":2,"wait_ns":-1}}]}`,
	}
	for label, body := range cases {
		p := writeFile(t, "bad.json", body)
		if err := check(p, nil, false); err == nil {
			t.Errorf("%s: check accepted malformed input", label)
		}
	}
}

// TestCheckAcceptsExport feeds tracecheck a real tracer export so the
// validator and the exporter cannot drift.
func TestCheckAcceptsExport(t *testing.T) {
	tr := trace.New(2, 16)
	tr.SetLabel(0, "sched-0")
	tr.Enable()
	tr.Emit(0, trace.KindAcquire, 3)
	tr.Emit(0, trace.KindRelease, 7)
	tr.Emit(0, trace.KindSteal, trace.PackPair(1, 3))
	tr.Emit(1, trace.KindPark, 0)
	tr.Emit(1, trace.KindUnpark, 0)
	tr.Emit(1, trace.KindElastic, trace.PackPair(2, 1000))
	tr.Emit(0, trace.KindChain, trace.PackPair(1, 5))
	tr.Emit(0, trace.KindChain, trace.PackPair(2, 6))
	tr.Emit(0, trace.KindChainStop, trace.PackPair(trace.ChainStopOccupied, 6))
	tr.Emit(0, trace.KindSteal, trace.PackPair(1, 2<<24|9))
	tr.Emit(0, trace.KindRelax, trace.PackPair(2, 120))
	tr.Emit(0, trace.KindFairClaim, trace.PackPair(9, 4500))
	tr.Emit(1, trace.KindBPSample, trace.PackPair(3, 57))
	tr.Emit(1, trace.KindBPSample, trace.PackPair(-1, 0))
	tr.Emit(1, trace.KindFlightRec, trace.PackPair(trace.FlightRecQuarantine, 12))

	var sb strings.Builder
	if err := tr.Export(&sb); err != nil {
		t.Fatal(err)
	}
	// Strict mode on a real export: the exporter may only emit kinds the
	// checker knows, so adding a kind without a schema breaks here.
	p := writeFile(t, "export.json", sb.String())
	if err := check(p, []string{"drain", "steal", "park", "elastic-level", "chain", "chain-stop", "relax-level", "fair-claim", "bp-sample", "flightrec-dump"}, true); err != nil {
		t.Fatal(err)
	}
}

// TestCheckChainArgsValid accepts the exact payloads the exporter
// writes for every chain-stop reason.
func TestCheckChainArgsValid(t *testing.T) {
	p := writeFile(t, "chain.json", `{"traceEvents":[
		{"name":"chain","ph":"i","ts":1,"pid":1,"tid":0,"args":{"depth":1,"port":0}},
		{"name":"chain","ph":"i","ts":2,"pid":1,"tid":0,"args":{"depth":8,"port":41}},
		{"name":"chain-stop","ph":"i","ts":3,"pid":1,"tid":0,"args":{"reason":"depth","port":3}},
		{"name":"chain-stop","ph":"i","ts":4,"pid":1,"tid":0,"args":{"reason":"budget","port":3}},
		{"name":"chain-stop","ph":"i","ts":5,"pid":1,"tid":0,"args":{"reason":"lock","port":3}},
		{"name":"chain-stop","ph":"i","ts":6,"pid":1,"tid":0,"args":{"reason":"occupied","port":3}},
		{"name":"chain-stop","ph":"i","ts":7,"pid":1,"tid":0,"args":{"reason":"halt","port":3}}
	]}`)
	if err := check(p, []string{"chain", "chain-stop"}, false); err != nil {
		t.Fatal(err)
	}
}

// TestCheckObsArgs pins the flow-observability instants' schemas: a
// bp-sample carries a port (-1 when all queues were empty) and a
// non-negative occupancy, a flightrec-dump a known trigger name and a
// sample count.
func TestCheckObsArgs(t *testing.T) {
	p := writeFile(t, "obs.json", `{"traceEvents":[
		{"name":"bp-sample","ph":"i","ts":1,"pid":1,"tid":0,"args":{"port":3,"occ":57}},
		{"name":"bp-sample","ph":"i","ts":2,"pid":1,"tid":0,"args":{"port":-1,"occ":0}},
		{"name":"flightrec-dump","ph":"i","ts":3,"pid":1,"tid":0,"args":{"reason":"quarantine","samples":12}},
		{"name":"flightrec-dump","ph":"i","ts":4,"pid":1,"tid":0,"args":{"reason":"shutdown-deadline","samples":0}}
	]}`)
	if err := check(p, []string{"bp-sample", "flightrec-dump"}, true); err != nil {
		t.Fatal(err)
	}

	bad := map[string]string{
		"bp no occ":      `{"traceEvents":[{"name":"bp-sample","ph":"i","ts":1,"pid":1,"tid":0,"args":{"port":3}}]}`,
		"bp port -2":     `{"traceEvents":[{"name":"bp-sample","ph":"i","ts":1,"pid":1,"tid":0,"args":{"port":-2,"occ":1}}]}`,
		"fr no reason":   `{"traceEvents":[{"name":"flightrec-dump","ph":"i","ts":1,"pid":1,"tid":0,"args":{"samples":3}}]}`,
		"fr bad reason":  `{"traceEvents":[{"name":"flightrec-dump","ph":"i","ts":1,"pid":1,"tid":0,"args":{"reason":"vibes","samples":3}}]}`,
		"fr code reason": `{"traceEvents":[{"name":"flightrec-dump","ph":"i","ts":1,"pid":1,"tid":0,"args":{"reason":2,"samples":3}}]}`,
		"fr neg samples": `{"traceEvents":[{"name":"flightrec-dump","ph":"i","ts":1,"pid":1,"tid":0,"args":{"reason":"manual","samples":-1}}]}`,
	}
	for label, body := range bad {
		p := writeFile(t, "bad.json", body)
		if err := check(p, nil, false); err == nil {
			t.Errorf("%s: check accepted malformed input", label)
		}
	}
}

// TestCheckStrict: unknown event kinds pass by default (forward
// compatibility for hand-made traces) but fail under -strict.
func TestCheckStrict(t *testing.T) {
	p := writeFile(t, "unk.json", `{"traceEvents":[
		{"name":"mystery-event","ph":"i","ts":1,"pid":1,"tid":0}
	]}`)
	if err := check(p, nil, false); err != nil {
		t.Fatalf("lenient mode rejected unknown kind: %v", err)
	}
	err := check(p, nil, true)
	if err == nil || !strings.Contains(err.Error(), "mystery-event") {
		t.Fatalf("err = %v, want strict failure naming mystery-event", err)
	}
}
