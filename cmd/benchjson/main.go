// Command benchjson converts `go test -bench` text output on stdin into
// a JSON array on stdout, one object per benchmark result line. Sub-
// benchmark path segments of the form key=value become fields, so
//
//	BenchmarkFreeListContention/sharded/threads=4/ports=16  7238878  43.16 ns/op
//
// becomes
//
//	{"name":"FreeListContention","variant":"sharded","params":{"threads":4,"ports":16},
//	 "iterations":7238878,"ns_per_op":43.16}
//
// The experiment harness uses it to archive contention sweeps in a form
// plotting scripts can consume without re-parsing bench text.
//
// A second mode compares two such archives:
//
//	benchjson -compare old.json new.json -max-regress 15
//
// exits 1 when any benchmark present in both files regressed its
// ns/op by more than the given percentage (default 10).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark function name without the Benchmark prefix
	// or the -N GOMAXPROCS suffix.
	Name string `json:"name"`
	// Variant collects the sub-benchmark path segments that are not
	// key=value pairs, joined with "/" ("" when there are none).
	Variant string `json:"variant,omitempty"`
	// Params holds the key=value path segments. Values that parse as
	// numbers are numbers; the rest stay strings.
	Params     map[string]any `json:"params,omitempty"`
	Iterations int64          `json:"iterations"`
	NsPerOp    float64        `json:"ns_per_op"`
	// Extra captures any further "value unit" measurement pairs
	// (B/op, allocs/op, custom ReportMetric units) keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// Parse reads go-test bench output and returns the benchmark results in
// order of appearance. Non-benchmark lines (PASS, ok, goos, ...) are
// skipped.
func Parse(r io.Reader) ([]Result, error) {
	results := []Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		res, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

func parseLine(line string) (Result, bool, error) {
	fields := splitFields(line)
	if len(fields) < 3 || len(fields[0]) <= len("Benchmark") || fields[0][:len("Benchmark")] != "Benchmark" {
		return Result{}, false, nil
	}
	full := fields[0][len("Benchmark"):]
	// Strip the trailing -N GOMAXPROCS marker from the last segment.
	if i := lastIndexByte(full, '-'); i > 0 && allDigits(full[i+1:]) {
		full = full[:i]
	}
	segs := splitPath(full)
	res := Result{Name: segs[0]}
	for _, seg := range segs[1:] {
		if k, v, ok := cutEq(seg); ok {
			if res.Params == nil {
				res.Params = map[string]any{}
			}
			res.Params[k] = numberOrString(v)
			continue
		}
		if res.Variant != "" {
			res.Variant += "/"
		}
		res.Variant += seg
	}
	var err error
	if _, err = fmt.Sscanf(fields[1], "%d", &res.Iterations); err != nil {
		return Result{}, false, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	// The remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err = fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Result{}, false, fmt.Errorf("bad measurement in %q: %v", line, err)
		}
		if fields[i+1] == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Extra == nil {
			res.Extra = map[string]float64{}
		}
		res.Extra[fields[i+1]] = v
	}
	return res, true, nil
}

func splitFields(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		if j > i {
			out = append(out, s[i:j])
		}
		i = j
	}
	return out
}

func splitPath(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '/' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func cutEq(s string) (k, v string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func numberOrString(s string) any {
	var n float64
	if _, err := fmt.Sscanf(s, "%g", &n); err == nil {
		// Reject partial parses like "4x" by re-checking the round trip
		// for plain integers; Sscanf stops at the first bad byte.
		var tail string
		if c, _ := fmt.Sscanf(s, "%g%s", &n, &tail); c == 1 {
			return n
		}
	}
	return s
}
