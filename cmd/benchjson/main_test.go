package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: streams/internal/sched
cpu: Intel(R) Xeon(R)
BenchmarkFreeListContention/global/threads=4/ports=16-8         	 9204813	        60.16 ns/op
BenchmarkFreeListContention/sharded/threads=4/ports=16-8        	 7238878	        43.16 ns/op
BenchmarkNativeModels/dynamic-8                                 	     100	    123456 ns/op	  512 B/op	       3 allocs/op
PASS
ok  	streams/internal/sched	7.844s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	r := results[0]
	if r.Name != "FreeListContention" || r.Variant != "global" {
		t.Fatalf("first result parsed as %+v", r)
	}
	if got := r.Params["threads"]; got != float64(4) {
		t.Fatalf("threads param = %v (%T), want 4", got, got)
	}
	if got := r.Params["ports"]; got != float64(16) {
		t.Fatalf("ports param = %v, want 16", got)
	}
	if r.Iterations != 9204813 || r.NsPerOp != 60.16 {
		t.Fatalf("measurements parsed as %+v", r)
	}

	if results[1].Variant != "sharded" || results[1].NsPerOp != 43.16 {
		t.Fatalf("second result parsed as %+v", results[1])
	}

	r = results[2]
	if r.Name != "NativeModels" || r.Variant != "dynamic" {
		t.Fatalf("third result parsed as %+v", r)
	}
	if r.Extra["B/op"] != 512 || r.Extra["allocs/op"] != 3 {
		t.Fatalf("extra measurements parsed as %+v", r.Extra)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	results, err := Parse(strings.NewReader("PASS\nok\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(results))
	}
}

func TestParseBadLine(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX notanumber 5 ns/op\n"))
	if err == nil {
		t.Fatal("malformed benchmark line did not error")
	}
}

func mkResult(name, variant string, params map[string]any, ns float64) Result {
	return Result{Name: name, Variant: variant, Params: params, Iterations: 100, NsPerOp: ns}
}

func TestCompareWithinThreshold(t *testing.T) {
	old := []Result{
		mkResult("VMVectorized", "chain3/vec", map[string]any{"rows": float64(64)}, 100),
		mkResult("VMDispatch", "single/vm", nil, 50),
	}
	cur := []Result{
		mkResult("VMVectorized", "chain3/vec", map[string]any{"rows": float64(64)}, 110),
		mkResult("VMDispatch", "single/vm", nil, 45),
	}
	var buf strings.Builder
	if compareResults(old, cur, 15, &buf) {
		t.Fatalf("10%% slowdown flagged as regression at 15%% threshold:\n%s", buf.String())
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	old := []Result{mkResult("VMDispatch", "chain3/fused-batch", nil, 100)}
	cur := []Result{mkResult("VMDispatch", "chain3/fused-batch", nil, 130)}
	var buf strings.Builder
	if !compareResults(old, cur, 15, &buf) {
		t.Fatalf("30%% slowdown not flagged at 15%% threshold:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("report lacks REGRESSED marker:\n%s", buf.String())
	}
}

func TestCompareParamOrderInsensitive(t *testing.T) {
	// Same benchmark, params built in different insertion order: the
	// key must still match, so a large delta is caught.
	old := []Result{mkResult("B", "", map[string]any{"a": float64(1), "b": float64(2)}, 10)}
	cur := []Result{mkResult("B", "", map[string]any{"b": float64(2), "a": float64(1)}, 20)}
	var buf strings.Builder
	if !compareResults(old, cur, 5, &buf) {
		t.Fatalf("param-reordered benchmark did not match its baseline:\n%s", buf.String())
	}
}

func TestCompareBestOfDuplicates(t *testing.T) {
	// Three -count=3 runs of the same benchmark: compare best-of, so
	// one noisy run on either side does not move the verdict.
	old := []Result{mkResult("B", "", nil, 100)}
	cur := []Result{
		mkResult("B", "", nil, 150),
		mkResult("B", "", nil, 104),
		mkResult("B", "", nil, 140),
	}
	var buf strings.Builder
	if compareResults(old, cur, 15, &buf) {
		t.Fatalf("best-of-3 at +4%% flagged as regression:\n%s", buf.String())
	}
}

func TestCompareMissingAndNewAreNotFailures(t *testing.T) {
	old := []Result{mkResult("Gone", "", nil, 10)}
	cur := []Result{mkResult("Fresh", "", nil, 999)}
	var buf strings.Builder
	if compareResults(old, cur, 5, &buf) {
		t.Fatalf("disjoint suites flagged as regression:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "warn: Gone") || !strings.Contains(out, "note: Fresh") {
		t.Fatalf("report missing warn/note lines:\n%s", out)
	}
}
