package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: streams/internal/sched
cpu: Intel(R) Xeon(R)
BenchmarkFreeListContention/global/threads=4/ports=16-8         	 9204813	        60.16 ns/op
BenchmarkFreeListContention/sharded/threads=4/ports=16-8        	 7238878	        43.16 ns/op
BenchmarkNativeModels/dynamic-8                                 	     100	    123456 ns/op	  512 B/op	       3 allocs/op
PASS
ok  	streams/internal/sched	7.844s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	r := results[0]
	if r.Name != "FreeListContention" || r.Variant != "global" {
		t.Fatalf("first result parsed as %+v", r)
	}
	if got := r.Params["threads"]; got != float64(4) {
		t.Fatalf("threads param = %v (%T), want 4", got, got)
	}
	if got := r.Params["ports"]; got != float64(16) {
		t.Fatalf("ports param = %v, want 16", got)
	}
	if r.Iterations != 9204813 || r.NsPerOp != 60.16 {
		t.Fatalf("measurements parsed as %+v", r)
	}

	if results[1].Variant != "sharded" || results[1].NsPerOp != 43.16 {
		t.Fatalf("second result parsed as %+v", results[1])
	}

	r = results[2]
	if r.Name != "NativeModels" || r.Variant != "dynamic" {
		t.Fatalf("third result parsed as %+v", r)
	}
	if r.Extra["B/op"] != 512 || r.Extra["allocs/op"] != 3 {
		t.Fatalf("extra measurements parsed as %+v", r.Extra)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	results, err := Parse(strings.NewReader("PASS\nok\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(results))
	}
}

func TestParseBadLine(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX notanumber 5 ns/op\n"))
	if err == nil {
		t.Fatal("malformed benchmark line did not error")
	}
}
