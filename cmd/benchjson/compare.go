package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// Compare mode: `benchjson -compare old.json new.json [-max-regress pct]`
// reads two archives previously produced by this command and fails
// (exit 1) when any benchmark present in both regressed its ns/op by
// more than pct percent. Benchmarks only in the baseline warn (the
// suite shrank); benchmarks only in the new file are informational
// (the suite grew). CI's vm benchmark smoke uses it to gate merges
// against the committed BENCH_vm.json.

// runCompare parses the argument tail after -compare. Positional
// arguments are the old and new JSON paths in order; -max-regress may
// appear anywhere among them, matching the documented
// `-compare old.json new.json -max-regress 15` word order that a
// single flag.FlagSet cannot express.
func runCompare(args []string) int {
	maxRegress := 10.0
	var paths []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-max-regress" || args[i] == "--max-regress" {
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -max-regress needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "benchjson: bad -max-regress %q\n", args[i+1])
				return 2
			}
			maxRegress = v
			i++
			continue
		}
		paths = append(paths, args[i])
	}
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-max-regress pct]")
		return 2
	}
	old, err := loadResults(paths[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	cur, err := loadResults(paths[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	if compareResults(old, cur, maxRegress, os.Stdout) {
		return 1
	}
	return 0
}

func loadResults(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Result
	if err := json.NewDecoder(f).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return out, nil
}

// resultKey identifies a benchmark across archives: name, variant and
// the params sorted by key (map order must not matter).
func resultKey(r Result) string {
	k := r.Name
	if r.Variant != "" {
		k += "/" + r.Variant
	}
	keys := make([]string, 0, len(r.Params))
	for pk := range r.Params {
		keys = append(keys, pk)
	}
	sort.Strings(keys)
	for _, pk := range keys {
		k += fmt.Sprintf("/%s=%v", pk, r.Params[pk])
	}
	return k
}

// compareResults prints a per-benchmark delta table to w and reports
// whether any shared benchmark regressed ns/op beyond maxRegress
// percent. A duplicate key keeps its fastest run: an archive produced
// with `go test -count=N` compares best-of-N, which is the standard
// way to cut scheduler noise out of a regression gate.
func compareResults(old, cur []Result, maxRegress float64, w io.Writer) (regressed bool) {
	index := func(rs []Result) (map[string]Result, []string) {
		by := map[string]Result{}
		var order []string
		for _, r := range rs {
			k := resultKey(r)
			prev, seen := by[k]
			if !seen {
				order = append(order, k)
			}
			if !seen || r.NsPerOp < prev.NsPerOp {
				by[k] = r
			}
		}
		return by, order
	}
	curBy, order := index(cur)
	oldBy, oldOrder := index(old)
	for _, k := range oldOrder {
		n, ok := curBy[k]
		if !ok {
			fmt.Fprintf(w, "warn: %s: in baseline but not in new results\n", k)
			continue
		}
		o := oldBy[k]
		if o.NsPerOp <= 0 {
			fmt.Fprintf(w, "warn: %s: baseline ns/op %.4g not comparable\n", k, o.NsPerOp)
			continue
		}
		pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		verdict := "ok"
		if pct > maxRegress {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(w, "%-60s %12.4g %12.4g %+7.1f%%  %s\n", k, o.NsPerOp, n.NsPerOp, pct, verdict)
	}
	for _, k := range order {
		if _, ok := oldBy[k]; !ok {
			fmt.Fprintf(w, "note: %s: new benchmark, no baseline\n", k)
		}
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: ns/op regression above %.4g%%\n", maxRegress)
	}
	return regressed
}
