// Command streamsim regenerates the paper's evaluation figures.
//
// Usage:
//
//	streamsim -list
//	streamsim -fig 9-pipeline            # all panels of one figure
//	streamsim -panel fig10-xeon-cost1000 # one panel
//	streamsim -all                       # every panel
//	streamsim -panel fig11-xeon-w1-d1000-cost1 -runs 3   # traces
//	streamsim -native -w 2 -d 8 -cost 100 -threads 2     # real runtime
//	streamsim -native -chaos panic=0.001,slow=0.001:20us # runtime under chaos
//	streamsim -native -trace out.json -latency           # scheduler trace + latency
//	streamsim -native -debug-addr localhost:6060         # live /debugz endpoint
//	streamsim -native -obs -metricz -flightrec fr.json   # flow observability
//	streamsim -verbose                   # adds §5.1 context-switch estimates
//
// Static panels print the four series of Figures 9 and 10 (manual,
// dedicated, dynamic static sweep, dynamic elastic); Figure 11 panels
// print throughput/threads traces. Results come from the calibrated
// machine model (see internal/sim); -native runs the actual runtime on
// this host instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"streams/internal/debugz"
	"streams/internal/fault"
	"streams/internal/fig"
	"streams/internal/ingest"
	"streams/internal/metrics"
	"streams/internal/obs"
	"streams/internal/pe"
	"streams/internal/sim"
	"streams/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list all panel IDs and exit")
		figure  = flag.String("fig", "", "print all panels of one figure: 9-pipeline, 9-dataparallel, 10, 11")
		panel   = flag.String("panel", "", "print one panel by ID")
		all     = flag.Bool("all", false, "print every panel")
		runs    = flag.Int("runs", 5, "elastic runs per panel (the paper repeats 5 times)")
		every   = flag.Int("every", 5, "print every Nth trace point for figure 11 panels")
		verbose = flag.Bool("verbose", false, "include context-switch estimates (§5.1)")

		native    = flag.Bool("native", false, "run the real runtime on this host instead of the model")
		width     = flag.Int("w", 2, "native: data-parallel width")
		depth     = flag.Int("d", 8, "native: pipeline depth")
		cost      = flag.Int("cost", 100, "native: flops per tuple")
		model     = flag.String("model", "dynamic", "native: manual, dedicated or dynamic")
		threads   = flag.Int("threads", 2, "native: dynamic thread count")
		dur       = flag.Duration("dur", 2*time.Second, "native: measurement duration")
		globalfl  = flag.Bool("globalfl", false, "native: use the paper's single global free list instead of the sharded per-thread caches")
		nochain   = flag.Bool("nochain", false, "native: disable inline chain execution (every flush goes through the queues)")
		vmFuse    = flag.Bool("vm", false, "native: attach bytecode programs to workers so chain runs execute as fused superinstruction programs")
		novec     = flag.Bool("novec", false, "native: disable vectorized batch-at-a-time VM execution (fused runs stay on the scalar per-tuple loop)")
		relax     = flag.Int("relax", 0, "native: free-list relaxation width (0 = adaptive with -elastic, tight otherwise; N>=1 pins the width)")
		fairclaim = flag.Bool("fairclaim", false, "native: route contended port claims through the fair ticket line")
		flattopo  = flag.Bool("flat-topo", false, "native: disable topology-aware steal ordering (treat every victim as equally remote)")

		chaos      = flag.String("chaos", "", "native: chaos spec, e.g. panic=0.001,slow=0.001:20us,stall=0.001:20us (see internal/fault)")
		chaosSeed  = flag.Uint64("chaos-seed", 42, "native: chaos injector seed (deterministic per seed)")
		quarantine = flag.Int("quarantine", 3, "native: panic strikes before an operator is quarantined; 0 or less never quarantines")

		elastic    = flag.Bool("elastic", false, "native: enable the elasticity controller (dynamic model only)")
		adapt      = flag.Duration("adapt", 250*time.Millisecond, "native: elasticity measurement period")
		maxthreads = flag.Int("maxthreads", 0, "native: dynamic thread-level cap (default: -threads)")
		traceOut   = flag.String("trace", "", "native: write a Chrome trace_event file of scheduler decisions to this path (open in chrome://tracing or Perfetto)")
		latency    = flag.Bool("latency", false, "native: measure end-to-end tuple latency from source stamp to sink drain")
		debugAddr  = flag.String("debug-addr", "", "native: serve /debugz, /debugz/stats, /debugz/trace, /debugz/tenants, /debugz/flows, /debugz/flightrec, /metricz and /debug/pprof on this address for the duration of the run")

		obsOn     = flag.Bool("obs", false, "native: enable flow observability — periodic backpressure sampling, bottleneck attribution, /debugz/flows and /metricz (implied by -metricz and -flightrec)")
		obsPeriod = flag.Duration("obs-period", 100*time.Millisecond, "native: flow-observability sampling period")
		metricz   = flag.Bool("metricz", false, "native: print the final OpenMetrics exposition to stdout after the run (implies -obs)")
		flightrec = flag.String("flightrec", "", "native: flight-recorder dump file, overwritten whenever fault containment or ingest overload fires (implies -obs)")

		ingestAddr   = flag.String("ingest-addr", "", "native: serve the multi-tenant network ingest front end on this address and make it the graph's source (replaces the synthetic generator)")
		tenants      = flag.String("tenants", "gold:20000:512:block:guaranteed,bronze:20000:512", "native: ingest tenant spec, comma-separated name:rate[:burst[:policy[:class]]] (class: guaranteed or besteffort)")
		shedPolicy   = flag.String("shed-policy", "shed-oldest", "native: default full-queue policy for tenants that do not name one (block, shed-oldest, shed-newest)")
		ingestGen    = flag.Float64("ingest-gen", 0, "native: offered load in tuples/s per tenant from built-in open-loop generators over the run (0 = external clients only)")
		backlogLimit = flag.Int("backlog-limit", 0, "native: runtime backlog above which best-effort ingest traffic is shed at the door (0 = gate off)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, p := range fig.AllPanels() {
			fmt.Printf("%-40s %s\n", p.ID, p.String())
		}
	case *native:
		m, err := parseModel(*model)
		if err != nil {
			fatal(err)
		}
		w := sim.Workload{Width: *width, Depth: *depth, Cost: *cost}
		freeList := "sharded"
		if *globalfl {
			freeList = "global"
		}
		inj, err := fault.ParseSpec(*chaos, *chaosSeed)
		if err != nil {
			fatal(err)
		}
		chaining := "on"
		if *nochain {
			chaining = "off"
		}
		relaxDesc := "tight"
		switch {
		case *relax == 0 && *elastic:
			relaxDesc = "adaptive"
		case *relax > 1:
			relaxDesc = fmt.Sprintf("static %d", *relax)
		}
		claim := "backoff"
		if *fairclaim {
			claim = "fair"
		}
		stealOrder := "topology"
		if *flattopo {
			stealOrder = "flat"
		}
		fmt.Printf("native run on this host: %s, model %s, threads %d, free list %s, chaining %s, relax %s, claim %s, steal order %s\n",
			w, m, *threads, freeList, chaining, relaxDesc, claim, stealOrder)
		if inj != nil {
			fmt.Printf("chaos armed: %s (seed %d)\n", *chaos, *chaosSeed)
		}
		qa := *quarantine
		if qa <= 0 {
			qa = 1 << 30 // effectively never
		}
		cfg := fig.NativeConfig{
			Model: m, Threads: *threads, Duration: *dur, GlobalFreeList: *globalfl,
			DisableChain: *nochain, VM: *vmFuse, NoVec: *novec,
			Relax: *relax, FairClaim: *fairclaim, FlatTopo: *flattopo,
			Fault: inj, QuarantineAfter: qa,
			Elastic: *elastic, AdaptPeriod: *adapt, MaxThreads: *maxthreads,
		}
		rings, err := fig.TraceRings(w, cfg)
		if err != nil {
			fatal(err)
		}
		obsEnabled := *obsOn || *metricz || *flightrec != ""
		var tr *trace.Tracer
		obsRing := -1
		if *traceOut != "" || *debugAddr != "" {
			// The ingest front end and the observability sampler each get
			// one ring of their own past the scheduler's allocation.
			extra := 0
			if *ingestAddr != "" {
				extra++
			}
			if obsEnabled {
				obsRing = rings + extra
				extra++
			}
			tr = trace.New(rings+extra, 0)
			if *ingestAddr != "" {
				tr.SetLabel(rings, "ingest")
			}
			if obsRing >= 0 {
				tr.SetLabel(obsRing, "obs")
			}
			cfg.Tracer = tr
		}
		if *latency || *debugAddr != "" || obsEnabled {
			// Shard count only tunes contention; Record masks the tid, so
			// the dynamic ring count is a fine size for every model.
			cfg.Latency = metrics.NewHistogram(rings)
		}
		var ingSrv *ingest.Server
		var livePE atomic.Pointer[pe.PE]
		if *ingestAddr != "" {
			defPol, err := ingest.ParsePolicy(*shedPolicy)
			if err != nil {
				fatal(err)
			}
			tcs, err := ingest.ParseTenants(*tenants, defPol)
			if err != nil {
				fatal(err)
			}
			ingCfg := ingest.Config{
				Tenants:      tcs,
				Fault:        inj,
				BacklogLimit: *backlogLimit,
			}
			if *backlogLimit > 0 {
				// The PE does not exist yet; the pump reads it through
				// this indirection once OnStart publishes it.
				ingCfg.Backlog = func() int {
					if p := livePE.Load(); p != nil {
						return p.Backlog()
					}
					return 0
				}
			}
			if tr != nil {
				ingCfg.Tracer = tr
				ingCfg.TraceRing = rings
			}
			ingSrv, err = ingest.NewServer(ingCfg)
			if err != nil {
				fatal(err)
			}
			if err := ingSrv.Listen(*ingestAddr); err != nil {
				fatal(err)
			}
			fmt.Printf("ingest front end: %s (%d tenants, default policy %s)\n",
				ingSrv.Addr(), len(tcs), defPol)
			cfg.Source = ingSrv
		}
		var col *obs.Collector
		onStart := func(p *pe.PE) {
			livePE.Store(p)
			if obsEnabled {
				rec := &obs.Recorder{Path: *flightrec, Tracer: tr}
				col = obs.New(obs.Options{
					PE: p, Ingest: ingSrv, Latency: cfg.Latency,
					Tracer: tr, Ring: obsRing, Period: *obsPeriod,
					Recorder: rec, Workload: w.String(),
				})
				col.Start()
				if *flightrec != "" {
					fmt.Printf("flight recorder: armed, dumps to %s\n", *flightrec)
				}
			}
			if *debugAddr != "" {
				srv, err := debugz.Serve(*debugAddr, debugz.Options{
					PE: p, Tracer: tr, Latency: cfg.Latency, Workload: w.String(),
					Ingest: ingSrv, Obs: col,
				})
				if err != nil {
					fatal(err)
				}
				fmt.Printf("debug endpoint: http://%s/debugz\n", srv.Addr())
			}
			if ingSrv != nil && *ingestGen > 0 {
				// Built-in open-loop generators: one per tenant at the
				// requested offered rate, running past the measurement
				// window so load never tails off mid-run.
				for _, spec := range strings.Split(*tenants, ",") {
					name := strings.TrimSpace(strings.SplitN(spec, ":", 2)[0])
					if name == "" {
						continue
					}
					g := &ingest.LoadGen{
						Addr: ingSrv.Addr(), Tenant: name,
						Rate: *ingestGen, Duration: *dur * 2,
					}
					go func() { _, _ = g.Run() }()
				}
			}
		}
		cfg.OnStart = onStart
		res, err := fig.RunNative(w, cfg)
		if err != nil {
			fatal(err)
		}
		if col != nil {
			col.Stop()
			if p := livePE.Load(); p != nil && p.Err() != nil {
				// A stuck scheduler thread blew the shutdown deadline; the
				// window leading up to it is exactly what the recorder is
				// for.
				col.Trigger("shutdown-deadline")
			}
		}
		fmt.Printf("sink throughput: %.4g tuples/s\n", res.Throughput)
		// All remaining lines render through the same snapshot path the
		// /debugz endpoint serves, so the two views cannot drift.
		snap := debugz.FromNative(m, w.String(), res, tr)
		if ingSrv != nil {
			in := ingSrv.Snapshot()
			snap.Ingest = &in
			ingSrv.Close()
		}
		snap.WriteText(os.Stdout)
		if col != nil {
			fmt.Println()
			col.Snapshot().WriteText(os.Stdout)
			if dump, n := col.Recorder().LastDump(); n > 0 {
				fmt.Printf("flight recorder: %d dump(s), last %d bytes", n, len(dump))
				if *flightrec != "" {
					fmt.Printf(" -> %s", *flightrec)
				}
				fmt.Println()
			}
			if *metricz {
				fmt.Println()
				if err := col.WriteMetrics(os.Stdout); err != nil {
					fatal(err)
				}
			}
		}
		if *traceOut != "" {
			if err := writeTrace(*traceOut, tr); err != nil {
				fatal(err)
			}
		}
	case *panel != "":
		p, ok := fig.FindPanel(*panel)
		if !ok {
			fatal(fmt.Errorf("unknown panel %q (use -list)", *panel))
		}
		printPanel(p, *runs, *every, *verbose)
	case *figure != "":
		printed := false
		for _, p := range fig.AllPanels() {
			if p.Figure == *figure {
				printPanel(p, *runs, *every, *verbose)
				printed = true
			}
		}
		if !printed {
			fatal(fmt.Errorf("unknown figure %q (9-pipeline, 9-dataparallel, 10, 11)", *figure))
		}
	case *all:
		for _, p := range fig.AllPanels() {
			printPanel(p, *runs, *every, *verbose)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printPanel(p fig.Panel, runs, every int, verbose bool) {
	if p.Figure == "11" {
		mo := sim.Model{M: p.Machine, W: p.Work}
		for seed := 1; seed <= runs; seed++ {
			elTrace := sim.RunElastic(mo, sim.ElasticConfig{Seed: int64(seed)})
			fmt.Printf("run %d/%d:\n%s\n", seed, runs, fig.TraceTable(p, elTrace, every))
		}
		return
	}
	r := fig.RunStatic(p, runs)
	fmt.Println(r.Table())
	if verbose {
		// The same CtxSwitchEstimate the debug endpoint serves as JSON.
		fmt.Printf("  %s\n\n", r.CtxSwitches())
	}
}

// writeTrace dumps the tracer to path in Chrome trace_event format.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Export(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	events := tr.Snapshot()
	fmt.Printf("trace: %d events written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", len(events), path)
	return nil
}

func parseModel(s string) (pe.Model, error) {
	switch strings.ToLower(s) {
	case "manual":
		return pe.Manual, nil
	case "dedicated":
		return pe.Dedicated, nil
	case "dynamic":
		return pe.Dynamic, nil
	default:
		return 0, fmt.Errorf("unknown threading model %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamsim:", err)
	os.Exit(1)
}
