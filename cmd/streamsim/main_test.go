package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runStreamsim(t *testing.T, args ...string) (string, error) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"run", "streams/cmd/streamsim"}, args...)...)
	cmd.Dir = filepath.Dir(filepath.Dir(wd))
	b, err := cmd.CombinedOutput()
	return string(b), err
}

func TestStreamsimList(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	out, err := runStreamsim(t, "-list")
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, want := range []string{
		"fig9-pipeline-xeon-cost1",
		"fig9-dataparallel-power8-cost100000",
		"fig10-xeon-cost1000",
		"fig11-power8-w1000-d1-cost1000000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestStreamsimPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	out, err := runStreamsim(t, "-panel", "fig10-xeon-cost1000", "-runs", "2")
	if err != nil {
		t.Fatalf("-panel: %v\n%s", err, out)
	}
	for _, want := range []string{"manual", "dedicated", "dynamic static", "dynamic elastic", "settles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("panel output missing %q:\n%s", want, out)
		}
	}
}

func TestStreamsimTracePanel(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	out, err := runStreamsim(t, "-panel", "fig11-xeon-w1-d1000-cost1", "-runs", "1", "-every", "20")
	if err != nil {
		t.Fatalf("trace panel: %v\n%s", err, out)
	}
	if !strings.Contains(out, "threads") || !strings.Contains(out, "run 1/1") {
		t.Fatalf("trace output malformed:\n%s", out)
	}
}

func TestStreamsimNative(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	out, err := runStreamsim(t, "-native", "-w", "2", "-d", "3", "-cost", "10",
		"-threads", "2", "-dur", "300ms")
	if err != nil {
		t.Fatalf("-native: %v\n%s", err, out)
	}
	if !strings.Contains(out, "sink throughput") {
		t.Fatalf("native output missing throughput:\n%s", out)
	}
}

func TestStreamsimUnknownPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	out, err := runStreamsim(t, "-panel", "no-such-panel")
	if err == nil {
		t.Fatalf("unknown panel accepted:\n%s", out)
	}
	if !strings.Contains(out, "unknown panel") {
		t.Fatalf("error message unhelpful:\n%s", out)
	}
}
