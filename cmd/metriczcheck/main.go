// Command metriczcheck validates an OpenMetrics text exposition — the
// CI gate behind make obs-smoke. It reads from stdin (or a file given
// as the sole argument), runs the strict parser the obs package itself
// exports, and exits nonzero with a diagnostic when the exposition is
// malformed.
//
// Usage:
//
//	curl -s http://localhost:6060/metricz | metriczcheck
//	metriczcheck exposition.txt
//	metriczcheck -require streams_executed_total exposition.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"streams/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	list := flag.Bool("list", false, "print every family name and sample count")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	fams, err := obs.ParseExposition(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if _, ok := fams[want]; !ok {
			fatal(fmt.Errorf("%s: required family %q missing", name, want))
		}
	}
	samples := 0
	names := make([]string, 0, len(fams))
	for n, f := range fams {
		names = append(names, n)
		samples += f.Samples
	}
	sort.Strings(names)
	if *list {
		for _, n := range names {
			fmt.Printf("%-40s %s  %d sample(s)\n", n, fams[n].Type, fams[n].Samples)
		}
	}
	fmt.Printf("metriczcheck: %s ok — %d families, %d samples\n", name, len(fams), samples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metriczcheck:", err)
	os.Exit(1)
}
