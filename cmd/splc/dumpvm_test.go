package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streams/internal/spl"
)

var update = flag.Bool("update", false, "rewrite golden files")

// vmProgram exercises every operator kind -dump-vm distinguishes: a
// bytecode Filter and Custom, a Work program, and closure fall-backs
// (Beacon has no program; the stateful Custom is rejected).
const vmProgram = `
composite Main {
  graph
    stream<int64 x> N = Beacon() { param iterations: 10; }
    stream<int64 x> E = Filter(N) { param filter: x % 2 == 0; }
    stream<int64 x> W = Work(E) { param cost: 4; }
    stream<int64 y, rstring tag> M = Custom(W) {
      logic onTuple W: {
        submit({ y = x * 3 + 1, tag = "m" }, M);
      }
    }
    stream<int64 n> C = Custom(M) {
      logic state: { mutable int64 seen = 0; }
      onTuple M: {
        seen = seen + 1;
        submit({ n = seen }, C);
      }
    }
    () as Out = FileSink(C) { param file: "/dev/null"; }
}
`

// TestDumpVMGolden pins the -dump-vm disassembly: program hashes are
// content-addressed and every pool index is deterministic, so the
// output is byte-stable. Regenerate with -update after intentional
// bytecode or compiler changes.
func TestDumpVMGolden(t *testing.T) {
	compiled, err := spl.Compile(vmProgram, spl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	dumpPrograms(&b, compiled.Graph)
	got := b.String()

	golden := filepath.Join("testdata", "dumpvm.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("-dump-vm output drifted from %s.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}

	// Structural spot checks so a stale -update cannot hide regressions.
	for _, want := range []string{
		"closure (no program)",     // Beacon and the stateful Custom fall back
		"seg 0 \"Main/E\" forward", // the filter forwards its input tuple
		"seg 0 \"Main/M\" fresh",   // the custom emits a fresh tuple
		"spin.work:ii/2",           // the work program calls the burn builtin
		"(int y, str tag)",         // out layout in attribute order
		"jump.false",               // a false predicate jumps past the emit
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("-dump-vm output missing %q:\n%s", want, got)
		}
	}
}

// TestSplcDumpVM exercises the flag end to end through the CLI.
func TestSplcDumpVM(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.spl")
	if err := os.WriteFile(src, []byte(vmProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runSplc(t, "-dump-vm", src)
	if err != nil {
		t.Fatalf("splc -dump-vm: %v\n%s", err, out)
	}
	if !strings.Contains(out, "program ") || !strings.Contains(out, "closure (no program)") {
		t.Fatalf("-dump-vm output malformed:\n%s", out)
	}
}
