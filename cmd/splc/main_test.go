package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// splc's CLI is exercised end to end by compiling and running it with
// `go run` against a real program file. These tests are skipped in
// -short mode (they shell out to the Go tool).

const testProgram = `
@threading(model=manual)
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 25; }
    stream<int64 i> E = Filter(N) { param filter: i % 5 == 0; }
    () as Out = FileSink(E) { param file: "OUTFILE"; }
}
`

func writeProgram(t *testing.T, dir string) (src, out string) {
	t.Helper()
	out = filepath.Join(dir, "result.txt")
	src = filepath.Join(dir, "prog.spl")
	prog := strings.ReplaceAll(testProgram, "OUTFILE", out)
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	return src, out
}

func runSplc(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "streams/cmd/splc"}, args...)...)
	cmd.Dir = repoRoot(t)
	b, err := cmd.CombinedOutput()
	return string(b), err
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/splc → repo root
}

func TestSplcDump(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	src, _ := writeProgram(t, t.TempDir())
	out, err := runSplc(t, "-dump", src)
	if err != nil {
		t.Fatalf("splc -dump: %v\n%s", err, out)
	}
	for _, want := range []string{"3 operators", "threading: manual", "Main/N"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
}

func TestSplcRun(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	src, outFile := writeProgram(t, t.TempDir())
	out, err := runSplc(t, src)
	if err != nil {
		t.Fatalf("splc run: %v\n%s", err, out)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(string(data)))
	if len(lines) != 5 { // 0,5,10,15,20
		t.Fatalf("sink file has %d lines, want 5: %q", len(lines), data)
	}
	if !strings.Contains(out, "wrote 5 tuples") {
		t.Fatalf("stats output missing count:\n%s", out)
	}
}

func TestSplcBadProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.spl")
	if err := os.WriteFile(src, []byte("composite Main { graph bogus }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runSplc(t, src)
	if err == nil {
		t.Fatalf("bad program accepted:\n%s", out)
	}
	if !strings.Contains(out, "expected") {
		t.Fatalf("error output unhelpful:\n%s", out)
	}
}

func TestSplcDot(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	src, _ := writeProgram(t, t.TempDir())
	out, err := runSplc(t, "-dot", src)
	if err != nil {
		t.Fatalf("splc -dot: %v\n%s", err, out)
	}
	if !strings.Contains(out, "digraph stream") || !strings.Contains(out, "->") {
		t.Fatalf("dot output malformed:\n%s", out)
	}
}
