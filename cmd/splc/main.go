// Command splc compiles and runs mini-SPL programs.
//
// Usage:
//
//	splc -dump program.spl             # compile and print the graph
//	splc -dot program.spl              # compile and print Graphviz DOT
//	splc program.spl                   # compile and run to completion
//	splc -model dedicated program.spl  # override the threading model
//	splc -threads 4 -elastic program.spl
//
// The threading model defaults to the program's @threading annotation
// (dynamic when absent), exactly as submission-time configuration works
// in the product.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streams/internal/pe"
	"streams/internal/spl"
)

func main() {
	var (
		dump    = flag.Bool("dump", false, "print the lowered graph instead of running")
		dumpVM  = flag.Bool("dump-vm", false, "print each operator's compiled bytecode program (operators without one fall back to the closure evaluator)")
		dot     = flag.Bool("dot", false, "print the lowered graph as Graphviz DOT")
		model   = flag.String("model", "", "override the threading model: manual, dedicated, dynamic")
		threads = flag.Int("threads", 0, "dynamic model thread count (0 = annotation or 1)")
		elastic = flag.Bool("elastic", false, "enable elastic thread adaptation")
		period  = flag.Duration("period", 10*time.Second, "elastic adaptation period")
		mainC   = flag.String("main", "", "main composite name (default Main)")
		stats   = flag.Bool("stats", true, "print run statistics on completion")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: splc [flags] program.spl")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	compiled, err := spl.Compile(string(src), spl.Options{Main: *mainC})
	if err != nil {
		fatal(err)
	}
	g := compiled.Graph
	if *dot {
		fmt.Print(g.Dot())
		return
	}
	if *dumpVM {
		dumpPrograms(os.Stdout, g)
		return
	}
	if *dump {
		st := g.Stats()
		fmt.Printf("graph: %d operators, %d input ports, %d streams, %d sources, %d sinks\n",
			st.Nodes, st.Ports, st.Streams, st.Sources, st.Sinks)
		fmt.Printf("threading: %s", orDefault(compiled.Threading, "dynamic"))
		if compiled.Threads > 0 {
			fmt.Printf(", threads=%d", compiled.Threads)
		}
		fmt.Println()
		for _, n := range g.Nodes {
			fmt.Printf("  node %3d  in=%d out=%d  %s\n", n.ID, n.NumIn, n.NumOut, n.Op.Name())
		}
		return
	}

	mstr := *model
	if mstr == "" {
		mstr = orDefault(compiled.Threading, "dynamic")
	}
	var m pe.Model
	switch strings.ToLower(mstr) {
	case "manual":
		m = pe.Manual
	case "dedicated":
		m = pe.Dedicated
	case "dynamic":
		m = pe.Dynamic
	default:
		fatal(fmt.Errorf("unknown threading model %q", mstr))
	}
	nThreads := *threads
	if nThreads == 0 {
		nThreads = compiled.Threads
	}
	if nThreads == 0 {
		nThreads = 1
	}
	cfg := pe.Config{Model: m, Threads: nThreads, Elastic: *elastic, AdaptPeriod: *period}
	p, err := pe.New(g, cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	if err := p.Start(); err != nil {
		fatal(err)
	}
	p.Wait()
	elapsed := time.Since(start)
	if *stats {
		fmt.Fprintf(os.Stderr, "splc: done in %v under %s threading\n", elapsed.Round(time.Millisecond), m)
		fmt.Fprintf(os.Stderr, "splc: %d tuples executed across all operators, %d delivered to sinks\n",
			p.Executed(), p.SinkDelivered())
		for name, s := range compiled.Sinks {
			fmt.Fprintf(os.Stderr, "splc: sink %s wrote %d tuples to %s\n", name, s.Count(), s.File())
			if err := s.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "splc: sink %s error: %v\n", name, err)
			}
		}
	}
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "splc:", err)
	os.Exit(1)
}
