package main

import (
	"fmt"
	"io"

	"streams/internal/graph"
	"streams/internal/vm"
)

// dumpPrograms prints every operator's compiled bytecode program in
// node order (-dump-vm). Operators without a program — built-ins, or
// logic the VM compiler rejected — are listed as closure fall-backs,
// so the output doubles as a "why didn't this fuse" diagnostic.
func dumpPrograms(w io.Writer, g *graph.Graph) {
	for _, n := range g.Nodes {
		p, ok := n.Op.(vm.Programmed)
		if !ok || p.VMProgram() == nil {
			fmt.Fprintf(w, "node %3d  %-20s closure (no program)\n", n.ID, n.Op.Name())
			continue
		}
		fmt.Fprintf(w, "node %3d  %s\n", n.ID, n.Op.Name())
		fmt.Fprint(w, vm.Disasm(p.VMProgram()))
	}
}
