// Loginfailures runs the paper's Figure 1 application end to end: a
// mini-SPL program that scans syslog lines for failed ssh logins, with
// @parallel data parallelism and the @threading(model=dynamic)
// annotation, compiled and executed by this repository's runtime.
//
//	go run ./examples/loginfailures
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"streams"
)

// program is the paper's Figure 1 composite plus the Main that invokes
// it (§2.2), with the paper's `values[4]` typo corrected to `tokens[4]`.
const program = `
composite LoginFailures(output Failures) {
  type
    LogLine = timestamp time, rstring hostname, rstring srvc, rstring msg;
    Failure = timestamp time, rstring uid, rstring euid,
              rstring tty, rstring rhost, rstring user;
  graph
    stream<rstring line> Lines = FileSource() {
      param format: line;
            file: "/var/log/messages";
    }
    @parallel(width=7)
    stream<LogLine> ParsedLines = Custom(Lines) {
      logic onTuple Lines: {
        list<rstring> tokens = tokenize(line, " ", false);
        rstring date = makeDate(tokens[1]);
        rstring time = makeTime(tokens[2]);
        timestamp t = makeTimestamp(date, time);
        submit({time = t, hostname = tokens[3],
                srvc = tokens[4], msg = flatten(tokens[5:])},
               ParsedLines);
      }
    }
    stream<LogLine> FailuresRaw = Filter(ParsedLines) {
      param filter:
        findFirst(srvc, "sshd", 0) != -1 &&
        findFirst(msg, "authentication failure", 0) != -1;
    }
    @parallel(width=4)
    stream<Failure> Failures = Custom(FailuresRaw) {
      logic onTuple FailuresRaw: {
        list<rstring> tokens = parseMsg(msg);
        submit({time = FailuresRaw.time,
                uid = tokens[0], euid = tokens[1],
                tty = tokens[2], rhost = tokens[3],
                user = size(tokens) == 5 ? tokens[4] : ""},
               Failures);
      }
    }
}

@threading(model=dynamic)
composite Main {
  graph
    stream<Failure> Failures = LoginFailures() {}
    () as Sink = FileSink(Failures) {
      param file: "failures.txt";
    }
}
`

// syntheticMessages fabricates /var/log/messages content: sshd
// authentication failures interleaved with unrelated traffic.
func syntheticMessages(failures int) string {
	var sb strings.Builder
	for i := 0; i < failures; i++ {
		fmt.Fprintf(&sb, "Jun 10 03:03:%02d host1 cron[%d]: (root) CMD (run-parts /etc/cron.hourly)\n", i%60, i)
		fmt.Fprintf(&sb, "Jun 10 03:04:%02d host1 sshd[%d]: pam_unix(sshd:auth): authentication failure; logname= uid=0 euid=0 tty=ssh ruser= rhost=198.51.100.%d user=invader%d\n",
			i%60, 4000+i, i%254+1, i)
		fmt.Fprintf(&sb, "Jun 10 03:05:%02d host1 sshd[%d]: Accepted publickey for deploy from 203.0.113.7\n", i%60, 5000+i)
	}
	return sb.String()
}

func main() {
	const failures = 5000
	logData := syntheticMessages(failures)

	outFile, err := os.CreateTemp("", "failures-*.txt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(outFile.Name())

	prog, err := streams.CompileSPL(program, streams.SPLOptions{
		// The paper reads the real /var/log/messages; feed the synthetic
		// log instead so the example is hermetic.
		ReaderFor: func(string) (io.ReadCloser, error) {
			return io.NopCloser(strings.NewReader(logData)), nil
		},
		WriterFor: func(string) (io.WriteCloser, error) { return outFile, nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	model, _, _ := prog.Threading()
	st := prog.Graph().Stats()
	fmt.Printf("compiled: %d operators, %d streams; @threading(model=%s)\n",
		st.Nodes, st.Streams, model)

	job, err := prog.Run(streams.RunConfig{Threads: 3})
	if err != nil {
		log.Fatal(err)
	}
	job.Wait()

	fmt.Printf("scanned %d syslog lines, recorded %d login failures\n",
		3*failures, prog.SinkCounts()["Sink"])

	// Show a couple of Failure records (time, uid, euid, tty, rhost, user).
	data, err := os.ReadFile(outFile.Name())
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	for _, l := range lines[:min(3, len(lines))] {
		fmt.Printf("  %s\n", l)
	}
	fmt.Printf("  ... %d more\n", len(lines)-3)
}
