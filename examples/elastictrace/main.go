// Elastictrace produces Figure 11-style elasticity traces three ways:
// first live, by running the real runtime on this host with a fast
// adaptation period and printing throughput, thread level, and the
// controller rule that decided each period; then as an offline decision
// log, by driving the elasticity controller against a synthetic
// throughput curve with the scheduler tracer attached, showing that
// every level change emits exactly one elastic-level trace event; then
// simulated, by replaying the same controller against the paper's
// 176-core Xeon model for the full 1400-second experiment.
//
//	go run ./examples/elastictrace
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"streams"
	"streams/internal/elastic"
	"streams/internal/fig"
	"streams/internal/pe"
	"streams/internal/sim"
	"streams/internal/trace"
)

func main() {
	liveTrace()
	decisionLog()
	simulatedTrace()
}

// liveTrace runs an unbounded pipeline under the elastic dynamic model
// on the actual host and prints each adaptation sample.
func liveTrace() {
	fmt.Printf("live elastic run on this host (%d logical CPUs), 250ms periods:\n", runtime.NumCPU())
	fmt.Printf("  %8s %14s %8s  %s\n", "elapsed", "tuples/s (PE)", "threads", "rule")

	top := streams.NewTopology()
	src := top.Add(&streams.Generator{}, 0, 1)
	prev := src
	for i := 0; i < 8; i++ {
		w := top.Add(&streams.Worker{Cost: 200}, 1, 1)
		top.Connect(prev, 0, w, 0)
		prev = w
	}
	snk := top.Add(&streams.Sink{}, 1, 0)
	top.Connect(prev, 0, snk, 0)

	done := make(chan struct{})
	samples := 0
	job, err := streams.Run(top, streams.RunConfig{
		Model:       streams.ModelDynamic,
		Elastic:     true,
		Threads:     1,
		MaxThreads:  max(runtime.NumCPU(), 4),
		AdaptPeriod: 250 * time.Millisecond,
		Trace: func(s streams.Sample) {
			fmt.Printf("  %8s %14.4g %8d  %s\n", s.Elapsed.Round(time.Millisecond), s.Throughput, s.Level, s.Rule)
			samples++
			if samples == 16 {
				close(done)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	<-done
	job.Stop()
	fmt.Println()
}

// decision is one period of the offline controller drive: the
// throughput observation, the level the controller chose for the next
// period, and the rule that decided it.
type decision struct {
	period int
	thput  float64
	level  int
	rule   elastic.Rule
}

// syntheticThroughput models a concave workload: throughput grows with
// the thread level up to a knee at 12 threads and flattens past it —
// enough shape for the controller to climb, overshoot, and settle.
func syntheticThroughput(level int) float64 {
	if level > 12 {
		level = 12
	}
	return 1e6 * float64(level) / (float64(level) + 2)
}

// driveController runs the elasticity controller for the given number
// of periods against syntheticThroughput, mirroring the PE adaptation
// loop's tracer wiring: a LevelTrace observes every Update, emitting
// one elastic-level event per level change and none otherwise.
func driveController(periods int, tr *trace.Tracer) ([]decision, error) {
	ctl, err := elastic.New(elastic.Config{MinLevel: 1, MaxLevel: 32, Geometric: true})
	if err != nil {
		return nil, err
	}
	lt := pe.NewLevelTrace(tr)
	lt.Observe(ctl.Level(), 0)
	log := make([]decision, 0, periods)
	for p := 0; p < periods; p++ {
		thput := syntheticThroughput(ctl.Level())
		level := ctl.Update(thput)
		lt.Observe(level, thput)
		log = append(log, decision{period: p, thput: thput, level: level, rule: ctl.LastRule()})
	}
	return log, nil
}

// decisionLog drives the controller offline with the tracer attached
// and prints the per-period decision log next to the trace it emitted.
func decisionLog() {
	tr := trace.New(1, 0)
	tr.SetLabel(0, "elastic")
	tr.Enable()
	log, err := driveController(24, tr)
	if err != nil {
		panic(err)
	}
	fmt.Println("offline decision log (synthetic concave workload, knee at 12 threads):")
	fmt.Printf("  %6s %12s %7s  %s\n", "period", "tuples/s", "threads", "rule")
	for _, d := range log {
		fmt.Printf("  %6d %12.4g %7d  %s\n", d.period, d.thput, d.level, d.rule)
	}
	events := tr.Snapshot()
	fmt.Printf("tracer captured %d elastic-level events (one per level change):\n", len(events))
	for _, e := range events {
		level, tp := trace.UnpackPair(e.Arg)
		fmt.Printf("  level %2d at throughput %d tuples/s\n", level, tp)
	}
	fmt.Println()
}

// simulatedTrace replays the controller against the Xeon machine model:
// the top-left run of the paper's Figure 11.
func simulatedTrace() {
	panel, _ := fig.FindPanel("fig11-xeon-w1-d1000-cost1")
	fmt.Println("simulated 1400s run of the paper's Figure 11 top-left panel:")
	mo := sim.Model{M: panel.Machine, W: panel.Work}
	trace := sim.RunElastic(mo, sim.ElasticConfig{Seed: 7})
	fmt.Print(fig.TraceTable(panel, trace, 7))
	lo, hi := sim.SettledLevels(trace, 0.25)
	fmt.Printf("settled between %d and %d threads (paper: 72–132)\n", lo, hi)
}
