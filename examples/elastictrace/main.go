// Elastictrace produces Figure 11-style elasticity traces twice over:
// first live, by running the real runtime on this host with a fast
// adaptation period and printing throughput and thread level per period;
// then simulated, by replaying the same controller against the paper's
// 176-core Xeon model for the full 1400-second experiment.
//
//	go run ./examples/elastictrace
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"streams"
	"streams/internal/fig"
	"streams/internal/sim"
)

func main() {
	liveTrace()
	simulatedTrace()
}

// liveTrace runs an unbounded pipeline under the elastic dynamic model
// on the actual host and prints each adaptation sample.
func liveTrace() {
	fmt.Printf("live elastic run on this host (%d logical CPUs), 250ms periods:\n", runtime.NumCPU())
	fmt.Printf("  %8s %14s %8s\n", "elapsed", "tuples/s (PE)", "threads")

	top := streams.NewTopology()
	src := top.Add(&streams.Generator{}, 0, 1)
	prev := src
	for i := 0; i < 8; i++ {
		w := top.Add(&streams.Worker{Cost: 200}, 1, 1)
		top.Connect(prev, 0, w, 0)
		prev = w
	}
	snk := top.Add(&streams.Sink{}, 1, 0)
	top.Connect(prev, 0, snk, 0)

	done := make(chan struct{})
	samples := 0
	job, err := streams.Run(top, streams.RunConfig{
		Model:       streams.ModelDynamic,
		Elastic:     true,
		Threads:     1,
		MaxThreads:  max(runtime.NumCPU(), 4),
		AdaptPeriod: 250 * time.Millisecond,
		Trace: func(s streams.Sample) {
			fmt.Printf("  %8s %14.4g %8d\n", s.Elapsed.Round(time.Millisecond), s.Throughput, s.Level)
			samples++
			if samples == 16 {
				close(done)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	<-done
	job.Stop()
	fmt.Println()
}

// simulatedTrace replays the controller against the Xeon machine model:
// the top-left run of the paper's Figure 11.
func simulatedTrace() {
	panel, _ := fig.FindPanel("fig11-xeon-w1-d1000-cost1")
	fmt.Println("simulated 1400s run of the paper's Figure 11 top-left panel:")
	mo := sim.Model{M: panel.Machine, W: panel.Work}
	trace := sim.RunElastic(mo, sim.ElasticConfig{Seed: 7})
	fmt.Print(fig.TraceTable(panel, trace, 7))
	lo, hi := sim.SettledLevels(trace, 0.25)
	fmt.Printf("settled between %d and %d threads (paper: 72–132)\n", lo, hi)
}
