package main

import (
	"testing"

	"streams/internal/trace"
)

// TestOneTraceEventPerLevelChange drives the real elasticity controller
// through the real LevelTrace wiring and asserts the invariant the
// decision log demonstrates: every Update that changes the level emits
// exactly one elastic-level trace event, and Updates that keep the
// level emit none.
func TestOneTraceEventPerLevelChange(t *testing.T) {
	tr := trace.New(1, 0)
	tr.Enable()
	log, err := driveController(64, tr)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the decision log counting level changes, including the
	// initial level observation before the first Update.
	changes := 1
	last := -1
	for _, d := range log {
		if last == -1 {
			// driveController observes the controller's starting level
			// (MinLevel = 1) before its first Update.
			last = 1
		}
		if d.level != last {
			changes++
			last = d.level
		}
	}
	if changes < 3 {
		t.Fatalf("controller never explored: %d level changes in %d periods", changes, len(log))
	}

	events := tr.Snapshot()
	for _, e := range events {
		if e.Kind != trace.KindElastic {
			t.Fatalf("unexpected event kind %s on controller ring", e.Kind)
		}
	}
	if len(events) != changes {
		t.Fatalf("tracer captured %d elastic-level events for %d level changes", len(events), changes)
	}

	// The events replay the exact level sequence.
	want := []int32{1}
	last = 1
	for _, d := range log {
		if d.level != last {
			want = append(want, int32(d.level))
			last = d.level
		}
	}
	for i, e := range events {
		if level, _ := trace.UnpackPair(e.Arg); level != want[i] {
			t.Fatalf("event %d has level %d, want %d", i, level, want[i])
		}
	}
}

// TestDisabledTracerStillDedupes checks the nil-tracer path: the drive
// must work (and the decision log stay identical) with no tracer.
func TestDisabledTracerStillDedupes(t *testing.T) {
	withTr := trace.New(1, 0)
	withTr.Enable()
	a, err := driveController(32, withTr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := driveController(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs with tracer: %+v vs %+v", i, a[i], b[i])
		}
	}
}
