// Quickstart: build a small stream graph with the public API and run it
// under the dynamic scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"streams"
)

func main() {
	// Topology: Src → Worker×4 → Snk, one million tuples, 100 flops per
	// tuple per worker.
	const tuples = 1_000_000
	top := streams.NewTopology()
	src := top.Add(&streams.Generator{Limit: tuples}, 0, 1)
	prev := src
	for i := 0; i < 4; i++ {
		w := top.Add(&streams.Worker{Cost: 100}, 1, 1)
		top.Connect(prev, 0, w, 0)
		prev = w
	}
	snk := &streams.Sink{}
	out := top.Add(snk, 1, 0)
	top.Connect(prev, 0, out, 0)

	// Run with the dynamic threading model and two scheduler threads;
	// any thread may execute any operator, and tuple order per stream is
	// preserved.
	job, err := streams.Run(top, streams.RunConfig{
		Model:   streams.ModelDynamic,
		Threads: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	job.Wait() // the generator is bounded: wait for the graph to drain

	fmt.Printf("delivered %d tuples to the sink\n", snk.Count())
	fmt.Printf("executed  %d operator invocations PE-wide\n", job.Executed())
}
