// Distributed runs a two-PE application connected over TCP, the way IBM
// Streams deploys across hosts: PE 1 generates and pre-processes tuples
// and exports its stream; PE 2 imports it on a PE input port thread,
// finishes the processing, and counts. Final punctuation travels in
// band, so draining the upstream PE drains the downstream one.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"streams"
	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/xport"
)

func main() {
	const tuples = 500_000

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("PE boundary stream on %s\n", addr)

	// ----- PE 1: Src → Worker×3 → Export -----
	exp := xport.NewExport("Export", func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	})
	b1 := graph.NewBuilder()
	src := b1.AddNode(&ops.Generator{Limit: tuples}, 0, 1)
	prev := src
	for i := 0; i < 3; i++ {
		w := b1.AddNode(&ops.Worker{Cost: 50}, 1, 1)
		b1.Connect(prev, 0, w, 0)
		prev = w
	}
	ex := b1.AddNode(exp, 1, 0)
	b1.Connect(prev, 0, ex, 0)
	g1, err := b1.Build()
	if err != nil {
		log.Fatal(err)
	}
	pe1, err := pe.New(g1, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		log.Fatal(err)
	}

	// ----- PE 2: Import → Worker×3 → Snk -----
	imp := xport.NewImport("Import", ln)
	snk := &streams.Sink{}
	b2 := graph.NewBuilder()
	in := b2.AddNode(imp, 0, 1)
	prev = in
	for i := 0; i < 3; i++ {
		w := b2.AddNode(&ops.Worker{Cost: 50}, 1, 1)
		b2.Connect(prev, 0, w, 0)
		prev = w
	}
	sn := b2.AddNode(snk, 1, 0)
	b2.Connect(prev, 0, sn, 0)
	g2, err := b2.Build()
	if err != nil {
		log.Fatal(err)
	}
	pe2, err := pe.New(g2, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := pe2.Start(); err != nil {
		log.Fatal(err)
	}
	if err := pe1.Start(); err != nil {
		log.Fatal(err)
	}
	pe1.Wait() // upstream drains first...
	pe2.Wait() // ...then the final punctuation drains downstream
	elapsed := time.Since(start)

	if err := exp.Err(); err != nil {
		log.Fatalf("export: %v", err)
	}
	if err := imp.Err(); err != nil {
		log.Fatalf("import: %v", err)
	}
	fmt.Printf("PE1 exported %d frames; PE2 imported %d tuples\n", exp.Sent(), imp.Received())
	fmt.Printf("downstream sink delivered %d tuples in %v (%.3g tuples/s end to end)\n",
		snk.Count(), elapsed.Round(time.Millisecond), float64(snk.Count())/elapsed.Seconds())
}
