// Threadingmodels runs one bounded workload under each of the three
// threading models (§2.2) on this host and compares end-to-end
// throughput and operator executions — the native-scale version of the
// paper's Figure 10 comparison.
//
//	go run ./examples/threadingmodels
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"streams"
)

// build returns a mixed graph (width 4, depth 8, cost 500) with a
// bounded source, plus its sink.
func build(tuples uint64) (*streams.Topology, *streams.Sink) {
	top := streams.NewTopology()
	src := top.Add(&streams.Generator{Limit: tuples}, 0, 1)
	const width, depth = 4, 8
	split := top.Add(&streams.RoundRobinSplit{Width: width}, 1, width)
	top.Connect(src, 0, split, 0)
	snk := &streams.Sink{}
	out := top.Add(snk, 1, 0)
	for w := 0; w < width; w++ {
		prev, prevPort := split, w
		for d := 0; d < depth; d++ {
			n := top.Add(&streams.Worker{Cost: 500}, 1, 1)
			top.Connect(prev, prevPort, n, 0)
			prev, prevPort = n, 0
		}
		top.Connect(prev, prevPort, out, 0)
	}
	return top, snk
}

func main() {
	const tuples = 200_000
	threads := max(2, runtime.NumCPU())
	fmt.Printf("mixed graph w=4 d=8 cost=500, %d tuples, on %d logical CPUs\n\n", tuples, runtime.NumCPU())
	fmt.Printf("%-10s %12s %14s %16s\n", "model", "elapsed", "tuples/s", "ops executed")

	for _, model := range []streams.Model{streams.ModelManual, streams.ModelDedicated, streams.ModelDynamic} {
		top, snk := build(tuples)
		start := time.Now()
		job, err := streams.Run(top, streams.RunConfig{Model: model, Threads: threads})
		if err != nil {
			log.Fatal(err)
		}
		job.Wait()
		elapsed := time.Since(start)
		if snk.Count() != tuples {
			log.Fatalf("%v delivered %d of %d tuples", model, snk.Count(), tuples)
		}
		fmt.Printf("%-10s %12s %14.4g %16d\n",
			model, elapsed.Round(time.Millisecond),
			float64(tuples)/elapsed.Seconds(), job.Executed())
	}

	fmt.Println("\nNote: on a host with few cores the models converge; the paper's")
	fmt.Println("176/184-core separation is reproduced by `streamsim -fig 10`.")
}
