// Package streams is a Go stream-processing runtime reproducing the
// scheduler described in "Low-Synchronization, Mostly Lock-Free, Elastic
// Scheduling for Streaming Runtimes" (Schneider & Wu, PLDI 2017) — the
// dynamic, elastic operator scheduler shipped in IBM Streams 4.2.
//
// The programming model is SPL's asynchronous dataflow: operators process
// continually arriving tuples and communicate exclusively over ordered
// streams. Applications are built either directly (NewTopology, Add,
// Connect) or by compiling a mini-SPL program (CompileSPL), and executed
// by a processing element under one of three threading models:
//
//   - ModelManual:    one thread per source, direct function calls.
//   - ModelDedicated: one thread per operator input port.
//   - ModelDynamic:   the paper's scalable scheduler; any thread may
//     execute any operator, and with Elastic set the number of threads
//     adapts at runtime to maximize throughput.
//
// A minimal program:
//
//	top := streams.NewTopology()
//	src := top.Add(&streams.Generator{Limit: 1e6}, 0, 1)
//	wrk := top.Add(&streams.Worker{Cost: 100}, 1, 1)
//	snk := &streams.Sink{}
//	out := top.Add(snk, 1, 0)
//	top.Connect(src, 0, wrk, 0)
//	top.Connect(wrk, 0, out, 0)
//	job, err := streams.Run(top, streams.RunConfig{Model: streams.ModelDynamic, Threads: 4})
//	if err != nil { ... }
//	job.Wait()
//	fmt.Println(snk.Count())
package streams

import (
	"fmt"
	"time"

	"streams/internal/cpuutil"
	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/sched"
	"streams/internal/tuple"
)

// Core data-flow types, re-exported from the internal packages so user
// code needs only this import.
type (
	// Tuple is the unit of data flow; see NewData.
	Tuple = tuple.Tuple
	// Submitter delivers operator output tuples downstream.
	Submitter = graph.Submitter
	// Operator is user tuple-processing logic.
	Operator = graph.Operator
	// Source is an operator that generates tuples on its own thread.
	Source = graph.Source
	// Graph is a validated stream graph.
	Graph = graph.Graph
)

// Operator library re-exports.
type (
	// Generator emits tuples at maximum rate.
	Generator = ops.Generator
	// Worker burns a configurable number of flops per tuple.
	Worker = ops.Worker
	// Sink counts (and optionally observes) delivered tuples.
	Sink = ops.Sink
	// Filter drops tuples failing a predicate.
	Filter = ops.Filter
	// Custom runs an arbitrary per-tuple function.
	Custom = ops.Custom
	// Functor maps each tuple through a function.
	Functor = ops.Functor
	// RoundRobinSplit spreads a stream across its output ports.
	RoundRobinSplit = ops.RoundRobinSplit
)

// NewData builds a data tuple from up to eight payload words.
func NewData(words ...uint64) Tuple { return tuple.NewData(words...) }

// Model selects a threading model.
type Model = pe.Model

// Threading models.
const (
	// ModelManual runs with no scheduler threads (source threads only).
	ModelManual = pe.Manual
	// ModelDedicated runs one thread per operator input port.
	ModelDedicated = pe.Dedicated
	// ModelDynamic runs the paper's dynamic scheduler.
	ModelDynamic = pe.Dynamic
)

// Sample is one elasticity trace observation.
type Sample = pe.Sample

// Topology accumulates operators and streams before execution.
type Topology struct {
	b      *graph.Builder
	frozen bool
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{b: graph.NewBuilder()} }

// Add places an operator with numIn input ports and numOut output ports,
// returning its node ID for Connect calls.
func (t *Topology) Add(op Operator, numIn, numOut int) int {
	return t.b.AddNode(op, numIn, numOut)
}

// Connect subscribes (toNode, toPort) to the stream on (fromNode,
// fromPort).
func (t *Topology) Connect(fromNode, fromPort, toNode, toPort int) {
	t.b.Connect(fromNode, fromPort, toNode, toPort)
}

// Build validates the topology into an executable Graph. A topology can
// be built once.
func (t *Topology) Build() (*Graph, error) {
	if t.frozen {
		return nil, fmt.Errorf("streams: topology already built")
	}
	t.frozen = true
	return t.b.Build()
}

// RunConfig configures a Job.
type RunConfig struct {
	// Model selects the threading model (default ModelDynamic).
	Model Model
	// Threads is the dynamic model's initial or static level.
	Threads int
	// Elastic turns on runtime thread adaptation (dynamic model only).
	Elastic bool
	// MaxThreads caps the elastic level; 0 means the logical CPU count.
	MaxThreads int
	// AdaptPeriod is the elasticity measurement period (default 10s).
	AdaptPeriod time.Duration
	// Trace observes every adaptation period (elastic runs).
	Trace func(Sample)
	// QueueCap overrides the per-port queue capacity (power of two).
	QueueCap int
	// CPUUsage overrides the CPU gate reading in [0,1]; nil reads
	// /proc/stat.
	CPUUsage func() (float64, error)
}

// Job is a running processing element.
type Job struct {
	pe *pe.PE
}

// Run builds the topology and starts executing it.
func Run(t *Topology, cfg RunConfig) (*Job, error) {
	g, err := t.Build()
	if err != nil {
		return nil, err
	}
	return RunGraph(g, cfg)
}

// RunGraph starts executing an already-built graph.
func RunGraph(g *Graph, cfg RunConfig) (*Job, error) {
	var usage cpuutil.UsageFunc
	if cfg.CPUUsage != nil {
		usage = cfg.CPUUsage
	}
	p, err := pe.New(g, pe.Config{
		Model:       cfg.Model,
		Threads:     cfg.Threads,
		Elastic:     cfg.Elastic,
		MaxThreads:  cfg.MaxThreads,
		AdaptPeriod: cfg.AdaptPeriod,
		Trace:       cfg.Trace,
		CPUUsage:    usage,
		QueueCap:    cfg.QueueCap,
		Sched:       sched.Config{QueueCap: cfg.QueueCap},
	})
	if err != nil {
		return nil, err
	}
	if err := p.Start(); err != nil {
		return nil, err
	}
	return &Job{pe: p}, nil
}

// Wait blocks until all sources finish and the graph drains, then
// releases every thread. Use with bounded sources.
func (j *Job) Wait() { j.pe.Wait() }

// Stop asks sources to stop, drains in-flight tuples and releases every
// thread. Use with unbounded sources.
func (j *Job) Stop() { j.pe.Stop() }

// Done is closed when the graph has drained.
func (j *Job) Done() <-chan struct{} { return j.pe.Done() }

// Executed returns tuples processed across all operators since start —
// the PE-wide throughput basis the elasticity algorithm uses.
func (j *Job) Executed() uint64 { return j.pe.Executed() }

// SinkDelivered returns tuples delivered to sink operators — the
// end-to-end application throughput of the paper's §5.1–5.3.
func (j *Job) SinkDelivered() uint64 { return j.pe.SinkDelivered() }

// Level returns the current thread level.
func (j *Job) Level() int { return j.pe.Level() }
