package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomLayeredDAGProperties builds random layered DAGs and checks
// structural invariants: Build accepts them, TopoOrder is a valid
// topological order covering every node, every port's producer count
// matches the edge list, and Stats is consistent.
func TestRandomLayeredDAGProperties(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			b := NewBuilder()
			src := b.AddNode(testSrc{testOp{"src"}}, 0, 1)
			prev := []int{src}
			edges := 0
			layers := 1 + rng.Intn(5)
			for l := 0; l < layers; l++ {
				width := 1 + rng.Intn(4)
				cur := make([]int, width)
				fed := make([]bool, width)
				for i := range cur {
					cur[i] = b.AddNode(testOp{fmt.Sprintf("n%d_%d", l, i)}, 1, 1)
				}
				for _, up := range prev {
					d := rng.Intn(width)
					b.Connect(up, 0, cur[d], 0)
					fed[d] = true
					edges++
				}
				for i, ok := range fed {
					if !ok {
						b.Connect(prev[rng.Intn(len(prev))], 0, cur[i], 0)
						edges++
					}
				}
				prev = cur
			}
			for _, up := range prev {
				snk := b.AddNode(testOp{"snk"}, 1, 0)
				b.Connect(up, 0, snk, 0)
				edges++
			}
			g, err := b.Build()
			if err != nil {
				t.Fatalf("Build rejected a valid DAG: %v", err)
			}

			st := g.Stats()
			if st.Streams != edges {
				t.Fatalf("Stats.Streams = %d, want %d", st.Streams, edges)
			}
			if st.Sources != 1 || st.Sinks != len(prev) {
				t.Fatalf("Stats = %+v", st)
			}

			order := g.TopoOrder()
			if len(order) != len(g.Nodes) {
				t.Fatalf("TopoOrder covers %d of %d nodes", len(order), len(g.Nodes))
			}
			pos := make(map[int]int, len(order))
			for i, n := range order {
				if _, dup := pos[n]; dup {
					t.Fatalf("TopoOrder repeats node %d", n)
				}
				pos[n] = i
			}
			producers := make(map[int]int)
			for _, n := range g.Nodes {
				for _, dests := range n.Outs {
					for _, pid := range dests {
						p := g.Ports[pid]
						if pos[n.ID] >= pos[p.Node.ID] {
							t.Fatalf("edge %d→%d violates topological order", n.ID, p.Node.ID)
						}
						producers[pid]++
					}
				}
			}
			for _, p := range g.Ports {
				if p.Producers != producers[p.ID] {
					t.Fatalf("port %d producer count %d, recomputed %d", p.ID, p.Producers, producers[p.ID])
				}
			}
		})
	}
}
