package graph

import (
	"strings"
	"testing"

	"streams/internal/tuple"
)

// testOp is a minimal operator for wiring tests.
type testOp struct{ name string }

func (o testOp) Name() string                        { return o.name }
func (o testOp) Process(Submitter, tuple.Tuple, int) {}

// testSrc is a minimal source.
type testSrc struct{ testOp }

func (testSrc) Run(Submitter, <-chan struct{}) {}

func pipeline(t *testing.T, depth int) *Graph {
	t.Helper()
	b := NewBuilder()
	src := b.AddNode(testSrc{testOp{"src"}}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		n := b.AddNode(testOp{"w"}, 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	snk := b.AddNode(testOp{"snk"}, 1, 0)
	b.Connect(prev, 0, snk, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildPipeline(t *testing.T) {
	g := pipeline(t, 5)
	st := g.Stats()
	if st.Nodes != 7 || st.Ports != 6 || st.Streams != 6 || st.Sources != 1 || st.Sinks != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if g.MaxInPorts() != 1 {
		t.Fatalf("MaxInPorts = %d, want 1", g.MaxInPorts())
	}
	// Every port has exactly one producer in a pipeline.
	for _, p := range g.Ports {
		if p.Producers != 1 {
			t.Fatalf("port %d producers = %d", p.ID, p.Producers)
		}
	}
}

func TestBuildFanOutFanIn(t *testing.T) {
	b := NewBuilder()
	src := b.AddNode(testSrc{testOp{"src"}}, 0, 1)
	w1 := b.AddNode(testOp{"w1"}, 1, 1)
	w2 := b.AddNode(testOp{"w2"}, 1, 1)
	snk := b.AddNode(testOp{"snk"}, 1, 0)
	b.Connect(src, 0, w1, 0)
	b.Connect(src, 0, w2, 0) // fan-out: one stream, two subscribers
	b.Connect(w1, 0, snk, 0) // fan-in: two streams, one port
	b.Connect(w2, 0, snk, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	snkPort := g.Ports[g.Nodes[snk].InPorts[0]]
	if snkPort.Producers != 2 {
		t.Fatalf("sink port producers = %d, want 2", snkPort.Producers)
	}
	if got := len(g.Nodes[src].Outs[0]); got != 2 {
		t.Fatalf("source subscribers = %d, want 2", got)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"nil operator", func(b *Builder) {
			b.AddNode(nil, 0, 0)
		}, "nil operator"},
		{"negative ports", func(b *Builder) {
			b.AddNode(testOp{"x"}, -1, 1)
		}, "negative port count"},
		{"unknown node", func(b *Builder) {
			b.AddNode(testSrc{testOp{"s"}}, 0, 1)
			b.Connect(0, 0, 9, 0)
		}, "unknown node"},
		{"bad out port", func(b *Builder) {
			s := b.AddNode(testSrc{testOp{"s"}}, 0, 1)
			k := b.AddNode(testOp{"k"}, 1, 0)
			b.Connect(s, 5, k, 0)
		}, "no output port 5"},
		{"bad in port", func(b *Builder) {
			s := b.AddNode(testSrc{testOp{"s"}}, 0, 1)
			k := b.AddNode(testOp{"k"}, 1, 0)
			b.Connect(s, 0, k, 3)
		}, "no input port 3"},
		{"source without Source impl", func(b *Builder) {
			s := b.AddNode(testOp{"notasource"}, 0, 1)
			k := b.AddNode(testOp{"k"}, 1, 0)
			b.Connect(s, 0, k, 0)
		}, "does not implement Source"},
		{"unconnected input", func(b *Builder) {
			b.AddNode(testSrc{testOp{"s"}}, 0, 0)
			b.AddNode(testOp{"k"}, 1, 0)
		}, "has no producers"},
		{"unconnected output", func(b *Builder) {
			b.AddNode(testSrc{testOp{"s"}}, 0, 1)
		}, "has no subscribers"},
		{"no sources", func(b *Builder) {
			a := b.AddNode(testOp{"a"}, 1, 1)
			c := b.AddNode(testOp{"c"}, 1, 1)
			b.Connect(a, 0, c, 0)
			b.Connect(c, 0, a, 0)
		}, "no source nodes"},
		{"cycle", func(b *Builder) {
			s := b.AddNode(testSrc{testOp{"s"}}, 0, 1)
			a := b.AddNode(testOp{"a"}, 1, 1)
			c := b.AddNode(testOp{"c"}, 2, 1)
			b.Connect(s, 0, c, 0)
			b.Connect(c, 0, a, 0)
			b.Connect(a, 0, c, 1)
		}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTopoOrder(t *testing.T) {
	g := pipeline(t, 10)
	order := g.TopoOrder()
	if len(order) != len(g.Nodes) {
		t.Fatalf("TopoOrder returned %d nodes, want %d", len(order), len(g.Nodes))
	}
	pos := make([]int, len(g.Nodes))
	for i, n := range order {
		pos[n] = i
	}
	for n := range g.Nodes {
		for _, s := range g.succ(n) {
			if pos[n] >= pos[s] {
				t.Fatalf("node %d not before successor %d", n, s)
			}
		}
	}
}

func TestDot(t *testing.T) {
	g := pipeline(t, 1)
	dot := g.Dot()
	for _, want := range []string{"digraph stream", `label="src"`, "n0 -> n1", "n1 -> n2"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestMaxInPorts(t *testing.T) {
	b := NewBuilder()
	s := b.AddNode(testSrc{testOp{"s"}}, 0, 3)
	j := b.AddNode(testOp{"join"}, 3, 0)
	for i := 0; i < 3; i++ {
		b.Connect(s, i, j, i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxInPorts() != 3 {
		t.Fatalf("MaxInPorts = %d, want 3", g.MaxInPorts())
	}
}

func TestLargePipelineBuild(t *testing.T) {
	g := pipeline(t, 1000)
	if len(g.Nodes) != 1002 || len(g.Ports) != 1001 {
		t.Fatalf("got %d nodes, %d ports", len(g.Nodes), len(g.Ports))
	}
}

// TestChainable pins the static chain analysis: a port is a chain
// target iff its operator has exactly one input port and no stream
// feeding it fans out to sibling subscribers. Fan-in of non-fanned
// streams stays chainable (the consumer lock still serializes the
// node); fan-out poisons every subscriber port; multi-input operators
// are never chainable.
func TestChainable(t *testing.T) {
	b := NewBuilder()
	src := b.AddNode(testSrc{testOp{"src"}}, 0, 2)
	w1 := b.AddNode(testOp{"w1"}, 1, 1) // plain pipeline hop: chainable
	fo1 := b.AddNode(testOp{"fo1"}, 1, 1)
	fo2 := b.AddNode(testOp{"fo2"}, 1, 1)
	fanin := b.AddNode(testOp{"fanin"}, 1, 1) // two non-fanned streams, one port
	join := b.AddNode(testOp{"join"}, 2, 0)   // two input ports
	b.Connect(src, 0, w1, 0)
	b.Connect(src, 1, fo1, 0) // src out 1 fans out to fo1 and fo2
	b.Connect(src, 1, fo2, 0)
	b.Connect(w1, 0, fanin, 0)
	b.Connect(fo1, 0, fanin, 0)
	b.Connect(fo2, 0, join, 0)
	b.Connect(fanin, 0, join, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := map[string]bool{
		"w1":    true,  // single-in, single-subscriber stream
		"fanin": true,  // single-in; both feeding streams are single-subscriber
		"fo1":   false, // fed by a fan-out stream
		"fo2":   false, // fed by a fan-out stream
		"join":  false, // two input ports
	}
	seen := 0
	for _, p := range g.Ports {
		name := p.Node.Op.Name()
		w, ok := want[name]
		if !ok {
			t.Fatalf("unexpected port on %q", name)
		}
		if p.Chainable != w {
			t.Errorf("port of %q chainable = %v, want %v", name, p.Chainable, w)
		}
		seen++
	}
	if seen != 6 { // join has two ports
		t.Fatalf("saw %d ports, want 6", seen)
	}
	if st := g.Stats(); st.Chainable != 2 {
		t.Fatalf("Stats.Chainable = %d, want 2", st.Chainable)
	}
}
