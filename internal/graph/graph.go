// Package graph models the stream graph a processing element executes:
// operators with input and output ports, connected by typed streams.
//
// The programming model is SPL's asynchronous dataflow (§2.1 of the
// paper): operators communicate exclusively by sending tuples over
// ordered streams, may keep local state, and share no global state. A
// Graph is a static description; packages sched and pe decide how threads
// execute it.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"streams/internal/tuple"
)

// Submitter is how an operator sends result tuples downstream: it routes
// a tuple to every input port subscribed to the given output port. The
// concrete implementation is supplied by the executing runtime (fused
// call for the manual model, queue push for dedicated and dynamic).
type Submitter interface {
	Submit(t tuple.Tuple, outPort int)
}

// Operator contains the logic for processing incoming tuples. Process is
// invoked with exclusive access to the input port's tuple sequence, but
// NOT necessarily by the same thread every time, and different input
// ports of the same operator may be processed concurrently — exactly the
// contract of the paper's dynamic model. Operators protect their own
// state if they have any.
type Operator interface {
	// Name identifies the operator in diagnostics.
	Name() string
	// Process handles one tuple arriving on input port inPort, submitting
	// any results via out. It must not retain t.Ref beyond the call
	// unless the referenced value is immutable.
	Process(out Submitter, t tuple.Tuple, inPort int)
}

// Source is an operator with no input ports. Sources own their thread
// (the paper's "operator threads" the scheduler cannot control, §2.3):
// Run generates tuples until it returns or stop is closed.
type Source interface {
	Operator
	// Run produces tuples on the operator's output ports until stop is
	// closed or the source is exhausted. It must return promptly once
	// stop is observed.
	Run(out Submitter, stop <-chan struct{})
}

// Puncts is implemented by operators that want to observe punctuation.
// The runtime forwards window and final punctuation automatically whether
// or not an operator implements Puncts.
type Puncts interface {
	// OnPunct observes a punctuation arriving on inPort before the
	// runtime forwards it.
	OnPunct(out Submitter, kind tuple.Kind, inPort int)
}

// Node is one operator instance placed in a graph.
type Node struct {
	// ID is the node's index in Graph.Nodes.
	ID int
	// Op is the operator logic.
	Op Operator
	// NumIn and NumOut are the port counts declared at AddNode time.
	NumIn, NumOut int
	// Outs maps each output port index to the global IDs of the input
	// ports subscribed to it, in subscription order.
	Outs [][]int
	// InPorts maps each input port index to its global input-port ID.
	InPorts []int
}

// InPort is one operator input port, the unit the scheduler hands to
// threads. Global input-port IDs index Graph.Ports and the scheduler's
// queuesTable.
type InPort struct {
	// ID is the global input-port ID.
	ID int
	// Node is the owning node.
	Node *Node
	// Index is the port's index within the owning operator.
	Index int
	// Producers is the number of streams subscribed to this port; the
	// runtime counts this many final punctuations before closing it.
	Producers int
	// Chainable marks the port as a valid target for inline chain
	// execution (run-to-completion operator chaining in the dynamic
	// scheduler): the owning operator has exactly one input port, and
	// every stream feeding this port has this port as its only
	// subscriber. Single input port means holding this port's consumer
	// lock serializes all execution of the node, so an inline execution
	// under that lock has the same exclusivity as a queue drain; single
	// subscriber keeps a chained producer from racing ahead of sibling
	// copies of the same stream it has not delivered yet. Precomputed at
	// build time so the scheduler's hot path pays one slice load.
	Chainable bool
}

// Graph is a validated, immutable stream graph.
type Graph struct {
	// Nodes in insertion order; Node.ID indexes this slice.
	Nodes []*Node
	// Ports holds every input port; InPort.ID indexes this slice.
	Ports []*InPort
	// SourceNodes lists the nodes with no input ports.
	SourceNodes []*Node
}

// Builder accumulates nodes and connections and validates them into a
// Graph.
type Builder struct {
	nodes []*Node
	conns []conn
	errs  []error
}

type conn struct {
	fromNode, fromPort, toNode, toPort int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode places an operator with the given port counts and returns its
// node ID. Errors (negative counts, nil operator) are deferred to Build.
func (b *Builder) AddNode(op Operator, numIn, numOut int) int {
	id := len(b.nodes)
	if op == nil {
		b.errs = append(b.errs, fmt.Errorf("graph: node %d has a nil operator", id))
		op = noOp{}
	}
	if numIn < 0 || numOut < 0 {
		b.errs = append(b.errs, fmt.Errorf("graph: node %d (%s) has negative port count", id, op.Name()))
		numIn, numOut = max(numIn, 0), max(numOut, 0)
	}
	b.nodes = append(b.nodes, &Node{ID: id, Op: op, NumIn: numIn, NumOut: numOut})
	return id
}

type noOp struct{}

func (noOp) Name() string                        { return "<nil>" }
func (noOp) Process(Submitter, tuple.Tuple, int) {}

var _ Operator = noOp{}

// Connect subscribes input port (toNode, toPort) to the stream produced
// on output port (fromNode, fromPort). A stream may fan out to many input
// ports, and an input port may subscribe to many streams (fan-in).
func (b *Builder) Connect(fromNode, fromPort, toNode, toPort int) {
	b.conns = append(b.conns, conn{fromNode, fromPort, toNode, toPort})
}

// Build validates the accumulated description and returns the immutable
// Graph. The graph must be a DAG: the dynamic scheduler itself tolerates
// cycles (the paper notes user graphs may have them), but every
// experiment and example in this repository is acyclic, and rejecting
// cycles at build time catches wiring mistakes.
func (b *Builder) Build() (*Graph, error) {
	errs := append([]error(nil), b.errs...)
	for _, c := range b.conns {
		if c.fromNode < 0 || c.fromNode >= len(b.nodes) || c.toNode < 0 || c.toNode >= len(b.nodes) {
			errs = append(errs, fmt.Errorf("graph: connection %+v references unknown node", c))
			continue
		}
		from, to := b.nodes[c.fromNode], b.nodes[c.toNode]
		if c.fromPort < 0 || c.fromPort >= from.NumOut {
			errs = append(errs, fmt.Errorf("graph: node %d (%s) has no output port %d", from.ID, from.Op.Name(), c.fromPort))
		}
		if c.toPort < 0 || c.toPort >= to.NumIn {
			errs = append(errs, fmt.Errorf("graph: node %d (%s) has no input port %d", to.ID, to.Op.Name(), c.toPort))
		}
	}
	if len(errs) > 0 {
		return nil, joinErrors(errs)
	}

	g := &Graph{Nodes: b.nodes}
	for _, n := range g.Nodes {
		n.Outs = make([][]int, n.NumOut)
		n.InPorts = make([]int, n.NumIn)
		for i := 0; i < n.NumIn; i++ {
			p := &InPort{ID: len(g.Ports), Node: n, Index: i}
			n.InPorts[i] = p.ID
			g.Ports = append(g.Ports, p)
		}
		if n.NumIn == 0 {
			if _, ok := n.Op.(Source); !ok {
				errs = append(errs, fmt.Errorf("graph: node %d (%s) has no input ports but does not implement Source", n.ID, n.Op.Name()))
			}
			g.SourceNodes = append(g.SourceNodes, n)
		}
	}
	for _, c := range b.conns {
		from, to := g.Nodes[c.fromNode], g.Nodes[c.toNode]
		pid := to.InPorts[c.toPort]
		from.Outs[c.fromPort] = append(from.Outs[c.fromPort], pid)
		g.Ports[pid].Producers++
	}
	for _, n := range g.Nodes {
		for i := 0; i < n.NumIn; i++ {
			if g.Ports[n.InPorts[i]].Producers == 0 {
				errs = append(errs, fmt.Errorf("graph: node %d (%s) input port %d has no producers", n.ID, n.Op.Name(), i))
			}
		}
		for i := 0; i < n.NumOut; i++ {
			if len(n.Outs[i]) == 0 {
				errs = append(errs, fmt.Errorf("graph: node %d (%s) output port %d has no subscribers", n.ID, n.Op.Name(), i))
			}
		}
	}
	if len(g.SourceNodes) == 0 && len(g.Nodes) > 0 {
		errs = append(errs, fmt.Errorf("graph: no source nodes"))
	}
	if cycle := g.findCycle(); cycle != nil {
		errs = append(errs, fmt.Errorf("graph: cycle through nodes %v", cycle))
	}
	if len(errs) > 0 {
		return nil, joinErrors(errs)
	}
	g.markChainable()
	return g, nil
}

// markChainable precomputes InPort.Chainable: the static half of the
// scheduler's inline chain analysis (the dynamic half — lock, queue
// occupancy, budgets — is checked per flush). A port qualifies when its
// owning operator has a single input port and no stream feeding it fans
// out to other ports; see the field comment for why both matter.
func (g *Graph) markChainable() {
	fanOutFed := make([]bool, len(g.Ports))
	for _, n := range g.Nodes {
		for _, dests := range n.Outs {
			if len(dests) <= 1 {
				continue
			}
			for _, pid := range dests {
				fanOutFed[pid] = true
			}
		}
	}
	for _, p := range g.Ports {
		p.Chainable = p.Node.NumIn == 1 && !fanOutFed[p.ID]
	}
}

func joinErrors(errs []error) error {
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "; "))
}

// findCycle returns the node IDs on some cycle, or nil if the graph is
// acyclic.
func (g *Graph) findCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Nodes))
	var stack []int
	var dfs func(n int) []int
	dfs = func(n int) []int {
		color[n] = gray
		stack = append(stack, n)
		for _, succ := range g.succ(n) {
			switch color[succ] {
			case gray:
				// Found a back edge; slice out the cycle.
				for i, v := range stack {
					if v == succ {
						return append([]int(nil), stack[i:]...)
					}
				}
			case white:
				if c := dfs(succ); c != nil {
					return c
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return nil
	}
	for n := range g.Nodes {
		if color[n] == white {
			if c := dfs(n); c != nil {
				return c
			}
		}
	}
	return nil
}

// succ returns the distinct successor node IDs of node n, sorted.
func (g *Graph) succ(n int) []int {
	seen := map[int]bool{}
	var out []int
	for _, dests := range g.Nodes[n].Outs {
		for _, pid := range dests {
			id := g.Ports[pid].Node.ID
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// TopoOrder returns the node IDs in a topological order. Build guarantees
// acyclicity, so this always succeeds on a built graph.
func (g *Graph) TopoOrder() []int {
	indeg := make([]int, len(g.Nodes))
	for n := range g.Nodes {
		for _, s := range g.succ(n) {
			indeg[s]++
		}
	}
	var queue, order []int
	for n := range g.Nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range g.succ(n) {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return order
}

// MaxInPorts returns the largest number of input ports on any single
// operator. The PE's minimum thread level is one more than this value,
// the paper's deadlock-avoidance rule (§4.2.3).
func (g *Graph) MaxInPorts() int {
	m := 0
	for _, n := range g.Nodes {
		if n.NumIn > m {
			m = n.NumIn
		}
	}
	return m
}

// Stats summarizes the graph for diagnostics.
type Stats struct {
	Nodes, Ports, Streams, Sources, Sinks int
	// Chainable counts the input ports eligible for inline chain
	// execution (see InPort.Chainable).
	Chainable int
}

// Stats computes summary counts.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), Ports: len(g.Ports), Sources: len(g.SourceNodes)}
	for _, n := range g.Nodes {
		for _, dests := range n.Outs {
			s.Streams += len(dests)
		}
		if n.NumOut == 0 {
			s.Sinks++
		}
	}
	for _, p := range g.Ports {
		if p.Chainable {
			s.Chainable++
		}
	}
	return s
}

// Dot renders the graph in Graphviz DOT format for documentation and
// debugging.
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph stream {\n  rankdir=LR;\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, n.Op.Name())
	}
	for _, n := range g.Nodes {
		for outPort, dests := range n.Outs {
			for _, pid := range dests {
				p := g.Ports[pid]
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%d:%d\"];\n", n.ID, p.Node.ID, outPort, p.Index)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
