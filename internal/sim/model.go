package sim

import (
	"fmt"
	"math"
)

// ThreadingModel selects the execution policy being modeled.
type ThreadingModel int

// The three threading models of §2.2.
const (
	// Manual: one thread executes everything by direct calls.
	Manual ThreadingModel = iota
	// Dedicated: one thread per operator input port.
	Dedicated
	// Dynamic: the paper's scheduler with an explicit thread count.
	Dynamic
)

// String implements fmt.Stringer.
func (t ThreadingModel) String() string {
	switch t {
	case Manual:
		return "manual"
	case Dedicated:
		return "dedicated"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("ThreadingModel(%d)", int(t))
	}
}

// Workload is one of the paper's synthetic graphs: width parallel chains
// of depth workers, each costing Cost flops per tuple (§5).
type Workload struct {
	Width, Depth, Cost int
}

// String implements fmt.Stringer in the paper's panel-title format.
func (w Workload) String() string {
	return fmt.Sprintf("w %d, d %d, cost %d", w.Width, w.Depth, w.Cost)
}

// hops returns queue handoffs per tuple: split (if any) + depth workers +
// sink.
func (w Workload) hops() int {
	h := w.Depth + 1
	if w.Width > 1 {
		h++
	}
	return h
}

// OpsPerTuple returns operator executions per end-to-end tuple — the
// factor between sink throughput and the PE-wide throughput the
// elasticity algorithm sees (Fig. 11 reports the latter).
func (w Workload) OpsPerTuple() int { return w.hops() }

// Model evaluates one workload on one machine.
type Model struct {
	M *Machine
	W Workload
}

// dedConvergeFactor triples sink contention under the dedicated model:
// blocked producers there spin or park on the full queue instead of
// draining it themselves, which is precisely the work the dynamic
// scheduler's reSchedule converts into progress (§4.1.4, §5.2).
const dedConvergeFactor = 3.0

// dedContenderCap bounds how many dedicated producer threads contend on
// the sink at once (the scheduler only runs so many of an oversubscribed
// thread set simultaneously).
const dedContenderCap = 16

// capacityT returns the compute-capacity throughput bound (tuples/s) for
// k busy threads and per-tuple CPU work wns.
func (mo Model) capacityT(k int, wns float64) float64 {
	return mo.M.eff(k) * 1e9 / wns
}

// sinkService returns the serialized per-tuple cost at the sink for the
// given number of converging threads and a contention multiplier.
func (mo Model) sinkService(contenders int, factor float64) float64 {
	m := mo.M
	if contenders < 1 {
		contenders = 1
	}
	return m.SinkLockNs + m.QueueNs + factor*m.SinkBounceNs*float64(contenders-1)
}

// freeListPerTuple returns the amortized global free-list cost per hop
// for k dynamic threads.
func (mo Model) freeListPerTuple(k int) float64 {
	m := mo.M
	return (m.FreeListNs + m.BounceNs*float64(k-1)) / m.DrainBatch
}

// dynNs returns the dynamic scheduler's per-hop synchronization cost at
// thread level k, including the SMT sharing penalty beyond one thread
// per physical core.
func (mo Model) dynNs(k int) float64 {
	m := mo.M
	over := float64(k-m.PhysCores) / float64(m.PhysCores)
	if over < 0 {
		over = 0
	}
	return m.DynNs * (1 + m.SMTSyncPenalty*over)
}

// SinkThroughput returns the modeled end-to-end throughput in tuples/s
// at the sink (the §5.1–5.3 metric). threads is the dynamic thread
// level; Manual and Dedicated ignore it.
func (mo Model) SinkThroughput(tm ThreadingModel, threads int) float64 {
	m, w := mo.M, mo.W
	wop := float64(w.Cost) * m.FlopNs
	hops := float64(w.hops())
	logical := m.LogicalCores()

	switch tm {
	case Manual:
		// One thread, direct calls, uncontended sink.
		per := m.SrcNs + float64(w.Depth)*wop + hops*m.CallNs + m.SinkLockNs
		return 1e9 / per

	case Dedicated:
		perHop := m.QueueNs + m.CtxNs/m.Batch
		wns := m.SrcNs + float64(w.Depth)*wop + hops*perHop
		capT := mo.capacityT(logical, wns)
		contenders := 1
		if w.Width > 1 {
			contenders = min(w.Width, logical, dedContenderCap)
		}
		sinkT := 1e9 / mo.sinkService(contenders, dedConvergeFactor)
		srcT := 1e9 / (m.SrcNs + perHop)
		// Per-chain ordering bound: one thread owns each stage.
		structT := float64(w.Width) * 1e9 / (wop + perHop)
		return min(capT, sinkT, srcT, structT)

	case Dynamic:
		k := threads
		if k < 1 {
			k = 1
		}
		perHop := m.QueueNs + mo.dynNs(k) + mo.freeListPerTuple(k)
		contenders := 1
		if w.Width > 1 {
			contenders = min(k, w.Width)
		}
		sinkSvc := mo.sinkService(contenders, 1)
		wns := m.SrcNs + float64(w.Depth)*wop + hops*perHop + sinkSvc
		capT := mo.capacityT(k, wns)
		sinkT := 1e9 / sinkSvc
		srcT := 1e9 / (m.SrcNs + perHop)
		structT := float64(w.Width) * 1e9 / (wop + perHop)
		return min(capT, sinkT, srcT, structT)

	default:
		panic(fmt.Sprintf("sim: unknown threading model %d", tm))
	}
}

// PEThroughput returns the modeled PE-wide throughput (tuples processed
// across all operators per second) — what the elasticity controller
// measures.
func (mo Model) PEThroughput(tm ThreadingModel, threads int) float64 {
	return mo.SinkThroughput(tm, threads) * float64(mo.W.OpsPerTuple())
}

// contention returns how saturated the sink serialization point is at
// thread level k, in [0, ∞): the ratio of compute capacity to sink
// capacity. Values near or above 1 mean threads queue on the sink and
// measured throughput becomes noisy (§5.4's oscillation precondition).
func (mo Model) contention(k int) float64 {
	if mo.W.Width == 1 {
		return 0
	}
	m, w := mo.M, mo.W
	wop := float64(w.Cost) * m.FlopNs
	perHop := m.QueueNs + mo.dynNs(k) + mo.freeListPerTuple(k)
	sinkSvc := mo.sinkService(min(k, w.Width), 1)
	wns := m.SrcNs + float64(w.Depth)*wop + float64(w.hops())*perHop + sinkSvc
	capT := mo.capacityT(k, wns)
	sinkT := 1e9 / sinkSvc
	return capT / sinkT
}

// NoiseSD returns the relative standard deviation of a throughput
// measurement at thread level k under the dynamic model.
func (mo Model) NoiseSD(k int) float64 {
	sd := mo.M.NoiseBase
	if c := mo.contention(k); c > 0.85 {
		sd += mo.M.NoiseContended * math.Min(1, (c-0.85)/0.3)
	}
	return sd
}

// BestDynamic sweeps thread levels 1..LogicalCores and returns the level
// with the highest modeled throughput.
func (mo Model) BestDynamic() (level int, tput float64) {
	for k := 1; k <= mo.M.LogicalCores(); k++ {
		if t := mo.SinkThroughput(Dynamic, k); t > tput {
			level, tput = k, t
		}
	}
	return level, tput
}

// CtxSwitchesPerSecond estimates context switches per second, the §5.1
// observable (≈10M for dedicated vs ≈160k for dynamic on the pipeline).
func (mo Model) CtxSwitchesPerSecond(tm ThreadingModel, threads int) float64 {
	T := mo.SinkThroughput(tm, threads)
	switch tm {
	case Manual:
		return 0
	case Dedicated:
		// Every thread wakes once per Batch tuples on each hop.
		return T * float64(mo.W.hops()) / mo.M.Batch
	case Dynamic:
		// Threads switch only when they fail to find work; roughly once
		// per DrainBatch·hops executions per thread pool pass.
		return T * float64(mo.W.hops()) / (mo.M.DrainBatch * 64)
	default:
		return 0
	}
}
