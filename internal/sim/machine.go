// Package sim models the paper's two evaluation machines — a 176-logical-
// core Intel Xeon E7-8880 v4 system and a 184-logical-core IBM Power8
// system — executing the evaluation stream graphs under the three
// threading models.
//
// Why a model: the paper's claims are about thread-scaling behaviour on
// large multicores, which cannot be measured on this repository's CI
// hosts, and Go's runtime multiplexes goroutines in a way that obscures
// explicit thread-count control. The model is an analytic cost model
// with the effects the paper attributes its results to, each as an
// explicit, documented term:
//
//   - per-tuple floating-point work (the experiments' cost parameter)
//   - queue handoff cost per hop (all queued models)
//   - the dynamic scheduler's extra synchronization per hop (enforcer
//     CAS, tuple copy) and its amortized global free-list access, whose
//     cost grows with the number of contending threads (cache-line
//     bouncing, §4.1.2)
//   - context-switch amortization for the dedicated model's
//     oversubscribed threads (§5.1)
//   - serialization at the sink's lock with contention growing in the
//     number of converging threads (§5.2)
//   - SMT capacity: each additional hardware thread on a core adds less
//     than the one before, with Power8's 8-way SMT flatter than Xeon's
//     2-way
//
// The same elasticity controller that drives the native runtime
// (internal/elastic) is driven against the model to regenerate the
// paper's Figure 11 traces; measurement noise grows with contention,
// which is what produces the paper's oscillation pathology.
//
// The model reproduces shapes — who wins, by roughly what factor, where
// crossovers and settle points fall — not absolute tuples/s.
package sim

// Machine is a calibrated machine profile.
type Machine struct {
	// Name labels output ("Xeon", "Power8").
	Name string
	// PhysCores is the number of physical cores.
	PhysCores int
	// SMTMarginal[i] is the marginal capacity of the (i+1)-th hardware
	// thread sharing a core; SMTMarginal[0] is 1.
	SMTMarginal []float64
	// FlopNs is nanoseconds per floating-point operation on one thread.
	FlopNs float64
	// CallNs is the per-hop cost of a fused (manual-model) submit:
	// direct function call, no queue, no copy.
	CallNs float64
	// QueueNs is the per-hop cost of a queued handoff: tuple copy in,
	// copy out, SPSC index updates.
	QueueNs float64
	// DynNs is the dynamic scheduler's extra per-hop cost: producer and
	// consumer try-locks and the occasional reSchedule.
	DynNs float64
	// CtxNs is one context switch.
	CtxNs float64
	// Batch is the average number of tuples a dedicated thread processes
	// per scheduling quantum (amortizes CtxNs).
	Batch float64
	// DrainBatch is the average number of tuples a dynamic thread drains
	// per free-list acquisition (amortizes free-list costs, §4.1.2).
	DrainBatch float64
	// FreeListNs is the base cost of one free-list acquisition.
	FreeListNs float64
	// BounceNs is the extra free-list cost per additional contending
	// thread (global cache-line bouncing).
	BounceNs float64
	// SinkLockNs is the uncontended sink-lock critical section.
	SinkLockNs float64
	// SinkBounceNs is the extra sink-lock cost per additional thread
	// converging on the sink.
	SinkBounceNs float64
	// SMTSyncPenalty inflates the dynamic scheduler's synchronization
	// cost when threads outnumber physical cores and share them via SMT:
	// the effective DynNs is multiplied by
	// 1 + SMTSyncPenalty·(k-PhysCores)/PhysCores. Xeon's 2-way SMT pays
	// heavily (atomics contend for shared core resources and lock
	// holders get descheduled); Power8's 8-way SMT was built to hide
	// exactly this latency and pays almost nothing.
	SMTSyncPenalty float64
	// SrcNs is the source's per-tuple generation cost.
	SrcNs float64
	// NoiseBase is the relative standard deviation of throughput
	// measurements at low contention.
	NoiseBase float64
	// NoiseContended is the additional relative standard deviation when
	// the sink lock saturates.
	NoiseContended float64
}

// LogicalCores returns the number of hardware threads.
func (m *Machine) LogicalCores() int { return m.PhysCores * len(m.SMTMarginal) }

// eff returns the effective parallel capacity (in core-equivalents) of k
// busy threads, filling SMT ways breadth-first across physical cores.
func (m *Machine) eff(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > m.LogicalCores() {
		k = m.LogicalCores()
	}
	full := k / m.PhysCores // SMT ways fully occupied on every core
	rem := k % m.PhysCores  // cores with one extra way occupied
	capacity := 0.0
	for i := 0; i < full; i++ {
		capacity += float64(m.PhysCores) * m.SMTMarginal[i]
	}
	if full < len(m.SMTMarginal) {
		capacity += float64(rem) * m.SMTMarginal[full]
	}
	return capacity
}

// Xeon returns the profile of the paper's Intel testbed: 4 × E7-8880 v4
// at 2.2 GHz, 22 cores each, 2-way SMT → 176 logical cores.
func Xeon() *Machine {
	return &Machine{
		Name:           "Xeon",
		PhysCores:      88,
		SMTMarginal:    []float64{1, 0.40},
		FlopNs:         0.45,
		CallNs:         25,
		QueueNs:        110,
		DynNs:          100,
		CtxNs:          5000,
		Batch:          64,
		DrainBatch:     32,
		FreeListNs:     150,
		BounceNs:       20,
		SinkLockNs:     25,
		SinkBounceNs:   60,
		SMTSyncPenalty: 2.5,
		SrcNs:          120,
		NoiseBase:      0.01,
		NoiseContended: 0.10,
	}
}

// Power8 returns the profile of the paper's IBM testbed: 2 × Power8
// 8247-22L at 3 GHz, 12 cores each with one disabled, 8-way SMT → 184
// logical cores. Per-core throughput is higher than Xeon's but the
// marginal value of its deep SMT is flatter, and its 128-byte cache
// lines make cross-core handoffs costlier.
func Power8() *Machine {
	return &Machine{
		Name:           "Power8",
		PhysCores:      23,
		SMTMarginal:    []float64{1, 0.45, 0.30, 0.25, 0.20, 0.15, 0.12, 0.10},
		FlopNs:         0.33,
		CallNs:         35,
		QueueNs:        280,
		DynNs:          220,
		CtxNs:          6000,
		Batch:          64,
		DrainBatch:     32,
		FreeListNs:     220,
		BounceNs:       14,
		SinkLockNs:     35,
		SinkBounceNs:   60,
		SMTSyncPenalty: 0.05,
		SrcNs:          150,
		NoiseBase:      0.01,
		NoiseContended: 0.12,
	}
}
