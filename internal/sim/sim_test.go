package sim

import (
	"testing"
)

func machines() []*Machine { return []*Machine{Xeon(), Power8()} }

func TestLogicalCores(t *testing.T) {
	if Xeon().LogicalCores() != 176 {
		t.Fatalf("Xeon logical cores = %d, want 176", Xeon().LogicalCores())
	}
	if Power8().LogicalCores() != 184 {
		t.Fatalf("Power8 logical cores = %d, want 184", Power8().LogicalCores())
	}
}

func TestEffMonotonicAndConcave(t *testing.T) {
	for _, m := range machines() {
		prev := 0.0
		prevGain := 2.0
		for k := 1; k <= m.LogicalCores(); k++ {
			e := m.eff(k)
			if e <= prev {
				t.Fatalf("%s: eff(%d)=%g not increasing (prev %g)", m.Name, k, e, prev)
			}
			gain := e - prev
			if gain > prevGain+1e-9 && k > m.PhysCores {
				t.Fatalf("%s: marginal gain grew past the physical cores at k=%d", m.Name, k)
			}
			prev, prevGain = e, gain
		}
		if m.eff(m.LogicalCores()+50) != m.eff(m.LogicalCores()) {
			t.Fatalf("%s: eff should saturate at the logical core count", m.Name)
		}
	}
}

func TestModelPositive(t *testing.T) {
	for _, m := range machines() {
		for _, w := range []Workload{
			{1, 1000, 1}, {1000, 1, 1}, {10, 100, 1000}, {1, 1, 0},
		} {
			mo := Model{M: m, W: w}
			for _, tm := range []ThreadingModel{Manual, Dedicated, Dynamic} {
				if tp := mo.SinkThroughput(tm, 8); tp <= 0 {
					t.Fatalf("%s %v %v: non-positive throughput %g", m.Name, w, tm, tp)
				}
			}
		}
	}
}

// TestFig9PipelineOrdering asserts the §5.1 result on both machines and
// all three costs: dedicated wins, dynamic at its best is the middle
// ground, manual is worst — and the dedicated/dynamic gap narrows as
// per-tuple cost grows.
func TestFig9PipelineOrdering(t *testing.T) {
	for _, m := range machines() {
		var prevGap float64 = -1
		for _, cost := range []int{1, 100, 1000} {
			mo := Model{M: m, W: Workload{Width: 1, Depth: 1000, Cost: cost}}
			manual := mo.SinkThroughput(Manual, 1)
			ded := mo.SinkThroughput(Dedicated, 0)
			_, dyn := mo.BestDynamic()
			if !(ded > dyn && dyn > manual) {
				t.Fatalf("%s cost %d: want dedicated(%.3g) > dynamic(%.3g) > manual(%.3g)",
					m.Name, cost, ded, dyn, manual)
			}
			gap := ded / dyn
			if prevGap > 0 && gap > prevGap*1.02 {
				t.Fatalf("%s: dedicated/dynamic gap grew with cost: %.3f → %.3f", m.Name, prevGap, gap)
			}
			prevGap = gap
		}
		// §5.1: the gap is roughly 1.4–1.6× at cost 1 and ~1.25× at cost
		// 1000 — allow generous bands.
		mo := Model{M: m, W: Workload{Width: 1, Depth: 1000, Cost: 1}}
		_, dyn := mo.BestDynamic()
		gap1 := mo.SinkThroughput(Dedicated, 0) / dyn
		if gap1 < 1.2 || gap1 > 2.2 {
			t.Fatalf("%s cost 1: dedicated/dynamic gap %.2f outside [1.2, 2.2]", m.Name, gap1)
		}
	}
}

// TestFig9DataParallelCheap asserts the §5.2 cost-1 result: no effective
// parallelism, manual wins, dedicated collapses, and the elastic optimum
// is a very small thread count.
func TestFig9DataParallelCheap(t *testing.T) {
	for _, m := range machines() {
		mo := Model{M: m, W: Workload{Width: 1000, Depth: 1, Cost: 1}}
		manual := mo.SinkThroughput(Manual, 1)
		ded := mo.SinkThroughput(Dedicated, 0)
		best, dyn := mo.BestDynamic()
		if !(manual > dyn && dyn > ded) {
			t.Fatalf("%s: want manual(%.3g) > dynamic(%.3g) > dedicated(%.3g)",
				m.Name, manual, dyn, ded)
		}
		if best > 32 {
			t.Fatalf("%s: best dynamic level %d; the paper finds very few threads best", m.Name, best)
		}
		// Degradation: many threads must be clearly worse than the peak.
		if deg := mo.SinkThroughput(Dynamic, m.LogicalCores()); deg > 0.6*dyn {
			t.Fatalf("%s: no degradation at max threads (%.3g vs peak %.3g)", m.Name, deg, dyn)
		}
	}
}

// TestFig9DataParallelCostly asserts the §5.2 high-cost result: the
// relationships flip — dynamic at its (small) optimum beats dedicated,
// which beats manual; on Xeon the optimum is ≈8–10 threads at cost
// 10,000 and on Power8 ≈16–24 at cost 100,000.
func TestFig9DataParallelCostly(t *testing.T) {
	cases := []struct {
		m          *Machine
		cost       int
		loLv, hiLv int
	}{
		{Xeon(), 10000, 5, 20},
		{Power8(), 100000, 12, 32},
	}
	for _, tc := range cases {
		mo := Model{M: tc.m, W: Workload{Width: 1000, Depth: 1, Cost: tc.cost}}
		manual := mo.SinkThroughput(Manual, 1)
		ded := mo.SinkThroughput(Dedicated, 0)
		best, dyn := mo.BestDynamic()
		if !(dyn > ded && ded > manual) {
			t.Fatalf("%s cost %d: want dynamic(%.3g) > dedicated(%.3g) > manual(%.3g)",
				tc.m.Name, tc.cost, dyn, ded, manual)
		}
		if best < tc.loLv || best > tc.hiLv {
			t.Fatalf("%s cost %d: best level %d outside paper band [%d, %d]",
				tc.m.Name, tc.cost, best, tc.loLv, tc.hiLv)
		}
	}
}

// TestFig10MixedOrdering asserts §5.3: under the realistic mixed graph,
// dynamic is always best, dedicated second, manual worst — on both
// machines at every cost.
func TestFig10MixedOrdering(t *testing.T) {
	for _, m := range machines() {
		for _, cost := range []int{1, 100, 1000} {
			mo := Model{M: m, W: Workload{Width: 10, Depth: 100, Cost: cost}}
			manual := mo.SinkThroughput(Manual, 1)
			ded := mo.SinkThroughput(Dedicated, 0)
			_, dyn := mo.BestDynamic()
			if !(dyn > ded && ded > manual) {
				t.Fatalf("%s cost %d: want dynamic(%.3g) > dedicated(%.3g) > manual(%.3g)",
					m.Name, cost, dyn, ded, manual)
			}
		}
	}
}

// TestFig10ArchDivergence asserts §5.4's headline: the same mixed
// application wants ~80 threads on Xeon but maxes out Power8 — the case
// for elastic adaptation.
func TestFig10ArchDivergence(t *testing.T) {
	xe := Model{M: Xeon(), W: Workload{Width: 10, Depth: 100, Cost: 1000}}
	bestX, _ := xe.BestDynamic()
	if bestX < 50 || bestX > 120 {
		t.Fatalf("Xeon mixed best level %d, paper settles ≈80", bestX)
	}
	p8 := Model{M: Power8(), W: Workload{Width: 10, Depth: 100, Cost: 1000}}
	bestP, _ := p8.BestDynamic()
	if bestP < 150 {
		t.Fatalf("Power8 mixed best level %d, paper maxes out at 184", bestP)
	}
}

// TestContextSwitchClaim asserts §5.1's measurement: the dedicated model
// performs orders of magnitude more context switches than dynamic.
func TestContextSwitchClaim(t *testing.T) {
	mo := Model{M: Xeon(), W: Workload{Width: 1, Depth: 1000, Cost: 1}}
	ded := mo.CtxSwitchesPerSecond(Dedicated, 0)
	dyn := mo.CtxSwitchesPerSecond(Dynamic, 100)
	if ded < 20*dyn {
		t.Fatalf("dedicated ctx/s %.3g not ≫ dynamic %.3g", ded, dyn)
	}
	if mo.CtxSwitchesPerSecond(Manual, 1) != 0 {
		t.Fatal("manual model should not context switch")
	}
}

// TestElasticTraceRampAndSettle reproduces the Fig. 11 pipeline rows:
// quick geometric ramp-up, then settling in a band whose throughput is
// within a few percent of the static optimum.
func TestElasticTraceRampAndSettle(t *testing.T) {
	for _, m := range machines() {
		mo := Model{M: m, W: Workload{Width: 1, Depth: 1000, Cost: 1}}
		trace := RunElastic(mo, ElasticConfig{Seed: 1})
		if len(trace) != 140 { // 1400s / 10s periods
			t.Fatalf("%s: trace has %d points", m.Name, len(trace))
		}
		// Ramp: within the first 15 periods the level must exceed half
		// the eventual settle point.
		lo, hi := SettledLevels(trace, 0.25)
		rampMax := 0
		for _, p := range trace[:15] {
			rampMax = max(rampMax, p.Threads)
		}
		if rampMax < lo/2 {
			t.Fatalf("%s: ramp reached only %d threads by period 15 (settle band [%d, %d])",
				m.Name, rampMax, lo, hi)
		}
		// Settle: the paper's Xeon runs settle between 72–132 and
		// Power8 between 128–160; allow generous bands.
		switch m.Name {
		case "Xeon":
			if lo < 25 || hi > 176 {
				t.Fatalf("Xeon settle band [%d, %d] implausible vs paper 72–132", lo, hi)
			}
		case "Power8":
			if lo < 80 || hi > 184 {
				t.Fatalf("Power8 settle band [%d, %d] implausible vs paper 128–160", lo, hi)
			}
		}
		// Settled throughput within 15% of the static best.
		_, best := mo.BestDynamic()
		got := SettledThroughput(trace, 0.25) / float64(mo.W.OpsPerTuple())
		if got < 0.80*best {
			t.Fatalf("%s: settled throughput %.3g below 80%% of best static %.3g", m.Name, got, best)
		}
	}
}

// TestElasticDiscoverySmallOptimum reproduces Fig. 11's data-parallel
// Xeon row: exploration up to ~16 threads, degradation, then settling at
// 8–10.
func TestElasticDiscoverySmallOptimum(t *testing.T) {
	mo := Model{M: Xeon(), W: Workload{Width: 1000, Depth: 1, Cost: 10000}}
	trace := RunElastic(mo, ElasticConfig{Seed: 3})
	lo, hi := SettledLevels(trace, 0.25)
	if lo < 4 || hi > 24 {
		t.Fatalf("settle band [%d, %d], paper settles 8–10", lo, hi)
	}
	explored := 0
	for _, p := range trace {
		explored = max(explored, p.Threads)
	}
	if explored <= hi {
		t.Fatalf("no overshoot: explored max %d vs settle hi %d (paper explores past the peak)", explored, hi)
	}
}

// TestElasticOscillationUnderNoise reproduces Fig. 11's Power8
// data-parallel row: with very expensive tuples the measurement noise at
// high thread counts exceeds the 5% sensitivity, history is repeatedly
// wiped, and the level oscillates instead of settling (§5.4).
func TestElasticOscillationUnderNoise(t *testing.T) {
	mo := Model{M: Power8(), W: Workload{Width: 1000, Depth: 1, Cost: 1000000}}
	trace := RunElastic(mo, ElasticConfig{Seed: 5})
	changes := 0
	half := trace[len(trace)/2:]
	for i := 1; i < len(half); i++ {
		if half[i].Threads != half[i-1].Threads {
			changes++
		}
	}
	if changes < 10 {
		t.Fatalf("only %d level changes in the second half; the paper shows sustained oscillation", changes)
	}
}

func TestElasticDeterminism(t *testing.T) {
	mo := Model{M: Xeon(), W: Workload{Width: 10, Depth: 100, Cost: 1000}}
	a := RunElastic(mo, ElasticConfig{Seed: 42})
	b := RunElastic(mo, ElasticConfig{Seed: 42})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := RunElastic(mo, ElasticConfig{Seed: 43})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSettledHelpersDegenerate(t *testing.T) {
	if lo, hi := SettledLevels(nil, 0.25); lo != 0 || hi != 0 {
		t.Fatal("empty trace settle levels")
	}
	if SettledThroughput(nil, 0.25) != 0 {
		t.Fatal("empty trace settle throughput")
	}
}

// TestElasticResettlesAfterWorkloadChange reproduces the §4.2.3 claim:
// untrusting data on a load change, combined with exploration both up
// and down, finds a new settling point. Midway through the run the
// data-parallel workload's per-tuple cost drops 10×, moving the optimum
// from ≈7 to ≈20 threads on the Xeon model.
func TestElasticResettlesAfterWorkloadChange(t *testing.T) {
	before := Workload{Width: 1000, Depth: 1, Cost: 100000}
	after := Workload{Width: 1000, Depth: 1, Cost: 10000}
	mo := Model{M: Xeon(), W: before}
	trace := RunElastic(mo, ElasticConfig{
		Seed:        9,
		SwitchAtSec: 700,
		SwitchTo:    after,
	})
	// Settled level in the first phase ≈ optimum of `before`.
	firstHalf := trace[:60]
	lo1, hi1 := SettledLevels(firstHalf, 0.3)
	bestBefore, _ := mo.BestDynamic()
	if lo1 > 2*bestBefore || hi1 < bestBefore/3 {
		t.Fatalf("pre-change band [%d, %d] far from optimum %d", lo1, hi1, bestBefore)
	}
	// After the change the controller must move to the new optimum's
	// neighborhood.
	lo2, hi2 := SettledLevels(trace, 0.2)
	bestAfter, _ := Model{M: Xeon(), W: after}.BestDynamic()
	if lo2 > 3*bestAfter || hi2 < bestAfter/3 {
		t.Fatalf("post-change band [%d, %d] far from new optimum %d", lo2, hi2, bestAfter)
	}
	// The level actually moved in response to the change.
	if lo1 == lo2 && hi1 == hi2 && bestBefore != bestAfter {
		t.Fatalf("level band unchanged [%d, %d] across a workload change", lo1, hi1)
	}
}
