package sim

import (
	"math/rand"

	"streams/internal/elastic"
)

// TracePoint is one adaptation period of a simulated elastic run — one
// point of a Fig. 11 series.
type TracePoint struct {
	// Second is simulated seconds into the run.
	Second float64
	// Throughput is the measured PE-wide tuples/s for the period.
	Throughput float64
	// Threads is the thread level chosen for the next period.
	Threads int
}

// ElasticConfig parametrizes a simulated elastic run.
type ElasticConfig struct {
	// PeriodSec is the adaptation period (the product uses 10 s).
	PeriodSec float64
	// DurationSec is the run length (the paper's traces run 1400 s).
	DurationSec float64
	// Seed drives the measurement-noise generator; runs are fully
	// deterministic given a seed.
	Seed int64
	// MinLevel is the deadlock-avoidance floor (1 + max input ports).
	MinLevel int
	// RememberHistory selects the controller's remember-history mode
	// (the §5.4 oscillation fix) instead of the paper's trust wipe.
	RememberHistory bool
	// SwitchAtSec, when positive, switches the workload to SwitchTo at
	// that simulated time — the §4.2.3 scenario where untrusting data
	// after a load change "will cause us to find new settling points".
	SwitchAtSec float64
	// SwitchTo is the post-change workload.
	SwitchTo Workload
}

// RunElastic drives the real elasticity controller (internal/elastic)
// against the machine model, reproducing the paper's Figure 11 traces:
// throughput and active threads over time for one run.
func RunElastic(mo Model, cfg ElasticConfig) []TracePoint {
	if cfg.PeriodSec <= 0 {
		cfg.PeriodSec = 10
	}
	if cfg.DurationSec <= 0 {
		cfg.DurationSec = 1400
	}
	if cfg.MinLevel < 1 {
		cfg.MinLevel = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctl, err := elastic.New(elastic.Config{
		MinLevel:        cfg.MinLevel,
		MaxLevel:        mo.M.LogicalCores(),
		Geometric:       true,
		RememberHistory: cfg.RememberHistory,
	})
	if err != nil {
		panic(err) // unreachable: inputs are validated above
	}
	var trace []TracePoint
	level := ctl.Level()
	cur := mo
	for sec := cfg.PeriodSec; sec <= cfg.DurationSec; sec += cfg.PeriodSec {
		if cfg.SwitchAtSec > 0 && sec > cfg.SwitchAtSec {
			cur = Model{M: mo.M, W: cfg.SwitchTo}
		}
		// The product measures over a full period after applying the new
		// level, so each sample reflects the level's steady state plus
		// measurement noise.
		base := cur.PEThroughput(Dynamic, level)
		measured := base * (1 + cur.NoiseSD(level)*rng.NormFloat64())
		if measured < 0 {
			measured = 0
		}
		level = ctl.Update(measured)
		trace = append(trace, TracePoint{Second: sec, Throughput: measured, Threads: level})
	}
	return trace
}

// SettledLevels returns the thread levels visited in the final fraction
// of a trace (the paper reports the level the algorithm "settled on"
// from the last samples).
func SettledLevels(trace []TracePoint, fraction float64) (lo, hi int) {
	if len(trace) == 0 {
		return 0, 0
	}
	start := int(float64(len(trace)) * (1 - fraction))
	if start < 0 {
		start = 0
	}
	lo, hi = trace[start].Threads, trace[start].Threads
	for _, p := range trace[start:] {
		lo, hi = min(lo, p.Threads), max(hi, p.Threads)
	}
	return lo, hi
}

// SettledThroughput averages measured throughput over the final fraction
// of a trace — the paper's "final 5 samples" convention (§5).
func SettledThroughput(trace []TracePoint, fraction float64) float64 {
	if len(trace) == 0 {
		return 0
	}
	start := int(float64(len(trace)) * (1 - fraction))
	sum := 0.0
	for _, p := range trace[start:] {
		sum += p.Throughput
	}
	return sum / float64(len(trace)-start)
}
