package fault

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestDeterministicSequence: the same seed must produce the identical
// firing sequence for a site, call for call.
func TestDeterministicSequence(t *testing.T) {
	const n = 10000
	run := func() []bool {
		in := New(Config{Seed: 7, PanicRate: 0.1})
		out := make([]bool, n)
		for i := range out {
			out[i] = in.Should(OpPanic)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: decisions diverged under one seed", i)
		}
	}
	in := New(Config{Seed: 8, PanicRate: 0.1})
	diff := 0
	for i := range a {
		if in.Should(OpPanic) != a[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestRateIsHonored: over many consultations the empirical rate must be
// close to the configured one.
func TestRateIsHonored(t *testing.T) {
	const n = 200000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		in := New(Config{Seed: 3, StallRate: rate})
		for i := 0; i < n; i++ {
			in.Should(QueueStall)
		}
		got := float64(in.Fired(QueueStall)) / n
		if math.Abs(got-rate) > rate*0.2+0.001 {
			t.Errorf("rate %g: fired at %g", rate, got)
		}
	}
}

// TestDisabledAndNil: disabled and nil injectors never fire and never
// panic.
func TestDisabledAndNil(t *testing.T) {
	var nilIn *Injector
	nilIn.OpFault()
	nilIn.StallFault()
	if nilIn.Enabled() || nilIn.Should(OpPanic) || nilIn.Fired(OpPanic) != 0 {
		t.Fatal("nil injector is not inert")
	}
	if nilIn.String() != "fault: none" {
		t.Fatalf("nil String: %q", nilIn.String())
	}
	in := New(Config{Seed: 1, PanicRate: 1})
	in.SetEnabled(false)
	for i := 0; i < 100; i++ {
		if in.Should(OpPanic) {
			t.Fatal("disabled injector fired")
		}
		in.OpFault() // must not panic
	}
	in.SetEnabled(true)
	if !in.Should(OpPanic) {
		t.Fatal("re-enabled rate-1 injector did not fire")
	}
}

// TestOpFaultPanicsWithSentinel: injected panics carry InjectedPanic.
func TestOpFaultPanicsWithSentinel(t *testing.T) {
	in := New(Config{Seed: 1, PanicRate: 1})
	defer func() {
		if _, ok := recover().(InjectedPanic); !ok {
			t.Fatal("injected panic did not carry the InjectedPanic sentinel")
		}
	}()
	in.OpFault()
	t.Fatal("rate-1 OpFault did not panic")
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("panic=0.25,slow=0.5:2ms, lat=1:3ms ,stall=0,drop=0.125", 9)
	if err != nil {
		t.Fatal(err)
	}
	if in == nil || !in.Enabled() {
		t.Fatal("spec produced no enabled injector")
	}
	if got := in.Delay(OpSlow); got != 2*time.Millisecond {
		t.Fatalf("slow delay %v, want 2ms", got)
	}
	if got := in.Delay(ConnLatency); got != 3*time.Millisecond {
		t.Fatalf("lat delay %v, want 3ms", got)
	}
	if in.Should(QueueStall) {
		t.Fatal("rate-0 site fired")
	}
	if !in.Should(ConnLatency) {
		t.Fatal("rate-1 site did not fire")
	}

	if in, err := ParseSpec("", 1); err != nil || in != nil {
		t.Fatalf("empty spec: %v, %v (want nil, nil)", in, err)
	}
	if in, err := ParseSpec("all=0.5", 1); err != nil || in == nil {
		t.Fatalf("all= spec rejected: %v", err)
	} else {
		for s := Site(0); s < NumSites; s++ {
			fired := false
			for i := 0; i < 64 && !fired; i++ {
				fired = in.Should(s)
			}
			if !fired {
				t.Errorf("all=0.5 left site %s cold over 64 draws", s)
			}
		}
	}
	for _, bad := range []string{"panic", "panic=2", "panic=x", "wat=0.1", "slow=0.1:zzz"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestSetAfterStart: a site left cold at construction can be registered
// later — the shape ingest needs for connections that appear at runtime.
func TestSetAfterStart(t *testing.T) {
	in := New(Config{Seed: 5})
	for i := 0; i < 64; i++ {
		if in.Should(ClientReset) {
			t.Fatal("unregistered site fired")
		}
	}
	in.Set(ClientReset, 1, 0)
	if !in.Should(ClientReset) {
		t.Fatal("site registered after start did not fire")
	}
	in.Set(ClientSlow, 0.5, 3*time.Millisecond)
	if got := in.Delay(ClientSlow); got != 3*time.Millisecond {
		t.Fatalf("Set delay %v, want 3ms", got)
	}
	// Retune the rate alone; the delay must survive.
	in.Set(ClientSlow, 1, 0)
	if got := in.Delay(ClientSlow); got != 3*time.Millisecond {
		t.Fatalf("rate-only Set clobbered delay: %v", got)
	}
	if !in.Should(ClientSlow) {
		t.Fatal("retuned rate-1 site did not fire")
	}
	// Turning a site off must stick.
	in.Set(ClientReset, 0, 0)
	for i := 0; i < 64; i++ {
		if in.Should(ClientReset) {
			t.Fatal("rate-0 retune still fired")
		}
	}
	// Out-of-range sites and nil receivers are no-ops, not panics.
	in.Set(NumSites, 1, 0)
	var nilIn *Injector
	nilIn.Set(OpPanic, 1, 0)
}

// TestParseSpecIngestSites: the client-facing sites parse and honor
// their durations.
func TestParseSpecIngestSites(t *testing.T) {
	in, err := ParseSpec("cslow=1:2ms,creset=1,flood=1", 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Delay(ClientSlow); got != 2*time.Millisecond {
		t.Fatalf("cslow delay %v, want 2ms", got)
	}
	for _, s := range []Site{ClientSlow, ClientReset, ClientFlood} {
		if !in.Should(s) {
			t.Errorf("rate-1 site %s did not fire", s)
		}
	}
	if ClientSlow.String() != "cslow" || ClientReset.String() != "creset" || ClientFlood.String() != "flood" {
		t.Fatal("ingest site names drifted from their spec keys")
	}
}

func TestGoroutineDump(t *testing.T) {
	d := GoroutineDump(1 << 16)
	if !strings.Contains(d, "goroutine") {
		t.Fatalf("dump looks wrong: %.80q", d)
	}
	if len(GoroutineDump(0)) == 0 {
		t.Fatal("minimum-limit dump empty")
	}
}
