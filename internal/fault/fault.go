// Package fault provides deterministic, seeded fault injection for the
// runtime's chaos tests and the fault-containment layer they exercise.
//
// The runtime's hot-path seams (operator execution in the scheduler,
// queue pushes, transport writes) each consult an injector site before
// doing their real work. When no injector is installed the check is a
// nil-pointer test; when an injector is installed but disabled it is a
// single atomic load. Only an enabled site pays for the decision — an
// atomic counter increment and one splitmix64 hash — so production
// configurations are unaffected by the seams' existence (the chaos soak
// acceptance test pins this down by benchmarking with injection absent).
//
// Decisions are deterministic in sequence: the n-th consultation of a
// site under a given seed always makes the same choice, regardless of
// which thread performs it. Thread interleaving still varies between
// runs, so chaos runs are reproducible in *dose* (how many faults of
// each kind fire, to within scheduling-dependent call totals) rather
// than in exact placement — enough for the soak test's conservation
// assertions to be meaningful under a fixed seed.
package fault

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site identifies one class of injected fault, corresponding to one seam
// in the runtime.
type Site uint8

const (
	// OpPanic panics at the operator-execution seam, immediately before
	// the operator's Process runs — the tuple has left its queue but has
	// not been forwarded, so containment can account it exactly once.
	OpPanic Site = iota
	// OpSlow sleeps at the operator-execution seam, modeling an operator
	// that wedges on a slow dependency.
	OpSlow
	// QueueStall sleeps at the queue-push seam, inflating queue occupancy
	// to drive producers into the back-pressure (reSchedule) path.
	QueueStall
	// ConnDrop closes the transport connection at the write seam,
	// simulating a peer reset mid-stream.
	ConnDrop
	// ConnLatency sleeps at the transport write seam.
	ConnLatency
	// ClientSlow sleeps at the ingest connection-read seam, modeling a
	// client that dribbles its frames byte by byte and holds server
	// resources (the slow-loris shape the idle evictor must catch).
	ClientSlow
	// ClientReset closes the ingest connection at the read seam,
	// simulating a client that disappears mid-frame.
	ClientReset
	// ClientFlood fires at the ingest admission seam: the frame is
	// offered to admission multiple times, modeling a burst that
	// ignores the client's nominal rate and must be absorbed or shed.
	ClientFlood

	// NumSites is the number of injection sites.
	NumSites
)

// String implements fmt.Stringer.
func (s Site) String() string {
	switch s {
	case OpPanic:
		return "panic"
	case OpSlow:
		return "slow"
	case QueueStall:
		return "stall"
	case ConnDrop:
		return "drop"
	case ConnLatency:
		return "lat"
	case ClientSlow:
		return "cslow"
	case ClientReset:
		return "creset"
	case ClientFlood:
		return "flood"
	default:
		return fmt.Sprintf("Site(%d)", uint8(s))
	}
}

// InjectedPanic is the value an injected OpPanic carries, so containment
// layers and logs can tell injected faults from genuine operator bugs.
type InjectedPanic struct{}

// Error implements error.
func (InjectedPanic) Error() string { return "fault: injected operator panic" }

// Config parametrizes an Injector. Rates are per-consultation firing
// probabilities in [0, 1]; a zero rate disables the site. Durations
// default to small values chosen to perturb scheduling without making
// chaos runs crawl.
type Config struct {
	// Seed makes the firing sequence reproducible.
	Seed uint64
	// PanicRate fires OpPanic.
	PanicRate float64
	// SlowRate fires OpSlow, sleeping SlowFor (default 100µs).
	SlowRate float64
	SlowFor  time.Duration
	// StallRate fires QueueStall, sleeping StallFor (default 100µs).
	StallRate float64
	StallFor  time.Duration
	// DropRate fires ConnDrop.
	DropRate float64
	// LatencyRate fires ConnLatency, sleeping LatencyFor (default 1ms).
	LatencyRate float64
	LatencyFor  time.Duration
	// ClientSlowRate fires ClientSlow, sleeping ClientSlowFor (default 1ms).
	ClientSlowRate float64
	ClientSlowFor  time.Duration
	// ClientResetRate fires ClientReset.
	ClientResetRate float64
	// FloodRate fires ClientFlood.
	FloodRate float64
}

// cacheLine spaces the per-site call counters so concurrent sites do not
// false-share (the counters are only touched when injection is enabled,
// but a chaos soak still benefits from not convoying on one line).
const cacheLine = 8 // uint64s

// Injector is a set of seeded fault sites. The zero of *Injector (nil)
// is a valid "no injection" value: every method on a nil receiver is a
// no-op, so call sites need no separate configuration flag.
type Injector struct {
	enabled atomic.Bool
	seed    uint64
	// thresh[s] is the firing threshold: the site fires when the hash of
	// its next sequence number falls below it. rate 1 maps to ^uint64(0).
	// Atomic so sites can be registered or retuned after the injector is
	// already being consulted (ingest connections appear at runtime).
	thresh [NumSites]atomic.Uint64
	// delay[s] holds the site's sleep in nanoseconds, atomic for the same
	// reason as thresh.
	delay [NumSites]atomic.Int64
	// calls[s*cacheLine] sequences consultations of site s; the sequence
	// number, not the caller, determines the decision.
	calls [NumSites * cacheLine]atomic.Uint64
	// fired[s*cacheLine] counts decisions that came up "inject".
	fired [NumSites * cacheLine]atomic.Uint64
}

// New builds an enabled injector. Rates outside [0, 1] are clamped.
func New(cfg Config) *Injector {
	in := &Injector{seed: splitmix64(cfg.Seed ^ 0x6c617563)}
	set := func(s Site, rate float64, d time.Duration, dflt time.Duration) {
		if d == 0 {
			d = dflt
		}
		in.Set(s, rate, d)
	}
	set(OpPanic, cfg.PanicRate, 0, 0)
	set(OpSlow, cfg.SlowRate, cfg.SlowFor, 100*time.Microsecond)
	set(QueueStall, cfg.StallRate, cfg.StallFor, 100*time.Microsecond)
	set(ConnDrop, cfg.DropRate, 0, 0)
	set(ConnLatency, cfg.LatencyRate, cfg.LatencyFor, time.Millisecond)
	set(ClientSlow, cfg.ClientSlowRate, cfg.ClientSlowFor, time.Millisecond)
	set(ClientReset, cfg.ClientResetRate, 0, 0)
	set(ClientFlood, cfg.FloodRate, 0, 0)
	in.enabled.Store(true)
	return in
}

// Set registers or retunes one site at runtime: rate (clamped to [0, 1])
// becomes the site's firing probability, and a positive d becomes its
// sleep. A zero d keeps the existing delay, so callers can adjust the
// rate alone. Concurrent consultations observe the new values on their
// next decision; the site's sequence counter is not reset, so the
// decision stream stays deterministic in (seed, site, ordinal).
func (in *Injector) Set(s Site, rate float64, d time.Duration) {
	if in == nil || s >= NumSites {
		return
	}
	if rate < 0 {
		rate = 0
	}
	if rate >= 1 {
		in.thresh[s].Store(^uint64(0))
	} else {
		in.thresh[s].Store(uint64(rate * float64(1<<63) * 2))
	}
	if d > 0 {
		in.delay[s].Store(int64(d))
	}
}

// Enabled reports whether the injector is firing. Nil receivers report
// false.
func (in *Injector) Enabled() bool { return in != nil && in.enabled.Load() }

// SetEnabled toggles the injector without losing its counters; a
// disabled injector costs its callers one atomic load.
func (in *Injector) SetEnabled(v bool) {
	if in != nil {
		in.enabled.Store(v)
	}
}

// Should decides whether site s fires on this consultation. The decision
// is a pure function of (seed, site, consultation ordinal), so a fixed
// seed yields the same firing pattern across runs up to call-count
// differences from thread interleaving.
func (in *Injector) Should(s Site) bool {
	if in == nil || !in.enabled.Load() {
		return false
	}
	th := in.thresh[s].Load()
	if th == 0 {
		return false
	}
	n := in.calls[int(s)*cacheLine].Add(1)
	h := splitmix64(in.seed ^ (uint64(s)+1)*0x9e3779b97f4a7c15 ^ n)
	if h >= th {
		return false
	}
	in.fired[int(s)*cacheLine].Add(1)
	return true
}

// Delay returns the configured sleep for a timing site.
func (in *Injector) Delay(s Site) time.Duration {
	if in == nil {
		return 0
	}
	return time.Duration(in.delay[s].Load())
}

// OpFault is the operator-execution seam: it may sleep (OpSlow) and may
// panic (OpPanic). Callers invoke it immediately before running operator
// code, under their panic-containment scope.
func (in *Injector) OpFault() {
	if in == nil || !in.enabled.Load() {
		return
	}
	if in.Should(OpSlow) {
		time.Sleep(time.Duration(in.delay[OpSlow].Load()))
	}
	if in.Should(OpPanic) {
		panic(InjectedPanic{})
	}
}

// StallFault is the queue-push seam: it may sleep, letting queues run
// full so producers exercise the back-pressure path.
func (in *Injector) StallFault() {
	if in == nil || !in.enabled.Load() {
		return
	}
	if in.Should(QueueStall) {
		time.Sleep(time.Duration(in.delay[QueueStall].Load()))
	}
}

// Fired returns how many times site s has fired.
func (in *Injector) Fired(s Site) uint64 {
	if in == nil {
		return 0
	}
	return in.fired[int(s)*cacheLine].Load()
}

// Calls returns how many times site s has been consulted.
func (in *Injector) Calls(s Site) uint64 {
	if in == nil {
		return 0
	}
	return in.calls[int(s)*cacheLine].Load()
}

// String summarizes fired/consulted counts per site.
func (in *Injector) String() string {
	if in == nil {
		return "fault: none"
	}
	var sb strings.Builder
	sb.WriteString("fault:")
	for s := Site(0); s < NumSites; s++ {
		fmt.Fprintf(&sb, " %s %d/%d", s, in.Fired(s), in.Calls(s))
	}
	return sb.String()
}

// ParseSpec builds an injector from a comma-separated spec of
// site=rate[:duration] entries, e.g.
//
//	panic=0.01,slow=0.01:1ms,stall=0.02,drop=0.005,lat=0.01:500us
//
// The pseudo-site "all" applies one rate to every site. An empty spec
// returns nil (no injection).
func ParseSpec(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	cfg := Config{Seed: seed}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q is not site=rate[:duration]", part)
		}
		rateStr, durStr, hasDur := strings.Cut(rest, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("fault: rate %q for site %q is not in [0, 1]", rateStr, name)
		}
		var dur time.Duration
		if hasDur {
			dur, err = time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("fault: duration %q for site %q: %v", durStr, name, err)
			}
		}
		apply := func(s Site) error {
			switch s {
			case OpPanic:
				cfg.PanicRate = rate
			case OpSlow:
				cfg.SlowRate, cfg.SlowFor = rate, dur
			case QueueStall:
				cfg.StallRate, cfg.StallFor = rate, dur
			case ConnDrop:
				cfg.DropRate = rate
			case ConnLatency:
				cfg.LatencyRate, cfg.LatencyFor = rate, dur
			case ClientSlow:
				cfg.ClientSlowRate, cfg.ClientSlowFor = rate, dur
			case ClientReset:
				cfg.ClientResetRate = rate
			case ClientFlood:
				cfg.FloodRate = rate
			}
			return nil
		}
		switch strings.ToLower(name) {
		case "all":
			for s := Site(0); s < NumSites; s++ {
				_ = apply(s)
			}
		case "panic":
			_ = apply(OpPanic)
		case "slow":
			_ = apply(OpSlow)
		case "stall":
			_ = apply(QueueStall)
		case "drop":
			_ = apply(ConnDrop)
		case "lat", "latency":
			_ = apply(ConnLatency)
		case "cslow":
			_ = apply(ClientSlow)
		case "creset":
			_ = apply(ClientReset)
		case "flood":
			_ = apply(ClientFlood)
		default:
			return nil, fmt.Errorf("fault: unknown site %q (panic, slow, stall, drop, lat, cslow, creset, flood, all)", name)
		}
	}
	return New(cfg), nil
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash of a
// 64-bit state, enough to turn (seed, site, ordinal) into an unbiased
// firing decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GoroutineDump returns the stacks of every goroutine, truncated to
// limit bytes (minimum 4 KiB). The containment layer attaches it to
// shutdown-deadline and drain-deadline errors so a wedged thread's
// whereabouts survive into the diagnostic.
func GoroutineDump(limit int) string {
	if limit < 4096 {
		limit = 4096
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	if n > limit {
		return string(buf[:limit]) + "\n... (goroutine dump truncated)"
	}
	return string(buf[:n])
}
