package lfq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMPMCCapacityValidation(t *testing.T) {
	for _, bad := range []int{0, -2, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMPMC(%d) did not panic", bad)
				}
			}()
			NewMPMC[int](bad)
		}()
	}
}

func TestMPMCSequentialFIFO(t *testing.T) {
	q := NewMPMC[int](8)
	var v int
	if q.Pop(&v) {
		t.Fatal("Pop on empty queue returned true")
	}
	for i := 0; i < 8; i++ {
		if !q.Push(i) {
			t.Fatalf("Push %d failed", i)
		}
	}
	if q.Push(100) {
		t.Fatal("Push on full queue returned true")
	}
	for i := 0; i < 8; i++ {
		if !q.Pop(&v) || v != i {
			t.Fatalf("Pop = (%d, ok), want %d", v, i)
		}
	}
	if q.Pop(&v) {
		t.Fatal("Pop after drain returned true")
	}
}

func TestMPMCWrapAroundProperty(t *testing.T) {
	// Single-threaded model check across wrap-around, like the SPSC one.
	model := func(script []byte) bool {
		q := NewMPMC[uint16](4)
		var ref []uint16
		var next uint16
		for _, op := range script {
			if op%2 == 0 {
				got := q.Push(next)
				want := len(ref) < 4
				if got != want {
					return false
				}
				if got {
					ref = append(ref, next)
				}
				next++
			} else {
				var v uint16
				got := q.Pop(&v)
				want := len(ref) > 0
				if got != want {
					return false
				}
				if got {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(model, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMPMCConcurrentNoLossNoDup hammers the queue from several producers
// and consumers and verifies that every pushed element is popped exactly
// once.
func TestMPMCConcurrentNoLossNoDup(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	q := NewMPMC[int](64)
	seen := make([]atomic.Int32, producers*perProd)
	var wg sync.WaitGroup
	var popped atomic.Int64

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var v int
			for popped.Load() < producers*perProd {
				if q.Pop(&v) {
					seen[v].Add(1)
					popped.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				val := p*perProd + i
				for !q.Push(val) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("element %d popped %d times, want exactly 1", i, n)
		}
	}
}

// TestMPMCPerProducerOrder verifies that elements from a single producer
// are consumed in that producer's push order (FIFO per producer), using a
// single consumer.
func TestMPMCPerProducerOrder(t *testing.T) {
	const producers = 3
	const perProd = 3000
	q := NewMPMC[[2]int](128)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !q.Push([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	lastSeen := [producers]int{}
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	got := 0
	var v [2]int
	for got < producers*perProd {
		if !q.Pop(&v) {
			runtime.Gosched()
		} else {
			if v[1] <= lastSeen[v[0]] {
				t.Fatalf("producer %d: saw %d after %d", v[0], v[1], lastSeen[v[0]])
			}
			lastSeen[v[0]] = v[1]
			got++
		}
	}
	wg.Wait()
}

// TestMPMCRoundRobinWalk mimics the scheduler's free-list walk: pop an
// element, push it back, and verify the set of elements is preserved.
func TestMPMCRoundRobinWalk(t *testing.T) {
	q := NewMPMC[int](16)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	present := map[int]bool{}
	var v int
	for i := 0; i < 100; i++ {
		if !q.Pop(&v) {
			t.Fatal("walk pop failed on non-empty list")
		}
		if present[v] {
			t.Fatalf("element %d seen while supposedly back on list", v)
		}
		for !q.Push(v) {
		}
	}
	// Drain and verify the full set survived.
	for i := 0; i < 10; i++ {
		if !q.Pop(&v) {
			t.Fatal("drain pop failed")
		}
		if present[v] {
			t.Fatalf("duplicate element %d", v)
		}
		present[v] = true
	}
	if q.Pop(&v) {
		t.Fatal("queue should be empty")
	}
	for i := 0; i < 10; i++ {
		if !present[i] {
			t.Fatalf("element %d lost during walk", i)
		}
	}
}

func BenchmarkMPMCPushPop(b *testing.B) {
	q := NewMPMC[int](1024)
	var v int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop(&v)
	}
}

func BenchmarkMPMCContended(b *testing.B) {
	q := NewMPMC[int](1024)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var v int
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				q.Push(i)
			} else {
				q.Pop(&v)
			}
			i++
		}
	})
}

// TestMPMCPushExDistinguishesFull verifies PushEx reports PushFull on a
// queue at capacity and PushOK once space frees up. (The PushBusy state
// needs a consumer frozen mid-pop and so is only reachable
// concurrently; the concurrent tests above exercise that path through
// Push's retry semantics.)
func TestMPMCPushExDistinguishesFull(t *testing.T) {
	q := NewMPMC[int](4)
	for i := 0; i < 4; i++ {
		if got := q.PushEx(i); got != PushOK {
			t.Fatalf("PushEx(%d) = %v below capacity, want PushOK", i, got)
		}
	}
	if got := q.PushEx(99); got != PushFull {
		t.Fatalf("PushEx on full queue = %v, want PushFull", got)
	}
	var v int
	if !q.Pop(&v) || v != 0 {
		t.Fatalf("Pop = (%d), want 0", v)
	}
	if got := q.PushEx(99); got != PushOK {
		t.Fatalf("PushEx after Pop = %v, want PushOK", got)
	}
}

// TestStackPushExFull checks the Stack's PushEx parity: failure is
// always PushFull.
func TestStackPushExFull(t *testing.T) {
	s := NewStack[int](2)
	if got := s.PushEx(1); got != PushOK {
		t.Fatalf("PushEx = %v, want PushOK", got)
	}
	if got := s.PushEx(2); got != PushOK {
		t.Fatalf("PushEx = %v, want PushOK", got)
	}
	if got := s.PushEx(3); got != PushFull {
		t.Fatalf("PushEx on full stack = %v, want PushFull", got)
	}
}
