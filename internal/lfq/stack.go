package lfq

import "sync/atomic"

// Stack is a lock-free LIFO (Treiber stack). The scheduler's free list
// is FIFO (push-to-back approximates least-recently-used scheduling,
// §4.1.5); Stack exists for the ablation that swaps the free list to
// most-recently-used order. Nodes are pooled per stack to avoid
// allocating on push: capacity is fixed at construction like the other
// queues. ABA is avoided by tagging the head pointer with a version
// counter packed into a 64-bit word (index 32 bits, tag 32 bits).
type Stack[T any] struct {
	_     cacheLinePad
	head  atomic.Uint64 // packed: high 32 bits tag, low 32 bits index+1 (0 = empty)
	_     cacheLinePad
	free  atomic.Uint64 // packed free-node list, same encoding
	_     cacheLinePad
	nodes []stackNode[T]
}

type stackNode[T any] struct {
	// next holds the index+1 of the next node (0 = end). It is atomic
	// because a stalled pop may read it on a node that has since been
	// recycled; the tagged-pointer CAS rejects the stale result.
	next atomic.Uint32
	val  T
}

const stackIdxMask = 0xffffffff

// NewStack returns an empty stack that can hold capacity elements.
func NewStack[T any](capacity int) *Stack[T] {
	if capacity < 1 {
		panic("lfq: Stack capacity must be positive")
	}
	s := &Stack[T]{nodes: make([]stackNode[T], capacity)}
	// Thread all nodes onto the free list.
	for i := 0; i < capacity-1; i++ {
		s.nodes[i].next.Store(uint32(i + 2))
	}
	s.free.Store(1) // index+1 of nodes[0], tag 0
	return s
}

// Cap returns the fixed capacity.
func (s *Stack[T]) Cap() int { return len(s.nodes) }

// popList removes the top node index from the packed list at addr,
// returning (index+1, true) on success.
func (s *Stack[T]) popList(addr *atomic.Uint64) (uint32, bool) {
	for {
		old := addr.Load()
		idx1 := uint32(old & stackIdxMask)
		if idx1 == 0 {
			return 0, false
		}
		next := s.nodes[idx1-1].next.Load()
		tag := (old >> 32) + 1
		if addr.CompareAndSwap(old, tag<<32|uint64(next)) {
			return idx1, true
		}
	}
}

// pushList adds node index idx1 to the packed list at addr.
func (s *Stack[T]) pushList(addr *atomic.Uint64, idx1 uint32) {
	for {
		old := addr.Load()
		s.nodes[idx1-1].next.Store(uint32(old & stackIdxMask))
		tag := (old >> 32) + 1
		if addr.CompareAndSwap(old, tag<<32|uint64(idx1)) {
			return
		}
	}
}

// Push adds v to the top of the stack; false means the stack is full.
func (s *Stack[T]) Push(v T) bool {
	idx1, ok := s.popList(&s.free)
	if !ok {
		return false
	}
	s.nodes[idx1-1].val = v
	s.pushList(&s.head, idx1)
	return true
}

// PushEx adds v, reporting failure as PushFull: the packed-list CASes
// retry internally, so an exhausted node pool (a full stack) is the only
// failure mode.
func (s *Stack[T]) PushEx(v T) PushResult {
	if s.Push(v) {
		return PushOK
	}
	return PushFull
}

// Pop removes the most recently pushed element into *v; false means the
// stack was empty.
func (s *Stack[T]) Pop(v *T) bool {
	idx1, ok := s.popList(&s.head)
	if !ok {
		return false
	}
	*v = s.nodes[idx1-1].val
	var zero T
	s.nodes[idx1-1].val = zero
	s.pushList(&s.free, idx1)
	return true
}
