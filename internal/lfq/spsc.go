// Package lfq provides the lock-free queues underneath the dynamic
// scheduler: a bounded single-producer/single-consumer ring buffer used
// for operator input-port queues, a bounded multi-producer/multi-consumer
// queue used for the global free list of operator input ports, and the
// Enforcer wrapper that adds the producer/consumer try-locks from the
// paper's Figure 3.
//
// All queues are fixed size. The paper's runtime uses fixed-size queues
// to bound memory growth and induce back-pressure (§4.1.5); we follow the
// same design. Elements are stored by value, mirroring IBM Streams'
// stack-allocated tuples that are copied into queues.
package lfq

import (
	"fmt"
	"sync/atomic"
)

// cacheLinePad separates hot atomic fields so that the producer and
// consumer indices of a queue do not share a cache line. 128 bytes covers
// the spatial prefetcher pairing on modern x86 as well as Power8's
// 128-byte lines.
type cacheLinePad [128]byte

// SPSC is a bounded, lock-free, single-producer/single-consumer FIFO ring
// buffer. With exactly one producing goroutine and one consuming
// goroutine at any instant, Push and Pop are wait-free and need no
// compare-and-swap: the producer owns the tail index and the consumer
// owns the head index, each published with release stores and observed
// with acquire loads.
//
// The scheduler guarantees the single-producer/single-consumer property
// externally with the Enforcer try-locks; the queue itself does not check
// it.
type SPSC[T any] struct {
	_        cacheLinePad
	head     atomic.Uint64 // next slot to pop; owned by the consumer
	_        cacheLinePad
	tail     atomic.Uint64 // next slot to push; owned by the producer
	_        cacheLinePad
	headSnap uint64 // producer's cached view of head
	_        cacheLinePad
	tailSnap uint64 // consumer's cached view of tail
	_        cacheLinePad
	mask     uint64
	buf      []T
}

// NewSPSC returns an empty queue with capacity for exactly cap elements.
// cap must be a power of two and at least 1.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 1 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("lfq: SPSC capacity %d is not a positive power of two", capacity))
	}
	return &SPSC[T]{
		mask: uint64(capacity - 1),
		buf:  make([]T, capacity),
	}
}

// Cap returns the fixed capacity of the queue.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns a linearizable-at-some-instant count of queued elements.
// It is intended for monitoring; concurrent pushes and pops may change
// the true count before the caller uses the result.
func (q *SPSC[T]) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	if t < h { // torn read across the two loads; clamp
		return 0
	}
	return int(t - h)
}

// Push appends v and reports whether there was room. It must be called
// by at most one goroutine at a time (the producer).
func (q *SPSC[T]) Push(v T) bool {
	t := q.tail.Load()
	if t-q.headSnap > q.mask { // looks full; refresh the consumer index
		q.headSnap = q.head.Load()
		if t-q.headSnap > q.mask {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// PushN appends up to len(src) elements in order and returns how many it
// accepted (0 when the queue is full). The whole batch costs at most one
// acquire refresh of the consumer index and exactly one release store of
// the tail, against one pair per element for repeated Push calls. Like
// Push it must be called by at most one goroutine at a time (the
// producer).
func (q *SPSC[T]) PushN(src []T) int {
	t := q.tail.Load()
	capacity := q.mask + 1
	free := capacity - (t - q.headSnap)
	if uint64(len(src)) > free { // refresh the consumer index once
		q.headSnap = q.head.Load()
		free = capacity - (t - q.headSnap)
	}
	n := uint64(len(src))
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	// The n slots starting at t wrap at most once; copy in two segments.
	start := t & q.mask
	first := capacity - start
	if first > n {
		first = n
	}
	copy(q.buf[start:start+first], src[:first])
	copy(q.buf[:n-first], src[first:n])
	q.tail.Store(t + n)
	return int(n)
}

// Pop removes the head element into *v and reports whether the queue was
// non-empty. It must be called by at most one goroutine at a time (the
// consumer).
func (q *SPSC[T]) Pop(v *T) bool {
	h := q.head.Load()
	if h == q.tailSnap { // looks empty; refresh the producer index
		q.tailSnap = q.tail.Load()
		if h == q.tailSnap {
			return false
		}
	}
	*v = q.buf[h&q.mask]
	var zero T
	q.buf[h&q.mask] = zero // release references for the garbage collector
	q.head.Store(h + 1)
	return true
}

// PopN removes up to len(dst) elements in FIFO order into dst and returns
// how many it moved (0 when the queue is empty). The whole batch costs at
// most one acquire refresh of the producer index and exactly one release
// store of the head. Like Pop it must be called by at most one goroutine
// at a time (the consumer).
func (q *SPSC[T]) PopN(dst []T) int {
	h := q.head.Load()
	avail := q.tailSnap - h
	if avail < uint64(len(dst)) { // refresh the producer index once
		q.tailSnap = q.tail.Load()
		avail = q.tailSnap - h
	}
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	// The n slots starting at h wrap at most once; copy out (and zero for
	// the garbage collector) in two segments.
	capacity := q.mask + 1
	start := h & q.mask
	first := capacity - start
	if first > n {
		first = n
	}
	copy(dst[:first], q.buf[start:start+first])
	clear(q.buf[start : start+first])
	copy(dst[first:n], q.buf[:n-first])
	clear(q.buf[:n-first])
	q.head.Store(h + n)
	return int(n)
}
