package lfq

import (
	"fmt"
	"sync/atomic"
)

// WSDeque is a bounded, lock-free work-stealing deque (the Chase–Lev
// algorithm over a fixed-size ring). The scheduler gives every thread
// one as its local free-port cache: the owning thread pushes and pops
// port hints at the bottom in LIFO order, paying no compare-and-swap at
// all in the common case, while any other thread may steal the oldest
// hint from the top with a single CAS.
//
// The element type is int32 — operator input-port IDs — rather than a
// type parameter: slots are atomic so the racy read a thief performs
// before claiming its ticket is well-defined (and clean under the race
// detector). A stale read is harmless: the slot at index t can only be
// reused after top has advanced past t, and top is a monotonically
// increasing 64-bit counter, so the thief's CompareAndSwap on the old
// ticket is guaranteed to fail.
//
// Following the scheduler's abandon-on-contention principle, Steal
// reports failure when it loses the ticket race instead of retrying;
// the caller moves on to another victim.
type WSDeque struct {
	_      cacheLinePad
	top    atomic.Int64 // steal ticket; only ever incremented
	_      cacheLinePad
	bottom atomic.Int64 // owner's end; written only by the owner
	_      cacheLinePad
	mask   int64
	slots  []atomic.Int32
}

// NewWSDeque returns an empty deque with capacity for exactly cap
// elements. cap must be a power of two and at least 1.
func NewWSDeque(capacity int) *WSDeque {
	if capacity < 1 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("lfq: WSDeque capacity %d is not a positive power of two", capacity))
	}
	return &WSDeque{
		mask:  int64(capacity - 1),
		slots: make([]atomic.Int32, capacity),
	}
}

// Cap returns the fixed capacity.
func (d *WSDeque) Cap() int { return len(d.slots) }

// Len returns an instantaneous estimate of the number of elements, for
// monitoring only.
func (d *WSDeque) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}

// PushBottom appends v at the owner's end; false means the deque is
// full. Only the owning thread may call it.
func (d *WSDeque) PushBottom(v int32) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t > d.mask {
		return false // full
	}
	d.slots[b&d.mask].Store(v)
	d.bottom.Store(b + 1)
	return true
}

// PopBottom removes the most recently pushed element into *v (LIFO);
// false means the deque was empty or a thief won the race for the last
// element. Only the owning thread may call it.
func (d *WSDeque) PopBottom(v *int32) bool {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	// Go's sync/atomic operations are sequentially consistent, so this
	// load cannot be reordered before the bottom store above — the
	// ordering the algorithm's owner/thief handshake depends on.
	t := d.top.Load()
	if t > b {
		d.bottom.Store(t) // empty; restore the canonical form
		return false
	}
	x := d.slots[b&d.mask].Load()
	if t == b {
		// Last element: race thieves for it via the steal ticket.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return false
		}
	}
	*v = x
	return true
}

// Steal removes the oldest element into *v. It may be called from any
// thread. False means the deque was empty or the steal lost a ticket
// race — per the contention principle the caller should try another
// victim rather than retry.
func (d *WSDeque) Steal(v *int32) bool {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return false // empty
	}
	x := d.slots[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return false // lost the race; abandon
	}
	*v = x
	return true
}
