package lfq

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCCapacityValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSPSC(%d) did not panic", bad)
				}
			}()
			NewSPSC[int](bad)
		}()
	}
	for _, good := range []int{1, 2, 4, 64, 1024} {
		q := NewSPSC[int](good)
		if q.Cap() != good {
			t.Errorf("Cap() = %d, want %d", q.Cap(), good)
		}
	}
}

func TestSPSCEmptyPop(t *testing.T) {
	q := NewSPSC[int](8)
	var v int
	if q.Pop(&v) {
		t.Fatal("Pop on empty queue returned true")
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", q.Len())
	}
}

func TestSPSCFullPush(t *testing.T) {
	q := NewSPSC[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("Push %d failed on non-full queue", i)
		}
	}
	if q.Push(99) {
		t.Fatal("Push on full queue returned true")
	}
	if q.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", q.Len())
	}
}

func TestSPSCFIFOOrder(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < 8; i++ {
		q.Push(i)
	}
	for i := 0; i < 8; i++ {
		var v int
		if !q.Pop(&v) {
			t.Fatalf("Pop %d failed", i)
		}
		if v != i {
			t.Fatalf("Pop returned %d, want %d", v, i)
		}
	}
	var v int
	if q.Pop(&v) {
		t.Fatal("Pop after drain returned true")
	}
}

func TestSPSCWrapAround(t *testing.T) {
	q := NewSPSC[int](4)
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !q.Push(round*3 + i) {
				t.Fatalf("round %d: push failed", round)
			}
		}
		for i := 0; i < 3; i++ {
			var v int
			if !q.Pop(&v) {
				t.Fatalf("round %d: pop failed", round)
			}
			if v != next {
				t.Fatalf("round %d: got %d, want %d", round, v, next)
			}
			next++
		}
	}
}

// TestSPSCInterleavedProperty checks, for arbitrary interleavings of
// pushes and pops driven by a random script, that the queue behaves like
// a bounded FIFO model.
func TestSPSCInterleavedProperty(t *testing.T) {
	model := func(script []byte) bool {
		q := NewSPSC[int](16)
		var ref []int
		next := 0
		for _, op := range script {
			if op%2 == 0 {
				got := q.Push(next)
				want := len(ref) < 16
				if got != want {
					return false
				}
				if got {
					ref = append(ref, next)
				}
				next++
			} else {
				var v int
				got := q.Pop(&v)
				want := len(ref) > 0
				if got != want {
					return false
				}
				if got {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(model, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSPSCConcurrent streams many elements from one producer goroutine
// to one consumer goroutine and checks order and completeness. Run under
// -race this validates the acquire/release pairing. Spin loops yield so
// the test completes quickly even on a single-core host.
func TestSPSCConcurrent(t *testing.T) {
	const n = 1 << 17
	q := NewSPSC[int](256)
	done := make(chan error, 1)
	go func() {
		next := 0
		var v int
		for next < n {
			if q.Pop(&v) {
				if v != next {
					done <- errOutOfOrder(v, next)
					return
				}
				next++
			} else {
				runtime.Gosched()
			}
		}
		done <- nil
	}()
	for i := 0; i < n; {
		if q.Push(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type orderErr struct{ got, want int }

func errOutOfOrder(got, want int) error { return orderErr{got, want} }
func (e orderErr) Error() string        { return "out of order" }

// TestSPSCOwnershipHandoff checks that the queue stays correct when the
// producer and consumer roles migrate between goroutines with proper
// synchronization — the pattern the scheduler creates via Enforcer locks.
func TestSPSCOwnershipHandoff(t *testing.T) {
	q := NewSPSC[int](64)
	var mu sync.Mutex // stands in for the enforcer's lock handoff
	next := 0
	popped := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				mu.Lock()
				if q.Push(next) {
					next++
				}
				var v int
				if q.Pop(&v) {
					popped++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if q.Len() != next-popped {
		t.Fatalf("Len() = %d, want %d", q.Len(), next-popped)
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	q := NewSPSC[int](1024)
	var v int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop(&v)
	}
}

func BenchmarkSPSCStream(b *testing.B) {
	q := NewSPSC[int](1024)
	done := make(chan struct{})
	go func() {
		var v int
		got := 0
		for got < b.N {
			if q.Pop(&v) {
				got++
			} else {
				runtime.Gosched()
			}
		}
		close(done)
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; {
		if q.Push(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}
