package lfq

import "sync/atomic"

// Enforcer wraps an operator input port's single-producer/single-consumer
// queue with the two flags that enforce when it is safe to produce into
// or consume from it — the SPSCEnforcer structure from the paper's
// Figure 3.
//
// The consumer lock guarantees that only one thread executes an operator
// input port at a time, which is how the scheduler preserves tuple order:
// upstream threads enqueue tuples in submission order, and a single
// consumer pops them in that order. The producer lock exists only so the
// underlying queue can remain single-producer; multiple upstream threads
// may attempt to push concurrently (fan-in, or different threads
// executing the same upstream operator over time).
//
// Both locks are try-locks. Following the paper's design, a thread that
// fails to acquire one never blocks on it — it abandons the operation and
// does something else.
type Enforcer[T any] struct {
	queue      *SPSC[T]
	prodLocked atomic.Bool
	_          cacheLinePad
	consLocked atomic.Bool
	_          cacheLinePad
	// Fair-claim ticket lock (Config.FairClaim): producers that opt
	// into the fair path take a ticket and wait their turn before
	// competing for prodLocked, so oversubscribed threads acquire the
	// port in bounded-bypass FIFO order instead of back-off roulette.
	// Opportunistic Push callers still bypass the queue — but only for
	// the duration of one queue operation, so the bypass is bounded.
	fairTail atomic.Uint64
	_        cacheLinePad
	fairHead atomic.Uint64
	_        cacheLinePad
}

// NewEnforcer returns an Enforcer around a fresh SPSC queue of the given
// capacity (a power of two).
func NewEnforcer[T any](capacity int) *Enforcer[T] {
	return &Enforcer[T]{queue: NewSPSC[T](capacity)}
}

// Queue exposes the underlying ring buffer. Callers must hold the
// corresponding lock: ProdTryLock before Queue().Push, ConsTryLock before
// Queue().Pop.
func (e *Enforcer[T]) Queue() *SPSC[T] { return e.queue }

// ProdTryLock attempts to acquire exclusive produce access.
func (e *Enforcer[T]) ProdTryLock() bool {
	return e.prodLocked.CompareAndSwap(false, true)
}

// ProdUnlock releases produce access.
func (e *Enforcer[T]) ProdUnlock() { e.prodLocked.Store(false) }

// ConsTryLock attempts to acquire exclusive consume access.
func (e *Enforcer[T]) ConsTryLock() bool {
	return e.consLocked.CompareAndSwap(false, true)
}

// ConsUnlock releases consume access.
func (e *Enforcer[T]) ConsUnlock() { e.consLocked.Store(false) }

// Push attempts to enqueue v, acquiring and releasing the producer lock
// around the queue push (the paper's SPSCEnforcer::push). It returns
// false if the producer lock was contended or the queue was full; the
// caller cannot distinguish the two and, per the paper, should not try —
// reSchedule handles both.
func (e *Enforcer[T]) Push(v T) bool {
	if e.ProdTryLock() {
		ok := e.queue.Push(v)
		e.ProdUnlock()
		return ok
	}
	return false
}

// PushN attempts to enqueue up to len(src) tuples in order under a single
// producer try-lock acquisition, returning how many were accepted. A
// return of 0 means the lock was contended or the queue was full; as with
// Push the caller cannot distinguish the two and should fall back to the
// scheduler's reSchedule path for the remainder. A partial count means
// the queue filled: the accepted prefix is enqueued in order, so FIFO
// order per producer is preserved when the caller retries the suffix.
func (e *Enforcer[T]) PushN(src []T) int {
	if len(src) == 0 || !e.ProdTryLock() {
		return 0
	}
	n := e.queue.PushN(src)
	e.ProdUnlock()
	return n
}

// PushEx is Push with the failure causes separated: PushBusy means the
// producer lock was contended (the queue may well have space), PushFull
// means the lock was acquired but the queue was full. The fair-claim
// path needs the distinction — lock contention is what the ticket queue
// resolves, while a full queue must fall into reSchedule self-help.
func (e *Enforcer[T]) PushEx(v T) PushResult {
	if !e.ProdTryLock() {
		return PushBusy
	}
	ok := e.queue.Push(v)
	e.ProdUnlock()
	if ok {
		return PushOK
	}
	return PushFull
}

// FairTicket takes the next place in the fair-claim line. Every ticket
// taken MUST be retired with FairAdvance after the holder's turn, or
// the line wedges; the scheduler's fair path therefore never abandons
// between ticket and advance.
func (e *Enforcer[T]) FairTicket() uint64 { return e.fairTail.Add(1) - 1 }

// FairTurn reports whether ticket t is at the head of the line. The
// caller supplies its own wait policy between polls.
func (e *Enforcer[T]) FairTurn(t uint64) bool { return e.fairHead.Load() == t }

// FairAdvance retires the head ticket, admitting the next holder.
func (e *Enforcer[T]) FairAdvance() { e.fairHead.Add(1) }

// FairIdle reports whether the fair-claim line is empty. Fair claimants
// gate their opportunistic fast path on it: skipping the line is allowed
// only while nobody is waiting in it, which keeps the bypass bounded —
// once a thread holds a ticket, later fair arrivals queue behind it
// instead of racing it for every release. (The check-then-push window
// still admits a bounded handful of in-flight racers; it cannot admit a
// looping bypasser, which is what starves a line.)
func (e *Enforcer[T]) FairIdle() bool { return e.fairHead.Load() == e.fairTail.Load() }

// ConsumeN attempts to dequeue up to len(dst) tuples under a single
// consumer try-lock acquisition. It returns how many tuples were moved
// and whether the lock was acquired at all (n == 0 with ok == true means
// the queue was empty). Callers that drain repeatedly (the scheduler's
// main loop) should instead hold ConsTryLock across several Queue().PopN
// calls; ConsumeN is the one-shot helper for callers that would otherwise
// pair the locks around a single Pop.
func (e *Enforcer[T]) ConsumeN(dst []T) (n int, ok bool) {
	if !e.ConsTryLock() {
		return 0, false
	}
	n = e.queue.PopN(dst)
	e.ConsUnlock()
	return n, true
}
