package lfq

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWSDequeLIFOOrder(t *testing.T) {
	d := NewWSDeque(8)
	for i := int32(0); i < 5; i++ {
		if !d.PushBottom(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if got := d.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	for want := int32(4); want >= 0; want-- {
		var v int32
		if !d.PopBottom(&v) {
			t.Fatalf("pop failed at %d", want)
		}
		if v != want {
			t.Fatalf("popped %d, want %d (LIFO)", v, want)
		}
	}
	var v int32
	if d.PopBottom(&v) {
		t.Fatal("pop from empty deque succeeded")
	}
}

func TestWSDequeStealTakesOldest(t *testing.T) {
	d := NewWSDeque(8)
	for i := int32(0); i < 4; i++ {
		d.PushBottom(i)
	}
	for want := int32(0); want < 4; want++ {
		var v int32
		if !d.Steal(&v) {
			t.Fatalf("steal failed at %d", want)
		}
		if v != want {
			t.Fatalf("stole %d, want %d (FIFO from the top)", v, want)
		}
	}
	var v int32
	if d.Steal(&v) {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestWSDequeFullBehavior(t *testing.T) {
	d := NewWSDeque(4)
	for i := int32(0); i < 4; i++ {
		if !d.PushBottom(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.PushBottom(99) {
		t.Fatal("push into full deque succeeded")
	}
	// Draining one element from either end frees a slot.
	var v int32
	if !d.Steal(&v) || v != 0 {
		t.Fatalf("steal got (%d)", v)
	}
	if !d.PushBottom(99) {
		t.Fatal("push after steal failed")
	}
}

func TestWSDequeMixedEnds(t *testing.T) {
	d := NewWSDeque(8)
	d.PushBottom(1)
	d.PushBottom(2)
	d.PushBottom(3)
	var v int32
	if !d.Steal(&v) || v != 1 {
		t.Fatalf("steal = %d, want 1", v)
	}
	if !d.PopBottom(&v) || v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if !d.PopBottom(&v) || v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	if d.PopBottom(&v) {
		t.Fatal("deque should be empty")
	}
}

func TestWSDequeCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two capacity did not panic")
		}
	}()
	NewWSDeque(6)
}

// TestWSDequeConcurrentConservation runs one owner cycling push/pop
// against several thieves and checks every pushed value is taken exactly
// once — by the owner or by exactly one thief.
func TestWSDequeConcurrentConservation(t *testing.T) {
	const (
		thieves = 4
		total   = 200000
	)
	d := NewWSDeque(64)
	taken := make([]atomic.Int32, total)
	var pushed, consumed atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})

	take := func(v int32) {
		if n := taken[v].Add(1); n != 1 {
			t.Errorf("value %d taken %d times", v, n)
		}
		consumed.Add(1)
	}

	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var v int32
			for {
				if d.Steal(&v) {
					take(v)
					continue
				}
				select {
				case <-done:
					// Drain whatever the owner left behind.
					for d.Steal(&v) {
						take(v)
					}
					return
				default:
				}
			}
		}()
	}

	// Owner: push everything, popping when full; pop the rest at the end.
	var v int32
	for next := int32(0); next < total; {
		if d.PushBottom(next) {
			pushed.Add(1)
			next++
			continue
		}
		if d.PopBottom(&v) {
			take(v)
		}
	}
	for d.PopBottom(&v) {
		take(v)
	}
	close(done)
	wg.Wait()

	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d values, want %d", got, total)
	}
	for i := range taken {
		if taken[i].Load() != 1 {
			t.Fatalf("value %d taken %d times", i, taken[i].Load())
		}
	}
}
