package lfq

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSPSCPushNPopNBasics(t *testing.T) {
	q := NewSPSC[int](8)
	if got := q.PushN(nil); got != 0 {
		t.Fatalf("PushN(nil) = %d, want 0", got)
	}
	if got := q.PushN([]int{0, 1, 2, 3, 4}); got != 5 {
		t.Fatalf("PushN = %d, want 5", got)
	}
	// Partial push: only 3 slots remain.
	if got := q.PushN([]int{5, 6, 7, 8, 9}); got != 3 {
		t.Fatalf("PushN on nearly full queue = %d, want 3", got)
	}
	if got := q.PushN([]int{99}); got != 0 {
		t.Fatalf("PushN on full queue = %d, want 0", got)
	}
	dst := make([]int, 3)
	if got := q.PopN(dst); got != 3 {
		t.Fatalf("PopN = %d, want 3", got)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("PopN[%d] = %d, want %d", i, v, i)
		}
	}
	// Partial pop: 5 remain, ask for 8.
	dst = make([]int, 8)
	if got := q.PopN(dst); got != 5 {
		t.Fatalf("PopN = %d, want 5", got)
	}
	for i, v := range dst[:5] {
		if v != i+3 {
			t.Fatalf("PopN[%d] = %d, want %d", i, v, i+3)
		}
	}
	if got := q.PopN(dst); got != 0 {
		t.Fatalf("PopN on empty queue = %d, want 0", got)
	}
}

// TestSPSCBatchWrapAround pushes and pops misaligned batch sizes so every
// call eventually straddles the ring's wrap point, checking the
// two-segment copies.
func TestSPSCBatchWrapAround(t *testing.T) {
	q := NewSPSC[int](16)
	next, expect := 0, 0
	src := make([]int, 7)
	dst := make([]int, 7)
	for round := 0; round < 200; round++ {
		for i := range src {
			src[i] = next + i
		}
		pushed := q.PushN(src)
		next += pushed
		popped := q.PopN(dst)
		for i := 0; i < popped; i++ {
			if dst[i] != expect {
				t.Fatalf("round %d: popped %d, want %d", round, dst[i], expect)
			}
			expect++
		}
	}
	if expect == 0 {
		t.Fatal("no elements moved")
	}
}

// TestSPSCBatchModelProperty drives random interleavings of single and
// batch operations against a bounded-FIFO reference model.
func TestSPSCBatchModelProperty(t *testing.T) {
	model := func(script []byte) bool {
		q := NewSPSC[int](16)
		var ref []int
		next := 0
		for _, op := range script {
			size := 1 + int(op>>4) // 1..16
			if op%2 == 0 {
				src := make([]int, size)
				for i := range src {
					src[i] = next + i
				}
				got := q.PushN(src)
				want := 16 - len(ref)
				if want > size {
					want = size
				}
				if got != want {
					return false
				}
				ref = append(ref, src[:got]...)
				next += got
			} else {
				dst := make([]int, size)
				got := q.PopN(dst)
				want := len(ref)
				if want > size {
					want = size
				}
				if got != want {
					return false
				}
				for i := 0; i < got; i++ {
					if dst[i] != ref[i] {
						return false
					}
				}
				ref = ref[got:]
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(model, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSPSCBatchConcurrent streams elements through the queue with
// randomly sized PushN/PopN calls from one producer and one consumer
// goroutine. Under -race this validates that the single release store per
// batch still publishes every slot write.
func TestSPSCBatchConcurrent(t *testing.T) {
	const n = 1 << 16
	q := NewSPSC[int](256)
	done := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(2))
		dst := make([]int, 64)
		expect := 0
		for expect < n {
			k := q.PopN(dst[:1+rng.Intn(64)])
			if k == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < k; i++ {
				if dst[i] != expect {
					done <- fmt.Errorf("popped %d, want %d", dst[i], expect)
					return
				}
				expect++
			}
		}
		done <- nil
	}()
	rng := rand.New(rand.NewSource(1))
	src := make([]int, 64)
	next := 0
	for next < n {
		k := 1 + rng.Intn(64)
		if next+k > n {
			k = n - next
		}
		for i := 0; i < k; i++ {
			src[i] = next + i
		}
		pushed := q.PushN(src[:k])
		next += pushed
		if pushed == 0 {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSPSCMixedSingleAndBatch interleaves Push/Pop with PushN/PopN to
// check the cached index snapshots stay coherent across the two APIs.
func TestSPSCMixedSingleAndBatch(t *testing.T) {
	q := NewSPSC[int](32)
	next, expect := 0, 0
	var v int
	dst := make([]int, 5)
	for round := 0; round < 500; round++ {
		if q.Push(next) {
			next++
		}
		src := []int{next, next + 1, next + 2}
		next += q.PushN(src)
		if q.Pop(&v) {
			if v != expect {
				t.Fatalf("Pop = %d, want %d", v, expect)
			}
			expect++
		}
		k := q.PopN(dst)
		for i := 0; i < k; i++ {
			if dst[i] != expect {
				t.Fatalf("PopN = %d, want %d", dst[i], expect)
			}
			expect++
		}
	}
	if expect == 0 {
		t.Fatal("no elements moved")
	}
}

func TestEnforcerPushNPartial(t *testing.T) {
	e := NewEnforcer[int](8)
	src := make([]int, 12)
	for i := range src {
		src[i] = i
	}
	if got := e.PushN(src); got != 8 {
		t.Fatalf("PushN = %d, want 8 (queue capacity)", got)
	}
	if got := e.PushN(src[8:]); got != 0 {
		t.Fatalf("PushN on full queue = %d, want 0", got)
	}
	dst := make([]int, 4)
	n, ok := e.ConsumeN(dst)
	if !ok || n != 4 {
		t.Fatalf("ConsumeN = (%d, %v), want (4, true)", n, ok)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("ConsumeN[%d] = %d, want %d", i, v, i)
		}
	}
	// The freed space accepts the retried suffix in order.
	if got := e.PushN(src[8:]); got != 4 {
		t.Fatalf("PushN of suffix = %d, want 4", got)
	}
}

func TestEnforcerPushNContended(t *testing.T) {
	e := NewEnforcer[int](8)
	if !e.ProdTryLock() {
		t.Fatal("ProdTryLock failed on fresh enforcer")
	}
	if got := e.PushN([]int{1, 2, 3}); got != 0 {
		t.Fatalf("PushN under contended producer lock = %d, want 0", got)
	}
	e.ProdUnlock()
	if got := e.PushN([]int{1, 2, 3}); got != 3 {
		t.Fatalf("PushN after unlock = %d, want 3", got)
	}
	if !e.ConsTryLock() {
		t.Fatal("ConsTryLock failed")
	}
	if n, ok := e.ConsumeN(make([]int, 3)); ok || n != 0 {
		t.Fatalf("ConsumeN under contended consumer lock = (%d, %v), want (0, false)", n, ok)
	}
	e.ConsUnlock()
}

// TestEnforcerBatchRaceStress hammers one enforcer with several batch
// producers and several batch consumers, the exact concurrency shape the
// scheduler creates (fan-in producers contending on the producer
// try-lock, scheduler threads contending on the consumer try-lock). Run
// under -race this is the regression net for the batched memory-ordering
// protocol. It checks conservation (every pushed value pops exactly once)
// and per-producer FIFO order.
func TestEnforcerBatchRaceStress(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 20000
	)
	e := NewEnforcer[[2]int](64)
	const total = int64(producers * perProd)
	var popped atomic.Int64
	var wg sync.WaitGroup
	var consWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			dst := make([][2]int, 16)
			for popped.Load() < total {
				n, _ := e.ConsumeN(dst)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				popped.Add(int64(n))
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := make([][2]int, 16)
			next := 0
			for next < perProd {
				k := 16
				if next+k > perProd {
					k = perProd - next
				}
				for i := 0; i < k; i++ {
					src[i] = [2]int{p, next + i}
				}
				n := e.PushN(src[:k])
				next += n
				if n == 0 {
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	consWG.Wait()
	if got := popped.Load(); got != producers*perProd {
		t.Fatalf("popped %d values, want %d", got, producers*perProd)
	}
}

// TestEnforcerBatchPerProducerOrder checks FIFO order per producer with
// batch producers and a single batch consumer (the scheduler's ordering
// contract: one consumer lock holder at a time).
func TestEnforcerBatchPerProducerOrder(t *testing.T) {
	const (
		producers = 3
		perProd   = 30000
	)
	e := NewEnforcer[[2]int](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := make([][2]int, 11)
			next := 0
			for next < perProd {
				k := len(src)
				if next+k > perProd {
					k = perProd - next
				}
				for i := 0; i < k; i++ {
					src[i] = [2]int{p, next + i}
				}
				n := e.PushN(src[:k])
				next += n
				if n == 0 {
					runtime.Gosched()
				}
			}
		}(p)
	}
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	got := 0
	dst := make([][2]int, 32)
	for got < producers*perProd {
		n, _ := e.ConsumeN(dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			p, seq := dst[i][0], dst[i][1]
			if seq <= last[p] {
				t.Fatalf("producer %d: value %d arrived after %d", p, seq, last[p])
			}
			last[p] = seq
			got++
		}
	}
	wg.Wait()
}

// ----- Microbenchmarks (run with -benchmem) -----

// BenchmarkSPSCBatch measures per-element cost of moving tuples through
// the ring in batches of the given size; size=1 via PushN/PopN shows the
// batch API's fixed overhead against BenchmarkSPSCPushPop.
func BenchmarkSPSCBatch(b *testing.B) {
	for _, size := range []int{1, 8, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			q := NewSPSC[int](1024)
			src := make([]int, size)
			dst := make([]int, size)
			for i := range src {
				src[i] = i
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				q.PushN(src)
				q.PopN(dst)
			}
		})
	}
}

func BenchmarkEnforcerPushN(b *testing.B) {
	for _, size := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			e := NewEnforcer[int](1024)
			src := make([]int, size)
			dst := make([]int, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				e.PushN(src)
				e.ConsumeN(dst)
			}
		})
	}
}
