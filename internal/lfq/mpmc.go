package lfq

import (
	"fmt"
	"sync/atomic"
)

// MPMC is a bounded, lock-free, multi-producer/multi-consumer FIFO queue
// (Vyukov's bounded MPMC algorithm). The scheduler uses it for the global
// freePorts list: any scheduler thread may push or pop operator input
// ports concurrently.
//
// Push and Pop are lock-free: a failed compare-and-swap on the ticket
// means another thread made progress. Following the paper's
// abandon-on-contention principle, both operations report failure rather
// than retry when they observe a slot still in transit, so callers can
// distinguish "try again / do something else" from blocking. Use the
// return value; a false from Pop can mean empty or contended, exactly as
// Boost.Lockfree's interface behaves in the paper (§4.1.1).
type MPMC[T any] struct {
	_     cacheLinePad
	head  atomic.Uint64 // pop ticket
	_     cacheLinePad
	tail  atomic.Uint64 // push ticket
	_     cacheLinePad
	mask  uint64
	slots []mpmcSlot[T]
}

type mpmcSlot[T any] struct {
	seq atomic.Uint64
	val T
	_   [104]byte // pad the slot toward a cache line to limit neighbor bouncing
}

// NewMPMC returns an empty queue with capacity for exactly cap elements.
// cap must be a power of two and at least 1.
func NewMPMC[T any](capacity int) *MPMC[T] {
	if capacity < 1 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("lfq: MPMC capacity %d is not a positive power of two", capacity))
	}
	q := &MPMC[T]{
		mask:  uint64(capacity - 1),
		slots: make([]mpmcSlot[T], capacity),
	}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the fixed capacity of the queue.
func (q *MPMC[T]) Cap() int { return len(q.slots) }

// Len returns an instantaneous estimate of the number of queued elements,
// for monitoring only.
func (q *MPMC[T]) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// PushResult tells a failed push's caller what it is up against: a
// genuinely full queue calls for waiting (or spilling elsewhere), while
// a busy slot means another thread is mid-operation and a brief retry
// will succeed.
type PushResult int

const (
	// PushOK: the element was enqueued.
	PushOK PushResult = iota
	// PushFull: an unconsumed element occupies the slot — the queue is
	// at capacity. Retrying before a consumer pops is futile.
	PushFull
	// PushBusy: a consumer has claimed the slot's pop ticket but has not
	// finished vacating it — transient contention, not fullness.
	PushBusy
)

// Push appends v and reports success. False means the queue was full or
// a slot was still in transit; callers that need to tell the two apart
// use PushEx.
func (q *MPMC[T]) Push(v T) bool {
	return q.PushEx(v) == PushOK
}

// PushEx appends v, distinguishing a full queue from transient
// contention on failure. Per the scheduler's contention principle the
// caller decides whether to retry, back off, or do something else.
func (q *MPMC[T]) PushEx(v T) PushResult {
	for {
		t := q.tail.Load()
		slot := &q.slots[t&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == t: // slot free for this ticket
			if q.tail.CompareAndSwap(t, t+1) {
				slot.val = v
				slot.seq.Store(t + 1)
				return PushOK
			}
			// Lost the ticket race; another producer advanced. This is
			// pure contention, not fullness — take one more look.
		case seq < t:
			// The slot is not ready for this ticket. Either it still
			// holds an unconsumed element (full), or a consumer CASed
			// the pop ticket and has not yet finished vacating it (in
			// transit). The head index tells them apart.
			h := q.head.Load()
			if h > t {
				// The queue cycled past our stale ticket while we were
				// descheduled; reload rather than misreport.
				continue
			}
			if t-h >= uint64(len(q.slots)) {
				return PushFull
			}
			return PushBusy
		default:
			// seq > t: tail moved under us between loads; reload.
		}
	}
}

// Pop removes the head element into *v and reports success. False means
// the queue was empty or a consumer raced us to the element.
func (q *MPMC[T]) Pop(v *T) bool {
	for {
		h := q.head.Load()
		slot := &q.slots[h&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == h+1: // slot holds an element for this ticket
			if q.head.CompareAndSwap(h, h+1) {
				*v = slot.val
				var zero T
				slot.val = zero
				slot.seq.Store(h + q.mask + 1)
				return true
			}
		case seq <= h: // producer has not finished (or queue empty)
			return false
		default:
			// seq > h+1: head moved under us; reload.
		}
	}
}
