package lfq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStackLIFO(t *testing.T) {
	s := NewStack[int](4)
	var v int
	if s.Pop(&v) {
		t.Fatal("Pop on empty stack returned true")
	}
	for i := 0; i < 4; i++ {
		if !s.Push(i) {
			t.Fatalf("Push %d failed", i)
		}
	}
	if s.Push(9) {
		t.Fatal("Push on full stack returned true")
	}
	for i := 3; i >= 0; i-- {
		if !s.Pop(&v) || v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
	if s.Pop(&v) {
		t.Fatal("Pop after drain returned true")
	}
}

func TestStackCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStack(0) did not panic")
		}
	}()
	NewStack[int](0)
}

func TestStackModelProperty(t *testing.T) {
	model := func(script []byte) bool {
		s := NewStack[uint16](8)
		var ref []uint16
		var next uint16
		for _, op := range script {
			if op%2 == 0 {
				got := s.Push(next)
				want := len(ref) < 8
				if got != want {
					return false
				}
				if got {
					ref = append(ref, next)
				}
				next++
			} else {
				var v uint16
				got := s.Pop(&v)
				want := len(ref) > 0
				if got != want {
					return false
				}
				if got {
					if v != ref[len(ref)-1] {
						return false
					}
					ref = ref[:len(ref)-1]
				}
			}
		}
		return true
	}
	if err := quick.Check(model, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStackConcurrentNoLossNoDup hammers the stack concurrently and
// verifies exactly-once delivery (and exercises the ABA-tagged reuse
// path under -race).
func TestStackConcurrentNoLossNoDup(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	s := NewStack[int](64)
	seen := make([]atomic.Int32, producers*perProd)
	var popped atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var v int
			for popped.Load() < producers*perProd {
				if s.Pop(&v) {
					seen[v].Add(1)
					popped.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !s.Push(p*perProd + i) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("element %d popped %d times", i, n)
		}
	}
}

func BenchmarkStackPushPop(b *testing.B) {
	s := NewStack[int](1024)
	var v int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(i)
		s.Pop(&v)
	}
}
