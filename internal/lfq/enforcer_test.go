package lfq

import (
	"runtime"
	"sync"
	"testing"
)

func TestEnforcerTryLocks(t *testing.T) {
	e := NewEnforcer[int](8)
	if !e.ProdTryLock() {
		t.Fatal("first ProdTryLock failed")
	}
	if e.ProdTryLock() {
		t.Fatal("second ProdTryLock succeeded while held")
	}
	// Consumer lock is independent of the producer lock.
	if !e.ConsTryLock() {
		t.Fatal("ConsTryLock failed while prod lock held")
	}
	if e.ConsTryLock() {
		t.Fatal("second ConsTryLock succeeded while held")
	}
	e.ProdUnlock()
	if !e.ProdTryLock() {
		t.Fatal("ProdTryLock failed after unlock")
	}
	e.ProdUnlock()
	e.ConsUnlock()
	if !e.ConsTryLock() {
		t.Fatal("ConsTryLock failed after unlock")
	}
	e.ConsUnlock()
}

// TestEnforcerPushReleasesLock guards against the paper's Figure 3
// presentation bug: push() as printed returns true without releasing
// prodLocked, which would wedge the port after one successful push. Our
// implementation releases the lock on both paths.
func TestEnforcerPushReleasesLock(t *testing.T) {
	e := NewEnforcer[int](8)
	if !e.Push(1) {
		t.Fatal("first Push failed")
	}
	if !e.Push(2) {
		t.Fatal("second Push failed; producer lock was not released")
	}
}

func TestEnforcerPushFullQueue(t *testing.T) {
	e := NewEnforcer[int](2)
	if !e.Push(1) || !e.Push(2) {
		t.Fatal("fills failed")
	}
	if e.Push(3) {
		t.Fatal("Push succeeded on full queue")
	}
	// Lock must have been released even though the queue push failed.
	if !e.ProdTryLock() {
		t.Fatal("producer lock leaked after failed push")
	}
	e.ProdUnlock()
}

func TestEnforcerPushContended(t *testing.T) {
	e := NewEnforcer[int](8)
	if !e.ProdTryLock() {
		t.Fatal("setup lock failed")
	}
	if e.Push(1) {
		t.Fatal("Push succeeded while another producer holds the lock")
	}
	e.ProdUnlock()
	if !e.Push(1) {
		t.Fatal("Push failed after contention cleared")
	}
}

// TestEnforcerConcurrentProducers checks that many pushing goroutines and
// one consuming goroutine preserve per-queue FIFO of successfully pushed
// elements and lose nothing.
func TestEnforcerConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProd = 2000
	e := NewEnforcer[int](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !e.Push(p*perProd + i) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	counts := make(map[int]int)
	got := 0
	for got < producers*perProd {
		if e.ConsTryLock() {
			var v int
			for e.Queue().Pop(&v) {
				counts[v]++
				got++
			}
			e.ConsUnlock()
		}
		runtime.Gosched()
	}
	wg.Wait()
	for p := 0; p < producers; p++ {
		for i := 0; i < perProd; i++ {
			if counts[p*perProd+i] != 1 {
				t.Fatalf("value %d consumed %d times", p*perProd+i, counts[p*perProd+i])
			}
		}
	}
}

func BenchmarkEnforcerPush(b *testing.B) {
	e := NewEnforcer[int](1024)
	var v int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Push(i)
		if e.ConsTryLock() {
			e.Queue().Pop(&v)
			e.ConsUnlock()
		}
	}
}

func TestEnforcerPushEx(t *testing.T) {
	e := NewEnforcer[int](2)
	if r := e.PushEx(1); r != PushOK {
		t.Fatalf("PushEx on empty queue = %v, want PushOK", r)
	}
	e.PushEx(2)
	if r := e.PushEx(3); r != PushFull {
		t.Fatalf("PushEx on full queue = %v, want PushFull", r)
	}
	if !e.ProdTryLock() {
		t.Fatal("producer lock should be free")
	}
	if r := e.PushEx(4); r != PushBusy {
		t.Fatalf("PushEx under a held producer lock = %v, want PushBusy", r)
	}
	e.ProdUnlock()
}

// TestEnforcerFairOrder drives the ticket primitives from several
// goroutines and checks claims are granted strictly in ticket order.
func TestEnforcerFairOrder(t *testing.T) {
	const claimants = 8
	const rounds = 500
	e := NewEnforcer[int](1 << 12)
	grants := make([]uint64, 0, claimants*rounds)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < claimants; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tk := e.FairTicket()
				for !e.FairTurn(tk) {
					runtime.Gosched()
				}
				for !e.ProdTryLock() {
					runtime.Gosched()
				}
				mu.Lock()
				grants = append(grants, tk)
				mu.Unlock()
				e.ProdUnlock()
				e.FairAdvance()
			}
		}()
	}
	wg.Wait()
	if len(grants) != claimants*rounds {
		t.Fatalf("granted %d claims, want %d", len(grants), claimants*rounds)
	}
	for i, g := range grants {
		if g != uint64(i) {
			t.Fatalf("grant %d went to ticket %d: fair claims out of order", i, g)
		}
	}
}

// TestEnforcerFairIdle: the line-idle check that bounds the fast-path
// bypass — empty line reads idle, a taken ticket makes it busy until
// retired, and it tracks through several queued claimants.
func TestEnforcerFairIdle(t *testing.T) {
	e := NewEnforcer[int](8)
	if !e.FairIdle() {
		t.Fatal("fresh enforcer's fair line is not idle")
	}
	a := e.FairTicket()
	b := e.FairTicket()
	if e.FairIdle() {
		t.Fatal("line reads idle with two tickets outstanding")
	}
	if !e.FairTurn(a) || e.FairTurn(b) {
		t.Fatal("head turn wrong with two tickets outstanding")
	}
	e.FairAdvance()
	if e.FairIdle() {
		t.Fatal("line reads idle with one ticket outstanding")
	}
	if !e.FairTurn(b) {
		t.Fatal("second ticket not admitted after first retired")
	}
	e.FairAdvance()
	if !e.FairIdle() {
		t.Fatal("line not idle after every ticket retired")
	}
}
