package fig

import (
	"strings"
	"testing"
	"time"

	"streams/internal/pe"
	"streams/internal/sim"
)

func TestPanelEnumeration(t *testing.T) {
	if n := len(Fig9Pipeline()); n != 6 {
		t.Fatalf("Fig9Pipeline has %d panels, want 6", n)
	}
	if n := len(Fig9DataParallel()); n != 6 {
		t.Fatalf("Fig9DataParallel has %d panels, want 6", n)
	}
	if n := len(Fig10()); n != 6 {
		t.Fatalf("Fig10 has %d panels, want 6", n)
	}
	if n := len(Fig11()); n != 6 {
		t.Fatalf("Fig11 has %d panels, want 6", n)
	}
	all := AllPanels()
	if len(all) != 24 {
		t.Fatalf("AllPanels has %d panels, want 24", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.ID] {
			t.Fatalf("duplicate panel ID %q", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestFindPanel(t *testing.T) {
	p, ok := FindPanel("fig10-xeon-cost1000")
	if !ok {
		t.Fatal("known panel not found")
	}
	if p.Work.Width != 10 || p.Work.Depth != 100 || p.Work.Cost != 1000 {
		t.Fatalf("panel workload %+v", p.Work)
	}
	if _, ok := FindPanel("nope"); ok {
		t.Fatal("unknown panel found")
	}
}

func TestRunStaticSeries(t *testing.T) {
	p, _ := FindPanel("fig9-pipeline-xeon-cost1")
	r := RunStatic(p, 3)
	if len(r.Threads) != len(r.Dynamic) || len(r.Threads) < 10 {
		t.Fatalf("sweep sizes: %d threads, %d values", len(r.Threads), len(r.Dynamic))
	}
	if r.Manual <= 0 || r.Dedicated <= 0 || r.ElasticMean <= 0 {
		t.Fatal("non-positive series values")
	}
	// The §5.1 ordering must be visible in the rendered panel.
	_, best := r.BestStatic()
	if !(r.Dedicated > best && best > r.Manual) {
		t.Fatalf("ordering broken: ded %.3g, best dyn %.3g, manual %.3g", r.Dedicated, best, r.Manual)
	}
	if r.ElasticLo < 1 || r.ElasticHi < r.ElasticLo {
		t.Fatalf("elastic band [%d, %d]", r.ElasticLo, r.ElasticHi)
	}
	// Elastic must land within 25% of the best static sweep point.
	if r.ElasticMean < 0.75*best {
		t.Fatalf("elastic mean %.3g below 75%% of best static %.3g", r.ElasticMean, best)
	}
	tbl := r.Table()
	for _, want := range []string{"manual", "dedicated", "dynamic static", "dynamic elastic", "settles"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestTraceTable(t *testing.T) {
	p := Fig11()[0]
	mo := sim.Model{M: p.Machine, W: p.Work}
	trace := sim.RunElastic(mo, sim.ElasticConfig{Seed: 1, DurationSec: 200})
	tbl := TraceTable(p, trace, 2)
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	// Header (2) + every other of 20 points.
	if len(lines) != 2+10 {
		t.Fatalf("trace table has %d lines:\n%s", len(lines), tbl)
	}
	if !strings.Contains(tbl, "threads") {
		t.Fatalf("missing header:\n%s", tbl)
	}
}

func TestRunNativeSmallWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("native run in -short mode")
	}
	for _, model := range []pe.Model{pe.Manual, pe.Dynamic} {
		res, err := RunNative(sim.Workload{Width: 2, Depth: 5, Cost: 10},
			NativeConfig{Model: model, Threads: 2, Duration: 300 * time.Millisecond})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%v: non-positive native throughput %g", model, res.Throughput)
		}
	}
}

// TestRunNativeAdaptiveAblations exercises the contention-adaptive
// knobs through the same path the streamsim flags take (-relax,
// -fairclaim, -flat-topo): each configuration must run the native
// workload to positive throughput, and the static-relax entries must
// report the pinned width back through the stats snapshot.
func TestRunNativeAdaptiveAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("native run in -short mode")
	}
	cases := []struct {
		name      string
		cfg       NativeConfig
		wantRelax int // 0 = don't check
	}{
		{"relax-static-2", NativeConfig{Model: pe.Dynamic, Threads: 3, Relax: 2}, 2},
		{"relax-adaptive", NativeConfig{Model: pe.Dynamic, Threads: 2, Elastic: true, MaxThreads: 3, AdaptPeriod: 50 * time.Millisecond}, 0},
		{"fair-claim", NativeConfig{Model: pe.Dynamic, Threads: 3, FairClaim: true}, 0},
		{"flat-topo", NativeConfig{Model: pe.Dynamic, Threads: 3, FlatTopo: true}, 0},
		{"all-on", NativeConfig{Model: pe.Dynamic, Threads: 3, Relax: 3, FairClaim: true, FlatTopo: true}, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Duration = 300 * time.Millisecond
			res, err := RunNative(sim.Workload{Width: 3, Depth: 4, Cost: 10}, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Throughput <= 0 {
				t.Fatalf("non-positive native throughput %g", res.Throughput)
			}
			if tc.wantRelax != 0 && res.Stats.Relax != tc.wantRelax {
				t.Fatalf("Stats.Relax = %d, want %d", res.Stats.Relax, tc.wantRelax)
			}
		})
	}
}

func TestSortPanelsByID(t *testing.T) {
	ps := AllPanels()
	SortPanelsByID(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i-1].ID >= ps[i].ID {
			t.Fatalf("not sorted at %d: %q >= %q", i, ps[i-1].ID, ps[i].ID)
		}
	}
}
