// Package fig defines one experiment per panel of the paper's evaluation
// figures and regenerates the series each panel plots.
//
//	Figure 9 (rows 1–2): pure pipeline, w=1 d=1000, costs {1, 100, 1000},
//	  Xeon and Power8 — throughput vs thread count for manual, dedicated,
//	  dynamic-static and dynamic-elastic.
//	Figure 9 (rows 3–4): pure data parallel, w=1000 d=1, costs
//	  {1, 10000, 100000}.
//	Figure 10: mixed, w=10 d=100, costs {1, 100, 1000}.
//	Figure 11: per-run elasticity traces (throughput and active threads
//	  vs time) for the pipeline, data-parallel and mixed rows.
//
// Multicore results come from the calibrated machine model in
// internal/sim (see that package and DESIGN.md for the substitution
// rationale); RunNative additionally executes any panel's workload on
// the real runtime at host scale for cross-checking.
package fig

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/sched"
	"streams/internal/sim"
	"streams/internal/trace"
)

// Panel is one sub-plot of an evaluation figure.
type Panel struct {
	// ID is the panel's stable identifier, e.g. "fig9-pipeline-xeon-cost1".
	ID string
	// Figure names the source figure, e.g. "9-pipeline".
	Figure string
	// Machine is the modeled testbed.
	Machine *sim.Machine
	// Work is the workload configuration.
	Work sim.Workload
}

// String implements fmt.Stringer in the paper's panel-title style.
func (p Panel) String() string {
	return fmt.Sprintf("%s: %s", p.Machine.Name, p.Work)
}

func panels(figure, kind string, w, d int, costs []int) []Panel {
	var out []Panel
	for _, m := range []*sim.Machine{sim.Xeon(), sim.Power8()} {
		for _, c := range costs {
			out = append(out, Panel{
				ID:      fmt.Sprintf("fig%s-%s-cost%d", figure, strings.ToLower(m.Name), c),
				Figure:  figure,
				Machine: m,
				Work:    sim.Workload{Width: w, Depth: d, Cost: c},
			})
		}
	}
	_ = kind
	return out
}

// Fig9Pipeline returns the six pure-pipeline panels (Figure 9 rows 1–2).
func Fig9Pipeline() []Panel {
	return panels("9-pipeline", "pipeline", 1, 1000, []int{1, 100, 1000})
}

// Fig9DataParallel returns the six pure-data-parallel panels (Figure 9
// rows 3–4). The paper uses different costs on each machine; the union
// is generated and EXPERIMENTS.md indexes the paper's exact panels.
func Fig9DataParallel() []Panel {
	return panels("9-dataparallel", "dataparallel", 1000, 1, []int{1, 10000, 100000})
}

// Fig10 returns the six mixed panels.
func Fig10() []Panel {
	return panels("10", "mixed", 10, 100, []int{1, 100, 1000})
}

// Fig11 returns the six trace rows of Figure 11.
func Fig11() []Panel {
	rows := []struct {
		m *sim.Machine
		w sim.Workload
	}{
		{sim.Xeon(), sim.Workload{Width: 1, Depth: 1000, Cost: 1}},
		{sim.Power8(), sim.Workload{Width: 1, Depth: 1000, Cost: 1}},
		{sim.Xeon(), sim.Workload{Width: 1000, Depth: 1, Cost: 10000}},
		{sim.Power8(), sim.Workload{Width: 1000, Depth: 1, Cost: 1000000}},
		{sim.Xeon(), sim.Workload{Width: 10, Depth: 100, Cost: 1000}},
		{sim.Power8(), sim.Workload{Width: 10, Depth: 100, Cost: 1000}},
	}
	var out []Panel
	for _, r := range rows {
		out = append(out, Panel{
			ID:      fmt.Sprintf("fig11-%s-w%d-d%d-cost%d", strings.ToLower(r.m.Name), r.w.Width, r.w.Depth, r.w.Cost),
			Figure:  "11",
			Machine: r.m,
			Work:    r.w,
		})
	}
	return out
}

// AllPanels returns every panel of the evaluation.
func AllPanels() []Panel {
	var out []Panel
	out = append(out, Fig9Pipeline()...)
	out = append(out, Fig9DataParallel()...)
	out = append(out, Fig10()...)
	out = append(out, Fig11()...)
	return out
}

// FindPanel returns the panel with the given ID.
func FindPanel(id string) (Panel, bool) {
	for _, p := range AllPanels() {
		if p.ID == id {
			return p, true
		}
	}
	return Panel{}, false
}

// ThreadSweep is the default x-axis of the static sweeps, matching the
// paper's 0–200 thread range.
var ThreadSweep = []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 184, 200}

// StaticResult holds one Figure 9/10-style panel: all four series.
type StaticResult struct {
	Panel     Panel
	Threads   []int     // x values of the dynamic-static sweep
	Dynamic   []float64 // tuples/s at the sink per thread count
	Manual    float64
	Dedicated float64
	// Elastic summarizes runs of the elasticity algorithm (the paper
	// averages 5 runs and reports the settled level and throughput).
	ElasticLo, ElasticHi int     // settled thread-level band across runs
	ElasticMean          float64 // settled sink throughput, averaged
	ElasticStdDev        float64
}

// RunStatic computes one panel: the model's static series plus `runs`
// elastic runs with distinct seeds.
func RunStatic(p Panel, runs int) StaticResult {
	mo := sim.Model{M: p.Machine, W: p.Work}
	res := StaticResult{
		Panel:     p,
		Manual:    mo.SinkThroughput(sim.Manual, 1),
		Dedicated: mo.SinkThroughput(sim.Dedicated, 0),
	}
	for _, k := range ThreadSweep {
		if k > p.Machine.LogicalCores() && k != 184 && k != 200 {
			continue
		}
		res.Threads = append(res.Threads, k)
		res.Dynamic = append(res.Dynamic, mo.SinkThroughput(sim.Dynamic, min(k, p.Machine.LogicalCores())))
	}
	if runs < 1 {
		runs = 1
	}
	var w metrics.Welford
	res.ElasticLo = p.Machine.LogicalCores() + 1
	for seed := 0; seed < runs; seed++ {
		trace := sim.RunElastic(mo, sim.ElasticConfig{Seed: int64(seed + 1)})
		lo, hi := sim.SettledLevels(trace, 0.2)
		res.ElasticLo = min(res.ElasticLo, lo)
		res.ElasticHi = max(res.ElasticHi, hi)
		w.Add(sim.SettledThroughput(trace, 0.2) / float64(p.Work.OpsPerTuple()))
	}
	res.ElasticMean = w.Mean()
	res.ElasticStdDev = w.StdDev()
	return res
}

// Table renders the panel as an aligned text table: the same series the
// paper plots.
func (r StaticResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (%s)\n", r.Panel.String(), r.Panel.ID)
	fmt.Fprintf(&sb, "  %-22s %14s\n", "series", "tuples/s")
	fmt.Fprintf(&sb, "  %-22s %14.3g\n", "manual (1 thread)", r.Manual)
	fmt.Fprintf(&sb, "  %-22s %14.3g\n", "dedicated (1/port)", r.Dedicated)
	for i, k := range r.Threads {
		fmt.Fprintf(&sb, "  dynamic static k=%-5d %14.3g\n", k, r.Dynamic[i])
	}
	fmt.Fprintf(&sb, "  dynamic elastic        %14.3g ± %.2g  (settles %d–%d threads)\n",
		r.ElasticMean, r.ElasticStdDev, r.ElasticLo, r.ElasticHi)
	return sb.String()
}

// BestStatic returns the sweep's peak (level, throughput).
func (r StaticResult) BestStatic() (int, float64) {
	best, bt := 0, 0.0
	for i, k := range r.Threads {
		if r.Dynamic[i] > bt {
			best, bt = k, r.Dynamic[i]
		}
	}
	return best, bt
}

// TraceTable renders a Figure 11-style trace as text.
func TraceTable(p Panel, trace []sim.TracePoint, every int) string {
	if every < 1 {
		every = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (%s)\n", p.String(), p.ID)
	fmt.Fprintf(&sb, "  %8s %14s %8s\n", "seconds", "tuples/s (PE)", "threads")
	for i, pt := range trace {
		if i%every != 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %8.0f %14.3g %8d\n", pt.Second, pt.Throughput, pt.Threads)
	}
	return sb.String()
}

// NativeConfig controls a real-runtime cross-check run.
type NativeConfig struct {
	// Model is the threading model to run.
	Model pe.Model
	// Threads is the dynamic thread level.
	Threads int
	// Duration is how long to measure after a brief warmup.
	Duration time.Duration
	// GlobalFreeList runs the dynamic scheduler with the paper's single
	// global free list instead of the default sharded per-thread caches,
	// for global-vs-sharded comparisons (EXPERIMENTS.md).
	GlobalFreeList bool
	// DisableChain turns off inline chain execution in the dynamic
	// scheduler (every flush goes through the queues), for chain-on
	// versus chain-off comparisons (streamsim -nochain, BENCH_chain).
	DisableChain bool
	// VM attaches bytecode programs to the topology's workers so the
	// dynamic scheduler can fuse chain runs into superinstruction
	// dispatch loops (streamsim -vm).
	VM bool
	// NoVec keeps fused runs on the scalar per-tuple dispatch loop,
	// disabling vectorized batch-at-a-time execution (streamsim -novec);
	// the vec-off arm of the vectorization ablation.
	NoVec bool
	// Relax sets the free-list relaxation width (streamsim -relax).
	// 0 means adaptive when Elastic is set (the PE's adaptation loop
	// drives the width from the contention meters) and tight (width 1)
	// otherwise; N ≥ 1 pins the width statically.
	Relax int
	// FairClaim routes contended port claims through the ticket line
	// (streamsim -fairclaim); see sched.Config.FairClaim.
	FairClaim bool
	// FlatTopo disables the topology-aware steal ordering (streamsim
	// -flat-topo); every steal victim is treated as equally remote.
	FlatTopo bool
	// Fault, if non-nil, arms chaos injection at the runtime's operator
	// and queue seams for the whole run (streamsim -chaos).
	Fault *fault.Injector
	// QuarantineAfter overrides the per-operator panic budget before
	// quarantine (0 keeps the runtime default of 3).
	QuarantineAfter int
	// Elastic turns on runtime thread adaptation (dynamic model only):
	// the run starts at the controller's minimum level and explores.
	Elastic bool
	// AdaptPeriod is the elastic measurement period (default 250ms for
	// native runs, which are far shorter than production).
	AdaptPeriod time.Duration
	// MaxThreads caps the dynamic thread table; 0 keeps the default of
	// max(Threads, 1) (or the host CPU count when Elastic is set).
	MaxThreads int
	// Tracer, if non-nil, records scheduler decisions for the whole run.
	// Size it with TraceRings for this workload and config.
	Tracer *trace.Tracer
	// Latency, if non-nil, measures end-to-end tuple latency into this
	// histogram (source-stamp to sink-drain).
	Latency *metrics.Histogram
	// OnStart, if set, observes the live PE right after Start — the hook
	// the debug endpoint uses to attach to a running PE without this
	// package importing the server.
	OnStart func(*pe.PE)
	// Source, if non-nil, replaces the workload's synthetic Generator
	// with a caller-provided source operator (streamsim -ingest-addr
	// places the network front end here). Throughput is still measured
	// at the sink, so it reports whatever the source actually feeds.
	Source graph.Source
}

// NativeResult reports a native run: measured sink throughput plus the
// scheduler's slow-path meters over the whole run (warmup included),
// so contention experiments can report steals/spills alongside
// tuples/s.
type NativeResult struct {
	// Throughput is measured sink tuples/s over the measurement window.
	Throughput float64
	// Stats carries the scheduler's reschedule/find-failure/contention
	// counters (zero under the manual and dedicated models).
	Stats pe.SchedStats
	// Faults carries the fault-containment meters (all models); all-zero
	// unless operators misbehaved or chaos injection was armed.
	Faults metrics.FaultsSnapshot
	// Latency is the end-to-end latency distribution (zero Total unless
	// NativeConfig.Latency was set).
	Latency metrics.HistogramSnapshot
	// FinalLevel is the thread level at the end of the run (interesting
	// under Elastic).
	FinalLevel int
}

// TraceRings returns the ring count a tracer needs for RunNative with
// this workload and config (see sched.TraceRings for the convention).
func TraceRings(w sim.Workload, cfg NativeConfig) (int, error) {
	topo := ops.Topology{Width: w.Width, Depth: w.Depth, Cost: w.Cost}
	g, _, err := topo.Build()
	if err != nil {
		return 0, err
	}
	return sched.TraceRings(sched.Config{MaxThreads: nativeMaxThreads(cfg)}, g), nil
}

// nativeMaxThreads resolves the dynamic thread-table size RunNative
// will use for cfg.
func nativeMaxThreads(cfg NativeConfig) int {
	if cfg.MaxThreads > 0 {
		return cfg.MaxThreads
	}
	return max(cfg.Threads, 1)
}

// RunNative executes a (scaled-down) workload on the real runtime of
// this repository and returns measured sink tuples/s with scheduler
// statistics. It validates the scheduler's behaviour at host scale; it
// does not reproduce the paper's multicore numbers (see package
// comment).
func RunNative(w sim.Workload, cfg NativeConfig) (NativeResult, error) {
	topo := ops.Topology{Width: w.Width, Depth: w.Depth, Cost: w.Cost, VM: cfg.VM}
	var (
		g   *graph.Graph
		snk *ops.Sink
		err error
	)
	if cfg.Source != nil {
		g, snk, err = topo.BuildWithSource(cfg.Source)
	} else {
		g, snk, err = topo.Build()
	}
	if err != nil {
		return NativeResult{}, err
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.AdaptPeriod <= 0 {
		cfg.AdaptPeriod = 250 * time.Millisecond
	}
	p, err := pe.New(g, pe.Config{
		Model:         cfg.Model,
		Threads:       cfg.Threads,
		Elastic:       cfg.Elastic,
		RelaxAdaptive: cfg.Elastic && cfg.Relax == 0,
		AdaptPeriod:   cfg.AdaptPeriod,
		MaxThreads:    nativeMaxThreads(cfg),
		Sched: sched.Config{
			GlobalFreeList: cfg.GlobalFreeList,
			DisableChain:   cfg.DisableChain,
			DisableVec:     cfg.NoVec,
			RelaxWidth:     cfg.Relax,
			FairClaim:      cfg.FairClaim,
			FlatTopo:       cfg.FlatTopo,
		},
		Fault:           cfg.Fault,
		QuarantineAfter: cfg.QuarantineAfter,
		Tracer:          cfg.Tracer,
		Latency:         cfg.Latency,
	})
	if err != nil {
		return NativeResult{}, err
	}
	if cfg.Tracer != nil {
		cfg.Tracer.Enable()
	}
	if err := p.Start(); err != nil {
		return NativeResult{}, err
	}
	if cfg.OnStart != nil {
		cfg.OnStart(p)
	}
	warm := cfg.Duration / 4
	time.Sleep(warm)
	before := snk.Count()
	start := time.Now()
	time.Sleep(cfg.Duration)
	delta := snk.Count() - before
	elapsed := time.Since(start).Seconds()
	level := p.Level()
	p.Stop()
	return NativeResult{
		Throughput: float64(delta) / elapsed,
		Stats:      p.SchedStats(),
		Faults:     p.FaultStats(),
		Latency:    cfg.Latency.Snapshot(),
		FinalLevel: level,
	}, nil
}

// CtxSwitchEstimate is the §5.1 modeled context-switch comparison for
// one panel: the dedicated model against the dynamic model at its best
// static thread count. One struct feeds both presentations — String for
// the CLI's -verbose line, the JSON field tags for the debug endpoint —
// so the two can never drift apart.
type CtxSwitchEstimate struct {
	// Dedicated is modeled context switches/s with a thread per port.
	Dedicated float64 `json:"dedicated"`
	// BestK is the dynamic sweep's best static thread count.
	BestK int `json:"best_k"`
	// Dynamic is modeled context switches/s for the dynamic model at
	// BestK threads.
	Dynamic float64 `json:"dynamic"`
}

// String renders the -verbose line.
func (e CtxSwitchEstimate) String() string {
	return fmt.Sprintf("ctx switches/s: dedicated %.3g, dynamic(k=%d) %.3g",
		e.Dedicated, e.BestK, e.Dynamic)
}

// CtxSwitches computes the panel's context-switch estimate from the
// calibrated machine model.
func (r StaticResult) CtxSwitches() CtxSwitchEstimate {
	mo := sim.Model{M: r.Panel.Machine, W: r.Panel.Work}
	bestK, _ := r.BestStatic()
	return CtxSwitchEstimate{
		Dedicated: mo.CtxSwitchesPerSecond(sim.Dedicated, 0),
		BestK:     bestK,
		Dynamic:   mo.CtxSwitchesPerSecond(sim.Dynamic, bestK),
	}
}

// SortPanelsByID orders panels deterministically for report output.
func SortPanelsByID(ps []Panel) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}
