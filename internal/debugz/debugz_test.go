package debugz

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ingest"
	"streams/internal/metrics"
	"streams/internal/obs"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/trace"
)

// buildPE runs a small pipeline to completion under the dynamic model
// with tracing and latency measurement armed, and returns the finished
// (but not yet stopped) PE plus its instruments.
func buildPE(t *testing.T) (*pe.PE, *trace.Tracer, *metrics.Histogram) {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 2000}, 0, 1)
	w := b.AddNode(&ops.Worker{}, 1, 1)
	b.Connect(src, 0, w, 0)
	sn := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(w, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2}
	rings := pe.TraceRings(cfg, g)
	tr := trace.New(rings, 0)
	tr.Enable()
	lat := metrics.NewHistogram(rings)
	cfg.Tracer = tr
	cfg.Latency = lat
	p, err := pe.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	t.Cleanup(p.Stop)
	return p, tr, lat
}

func TestEndpoints(t *testing.T) {
	p, tr, lat := buildPE(t)
	srv, err := Serve("127.0.0.1:0", Options{
		PE: p, Tracer: tr, Latency: lat, Workload: "pipeline d=1 n=2000",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// /debugz/stats: live JSON with latency quantiles (the acceptance
	// check: p50/p99 while the process runs).
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/debugz/stats")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Model != "dynamic" || snap.Executed == 0 {
		t.Fatalf("stats snapshot: model=%q executed=%d", snap.Model, snap.Executed)
	}
	if snap.Latency == nil || snap.Latency.Count != 2000 || snap.Latency.P50Ns <= 0 || snap.Latency.P99Ns < snap.Latency.P50Ns {
		t.Fatalf("latency summary: %+v", snap.Latency)
	}
	if snap.TraceKinds["acquire"] == 0 {
		t.Fatalf("trace kinds: %v", snap.TraceKinds)
	}

	// /debugz: the text panel renders from the same snapshot.
	text := get("/debugz")
	for _, want := range []string{"workload: pipeline", "model dynamic", "latency: n=2000", "free list:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text panel missing %q:\n%s", want, text)
		}
	}

	// /debugz/trace: a loadable trace_event document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/debugz/trace")), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace export")
	}

	// /debug/pprof is mounted.
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("pprof index not served")
	}
}

func TestCollectWithoutInstruments(t *testing.T) {
	// Every Options field is optional; Collect and WriteText must not
	// panic on an empty run.
	var sb strings.Builder
	Collect(Options{}).WriteText(&sb)
	if !strings.Contains(sb.String(), "scheduler:") {
		t.Fatalf("panel: %q", sb.String())
	}
}

func TestTraceEndpointWithoutTracer(t *testing.T) {
	h := Handler(Options{})
	req := httptest.NewRequest("GET", "/debugz/trace", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rw.Code)
	}
}

func TestWriteTextChainLine(t *testing.T) {
	// The chain meters render their own panel line when inline chain
	// execution fired, and stay silent otherwise (dedicated/manual runs
	// and -nochain ablations never meter a chain).
	var with strings.Builder
	s := Snapshot{Model: "dynamic"}
	s.Sched.Chain = metrics.ChainSnapshot{Starts: 3, Links: 12, Tuples: 384, DepthStops: 2, Occupied: 1}
	s.WriteText(&with)
	if !strings.Contains(with.String(), "chain: starts 3, links 12, tuples 384, stops depth 2 budget 0 lock 0 occupied 1") {
		t.Fatalf("panel missing chain line:\n%s", with.String())
	}
	var without strings.Builder
	Snapshot{Model: "dynamic"}.WriteText(&without)
	if strings.Contains(without.String(), "chain:") {
		t.Fatalf("panel shows chain line with zero meters:\n%s", without.String())
	}
}

func TestTenantsEndpoint(t *testing.T) {
	// A live ingest front end renders its admission panel on /debugz,
	// serves /debugz/tenants in both formats, and 404s when absent.
	ing, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{
			{Name: "gold", Rate: 1000, Burst: 32, Policy: ingest.Block, Guaranteed: true},
			{Name: "bronze", Policy: ingest.ShedOldest, QueueCap: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	h := Handler(Options{Ingest: ing})

	get := func(path string, wantCode int) string {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != wantCode {
			t.Fatalf("GET %s: status %d, want %d", path, rw.Code, wantCode)
		}
		return rw.Body.String()
	}

	text := get("/debugz/tenants", http.StatusOK)
	for _, want := range []string{"ingest: admitted 0", "tenant gold (guaranteed, block)", "tenant bronze (besteffort, shed-oldest)", "queue 0/64"} {
		if !strings.Contains(text, want) {
			t.Fatalf("tenants panel missing %q:\n%s", want, text)
		}
	}
	var sn ingest.Snapshot
	if err := json.Unmarshal([]byte(get("/debugz/tenants?format=json", http.StatusOK)), &sn); err != nil {
		t.Fatal(err)
	}
	if len(sn.Tenants) != 2 || sn.Tenants[0].Name != "gold" {
		t.Fatalf("tenants JSON: %+v", sn)
	}
	// The main panel carries the same section.
	if !strings.Contains(get("/debugz", http.StatusOK), "ingest: admitted") {
		t.Fatal("/debugz panel missing the ingest section")
	}

	// Without a front end the endpoint 404s.
	none := Handler(Options{})
	req := httptest.NewRequest("GET", "/debugz/tenants", nil)
	rw := httptest.NewRecorder()
	none.ServeHTTP(rw, req)
	if rw.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rw.Code)
	}
}

// TestResponseHeaders pins the header contract: every endpoint declares
// its content type and opts out of caching — these are live views, and
// a cached snapshot is worse than none.
func TestResponseHeaders(t *testing.T) {
	p, tr, lat := buildPE(t)
	col := obs.New(obs.Options{PE: p, Workload: "hdr"})
	h := Handler(Options{PE: p, Tracer: tr, Latency: lat, Obs: col})
	cases := []struct {
		path, wantType string
	}{
		{"/debugz", "text/plain; charset=utf-8"},
		{"/debugz/stats", "application/json"},
		{"/debugz/trace", "application/json"},
		{"/debugz/flows", "text/plain; charset=utf-8"},
		{"/debugz/flows?format=json", "application/json"},
		{"/metricz", obs.ContentType},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", c.path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", c.path, rw.Code)
		}
		if got := rw.Header().Get("Content-Type"); got != c.wantType {
			t.Errorf("GET %s: Content-Type %q, want %q", c.path, got, c.wantType)
		}
		if got := rw.Header().Get("Cache-Control"); got != "no-store" {
			t.Errorf("GET %s: Cache-Control %q, want no-store", c.path, got)
		}
	}
}

// TestStatsJSONGolden pins the /debugz/stats wire shape: the exact
// top-level key set an instrumented run serves. A renamed or dropped
// field breaks dashboards silently; this test makes it loud instead.
func TestStatsJSONGolden(t *testing.T) {
	p, tr, lat := buildPE(t)
	h := Handler(Options{PE: p, Tracer: tr, Latency: lat, Workload: "golden"})
	req := httptest.NewRequest("GET", "/debugz/stats", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(rw.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{
		"executed", "faults", "latency", "level", "model", "sched",
		"sink_delivered", "trace_kinds", "workload",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats JSON keys drifted:\n got %v\nwant %v", got, want)
	}
	var lat2 struct {
		Latency struct {
			Count uint64 `json:"count"`
			P50Ns int64  `json:"p50_ns"`
			P99Ns int64  `json:"p99_ns"`
			MaxNs int64  `json:"max_ns"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &lat2); err != nil {
		t.Fatal(err)
	}
	if lat2.Latency.Count == 0 || lat2.Latency.P50Ns == 0 {
		t.Fatalf("latency summary shape drifted: %s", m["latency"])
	}
}

// TestObsEndpoints drives the three observability endpoints against a
// live collector: the flows panel in both formats, the OpenMetrics
// exposition (validated by the strict parser), and the flight-recorder
// fetch-and-force path.
func TestObsEndpoints(t *testing.T) {
	p, tr, lat := buildPE(t)
	rec := &obs.Recorder{MinGap: time.Nanosecond}
	col := obs.New(obs.Options{
		PE: p, Latency: lat, Recorder: rec, Workload: "obs-endpoints",
	})
	col.SampleNow()
	h := Handler(Options{PE: p, Tracer: tr, Latency: lat, Obs: col})

	get := func(path string, wantCode int) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != wantCode {
			t.Fatalf("GET %s: status %d, want %d", path, rw.Code, wantCode)
		}
		return rw
	}

	text := get("/debugz/flows", http.StatusOK).Body.String()
	for _, want := range []string{"workload: obs-endpoints", "flows:", "edge 0", "bottleneck:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("flows panel missing %q:\n%s", want, text)
		}
	}
	var fs obs.FlowSnapshot
	if err := json.Unmarshal(get("/debugz/flows?format=json", http.StatusOK).Body.Bytes(), &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Workload != "obs-endpoints" || len(fs.Edges) == 0 {
		t.Fatalf("flows JSON: %+v", fs)
	}

	fams, err := obs.ParseExposition(get("/metricz", http.StatusOK).Body)
	if err != nil {
		t.Fatalf("/metricz does not parse: %v", err)
	}
	if _, ok := fams["streams_executed"]; !ok {
		t.Fatalf("/metricz families: %v", fams)
	}

	// No dump yet; forcing one serves it.
	get("/debugz/flightrec", http.StatusNotFound)
	var d obs.Dump
	if err := json.Unmarshal(get("/debugz/flightrec?dump=now", http.StatusOK).Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "manual" || len(d.Samples) == 0 {
		t.Fatalf("forced dump: reason %q, %d samples", d.Reason, len(d.Samples))
	}
	if err := json.Unmarshal(get("/debugz/flightrec", http.StatusOK).Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
}

// TestObsEndpointsWithoutCollector: the observability endpoints 404
// cleanly when the run was started without -obs.
func TestObsEndpointsWithoutCollector(t *testing.T) {
	h := Handler(Options{})
	for _, path := range []string{"/debugz/flows", "/debugz/flightrec", "/metricz"} {
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusNotFound {
			t.Fatalf("GET %s without obs: status %d, want 404", path, rw.Code)
		}
	}
}
