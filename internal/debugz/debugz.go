// Package debugz is the runtime's live introspection endpoint: an
// opt-in HTTP server that snapshots a running PE's scheduler meters,
// fault counters, latency histogram and tracer, and serves them as
// human-readable text, JSON, a Chrome trace_event file, and the
// standard pprof profiles.
//
//	GET /debugz            human-readable snapshot (the streamsim panel)
//	GET /debugz/stats      the same snapshot as JSON
//	GET /debugz/trace      tracer contents in Chrome trace_event format,
//	                       loadable in chrome://tracing or Perfetto
//	GET /debugz/flows      per-edge backpressure panel + attribution
//	                       report (?format=json for the machine view)
//	GET /debugz/flightrec  the most recent flight-recorder dump
//	                       (?dump=now forces one)
//	GET /metricz           OpenMetrics text exposition for scrapers
//	GET /debug/pprof/      the net/http/pprof index and profiles
//
// One Snapshot struct feeds every presentation: Collect reads each
// meter bundle through its single-pass snapshot API (never individual
// counters in sequence — see the metrics.Counter contract), WriteText
// renders the human panel, and the JSON field tags render the
// endpoint. The streamsim CLI prints its end-of-run summary through
// the same WriteText, so the human and machine views cannot drift. The
// flow endpoints follow the same discipline through obs.FlowSnapshot.
package debugz

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"streams/internal/fig"
	"streams/internal/ingest"
	"streams/internal/metrics"
	"streams/internal/obs"
	"streams/internal/pe"
	"streams/internal/trace"
)

// Options names the live objects the endpoint introspects. Every field
// is optional; absent ones render as absent rather than erroring.
type Options struct {
	// PE is the running processing element.
	PE *pe.PE
	// Tracer is the scheduler tracer (served at /debugz/trace).
	Tracer *trace.Tracer
	// Latency is the end-to-end latency histogram.
	Latency *metrics.Histogram
	// Workload describes the run for the snapshot header, e.g.
	// "w=10 d=100 cost=1000".
	Workload string
	// CtxSwitch optionally carries the modeled §5.1 context-switch
	// estimate for the workload's panel.
	CtxSwitch *fig.CtxSwitchEstimate
	// Ingest is the network front end, when the run has one; it adds
	// the per-tenant admission panel and the /debugz/tenants endpoint.
	Ingest *ingest.Server
	// Obs is the flow-observability collector, when the run has one; it
	// adds /metricz, /debugz/flows and /debugz/flightrec.
	Obs *obs.Collector
}

// LatencySummary is the JSON-friendly digest of a latency histogram
// snapshot: counts plus the standard quantile upper bounds in
// nanoseconds.
type LatencySummary struct {
	Count uint64 `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P90Ns int64  `json:"p90_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// summarize digests a histogram snapshot.
func summarize(s metrics.HistogramSnapshot) *LatencySummary {
	if s.Total == 0 {
		return nil
	}
	return &LatencySummary{
		Count: s.Total,
		P50Ns: int64(s.Quantile(0.50)),
		P90Ns: int64(s.Quantile(0.90)),
		P99Ns: int64(s.Quantile(0.99)),
		MaxNs: int64(s.Max()),
	}
}

// Snapshot is one consistent observation of a run, the single source
// for every output format.
type Snapshot struct {
	// Workload is the run description from Options.
	Workload string `json:"workload,omitempty"`
	// Model is the threading model name.
	Model string `json:"model"`
	// Level is the thread level at snapshot time.
	Level int `json:"level"`
	// Executed counts tuples processed across all operators.
	Executed uint64 `json:"executed"`
	// SinkDelivered counts tuples that reached sink operators.
	SinkDelivered uint64 `json:"sink_delivered"`
	// Sched carries the dynamic scheduler's slow-path meters.
	Sched pe.SchedStats `json:"sched"`
	// Faults carries the fault-containment meters.
	Faults metrics.FaultsSnapshot `json:"faults"`
	// LastFault describes the most recent contained fault ("" if none).
	LastFault string `json:"last_fault,omitempty"`
	// Latency digests the end-to-end latency histogram (nil when
	// latency measurement is off or no sample has landed).
	Latency *LatencySummary `json:"latency,omitempty"`
	// TraceKinds tallies traced events by kind (nil without a tracer).
	TraceKinds map[string]int `json:"trace_kinds,omitempty"`
	// CtxSwitch is the modeled context-switch estimate, when supplied.
	CtxSwitch *fig.CtxSwitchEstimate `json:"ctx_switch,omitempty"`
	// Ingest is the admission-control state (nil without a front end).
	Ingest *ingest.Snapshot `json:"ingest,omitempty"`
}

// Collect takes one consistent snapshot of the run. Multi-counter
// bundles are read through their snapshot APIs in a single pass each.
func Collect(o Options) Snapshot {
	var s Snapshot
	s.Workload = o.Workload
	s.CtxSwitch = o.CtxSwitch
	if o.PE != nil {
		s.Model = o.PE.Model().String()
		s.Level = o.PE.Level()
		s.Sched = o.PE.SchedStats()
		s.Faults = o.PE.FaultStats()
		s.LastFault = o.PE.LastFault()
		s.Executed = o.PE.Executed()
		s.SinkDelivered = o.PE.SinkDelivered()
	}
	if o.Latency != nil {
		s.Latency = summarize(o.Latency.Snapshot())
	}
	if o.Tracer != nil {
		s.TraceKinds = trace.Kinds(o.Tracer.Snapshot())
	}
	if o.Ingest != nil {
		in := o.Ingest.Snapshot()
		s.Ingest = &in
	}
	return s
}

// FromNative builds the same Snapshot from a finished RunNative result,
// so the CLI's end-of-run summary and the live endpoint share one
// rendering path.
func FromNative(model pe.Model, workload string, res fig.NativeResult, tr *trace.Tracer) Snapshot {
	s := Snapshot{
		Workload: workload,
		Model:    model.String(),
		Level:    res.FinalLevel,
		Sched:    res.Stats,
		Faults:   res.Faults,
		Latency:  summarize(res.Latency),
	}
	if tr != nil {
		s.TraceKinds = trace.Kinds(tr.Snapshot())
	}
	return s
}

// WriteText renders the snapshot as the human-readable panel both the
// /debugz page and the streamsim CLI print.
func (s Snapshot) WriteText(w io.Writer) {
	if s.Workload != "" {
		fmt.Fprintf(w, "workload: %s\n", s.Workload)
	}
	fmt.Fprintf(w, "model %s, thread level %d\n", s.Model, s.Level)
	if s.Executed != 0 || s.SinkDelivered != 0 {
		fmt.Fprintf(w, "executed %d tuples, %d delivered to sinks\n", s.Executed, s.SinkDelivered)
	}
	st := s.Sched
	fmt.Fprintf(w, "scheduler: reschedules %d, find failures %d\n", st.Reschedules, st.FindFailures)
	c := st.Contention
	fmt.Fprintf(w, "free list: push failures %d, pop failures %d, steals %d, steal misses %d, spills %d\n",
		c.PushFail, c.PopFail, c.Steal, c.StealMiss, c.Spill)
	if st.Relax > 1 || c.Lateral > 0 {
		fmt.Fprintf(w, "relax: width %d, lateral pushes %d\n", st.Relax, c.Lateral)
	}
	if c.Steal > 0 && c.StealSMT+c.StealLLC+c.StealRemote > 0 {
		fmt.Fprintf(w, "steal distance: smt %d, llc %d, remote %d\n", c.StealSMT, c.StealLLC, c.StealRemote)
	}
	if cw := st.ClaimWait; cw.Total > 0 {
		fmt.Fprintf(w, "fair claim: n=%d p50≤%v p99≤%v max≤%v\n", cw.Total,
			time.Duration(cw.Quantile(0.50)), time.Duration(cw.Quantile(0.99)), time.Duration(cw.Max()))
	}
	if ch := st.Chain; ch != (metrics.ChainSnapshot{}) {
		fmt.Fprintf(w, "chain: starts %d, links %d, tuples %d, stops depth %d budget %d lock %d occupied %d\n",
			ch.Starts, ch.Links, ch.Tuples, ch.DepthStops, ch.BudgetStops, ch.LockMisses, ch.Occupied)
	}
	if v := st.VM; v != (metrics.VMSnapshot{}) {
		fmt.Fprintf(w, "vm: programs %d, fused runs %d, fused tuples %d, fallbacks %d\n",
			v.Programs, v.FusedRuns, v.FusedTuples, v.Fallbacks)
		fmt.Fprintf(w, "vm vec: batches %d, rows %d, scalar fallbacks %d, compute aborts %d\n",
			v.VecBatches, v.VecRows, v.VecFallbacks, v.VecAborts)
	}
	f := s.Faults
	if f != (metrics.FaultsSnapshot{}) {
		fmt.Fprintf(w, "faults: op panics %d, dead letters %d, quarantines %d, watchdog stalls %d\n",
			f.OpPanics, f.DeadLetters, f.Quarantines, f.WatchdogStalls)
	}
	if s.LastFault != "" {
		fmt.Fprintf(w, "last fault: %s\n", s.LastFault)
	}
	if l := s.Latency; l != nil {
		fmt.Fprintf(w, "latency: n=%d p50≤%v p90≤%v p99≤%v max≤%v\n", l.Count,
			time.Duration(l.P50Ns), time.Duration(l.P90Ns), time.Duration(l.P99Ns), time.Duration(l.MaxNs))
	}
	if len(s.TraceKinds) > 0 {
		fmt.Fprintf(w, "trace events:")
		for _, k := range trace.KindNames() {
			if n := s.TraceKinds[k]; n > 0 {
				fmt.Fprintf(w, " %s=%d", k, n)
			}
		}
		fmt.Fprintln(w)
	}
	if s.CtxSwitch != nil {
		fmt.Fprintf(w, "%s\n", s.CtxSwitch)
	}
	if in := s.Ingest; in != nil {
		writeIngest(w, *in)
	}
}

// writeIngest renders the admission panel: one totals line, one line
// per tenant.
func writeIngest(w io.Writer, in ingest.Snapshot) {
	tot := in.Totals
	state := ""
	if in.Overloaded {
		state = ", OVERLOADED"
	}
	if in.Draining {
		state += ", draining"
	}
	fmt.Fprintf(w, "ingest: admitted %d, shed %d, throttled %d, rejected %d, conns %d, evicted %d%s\n",
		tot.Admitted, tot.Shed, tot.Throttled, tot.Rejected, tot.Conns, tot.Evicted, state)
	for _, tn := range in.Tenants {
		class := "besteffort"
		if tn.Guaranteed {
			class = "guaranteed"
		}
		fmt.Fprintf(w, "  tenant %s (%s, %s): admitted %d, shed %d, throttled %d, queue %d/%d, bucket %.0f%%\n",
			tn.Name, class, tn.Policy, tn.Admitted, tn.Shed, tn.Throttled, tn.Depth, tn.Cap, tn.Fill*100)
	}
}

// textHeaders and jsonHeaders stamp the response headers every dynamic
// endpoint needs: an explicit Content-Type (the JSON endpoints must not
// rely on sniffing, which yields text/plain) and Cache-Control:
// no-store, because every response is a live snapshot that is stale the
// moment it is written.
func textHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
}

func jsonHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
}

// Handler returns the endpoint's mux: /debugz, /debugz/stats,
// /debugz/trace, /debugz/flows, /debugz/flightrec, /metricz and
// /debug/pprof/*. It is a plain http.Handler so callers can mount it
// on any server.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debugz", func(w http.ResponseWriter, _ *http.Request) {
		textHeaders(w)
		Collect(o).WriteText(w)
	})
	mux.HandleFunc("/debugz/stats", func(w http.ResponseWriter, _ *http.Request) {
		jsonHeaders(w)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Collect(o))
	})
	mux.HandleFunc("/debugz/trace", func(w http.ResponseWriter, _ *http.Request) {
		if o.Tracer == nil {
			http.Error(w, "no tracer configured (run with -trace)", http.StatusNotFound)
			return
		}
		jsonHeaders(w)
		_ = o.Tracer.Export(w)
	})
	mux.HandleFunc("/debugz/tenants", func(w http.ResponseWriter, r *http.Request) {
		if o.Ingest == nil {
			http.Error(w, "no ingest front end configured (run with -ingest-addr)", http.StatusNotFound)
			return
		}
		in := o.Ingest.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			jsonHeaders(w)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(in)
			return
		}
		textHeaders(w)
		writeIngest(w, in)
	})
	mux.HandleFunc("/debugz/flows", func(w http.ResponseWriter, r *http.Request) {
		if o.Obs == nil {
			http.Error(w, "no flow observability configured (run with -obs)", http.StatusNotFound)
			return
		}
		fs := o.Obs.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			jsonHeaders(w)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(fs)
			return
		}
		textHeaders(w)
		fs.WriteText(w)
	})
	mux.HandleFunc("/debugz/flightrec", func(w http.ResponseWriter, r *http.Request) {
		if o.Obs == nil || o.Obs.Recorder() == nil {
			http.Error(w, "no flight recorder armed (run with -obs)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("dump") == "now" {
			o.Obs.Trigger("manual")
		}
		dump, _ := o.Obs.Recorder().LastDump()
		if dump == nil {
			http.Error(w, "no dump recorded yet", http.StatusNotFound)
			return
		}
		jsonHeaders(w)
		_, _ = w.Write(dump)
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, _ *http.Request) {
		if o.Obs == nil {
			http.Error(w, "no flow observability configured (run with -obs)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", obs.ContentType)
		w.Header().Set("Cache-Control", "no-store")
		_ = o.Obs.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves the endpoint in a background goroutine.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(o)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
