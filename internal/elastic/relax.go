package elastic

import "fmt"

// Relaxer decides the free-list relaxation width k: how many candidate
// shards a released port hint may land in (1 = the releaser's own
// shard, the tight ordering; wider = lateral spread into neighbors'
// inboxes). It is the width-relaxation analogue of the thread-level
// Controller: where the Controller trades threads for throughput, the
// Relaxer trades hint-ordering quality for reduced steal contention,
// following the online-adjustable relaxation degree of "How to Relax
// Instantly" (PAPERS.md).
//
// The input signal is the contention rate — free-list contention events
// (steals, steal misses, push/pop failures, spills) per executed tuple,
// computed by the caller from consecutive metrics.Contention snapshots.
// The policy is hysteresis with multiplicative widening and additive
// narrowing: above HighWater the width doubles (contention grows
// superlinearly in thread count, so the response must outrun it), below
// LowWater it steps down by one (ordering quality is recovered
// cautiously), and between the watermarks it holds. The gap between the
// watermarks is what keeps the width from oscillating when the rate
// sits near a threshold.
//
// Like the Controller, the Relaxer is driven from a single goroutine
// (the PE's adaptation loop) and is not safe for concurrent use.
type Relaxer struct {
	cfg RelaxConfig
	k   int
}

// RelaxConfig parameterizes a Relaxer.
type RelaxConfig struct {
	// Max is the widest permitted width (typically the scheduler's
	// MaxThreads). Required, ≥ 1.
	Max int
	// Initial is the starting width; 0 selects 1 (tight).
	Initial int
	// HighWater is the contention rate (events per executed tuple)
	// above which the width doubles; 0 selects 0.08.
	HighWater float64
	// LowWater is the rate below which the width steps down by one;
	// 0 selects 0.02. Must be below HighWater.
	LowWater float64
}

// DefaultRelaxWaters are the hysteresis watermarks used when the config
// leaves them zero: widen above 8 contention events per 100 executed
// tuples, narrow below 2 per 100.
const (
	DefaultRelaxHighWater = 0.08
	DefaultRelaxLowWater  = 0.02
)

// NewRelaxer validates the config and returns a Relaxer at its initial
// width.
func NewRelaxer(cfg RelaxConfig) (*Relaxer, error) {
	if cfg.Max < 1 {
		return nil, fmt.Errorf("elastic: relax Max must be ≥ 1, got %d", cfg.Max)
	}
	if cfg.HighWater == 0 {
		cfg.HighWater = DefaultRelaxHighWater
	}
	if cfg.LowWater == 0 {
		cfg.LowWater = DefaultRelaxLowWater
	}
	if cfg.LowWater < 0 || cfg.HighWater <= cfg.LowWater {
		return nil, fmt.Errorf("elastic: relax watermarks must satisfy 0 ≤ low < high, got %g/%g", cfg.LowWater, cfg.HighWater)
	}
	if cfg.Initial == 0 {
		cfg.Initial = 1
	}
	if cfg.Initial < 1 || cfg.Initial > cfg.Max {
		return nil, fmt.Errorf("elastic: relax Initial %d outside [1, %d]", cfg.Initial, cfg.Max)
	}
	return &Relaxer{cfg: cfg, k: cfg.Initial}, nil
}

// Width returns the current relaxation width.
func (r *Relaxer) Width() int { return r.k }

// Update feeds one adaptation period's contention rate (events per
// executed tuple) and returns the width to apply for the next period.
func (r *Relaxer) Update(rate float64) int {
	switch {
	case rate > r.cfg.HighWater:
		r.k *= 2
		if r.k > r.cfg.Max {
			r.k = r.cfg.Max
		}
	case rate < r.cfg.LowWater:
		if r.k > 1 {
			r.k--
		}
	}
	return r.k
}
