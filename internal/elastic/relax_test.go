package elastic

import "testing"

func TestRelaxerWidensMultiplicatively(t *testing.T) {
	r, err := NewRelaxer(RelaxConfig{Max: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Width() != 1 {
		t.Fatalf("initial width = %d, want 1", r.Width())
	}
	want := []int{2, 4, 8, 16, 16}
	for i, w := range want {
		if got := r.Update(0.5); got != w {
			t.Fatalf("update %d under heavy contention: width = %d, want %d", i, got, w)
		}
	}
}

func TestRelaxerNarrowsAdditively(t *testing.T) {
	r, err := NewRelaxer(RelaxConfig{Max: 8, Initial: 8})
	if err != nil {
		t.Fatal(err)
	}
	for want := 7; want >= 1; want-- {
		if got := r.Update(0.0); got != want {
			t.Fatalf("width = %d, want %d", got, want)
		}
	}
	if got := r.Update(0.0); got != 1 {
		t.Fatalf("width narrowed below 1: %d", got)
	}
}

func TestRelaxerHysteresisHolds(t *testing.T) {
	r, err := NewRelaxer(RelaxConfig{Max: 8, Initial: 4, HighWater: 0.1, LowWater: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Rates inside the band — including exactly at each watermark —
	// must not move the width.
	for _, rate := range []float64{0.02, 0.05, 0.1} {
		if got := r.Update(rate); got != 4 {
			t.Fatalf("rate %g inside band moved width to %d", rate, got)
		}
	}
	if got := r.Update(0.11); got != 8 {
		t.Fatalf("rate above high water: width = %d, want 8", got)
	}
	if got := r.Update(0.01); got != 7 {
		t.Fatalf("rate below low water: width = %d, want 7", got)
	}
}

func TestRelaxerConfigValidation(t *testing.T) {
	bad := []RelaxConfig{
		{},                    // Max missing
		{Max: 4, Initial: 5},  // Initial above Max
		{Max: 4, Initial: -1}, // Initial negative
		{Max: 4, HighWater: 0.02, LowWater: 0.05}, // inverted watermarks
		{Max: 4, LowWater: -0.1},                  // negative low water
	}
	for i, cfg := range bad {
		if _, err := NewRelaxer(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, cfg)
		}
	}
}
