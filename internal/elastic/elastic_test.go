package elastic

import (
	"math"
	"testing"
)

// curve returns a synthetic throughput-vs-level performance curve with
// the three phases the algorithm assumes (§4.2.2): improvement up to
// peak, then degradation at slope down per level.
func curve(peak int, down float64) func(level int) float64 {
	return func(level int) float64 {
		if level <= peak {
			return 100 * float64(level)
		}
		return 100*float64(peak) - down*float64(level-peak)
	}
}

// settle runs the controller against a static curve for the given number
// of periods and returns the visited levels.
func settle(t *testing.T, c *Controller, f func(int) float64, periods int) []int {
	t.Helper()
	levels := make([]int, 0, periods)
	for i := 0; i < periods; i++ {
		l := c.Update(f(c.Level()))
		levels = append(levels, l)
	}
	return levels
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MaxLevel: 0}); err == nil {
		t.Error("MaxLevel 0 accepted")
	}
	if _, err := New(Config{MinLevel: 5, MaxLevel: 3}); err == nil {
		t.Error("MinLevel > MaxLevel accepted")
	}
	if _, err := New(Config{MaxLevel: 3, Sens: 1.5}); err == nil {
		t.Error("Sens 1.5 accepted")
	}
	c, err := New(Config{MaxLevel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Level() != 1 {
		t.Fatalf("initial level = %d, want 1", c.Level())
	}
}

func TestKickOffFromLevelOne(t *testing.T) {
	c, _ := New(Config{MaxLevel: 8})
	// Rule 3: level 1 with nothing trusted above must increase.
	if got := c.Update(100); got != 2 {
		t.Fatalf("first Update moved to %d, want 2", got)
	}
}

func TestConvergesToPeakLinear(t *testing.T) {
	for _, peak := range []int{1, 3, 7, 12} {
		c, _ := New(Config{MaxLevel: 16})
		f := curve(peak, 30)
		levels := settle(t, c, f, 120)
		// Examine the final quarter: every visited level should be within
		// one step of the peak (the algorithm keeps testing neighbors).
		for _, l := range levels[90:] {
			if l < peak-1 || l > peak+1 {
				t.Fatalf("peak %d: settled window contains level %d (trace tail %v)", peak, l, levels[100:])
			}
		}
	}
}

func TestConvergesToPeakGeometric(t *testing.T) {
	c, _ := New(Config{MaxLevel: 176, Geometric: true})
	f := curve(80, 20)
	levels := settle(t, c, f, 200)
	tail := levels[150:]
	for _, l := range tail {
		if l < 40 || l > 130 {
			t.Fatalf("geometric settling wandered to %d (tail %v)", l, tail[:10])
		}
	}
}

func TestGeometricRampIsFast(t *testing.T) {
	c, _ := New(Config{MaxLevel: 176, Geometric: true})
	// Monotone improvement all the way: should reach max in O(log n)
	// periods, matching the product's quick ramp in Fig. 11.
	f := curve(176, 0)
	levels := settle(t, c, f, 20)
	reached := 0
	for i, l := range levels {
		if l == 176 {
			reached = i + 1
			break
		}
	}
	if reached == 0 || reached > 12 {
		t.Fatalf("geometric ramp took %d periods to reach 176 (0 = never): %v", reached, levels)
	}
}

func TestLinearPlateauStops(t *testing.T) {
	// Flat curve: no trend between levels, so after exploring 1→2 the
	// controller should fall back and oscillate only between 1 and 2.
	c, _ := New(Config{MaxLevel: 8})
	f := func(int) float64 { return 500 }
	levels := settle(t, c, f, 50)
	for _, l := range levels[10:] {
		if l > 2 {
			t.Fatalf("flat curve pushed level to %d", l)
		}
	}
}

func TestCPUGateBlocksGrowth(t *testing.T) {
	gate := true
	c, _ := New(Config{MaxLevel: 8, CPUAcceptable: func() bool { return gate }})
	f := curve(8, 0)
	settle(t, c, f, 10)
	if c.Level() < 4 {
		t.Fatalf("level %d did not grow with gate open", c.Level())
	}
	gate = false
	before := c.Level()
	for i := 0; i < 10; i++ {
		c.Update(f(c.Level()))
		if c.Level() > before {
			t.Fatalf("level grew from %d to %d with gate closed", before, c.Level())
		}
		// Decreases remain allowed; track the moving ceiling.
		before = max(before, c.Level())
	}
}

func TestMinLevelFloor(t *testing.T) {
	c, _ := New(Config{MinLevel: 3, MaxLevel: 8})
	if c.Level() != 3 {
		t.Fatalf("initial level = %d, want MinLevel 3", c.Level())
	}
	// Degrading curve: controller must never go below MinLevel.
	f := func(l int) float64 { return 1000 - 50*float64(l) }
	levels := settle(t, c, f, 50)
	for _, l := range levels {
		if l < 3 {
			t.Fatalf("level %d below MinLevel", l)
		}
	}
}

func TestMaxLevelCeiling(t *testing.T) {
	c, _ := New(Config{MaxLevel: 4})
	f := curve(100, 0) // always improving
	levels := settle(t, c, f, 30)
	for _, l := range levels {
		if l > 4 {
			t.Fatalf("level %d above MaxLevel", l)
		}
	}
	if c.Level() != 4 {
		t.Fatalf("did not reach MaxLevel, at %d", c.Level())
	}
}

func TestWorkloadChangeWipesTrust(t *testing.T) {
	c, _ := New(Config{MaxLevel: 16})
	f := curve(4, 50)
	settle(t, c, f, 60)
	if !c.Trusted(4) {
		t.Fatal("peak level not trusted after settling")
	}
	// Workload shift: the peak moves to 10 and the scale changes by far
	// more than Sens. The next Update at the settled level must detect
	// the change and wipe trust.
	g := func(l int) float64 { return 3 * curve(10, 50)(l) }
	c.Update(g(c.Level()))
	trusted := 0
	for l := 1; l <= 16; l++ {
		if c.Trusted(l) {
			trusted++
		}
	}
	if trusted != 1 { // only the just-observed level
		t.Fatalf("%d levels trusted right after workload change, want 1", trusted)
	}
	// And it must re-converge to the new peak.
	levels := settle(t, c, g, 150)
	for _, l := range levels[120:] {
		if l < 9 || l > 11 {
			t.Fatalf("did not re-converge to new peak 10: level %d (tail %v)", l, levels[140:])
		}
	}
}

func TestStableLoadDoesNotWipe(t *testing.T) {
	c, _ := New(Config{MaxLevel: 8})
	f := curve(4, 50)
	settle(t, c, f, 40)
	// 2% jitter stays under the 5% sensitivity: no workload change.
	c.Update(f(c.Level()) * 1.02)
	trusted := 0
	for l := 1; l <= 8; l++ {
		if c.Trusted(l) {
			trusted++
		}
	}
	if trusted < 3 {
		t.Fatalf("jitter below Sens wiped trust (%d trusted)", trusted)
	}
}

func TestActionsDidNotStickHoldsLevel(t *testing.T) {
	c, _ := New(Config{MaxLevel: 8})
	f := curve(8, 0)
	settle(t, c, f, 3)
	level := c.Level()
	c.ActionsDidNotStick()
	if got := c.Update(f(level)); got != level {
		t.Fatalf("deferred Update changed level %d → %d", level, got)
	}
	// Next period proceeds normally.
	if got := c.Update(f(level)); got == level {
		t.Fatalf("Update after deferral did not resume adaptation (stuck at %d)", got)
	}
}

func TestRememberHistoryRescales(t *testing.T) {
	c, _ := New(Config{MaxLevel: 8, RememberHistory: true})
	f := curve(4, 50)
	settle(t, c, f, 40)
	level := c.Level()
	before := c.recs[level].lastThput
	// The workload doubles in weight (half the throughput everywhere):
	// remember-history rescales the curve instead of discarding it, so
	// trusted levels stay trusted with halved values.
	c.Update(f(level) / 2)
	trusted := 0
	for l := 1; l <= 8; l++ {
		if c.Trusted(l) {
			trusted++
		}
	}
	if trusted < 3 {
		t.Fatalf("RememberHistory lost trust (%d levels trusted)", trusted)
	}
	after := c.recs[level].lastThput
	if after > 0.7*before {
		t.Fatalf("record not rescaled: %g -> %g", before, after)
	}
}

// TestRememberHistoryAvoidsNoiseOscillation shows the ablation's value:
// the alternating super-Sens noise that keeps the wipe-mode controller
// moving (TestOscillationUnderNoise) barely moves the remember-history
// controller once settled, because records are rescaled, not discarded.
func TestRememberHistoryAvoidsNoiseOscillation(t *testing.T) {
	c, _ := New(Config{MaxLevel: 32, Geometric: true, RememberHistory: true})
	f := curve(16, 10)
	changes := 0
	prev := c.Level()
	sign := 1.0
	for i := 0; i < 200; i++ {
		noise := 1 + 0.10*sign
		sign = -sign
		l := c.Update(f(c.Level()) * noise)
		if i >= 100 && l != prev {
			changes++
		}
		prev = l
	}
	if changes > 10 {
		t.Fatalf("remember-history controller still oscillates: %d changes in final 100 periods", changes)
	}
}

func TestOscillationUnderNoise(t *testing.T) {
	// The §5.4 pathology: measurement noise above Sens causes repeated
	// trust wipes and level oscillation. Verify the mechanism: with ±10%
	// deterministic alternating noise, the controller keeps moving.
	c, _ := New(Config{MaxLevel: 32, Geometric: true})
	f := curve(16, 10)
	changes := 0
	prev := c.Level()
	sign := 1.0
	for i := 0; i < 200; i++ {
		noise := 1 + 0.10*sign
		sign = -sign
		l := c.Update(f(c.Level()) * noise)
		if l != prev {
			changes++
		}
		prev = l
	}
	if changes < 20 {
		t.Fatalf("expected sustained oscillation under super-Sens noise, saw %d changes", changes)
	}
}

func TestConvergenceIsStable(t *testing.T) {
	// Once settled on a noise-free curve, the stable condition (trend
	// below, trusted above, no trend above) should hold most of the time:
	// the level must not drift far over a long horizon.
	c, _ := New(Config{MaxLevel: 16})
	f := curve(6, 40)
	settle(t, c, f, 60)
	var minL, maxL = math.MaxInt, 0
	for i := 0; i < 100; i++ {
		l := c.Update(f(c.Level()))
		minL, maxL = min(minL, l), max(maxL, l)
	}
	if minL < 5 || maxL > 7 {
		t.Fatalf("settled band [%d, %d] too wide around peak 6", minL, maxL)
	}
}
