// Package elastic implements the paper's elasticity algorithm (§4.2):
// periodically observe PE-wide throughput, maintain a trusted performance
// record per thread level, and move the thread level toward the point
// that maximizes throughput.
//
// The central idea is trust. A ThreadRecord is trusted once we have
// observed throughput at its level since the last workload change;
// detecting a workload change (changeInLoad) wipes all trust, restarting
// exploration. The level-change rules combine trends against the levels
// bracketing the current one:
//
//  1. upward trend from below and nothing trusted above → increase
//  2. the level above was observed to be better → increase
//  3. at level 1 with nothing trusted above → increase (kick-off)
//  4. nothing trusted below → decrease
//  5. no upward trend from below to here → decrease
//  6. otherwise → stay
//
// Increases additionally require the CPU-usage gate to pass and the level
// to remain within [MinLevel, MaxLevel].
package elastic

import "fmt"

// Sens is the default sensitivity threshold: trends and workload changes
// react to relative differences of more than 5%, the product's setting.
const Sens = 0.05

// Rule identifies which of the level-change rules decided the last
// Update — the controller's explanation of itself, surfaced in the
// elasticity decision log and the adaptation trace.
type Rule uint8

const (
	// RuleNone: no Update has run yet.
	RuleNone Rule = iota
	// RuleDeferred: a prior action had not taken effect, so the level
	// held while the runtime caught up (§4.2.3).
	RuleDeferred
	// RuleTrendUp: throughput trended up from the level below and
	// nothing above is trusted — explore upward (rule 1).
	RuleTrendUp
	// RuleBetterAbove: the level above holds a trusted, better record —
	// return to it (rule 2).
	RuleBetterAbove
	// RuleKickoff: at the minimum level with nothing trusted above —
	// initial exploration (rule 3).
	RuleKickoff
	// RuleGateHeld: a rule wanted to increase but the CPU gate or the
	// level ceiling refused.
	RuleGateHeld
	// RuleNoTrustBelow: nothing trusted below — probe downward (rule 4).
	RuleNoTrustBelow
	// RuleNoTrendBelow: no upward trend from the level below to here, so
	// the extra threads are not paying — back off (rule 5).
	RuleNoTrendBelow
	// RuleStay: the current level is the best known point (rule 6).
	RuleStay
)

// String implements fmt.Stringer; the names appear in decision logs.
func (r Rule) String() string {
	switch r {
	case RuleNone:
		return "none"
	case RuleDeferred:
		return "deferred"
	case RuleTrendUp:
		return "trend-up"
	case RuleBetterAbove:
		return "better-above"
	case RuleKickoff:
		return "kickoff"
	case RuleGateHeld:
		return "gate-held"
	case RuleNoTrustBelow:
		return "no-trust-below"
	case RuleNoTrendBelow:
		return "no-trend-below"
	case RuleStay:
		return "stay"
	default:
		return fmt.Sprintf("Rule(%d)", uint8(r))
	}
}

// record is the paper's ThreadRecord.
type record struct {
	lastTime   uint64
	firstThput float64
	lastThput  float64
	trusted    bool
}

// Config parametrizes a Controller.
type Config struct {
	// MinLevel is the smallest level the controller will select; the PE
	// passes 1 + max input ports per operator (deadlock avoidance,
	// §4.2.3). Values below 1 become 1.
	MinLevel int
	// MaxLevel is the largest level; the PE passes the number of logical
	// processors available to it (§4.2.3). Required.
	MaxLevel int
	// Sens is the relative-difference threshold; 0 selects Sens (5%).
	Sens float64
	// CPUAcceptable gates increases on total system usage; nil means
	// always acceptable.
	CPUAcceptable func() bool
	// Geometric selects geometric bracket growth: while exploring
	// unknown territory the step above the current level doubles,
	// ramping to high levels in O(log n) periods as the product's quick
	// ramp-up in Fig. 11 does. When false the bracket is always ±1.
	Geometric bool
	// RememberHistory keeps performance records on workload change
	// instead of wiping them (the paper's §5.4 future-work alternative:
	// "A better alternative is designing a mechanism for remembering
	// some history"). Records decay to untrusted only when contradicted.
	RememberHistory bool
}

// Controller runs the elasticity algorithm. It is not safe for
// concurrent use; the PE calls Update from a single adaptation loop.
type Controller struct {
	cfg  Config
	recs []record
	time uint64

	level      int
	levelBelow int
	levelAbove int

	// deferred is set when an intended suspension did not take effect
	// during the last period; the controller holds the level until
	// actions stick (§4.2.3).
	deferred bool
	// lastRule records which rule decided the most recent Update.
	lastRule Rule
}

// New returns a controller starting at the minimum level.
func New(cfg Config) (*Controller, error) {
	if cfg.MaxLevel < 1 {
		return nil, fmt.Errorf("elastic: MaxLevel %d must be at least 1", cfg.MaxLevel)
	}
	if cfg.MinLevel < 1 {
		cfg.MinLevel = 1
	}
	if cfg.MinLevel > cfg.MaxLevel {
		return nil, fmt.Errorf("elastic: MinLevel %d exceeds MaxLevel %d", cfg.MinLevel, cfg.MaxLevel)
	}
	if cfg.Sens == 0 {
		cfg.Sens = Sens
	}
	if cfg.Sens < 0 || cfg.Sens >= 1 {
		return nil, fmt.Errorf("elastic: Sens %g outside [0, 1)", cfg.Sens)
	}
	c := &Controller{
		cfg:        cfg,
		recs:       make([]record, cfg.MaxLevel+1), // recs[0] unused
		level:      cfg.MinLevel,
		levelBelow: cfg.MinLevel - 1,
	}
	c.levelAbove = c.bracketAbove(cfg.MinLevel, 1)
	return c, nil
}

// Level returns the current thread level.
func (c *Controller) Level() int { return c.level }

// Trusted reports whether the record for level l is currently trusted
// (diagnostics and tests).
func (c *Controller) Trusted(l int) bool {
	return l >= 1 && l < len(c.recs) && c.recs[l].trusted
}

// LastRule identifies which level-change rule decided the most recent
// Update (RuleNone before the first).
func (c *Controller) LastRule() Rule { return c.lastRule }

// ActionsDidNotStick tells the controller that a thread-level action from
// the previous period did not take effect (for example, a thread marked
// for suspension was stuck in operator code). The controller makes no
// level change on the next Update.
func (c *Controller) ActionsDidNotStick() { c.deferred = true }

// bracketAbove computes the next level above l given the previous gap.
func (c *Controller) bracketAbove(l, gap int) int {
	if c.cfg.Geometric {
		if gap < 1 {
			gap = 1
		}
		a := l + 2*gap
		if a > c.cfg.MaxLevel {
			a = c.cfg.MaxLevel
		}
		if a <= l { // already at max
			a = l
		}
		return a
	}
	if l+1 > c.cfg.MaxLevel {
		return l
	}
	return l + 1
}

// Update is the paper's updateThreadLevel (Figure 8): record the latest
// PE-wide throughput observation and return the thread level to use for
// the next period.
func (c *Controller) Update(thput float64) int {
	if c.deferred {
		// Hold everything until the runtime confirms prior actions
		// happened; still refresh the current level's record.
		c.deferred = false
		c.lastRule = RuleDeferred
		c.observe(thput)
		return c.level
	}
	if c.changeInLoad(thput) {
		if c.cfg.RememberHistory && c.recs[c.level].lastThput > 0 {
			// Remember-history mode: instead of discarding everything,
			// rescale every trusted record by the observed change at the
			// current level. The performance curve's *shape* usually
			// survives a load change even when its magnitude does not,
			// so trends stay comparable and the controller neither
			// re-explores from scratch nor oscillates on noisy
			// measurements (§5.4's proposed fix).
			ratio := thput / c.recs[c.level].lastThput
			for i := range c.recs {
				if c.recs[i].trusted {
					c.recs[i].lastThput *= ratio
					c.recs[i].firstThput *= ratio
				}
			}
		} else {
			for i := range c.recs {
				c.recs[i] = record{}
			}
		}
	}
	c.observe(thput)

	var why Rule
	switch {
	case c.trendBelow(thput) && !c.trustAbove():
		why = RuleTrendUp
	case c.trendAbove(thput):
		why = RuleBetterAbove
	case c.level == c.cfg.MinLevel && !c.trustAbove():
		why = RuleKickoff
	}
	increase := why != RuleNone
	switch {
	case increase && c.cpuOK() && c.level < c.cfg.MaxLevel:
		c.lastRule = why
		c.increaseLevel()
	case increase:
		// Wanted to grow but the gate or the ceiling stops us: hold.
		c.lastRule = RuleGateHeld
	case c.level > c.cfg.MinLevel && !c.trustBelow():
		c.lastRule = RuleNoTrustBelow
		c.decreaseLevel()
	case c.level > c.cfg.MinLevel && !c.trendBelow(thput):
		c.lastRule = RuleNoTrendBelow
		c.decreaseLevel()
	default:
		// At the floor the decrease rules degenerate into holding
		// position (decreaseLevel would refuse anyway): stay.
		c.lastRule = RuleStay
	}
	return c.level
}

// observe records thput for the current level.
func (c *Controller) observe(thput float64) {
	r := &c.recs[c.level]
	c.time++
	r.lastTime = c.time
	r.lastThput = thput
	if !r.trusted {
		r.firstThput = thput
	}
	r.trusted = true
}

// changeInLoad decides whether the newest observation at the current
// level differs enough from the last trusted one to mean the workload
// changed (the paper cites Gedik et al.'s Algorithm 3). A difference of
// more than Sens relative to the recorded throughput counts as a change.
func (c *Controller) changeInLoad(thput float64) bool {
	r := c.recs[c.level]
	if !r.trusted {
		return false
	}
	diff := thput - r.lastThput
	if diff < 0 {
		diff = -diff
	}
	return diff > c.cfg.Sens*r.lastThput
}

// trendBelow reports whether moving from the level below to the current
// level improved throughput by more than Sens.
func (c *Controller) trendBelow(thput float64) bool {
	if c.level == c.cfg.MinLevel {
		return false
	}
	r := c.recs[c.levelBelow]
	if !r.trusted {
		return false
	}
	return thput > r.lastThput && thput-r.lastThput > c.cfg.Sens*r.lastThput
}

// trendAbove reports whether the recorded throughput at the level above
// beats the current observation by more than Sens.
func (c *Controller) trendAbove(thput float64) bool {
	if c.levelAbove <= c.level || c.levelAbove >= len(c.recs) {
		return false
	}
	r := c.recs[c.levelAbove]
	if !r.trusted {
		return false
	}
	return r.lastThput > thput && r.lastThput-thput > c.cfg.Sens*thput
}

// trustBelow reports whether the level below has a trusted record.
func (c *Controller) trustBelow() bool {
	if c.level == c.cfg.MinLevel {
		return false
	}
	return c.recs[c.levelBelow].trusted
}

// trustAbove reports whether the level above has a trusted record.
func (c *Controller) trustAbove() bool {
	if c.level >= c.cfg.MaxLevel || c.levelAbove <= c.level {
		return false
	}
	return c.recs[c.levelAbove].trusted
}

// cpuOK consults the CPU-usage gate.
func (c *Controller) cpuOK() bool {
	return c.cfg.CPUAcceptable == nil || c.cfg.CPUAcceptable()
}

// increaseLevel moves the bracket up: the current level becomes the level
// below, the level above becomes current, and a new level above is chosen
// (doubling the gap under geometric growth). The bracket invariant
// levelBelow < level (and levelAbove > level except at MaxLevel) is
// restored if prior clamping degenerated it.
func (c *Controller) increaseLevel() {
	if c.levelAbove <= c.level {
		c.levelAbove = c.level + 1
		if c.levelAbove > c.cfg.MaxLevel {
			return // already at the ceiling
		}
	}
	gap := c.levelAbove - c.level
	c.levelBelow = c.level
	c.level = c.levelAbove
	c.levelAbove = c.bracketAbove(c.level, gap)
}

// decreaseLevel moves the bracket down: the current level becomes the
// level above and the level below becomes current. Under geometric
// growth the gap below shrinks by half (never below one), bisecting
// toward fine-grained settling.
func (c *Controller) decreaseLevel() {
	if c.level <= c.cfg.MinLevel {
		return
	}
	gap := c.level - c.levelBelow
	c.levelAbove = c.level
	if c.levelBelow >= c.level { // degenerate bracket; step down by one
		c.levelBelow = c.level - 1
	}
	c.level = c.levelBelow
	if c.cfg.Geometric {
		gap /= 2
	} else {
		gap = 1
	}
	if gap < 1 {
		gap = 1
	}
	c.levelBelow = c.level - gap
	if c.level == c.cfg.MinLevel {
		c.levelBelow = c.cfg.MinLevel - 1 // sentinel: nothing below
	} else if c.levelBelow < c.cfg.MinLevel {
		c.levelBelow = c.cfg.MinLevel
	}
}
