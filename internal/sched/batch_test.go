package sched

import (
	"sync"
	"testing"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// TestScratchCapacityBounded is the regression test for the LIFO walk's
// scratch buffer: a walk over a large, idle port set must not leave a
// backing array proportional to the port count aliased into the thread.
func TestScratchCapacityBounded(t *testing.T) {
	const width = 3 * maxScratchCap
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 1}, 0, 1)
	for i := 0; i < width; i++ {
		sn := b.AddNode(&ops.Sink{}, 1, 0)
		b.Connect(src, 0, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxThreads: 1, FreeListLIFO: true})
	defer s.Shutdown()
	thr := s.threads[0]
	// All queues are empty, so the walk inspects every port and grows
	// scratch to the full port count before restoring the stack.
	var tp tuple.Tuple
	if s.findWorkNonBlocking(&tp, thr) {
		t.Fatal("found work on an idle graph")
	}
	if got := cap(thr.scratch); got > maxScratchCap {
		t.Fatalf("scratch capacity %d retained after long walk, want <= %d", got, maxScratchCap)
	}
	if len(thr.scratch) != 0 {
		t.Fatalf("scratch length %d after walk, want 0", len(thr.scratch))
	}
	// The walk must have restored every port: a second walk sees the
	// same full (idle) port set, not a starved list.
	if s.findWorkNonBlocking(&tp, thr) {
		t.Fatal("second walk found work on an idle graph")
	}
	if got := cap(thr.scratch); got > maxScratchCap {
		t.Fatalf("scratch capacity %d after second walk, want <= %d", got, maxScratchCap)
	}
}

// expander re-submits every input tuple k times to one output port —
// consecutive same-port submissions, the shape the submit-side coalescing
// buffer batches into a single PushN.
type expander struct {
	ops.Custom
	k int
}

func newExpander(name string, k int) *expander {
	e := &expander{k: k}
	e.OpName = name
	e.Fn = func(out graph.Submitter, tp tuple.Tuple, _ int) {
		for i := 0; i < e.k; i++ {
			out.Submit(tp, 0)
		}
	}
	return e
}

// TestPerStreamSeqOrderBatchedFanIn verifies the paper's per-stream
// global-ordering requirement against all three batching layers at once:
// the batched drain (schedule/reSchedule PopN), the submit-side
// coalescing (each expander invocation submits 3 consecutive tuples to
// the same port), and the partial-PushN back-pressure fallback (the
// fan-in sink port has a capacity-4 queue, so coalesced flushes routinely
// half-succeed and spill into reSchedule). Each expander's output stream
// carries stamped Seq numbers; the sink must observe every stream's Seq
// strictly increasing.
func TestPerStreamSeqOrderBatchedFanIn(t *testing.T) {
	const n = 4000
	const k = 3
	b := graph.NewBuilder()
	mkSrc := func(tag uint64) int {
		return b.AddNode(&ops.Generator{Limit: n, Payload: func(i uint64) tuple.Tuple {
			return tuple.NewData(tag, i)
		}}, 0, 1)
	}
	s0, s1 := mkSrc(0), mkSrc(1)
	e0 := b.AddNode(newExpander("expand0", k), 1, 1)
	e1 := b.AddNode(newExpander("expand1", k), 1, 1)
	b.Connect(s0, 0, e0, 0)
	b.Connect(s1, 0, e1, 0)

	var mu sync.Mutex
	lastSeq := map[uint64]int64{0: -1, 1: -1}
	lastVal := map[uint64]int64{0: -1, 1: -1}
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		mu.Lock()
		defer mu.Unlock()
		tag := tp.Words[0]
		if seq := int64(tp.Seq); seq <= lastSeq[tag] {
			t.Errorf("stream %d: seq %d arrived after %d", tag, seq, lastSeq[tag])
		} else {
			lastSeq[tag] = seq
		}
		// The expander emits each source value k times; per stream the
		// values must arrive in non-decreasing source order.
		if v := int64(tp.Words[1]); v < lastVal[tag] {
			t.Errorf("stream %d: value %d arrived after %d", tag, v, lastVal[tag])
		} else {
			lastVal[tag] = v
		}
	}}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(e0, 0, sn, 0)
	b.Connect(e1, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runGraph(t, g, Config{MaxThreads: 4, QueueCap: 4}, 3)
	if got, want := snk.Count(), uint64(2*n*k); got != want {
		t.Fatalf("sink saw %d tuples, want %d", got, want)
	}
	// 2n expander executions + 2nk sink executions.
	if got, want := s.Executed(), uint64(2*n+2*n*k); got != want {
		t.Fatalf("Executed = %d, want %d", got, want)
	}
	if s.Reschedules() == 0 {
		t.Fatal("capacity-4 fan-in queue never triggered the partial-push reSchedule path")
	}
}

// TestCoalescingFanOutConservation checks the coalescing buffer against
// its hardest shape: an operator whose submissions alternate destination
// ports every call (fan-out to two subscribers), forcing a flush per
// buffered tuple, combined with multi-copy submissions that re-fill the
// buffer. Nothing may be lost, duplicated, or reordered per stream.
func TestCoalescingFanOutConservation(t *testing.T) {
	const n = 5000
	const k = 2
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	ex := b.AddNode(newExpander("expand", k), 1, 1)
	b.Connect(src, 0, ex, 0)
	var sinks [2]*ops.Sink
	var mus [2]sync.Mutex
	var seen [2][]uint64
	for i := range sinks {
		i := i
		sinks[i] = &ops.Sink{OnTuple: func(tp tuple.Tuple) {
			mus[i].Lock()
			seen[i] = append(seen[i], tp.Words[0])
			mus[i].Unlock()
		}}
		sn := b.AddNode(sinks[i], 1, 0)
		b.Connect(ex, 0, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runGraph(t, g, Config{MaxThreads: 4, QueueCap: 8}, 2)
	for i := range sinks {
		if got, want := sinks[i].Count(), uint64(n*k); got != want {
			t.Fatalf("sink %d saw %d tuples, want %d", i, got, want)
		}
		for j, v := range seen[i] {
			if v != uint64(j/k) {
				t.Fatalf("sink %d position %d: tuple %d out of order (want %d)", i, j, v, j/k)
			}
		}
	}
}

// TestBatchDrainTinyQueueCap exercises the degenerate batch size:
// QueueCap 1 makes every batch a single tuple and every coalesced flush a
// PushN(1) into a single-slot queue.
func TestBatchDrainTinyQueueCap(t *testing.T) {
	const n = 2000
	var mu sync.Mutex
	var seen []uint64
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		mu.Lock()
		seen = append(seen, tp.Words[0])
		mu.Unlock()
	}}
	g := pipelineGraph(t, 8, n, snk)
	runGraph(t, g, Config{MaxThreads: 4, QueueCap: 1}, 2)
	if len(seen) != n {
		t.Fatalf("saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
}
