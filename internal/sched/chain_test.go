package sched

import (
	"fmt"
	"sync"
	"testing"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// TestChainFiresOnPipeline proves the inline chain path actually runs on
// the topology it was built for: a straight pipeline, where every
// interior port is chainable. The meters must show chain sequences,
// links and bypassed tuples, and every stop reason must stay consistent
// with the budgets (links per start never exceeds ChainDepth — that is
// what DepthStops exists to enforce).
func TestChainFiresOnPipeline(t *testing.T) {
	const n = 20000
	snk := &ops.Sink{}
	g := pipelineGraph(t, 20, n, snk)
	s := runGraph(t, g, Config{MaxThreads: 4}, 2)
	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d tuples, want %d", got, n)
	}
	ch := s.Chains()
	if ch.Starts == 0 || ch.Links == 0 || ch.Tuples == 0 {
		t.Fatalf("chain never fired on a 20-deep pipeline: %+v", ch)
	}
	if ch.Links < ch.Starts {
		t.Errorf("links %d < starts %d: every start is itself a link", ch.Links, ch.Starts)
	}
	if ch.Tuples < ch.Links {
		t.Errorf("tuples %d < links %d: every link moves at least one tuple", ch.Tuples, ch.Links)
	}
	if got := s.Stats().Chain; got != ch {
		// Chains() and Stats() read the same sharded meters; after the
		// run drained they must agree exactly.
		t.Errorf("Stats().Chain = %+v, want %+v", got, ch)
	}
}

// TestChainDisabledMetersZero: under DisableChain (and the equivalent
// negative ChainDepth) the chain path must be fully off — correct
// delivery, correct order, and not a single chain meter moved.
func TestChainDisabledMetersZero(t *testing.T) {
	const n = 10000
	for name, cfg := range map[string]Config{
		"disable-chain":  {MaxThreads: 4, DisableChain: true},
		"negative-depth": {MaxThreads: 4, ChainDepth: -1},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			var seen []uint64
			snk := newOrderSink(&mu, &seen)
			g := pipelineGraph(t, 15, n, snk)
			s := runGraph(t, g, cfg, 2)
			if len(seen) != n {
				t.Fatalf("saw %d tuples, want %d", len(seen), n)
			}
			for i, v := range seen {
				if v != uint64(i) {
					t.Fatalf("position %d: tuple %d out of order", i, v)
				}
			}
			if ch := s.Chains(); ch != (metrics.ChainSnapshot{}) {
				t.Fatalf("chain meters moved with chaining disabled: %+v", ch)
			}
		})
	}
}

// TestChainPipelineFIFOProperty sweeps chain depths and queue capacities
// over a deep pipeline and requires strict global order at the sink: on
// a single-stream pipeline, per-stream FIFO is total order, so any
// chain link that overtook a queued tuple would show up as an
// inversion. Small queue capacities force the mixed regime where some
// flushes chain and others fall back through PushN/reSchedule.
func TestChainPipelineFIFOProperty(t *testing.T) {
	const n = 15000
	for _, depth := range []int{1, 3, 8} {
		for _, qcap := range []int{4, 16} {
			t.Run(fmt.Sprintf("chaindepth=%d/qcap=%d", depth, qcap), func(t *testing.T) {
				var mu sync.Mutex
				var seen []uint64
				snk := newOrderSink(&mu, &seen)
				g := pipelineGraph(t, 30, n, snk)
				s := runGraph(t, g, Config{MaxThreads: 4, QueueCap: qcap, ChainDepth: depth}, 3)
				if len(seen) != n {
					t.Fatalf("saw %d tuples, want %d", len(seen), n)
				}
				for i, v := range seen {
					if v != uint64(i) {
						t.Fatalf("position %d: tuple %d out of order", i, v)
					}
				}
				if ch := s.Chains(); ch.Links == 0 {
					t.Errorf("chain never fired at depth budget %d", depth)
				}
			})
		}
	}
}

// punctCounter forwards data tuples and records, at every window mark,
// how many data tuples it has seen so far. Its input port is single-
// input, so the scheduler serializes Process and OnPunct under the
// port's consumer lock and the recorded counts need no cross-call
// ordering caveats.
type punctCounter struct {
	name string
	mu   sync.Mutex
	data uint64
	at   []uint64 // data count observed at each window mark, in order
}

func (p *punctCounter) Name() string { return p.name }

func (p *punctCounter) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	p.mu.Lock()
	p.data++
	p.mu.Unlock()
	out.Submit(t, 0)
}

func (p *punctCounter) OnPunct(_ graph.Submitter, k tuple.Kind, _ int) {
	if k != tuple.WindowMark {
		return
	}
	p.mu.Lock()
	p.at = append(p.at, p.data)
	p.mu.Unlock()
}

// markedSource emits `windows` rounds of `per` data tuples followed by
// one window mark.
type markedSource struct {
	windows, per int
}

func (m *markedSource) Name() string                              { return "markedSrc" }
func (m *markedSource) Process(graph.Submitter, tuple.Tuple, int) {}
func (m *markedSource) Run(out graph.Submitter, stop <-chan struct{}) {
	w := uint64(0)
	for i := 0; i < m.windows; i++ {
		for j := 0; j < m.per; j++ {
			out.Submit(tuple.NewData(w), 0)
			w++
		}
		out.Submit(tuple.Window(), 0)
	}
}

// TestChainPunctuationOrdering: window marks must stay in position
// relative to the data tuples around them while chaining is active. Two
// observers — one mid-pipeline (reached through chained links) and one
// just before the sink — must each see exactly per×k data tuples ahead
// of the k-th mark.
func TestChainPunctuationOrdering(t *testing.T) {
	const windows, per = 400, 7
	b := graph.NewBuilder()
	src := b.AddNode(&markedSource{windows: windows, per: per}, 0, 1)
	prev := src
	mid := &punctCounter{name: "Mid"}
	late := &punctCounter{name: "Late"}
	for i := 0; i < 8; i++ {
		var n int
		switch i {
		case 3:
			n = b.AddNode(mid, 1, 1)
		case 7:
			n = b.AddNode(late, 1, 1)
		default:
			n = b.AddNode(&ops.Worker{}, 1, 1)
		}
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(prev, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runGraph(t, g, Config{MaxThreads: 4, QueueCap: 8}, 2)
	if got := snk.Count(); got != windows*per {
		t.Fatalf("sink saw %d tuples, want %d", got, windows*per)
	}
	if ch := s.Chains(); ch.Links == 0 {
		t.Error("chain never fired; the punctuation property was not exercised")
	}
	for _, obs := range []*punctCounter{mid, late} {
		obs.mu.Lock()
		at := obs.at
		obs.mu.Unlock()
		if len(at) != windows {
			t.Fatalf("%s observed %d window marks, want %d", obs.name, len(at), windows)
		}
		for k, got := range at {
			if want := uint64((k + 1) * per); got != want {
				t.Fatalf("%s: mark %d arrived after %d data tuples, want %d (mark out of position)",
					obs.name, k, got, want)
			}
		}
	}
}

// mixedGraph builds the fan-out/fan-in topology the chaos sweeps use:
// src → round-robin split → width parallel pipelines of the given depth
// → one shared sink (width producers on its port).
func mixedGraph(t *testing.T, width, depth int, limit uint64, snk *ops.Sink) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: limit}, 0, 1)
	split := b.AddNode(&ops.RoundRobinSplit{Width: width}, 1, width)
	b.Connect(src, 0, split, 0)
	sn := b.AddNode(snk, 1, 0)
	for w := 0; w < width; w++ {
		prev, prevPort := split, w
		for d := 0; d < depth; d++ {
			n := b.AddNode(&ops.Worker{}, 1, 1)
			b.Connect(prev, prevPort, n, 0)
			prev, prevPort = n, 0
		}
		b.Connect(prev, prevPort, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestChainMixedTopologyFIFO: on the fan-out/fan-in topology, global
// order across branches is unspecified but per-stream FIFO must hold —
// the round-robin split sends tuple i down branch i%width, so the
// sink-side subsequence of each residue class must arrive in increasing
// order even while branch interiors execute through chained links.
func TestChainMixedTopologyFIFO(t *testing.T) {
	const n, width = 20000, 4
	var mu sync.Mutex
	var seen []uint64
	snk := newOrderSink(&mu, &seen)
	g := mixedGraph(t, width, 5, n, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, QueueCap: 8}, 3)
	if len(seen) != n {
		t.Fatalf("saw %d tuples, want %d", len(seen), n)
	}
	last := make(map[uint64]uint64, width)
	for i, v := range seen {
		branch := v % width
		if prev, ok := last[branch]; ok && v <= prev {
			t.Fatalf("position %d: branch %d tuple %d arrived after %d (per-stream FIFO broken)",
				i, branch, v, prev)
		}
		last[branch] = v
	}
	if ch := s.Chains(); ch.Links == 0 {
		t.Error("chain never fired on the mixed topology's pipeline interiors")
	}
}

// TestChainChaosConservation runs the pipeline and mixed topologies with
// seeded chaos panics while chaining is active: every generated tuple
// must be delivered or dead-lettered, never lost or duplicated, across
// several injector seeds.
func TestChainChaosConservation(t *testing.T) {
	const n = 12000
	for _, seed := range []uint64{7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("pipeline/seed=%d", seed), func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: seed, PanicRate: 0.005})
			snk := &ops.Sink{}
			g := pipelineGraph(t, 10, n, snk)
			s := runGraph(t, g, Config{MaxThreads: 4, Fault: inj, QuarantineAfter: 1 << 30}, 2)
			fs := s.Faults()
			if fs.OpPanics == 0 {
				t.Fatal("injector never fired")
			}
			if got := snk.Count() + fs.DeadLetters; got != n {
				t.Errorf("delivered %d + dead-lettered %d = %d, want %d",
					snk.Count(), fs.DeadLetters, got, n)
			}
		})
		t.Run(fmt.Sprintf("mixed/seed=%d", seed), func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: seed, PanicRate: 0.005})
			snk := &ops.Sink{}
			g := mixedGraph(t, 4, 5, n, snk)
			s := runGraph(t, g, Config{MaxThreads: 4, Fault: inj, QuarantineAfter: 1 << 30}, 3)
			fs := s.Faults()
			if fs.OpPanics == 0 {
				t.Fatal("injector never fired")
			}
			if got := snk.Count() + fs.DeadLetters; got != n {
				t.Errorf("delivered %d + dead-lettered %d = %d, want %d",
					snk.Count(), fs.DeadLetters, got, n)
			}
		})
	}
}

// TestQuarantineMidChain: an operator that panics on every tuple sits in
// the middle of a pipeline whose links are being executed inline. Every
// panic therefore fires inside a chained frame, and containment must
// behave exactly as on the queue path: the offending tuple is
// dead-lettered, the operator is quarantined at the strike budget, the
// upstream frame is not unwound (the upstream operator still executes
// every tuple), and final punctuation still drains the PE.
func TestQuarantineMidChain(t *testing.T) {
	const n = 8000
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	up := b.AddNode(&ops.Custom{OpName: "Up", Fn: func(out graph.Submitter, tp tuple.Tuple, _ int) {
		out.Submit(tp, 0)
	}}, 1, 1)
	bad := b.AddNode(&panicky{name: "Bad", panicOn: func(uint64) bool { return true }}, 1, 1)
	down := b.AddNode(&ops.Worker{}, 1, 1)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(src, 0, up, 0)
	b.Connect(up, 0, bad, 0)
	b.Connect(bad, 0, down, 0)
	b.Connect(down, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runGraph(t, g, Config{MaxThreads: 4, QuarantineAfter: 3}, 2)

	if ch := s.Chains(); ch.Links == 0 {
		t.Error("chain never fired; the panics did not land inside chained frames")
	}
	fs := s.Faults()
	if fs.OpPanics != 3 {
		t.Errorf("OpPanics = %d, want 3 (quarantined at the strike budget)", fs.OpPanics)
	}
	if fs.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", fs.Quarantines)
	}
	if !s.Quarantined(bad) {
		t.Error("Bad not quarantined")
	}
	if fs.DeadLetters != n {
		t.Errorf("DeadLetters = %d, want %d (every tuple dies at Bad)", fs.DeadLetters, n)
	}
	// The upstream span survived every mid-chain panic: Up executed all
	// n tuples and nothing leaked past Bad.
	counts := s.OperatorCounts()
	if counts["Up"] != n {
		t.Errorf("upstream executed %d tuples, want %d (upstream span corrupted)", counts["Up"], n)
	}
	if counts["Worker"] != 0 || snk.Count() != 0 {
		t.Errorf("downstream saw %d/%d tuples, want 0/0", counts["Worker"], snk.Count())
	}
	if got, want := s.Executed(), uint64(n); got != want {
		t.Errorf("Executed = %d, want %d (only Up completes)", got, want)
	}
}
