package sched

import (
	"sync"
	"testing"
)

// TestAblationsPreserveCorrectness runs the same pipeline under every
// ablation configuration: reversing a design decision may cost
// performance but must never lose tuples or break stream order.
func TestAblationsPreserveCorrectness(t *testing.T) {
	const n = 8000
	cases := map[string]Config{
		"retry-on-contention": {MaxThreads: 4, QueueCap: 8, RetryOnContention: true},
		"block-on-full-queue": {MaxThreads: 4, QueueCap: 4, BlockOnFullQueue: true},
		"shared-stop-flags":   {MaxThreads: 4, QueueCap: 8, SharedStopFlags: true},
		"free-list-lifo":      {MaxThreads: 4, QueueCap: 8, FreeListLIFO: true},
		"global-free-list":    {MaxThreads: 4, QueueCap: 8, GlobalFreeList: true},
		"tiny-shards":         {MaxThreads: 4, QueueCap: 8, ShardCap: 2},
		"no-chain":            {MaxThreads: 4, QueueCap: 8, DisableChain: true},
		"chain-depth-1":       {MaxThreads: 4, QueueCap: 8, ChainDepth: 1},
		"relax-k2":            {MaxThreads: 4, QueueCap: 8, RelaxWidth: 2},
		"relax-kmax":          {MaxThreads: 4, QueueCap: 8, RelaxWidth: 4},
		"fair-claim":          {MaxThreads: 4, QueueCap: 8, FairClaim: true},
		"flat-topo":           {MaxThreads: 4, QueueCap: 8, FlatTopo: true},
		"relax-fair-flat": {
			MaxThreads: 4, QueueCap: 8,
			RelaxWidth: 4, FairClaim: true, FlatTopo: true,
		},
		"all-reversed": {
			MaxThreads: 4, QueueCap: 8,
			RetryOnContention: true, BlockOnFullQueue: true,
			SharedStopFlags: true, FreeListLIFO: true, GlobalFreeList: true,
			DisableChain: true,
		},
	}
	for name, cfg := range cases {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			var seen []uint64
			snk := newOrderSink(&mu, &seen)
			g := pipelineGraph(t, 25, n, snk)
			runGraph(t, g, cfg, 3)
			if len(seen) != n {
				t.Fatalf("saw %d tuples, want %d", len(seen), n)
			}
			for i, v := range seen {
				if v != uint64(i) {
					t.Fatalf("position %d: tuple %d out of order", i, v)
				}
			}
		})
	}
}
