package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
)

// TestShardedResizeNoStrandedPorts churns the thread level across its
// whole range while a wide data-parallel graph runs, with shards small
// enough to force spills, and asserts that every tuple is delivered:
// a port hint stranded in a suspended thread's shard would stall the
// drain and fail the runGraph timeout, and a lost or duplicated hint
// shows up as a wrong sink count. Run under -race this doubles as the
// concurrency check on the drain-vs-steal protocol.
func TestShardedResizeNoStrandedPorts(t *testing.T) {
	const (
		n     = 30000
		width = 24
	)
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	split := b.AddNode(&ops.RoundRobinSplit{Width: width}, 1, width)
	b.Connect(src, 0, split, 0)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	for w := 0; w < width; w++ {
		wk := b.AddNode(&ops.Worker{}, 1, 1)
		b.Connect(split, w, wk, 0)
		b.Connect(wk, 0, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// ShardCap 4 on a 26-port graph guarantees local caches overflow and
	// the spill path runs; MaxThreads 6 gives the resize walk room.
	s := New(g, Config{MaxThreads: 6, QueueCap: 16, ShardCap: 4})
	s.Start(2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, node := range g.SourceNodes {
		wg.Add(1)
		go func(i int, node *graph.Node) {
			defer wg.Done()
			node.Op.(graph.Source).Run(s.SourceSubmitter(node, i), stop)
			s.SourceDone(node, i)
		}(i, node)
	}

	// Churn the level for the whole run: every resize suspends threads
	// whose shards may hold hints, so each one exercises the
	// drain-on-park protocol.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-s.Done():
				return
			default:
			}
			s.SetLevel(1 + rng.Intn(s.MaxLevel()))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	donech := make(chan struct{})
	go func() { s.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(60 * time.Second):
		t.Fatal("scheduler did not drain within 60s: port hint stranded by a resize")
	}
	<-churnDone
	close(stop)
	wg.Wait()

	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d tuples, want %d", got, n)
	}
	// src out + width split outs + width worker outs into the sink = the
	// executions per generated tuple: split + worker + sink each run once
	// per tuple.
	if got, want := s.Executed(), uint64(n*3); got != want {
		t.Fatalf("Executed = %d, want %d", got, want)
	}
	cont := s.Contention()
	if cont.Spill == 0 {
		t.Errorf("ShardCap 4 on %d ports produced no spills; spill path untested", len(g.Ports))
	}
	t.Logf("contention after churn: %+v", cont)
}

// TestShardedDrainOnShutdown checks the schedule-exit drain directly:
// after a run completes, no shard retains a hint for an open port (all
// ports are closed by then, but the drain must also have run — a shard
// retaining anything would mean the defer was skipped).
func TestShardedDrainOnShutdown(t *testing.T) {
	const n = 5000
	snk := &ops.Sink{}
	g := pipelineGraph(t, 8, n, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, ShardCap: 8}, 3)
	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d tuples, want %d", got, n)
	}
	for i, d := range s.shards {
		if l := d.Len(); l != 0 {
			t.Errorf("shard %d still holds %d hints after shutdown", i, l)
		}
	}
	// Inboxes may retain residue: a lateral push from a thread still on
	// its way out can land after the owner's bounded drain. That residue
	// is benign only if every retained hint names a closed port — all
	// ports are closed once the run completes.
	for i, ib := range s.inboxes {
		var port int32
		for ib.Pop(&port) {
			if !s.portClosed[port].Load() {
				t.Errorf("inbox %d retained hint for open port %d after shutdown", i, port)
			}
		}
	}
}

// TestRelaxShrinkNoStrandedPorts is the k-relaxation analogue of the
// resize test above: while a wide graph runs with lateral pushes
// active, the relaxation width churns across its whole range —
// including repeated shrinks to 1 while steals and lateral pushes are
// in flight — and the thread level churns at the same time. A hint
// reachable only through a width that no longer exists would stall the
// drain (timeout) or lose tuples (wrong sink count); neither may
// happen, because owners drain their own inbox every find, thieves pop
// victims' inboxes, and the periodic sweep covers parked threads'
// inboxes regardless of the current width.
func TestRelaxShrinkNoStrandedPorts(t *testing.T) {
	const (
		n     = 30000
		width = 24
	)
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	split := b.AddNode(&ops.RoundRobinSplit{Width: width}, 1, width)
	b.Connect(src, 0, split, 0)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	for w := 0; w < width; w++ {
		wk := b.AddNode(&ops.Worker{}, 1, 1)
		b.Connect(split, w, wk, 0)
		b.Connect(wk, 0, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Start wide so lateral pushes flow from the first release; FlatTopo
	// keeps the victim order host-independent.
	s := New(g, Config{MaxThreads: 6, QueueCap: 16, ShardCap: 4, RelaxWidth: 6, FlatTopo: true})
	s.Start(4)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, node := range g.SourceNodes {
		wg.Add(1)
		go func(i int, node *graph.Node) {
			defer wg.Done()
			node.Op.(graph.Source).Run(s.SourceSubmitter(node, i), stop)
			s.SourceDone(node, i)
		}(i, node)
	}

	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-s.Done():
				return
			default:
			}
			// Bias toward shrinking to 1: the shrink is the hazardous
			// transition (hints already lateral-pushed under the old
			// width must stay reachable under the new one).
			if rng.Intn(3) == 0 {
				s.SetRelax(1)
			} else {
				s.SetRelax(1 + rng.Intn(s.MaxLevel()))
			}
			s.SetLevel(1 + rng.Intn(s.MaxLevel()))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	donech := make(chan struct{})
	go func() { s.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(60 * time.Second):
		t.Fatal("scheduler did not drain within 60s: hint stranded by a relax shrink")
	}
	<-churnDone
	close(stop)
	wg.Wait()

	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d tuples, want %d", got, n)
	}
	if got, want := s.Executed(), uint64(n*3); got != want {
		t.Fatalf("Executed = %d, want %d", got, want)
	}
	cont := s.Contention()
	if cont.Lateral == 0 {
		t.Errorf("RelaxWidth 6 produced no lateral pushes; relaxation path untested")
	}
	t.Logf("contention after relax churn: %+v", cont)
}

// TestGlobalFreeListAblationMatches runs the same graph under the
// sharded default and the GlobalFreeList ablation and checks both
// deliver identical results, so the ablation benchmarks compare equal
// work.
func TestGlobalFreeListAblationMatches(t *testing.T) {
	const n = 10000
	for _, cfg := range []Config{
		{MaxThreads: 4, QueueCap: 16},
		{MaxThreads: 4, QueueCap: 16, GlobalFreeList: true},
	} {
		snk := &ops.Sink{}
		g := pipelineGraph(t, 10, n, snk)
		s := runGraph(t, g, cfg, 3)
		if got := snk.Count(); got != n {
			t.Fatalf("GlobalFreeList=%v: sink saw %d tuples, want %d", cfg.GlobalFreeList, got, n)
		}
		if got, want := s.Executed(), uint64(n*11); got != want {
			t.Fatalf("GlobalFreeList=%v: Executed = %d, want %d", cfg.GlobalFreeList, got, want)
		}
	}
}
