package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// TestRandomDAGDeliveryProperty generates random layered DAGs and checks
// a global conservation property of the scheduler: with a source of n
// tuples, every sink must receive exactly n × (number of source→sink
// paths) tuples (submissions fan out to every subscriber), and the
// executed total must equal n × Σ over nodes of path counts.
func TestRandomDAGDeliveryProperty(t *testing.T) {
	const n = 1500
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			b := graph.NewBuilder()
			src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)

			layers := 2 + rng.Intn(4)
			prevLayer := []int{src}
			paths := map[int]uint64{src: 1}
			var sinks []*ops.Sink
			var sinkPaths []uint64

			for l := 0; l < layers; l++ {
				width := 1 + rng.Intn(3)
				cur := make([]int, width)
				for i := range cur {
					cur[i] = b.AddNode(&ops.Custom{
						OpName: fmt.Sprintf("n%d_%d", l, i),
						Fn: func(out graph.Submitter, tp tuple.Tuple, _ int) {
							out.Submit(tp, 0)
						},
					}, 1, 1)
				}
				// Every upstream node feeds ≥1 downstream node; every
				// downstream node has ≥1 producer.
				for _, up := range prevLayer {
					dst := cur[rng.Intn(width)]
					b.Connect(up, 0, dst, 0)
					paths[dst] += paths[up]
				}
				for _, down := range cur {
					if paths[down] == 0 {
						up := prevLayer[rng.Intn(len(prevLayer))]
						b.Connect(up, 0, down, 0)
						paths[down] += paths[up]
					}
					// Extra random fan-out edges.
					if rng.Intn(3) == 0 {
						up := prevLayer[rng.Intn(len(prevLayer))]
						b.Connect(up, 0, down, 0)
						paths[down] += paths[up]
					}
				}
				prevLayer = cur
			}
			// Terminal layer: one sink per dangling node.
			for _, up := range prevLayer {
				s := &ops.Sink{}
				id := b.AddNode(s, 1, 0)
				b.Connect(up, 0, id, 0)
				sinks = append(sinks, s)
				sinkPaths = append(sinkPaths, paths[up])
			}
			g, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			var wantExecuted uint64
			for id, p := range paths {
				if id == src {
					continue // the source is not executed
				}
				wantExecuted += p
			}
			for _, p := range sinkPaths {
				wantExecuted += p
			}

			// Run each topology twice: once with roomy queues (batched
			// drains move full batches) and once with capacity-4 queues,
			// where coalesced PushN flushes routinely half-succeed and
			// fall back through reSchedule.
			cfg := Config{MaxThreads: 3, QueueCap: 8}
			if seed%2 == 1 {
				cfg.QueueCap = 4
			}
			s := runGraph(t, g, cfg, 2)
			for i, snk := range sinks {
				want := uint64(n) * sinkPaths[i]
				if got := snk.Count(); got != want {
					t.Fatalf("sink %d received %d tuples, want %d (%d paths)",
						i, got, want, sinkPaths[i])
				}
			}
			if got, want := s.Executed(), uint64(n)*wantExecuted; got != want {
				t.Fatalf("executed %d operator invocations, want %d", got, want)
			}
		})
	}
}
