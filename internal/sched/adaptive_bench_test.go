package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streams/internal/elastic"
	"streams/internal/lfq"
	"streams/internal/metrics"
)

// adaptiveObtain is the benchmark's hint lookup, findWorkSharded's
// order without the port claim: own inbox, own shard, steal every
// victim nearest-first (shard then inbox), global list. Contention
// meters are charged exactly where the scheduler charges them, because
// the adaptive mode's controller reads them as its input signal.
func adaptiveObtain(s *Scheduler, thr *Thread, port *int32) bool {
	if thr.inbox.Pop(port) || thr.shard.PopBottom(port) {
		return true
	}
	for i, v := range thr.victims {
		if s.shards[v].Steal(port) || s.inboxes[v].Pop(port) {
			s.chargeSteal(thr.id, int(thr.vDist[i]))
			return true
		}
	}
	if s.popFree(port, thr.id) {
		return true
	}
	s.contention.PopFail.Add(thr.id, 1)
	return false
}

// BenchmarkAdaptiveFreeList is the tentpole sweep behind
// BENCH_adaptive.json: hint cycles under scarcity — half as many port
// hints as workers, so threads contend for every hint — comparing the
// static relaxation extremes against the online-adapted width:
//
//   - static1: every release lands on the releaser's own shard. The
//     releaser re-pops it LIFO next cycle; starved workers must win a
//     steal race against the owner, so completion serializes behind the
//     racing.
//   - staticmax: every release picks any of the k candidate landing
//     spots; hints migrate to the threads that would otherwise steal.
//   - adaptive: the width starts tight and the elastic.Relaxer widens
//     it from the live contention meters — the same snapshot-delta
//     signal the PE's adaptation loop feeds it.
//
// Acceptance (EXPERIMENTS.md): adaptive must match or beat the best
// static width at both thread counts.
func BenchmarkAdaptiveFreeList(b *testing.B) {
	for _, mode := range []string{"static1", "staticmax", "adaptive"} {
		for _, threads := range []int{2, 8} {
			ports := max(1, threads/2)
			name := fmt.Sprintf("%s/threads=%d/ports=%d", mode, threads, ports)
			b.Run(name, func(b *testing.B) {
				g := freeListBenchGraph(b, ports)
				width := 1
				if mode == "staticmax" {
					width = threads
				}
				s := New(g, Config{MaxThreads: threads, RelaxWidth: width})
				var cycles atomic.Uint64
				stop := make(chan struct{})
				if mode == "adaptive" {
					rx, err := elastic.NewRelaxer(elastic.RelaxConfig{Max: threads})
					if err != nil {
						b.Fatal(err)
					}
					go func() {
						tick := time.NewTicker(2 * time.Millisecond)
						defer tick.Stop()
						last, lastC := s.Contention(), uint64(0)
						for {
							select {
							case <-stop:
								return
							case <-tick.C:
								cur, c := s.Contention(), cycles.Load()
								rate := 0.0
								if d := c - lastC; d > 0 {
									rate = float64(cur.Events()-last.Events()) / float64(d)
								}
								last, lastC = cur, c
								s.SetRelax(rx.Update(rate))
							}
						}
					}()
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < threads; w++ {
					n := b.N / threads
					if w < b.N%threads {
						n++
					}
					wg.Add(1)
					go func(thr *Thread, n int) {
						defer wg.Done()
						var port int32
						for i := 0; i < n; i++ {
							for !adaptiveObtain(s, thr, &port) {
								runtime.Gosched()
							}
							s.makePortFree(port, thr)
							cycles.Add(1)
						}
					}(s.threads[w], n)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				b.ReportMetric(float64(s.Relax()), "final-k")
			})
		}
	}
}

// BenchmarkPortClaim measures port-acquisition latency on one contended
// producer lock, oversubscribed (more claimants than GOMAXPROCS would
// usually schedule at once), for the two contended-claim policies:
//
//   - backoff: losers retry ProdTryLock under the §4.1.3 exponential
//     back-off — a thread asleep at the cap can be bypassed arbitrarily
//     often, so the tail is unbounded roulette.
//   - fair: losers take a ticket and spin for their turn (pushFair's
//     loop shape), so acquisitions happen in FIFO order and the tail is
//     bounded by the line ahead.
//
// The uncontended fast path (ProdTryLock wins outright) is byte-for-byte
// identical in both modes — that is the bypass seam — so the histogram
// digests only contended acquisitions, where the policies differ.
// ns/op is the full cycle; p50-ns/p99-ns/max-ns summarise the contended
// latency distribution and contended counts how many acquisitions hit
// it. Acceptance (EXPERIMENTS.md): fair must show the lower p99.
func BenchmarkPortClaim(b *testing.B) {
	const workers = 16
	for _, mode := range []string{"backoff", "fair"} {
		b.Run(fmt.Sprintf("claim=%s/threads=%d", mode, workers), func(b *testing.B) {
			q := lfq.NewEnforcer[int](64)
			hist := metrics.NewHistogram(workers)
			// The holder yields mid-hold, so the lock is held across a
			// scheduling boundary — the oversubscribed regime where every
			// other claimant lands on the contended path.
			var held atomic.Int64
			var contended atomic.Int64
			hold := func() {
				held.Add(1)
				runtime.Gosched()
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				n := b.N / workers
				if w < b.N%workers {
					n++
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						// Fast path mirrors pushFair: fair claimants take it
						// only while the ticket line is idle, so a looping
						// producer cannot starve a populated line.
						if (mode != "fair" || q.FairIdle()) && q.ProdTryLock() {
							hold()
							q.ProdUnlock()
							continue
						}
						contended.Add(1)
						start := time.Now()
						if mode == "fair" {
							tk := q.FairTicket()
							bo := backoff{delay: time.Microsecond, max: time.Millisecond}
							for !q.FairTurn(tk) {
								bo.wait()
							}
							bo = backoff{delay: time.Microsecond, max: time.Millisecond}
							for !q.ProdTryLock() {
								bo.wait()
							}
							hist.Record(w, time.Since(start))
							hold()
							q.ProdUnlock()
							q.FairAdvance()
							continue
						}
						bo := backoff{delay: time.Microsecond, max: time.Millisecond}
						for !q.ProdTryLock() {
							bo.wait()
						}
						hist.Record(w, time.Since(start))
						hold()
						q.ProdUnlock()
					}
				}(w, n)
			}
			wg.Wait()
			b.StopTimer()
			snap := hist.Snapshot()
			b.ReportMetric(float64(contended.Load()), "contended")
			b.ReportMetric(float64(snap.Quantile(0.50)), "p50-ns")
			b.ReportMetric(float64(snap.Quantile(0.99)), "p99-ns")
			b.ReportMetric(float64(snap.Max()), "max-ns")
		})
	}
}
