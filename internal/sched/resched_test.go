package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// TestReschedSuspensionReleasesLock is the regression test for the
// drain-while-suspended bug: reSchedule's loop used to re-acquire the
// blocked port's consumer lock and keep draining batches even after the
// elastic controller asked the thread to park. The restructured loop
// checks the suspension flag before taking the lock and before every
// batch while holding it, so a suspension request stops the draining
// promptly (the push keeps retrying — the stuck tuple must land) and
// leaves the port drainable by the threads that remain running.
//
// The test drives reSchedule directly for determinism: the destination
// queue is pre-filled, the producer lock is held by the test so the
// stuck push can never land on its own, and the destination operator
// flips the thread's suspension flag mid-drain.
func TestReschedSuspensionReleasesLock(t *testing.T) {
	const qcap = 8
	var executed atomic.Int64
	var thr *Thread
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 1}, 0, 1)
	sn := b.AddNode(&ops.Custom{OpName: "Marker", Fn: func(_ graph.Submitter, _ tuple.Tuple, _ int) {
		if executed.Add(1) == 2 {
			// The controller's suspension request lands mid-drain, after
			// the second tuple of the first locked batch.
			thr.suspended.Store(true)
		}
	}}, 1, 0)
	b.Connect(src, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// ReschedLimit 1 bounds each lock hold to two tuples, so the
	// suspension set on tuple 2 is observed at the first batch boundary.
	s := New(g, Config{QueueCap: qcap, ReschedLimit: 1, MaxThreads: 1})
	thr = s.threads[0]
	port := int32(g.Ports[0].ID)
	q := s.queues[port]
	for i := 0; i < qcap; i++ {
		tp := tuple.NewData(uint64(i))
		tp.Port = port
		if !q.Push(tp) {
			t.Fatalf("failed to pre-fill queue at %d", i)
		}
	}
	if !q.ProdTryLock() {
		t.Fatal("could not take the producer lock")
	}
	// The scheduler thread's goroutine is never started; the test plays
	// the thread by calling reSchedule on its behalf.
	c := s.acquireCtx(g.Ports[0], 0, thr, false)
	stuck := tuple.NewData(99)
	stuck.Port = port
	done := make(chan struct{})
	go func() {
		s.reSchedule(q, stuck, c)
		close(done)
	}()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The first lock hold drains exactly two tuples and trips the
	// suspension flag.
	waitFor("first drain batch", func() bool { return executed.Load() >= 2 })
	// Suspended: the thread must stop draining — the queue length holds
	// steady — and must not be holding the consumer lock.
	time.Sleep(50 * time.Millisecond)
	if got := executed.Load(); got != 2 {
		t.Fatalf("drained %d tuples while suspended, want 2 (kept draining after the park request)", got)
	}
	if got := q.Queue().Len(); got != qcap-2 {
		t.Fatalf("queue length %d while suspended, want %d", got, qcap-2)
	}
	if !q.ConsTryLock() {
		t.Fatal("consumer lock still held by the suspended thread's reSchedule")
	}
	q.ConsUnlock()
	// Resume: the drain continues and empties the queue, but the push
	// still cannot land while the test holds the producer lock.
	thr.suspended.Store(false)
	waitFor("post-resume drain", func() bool { return executed.Load() == qcap })
	select {
	case <-done:
		t.Fatal("reSchedule returned before its push could land")
	default:
	}
	// Release the producer side: the stuck tuple lands and reSchedule
	// returns.
	q.ProdUnlock()
	waitFor("reSchedule return", func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	var got tuple.Tuple
	if !q.Queue().Pop(&got) || got.Words[0] != 99 {
		t.Fatalf("stuck tuple not delivered; popped %+v", got)
	}
	s.releaseCtx(c)
}
