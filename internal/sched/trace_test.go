package sched

import (
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/ops"
	"streams/internal/trace"
)

func TestTraceRingsConvention(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 2, 10, snk)
	n := TraceRings(Config{MaxThreads: 4}, g)
	// 4 scheduler slots + 1 source + 1 controller ring.
	if n != 6 {
		t.Fatalf("TraceRings = %d, want 6", n)
	}
}

func TestTraceAcquireReleaseAndLatency(t *testing.T) {
	const n = 5000
	snk := &ops.Sink{}
	g := pipelineGraph(t, 4, n, snk)
	cfg := Config{MaxThreads: 4}
	tr := trace.New(TraceRings(cfg, g), 0)
	tr.Enable()
	lat := metrics.NewHistogram(TraceRings(cfg, g))
	cfg.Tracer = tr
	cfg.Latency = lat
	s := runGraph(t, g, cfg, 2)

	events := tr.Snapshot()
	kinds := trace.Kinds(events)
	if kinds["acquire"] == 0 || kinds["release"] == 0 {
		t.Fatalf("no drain events traced: %v", kinds)
	}
	// Every release's arg is the tuples drained under that acquire; the
	// sum cannot exceed total executions (reSchedule drains are separate)
	// and must be positive on a run this size.
	var drained int64
	for _, e := range events {
		if e.Kind == trace.KindRelease {
			if e.Arg < 1 {
				t.Fatalf("release with %d tuples drained", e.Arg)
			}
			drained += e.Arg
		}
	}
	if drained < 1 || uint64(drained) > s.Executed() {
		t.Fatalf("drained %d outside (0, executed=%d]", drained, s.Executed())
	}

	// Every data tuple was stamped at the source and reached the sink.
	snap := lat.Snapshot()
	if snap.Total != n {
		t.Fatalf("latency samples = %d, want %d", snap.Total, n)
	}
	if snap.Quantile(0.5) <= 0 {
		t.Fatalf("p50 latency = %v", snap.Quantile(0.5))
	}
}

func TestTraceDisabledRecordsNothing(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 2, 1000, snk)
	cfg := Config{MaxThreads: 2}
	tr := trace.New(TraceRings(cfg, g), 0) // never enabled
	cfg.Tracer = tr
	runGraph(t, g, cfg, 2)
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled tracer captured %d events", len(got))
	}
}

func TestTraceParkUnparkOnSuspend(t *testing.T) {
	// A graph with sources never started: threads idle in the find loop,
	// where parkIfAsked runs every iteration.
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 1}, 0, 1)
	sn := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(src, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxThreads: 2}
	tr := trace.New(TraceRings(cfg, g), 0)
	tr.Enable()
	cfg.Tracer = tr
	s := New(g, cfg)
	s.Start(2)
	s.SetLevel(1) // thread 1 must park

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if trace.Kinds(tr.Snapshot())["park"] > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	kinds := trace.Kinds(tr.Snapshot())
	if kinds["park"] == 0 {
		t.Fatalf("no park event after suspension: %v", kinds)
	}
	// Shutdown wakes the parked thread, which emits the matching unpark
	// on its way out.
	if kinds["unpark"] == 0 {
		t.Fatalf("no unpark event after shutdown: %v", kinds)
	}
	for _, e := range tr.Snapshot() {
		if e.Kind == trace.KindPark && e.Ring != 1 {
			t.Fatalf("park on ring %d, want 1", e.Ring)
		}
	}
}
