package sched

import (
	"sync"
	"testing"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/ops"
	"streams/internal/tuple"
	"streams/internal/vm"
)

// progPipelineGraph is pipelineGraph with a bytecode program attached to
// every worker, so chainable runs are eligible for fused dispatch.
func progPipelineGraph(t *testing.T, depth int, limit uint64, cost int, snk *ops.Sink) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: limit}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		n := b.AddNode(&ops.Worker{Cost: cost, Prog: ops.WorkerProgram("W", cost)}, 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(prev, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFusedFiresOnProgrammedPipeline proves fused dispatch actually runs
// on the topology it was built for, and that its accounting matches the
// per-operator path exactly: every tuple is still executed once per
// operator, order is preserved, and the VM meters move.
func TestFusedFiresOnProgrammedPipeline(t *testing.T) {
	const n, depth = 20000, 10
	var mu sync.Mutex
	var seen []uint64
	snk := newOrderSink(&mu, &seen)
	g := progPipelineGraph(t, depth, n, 0, snk)
	s := runGraph(t, g, Config{MaxThreads: 4}, 2)
	if len(seen) != n {
		t.Fatalf("sink saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
	// Execution counters must be path-independent: depth workers plus
	// the sink each execute every tuple exactly once.
	if got, want := s.Executed(), uint64(n*(depth+1)); got != want {
		t.Fatalf("Executed = %d, want %d", got, want)
	}
	v := s.Stats().VM
	if v.Programs != depth {
		t.Errorf("Programs = %d, want %d (one per worker)", v.Programs, depth)
	}
	if v.FusedRuns == 0 {
		t.Fatalf("fused dispatch never fired on a programmed %d-deep pipeline: %+v", depth, v)
	}
	if v.FusedTuples < v.FusedRuns {
		t.Errorf("fused tuples %d < fused runs %d: every run moves at least one tuple", v.FusedTuples, v.FusedRuns)
	}
}

// TestDisableVMMetersZero: under the -novm ablation the fused path must
// be fully off — correct delivery, correct order, and not a single VM
// meter moved (programs are not even counted: the walk never runs).
func TestDisableVMMetersZero(t *testing.T) {
	const n = 10000
	var mu sync.Mutex
	var seen []uint64
	snk := newOrderSink(&mu, &seen)
	g := progPipelineGraph(t, 8, n, 0, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, DisableVM: true}, 2)
	if len(seen) != n {
		t.Fatalf("sink saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
	if v := s.Stats().VM; v != (metrics.VMSnapshot{}) {
		t.Fatalf("VM meters moved with DisableVM: %+v", v)
	}
}

// TestFusedDeclinesUnderChaos: with a chaos injector armed, faults must
// flow through the per-operator seams, so every would-be fused run falls
// back — metered — and conservation still holds.
func TestFusedDeclinesUnderChaos(t *testing.T) {
	const n = 12000
	inj := fault.New(fault.Config{Seed: 42, PanicRate: 0.005})
	snk := &ops.Sink{}
	g := progPipelineGraph(t, 10, n, 0, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, Fault: inj, QuarantineAfter: 1 << 30}, 2)
	v := s.Stats().VM
	if v.FusedRuns != 0 {
		t.Fatalf("fused dispatch ran under chaos: %+v", v)
	}
	if v.Fallbacks == 0 {
		t.Error("no metered fall-backs: chain commits should have declined fusion")
	}
	fs := s.Faults()
	if fs.OpPanics == 0 {
		t.Fatal("injector never fired")
	}
	if got := snk.Count() + fs.DeadLetters; got != n {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d", snk.Count(), fs.DeadLetters, got, n)
	}
}

// panicProgram forwards its tuple, but divides by seq%interval first, so
// tuples whose source sequence number is a multiple of interval panic
// with the VM's division-by-zero error.
func panicProgram(t *testing.T, name string, interval int64) *vm.Program {
	t.Helper()
	b := vm.NewBuilder()
	b.ConstI(1)
	b.Ins(vm.OpLoadSeq, 0, 0)
	b.ConstI(interval)
	b.Op(vm.OpModI)
	b.Op(vm.OpDivI)
	b.Op(vm.OpPop)
	b.Op(vm.OpEmit)
	p, err := b.Finish(vm.Seg{Name: name}, vm.Layout{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(vm.Identity); err != nil {
		t.Fatal(err)
	}
	return p
}

// seqPanicky is the closure twin of panicProgram: both dispatch forms
// must panic on exactly the same tuples, so dead-letter counts are
// deterministic whichever path a given batch takes.
type seqPanicky struct {
	name     string
	interval uint64
	prog     *vm.Program
}

func (p *seqPanicky) Name() string           { return p.name }
func (p *seqPanicky) VMProgram() *vm.Program { return p.prog }

func (p *seqPanicky) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if t.Seq%p.interval == 0 {
		panic("seqPanicky: induced failure")
	}
	out.Submit(t, 0)
}

// TestFusedPanicContainment: a segment panic inside a fused run must
// dead-letter only the offending tuple, attribute the strike to the
// segment's operator, and leave the rest of the batch (and the run)
// intact — exactly the containment the per-operator path gives. Chains
// only commit at ports flushed from worker contexts (sources have no
// thread), so a plain worker sits upstream of the panicking operator to
// make its port a fused-run entry. The panicking operator is then the
// run's first segment, whose input stream is always sequence-stamped,
// so both dispatch forms agree on the panic set.
func TestFusedPanicContainment(t *testing.T) {
	const n, interval = 10000, 250
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	up := b.AddNode(&ops.Worker{OpName: "Up", Prog: ops.WorkerProgram("Up", 0)}, 1, 1)
	bad := b.AddNode(&seqPanicky{
		name:     "Bad",
		interval: interval,
		prog:     panicProgram(t, "Bad", interval),
	}, 1, 1)
	w := b.AddNode(&ops.Worker{Prog: ops.WorkerProgram("W", 0)}, 1, 1)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(src, 0, up, 0)
	b.Connect(up, 0, bad, 0)
	b.Connect(bad, 0, w, 0)
	b.Connect(w, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// One worker thread: the panicking node's queue is drained only by
	// the thread that just flushed to it, so it is empty at every flush
	// and the chain (hence the fused run) commits deterministically —
	// keeping the FusedRuns assertion below robust under -race timing.
	s := runGraph(t, g, Config{MaxThreads: 1, QuarantineAfter: 1 << 30}, 1)
	fs := s.Faults()
	if fs.OpPanics != n/interval {
		t.Errorf("OpPanics = %d, want %d", fs.OpPanics, n/interval)
	}
	if got, want := snk.Count(), uint64(n-n/interval); got != want {
		t.Errorf("sink saw %d tuples, want %d", got, want)
	}
	if got := snk.Count() + fs.DeadLetters; got != n {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d", snk.Count(), fs.DeadLetters, got, n)
	}
	if v := s.Stats().VM; v.FusedRuns == 0 {
		t.Errorf("fused dispatch never fired, containment path untested: %+v", v)
	}
}
