package sched

import (
	"sync"
	"testing"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/ops"
	"streams/internal/tuple"
	"streams/internal/vm"
)

// progPipelineGraph is pipelineGraph with a bytecode program attached to
// every worker, so chainable runs are eligible for fused dispatch.
func progPipelineGraph(t *testing.T, depth int, limit uint64, cost int, snk *ops.Sink) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: limit}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		n := b.AddNode(&ops.Worker{Cost: cost, Prog: ops.WorkerProgram("W", cost)}, 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(prev, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFusedFiresOnProgrammedPipeline proves fused dispatch actually runs
// on the topology it was built for, and that its accounting matches the
// per-operator path exactly: every tuple is still executed once per
// operator, order is preserved, and the VM meters move.
func TestFusedFiresOnProgrammedPipeline(t *testing.T) {
	const n, depth = 20000, 10
	var mu sync.Mutex
	var seen []uint64
	snk := newOrderSink(&mu, &seen)
	g := progPipelineGraph(t, depth, n, 0, snk)
	s := runGraph(t, g, Config{MaxThreads: 4}, 2)
	if len(seen) != n {
		t.Fatalf("sink saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
	// Execution counters must be path-independent: depth workers plus
	// the sink each execute every tuple exactly once.
	if got, want := s.Executed(), uint64(n*(depth+1)); got != want {
		t.Fatalf("Executed = %d, want %d", got, want)
	}
	v := s.Stats().VM
	if v.Programs != depth {
		t.Errorf("Programs = %d, want %d (one per worker)", v.Programs, depth)
	}
	if v.FusedRuns == 0 {
		t.Fatalf("fused dispatch never fired on a programmed %d-deep pipeline: %+v", depth, v)
	}
	if v.FusedTuples < v.FusedRuns {
		t.Errorf("fused tuples %d < fused runs %d: every run moves at least one tuple", v.FusedTuples, v.FusedRuns)
	}
}

// TestVecFiresOnProgrammedPipeline: the vectorized commit path must
// actually run on a programmed pipeline — batches at or above the
// cutoff go through the BatchMachine — and its accounting must hold:
// every fused run is either a vectorized batch or a metered scalar
// fall-back, rows are conserved, and delivery order is untouched.
func TestVecFiresOnProgrammedPipeline(t *testing.T) {
	const n, depth = 20000, 10
	var mu sync.Mutex
	var seen []uint64
	snk := newOrderSink(&mu, &seen)
	g := progPipelineGraph(t, depth, n, 0, snk)
	s := runGraph(t, g, Config{MaxThreads: 4}, 2)
	if len(seen) != n {
		t.Fatalf("sink saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
	if got, want := s.Executed(), uint64(n*(depth+1)); got != want {
		t.Fatalf("Executed = %d, want %d", got, want)
	}
	v := s.Stats().VM
	if v.VecBatches == 0 {
		t.Fatalf("vectorized dispatch never fired on a programmed %d-deep pipeline: %+v", depth, v)
	}
	if v.VecBatches+v.VecFallbacks != v.FusedRuns {
		t.Errorf("vec batches %d + fallbacks %d != fused runs %d: every fused run takes exactly one path",
			v.VecBatches, v.VecFallbacks, v.FusedRuns)
	}
	if v.VecRows == 0 || v.VecRows > v.FusedTuples {
		t.Errorf("vec rows %d out of range (fused tuples %d)", v.VecRows, v.FusedTuples)
	}
}

// TestDisableVecAblation runs the fused matrix both ways: identical
// delivery, order and execution counts with vectorization on and off,
// and under -novec not a single vec meter moves while fused dispatch
// itself keeps running — the ablation isolates exactly one mechanism.
func TestDisableVecAblation(t *testing.T) {
	const n, depth = 20000, 10
	run := func(cfg Config) ([]uint64, uint64, metrics.VMSnapshot) {
		var mu sync.Mutex
		var seen []uint64
		snk := newOrderSink(&mu, &seen)
		g := progPipelineGraph(t, depth, n, 0, snk)
		s := runGraph(t, g, cfg, 2)
		return seen, s.Executed(), s.Stats().VM
	}
	vecSeen, vecExec, vecVM := run(Config{MaxThreads: 4})
	novSeen, novExec, novVM := run(Config{MaxThreads: 4, DisableVec: true})
	if len(vecSeen) != n || len(novSeen) != n {
		t.Fatalf("delivery differs: vec %d, novec %d, want %d", len(vecSeen), len(novSeen), n)
	}
	for i := range vecSeen {
		if vecSeen[i] != novSeen[i] {
			t.Fatalf("position %d: vec delivered %d, novec %d", i, vecSeen[i], novSeen[i])
		}
	}
	if vecExec != novExec {
		t.Errorf("Executed diverges across the ablation: vec %d, novec %d", vecExec, novExec)
	}
	if novVM.VecBatches != 0 || novVM.VecRows != 0 || novVM.VecFallbacks != 0 {
		t.Errorf("vec meters moved under DisableVec: %+v", novVM)
	}
	if novVM.FusedRuns == 0 {
		t.Errorf("fused dispatch stopped under DisableVec; the ablation must only remove vectorization: %+v", novVM)
	}
	if vecVM.VecBatches == 0 {
		t.Errorf("control run never vectorized; ablation compares nothing: %+v", vecVM)
	}
}

// TestDisableVMMetersZero: under the -novm ablation the fused path must
// be fully off — correct delivery, correct order, and not a single VM
// meter moved (programs are not even counted: the walk never runs).
func TestDisableVMMetersZero(t *testing.T) {
	const n = 10000
	var mu sync.Mutex
	var seen []uint64
	snk := newOrderSink(&mu, &seen)
	g := progPipelineGraph(t, 8, n, 0, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, DisableVM: true}, 2)
	if len(seen) != n {
		t.Fatalf("sink saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
	if v := s.Stats().VM; v != (metrics.VMSnapshot{}) {
		t.Fatalf("VM meters moved with DisableVM: %+v", v)
	}
}

// TestFusedDeclinesUnderChaos: with a chaos injector armed, faults must
// flow through the per-operator seams, so every would-be fused run falls
// back — metered — and conservation still holds.
func TestFusedDeclinesUnderChaos(t *testing.T) {
	const n = 12000
	inj := fault.New(fault.Config{Seed: 42, PanicRate: 0.005})
	snk := &ops.Sink{}
	g := progPipelineGraph(t, 10, n, 0, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, Fault: inj, QuarantineAfter: 1 << 30}, 2)
	v := s.Stats().VM
	if v.FusedRuns != 0 {
		t.Fatalf("fused dispatch ran under chaos: %+v", v)
	}
	if v.Fallbacks == 0 {
		t.Error("no metered fall-backs: chain commits should have declined fusion")
	}
	fs := s.Faults()
	if fs.OpPanics == 0 {
		t.Fatal("injector never fired")
	}
	if got := snk.Count() + fs.DeadLetters; got != n {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d", snk.Count(), fs.DeadLetters, got, n)
	}
}

// panicProgram forwards its tuple, but divides by seq%interval first, so
// tuples whose source sequence number is a multiple of interval panic
// with the VM's division-by-zero error.
func panicProgram(t *testing.T, name string, interval int64) *vm.Program {
	t.Helper()
	b := vm.NewBuilder()
	b.ConstI(1)
	b.Ins(vm.OpLoadSeq, 0, 0)
	b.ConstI(interval)
	b.Op(vm.OpModI)
	b.Op(vm.OpDivI)
	b.Op(vm.OpPop)
	b.Op(vm.OpEmit)
	p, err := b.Finish(vm.Seg{Name: name}, vm.Layout{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(vm.Identity); err != nil {
		t.Fatal(err)
	}
	return p
}

// seqPanicky is the closure twin of panicProgram: both dispatch forms
// must panic on exactly the same tuples, so dead-letter counts are
// deterministic whichever path a given batch takes.
type seqPanicky struct {
	name     string
	interval uint64
	prog     *vm.Program
}

func (p *seqPanicky) Name() string           { return p.name }
func (p *seqPanicky) VMProgram() *vm.Program { return p.prog }

func (p *seqPanicky) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if t.Seq%p.interval == 0 {
		panic("seqPanicky: induced failure")
	}
	out.Submit(t, 0)
}

// TestFusedPanicContainment: a segment panic inside a fused run must
// dead-letter only the offending tuple, attribute the strike to the
// segment's operator, and leave the rest of the batch (and the run)
// intact — exactly the containment the per-operator path gives. Chains
// only commit at ports flushed from worker contexts (sources have no
// thread), so a plain worker sits upstream of the panicking operator to
// make its port a fused-run entry. The panicking operator is then the
// run's first segment, whose input stream is always sequence-stamped,
// so both dispatch forms agree on the panic set.
func TestFusedPanicContainment(t *testing.T) {
	const n, interval = 10000, 250
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	up := b.AddNode(&ops.Worker{OpName: "Up", Prog: ops.WorkerProgram("Up", 0)}, 1, 1)
	bad := b.AddNode(&seqPanicky{
		name:     "Bad",
		interval: interval,
		prog:     panicProgram(t, "Bad", interval),
	}, 1, 1)
	w := b.AddNode(&ops.Worker{Prog: ops.WorkerProgram("W", 0)}, 1, 1)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(src, 0, up, 0)
	b.Connect(up, 0, bad, 0)
	b.Connect(bad, 0, w, 0)
	b.Connect(w, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// One worker thread: the panicking node's queue is drained only by
	// the thread that just flushed to it, so it is empty at every flush
	// and the chain (hence the fused run) commits deterministically —
	// keeping the FusedRuns assertion below robust under -race timing.
	s := runGraph(t, g, Config{MaxThreads: 1, QuarantineAfter: 1 << 30}, 1)
	fs := s.Faults()
	if fs.OpPanics != n/interval {
		t.Errorf("OpPanics = %d, want %d", fs.OpPanics, n/interval)
	}
	if got, want := snk.Count(), uint64(n-n/interval); got != want {
		t.Errorf("sink saw %d tuples, want %d", got, want)
	}
	if got := snk.Count() + fs.DeadLetters; got != n {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d", snk.Count(), fs.DeadLetters, got, n)
	}
	v := s.Stats().VM
	if v.FusedRuns == 0 {
		t.Errorf("fused dispatch never fired, containment path untested: %+v", v)
	}
	if v.VecBatches+v.VecFallbacks != v.FusedRuns {
		t.Errorf("vec batches %d + fallbacks %d != fused runs %d", v.VecBatches, v.VecFallbacks, v.FusedRuns)
	}
}

// TestVecComputePanicReplaysScalar exercises the fall-back seam
// deterministically, without depending on which batches the live
// scheduler happens to commit fused: a batch holding a faulting tuple
// must abort the vectorized compute phase with zero emissions, and the
// scalar replay of that same batch must reproduce the per-tuple panic
// set and attribution exactly.
func TestVecComputePanicReplaysScalar(t *testing.T) {
	const interval = 5
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 1}, 0, 1)
	bad := b.AddNode(&seqPanicky{
		name:     "Bad",
		interval: interval,
		prog:     panicProgram(t, "Bad", interval),
	}, 1, 1)
	w := b.AddNode(&ops.Worker{Prog: ops.WorkerProgram("W", 0)}, 1, 1)
	sn := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(src, 0, bad, 0)
	b.Connect(bad, 0, w, 0)
	b.Connect(w, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxThreads: 1})
	var fr *fusedRun
	for _, r := range s.fusedRuns {
		if r != nil {
			fr = r
		}
	}
	if fr == nil {
		t.Fatal("no fused run was built")
	}
	if fr.vec == nil {
		t.Fatal("the panic program did not vectorize; the replay seam is unreachable")
	}

	batch := make([]tuple.Tuple, 16)
	for i := range batch {
		batch[i] = tuple.Tuple{Seq: uint64(i + 1)} // seq 5, 10, 15 fault
	}
	if s.vecCompute(fr, batch, 0, 0) {
		t.Fatal("vectorized compute succeeded on a batch with faulting rows")
	}
	if row := fr.bm.FaultRow(); row != 4 {
		t.Errorf("FaultRow = %d, want 4 (the first seq%%%d == 0 row)", row, interval)
	}
	if fr.bm.CurSeg() != 0 {
		t.Errorf("CurSeg = %d, want 0 (the Bad segment)", fr.bm.CurSeg())
	}
	// The abort is metered apart from ordinary declines: a recurring
	// compute panic means every such batch runs twice (vec + replay).
	if got := s.vms.VecAborts.Total(); got != 1 {
		t.Errorf("VecAborts = %d after one aborted compute, want 1", got)
	}

	// The replay: per-tuple scalar runs over the same machine the
	// scheduler would use, with per-tuple containment. Exactly the
	// seq%interval rows panic, everything else flows through, and each
	// panic is attributed to the Bad segment.
	fr.mach.Reset(fr.prog)
	var delivered []uint64
	panics := 0
	for i := range batch {
		func() {
			defer func() {
				if r := recover(); r != nil {
					panics++
					if fr.mach.CurSeg() != 0 {
						t.Errorf("scalar replay blamed segment %d, want 0", fr.mach.CurSeg())
					}
				}
			}()
			fr.mach.Run(fr.prog, batch[i], vm.EmitFunc(func(o tuple.Tuple) {
				delivered = append(delivered, o.Seq)
			}))
		}()
	}
	if panics != 3 {
		t.Errorf("scalar replay panicked %d times, want 3", panics)
	}
	want := []uint64{1, 2, 3, 4, 6, 7, 8, 9, 11, 12, 13, 14, 16}
	if len(delivered) != len(want) {
		t.Fatalf("replay delivered %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("replay delivered %v, want %v", delivered, want)
		}
	}
}
