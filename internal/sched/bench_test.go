package sched

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// closedLoopSource is the load generator for the chain benchmark: it
// admits a new tuple only when fewer than window tuples are in flight
// (submitted but not yet counted by the sink). Open-loop generation
// floods every queue and pushes all tuple movement through the
// reSchedule congestion path, which never chains and is itself
// run-to-completion; the bounded window keeps the scheduler in the
// uncongested hand-off regime — queues shallow, pushes landing on the
// clean path — which is exactly the per-hop cost chaining bypasses.
type closedLoopSource struct {
	limit  uint64
	window uint64
	snk    *ops.Sink
}

func (c *closedLoopSource) Name() string                              { return "ClosedSrc" }
func (c *closedLoopSource) Process(graph.Submitter, tuple.Tuple, int) {}
func (c *closedLoopSource) Run(out graph.Submitter, stop <-chan struct{}) {
	for i := uint64(0); i < c.limit; i++ {
		for i-c.snk.Count() >= c.window {
			runtime.Gosched()
			select {
			case <-stop:
				return
			default:
			}
		}
		out.Submit(tuple.NewData(i), 0)
	}
}

// benchPipelineGraph builds Src -> Worker×depth -> Snk with a
// closed-loop source, the paper's pure-pipeline topology (§5.2) at w=1.
func benchPipelineGraph(b *testing.B, depth int, src0 graph.Source, snk *ops.Sink) *graph.Graph {
	b.Helper()
	gb := graph.NewBuilder()
	src := gb.AddNode(src0.(graph.Operator), 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		n := gb.AddNode(&ops.Worker{}, 1, 1)
		gb.Connect(prev, 0, n, 0)
		prev = n
	}
	sn := gb.AddNode(snk, 1, 0)
	gb.Connect(prev, 0, sn, 0)
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPipelineChain is the tentpole measurement for inline chain
// execution: the pure-pipeline topology at depth {10, 100, 1000} with
// zero-cost operators, where every scheduler action is hand-off
// overhead, run with chaining on (default budgets) and off (the
// -nochain ablation). Load is closed-loop (32 tuples in flight, well
// under QueueCap) so hand-offs take the clean queue path rather than
// the congestion path — see closedLoopSource. One worker thread is the
// honest regime for a single serial pipeline: its width-1 parallelism
// gives a second thread nothing to do but fail finds and contend on
// steals. DelayThreshold is lowered for both modes alike so idle
// back-off sleeps don't drown the per-hop cost under measurement.
// ns/op is per end-to-end tuple; the tuples/s metric is reported
// explicitly for the EXPERIMENTS.md table. The chain/depth=1000 row
// must show ≥1.5× the nochain tuples/s (BENCH_chain.json, make
// bench-chain).
func BenchmarkPipelineChain(b *testing.B) {
	const threads = 1
	const window = 32
	for _, mode := range []string{"chain", "nochain"} {
		for _, depth := range []int{10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/depth=%d", mode, depth), func(b *testing.B) {
				snk := &ops.Sink{}
				src0 := &closedLoopSource{limit: uint64(b.N), window: window, snk: snk}
				g := benchPipelineGraph(b, depth, src0, snk)
				s := New(g, Config{
					MaxThreads:     threads,
					DisableChain:   mode == "nochain",
					QueueCap:       256,
					DelayThreshold: 50 * time.Microsecond,
				})
				b.ResetTimer()
				s.Start(threads)
				src := g.SourceNodes[0]
				stop := make(chan struct{})
				src.Op.(graph.Source).Run(s.SourceSubmitter(src, 0), stop)
				s.SourceDone(src, 0)
				s.Wait()
				b.StopTimer()
				close(stop)
				if got := snk.Count(); got != uint64(b.N) {
					b.Fatalf("sink saw %d tuples, want %d", got, b.N)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			})
		}
	}
}

// freeListBenchGraph builds a graph with exactly nPorts input ports
// (one source fanning out to nPorts sinks) for free-list benchmarks.
// The scheduler is never started and no tuples flow: the benchmarks
// exercise only the free-structure hint movement.
func freeListBenchGraph(b *testing.B, nPorts int) *graph.Graph {
	b.Helper()
	gb := graph.NewBuilder()
	src := gb.AddNode(&ops.Generator{Limit: 1}, 0, nPorts)
	for i := 0; i < nPorts; i++ {
		sn := gb.AddNode(&ops.Sink{}, 1, 0)
		gb.Connect(src, i, sn, 0)
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFreeListContention measures one free-structure hint cycle —
// obtain a port hint, return it — per iteration, across a sweep of
// worker counts and port counts, for both designs:
//
//   - global: every cycle pops and pushes the shared Vyukov MPMC list
//     (two CASes on shared cache lines).
//   - sharded: every cycle pops and pushes the worker's own deque
//     (plain atomic load/store, no CAS, no shared lines), falling back
//     to stealing and the global list exactly as findWorkSharded does.
//
// This is the microbenchmark behind the tentpole claim: the sharded
// list must beat the global list from 4 workers up (and should already
// win at 1, having removed the CASes from the common path).
func BenchmarkFreeListContention(b *testing.B) {
	for _, impl := range []string{"global", "sharded"} {
		for _, threads := range []int{1, 2, 4, 8} {
			for _, ports := range []int{16, 256} {
				name := fmt.Sprintf("%s/threads=%d/ports=%d", impl, threads, ports)
				b.Run(name, func(b *testing.B) {
					g := freeListBenchGraph(b, ports)
					s := New(g, Config{
						MaxThreads:     threads,
						GlobalFreeList: impl == "global",
					})
					b.ResetTimer()
					var wg sync.WaitGroup
					for w := 0; w < threads; w++ {
						n := b.N / threads
						if w < b.N%threads {
							n++
						}
						wg.Add(1)
						go func(w, n int) {
							defer wg.Done()
							if s.useShards {
								benchShardedCycles(s, s.threads[w], n)
							} else {
								benchGlobalCycles(s, w, n)
							}
						}(w, n)
					}
					wg.Wait()
				})
			}
		}
	}
}

// benchGlobalCycles runs n pop/push cycles against the global list.
func benchGlobalCycles(s *Scheduler, tid, n int) {
	var port int32
	for i := 0; i < n; i++ {
		for !s.popFree(&port, tid) {
		}
		s.pushGlobalFree(port, tid)
	}
}

// benchShardedCycles runs n hint cycles through the sharded structure
// with findWorkSharded's fallback order: own shard, steal, global.
func benchShardedCycles(s *Scheduler, thr *Thread, n int) {
	var port int32
	for i := 0; i < n; i++ {
		for !shardedObtain(s, thr, &port) {
		}
		s.makePortFree(port, thr)
	}
}

func shardedObtain(s *Scheduler, thr *Thread, port *int32) bool {
	if thr.shard.PopBottom(port) {
		return true
	}
	nsh := len(s.shards)
	off := int(thr.nextRand() % uint32(nsh))
	for i := 0; i < nsh; i++ {
		v := off + i
		if v >= nsh {
			v -= nsh
		}
		if v != thr.id && s.shards[v].Steal(port) {
			return true
		}
	}
	return s.popFree(port, thr.id)
}
