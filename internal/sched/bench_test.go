package sched

import (
	"fmt"
	"sync"
	"testing"

	"streams/internal/graph"
	"streams/internal/ops"
)

// freeListBenchGraph builds a graph with exactly nPorts input ports
// (one source fanning out to nPorts sinks) for free-list benchmarks.
// The scheduler is never started and no tuples flow: the benchmarks
// exercise only the free-structure hint movement.
func freeListBenchGraph(b *testing.B, nPorts int) *graph.Graph {
	b.Helper()
	gb := graph.NewBuilder()
	src := gb.AddNode(&ops.Generator{Limit: 1}, 0, nPorts)
	for i := 0; i < nPorts; i++ {
		sn := gb.AddNode(&ops.Sink{}, 1, 0)
		gb.Connect(src, i, sn, 0)
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFreeListContention measures one free-structure hint cycle —
// obtain a port hint, return it — per iteration, across a sweep of
// worker counts and port counts, for both designs:
//
//   - global: every cycle pops and pushes the shared Vyukov MPMC list
//     (two CASes on shared cache lines).
//   - sharded: every cycle pops and pushes the worker's own deque
//     (plain atomic load/store, no CAS, no shared lines), falling back
//     to stealing and the global list exactly as findWorkSharded does.
//
// This is the microbenchmark behind the tentpole claim: the sharded
// list must beat the global list from 4 workers up (and should already
// win at 1, having removed the CASes from the common path).
func BenchmarkFreeListContention(b *testing.B) {
	for _, impl := range []string{"global", "sharded"} {
		for _, threads := range []int{1, 2, 4, 8} {
			for _, ports := range []int{16, 256} {
				name := fmt.Sprintf("%s/threads=%d/ports=%d", impl, threads, ports)
				b.Run(name, func(b *testing.B) {
					g := freeListBenchGraph(b, ports)
					s := New(g, Config{
						MaxThreads:     threads,
						GlobalFreeList: impl == "global",
					})
					b.ResetTimer()
					var wg sync.WaitGroup
					for w := 0; w < threads; w++ {
						n := b.N / threads
						if w < b.N%threads {
							n++
						}
						wg.Add(1)
						go func(w, n int) {
							defer wg.Done()
							if s.useShards {
								benchShardedCycles(s, s.threads[w], n)
							} else {
								benchGlobalCycles(s, w, n)
							}
						}(w, n)
					}
					wg.Wait()
				})
			}
		}
	}
}

// benchGlobalCycles runs n pop/push cycles against the global list.
func benchGlobalCycles(s *Scheduler, tid, n int) {
	var port int32
	for i := 0; i < n; i++ {
		for !s.popFree(&port, tid) {
		}
		s.pushGlobalFree(port, tid)
	}
}

// benchShardedCycles runs n hint cycles through the sharded structure
// with findWorkSharded's fallback order: own shard, steal, global.
func benchShardedCycles(s *Scheduler, thr *Thread, n int) {
	var port int32
	for i := 0; i < n; i++ {
		for !shardedObtain(s, thr, &port) {
		}
		s.makePortFree(port, thr)
	}
}

func shardedObtain(s *Scheduler, thr *Thread, port *int32) bool {
	if thr.shard.PopBottom(port) {
		return true
	}
	nsh := len(s.shards)
	off := int(thr.nextRand() % uint32(nsh))
	for i := 0; i < nsh; i++ {
		v := off + i
		if v >= nsh {
			v -= nsh
		}
		if v != thr.id && s.shards[v].Steal(port) {
			return true
		}
	}
	return s.popFree(port, thr.id)
}
