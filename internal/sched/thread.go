package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/lfq"
	"streams/internal/tuple"
)

// Thread is one scheduler execution context. The paper's design gives
// every thread its own copies of the suspended, shutdown and portsClosed
// stop conditions so the scheduling loop never polls shared cache lines
// (§4.1.2): whoever needs to stop the threads walks the table and updates
// every thread's local flags.
//
// Threads are goroutines here rather than pthreads; a suspended thread
// parks on a condition variable and consumes no CPU, matching the
// product's mutex+condvar suspension.
// Field layout rule (the cache-line audit, shared with the metrics
// package's shard stride): any word this thread writes at per-batch or
// per-loop rate must sit at least 128 bytes — two 64-byte lines, which
// also covers 128-byte-line hosts — from any word a different thread
// writes. The struct therefore groups fields by writer and hotness with
// explicit pads between the groups: the control-plane flags (written by
// the PE/elastic controller, rarely), the owner-hot progress words
// (written by the scheduling loop every batch), and the cold/owner-only
// tail. Without the pads the controller's occasional suspended store
// and the owner's per-batch heartbeat/active stores ping-pong one line
// between cores; BenchmarkCounterShards demonstrates the same effect on
// the counter shards.
type Thread struct {
	id int

	// Per-thread stop conditions, written by the PE/elastic controller
	// and read only by this thread's scheduling loop.
	suspended   atomic.Bool
	shutdown    atomic.Bool
	portsClosed atomic.Bool

	_ [128]byte // keep controller-written flags off the owner-hot line

	// active is set while the thread is inside operator code and cleared
	// while it is looking for work; the elastic controller uses it to
	// detect threads stuck in user code that cannot be suspended
	// (§4.1.5, §4.2.3).
	active atomic.Bool
	// parked is set while the thread is waiting on its condition
	// variable; the elastic controller checks that suspensions actually
	// happened before trusting a measurement period.
	parked atomic.Bool

	// heartbeat is the thread's progress epoch: bumped once per executed
	// batch, once per find-work iteration, and once per inline chain
	// link. The watchdog reads it to tell "stuck inside one operator
	// call" (active, not parked, epoch frozen) from "busy" (epoch
	// advancing) without touching any scheduling state.
	heartbeat atomic.Uint64

	_ [128]byte // keep owner-hot stores off the cold tail's lines

	// launched/exited bracket the scheduling goroutine's lifetime so the
	// shutdown deadline path can name exactly which threads failed to
	// exit.
	launched atomic.Bool
	exited   atomic.Bool

	mu   sync.Mutex
	cond *sync.Cond

	// scratch buffers the LIFO free-list walk (FreeListLIFO ablation).
	// Its retained capacity is bounded (maxScratchCap) so one walk over a
	// huge port set does not pin a proportionally huge array forever.
	scratch []int32

	// batch is the thread's drain buffer: the top-level scheduling loop
	// pops tuples into it in batches so the queue indices and the metric
	// shards are touched once per batch instead of once per tuple. Only
	// the non-nested schedule() loop may use it; nested drains
	// (reSchedule) go through Scheduler.acquireBatch instead.
	batch []tuple.Tuple

	// spare is a second buffer the thread lends out via acquireBatch so
	// the common depth-1 reSchedule or coalescing frame skips the shared
	// sync.Pool; spareBusy hands it to at most one frame at a time. Both
	// are touched only by the thread's own goroutine.
	spare     *[]tuple.Tuple
	spareBusy bool

	// ctxCache heads the thread's free list of recycled execution
	// contexts (Scheduler.acquireCtx/releaseCtx); touched only by the
	// thread's own goroutine.
	ctxCache *ctx

	// shard is the thread's local free-port cache under the sharded free
	// list (nil under the GlobalFreeList/FreeListLIFO ablations). Only
	// this thread pushes to or pops the bottom; other threads steal from
	// the top.
	shard *lfq.WSDeque
	// inbox is the thread's lateral hint ring (k-relaxed free list):
	// neighbors push hints here when the relaxation width exceeds 1,
	// the owner drains it on every find, and thieves may pop it too.
	// Nil under the same ablations as shard.
	inbox *lfq.MPMC[int32]
	// victims is every other thread slot ordered nearest-first by CPU
	// topology, with vDist holding each victim's distance class
	// (cpuutil.DistSMT/DistLLC/DistRemote). Built once at construction;
	// the steal sweep walks equal-distance runs with a randomized start
	// offset, and the k-relaxed release picks lateral targets from the
	// prefix.
	victims []int32
	vDist   []uint8
	// findTick counts findWorkSharded calls to pace the periodic global
	// poll; thread-local, no synchronization.
	findTick int
	// chainBudget is the inline-chain tuple allowance remaining in the
	// current top-level drain batch; schedule() refills it from
	// Config.ChainTupleBudget before each root executeBatch and tryChain
	// draws it down. Thread-local, no synchronization.
	chainBudget int
	// rng is the thread's xorshift state for randomizing steal order;
	// thread-local, never zero.
	rng uint32
}

func newThread(id, batchCap int) *Thread {
	spare := make([]tuple.Tuple, batchCap)
	t := &Thread{
		id:    id,
		batch: make([]tuple.Tuple, batchCap),
		spare: &spare,
		rng:   uint32(id)*2654435761 + 1, // distinct, nonzero xorshift seeds
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// nextRand advances the thread's xorshift32 state; used to randomize
// steal victim order so concurrent thieves fan out instead of
// convoying on shard 0.
func (t *Thread) nextRand() uint32 {
	x := t.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	t.rng = x
	return x
}

// ID returns the thread's slot index.
func (t *Thread) ID() int { return t.id }

// stopRequested reports whether the thread must leave its scheduling
// loop.
func (t *Thread) stopRequested() bool {
	return t.shutdown.Load() || t.portsClosed.Load()
}

// suspendIfAsked parks the thread while its suspended flag is set. It
// returns once resumed or once a stop condition arrives.
func (t *Thread) suspendIfAsked() {
	if !t.suspended.Load() {
		return
	}
	t.mu.Lock()
	t.parked.Store(true)
	for t.suspended.Load() && !t.shutdown.Load() && !t.portsClosed.Load() {
		t.cond.Wait()
	}
	t.parked.Store(false)
	t.mu.Unlock()
}

// setSuspended asks the thread to park (true) or resume (false).
func (t *Thread) setSuspended(v bool) {
	t.mu.Lock()
	t.suspended.Store(v)
	t.mu.Unlock()
	t.cond.Broadcast()
}

// interrupt wakes the thread if parked so it can observe newly set stop
// flags.
func (t *Thread) interrupt() {
	t.mu.Lock()
	t.mu.Unlock() //nolint:staticcheck // empty critical section pairs the flag writes with cond.Wait
	t.cond.Broadcast()
}

// block sleeps for the current back-off delay. The paper uses a timed
// condition-variable wait capped at DELAY_THRESHOLD; a timer-based sleep
// is the closest Go equivalent and keeps suspended threads cheap.
func block(delay time.Duration) {
	time.Sleep(delay)
}
