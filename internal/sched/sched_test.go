package sched

import (
	"sync"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// runGraph builds the graph, runs every source to completion on its own
// goroutine, waits for the PE to drain, and returns the scheduler for
// inspection.
func runGraph(t *testing.T, g *graph.Graph, cfg Config, threads int) *Scheduler {
	t.Helper()
	s := New(g, cfg)
	s.Start(threads)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, n := range g.SourceNodes {
		wg.Add(1)
		go func(i int, n *graph.Node) {
			defer wg.Done()
			n.Op.(graph.Source).Run(s.SourceSubmitter(n, i), stop)
			s.SourceDone(n, i)
		}(i, n)
	}
	donech := make(chan struct{})
	go func() { s.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(30 * time.Second):
		t.Fatal("scheduler did not drain within 30s")
	}
	close(stop)
	wg.Wait()
	return s
}

// newOrderSink returns a sink that appends each tuple's first payload
// word to *seen under mu.
func newOrderSink(mu *sync.Mutex, seen *[]uint64) *ops.Sink {
	return &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		mu.Lock()
		*seen = append(*seen, tp.Words[0])
		mu.Unlock()
	}}
}

// pipelineGraph returns Src -> W×depth -> Snk with a bounded generator.
func pipelineGraph(t *testing.T, depth int, limit uint64, snk *ops.Sink) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: limit}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		n := b.AddNode(&ops.Worker{}, 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(prev, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPipelineDeliversAll(t *testing.T) {
	const n = 20000
	snk := &ops.Sink{}
	g := pipelineGraph(t, 10, n, snk)
	s := runGraph(t, g, Config{MaxThreads: 4}, 2)
	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d tuples, want %d", got, n)
	}
	if got := s.SinkDelivered(); got != n {
		t.Fatalf("SinkDelivered = %d, want %d", got, n)
	}
	// Every tuple is executed once per operator: 10 workers + 1 sink.
	if got, want := s.Executed(), uint64(n*11); got != want {
		t.Fatalf("Executed = %d, want %d", got, want)
	}
}

func TestPipelinePreservesOrder(t *testing.T) {
	const n = 20000
	var mu sync.Mutex
	var seen []uint64
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		mu.Lock()
		seen = append(seen, tp.Words[0])
		mu.Unlock()
	}}
	g := pipelineGraph(t, 20, n, snk)
	runGraph(t, g, Config{MaxThreads: 8, QueueCap: 16}, 4)
	if len(seen) != n {
		t.Fatalf("saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
}

func TestDataParallelDeliversAll(t *testing.T) {
	const n = 20000
	const width = 32
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	split := b.AddNode(&ops.RoundRobinSplit{Width: width}, 1, width)
	b.Connect(src, 0, split, 0)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	for w := 0; w < width; w++ {
		wk := b.AddNode(&ops.Worker{}, 1, 1)
		b.Connect(split, w, wk, 0)
		b.Connect(wk, 0, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runGraph(t, g, Config{MaxThreads: 4, QueueCap: 16}, 3)
	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d tuples, want %d", got, n)
	}
	_ = s
}

// TestPerStreamOrderWithFanIn verifies the formal ordering requirement
// with two producers fanning into one sink port: each producer's tuples
// must arrive in that producer's submission order.
func TestPerStreamOrderWithFanIn(t *testing.T) {
	const n = 5000
	b := graph.NewBuilder()
	mk := func(tag uint64) int {
		return b.AddNode(&ops.Generator{Limit: n, Payload: func(i uint64) tuple.Tuple {
			return tuple.NewData(tag, i)
		}}, 0, 1)
	}
	s0, s1 := mk(0), mk(1)
	var mu sync.Mutex
	last := map[uint64]int64{0: -1, 1: -1}
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		mu.Lock()
		defer mu.Unlock()
		tag, i := tp.Words[0], int64(tp.Words[1])
		if i <= last[tag] {
			t.Errorf("producer %d: tuple %d arrived after %d", tag, i, last[tag])
		}
		last[tag] = i
	}}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(s0, 0, sn, 0)
	b.Connect(s1, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runGraph(t, g, Config{MaxThreads: 4, QueueCap: 8}, 2)
	if got := snk.Count(); got != 2*n {
		t.Fatalf("sink saw %d tuples, want %d", got, 2*n)
	}
}

// TestFanOutDuplicates verifies that a stream with two subscribers
// delivers every tuple to both, in order.
func TestFanOutDuplicates(t *testing.T) {
	const n = 5000
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	var sinks [2]*ops.Sink
	for i := range sinks {
		sinks[i] = &ops.Sink{}
		sn := b.AddNode(sinks[i], 1, 0)
		b.Connect(src, 0, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runGraph(t, g, Config{MaxThreads: 4}, 2)
	for i, s := range sinks {
		if got := s.Count(); got != n {
			t.Fatalf("sink %d saw %d tuples, want %d", i, got, n)
		}
	}
}

// TestTinyQueuesForceReschedule shrinks queues so producers constantly
// hit the reSchedule path, and checks nothing is lost or reordered.
func TestTinyQueuesForceReschedule(t *testing.T) {
	const n = 10000
	var mu sync.Mutex
	var seen []uint64
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		mu.Lock()
		seen = append(seen, tp.Words[0])
		mu.Unlock()
	}}
	g := pipelineGraph(t, 50, n, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, QueueCap: 2}, 2)
	if len(seen) != n {
		t.Fatalf("saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("position %d: tuple %d out of order", i, v)
		}
	}
	if s.Reschedules() == 0 {
		t.Fatal("expected reSchedule path to be exercised with capacity-2 queues")
	}
}

func TestSingleThreadLevel(t *testing.T) {
	const n = 5000
	snk := &ops.Sink{}
	g := pipelineGraph(t, 10, n, snk)
	runGraph(t, g, Config{MaxThreads: 2}, 1)
	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d tuples, want %d", got, n)
	}
}

func TestSetLevelClampsAndReports(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 2, 1, snk)
	s := New(g, Config{MaxThreads: 4})
	if got := s.SetLevel(0); got != 1 {
		t.Fatalf("SetLevel(0) = %d, want 1", got)
	}
	if got := s.SetLevel(99); got != 4 {
		t.Fatalf("SetLevel(99) = %d, want 4", got)
	}
	if got := s.Level(); got != 4 {
		t.Fatalf("Level = %d, want 4", got)
	}
	s.Shutdown()
}

func TestMinLevelRule(t *testing.T) {
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 1}, 0, 3)
	j := b.AddNode(&ops.Custom{}, 3, 0)
	for i := 0; i < 3; i++ {
		b.Connect(src, i, j, i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxThreads: 8})
	if got := s.MinLevel(); got != 4 {
		t.Fatalf("MinLevel = %d, want 4 (max input ports 3 + 1)", got)
	}
	s.Shutdown()
}

// TestSuspendResume checks that lowering the level parks threads (they
// report as effectively suspended) and that raising it again resumes
// processing.
func TestSuspendResume(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 5, 0 /* unbounded */, snk)
	s := New(g, Config{MaxThreads: 4})
	s.Start(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	n := g.SourceNodes[0]
	wg.Add(1)
	go func() {
		defer wg.Done()
		n.Op.(graph.Source).Run(s.SourceSubmitter(n, 0), stop)
		s.SourceDone(n, 0)
	}()

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", desc)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("tuples to flow", func() bool { return snk.Count() > 100 })

	s.SetLevel(1)
	waitFor("suspensions to take effect", s.SuspensionsEffective)

	before := snk.Count()
	s.SetLevel(4)
	waitFor("processing to resume", func() bool { return snk.Count() > before+100 })

	close(stop)
	wg.Wait()
	s.Wait()
	if !s.SuspensionsEffective() {
		t.Fatal("SuspensionsEffective should hold after drain")
	}
}

// TestShutdownWithoutDrain verifies Shutdown stops threads even while
// tuples are still flowing.
func TestShutdownWithoutDrain(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 5, 0, snk)
	s := New(g, Config{MaxThreads: 4})
	s.Start(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	n := g.SourceNodes[0]
	wg.Add(1)
	go func() {
		defer wg.Done()
		n.Op.(graph.Source).Run(s.SourceSubmitter(n, 0), stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for snk.Count() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("no tuples flowed")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop) // stop the source first, as the PE contract requires
	wg.Wait()
	done := make(chan struct{})
	go func() { s.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not complete")
	}
}

// TestFinalizerFlush verifies operators get a Finish callback when all
// their inputs close, and that flushed tuples still reach the sink.
type flushOp struct {
	ops.Custom
	flushes int
}

func (f *flushOp) Finish(out graph.Submitter) {
	f.flushes++
	out.Submit(tuple.NewData(999), 0)
}

func TestFinalizerFlush(t *testing.T) {
	const n = 100
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	fo := &flushOp{Custom: ops.Custom{Fn: func(out graph.Submitter, tp tuple.Tuple, _ int) {
		out.Submit(tp, 0)
	}}}
	fn := b.AddNode(fo, 1, 1)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(src, 0, fn, 0)
	b.Connect(fn, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runGraph(t, g, Config{MaxThreads: 2}, 1)
	if fo.flushes != 1 {
		t.Fatalf("Finish called %d times, want 1", fo.flushes)
	}
	if got := snk.Count(); got != n+1 {
		t.Fatalf("sink saw %d tuples, want %d (including flushed)", got, n+1)
	}
}

// TestWindowPunctuationForwarded verifies window marks traverse the graph
// and are observable by Puncts implementers.
type punctObserver struct {
	ops.Custom
	mu      sync.Mutex
	windows int
}

func (p *punctObserver) OnPunct(_ graph.Submitter, k tuple.Kind, _ int) {
	if k == tuple.WindowMark {
		p.mu.Lock()
		p.windows++
		p.mu.Unlock()
	}
}

type windowSource struct {
	n int
}

func (w *windowSource) Name() string                              { return "winSrc" }
func (w *windowSource) Process(graph.Submitter, tuple.Tuple, int) {}
func (w *windowSource) Run(out graph.Submitter, stop <-chan struct{}) {
	for i := 0; i < w.n; i++ {
		out.Submit(tuple.NewData(uint64(i)), 0)
		out.Submit(tuple.Window(), 0)
	}
}

func TestWindowPunctuationForwarded(t *testing.T) {
	const n = 50
	b := graph.NewBuilder()
	src := b.AddNode(&windowSource{n: n}, 0, 1)
	po := &punctObserver{Custom: ops.Custom{Fn: func(out graph.Submitter, tp tuple.Tuple, _ int) {
		out.Submit(tp, 0)
	}}}
	mid := b.AddNode(po, 1, 1)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(src, 0, mid, 0)
	b.Connect(mid, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runGraph(t, g, Config{MaxThreads: 2}, 1)
	po.mu.Lock()
	defer po.mu.Unlock()
	if po.windows != n {
		t.Fatalf("observed %d window punctuations, want %d", po.windows, n)
	}
	if got := snk.Count(); got != n {
		t.Fatalf("sink saw %d data tuples, want %d", got, n)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two QueueCap did not panic")
		}
	}()
	g := pipelineGraph(t, 1, 1, &ops.Sink{})
	New(g, Config{QueueCap: 3})
}

func TestStatsCountersAdvance(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 5, 2000, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, QueueCap: 4}, 3)
	if s.Executed() == 0 || s.SinkDelivered() == 0 {
		t.Fatal("counters did not advance")
	}
}
