package sched

import (
	"strings"
	"sync"
	"testing"
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// panicky forwards tuples but panics on selected sequence numbers,
// modeling an operator with a data-dependent bug.
type panicky struct {
	name    string
	panicOn func(word uint64) bool
}

func (p *panicky) Name() string { return p.name }

func (p *panicky) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if p.panicOn(t.Words[0]) {
		panic("boom: " + p.name)
	}
	out.Submit(t, 0)
}

// TestPanicQuarantineAndConservation: a repeatedly panicking operator is
// contained (the process survives), quarantined after the strike budget,
// and every generated tuple is either delivered or dead-lettered —
// while final punctuation still propagates past the quarantined node so
// the PE drains.
func TestPanicQuarantineAndConservation(t *testing.T) {
	const n = 5000
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	bad := b.AddNode(&panicky{name: "Bad", panicOn: func(w uint64) bool { return w%1000 == 0 }}, 1, 1)
	wk := b.AddNode(&ops.Worker{}, 1, 1)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(src, 0, bad, 0)
	b.Connect(bad, 0, wk, 0)
	b.Connect(wk, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runGraph(t, g, Config{MaxThreads: 4, QuarantineAfter: 3}, 2)

	fs := s.Faults()
	// Panics land on words 0, 1000, 2000; the third strike quarantines,
	// so words 2001…4999 are dead-lettered without execution.
	if fs.OpPanics != 3 {
		t.Errorf("OpPanics = %d, want 3", fs.OpPanics)
	}
	if fs.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", fs.Quarantines)
	}
	if !s.Quarantined(bad) {
		t.Error("panicking node not quarantined")
	}
	if got := snk.Count() + fs.DeadLetters; got != n {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d (conservation broken)",
			snk.Count(), fs.DeadLetters, got, n)
	}
	if snk.Count() == 0 {
		t.Error("sink saw nothing; containment swallowed the stream")
	}
	if lf := s.LastFault(); !strings.Contains(lf, "Bad") {
		t.Errorf("LastFault %q does not name the operator", lf)
	}
	_ = src
}

// TestChaosInjectedPanicConservation: with deterministic injected panics at
// every operator seam and quarantine effectively disabled, each fired
// panic dead-letters exactly one tuple: delivered + dead-lettered ==
// generated.
func TestChaosInjectedPanicConservation(t *testing.T) {
	const n = 20000
	inj := fault.New(fault.Config{Seed: 42, PanicRate: 0.01})
	snk := &ops.Sink{}
	g := pipelineGraph(t, 5, n, snk)
	s := runGraph(t, g, Config{MaxThreads: 4, Fault: inj, QuarantineAfter: 1 << 30}, 2)

	fs := s.Faults()
	if fs.OpPanics == 0 {
		t.Fatal("injector never fired over ~120k consultations")
	}
	if fs.OpPanics != fs.DeadLetters {
		t.Errorf("OpPanics %d != DeadLetters %d with quarantine disabled", fs.OpPanics, fs.DeadLetters)
	}
	if got := snk.Count() + fs.DeadLetters; got != n {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d", snk.Count(), fs.DeadLetters, got, n)
	}
	if fired := inj.Fired(fault.OpPanic); fired != fs.OpPanics {
		t.Errorf("injector fired %d, containment recovered %d", fired, fs.OpPanics)
	}
}

// blocker parks on a channel the first time it executes, simulating an
// operator wedged on an external dependency.
type blocker struct {
	release chan struct{}
	once    sync.Once
	entered chan struct{}
}

func (b *blocker) Name() string { return "Blocker" }

func (b *blocker) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	b.once.Do(func() {
		close(b.entered)
		<-b.release
	})
	out.Submit(t, 0)
}

// TestShutdownDeadlineNamesStuckThread: Shutdown with a thread wedged
// inside operator code returns within the deadline, naming the stuck
// thread and attaching a goroutine dump — instead of hanging forever.
func TestShutdownDeadlineNamesStuckThread(t *testing.T) {
	blk := &blocker{release: make(chan struct{}), entered: make(chan struct{})}
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 1}, 0, 1)
	bn := b.AddNode(blk, 1, 1)
	sn := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(src, 0, bn, 0)
	b.Connect(bn, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxThreads: 1, ShutdownTimeout: 300 * time.Millisecond})
	s.Start(1)
	n := g.SourceNodes[0]
	go n.Op.(graph.Source).Run(s.SourceSubmitter(n, 0), make(chan struct{}))
	select {
	case <-blk.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("operator never executed")
	}
	start := time.Now()
	err = s.Shutdown()
	if err == nil {
		t.Fatal("Shutdown returned nil with a wedged thread")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Shutdown took %v; deadline did not bound it", elapsed)
	}
	if !strings.Contains(err.Error(), "threads [0]") {
		t.Errorf("error %.120q does not name the stuck thread", err.Error())
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Error("error carries no goroutine dump")
	}
	close(blk.release) // let the thread exit so the test leaks nothing
}

// TestWatchdogReportsStalledThread: a thread that sits inside one
// operator call past the stall threshold is reported by the watchdog
// while it is still stuck, and the report re-arms after progress.
//
// The generator limit stays below the queue capacity on purpose: a full
// queue would make the source thread execute the slow operator itself
// through reSchedule self-help, and the watchdog tracks scheduler
// threads, not source threads.
func TestWatchdogReportsStalledThread(t *testing.T) {
	const stall = 300 * time.Millisecond
	var mu sync.Mutex
	var reports []int
	slow := &ops.Custom{OpName: "Slow", Fn: func(out graph.Submitter, tp tuple.Tuple, _ int) {
		if tp.Words[0] == 0 {
			time.Sleep(stall)
		}
		out.Submit(tp, 0)
	}}
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: 8}, 0, 1)
	sl := b.AddNode(slow, 1, 1)
	sn := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(src, 0, sl, 0)
	b.Connect(sl, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runGraph(t, g, Config{
		MaxThreads:       2,
		WatchdogInterval: 10 * time.Millisecond,
		StallThreshold:   50 * time.Millisecond,
		OnStall: func(tid int, _ time.Duration) {
			mu.Lock()
			reports = append(reports, tid)
			mu.Unlock()
		},
	}, 1)
	if got := s.Faults().WatchdogStalls; got == 0 {
		t.Fatal("watchdog never reported the stalled thread")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 || reports[0] != 0 {
		t.Fatalf("OnStall reports %v, want thread 0 first", reports)
	}
}
