package sched

import (
	"streams/internal/graph"
	"streams/internal/trace"
	"streams/internal/tuple"
	"streams/internal/vm"
)

// Fused superinstruction dispatch (DESIGN.md "Operator bytecode &
// superinstruction fusion"). When every operator along a chainable run
// carries a bytecode program (vm.Programmed), the programs fuse at
// startup into one multi-segment program. A chain batch arriving at the
// run's entry port can then execute the whole run in a single dispatch
// loop per tuple: no per-operator Process calls, no Submitter hops, no
// per-operator batch flushes — values move between operators through VM
// slots. The per-operator chain path remains the fallback whenever any
// precondition fails, metered so the trade is observable.

// fusedRun is one precomputed run: the fused program, the ports it
// spans in chain order, and the owning node per segment (for panic
// attribution and per-node execution counters). The machine and
// emitter are reused across batches; exclusive use is guaranteed
// because executing the run requires holding every spanned port's
// consumer lock, including the entry port's.
type fusedRun struct {
	prog  *vm.Program
	ports []int32
	nodes []*graph.Node
	mach  vm.Machine
	emit  fusedEmitter
	// vec is the vectorized plan for prog, nil when the program is not
	// vectorizable (or vectorization is disabled); bm executes it.
	vec *vm.VecProgram
	bm  vm.BatchMachine
}

// fusedEmitter adapts the last node's execution context to vm.Emitter:
// final-segment emissions submit on output port 0, flowing through the
// normal routing, sequencing and coalescing machinery.
type fusedEmitter struct{ ec *ctx }

// Emit implements vm.Emitter.
func (e *fusedEmitter) Emit(t tuple.Tuple) { e.ec.Submit(t, 0) }

// buildFusedRuns precomputes the fused run (if any) rooted at every
// chainable port. A run extends while the current node has a program,
// exactly one output port with exactly one subscriber, and that
// subscriber port is itself chainable with a programmed operator —
// the same shape the inline chain path exploits, so fusion piggybacks
// on chaining's locking discipline. Run length is capped at the chain
// depth (but at least 2: a fused run shorter than 2 is pointless).
func (s *Scheduler) buildFusedRuns() {
	// Always allocated: tryChain indexes it unconditionally at commit.
	s.fusedRuns = make([]*fusedRun, len(s.g.Ports))
	if s.cfg.DisableVM || s.chainDepth <= 0 {
		return
	}
	progOf := func(n *graph.Node) *vm.Program {
		if pr, ok := n.Op.(vm.Programmed); ok {
			return pr.VMProgram()
		}
		return nil
	}
	nProgs := 0
	for _, n := range s.g.Nodes {
		if progOf(n) != nil {
			nProgs++
		}
	}
	if nProgs > 0 {
		s.vms.Programs.Add(0, uint64(nProgs))
	}
	maxLen := s.chainDepth
	if maxLen < 2 {
		maxLen = 2
	}
	for _, entry := range s.g.Ports {
		if !entry.Chainable {
			continue
		}
		var progs []*vm.Program
		var ports []int32
		var nodes []*graph.Node
		p := entry
		for len(progs) < maxLen {
			prog := progOf(p.Node)
			if prog == nil || p.Node.NumOut != 1 {
				break
			}
			progs = append(progs, prog)
			ports = append(ports, int32(p.ID))
			nodes = append(nodes, p.Node)
			dests := p.Node.Outs[0]
			if len(dests) != 1 {
				break
			}
			next := s.g.Ports[dests[0]]
			if !next.Chainable {
				break
			}
			p = next
		}
		if len(progs) < 2 {
			continue
		}
		fused, err := vm.Fuse(progs)
		if err != nil {
			continue
		}
		run := &fusedRun{prog: fused, ports: ports, nodes: nodes}
		if !s.cfg.DisableVec {
			// Vectorizability is decided once per fused program; a nil
			// plan (side-effectful builtins, loops, multi-emit
			// segments) keeps the run on the scalar dispatch loop.
			if vp, err := vm.PlanVec(fused); err == nil {
				run.vec = vp
			}
		}
		s.fusedRuns[entry.ID] = run
	}
}

// tryFused attempts to execute batch through the fused run rooted at
// its destination port. The caller (tryChain) already holds the entry
// port's consumer lock with its queue observed empty and the thread's
// chain budget covering one link. tryFused extends that commitment to
// the whole run — locks and empty queues on every interior port, the
// budget covering every link, no punctuation in the batch, no chaos
// injector (faults must flow through the per-operator seams), no
// quarantined node (dead-lettering is per-operator) — and declines to
// the per-operator path otherwise, charging the fall-back meter.
//
// The invariant argument is the chain path's, run-wide: all spanned
// ports' consumer locks are held with queues empty, so per-stream FIFO
// and exclusivity hold for every interior hop; interior streams have
// exactly one subscriber each, so skipping their sequence stamps is
// unobservable; and the lock order is strictly downstream, so no wait
// cycle can form (try-locks everywhere regardless).
func (s *Scheduler) tryFused(c *ctx, fr *fusedRun, port int32, batch []tuple.Tuple) bool {
	tid := c.tid
	thr := c.thr
	nSegs := len(fr.ports)
	if s.inj != nil || len(batch)*nSegs > thr.chainBudget {
		s.vms.Fallbacks.Add(tid, 1)
		return false
	}
	for i := range batch {
		if batch[i].Kind != tuple.Data {
			s.vms.Fallbacks.Add(tid, 1)
			return false
		}
	}
	if s.faultsSeen.Load() {
		for _, n := range fr.nodes {
			if s.quarantined[n.ID].Load() {
				s.vms.Fallbacks.Add(tid, 1)
				return false
			}
		}
	}
	locked := 0
	for _, pid := range fr.ports[1:] {
		q := s.queues[pid]
		if !q.ConsTryLock() {
			break
		}
		if q.Queue().Len() != 0 {
			q.ConsUnlock()
			break
		}
		locked++
	}
	if locked != nSegs-1 {
		for i := locked; i > 0; i-- {
			s.queues[fr.ports[i]].ConsUnlock()
		}
		s.vms.Fallbacks.Add(tid, 1)
		return false
	}

	// Committed: every precondition holds, every lock is held.
	s.vms.FusedRuns.Add(tid, 1)
	s.vms.FusedTuples.Add(tid, uint64(len(batch)))
	if s.tr.On() {
		s.tr.Emit(tid, trace.KindVMFuse, trace.PackPair(int32(nSegs), uint32(port)))
	}
	lastP := s.g.Ports[fr.ports[nSegs-1]]
	ec := s.acquireCtx(lastP, tid, thr, true)
	if ec.chainLeft = c.chainLeft - nSegs; ec.chainLeft < 0 {
		ec.chainLeft = 0
	}
	fr.emit.ec = ec
	var counts []uint64
	if fr.vec != nil && len(batch) >= fr.prog.VecMinBatch() && s.runVecBatch(fr, batch, tid, port) {
		s.vms.VecBatches.Add(tid, 1)
		s.vms.VecRows.Add(tid, uint64(len(batch)))
		if s.tr.On() {
			s.tr.Emit(tid, trace.KindVMVec, trace.PackPair(int32(len(batch)), uint32(port)))
		}
		counts = fr.bm.SegCounts()
	} else {
		// Scalar dispatch: no plan, batch under the program's cutoff,
		// or a panic during vectorized compute — which performed no
		// emissions, so replaying the whole batch tuple-at-a-time
		// reproduces scalar values, ordering, SegCounts and per-tuple
		// panic attribution exactly. The compute-panic case is also
		// metered separately (VecAborts, charged in vecCompute) so
		// recurring per-batch faults — which pay vec compute AND the
		// scalar replay — are distinguishable from benign declines.
		// Under the -novec ablation nothing is metered: the fall-back
		// counter measures the vectorizer's declines, not the
		// ablation's.
		if !s.cfg.DisableVec {
			s.vms.VecFallbacks.Add(tid, 1)
		}
		fr.mach.Reset(fr.prog)
		for i := range batch {
			s.runFusedTuple(fr, batch[i], tid)
		}
		counts = fr.mach.SegCounts()
	}
	var total uint64
	for i, n := range fr.nodes {
		s.perNode[n.ID].Add(counts[i])
		total += counts[i]
	}
	s.executed.Add(tid, total)
	if thr.chainBudget -= int(total); thr.chainBudget < 0 {
		thr.chainBudget = 0
	}
	thr.heartbeat.Add(1)
	// Flush the last node's submissions (possibly opening further chain
	// links past the run) before the interior locks release.
	ec.endCoalesce()
	for i := nSegs - 1; i > 0; i-- {
		s.queues[fr.ports[i]].ConsUnlock()
	}
	fr.emit.ec = nil
	s.releaseCtx(ec)
	return true
}

// runFusedTuple pushes one tuple through the fused program under panic
// containment: a panicking segment dead-letters the tuple and strikes
// the segment's operator — the same attribution the per-operator path
// gives — without unwinding the batch.
func (s *Scheduler) runFusedTuple(fr *fusedRun, t tuple.Tuple, tid int) {
	defer func() {
		if r := recover(); r != nil {
			s.containPanic(tid, fr.nodes[fr.mach.CurSeg()], r, true)
		}
	}()
	fr.mach.Run(fr.prog, t, &fr.emit)
}

// runVecBatch executes one batch through the vectorized plan. The two
// phases have different failure policies, set by BatchMachine's
// no-emissions-before-panic contract: a compute panic (division by
// zero, a builtin fault, speculation down an if-converted branch)
// aborts with the world untouched and returns false so tryFused
// replays the batch scalar; an emission panic is a downstream fault
// past the point of no return, contained against the faulting row's
// segment exactly as the scalar path contains it, and the emit loop
// resumes with the next row.
func (s *Scheduler) runVecBatch(fr *fusedRun, batch []tuple.Tuple, tid int, port int32) bool {
	if !s.vecCompute(fr, batch, tid, port) {
		return false
	}
	for !s.vecEmit(fr, tid) {
	}
	return true
}

// vecCompute is the replayable phase: decode, lane execution, filters.
// A recovered panic is metered (VecAborts) and traced (vm-vec-abort)
// before the scalar replay, so "this program never vectorizes" and
// "this batch aborted mid-compute and ran twice" stay distinguishable.
func (s *Scheduler) vecCompute(fr *fusedRun, batch []tuple.Tuple, tid int, port int32) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
			s.vms.VecAborts.Add(tid, 1)
			if s.tr.On() {
				s.tr.Emit(tid, trace.KindVMVecAbort, trace.PackPair(int32(len(batch)), uint32(port)))
			}
		}
	}()
	fr.bm.Reset(fr.vec)
	fr.bm.Run(batch)
	return true
}

// vecEmit delivers surviving rows; returns true when all are out.
func (s *Scheduler) vecEmit(fr *fusedRun, tid int) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			s.containPanic(tid, fr.nodes[fr.bm.CurSeg()], r, true)
		}
	}()
	fr.bm.EmitRows(&fr.emit)
	return true
}
