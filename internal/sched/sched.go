// Package sched implements the paper's primary contribution: the
// scalable, mostly lock-free dynamic operator scheduler from IBM Streams
// 4.2 (§4.1).
//
// The design in one paragraph: every operator input port owns a bounded
// single-producer/single-consumer lock-free tuple queue, guarded by
// producer and consumer try-locks (lfq.Enforcer). A free structure
// holds the ports that may have work. Scheduler threads pop a port from
// it, try-lock its consumer side, pop one tuple, and — having paid the
// cost of touching shared data — drain the rest of the queue before
// returning the port. Threads that fail to push into a full downstream
// queue never block and never go back to the free structure: they
// alternate between retrying the push and draining a bounded amount of
// the blocking queue themselves (reSchedule). Every stop condition a
// thread polls is thread-local, so the hot loop touches no shared cache
// lines.
//
// The free structure goes beyond the paper: by default it is sharded —
// each scheduler thread owns a bounded lock-free LIFO of port hints
// (lfq.WSDeque) that it pushes and pops without a single CAS, stealing
// from other shards in randomized order when its own runs dry and
// spilling to a retained global list on overflow. The paper's original
// single global Vyukov MPMC list survives behind the GlobalFreeList
// ablation flag (and implicitly under FreeListLIFO); see DESIGN.md's
// "Sharded free list" section for the ownership and elastic-resize
// protocol.
package sched

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/cpuutil"
	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/lfq"
	"streams/internal/metrics"
	"streams/internal/trace"
	"streams/internal/tuple"
)

// Config parametrizes a Scheduler. The zero value selects the defaults
// the product uses where the paper reports them.
type Config struct {
	// QueueCap is the per-input-port queue capacity; it must be a power
	// of two. Default 64.
	QueueCap int
	// ReschedLimit bounds how many tuples a pushing thread drains from a
	// full queue before retrying its push. Default QueueCap/4, the
	// product's setting (§4.1.4).
	ReschedLimit int
	// DelayThreshold caps the exponential back-off when no work is
	// found. Default 10ms, the product's setting (§4.1.3).
	DelayThreshold time.Duration
	// MaxThreads is the size of the scheduler thread table, the largest
	// thread level elasticity may reach. Default runtime.NumCPU().
	MaxThreads int
	// SourceThreads is the number of non-scheduler threads that will
	// submit tuples (source operator threads); it sizes the metric
	// shards. Default: the graph's source count.
	SourceThreads int
	// ShardCap is the capacity of each thread's local free-port cache
	// under the sharded free list; it must be a power of two. Default:
	// the global list's capacity, capped at 256 — large enough that
	// typical graphs never spill, small enough that a thread cannot pin
	// memory proportional to a huge port set.
	ShardCap int
	// RelaxWidth is the initial free-list relaxation width k: a
	// released port hint may land in any of k candidate locations — the
	// releaser's own shard (rank 0) or the inboxes of its k-1 nearest
	// neighbors by topology. 0 and 1 both mean tight (today's
	// own-shard-only ordering). SetRelax adjusts the width online; the
	// PE's adaptation loop drives it from the contention meters.
	RelaxWidth int
	// FairClaim routes contended port claims through the Enforcer's
	// ticket line: a producer that loses the port's producer try-lock
	// takes a ticket and waits its turn instead of joining the back-off
	// roulette, so oversubscribed threads acquire ports in
	// bounded-bypass FIFO order. Default off pending benchmarks (see
	// BENCH_adaptive.json); full queues still fall into reSchedule
	// self-help either way.
	FairClaim bool
	// FlatTopo disables sysfs topology detection for the steal-victim
	// ordering: every victim is treated as equally remote, recovering
	// the flat randomized sweep (the -flat-topo ablation).
	FlatTopo bool
	// Topology injects an explicit CPU topology for the steal-victim
	// ordering (tests and the simulator). Nil selects sysfs detection,
	// or a flat topology under FlatTopo.
	Topology *cpuutil.Topology

	// ChainDepth bounds how many consecutive downstream operators one
	// thread may execute inline through the chain path before falling
	// back to the queue: when a coalesced batch flushes to a chainable
	// port (graph.InPort.Chainable) whose consumer try-lock this thread
	// wins and whose queue is empty, the thread runs the downstream
	// operator directly — no push, no free-list hint cycle, no
	// cross-thread wake. Default 8; negative disables chaining (same as
	// DisableChain).
	ChainDepth int
	// ChainTupleBudget bounds how many tuples one top-level drain batch
	// may move through inline chain links before the remainder falls
	// back to the queues, so operators that amplify their input cannot
	// extend a drain unboundedly and elastic suspension stays prompt.
	// Default ChainDepth × the batch size (min(QueueCap, 32)) — exactly
	// enough for a full batch to chain to full depth.
	ChainTupleBudget int
	// DisableChain turns the inline chain-execution path off entirely
	// (the -nochain ablation): every flush goes through the queues as in
	// the paper's original design.
	DisableChain bool
	// DisableVM turns fused superinstruction dispatch off (the -novm
	// ablation): chain batches always execute through the per-operator
	// path even when every operator along the run carries a bytecode
	// program.
	DisableVM bool
	// DisableVec turns vectorized batch-at-a-time execution off (the
	// -novec ablation): fused runs keep their superinstruction form
	// but always dispatch the scalar per-tuple loop.
	DisableVec bool

	// Fault optionally installs a chaos injector at the scheduler's
	// seams (operator execution, queue pushes). Nil — the default —
	// keeps the seams at a nil-pointer check; see internal/fault.
	Fault *fault.Injector
	// QuarantineAfter is how many recovered panics an operator may
	// accumulate before the scheduler quarantines it: data tuples routed
	// to a quarantined operator are dead-lettered (counted, dropped)
	// instead of executed, while punctuation continues to propagate so
	// the graph still drains. Default 3.
	QuarantineAfter int
	// ShutdownTimeout bounds how long Shutdown waits for scheduler
	// threads to exit before returning a diagnostic error naming the
	// stuck threads (with a goroutine dump). Default 60s; negative
	// waits forever (the pre-containment behavior).
	ShutdownTimeout time.Duration
	// WatchdogInterval enables the scheduler watchdog: every interval it
	// checks each running thread's heartbeat epoch and reports threads
	// stuck inside operator code without progress for longer than
	// StallThreshold. Zero (the default) disables the watchdog.
	WatchdogInterval time.Duration
	// StallThreshold is how long a thread may go without a heartbeat
	// before the watchdog reports it. Default 2×WatchdogInterval.
	StallThreshold time.Duration
	// OnStall, if set, observes every watchdog report (thread ID and how
	// long it has been stuck). Reports are also counted in Faults.
	OnStall func(tid int, stuckFor time.Duration)

	// Tracer, if set, records scheduler decisions (port acquires and
	// releases, steals, spills, parks, reschedules, quarantines) into
	// per-thread rings. Size it with TraceRings so every writer — each
	// scheduler thread slot, each source thread, and the elasticity
	// controller — owns a ring; New labels the rings to match. Nil (the
	// default) keeps every seam at a nil check.
	Tracer *trace.Tracer
	// Latency, if set, turns on end-to-end latency measurement: tuples
	// are stamped as source threads submit them and the elapsed time is
	// charged to this histogram as each stamped tuple drains at a sink
	// operator. Nil (the default) skips both seams.
	Latency *metrics.Histogram

	// The remaining options reverse individual design decisions from the
	// paper so the benchmark suite can measure what each one buys
	// (DESIGN.md lists the ablations). All default to the paper's
	// choices (false).

	// RetryOnContention retries contended free-list operations instead
	// of abandoning the search (§4.1.3 argues abandoning is better).
	RetryOnContention bool
	// BlockOnFullQueue makes producers wait for queue space instead of
	// draining the blocking queue themselves; a bounded escape hatch
	// falls back to reSchedule so the ablation cannot deadlock the PE
	// (§4.1.4 explains why self-help is the design). Blocking producers
	// only stay unwedged when the free structure rotates threads across
	// ports so every queue stays shallow — the approximately-LRU service
	// order of the global FIFO list. The sharded list's LIFO affinity
	// instead lets downstream queues run deep, and once every thread is
	// a blocked producer no thread is searching (or stealing) at all,
	// leaving only the escape hatch to crawl the pipeline forward.
	// Setting it therefore implies GlobalFreeList.
	BlockOnFullQueue bool
	// SharedStopFlags polls one shared set of stop flags from every
	// thread instead of per-thread copies (§4.1.2 argues the shared
	// cache line limits scalability).
	SharedStopFlags bool
	// FreeListLIFO replaces the FIFO free list (approximately LRU
	// scheduling, §4.1.5) with a most-recently-used stack. The order
	// ablation is defined on the single global list, so setting it
	// implies GlobalFreeList.
	FreeListLIFO bool
	// GlobalFreeList routes every free-port handoff through the single
	// global list — the paper's original design — instead of the
	// sharded per-thread caches with work stealing. This is the
	// paper-faithful configuration for the Fig. 9–11 reproductions and
	// the free-list ablation benchmarks.
	GlobalFreeList bool
}

func (c Config) withDefaults(g *graph.Graph) Config {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.QueueCap < 1 || c.QueueCap&(c.QueueCap-1) != 0 {
		panic(fmt.Sprintf("sched: QueueCap %d is not a positive power of two", c.QueueCap))
	}
	if c.ReschedLimit == 0 {
		c.ReschedLimit = c.QueueCap / 4
	}
	if c.ReschedLimit < 1 {
		c.ReschedLimit = 1
	}
	if c.DelayThreshold == 0 {
		c.DelayThreshold = 10 * time.Millisecond
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = runtime.NumCPU()
	}
	if c.SourceThreads == 0 {
		c.SourceThreads = len(g.SourceNodes)
	}
	if c.ShardCap != 0 && (c.ShardCap < 1 || c.ShardCap&(c.ShardCap-1) != 0) {
		panic(fmt.Sprintf("sched: ShardCap %d is not a positive power of two", c.ShardCap))
	}
	if c.ChainDepth == 0 {
		c.ChainDepth = 8
	}
	if c.ChainDepth < 0 || c.DisableChain {
		c.DisableChain = true
		c.ChainDepth = 0
	}
	if c.ChainTupleBudget == 0 {
		bc := c.QueueCap
		if bc > 32 {
			bc = 32
		}
		c.ChainTupleBudget = c.ChainDepth * bc
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	if c.ShutdownTimeout == 0 {
		c.ShutdownTimeout = 60 * time.Second
	}
	if c.StallThreshold == 0 {
		c.StallThreshold = 2 * c.WatchdogInterval
	}
	if c.RelaxWidth < 0 {
		panic(fmt.Sprintf("sched: RelaxWidth %d is negative", c.RelaxWidth))
	}
	if c.RelaxWidth == 0 {
		c.RelaxWidth = 1
	}
	if c.RelaxWidth > c.MaxThreads {
		c.RelaxWidth = c.MaxThreads
	}
	return c
}

// freeList abstracts the global free list so the FreeListLIFO ablation
// can substitute a stack for the FIFO queue.
type freeList interface {
	Push(v int32) bool
	PushEx(v int32) lfq.PushResult
	Pop(v *int32) bool
}

// Scheduler executes a stream graph with a dynamically sized pool of
// threads, any of which can execute any operator input port.
type Scheduler struct {
	g   *graph.Graph
	cfg Config

	// queues is the paper's queuesTable: written once at initialization,
	// read-only afterwards, indexed by global input-port ID.
	queues []*lfq.Enforcer[tuple.Tuple]
	// freePorts is the global free list of input-port IDs: FIFO by
	// default (approximately LRU scheduling), a LIFO stack under the
	// FreeListLIFO ablation. Under the sharded design it holds the
	// initial port population, shard spills, and the hints flushed by
	// suspending or exiting threads.
	freePorts freeList
	// shards are the per-thread free-port caches (nil entries never
	// exist; one deque per thread-table slot). Only the owning thread
	// pushes to or pops the bottom of its shard; any thread may steal.
	// Unused when useShards is false.
	shards []*lfq.WSDeque
	// inboxes are the per-thread lateral hint rings for the k-relaxed
	// free list: when the relaxation width exceeds 1, a releasing
	// thread may push a hint into a near neighbor's inbox instead of
	// its own shard. Any thread may push to or pop from any inbox
	// (they are MPMC), which is what makes shrinking the width safe:
	// owners drain their own inbox on every find, thieves sweep all
	// inboxes, so no hint is ever reachable only through a width that
	// no longer exists. Unused when useShards is false.
	inboxes []*lfq.MPMC[int32]
	// inboxCap is each inbox's capacity (the shard capacity), kept for
	// bounding inbox drains against concurrent lateral pushes.
	inboxCap int
	// relax is the current relaxation width k in [1, MaxThreads],
	// written by SetRelax (the PE's adaptation loop) and read by every
	// release; 1 = tight own-shard ordering.
	relax atomic.Int32
	// topo orders steal victims nearest-first (SMT sibling → LLC peer →
	// remote); each Thread caches its own victim order at construction.
	topo *cpuutil.Topology
	// useShards selects the sharded free list: the default, reversed by
	// the GlobalFreeList ablation (and by FreeListLIFO and
	// BlockOnFullQueue, which are only well-defined on the single
	// global list — see their Config docs).
	useShards bool

	// seqs[node][outPort] stamps stream sequence numbers for the
	// ordering tests. When several threads execute one multi-input-port
	// operator concurrently the stamp order is advisory; for single-
	// input-port operators it is exact.
	seqs [][]atomic.Uint64

	// Final-punctuation accounting.
	remainingProducers []atomic.Int32 // per port: finals still expected
	nodeOpenIns        []atomic.Int32 // per node: input ports still open
	portClosed         []atomic.Bool  // per port: final processed
	openPorts          atomic.Int32   // ports not yet closed
	sourcesLeft        atomic.Int32   // source nodes still running

	// Global fall-back stop flags for threads the scheduler does not
	// control (operator/source threads executing reSchedule).
	shutdownGlobal    atomic.Bool
	portsClosedGlobal atomic.Bool

	threads []*Thread
	started []bool // whether threads[i]'s goroutine exists
	level   int    // current number of unsuspended threads
	levelMu sync.Mutex
	wg      sync.WaitGroup

	// batchCap is the size of every tuple batch buffer:
	// min(QueueCap, 32). Batches amortize the queue-index and metric
	// synchronization over many tuples; 32 bounds both the extra work a
	// thread commits to before noticing suspension and the submit-side
	// latency a coalesced tuple can accrue.
	batchCap int
	// bufPool recycles drain and coalescing buffers for contexts that
	// cannot use the per-thread batch buffer: reSchedule (which nests
	// inside an executing batch) and source threads (which have no
	// Thread).
	bufPool sync.Pool
	// ctxPool recycles execution contexts for thread-less producers
	// (source threads draining through reSchedule); scheduler threads use
	// their own free list instead (Thread.ctxCache).
	ctxPool sync.Pool

	// Metrics. executed counts every tuple processed by every operator —
	// the PE-wide throughput the elasticity algorithm consumes (§5.4
	// notes Fig. 11 reports exactly this). perNode tracks per-operator
	// execution counts, the product's per-operator metrics.
	executed    *metrics.Counter
	sinkDeliver *metrics.Counter // tuples that reached sink operators
	reschedules *metrics.Counter
	findFails   *metrics.Counter
	contention  *metrics.Contention // free-list push/pop failures, steals, spills
	perNode     []atomic.Uint64

	// Per-port flow meters for the observability layer (internal/obs):
	// how often a push to this port's queue fell into reSchedule and how
	// long producers spent inside it. Charged only on the congestion
	// path — the fast push pays nothing — and read by SampleFlow.
	portResched   []atomic.Uint64
	portBlockedNs []atomic.Uint64

	// Inline chain execution (DESIGN.md "Inline chain execution").
	// chainable caches graph.InPort.Chainable per port ID so the flush
	// hot path pays one slice load for the static half of the chain
	// test; chainDepth and chainBudget0 are the resolved budgets (both 0
	// when chaining is disabled); chains holds the sharded meters.
	chainable    []bool
	chainDepth   int
	chainBudget0 int
	chains       *metrics.Chain

	// Fused superinstruction dispatch (fused.go). fusedRuns holds the
	// precomputed run per entry port (nil = none, including when
	// DisableVM or chaining is off); vms holds the sharded meters.
	fusedRuns []*fusedRun
	vms       *metrics.VM

	// Fault containment. inj is the chaos injector (nil when disabled —
	// the seams then cost a nil check). faultsSeen flips true on the
	// first recovered panic and gates the per-span quarantine lookup, so
	// fault-free runs never read the quarantine table. strikes and
	// quarantined are per-node; faults holds the sharded meters.
	inj         *fault.Injector
	tr          *trace.Tracer      // nil when tracing is off
	latency     *metrics.Histogram // nil when latency measurement is off
	claimLat    *metrics.Histogram // fair-path port-claim wait times
	faults      *metrics.Faults
	faultsSeen  atomic.Bool
	strikes     []atomic.Int32
	quarantined []atomic.Bool
	lastFault   atomic.Value // string: most recent panic/stall description

	// Watchdog bookkeeping: the goroutine is started with the first
	// scheduler thread (when WatchdogInterval > 0) and stopped by
	// Shutdown or the PE draining.
	watchdogOnce sync.Once
	watchdogStop chan struct{}
	watchdogWG   sync.WaitGroup

	done chan struct{} // closed when portsClosed goes global
}

// New builds a scheduler for the graph. Call Start (or SetLevel) to
// launch threads, and use SourceSubmitter/SourceDone to connect source
// operator threads.
func New(g *graph.Graph, cfg Config) *Scheduler {
	cfg = cfg.withDefaults(g)
	nPorts := len(g.Ports)
	listCap := 1
	for listCap < nPorts+1 {
		listCap *= 2
	}
	var fl freeList
	if cfg.FreeListLIFO {
		fl = lfq.NewStack[int32](listCap)
	} else {
		fl = lfq.NewMPMC[int32](listCap)
	}
	shardCap := cfg.ShardCap
	if shardCap == 0 {
		shardCap = listCap
		if shardCap > 256 {
			shardCap = 256
		}
	}
	batchCap := cfg.QueueCap
	if batchCap > 32 {
		batchCap = 32
	}
	s := &Scheduler{
		g:                  g,
		cfg:                cfg,
		useShards:          !cfg.GlobalFreeList && !cfg.FreeListLIFO && !cfg.BlockOnFullQueue,
		batchCap:           batchCap,
		queues:             make([]*lfq.Enforcer[tuple.Tuple], nPorts),
		freePorts:          fl,
		seqs:               make([][]atomic.Uint64, len(g.Nodes)),
		remainingProducers: make([]atomic.Int32, nPorts),
		nodeOpenIns:        make([]atomic.Int32, len(g.Nodes)),
		portClosed:         make([]atomic.Bool, nPorts),
		threads:            make([]*Thread, cfg.MaxThreads),
		started:            make([]bool, cfg.MaxThreads),
		executed:           metrics.NewCounter(cfg.MaxThreads + cfg.SourceThreads),
		sinkDeliver:        metrics.NewCounter(cfg.MaxThreads + cfg.SourceThreads),
		reschedules:        metrics.NewCounter(cfg.MaxThreads + cfg.SourceThreads),
		findFails:          metrics.NewCounter(cfg.MaxThreads + cfg.SourceThreads),
		contention:         metrics.NewContention(cfg.MaxThreads + cfg.SourceThreads),
		perNode:            make([]atomic.Uint64, len(g.Nodes)),
		portResched:        make([]atomic.Uint64, nPorts),
		portBlockedNs:      make([]atomic.Uint64, nPorts),
		chainable:          make([]bool, nPorts),
		chainDepth:         cfg.ChainDepth,
		chainBudget0:       cfg.ChainTupleBudget,
		chains:             metrics.NewChain(cfg.MaxThreads + cfg.SourceThreads),
		vms:                metrics.NewVM(cfg.MaxThreads + cfg.SourceThreads),
		inj:                cfg.Fault,
		tr:                 cfg.Tracer,
		latency:            cfg.Latency,
		claimLat:           metrics.NewHistogram(cfg.MaxThreads + cfg.SourceThreads),
		faults:             metrics.NewFaults(cfg.MaxThreads + cfg.SourceThreads),
		strikes:            make([]atomic.Int32, len(g.Nodes)),
		quarantined:        make([]atomic.Bool, len(g.Nodes)),
		watchdogStop:       make(chan struct{}),
		done:               make(chan struct{}),
	}
	s.bufPool.New = func() any {
		b := make([]tuple.Tuple, batchCap)
		return &b
	}
	s.relax.Store(int32(cfg.RelaxWidth))
	if s.useShards {
		s.shards = make([]*lfq.WSDeque, cfg.MaxThreads)
		s.inboxes = make([]*lfq.MPMC[int32], cfg.MaxThreads)
		s.inboxCap = shardCap
		s.topo = cfg.Topology
		if s.topo == nil {
			if cfg.FlatTopo {
				s.topo = cpuutil.FlatTopology(cfg.MaxThreads)
			} else {
				s.topo = cpuutil.DetectTopology()
			}
		}
	}
	for i := range s.threads {
		s.threads[i] = newThread(i, batchCap)
		if s.useShards {
			s.shards[i] = lfq.NewWSDeque(shardCap)
			s.threads[i].shard = s.shards[i]
			s.inboxes[i] = lfq.NewMPMC[int32](shardCap)
			s.threads[i].inbox = s.inboxes[i]
			s.threads[i].victims, s.threads[i].vDist = s.topo.VictimOrder(i, cfg.MaxThreads)
		}
	}
	for _, p := range g.Ports {
		s.queues[p.ID] = lfq.NewEnforcer[tuple.Tuple](cfg.QueueCap)
		s.chainable[p.ID] = p.Chainable
		s.remainingProducers[p.ID].Store(int32(p.Producers))
		if !s.freePorts.Push(int32(p.ID)) {
			panic("sched: free list sized too small") // unreachable: listCap > nPorts
		}
	}
	for _, n := range g.Nodes {
		s.seqs[n.ID] = make([]atomic.Uint64, n.NumOut)
		s.nodeOpenIns[n.ID].Store(int32(n.NumIn))
	}
	s.openPorts.Store(int32(nPorts))
	s.sourcesLeft.Store(int32(len(g.SourceNodes)))
	s.buildFusedRuns()
	s.labelTraceRings()
	if nPorts == 0 {
		s.beginPortsClosed()
	}
	return s
}

// TraceRings returns how many tracer rings a scheduler built from cfg
// needs under the single-writer convention: one per scheduler thread
// slot (rings 0..MaxThreads-1), one per source thread
// (MaxThreads..MaxThreads+SourceThreads-1), and one final ring for the
// elasticity controller.
func TraceRings(cfg Config, g *graph.Graph) int {
	cfg = cfg.withDefaults(g)
	return cfg.MaxThreads + cfg.SourceThreads + 1
}

// labelTraceRings names the tracer's rings after the writer convention
// so the trace_event export shows meaningful thread names. A tracer
// with fewer rings than writers just loses the overflow events.
func (s *Scheduler) labelTraceRings() {
	if s.tr == nil {
		return
	}
	for i := 0; i < s.cfg.MaxThreads; i++ {
		s.tr.SetLabel(i, fmt.Sprintf("sched-%d", i))
	}
	for i := 0; i < s.cfg.SourceThreads; i++ {
		s.tr.SetLabel(s.cfg.MaxThreads+i, fmt.Sprintf("source-%d", i))
	}
	if s.tr.Rings() == s.cfg.MaxThreads+s.cfg.SourceThreads+1 {
		s.tr.SetLabel(s.tr.Rings()-1, "elastic")
	}
}

// MinLevel returns the smallest safe thread level for the graph: one
// more than the maximum number of input ports on any operator, the
// paper's deadlock-avoidance rule (§4.2.3).
func (s *Scheduler) MinLevel() int { return s.g.MaxInPorts() + 1 }

// MaxLevel returns the configured thread-table size.
func (s *Scheduler) MaxLevel() int { return s.cfg.MaxThreads }

// Done is closed when every input port has processed its final
// punctuation.
func (s *Scheduler) Done() <-chan struct{} { return s.done }

// Executed returns the total number of tuples processed across all
// operators.
func (s *Scheduler) Executed() uint64 { return s.executed.Total() }

// SinkDelivered returns the number of tuples delivered to operators with
// no output ports (the end-to-end application throughput of §5.1–5.3).
func (s *Scheduler) SinkDelivered() uint64 { return s.sinkDeliver.Total() }

// Reschedules returns how many times a full-queue push fell into the
// reSchedule self-help path.
func (s *Scheduler) Reschedules() uint64 { return s.reschedules.Total() }

// FindFailures returns how many findWorkNonBlocking calls found nothing.
func (s *Scheduler) FindFailures() uint64 { return s.findFails.Total() }

// Contention returns a snapshot of the free-list contention meters:
// global push/pop failures, shard steals and steal misses, and shard
// overflow spills. All zero except PushFail/PopFail under the
// GlobalFreeList and FreeListLIFO ablations.
func (s *Scheduler) Contention() metrics.ContentionSnapshot { return s.contention.Snapshot() }

// Faults returns a snapshot of the fault-containment meters: recovered
// operator panics, dead-lettered tuples, quarantined operators, and
// watchdog stall reports. All zero on a healthy PE.
func (s *Scheduler) Faults() metrics.FaultsSnapshot { return s.faults.Snapshot() }

// Chains returns a snapshot of the inline chain-execution meters:
// chain starts, links and tuples moved without a queue hand-off, and
// the per-reason fallback counts. All zero under DisableChain.
func (s *Scheduler) Chains() metrics.ChainSnapshot { return s.chains.Snapshot() }

// Stats is a single-pass snapshot of every scheduler meter. Panels and
// endpoints that present more than one of these values together must
// read them through Stats rather than through the individual accessors
// in sequence: the counters advance between separate calls, so derived
// ratios (dead-letters versus delivered, steals per find) would come
// out torn.
type Stats struct {
	// Executed counts tuples processed across all operators.
	Executed uint64
	// SinkDelivered counts tuples delivered to operators with no outputs.
	SinkDelivered uint64
	// Reschedules counts full-queue pushes that fell into self-help.
	Reschedules uint64
	// FindFailures counts work searches that came up empty.
	FindFailures uint64
	// Contention snapshots the free-structure meters.
	Contention metrics.ContentionSnapshot
	// Faults snapshots the fault-containment meters.
	Faults metrics.FaultsSnapshot
	// Chain snapshots the inline chain-execution meters.
	Chain metrics.ChainSnapshot
	// VM snapshots the fused bytecode-dispatch meters.
	VM metrics.VMSnapshot
	// Relax is the relaxation width in effect when the snapshot was
	// taken (1 = tight own-shard ordering).
	Relax int
	// ClaimWait snapshots the fair-path port-claim wait histogram;
	// empty unless FairClaim claims actually waited in the ticket line.
	ClaimWait metrics.HistogramSnapshot
}

// Stats reads every meter in one pass (see the Stats type's contract).
func (s *Scheduler) Stats() Stats {
	return Stats{
		Executed:      s.executed.Total(),
		SinkDelivered: s.sinkDeliver.Total(),
		Reschedules:   s.reschedules.Total(),
		FindFailures:  s.findFails.Total(),
		Contention:    s.contention.Snapshot(),
		Faults:        s.faults.Snapshot(),
		Chain:         s.chains.Snapshot(),
		VM:            s.vms.Snapshot(),
		Relax:         int(s.relax.Load()),
		ClaimWait:     s.claimLat.Snapshot(),
	}
}

// Backlog returns the total tuple occupancy across every input-port
// queue — a racy but order-of-magnitude-faithful overload signal. The
// ingest front end polls it as its global admission gate: a backlog
// near the aggregate queue capacity means the runtime is saturated and
// best-effort traffic should be shed at the door instead of queued.
// O(ports); each Len is two atomic loads.
func (s *Scheduler) Backlog() int {
	total := 0
	for _, q := range s.queues {
		total += q.Queue().Len()
	}
	return total
}

// LastFault describes the most recent contained fault (a recovered
// panic or a watchdog stall report), or "" when none has occurred.
func (s *Scheduler) LastFault() string {
	if v, ok := s.lastFault.Load().(string); ok {
		return v
	}
	return ""
}

// Quarantined reports whether the node has been quarantined (for tests
// and diagnostics).
func (s *Scheduler) Quarantined(nodeID int) bool { return s.quarantined[nodeID].Load() }

// OperatorCounts returns per-operator execution counts keyed by operator
// name (the product's per-operator metrics). Nodes sharing a name (for
// example @parallel replicas given distinct names avoid this) have their
// counts summed.
func (s *Scheduler) OperatorCounts() map[string]uint64 {
	out := make(map[string]uint64, len(s.g.Nodes))
	for _, n := range s.g.Nodes {
		out[n.Op.Name()] += s.perNode[n.ID].Load()
	}
	return out
}

// Edge describes one input-port queue as a flow edge for the
// observability layer: which operator(s) feed the port, which operator
// consumes it, and the queue capacity the occupancy samples are
// measured against. Static for the life of the scheduler.
type Edge struct {
	// Port is the global input-port ID (the queue index).
	Port int `json:"port"`
	// From names the producer operator(s), "+"-joined under fan-in;
	// FromNodes lists their node IDs (attribution walks the topology
	// downstream through these).
	From      string `json:"from"`
	FromNodes []int  `json:"from_nodes"`
	// To names the consumer operator; ToNode is its node ID.
	To     string `json:"to"`
	ToNode int    `json:"to_node"`
	// Cap is the queue capacity.
	Cap int `json:"cap"`
}

// Edges returns one Edge per input port, in port-ID order.
func (s *Scheduler) Edges() []Edge {
	producers := make([][]string, len(s.g.Ports))
	producerIDs := make([][]int, len(s.g.Ports))
	for _, n := range s.g.Nodes {
		for _, dests := range n.Outs {
			for _, pid := range dests {
				name := n.Op.Name()
				seen := false
				for _, have := range producers[pid] {
					if have == name {
						seen = true
						break
					}
				}
				if !seen {
					producers[pid] = append(producers[pid], name)
					producerIDs[pid] = append(producerIDs[pid], n.ID)
				}
			}
		}
	}
	edges := make([]Edge, len(s.g.Ports))
	for _, p := range s.g.Ports {
		edges[p.ID] = Edge{
			Port:      p.ID,
			From:      strings.Join(producers[p.ID], "+"),
			FromNodes: producerIDs[p.ID],
			To:        p.Node.Op.Name(),
			ToNode:    p.Node.ID,
			Cap:       s.cfg.QueueCap,
		}
	}
	return edges
}

// NumPorts returns the number of input-port queues (the length
// SampleFlow's slices must have).
func (s *Scheduler) NumPorts() int { return len(s.queues) }

// NumNodes returns the number of operator nodes (the length
// NodeExecuted's slice must have).
func (s *Scheduler) NumNodes() int { return len(s.g.Nodes) }

// SampleFlow fills the per-port flow meters in one pass: current queue
// occupancy, cumulative reSchedule entries, and cumulative nanoseconds
// producers spent blocked inside reSchedule. Each slice must be
// NumPorts() long; a nil slice skips that meter. Racy by design, like
// Backlog: the values are an attribution signal, not an accounting
// truth. O(ports), allocation-free.
func (s *Scheduler) SampleFlow(depth []int, resched, blockedNs []uint64) {
	for i := range s.queues {
		if depth != nil {
			depth[i] = s.queues[i].Queue().Len()
		}
		if resched != nil {
			resched[i] = s.portResched[i].Load()
		}
		if blockedNs != nil {
			blockedNs[i] = s.portBlockedNs[i].Load()
		}
	}
}

// NodeExecuted fills per-node cumulative execution counts (tuples
// processed by each operator). out must be NumNodes() long.
// Allocation-free, for the observability sampler.
func (s *Scheduler) NodeExecuted(out []uint64) {
	for i := range s.perNode {
		out[i] = s.perNode[i].Load()
	}
}

// ctx carries the execution context of one thread while it runs operator
// code: which node is executing (for routing), which metric shard to
// charge, and which thread-local stop flags to consult. Non-scheduler
// threads (source operator threads) have thr == nil and fall back to the
// global flags, the paper's isFinished()/isSuspended() indirection
// (§4.1.4).
type ctx struct {
	s    *Scheduler
	node *graph.Node
	tid  int
	thr  *Thread

	// Submit-side coalescing. Contexts created by executeBatch set
	// coalesce; consecutive submissions to the same destination port then
	// accumulate and move with a single Enforcer.PushN. Source contexts
	// leave coalesce unset and push immediately: a source ctx lives for
	// the whole Run, so buffered tuples would have no flush point and
	// could be delayed arbitrarily long by a slow source.
	//
	// Coalescing activates lazily so single-submission operator
	// invocations (the overwhelmingly common case on a pipeline) pay one
	// tuple copy and no buffer traffic: the first submission is held
	// inline in pending; only a second consecutive submission to the
	// same port acquires a batch buffer. At most one of the buffer
	// (coalLen > 0) and pending (hasPending) is active at a time, and
	// pendPort is the destination of whichever it is.
	// stamp marks source-thread contexts when latency measurement is on:
	// each submitted data tuple is stamped with the wall-clock time so
	// the sink-drain seam can charge the end-to-end latency histogram.
	stamp bool

	coalesce   bool
	hasPending bool
	pendPort   int32
	coalLen    int
	pending    tuple.Tuple
	coal       []tuple.Tuple  // acquired on the 2nd consecutive same-port submit
	coalBuf    *[]tuple.Tuple // coal's pooled handle, re-pooled by endCoalesce

	// chainLeft is how many more inline chain links this frame's
	// flushes may open: Config.ChainDepth on a top-level drain frame,
	// parent-1 on chained frames, 0 on source and reSchedule frames
	// (which never chain). Checked by deliver before any dynamic chain
	// test, so disabled chaining costs one integer compare per flush.
	chainLeft int
	// one is scratch for delivering the lone pending tuple through the
	// same batched deliver path the coalesce buffer uses, without
	// allocating a slice.
	one [1]tuple.Tuple

	// nextFree chains recycled contexts on their thread's free list
	// (Thread.ctxCache); meaningful only between releaseCtx and the next
	// acquireCtx.
	nextFree *ctx
}

// Submit implements graph.Submitter.
func (c *ctx) Submit(t tuple.Tuple, outPort int) {
	node := c.node
	if outPort < 0 || outPort >= node.NumOut {
		panic(fmt.Sprintf("sched: operator %s submitted to nonexistent output port %d", node.Op.Name(), outPort))
	}
	seq := c.s.seqs[node.ID][outPort].Add(1) - 1
	if c.stamp && t.Kind == tuple.Data {
		t.Stamp = time.Now().UnixNano()
	}
	for _, pid := range node.Outs[outPort] {
		t2 := t
		t2.Port = int32(pid)
		t2.Seq = seq
		if c.coalesce {
			c.buffer(t2)
		} else {
			c.s.push(t2, c)
		}
	}
}

// buffer records t for coalesced submission. Tuples for one port are
// buffered and flushed in submission order, so the per-stream FIFO
// guarantee is untouched; only the interleaving across different
// destination ports can differ from unbuffered submission, which no
// ordering requirement covers.
func (c *ctx) buffer(t tuple.Tuple) {
	if c.coalLen > 0 {
		// An active batch: extend it, or flush on a port change / full
		// buffer and start over from a lone pending tuple.
		if c.pendPort == t.Port && c.coalLen < len(c.coal) {
			c.coal[c.coalLen] = t
			c.coalLen++
			return
		}
		c.flushCoalesce()
	} else if c.hasPending {
		if c.pendPort == t.Port && c.s.batchCap > 1 {
			// Second consecutive submission to one port: this invocation
			// is actually batching, so now pay for a buffer.
			if c.coal == nil {
				c.coalBuf = c.s.acquireBatch(c.thr)
				c.coal = *c.coalBuf
			}
			c.coal[0] = c.pending
			c.coal[1] = t
			c.coalLen = 2
			c.hasPending = false
			return
		}
		c.hasPending = false
		c.one[0] = c.pending
		c.deliver(c.pending.Port, c.one[:1])
	}
	c.pending = t
	c.pendPort = t.Port
	c.hasPending = true
}

// flushCoalesce delivers the buffered tuples: an inline chain link when
// the destination is eligible, one batch push otherwise.
func (c *ctx) flushCoalesce() {
	n := c.coalLen
	if n == 0 {
		return
	}
	if inj := c.s.inj; inj != nil {
		inj.StallFault() // chaos seam: let the destination queue run full
	}
	c.coalLen = 0
	c.deliver(c.pendPort, c.coal[:n])
}

// deliver moves a flushed batch (every tuple destined for port) to its
// destination: the inline chain path when this frame may still chain
// and the port qualifies, the queue otherwise. On a partial push (queue
// full) or a contended producer lock the remainder falls back tuple by
// tuple through push/reSchedule, in order — exactly the back-pressure
// path unbuffered submission takes, so blocking semantics are
// unchanged.
func (c *ctx) deliver(port int32, batch []tuple.Tuple) {
	s := c.s
	if c.chainLeft > 0 {
		if s.tryChain(c, port, batch) {
			return
		}
	} else if s.chainDepth > 0 && c.thr != nil && s.chainable[port] {
		// A chainable destination reached with the link budget spent:
		// meter the depth stop so chain-length tuning has data. Only a
		// depth-exhausted chained frame can get here — source frames
		// (thr nil) are excluded above, and reSchedule frames never
		// reach deliver because they do not coalesce.
		s.chains.DepthStops.Add(c.tid, 1)
		s.emitChainStop(c.tid, trace.ChainStopDepth, port)
	}
	pushed := s.queues[port].PushN(batch)
	for i := pushed; i < len(batch); i++ {
		s.push(batch[i], c)
	}
}

// endCoalesce flushes whatever is still held — the batch buffer or the
// lone pending tuple — and returns the buffer. Every executeBatch calls
// it before returning, so no tuple outlives the batch that submitted it.
func (c *ctx) endCoalesce() {
	c.flushCoalesce()
	if c.hasPending {
		c.hasPending = false
		c.one[0] = c.pending
		c.deliver(c.pending.Port, c.one[:1])
	}
	if c.coal != nil {
		c.s.releaseBatch(c.thr, c.coalBuf)
		c.coal = nil
		c.coalBuf = nil
	}
}

// tryChain attempts to deliver batch (every tuple destined for port) by
// executing the port's operator inline on the calling thread — the
// run-to-completion chain path that bypasses the queue push, the
// free-list hint cycle, and the cross-thread drain hand-off. It may
// only run from a coalescing execution frame with chain budget left
// (deliver checks chainLeft), and it preserves every scheduler
// invariant the queue path provides:
//
//   - Per-stream FIFO: the chain commits only while holding the port's
//     consumer lock with the queue observed empty. Execution of a
//     chainable port only ever happens under that lock, so every
//     earlier tuple of every stream into the port has already been
//     processed; and any tuple another producer pushes while the chain
//     holds the lock belongs to a different stream (this frame's node
//     produced the chained batch, and its stream feeds only this port),
//     so ordering behind the chained batch violates nothing.
//   - Punctuation: the batch executes through the same executeSpan as a
//     queue drain, so window and final marks forward in position; an
//     unchained punctuation already in the queue blocks chaining via
//     the empty-queue test, so nothing overtakes it.
//   - Deadlock freedom: the graph is a DAG and a chain only acquires
//     consumer locks strictly downstream of the locks it holds, with
//     try-locks and a queue fallback on every failure — no wait cycle
//     can form.
//   - Containment: executeSpan's span recovery runs per chained frame,
//     so a panic in a chained operator dead-letters its tuple and
//     strikes that operator without unwinding the upstream frame.
//   - Elasticity: a suspension or stop request observed at a link
//     boundary declines the link, so parking latency is bounded by the
//     links already committed (each at most one batch), and the tuple
//     budget bounds the total work one root drain can commit to.
//
// The port hint is untouched throughout: it keeps circulating in the
// free structure, so tuples other producers push while the chain holds
// the consumer lock are found by the normal find path afterwards.
func (s *Scheduler) tryChain(c *ctx, port int32, batch []tuple.Tuple) bool {
	if !s.chainable[port] {
		return false
	}
	thr := c.thr
	if thr == nil {
		return false
	}
	tid := c.tid
	if len(batch) > thr.chainBudget {
		s.chains.BudgetStops.Add(tid, 1)
		s.emitChainStop(tid, trace.ChainStopBudget, port)
		return false
	}
	if c.finished() || c.suspendedNow() {
		s.emitChainStop(tid, trace.ChainStopHalt, port)
		return false
	}
	q := s.queues[port]
	if !q.ConsTryLock() {
		s.chains.LockMisses.Add(tid, 1)
		s.emitChainStop(tid, trace.ChainStopLock, port)
		return false
	}
	if q.Queue().Len() != 0 {
		q.ConsUnlock()
		s.chains.Occupied.Add(tid, 1)
		s.emitChainStop(tid, trace.ChainStopOccupied, port)
		return false
	}
	// Committed: the lock is held, the queue is empty, the budgets
	// allow it. When a fused run is rooted here, try to execute the
	// whole run as one program first; a decline falls through to the
	// per-operator link below with the lock still held.
	if fr := s.fusedRuns[port]; fr != nil {
		if s.tryFused(c, fr, port, batch) {
			q.ConsUnlock()
			return true
		}
	}
	// Execute the batch as if it had been drained here.
	thr.chainBudget -= len(batch)
	depth := s.chainDepth - c.chainLeft + 1
	if depth == 1 {
		s.chains.Starts.Add(tid, 1)
	}
	s.chains.Links.Add(tid, 1)
	s.chains.Tuples.Add(tid, uint64(len(batch)))
	if s.tr.On() {
		s.tr.Emit(tid, trace.KindChain, trace.PackPair(int32(depth), uint32(port)))
	}
	p := s.g.Ports[port]
	ec := s.acquireCtx(p, tid, thr, true)
	ec.chainLeft = c.chainLeft - 1
	s.executeBatch(ec, p, batch)
	thr.heartbeat.Add(1)
	// Flush the chained frame's own submissions before releasing the
	// consumer lock — the same discipline as schedule()'s drain, and
	// where the next link of the chain opens.
	ec.endCoalesce()
	q.ConsUnlock()
	s.releaseCtx(ec)
	return true
}

// emitChainStop records a declined chain attempt in the trace (the
// sharded stop meters are charged by the callers).
func (s *Scheduler) emitChainStop(tid int, reason int32, port int32) {
	if s.tr.On() {
		s.tr.Emit(tid, trace.KindChainStop, trace.PackPair(reason, uint32(port)))
	}
}

// acquireBatch returns a batchCap-sized tuple buffer: the thread's spare
// when it is free, the shared pool otherwise (nested execution frames and
// source threads, which have no Thread). The spare is touched only by the
// owning goroutine, so spareBusy needs no synchronization. Buffers travel
// as *[]tuple.Tuple so the release re-pools the same pointer instead of
// boxing a fresh slice header.
func (s *Scheduler) acquireBatch(thr *Thread) *[]tuple.Tuple {
	if thr != nil && !thr.spareBusy {
		thr.spareBusy = true
		return thr.spare
	}
	return s.bufPool.Get().(*[]tuple.Tuple)
}

// releaseBatch returns a buffer obtained from acquireBatch. Contents are
// not cleared: buffers recycle quickly on the hot path and pooled buffers
// are dropped by the garbage collector when idle, so stale Ref pointers
// are only transiently retained.
func (s *Scheduler) releaseBatch(thr *Thread, b *[]tuple.Tuple) {
	if thr != nil && b == thr.spare {
		thr.spareBusy = false
		return
	}
	s.bufPool.Put(b)
}

func (c *ctx) finished() bool {
	if c.thr != nil {
		return c.thr.stopRequested()
	}
	return c.s.shutdownGlobal.Load() || c.s.portsClosedGlobal.Load()
}

func (c *ctx) suspendedNow() bool {
	if c.thr != nil {
		return c.thr.suspended.Load()
	}
	return false
}

// backoff is the paper's spin-then-sleep wait policy, shared by every
// seam that must wait out brief contention: the first spinBudget waits
// yield the processor (the common case — a lock holder or an MPMC slot
// in transit resolves within a scheduling quantum), after which each
// wait sleeps with the §4.1.3 exponential back-off, 1µs growing ×10 up
// to the configured DelayThreshold.
type backoff struct {
	spins int
	delay time.Duration
	max   time.Duration
}

// backoffSpinBudget is how many waits yield before the sleeps start —
// the same budget the global free-list push has always used.
const backoffSpinBudget = 8

func (s *Scheduler) newBackoff() backoff {
	return backoff{delay: time.Microsecond, max: s.cfg.DelayThreshold}
}

// wait performs one wait step and returns.
func (b *backoff) wait() {
	if b.spins < backoffSpinBudget {
		b.spins++
		runtime.Gosched()
		return
	}
	block(b.delay)
	if b.delay < b.max {
		b.delay *= 10
	}
}

// blockOnFullAttempts bounds the BlockOnFullQueue wait: with the spin
// budget exhausted the remaining attempts sleep at the back-off cap, so
// the escape hatch to self-help still triggers in bounded time.
const blockOnFullAttempts = 64

// push is the paper's Figure 6 entry point: try the enforcer push, and if
// it fails (full queue or producer-lock contention — we do not
// distinguish), fall into reSchedule. Under FairClaim the contended-lock
// case is separated out and resolved through the Enforcer's ticket line
// instead.
func (s *Scheduler) push(t tuple.Tuple, c *ctx) {
	if inj := s.inj; inj != nil {
		inj.StallFault() // chaos seam: let the destination queue run full
	}
	q := s.queues[t.Port]
	if s.cfg.FairClaim {
		s.pushFair(q, t, c)
		return
	}
	if q.Push(t) {
		return
	}
	if s.cfg.BlockOnFullQueue {
		// Ablation: wait for space like a plain bounded-queue runtime
		// would — bounded and with the paper's back-off rather than a
		// raw spin, so a full cycle of blocked producers burns little
		// CPU and still falls through to self-help instead of
		// deadlocking.
		b := s.newBackoff()
		for i := 0; i < blockOnFullAttempts; i++ {
			b.wait()
			if q.Push(t) {
				return
			}
			if c.finished() {
				return
			}
		}
	}
	s.reSchedule(q, t, c)
}

// pushFair is the fair port-claim path (Config.FairClaim): when the
// opportunistic push loses the producer try-lock, the thread takes a
// ticket in the port's fair-claim line and waits its turn, so
// oversubscribed producers acquire the port in FIFO order instead of
// back-off roulette. The bypass is bounded two ways: the opportunistic
// PushEx fast path is taken only while the ticket line is idle — a
// producer looping on the fast path cannot starve a populated line —
// and threads on the unfair Push path (queue drains' PushN, reSchedule
// retries) hold the lock only across one queue operation, so a
// turn-holder wins the lock CAS within a bounded number of such
// bypasses. A ticket, once taken, is always
// retired — even on shutdown — because an abandoned ticket would wedge
// every claimant behind it; the wait is bounded since every ticket
// holder ahead either pushes (bounded work) or retires the same way.
// Full queues are not the ticket line's problem: they fall into
// reSchedule self-help exactly as on the default path.
func (s *Scheduler) pushFair(q *lfq.Enforcer[tuple.Tuple], t tuple.Tuple, c *ctx) {
	if q.FairIdle() {
		switch q.PushEx(t) {
		case lfq.PushOK:
			return
		case lfq.PushFull:
			s.reSchedule(q, t, c)
			return
		}
	}
	// Producer lock contended (or a line is already waiting): claim
	// fairly.
	start := time.Now()
	tk := q.FairTicket()
	b := s.newBackoff()
	for !q.FairTurn(tk) {
		b.wait()
	}
	b = s.newBackoff()
	for !q.ProdTryLock() {
		b.wait()
	}
	ok := q.Queue().Push(t)
	q.ProdUnlock()
	q.FairAdvance()
	wait := time.Since(start)
	s.claimLat.Record(c.tid, wait)
	if s.tr.On() {
		w := uint64(wait)
		if w > 1<<32-1 {
			w = 1<<32 - 1
		}
		s.tr.Emit(c.tid, trace.KindFairClaim, trace.PackPair(t.Port, uint32(w)))
	}
	if !ok {
		// Full queue discovered under the held lock; self-help drains it.
		s.reSchedule(q, t, c)
	}
}

// reSchedule repeatedly alternates between pushing the stuck tuple and
// draining a bounded amount of the blocking queue on the pusher's own
// time. Executing the blocking operator here is why input-port queues
// carry a consumer lock at all: the port cannot be taken from the free
// list without a destructive walk, but the lock grants exclusive consume
// access without touching global data (§4.1.4).
func (s *Scheduler) reSchedule(q *lfq.Enforcer[tuple.Tuple], t tuple.Tuple, c *ctx) {
	s.reschedules.Add(c.tid, 1)
	s.portResched[t.Port].Add(1)
	// Blocked-time accounting for backpressure attribution: everything
	// from here to return is time the producer could not advance because
	// this port's queue was full. Two clock reads and one atomic add per
	// episode — noise against the spinning and draining this path does.
	blockedFrom := time.Now()
	defer func() {
		s.portBlockedNs[t.Port].Add(uint64(time.Since(blockedFrom)))
	}()
	if s.tr.On() {
		s.tr.Emit(c.tid, trace.KindResched, int64(t.Port))
	}
	// reSchedule nests inside an executing batch (and runs on source
	// threads that have no Thread at all), so it borrows a drain buffer —
	// the thread's spare, or a pooled one — instead of using thr.batch.
	// Both the buffer and the execution context are acquired only if a
	// consumer lock is actually won: the pure retry-spin path stays
	// allocation-free.
	var bufp *[]tuple.Tuple
	var buf []tuple.Tuple
	var ec *ctx
	p := s.g.Ports[t.Port]
	spins := 0
	for !q.Push(t) && !c.finished() {
		// A suspension request is honored before the consumer lock is
		// taken and re-checked before every batch while it is held: a
		// thread asked to park keeps retrying its push (the tuple must
		// land) but stops draining, so the lock is released at the next
		// batch boundary and the port stays promptly drainable by the
		// threads that remain running.
		drained := 0
		if !c.suspendedNow() && q.ConsTryLock() {
			if bufp == nil {
				bufp = s.acquireBatch(c.thr)
				buf = *bufp
				// The drain does not coalesce: this is the congestion
				// path, where downstream queues are full and a batched
				// push would only buffer tuples to fail the PushN and
				// fall back tuple by tuple anyway.
				ec = s.acquireCtx(p, c.tid, c.thr, false)
			}
			// Drain at most ReschedLimit+1 tuples (the pre-batching bound)
			// in batches, charging locks, indices and counters per batch.
			for drained <= s.cfg.ReschedLimit && !c.finished() && !c.suspendedNow() {
				want := s.cfg.ReschedLimit + 1 - drained
				if want > len(buf) {
					want = len(buf)
				}
				n := q.Queue().PopN(buf[:want])
				if n == 0 {
					break
				}
				s.executeBatch(ec, p, buf[:n])
				drained += n
			}
			q.ConsUnlock()
		}
		if drained > 0 {
			spins = 0
		} else if spins++; spins > 8 {
			// Another thread is clearing the queue for us (or we are
			// suspended and must not); let it run. (The product
			// busy-waits here; on a host with fewer cores than threads
			// that inverts into livelock, so we yield.)
			runtime.Gosched()
			spins = 0
		}
	}
	if bufp != nil {
		s.releaseBatch(c.thr, bufp)
		s.releaseCtx(ec)
	}
}

// acquireCtx returns an execution context for draining port p, reused
// across every batch of one drain. Contexts escape into operator code
// through the Submitter interface and so always live on the heap; scheduler
// threads recycle them through a thread-local free list (no
// synchronization — the list is touched only by the owning goroutine) so
// steady-state draining allocates nothing. Source threads, which have no
// Thread, fall back to allocation. Callers with coalescing enabled must
// call endCoalesce before releasing the port's consumer lock.
func (s *Scheduler) acquireCtx(p *graph.InPort, tid int, thr *Thread, coalesce bool) *ctx {
	var ec *ctx
	if thr != nil {
		if ec = thr.ctxCache; ec != nil {
			thr.ctxCache = ec.nextFree
		}
	} else {
		ec, _ = s.ctxPool.Get().(*ctx)
	}
	if ec == nil {
		ec = new(ctx)
	}
	*ec = ctx{s: s, node: p.Node, tid: tid, thr: thr, coalesce: coalesce}
	return ec
}

// releaseCtx returns a drained port's context to its thread's free list,
// or to the shared pool for thread-less (source) producers. The context
// must hold no coalesced tuples (endCoalesce already ran or coalescing
// was off).
func (s *Scheduler) releaseCtx(ec *ctx) {
	if thr := ec.thr; thr != nil {
		ec.nextFree = thr.ctxCache
		thr.ctxCache = ec
		return
	}
	s.ctxPool.Put(ec)
}

// executeBatch processes a batch of tuples popped from a single port's
// queue, handling punctuation inline. The caller must hold the port's
// consumer lock and supply that port's drainCtx. Because every tuple
// targets the same port (batches come from one SPSC queue), the routing
// lookup and the executed/perNode/sinkDeliver counter updates are paid
// once per batch instead of once per tuple, and the execution context is
// shared by all the drain's batches. All tuples in the batch are executed
// unconditionally: they have already left the queue, so stop and
// suspension flags are only consulted between batches by the callers.
//
// Operator panics are contained at span granularity: a panic ends the
// current span, the offending tuple is dead-lettered and charged as a
// strike against its operator, and execution resumes with the next tuple
// of the batch. The containment cost on the fault-free path is one defer
// per span (up to batchCap tuples), not one per tuple.
func (s *Scheduler) executeBatch(ec *ctx, p *graph.InPort, batch []tuple.Tuple) {
	if thr := ec.thr; thr != nil {
		// Execution nests when operators drain downstream queues through
		// reSchedule; restore rather than clear so the outermost frame
		// keeps the thread marked active.
		was := thr.active.Swap(true)
		defer thr.active.Store(was)
	}
	for off := 0; off < len(batch); {
		off += s.executeSpan(ec, p, batch[off:])
	}
}

// executeSpan runs tuples from span until it is exhausted or an operator
// panics, returning how many tuples were consumed (a panicking tuple
// counts: it already left its queue, and it is dead-lettered by the
// recovery). Counters for tuples executed before a panic are settled by
// the deferred handler, so the PE-close invariant — every executed tuple
// visible in the counters before Done — survives containment.
func (s *Scheduler) executeSpan(ec *ctx, p *graph.InPort, span []tuple.Tuple) (consumed int) {
	data := 0
	defer func() {
		if data > 0 {
			s.chargeExec(ec.tid, p, data)
		}
		if r := recover(); r != nil {
			s.containPanic(ec.tid, p.Node, r, true)
			consumed++ // the tuple that panicked
		}
	}()
	// Quarantine state is read once per span, not per tuple: faultsSeen
	// stays false forever on a healthy PE, so the fault-free hot loop
	// pays one atomic load per span and never touches the table.
	quarantined := s.faultsSeen.Load() && s.quarantined[p.Node.ID].Load()
	inj := s.inj
	// The latency seam: stamped tuples draining at a sink operator charge
	// the end-to-end histogram. Both tests are hoisted out of the loop so
	// the common case (latency off, or a non-sink node) pays nothing per
	// tuple.
	lat := s.latency
	if p.Node.NumOut != 0 {
		lat = nil
	}
	for i := range span {
		consumed = i
		t := &span[i]
		switch t.Kind {
		case tuple.Data:
			if quarantined {
				s.faults.DeadLetters.Add(ec.tid, 1)
				continue
			}
			if lat != nil && t.Stamp != 0 {
				lat.Record(ec.tid, time.Duration(time.Now().UnixNano()-t.Stamp))
			}
			if inj != nil {
				inj.OpFault() // chaos seam: may sleep or panic
			}
			p.Node.Op.Process(ec, *t, p.Index)
			data++
		case tuple.WindowMark:
			s.safeOnPunct(ec, p, tuple.WindowMark)
			forwardPunct(ec, tuple.Window())
		case tuple.FinalMark:
			// Settle the span's counts first: handleFinal can cascade
			// into closing the PE, and every tuple executed before the
			// close must already be visible in the counters by then
			// (Wait returns as soon as the PE closes). Coalesced tuples
			// this node already submitted are unaffected: the forwarded
			// final queues behind them in the same buffer, so downstream
			// cannot process it before they flush.
			if data > 0 {
				s.chargeExec(ec.tid, p, data)
				data = 0
			}
			s.handleFinal(p, ec)
		}
	}
	return len(span)
}

// chargeExec settles n data executions at port p into the sharded
// counters.
func (s *Scheduler) chargeExec(tid int, p *graph.InPort, n int) {
	s.executed.Add(tid, uint64(n))
	s.perNode[p.Node.ID].Add(uint64(n))
	if p.Node.NumOut == 0 {
		s.sinkDeliver.Add(tid, uint64(n))
	}
}

// containPanic records one recovered operator panic: a strike against
// the node (quarantining it at the configured budget), a dead-letter for
// the tuple when one was in flight, and a diagnostic for LastFault.
func (s *Scheduler) containPanic(tid int, n *graph.Node, r any, deadLetter bool) {
	s.faultsSeen.Store(true)
	s.faults.OpPanics.Add(tid, 1)
	if deadLetter {
		s.faults.DeadLetters.Add(tid, 1)
	}
	if int(s.strikes[n.ID].Add(1)) == s.cfg.QuarantineAfter {
		s.quarantined[n.ID].Store(true)
		s.faults.Quarantines.Add(tid, 1)
		if s.tr.On() {
			s.tr.Emit(tid, trace.KindQuarantine, int64(n.ID))
		}
	}
	s.lastFault.Store(fmt.Sprintf("operator %s panicked: %v", n.Op.Name(), r))
}

// safeOnPunct delivers a punctuation callback to the operator under
// panic containment, skipping quarantined operators entirely. The
// runtime's own forwarding (the caller's forwardPunct / handleFinal
// bookkeeping) is outside this scope on purpose: a panicking or
// quarantined operator must never stop punctuation from propagating, or
// the PE could not drain past it.
func (s *Scheduler) safeOnPunct(ec *ctx, p *graph.InPort, k tuple.Kind) {
	ph, ok := p.Node.Op.(graph.Puncts)
	if !ok {
		return
	}
	if s.faultsSeen.Load() && s.quarantined[p.Node.ID].Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.containPanic(ec.tid, p.Node, r, false)
		}
	}()
	ph.OnPunct(ec, k, p.Index)
}

// safeFinish invokes a Finalizer under the same containment rules as
// safeOnPunct.
func (s *Scheduler) safeFinish(ec *ctx, n *graph.Node) {
	f, ok := n.Op.(Finalizer)
	if !ok {
		return
	}
	if s.faultsSeen.Load() && s.quarantined[n.ID].Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.containPanic(ec.tid, n, r, false)
		}
	}()
	f.Finish(ec)
}

// forwardPunct submits a punctuation on every output port of the
// executing node.
func forwardPunct(c *ctx, t tuple.Tuple) {
	for out := 0; out < c.node.NumOut; out++ {
		c.Submit(t, out)
	}
}

// Finalizer is implemented by operators that flush state when all their
// input streams have closed (before the runtime forwards the final
// punctuation downstream).
type Finalizer interface {
	Finish(out graph.Submitter)
}

// handleFinal accounts one final punctuation on port p and closes the
// port, the node, and eventually the PE as the counts drain. The
// operator-facing callbacks (OnPunct, Finish) run under containment and
// are skipped for quarantined operators; the close bookkeeping and the
// downstream forwarding always run, so punctuation propagates past a
// faulty operator and the PE still drains.
func (s *Scheduler) handleFinal(p *graph.InPort, ec *ctx) {
	s.safeOnPunct(ec, p, tuple.FinalMark)
	if s.remainingProducers[p.ID].Add(-1) > 0 {
		return // more streams still feed this port
	}
	s.portClosed[p.ID].Store(true)
	if s.nodeOpenIns[p.Node.ID].Add(-1) == 0 {
		s.safeFinish(ec, p.Node)
		forwardPunct(ec, tuple.Final())
	}
	if s.openPorts.Add(-1) == 0 {
		s.beginPortsClosed()
	}
}

// beginPortsClosed flips the PE into the drained state: all input ports
// have seen their final punctuations. It updates every thread's local
// flag — the walk the paper accepts at shutdown so the hot loop never
// reads shared state (§4.1.2).
func (s *Scheduler) beginPortsClosed() {
	if s.portsClosedGlobal.Swap(true) {
		return
	}
	for _, t := range s.threads {
		t.portsClosed.Store(true)
		t.interrupt()
	}
	close(s.done)
}

// SourceSubmitter returns the Submitter a source operator thread uses to
// inject tuples. srcIndex identifies the source thread (0-based) for
// metric sharding.
func (s *Scheduler) SourceSubmitter(node *graph.Node, srcIndex int) graph.Submitter {
	return &ctx{s: s, node: node, tid: s.cfg.MaxThreads + srcIndex, thr: nil, stamp: s.latency != nil}
}

// SourceDone tells the scheduler a source operator has finished: the
// scheduler emits final punctuation on all the source's output ports and,
// when the last source finishes on a graph whose sources have no output
// ports at all, closes the PE.
func (s *Scheduler) SourceDone(node *graph.Node, srcIndex int) {
	ec := &ctx{s: s, node: node, tid: s.cfg.MaxThreads + srcIndex, thr: nil}
	forwardPunct(ec, tuple.Final())
	s.sourcesLeft.Add(-1)
}

// Start launches the scheduler at thread level n (clamped to
// [1, MaxThreads]).
func (s *Scheduler) Start(n int) {
	s.SetLevel(n)
}

// SetLevel adjusts the number of unsuspended scheduler threads to n,
// creating thread goroutines on first use and suspending or resuming
// existing ones otherwise. It returns the level actually in effect.
func (s *Scheduler) SetLevel(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.cfg.MaxThreads {
		n = s.cfg.MaxThreads
	}
	s.levelMu.Lock()
	defer s.levelMu.Unlock()
	if s.shutdownGlobal.Load() || s.portsClosedGlobal.Load() {
		return s.level
	}
	for i := 0; i < n; i++ {
		t := s.threads[i]
		if !s.started[i] {
			s.started[i] = true
			s.startWatchdog()
			t.launched.Store(true)
			s.wg.Add(1)
			go func(t *Thread) {
				defer s.wg.Done()
				defer t.exited.Store(true)
				s.schedule(t)
			}(t)
		} else if t.suspended.Load() {
			t.setSuspended(false)
		}
	}
	for i := n; i < s.cfg.MaxThreads; i++ {
		if s.started[i] && !s.threads[i].suspended.Load() {
			s.threads[i].setSuspended(true)
		}
	}
	s.level = n
	return n
}

// SetRelax adjusts the free-list relaxation width online (clamped to
// [1, MaxThreads]) and returns the width in effect. Safe to call from
// any goroutine at any time, including while releases and steals are in
// flight: the width only selects where *future* hints land, and every
// structure a past width could have used (all shards, all inboxes) is
// always reachable by owners, thieves and the periodic sweep, so
// shrinking mid-steal strands nothing
// (TestRelaxShrinkNoStrandedPorts).
func (s *Scheduler) SetRelax(k int) int {
	if k < 1 {
		k = 1
	}
	if k > s.cfg.MaxThreads {
		k = s.cfg.MaxThreads
	}
	s.relax.Store(int32(k))
	return k
}

// Relax returns the relaxation width currently in effect.
func (s *Scheduler) Relax() int { return int(s.relax.Load()) }

// ClaimWait returns a snapshot of the fair-claim wait histogram.
func (s *Scheduler) ClaimWait() metrics.HistogramSnapshot { return s.claimLat.Snapshot() }

// Level returns the current thread level.
func (s *Scheduler) Level() int {
	s.levelMu.Lock()
	defer s.levelMu.Unlock()
	return s.level
}

// SuspensionsEffective reports whether every thread asked to suspend has
// actually parked. The elastic controller defers decisions when an
// intended suspension has not happened (§4.2.3).
func (s *Scheduler) SuspensionsEffective() bool {
	s.levelMu.Lock()
	defer s.levelMu.Unlock()
	for i, t := range s.threads {
		if s.started[i] && t.suspended.Load() && !t.parked.Load() && !t.stopRequested() {
			return false
		}
	}
	return true
}

// Shutdown stops all scheduler threads and waits for them to exit, up
// to the configured ShutdownTimeout. On expiry it returns an error
// naming the threads that have not exited, with a goroutine dump, so a
// wedged operator is diagnosable instead of hanging the process. The
// caller must already have stopped source threads.
func (s *Scheduler) Shutdown() error {
	s.shutdownGlobal.Store(true)
	s.levelMu.Lock()
	for _, t := range s.threads {
		t.shutdown.Store(true)
		t.interrupt()
	}
	s.levelMu.Unlock()
	s.stopWatchdog()
	if s.cfg.ShutdownTimeout < 0 {
		s.wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(s.cfg.ShutdownTimeout):
	}
	var stuck []int
	for i, t := range s.threads {
		if t.launched.Load() && !t.exited.Load() {
			stuck = append(stuck, i)
		}
	}
	last := ""
	if lf := s.LastFault(); lf != "" {
		last = " (last fault: " + lf + ")"
	}
	return fmt.Errorf("sched: shutdown deadline %v exceeded; scheduler threads %v have not exited%s\n%s",
		s.cfg.ShutdownTimeout, stuck, last, fault.GoroutineDump(64<<10))
}

// startWatchdog launches the stall watchdog once, if configured. Caller
// holds levelMu.
func (s *Scheduler) startWatchdog() {
	if s.cfg.WatchdogInterval <= 0 {
		return
	}
	s.watchdogOnce.Do(func() {
		s.watchdogWG.Add(1)
		go s.watchdog()
	})
}

// stopWatchdog ends the watchdog goroutine and waits for it.
func (s *Scheduler) stopWatchdog() {
	select {
	case <-s.watchdogStop:
	default:
		close(s.watchdogStop)
	}
	s.watchdogWG.Wait()
}

// watchdog periodically sweeps the thread table for threads that are
// inside operator code (active), not parked, and whose heartbeat epoch
// has not advanced for longer than StallThreshold. Each stall episode is
// reported once — counted in Faults.WatchdogStalls, described in
// LastFault, and delivered to OnStall — and re-arms when the thread's
// heartbeat moves again. The watchdog only observes per-thread atomics;
// it never touches scheduling state, so a wedged thread cannot wedge its
// own detector.
func (s *Scheduler) watchdog() {
	defer s.watchdogWG.Done()
	n := len(s.threads)
	last := make([]uint64, n)
	since := make([]time.Time, n)
	reported := make([]bool, n)
	ticker := time.NewTicker(s.cfg.WatchdogInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.watchdogStop:
			return
		case <-s.done:
			return
		case now := <-ticker.C:
			for i, t := range s.threads {
				hb := t.heartbeat.Load()
				if hb != last[i] || !t.active.Load() || t.parked.Load() {
					last[i] = hb
					since[i] = now
					reported[i] = false
					continue
				}
				if since[i].IsZero() {
					since[i] = now
					continue
				}
				if d := now.Sub(since[i]); d >= s.cfg.StallThreshold && !reported[i] {
					reported[i] = true
					s.faults.WatchdogStalls.Add(i, 1)
					s.lastFault.Store(fmt.Sprintf(
						"sched: thread %d stuck in operator code for %v (heartbeat epoch %d)", i, d, hb))
					if s.cfg.OnStall != nil {
						s.cfg.OnStall(i, d)
					}
				}
			}
		}
	}
}

// Wait blocks until the graph drains (all ports closed) and then stops
// the scheduler threads.
func (s *Scheduler) Wait() {
	<-s.done
	s.wg.Wait()
}

// schedule is the paper's Figure 4 main scheduling loop, draining each
// acquired port in batches: the find already paid for touching global
// data (the free list and the consumer lock), so the whole drain runs on
// thread-local state, and batching stretches the same amortization over
// the queue indices and metric shards — one acquire refresh, one release
// store and one counter add per batch of up to batchCap tuples.
func (s *Scheduler) schedule(thr *Thread) {
	// Whatever ends the loop — shutdown or ports closing — flush the
	// thread's shard so no port hint leaves the reachable set with it.
	defer s.drainShard(thr)
	var t tuple.Tuple
	for s.findWorkBlocking(&t, thr) {
		q := s.queues[t.Port]
		port := t.Port
		p := s.g.Ports[port]
		if s.tr.On() {
			s.tr.Emit(thr.id, trace.KindAcquire, int64(port))
		}
		ec := s.acquireCtx(p, thr.id, thr, true)
		ec.chainLeft = s.chainDepth
		// findWork popped the first tuple already; complete its batch.
		thr.batch[0] = t
		n := 1 + q.Queue().PopN(thr.batch[1:])
		drained := 0
		for {
			// Each top-level batch gets a fresh chain tuple allowance:
			// the budget bounds the inline work committed between the
			// suspension checks below, not per drain.
			thr.chainBudget = s.chainBudget0
			s.executeBatch(ec, p, thr.batch[:n])
			drained += n
			thr.heartbeat.Add(1)
			if thr.suspended.Load() || s.stopRequested(thr) {
				break
			}
			if n = q.Queue().PopN(thr.batch); n == 0 {
				break
			}
		}
		// Flush coalesced submissions before releasing the consumer lock:
		// stamping and flushing under the same lock is what preserves the
		// per-stream FIFO order at the destination ports.
		ec.endCoalesce()
		q.ConsUnlock()
		if s.tr.On() {
			s.tr.Emit(thr.id, trace.KindRelease, int64(drained))
		}
		s.releaseCtx(ec)
		s.makePortFree(port, thr)
	}
}

// stopRequested consults the thread's local stop flags, or — under the
// SharedStopFlags ablation — the scheduler-global ones, making every
// loop iteration touch shared cache lines.
func (s *Scheduler) stopRequested(thr *Thread) bool {
	if s.cfg.SharedStopFlags {
		return s.shutdownGlobal.Load() || s.portsClosedGlobal.Load()
	}
	return thr.stopRequested()
}

// findWorkBlocking is the paper's Figure 5 outer loop: look for work,
// back off exponentially while none exists, honor suspension, and return
// false only when the PE is stopping.
func (s *Scheduler) findWorkBlocking(t *tuple.Tuple, thr *Thread) bool {
	delay := time.Microsecond
	for !s.stopRequested(thr) {
		thr.heartbeat.Add(1)
		s.parkIfAsked(thr)
		if s.stopRequested(thr) {
			return false
		}
		if s.findWorkNonBlocking(t, thr) {
			return true
		}
		s.findFails.Add(thr.id, 1)
		block(delay)
		if delay < s.cfg.DelayThreshold {
			delay *= 10
		}
	}
	return false
}

// findWorkNonBlocking looks for a port that (1) is in the free
// structure, (2) is not taken by another thread and (3) has a tuple
// queued. On success the caller holds the port's consumer lock and *t
// is the first tuple. The sharded design searches the thread's own
// cache, then steals, then polls the global list; the GlobalFreeList
// and FreeListLIFO ablations walk the single global list the paper's
// way.
func (s *Scheduler) findWorkNonBlocking(t *tuple.Tuple, thr *Thread) bool {
	if s.useShards {
		return s.findWorkSharded(t, thr)
	}
	if s.cfg.FreeListLIFO {
		return s.findWorkLIFO(t, thr)
	}
	return s.findWorkFIFO(t, thr)
}

// findWorkFIFO is the paper's Figure 5 free-list walk. It does a
// priming read to remember the first port it saw, pushes unusable ports
// to the back, and abandons the search on any contention or on seeing
// the first port again.
func (s *Scheduler) findWorkFIFO(t *tuple.Tuple, thr *Thread) bool {
	var first int32
	if !s.popFree(&first, thr.id) {
		return false
	}
	if s.tryTake(first, t) {
		return true
	}
	s.requeue(first, thr.id)
	var port int32
	for s.popFree(&port, thr.id) {
		if s.tryTake(port, t) {
			return true
		}
		s.requeue(port, thr.id)
		if port == first {
			break
		}
	}
	return false
}

// Sharded free-list tuning knobs.
const (
	// globalPollEvery forces a look at the global spill list every Nth
	// find even while the local shard keeps producing work, so a
	// spilled port cannot starve indefinitely behind a busy shard.
	globalPollEvery = 32
	// globalPollBatch bounds how many global-list ports one find
	// inspects; unusable ones migrate into the local shard, spreading
	// the initial population and the spills across the threads.
	globalPollBatch = 8
)

// findWorkSharded is the sharded work search: the thread's own lateral
// inbox and LIFO cache first (no shared cache lines and no CAS in the
// common case), then the other threads' shards and inboxes in
// nearest-first topology order (work stealing, oldest hint first), then
// the global spill list. The periodic tick polls the global list and
// sweeps every inbox, so neither a spilled port nor a hint lateral-
// pushed to a since-parked thread can starve while local work is
// plentiful.
func (s *Scheduler) findWorkSharded(t *tuple.Tuple, thr *Thread) bool {
	if thr.findTick++; thr.findTick >= globalPollEvery {
		thr.findTick = 0
		if s.pollGlobal(t, thr) {
			return true
		}
		if s.sweepInboxes(t, thr) {
			return true
		}
	}
	if s.popInbox(t, thr) {
		return true
	}
	if s.popLocal(t, thr) {
		return true
	}
	if s.steal(t, thr) {
		return true
	}
	return s.pollGlobal(t, thr)
}

// popInbox drains the thread's own lateral-hint inbox (k-relaxed
// releases from neighbors land here). The walk is bounded by the inbox
// capacity: concurrent lateral pushes could otherwise extend it
// indefinitely, and anything left past the bound is found by the next
// find or the periodic sweep.
func (s *Scheduler) popInbox(t *tuple.Tuple, thr *Thread) bool {
	var port int32
	for i := 0; i < s.inboxCap; i++ {
		if !thr.inbox.Pop(&port) {
			return false
		}
		if s.tryTake(port, t) {
			return true
		}
		s.makePortFree(port, thr)
	}
	return false
}

// sweepInboxes pops one hint from every other thread's inbox — the
// safety net that reclaims hints lateral-pushed to a thread that has
// since parked (a parked thread's own-inbox drain no longer runs, and
// unlike its shard it cannot flush its inbox on the way down: others
// keep pushing). Paced with the periodic global poll, so the steady-
// state cost is one contended Pop per peer per globalPollEvery finds.
func (s *Scheduler) sweepInboxes(t *tuple.Tuple, thr *Thread) bool {
	var port int32
	for _, v := range thr.victims {
		if !s.inboxes[v].Pop(&port) {
			continue
		}
		if s.tryTake(port, t) {
			return true
		}
		s.makePortFree(port, thr)
	}
	return false
}

// popLocal walks the thread's own shard top-down: pop, try to take, and
// buffer unusable ports in scratch, restoring them in reverse so the
// stacking order survives — the findWorkLIFO walk shape, but on a
// structure only this thread pushes to. The walk terminates within the
// shard's capacity because nobody refills the shard while its owner
// walks it.
func (s *Scheduler) popLocal(t *tuple.Tuple, thr *Thread) bool {
	scratch := thr.scratch[:0]
	found := false
	var port int32
	for thr.shard.PopBottom(&port) {
		if s.tryTake(port, t) {
			found = true
			break
		}
		if !s.portClosed[port].Load() {
			scratch = append(scratch, port)
		}
	}
	for i := len(scratch) - 1; i >= 0; i-- {
		s.makePortFree(scratch[i], thr)
	}
	if cap(scratch) > maxScratchCap {
		thr.scratch = make([]int32, 0, maxScratchCap)
	} else {
		thr.scratch = scratch[:0]
	}
	return found
}

// steal tries every other thread's shard and inbox once, nearest
// victims first: the thread's topology-ordered victim list is walked in
// runs of equal distance (SMT sibling, then LLC peers, then remote),
// randomizing the start offset within each run so concurrent thieves
// fan out instead of convoying on one victim. Preferring near victims
// keeps the stolen hint — and the port state behind it — within the
// cache domain that already holds it warm; the per-distance steal
// meters (StealSMT/StealLLC/StealRemote) report how often that works
// out. A lost ticket race abandons that victim rather than retrying
// (the paper's contention principle). Stolen-but-unusable hints
// recirculate through the stealer's own release path, which also
// migrates ports away from suspended threads' shards while the owners
// are not flushing them.
func (s *Scheduler) steal(t *tuple.Tuple, thr *Thread) bool {
	vs, ds := thr.victims, thr.vDist
	stole := false
	var port int32
	for gs := 0; gs < len(vs); {
		ge := gs + 1
		for ge < len(vs) && ds[ge] == ds[gs] {
			ge++
		}
		g := ge - gs
		off := 0
		if g > 1 {
			off = int(thr.nextRand() % uint32(g))
		}
		for i := 0; i < g; i++ {
			j := gs + off + i
			if j >= ge {
				j -= g
			}
			v := vs[j]
			got := s.shards[v].Steal(&port)
			if !got {
				got = s.inboxes[v].Pop(&port)
			}
			if !got {
				continue
			}
			dist := int(ds[gs])
			s.chargeSteal(thr.id, dist)
			if s.tr.On() {
				s.tr.Emit(thr.id, trace.KindSteal,
					trace.PackPair(v, uint32(dist)<<24|uint32(port)&0xffffff))
			}
			stole = true
			if s.tryTake(port, t) {
				return true
			}
			s.makePortFree(port, thr)
		}
		gs = ge
	}
	if stole {
		s.contention.StealMiss.Add(thr.id, 1)
	}
	return false
}

// chargeSteal counts one successful steal, both in the aggregate meter
// and in the per-distance breakdown.
func (s *Scheduler) chargeSteal(tid, dist int) {
	s.contention.Steal.Add(tid, 1)
	switch dist {
	case cpuutil.DistSMT:
		s.contention.StealSMT.Add(tid, 1)
	case cpuutil.DistLLC:
		s.contention.StealLLC.Add(tid, 1)
	default:
		s.contention.StealRemote.Add(tid, 1)
	}
}

// pollGlobal pops a bounded number of ports from the global list —
// initial ports, shard spills, and suspended threads' flushed hints
// land there — and migrates the unusable ones into the local shard.
func (s *Scheduler) pollGlobal(t *tuple.Tuple, thr *Thread) bool {
	var port int32
	for i := 0; i < globalPollBatch; i++ {
		if !s.popFree(&port, thr.id) {
			return false
		}
		if s.tryTake(port, t) {
			return true
		}
		s.makePortFree(port, thr)
	}
	return false
}

// makePortFree returns a port hint to the free structure: under the
// sharded design the calling thread's own shard, or — when the
// relaxation width k exceeds 1 — any of its k-1 nearest neighbors'
// inboxes (the k-relaxed release: rank 0 is the own shard, ranks
// 1..k-1 the topology-ordered victims). Relaxing trades hint-ordering
// quality for release-side spread: under steal contention the lateral
// push hands the hint directly to the thread that would otherwise have
// to steal it. Lateral pushes skip suspended targets (best effort; the
// periodic sweep covers the race) and fall back to the own shard when
// the target inbox is full or contended, so the hint always lands.
// Overflow spills to the global list; the global list serves the
// unsharded ablations directly. Closed ports are dropped.
func (s *Scheduler) makePortFree(port int32, thr *Thread) {
	if s.portClosed[port].Load() {
		return
	}
	tid := 0
	if thr != nil {
		tid = thr.id
		if s.useShards {
			if k := int(s.relax.Load()); k > 1 && len(thr.victims) > 0 {
				w := k
				if w > len(thr.victims)+1 {
					w = len(thr.victims) + 1
				}
				if r := int(thr.nextRand() % uint32(w)); r > 0 {
					v := thr.victims[r-1]
					if !s.threads[v].suspended.Load() && s.inboxes[v].Push(port) {
						s.contention.Lateral.Add(tid, 1)
						return
					}
				}
			}
			if thr.shard.PushBottom(port) {
				return
			}
			s.contention.Spill.Add(tid, 1)
			if s.tr.On() {
				s.tr.Emit(tid, trace.KindSpill, int64(port))
			}
		}
	}
	s.pushGlobalFree(port, tid)
}

// pushGlobalFree pushes a port onto the global free list. The list is
// sized to hold every port, so a failed push is almost always a slot in
// transit (a consumer mid-pop): the shared back-off helper spins
// briefly, then falls into the paper's exponential back-off instead of
// busy-spinning forever on a contended CAS. The push itself can never
// be abandoned — dropping the hint would strand the port.
func (s *Scheduler) pushGlobalFree(port int32, tid int) {
	b := s.newBackoff()
	for {
		if s.freePorts.PushEx(port) == lfq.PushOK {
			return
		}
		s.contention.PushFail.Add(tid, 1)
		b.wait()
	}
}

// parkIfAsked flushes the thread's shard to the global free list and
// parks when suspension is requested. The flush is the elastic-resize
// protocol: only the owner pushes to a shard, so a parked thread's
// shard is empty and stays empty — no port hint is ever stranded where
// only a suspended thread would look for it. (Thieves may still steal
// concurrently with the flush; the deque handles the race.)
func (s *Scheduler) parkIfAsked(thr *Thread) {
	if !thr.suspended.Load() {
		return
	}
	if s.tr.On() {
		s.tr.Emit(thr.id, trace.KindPark, 0)
	}
	s.drainShard(thr)
	thr.suspendIfAsked()
	if s.tr.On() {
		s.tr.Emit(thr.id, trace.KindUnpark, 0)
	}
}

// drainShard moves every hint in thr's shard and inbox to the global
// list, dropping closed ports. PopBottom is owner-only, so this must
// run on thr's own goroutine (it does: parkIfAsked and schedule's
// exit). The inbox drain is bounded rather than exhaustive: other
// threads may lateral-push concurrently and a contended Pop can fail
// spuriously, so emptiness is not a stable condition — the bound makes
// the common case (quiet inbox) empty promptly, and the periodic sweep
// plus thieves' inbox pops reclaim anything that lands after it.
func (s *Scheduler) drainShard(thr *Thread) {
	if !s.useShards {
		return
	}
	var port int32
	for thr.shard.PopBottom(&port) {
		if s.portClosed[port].Load() {
			continue
		}
		s.pushGlobalFree(port, thr.id)
	}
	for i := 0; i < 4*s.inboxCap; i++ {
		if !thr.inbox.Pop(&port) {
			break
		}
		if s.portClosed[port].Load() {
			continue
		}
		s.pushGlobalFree(port, thr.id)
	}
}

// maxScratchCap bounds the backing array a thread retains for the LIFO
// free-list walk. A walk over a graph with thousands of idle ports grows
// scratch to the full port count; without the bound that grown array
// stayed aliased into thr.scratch forever.
const maxScratchCap = 64

// findWorkLIFO is the free-list walk for the FreeListLIFO ablation. The
// paper's walk (pop, test, push to the back, stop on seeing the first
// port again) assumes FIFO order; on a stack the pushed-back port is
// immediately popped again and the walk inspects only one element, which
// starves every other port. The MRU variant therefore buffers inspected
// ports locally and restores them after the walk — already a hint at why
// the product chose the FIFO list.
func (s *Scheduler) findWorkLIFO(t *tuple.Tuple, thr *Thread) bool {
	scratch := thr.scratch[:0]
	found := false
	var port int32
	for len(scratch) < len(s.queues) && s.popFree(&port, thr.id) {
		if s.tryTake(port, t) {
			found = true
			break
		}
		scratch = append(scratch, port)
	}
	// Restore in reverse so the original stacking order survives.
	for i := len(scratch) - 1; i >= 0; i-- {
		s.requeue(scratch[i], thr.id)
	}
	if cap(scratch) > maxScratchCap {
		// A long walk grew the backing array; keep only a bounded buffer
		// so the thread does not pin memory proportional to the port
		// count between walks.
		thr.scratch = make([]int32, 0, maxScratchCap)
	} else {
		thr.scratch = scratch[:0]
	}
	return found
}

// popFree pops the global free list once, or — under the
// RetryOnContention ablation — keeps retrying a failed pop instead of
// abandoning the search to the back-off path. A false return covers
// both empty and contended (the MPMC cannot tell them apart), so the
// PopFail meter counts the union.
func (s *Scheduler) popFree(v *int32, tid int) bool {
	if s.freePorts.Pop(v) {
		return true
	}
	s.contention.PopFail.Add(tid, 1)
	if !s.cfg.RetryOnContention {
		return false
	}
	for i := 0; i < 64; i++ {
		if s.freePorts.Pop(v) {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// tryTake attempts to lock port's consumer side and pop a tuple. On
// success the consumer lock is held.
func (s *Scheduler) tryTake(port int32, t *tuple.Tuple) bool {
	q := s.queues[port]
	if q.ConsTryLock() {
		if q.Queue().Pop(t) {
			return true
		}
		q.ConsUnlock()
	}
	return false
}

// requeue returns a port to the back of the global free list unless it
// has closed.
func (s *Scheduler) requeue(port int32, tid int) {
	if s.portClosed[port].Load() {
		return
	}
	s.pushGlobalFree(port, tid)
}
