package ops

import (
	"fmt"

	"streams/internal/graph"
	"streams/internal/vm"
)

// The evaluation graphs from §5 of the paper. Each experiment fixes the
// total number of worker operators (1,000 in the paper) and arranges
// them as width parallel chains of the given depth:
//
//	pure pipeline      width=1,    depth=1000
//	pure data parallel width=1000, depth=1
//	mixed              width=10,   depth=100
//
// Every graph is Src → [Split →] width×(W_1 → … → W_depth) → Snk, where
// Src generates tuples at maximum rate and every worker costs the same
// fixed number of floating-point operations per tuple.

// Topology describes one of the paper's synthetic workload graphs.
type Topology struct {
	// Width is the number of parallel worker chains.
	Width int
	// Depth is the number of workers in each chain.
	Depth int
	// Cost is the floating-point operations per tuple per worker.
	Cost int
	// Limit optionally bounds the source (0 = unbounded).
	Limit uint64
	// VM attaches bytecode programs to the workers so the scheduler can
	// fuse chain runs into superinstruction dispatch loops.
	VM bool
}

// Workers returns the total number of worker operators.
func (t Topology) Workers() int { return t.Width * t.Depth }

// String implements fmt.Stringer in the paper's panel-title style.
func (t Topology) String() string {
	return fmt.Sprintf("w %d, d %d, cost %d", t.Width, t.Depth, t.Cost)
}

// Build materializes the topology, returning the graph and its sink for
// throughput readout.
func (t Topology) Build() (*graph.Graph, *Sink, error) {
	return t.BuildWithSource(&Generator{Limit: t.Limit})
}

// BuildWithSource materializes the topology with a caller-provided
// source operator in place of the synthetic Generator — the seam that
// lets a network front end (ingest.Server) feed the paper's worker
// graphs. The source must submit on out-port 0.
func (t Topology) BuildWithSource(source graph.Source) (*graph.Graph, *Sink, error) {
	if t.Width < 1 || t.Depth < 1 {
		return nil, nil, fmt.Errorf("ops: width %d and depth %d must be positive", t.Width, t.Depth)
	}
	b := graph.NewBuilder()
	src := b.AddNode(source, 0, 1)
	snk := &Sink{}
	sn := b.AddNode(snk, 1, 0)

	// A width-1 topology needs no splitter; otherwise a round-robin
	// splitter stands in for the @parallel split the SPL runtime inserts.
	heads := make([]struct{ node, port int }, t.Width)
	if t.Width == 1 {
		heads[0] = struct{ node, port int }{src, 0}
	} else {
		split := b.AddNode(&RoundRobinSplit{Width: t.Width}, 1, t.Width)
		b.Connect(src, 0, split, 0)
		for w := 0; w < t.Width; w++ {
			heads[w] = struct{ node, port int }{split, w}
		}
	}
	// All workers share a cost, so one program serves every replica
	// (programs are immutable after binding).
	var prog *vm.Program
	if t.VM {
		prog = WorkerProgram("W", t.Cost)
	}
	for w := 0; w < t.Width; w++ {
		prev, prevPort := heads[w].node, heads[w].port
		for d := 0; d < t.Depth; d++ {
			n := b.AddNode(&Worker{OpName: fmt.Sprintf("W%d,%d", w+1, d+1), Cost: t.Cost, Prog: prog}, 1, 1)
			b.Connect(prev, prevPort, n, 0)
			prev, prevPort = n, 0
		}
		b.Connect(prev, prevPort, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, snk, nil
}

// Pipeline returns the pure pipeline topology (w=1).
func Pipeline(depth, cost int) Topology { return Topology{Width: 1, Depth: depth, Cost: cost} }

// DataParallel returns the pure data-parallel topology (d=1).
func DataParallel(width, cost int) Topology { return Topology{Width: width, Depth: 1, Cost: cost} }

// Mixed returns the combined topology of §5.3.
func Mixed(width, depth, cost int) Topology {
	return Topology{Width: width, Depth: depth, Cost: cost}
}
