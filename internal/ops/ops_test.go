package ops

import (
	"sync"
	"testing"

	"streams/internal/graph"
	"streams/internal/tuple"
)

// collector implements graph.Submitter, recording submissions.
type collector struct {
	mu   sync.Mutex
	got  []tuple.Tuple
	port []int
}

func (c *collector) Submit(t tuple.Tuple, outPort int) {
	c.mu.Lock()
	c.got = append(c.got, t)
	c.port = append(c.port, outPort)
	c.mu.Unlock()
}

func TestGeneratorBounded(t *testing.T) {
	g := &Generator{Limit: 10}
	c := &collector{}
	g.Run(c, make(chan struct{}))
	if len(c.got) != 10 {
		t.Fatalf("generated %d tuples, want 10", len(c.got))
	}
	for i, tp := range c.got {
		if tp.Words[0] != uint64(i) {
			t.Fatalf("tuple %d carries %d", i, tp.Words[0])
		}
	}
	if g.Produced() != 10 {
		t.Fatalf("Produced = %d", g.Produced())
	}
}

func TestGeneratorStops(t *testing.T) {
	g := &Generator{}
	stop := make(chan struct{})
	close(stop)
	c := &collector{}
	g.Run(c, stop) // must return promptly with stop already closed
	if len(c.got) > 1 {
		t.Fatalf("generator ran past stop: %d tuples", len(c.got))
	}
}

func TestGeneratorCustomPayload(t *testing.T) {
	g := &Generator{Limit: 3, Payload: func(i uint64) tuple.Tuple { return tuple.NewData(i * 7) }}
	c := &collector{}
	g.Run(c, make(chan struct{}))
	if c.got[2].Words[0] != 14 {
		t.Fatalf("payload hook ignored: %v", c.got[2])
	}
}

func TestSpinNonTrivial(t *testing.T) {
	a := Spin(1000, 1)
	b := Spin(1000, 2)
	if a == 0 || b == 0 {
		t.Fatal("Spin returned zero")
	}
	if Spin(0, 5) != Spin(0, 5) {
		t.Fatal("Spin not deterministic")
	}
}

func TestWorkerForwards(t *testing.T) {
	w := &Worker{Cost: 100}
	c := &collector{}
	in := tuple.NewData(42)
	w.Process(c, in, 0)
	if len(c.got) != 1 || c.got[0].Words[0] != 42 {
		t.Fatalf("worker did not forward: %v", c.got)
	}
}

func TestSinkCounts(t *testing.T) {
	s := &Sink{}
	var observed int
	s.OnTuple = func(tuple.Tuple) { observed++ }
	for i := 0; i < 5; i++ {
		s.Process(nil, tuple.NewData(uint64(i)), 0)
	}
	if s.Count() != 5 || observed != 5 {
		t.Fatalf("Count=%d observed=%d", s.Count(), observed)
	}
}

func TestSinkConcurrent(t *testing.T) {
	s := &Sink{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Process(nil, tuple.Tuple{}, 0)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", s.Count())
	}
}

func TestFilter(t *testing.T) {
	f := &Filter{Pred: func(tp tuple.Tuple) bool { return tp.Words[0]%2 == 0 }}
	c := &collector{}
	for i := uint64(0); i < 10; i++ {
		f.Process(c, tuple.NewData(i), 0)
	}
	if len(c.got) != 5 {
		t.Fatalf("filter passed %d tuples, want 5", len(c.got))
	}
	// Nil predicate forwards everything.
	f2 := &Filter{}
	f2.Process(c, tuple.NewData(1), 0)
	if len(c.got) != 6 {
		t.Fatal("nil predicate dropped a tuple")
	}
}

func TestCustomAndFunctor(t *testing.T) {
	c := &collector{}
	cu := &Custom{Fn: func(out graph.Submitter, tp tuple.Tuple, _ int) {
		out.Submit(tp, 0)
		out.Submit(tp, 0)
	}}
	cu.Process(c, tuple.NewData(1), 0)
	if len(c.got) != 2 {
		t.Fatalf("custom emitted %d", len(c.got))
	}
	fn := &Functor{Fn: func(tp tuple.Tuple) tuple.Tuple {
		tp.Words[0] *= 10
		return tp
	}}
	fn.Process(c, tuple.NewData(5), 0)
	if c.got[2].Words[0] != 50 {
		t.Fatalf("functor result %v", c.got[2])
	}
	// Nil functor forwards unchanged; nil custom emits nothing.
	(&Functor{}).Process(c, tuple.NewData(7), 0)
	if c.got[3].Words[0] != 7 {
		t.Fatal("nil functor mutated tuple")
	}
	before := len(c.got)
	(&Custom{}).Process(c, tuple.NewData(1), 0)
	if len(c.got) != before {
		t.Fatal("nil custom emitted")
	}
}

func TestRoundRobinSplit(t *testing.T) {
	s := &RoundRobinSplit{Width: 3}
	c := &collector{}
	for i := 0; i < 9; i++ {
		s.Process(c, tuple.NewData(uint64(i)), 0)
	}
	counts := map[int]int{}
	for _, p := range c.port {
		counts[p]++
	}
	for w := 0; w < 3; w++ {
		if counts[w] != 3 {
			t.Fatalf("port %d got %d tuples, want 3 (%v)", w, counts[w], counts)
		}
	}
	// Zero width degrades to a single output.
	s0 := &RoundRobinSplit{}
	c0 := &collector{}
	s0.Process(c0, tuple.Tuple{}, 0)
	if c0.port[0] != 0 {
		t.Fatal("zero-width split used wrong port")
	}
}

func TestSliceSource(t *testing.T) {
	src := &SliceSource{Tuples: []tuple.Tuple{tuple.NewData(9), tuple.NewData(8)}}
	c := &collector{}
	src.Run(c, make(chan struct{}))
	if len(c.got) != 2 || c.got[0].Words[0] != 9 || c.got[0].Seq != 0 || c.got[1].Seq != 1 {
		t.Fatalf("slice source output %v", c.got)
	}
}

func TestDefaultNames(t *testing.T) {
	names := map[string]interface{ Name() string }{
		"Src":         &Generator{},
		"Worker":      &Worker{},
		"Snk":         &Sink{},
		"Filter":      &Filter{},
		"Custom":      &Custom{},
		"Functor":     &Functor{},
		"Split":       &RoundRobinSplit{},
		"SliceSource": &SliceSource{},
	}
	for want, op := range names {
		if got := op.Name(); got != want {
			t.Errorf("default name %q, want %q", got, want)
		}
	}
	if (&Worker{OpName: "X"}).Name() != "X" {
		t.Error("explicit name ignored")
	}
}

func TestTopologyBuild(t *testing.T) {
	cases := []struct {
		topo        Topology
		nodes, pts  int
		description string
	}{
		{Pipeline(10, 1), 12, 11, "pipeline"},                   // src + 10 + snk
		{DataParallel(8, 1), 11, 10, "data parallel"},           // src + split + 8 + snk
		{Mixed(3, 4, 1), 15, 14, "mixed"},                       // src + split + 12 + snk
		{Topology{Width: 1, Depth: 1, Cost: 0}, 3, 2, "single"}, // src + w + snk
	}
	for _, tc := range cases {
		g, snk, err := tc.topo.Build()
		if err != nil {
			t.Fatalf("%s: %v", tc.description, err)
		}
		if snk == nil {
			t.Fatalf("%s: nil sink", tc.description)
		}
		if len(g.Nodes) != tc.nodes || len(g.Ports) != tc.pts {
			t.Fatalf("%s: %d nodes %d ports, want %d/%d",
				tc.description, len(g.Nodes), len(g.Ports), tc.nodes, tc.pts)
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, _, err := (Topology{Width: 0, Depth: 5}).Build(); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, _, err := (Topology{Width: 5, Depth: 0}).Build(); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestTopologyString(t *testing.T) {
	if got := Mixed(10, 100, 1000).String(); got != "w 10, d 100, cost 1000" {
		t.Fatalf("String() = %q", got)
	}
	if Mixed(10, 100, 0).Workers() != 1000 {
		t.Fatal("Workers() wrong")
	}
}
