// Package ops provides the operator library used by the examples, the
// experiment harness and the mini-SPL standard library: sources, sinks,
// filters, user-logic operators, and the synthetic cost-model Worker the
// paper's evaluation is built from (§5: "tuple processing cost is
// measured in floating point operations").
package ops

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/graph"
	"streams/internal/tuple"
	"streams/internal/vm"
)

func init() {
	// spin.work:ii(cost, seed) is the VM form of the Worker/Work body:
	// burn cost flops seeded by the tuple sequence number, absorbing
	// the result exactly like the closure path so the loop survives
	// optimization.
	vm.RegisterBuiltin("spin.work:ii", func(args []vm.Val) vm.Val {
		r := Spin(int(args[0].I)/2, uint64(args[1].I))
		workSink.Add(uint64(r))
		return vm.Val{F: r}
	})
	// The burn is a side effect that is harmless to repeat (workSink
	// only defeats the optimizer), so vectorized execution and its
	// panic-replay fall-back are both safe.
	vm.RegisterBuiltinInfo("spin.work:ii", vm.EffectReplay, vm.KFloat)
}

// Generator is a source that produces tuples as fast as downstream
// operators can absorb them, exactly like the paper's experiment sources.
// Every tuple's first payload word is its sequence number. If Limit is
// non-zero, the source stops after that many tuples (used by tests and
// drain experiments).
type Generator struct {
	// OpName is the diagnostic name; defaults to "Src".
	OpName string
	// Limit optionally bounds the number of generated tuples.
	Limit uint64
	// Payload optionally customizes the tuple for sequence number i.
	Payload func(i uint64) tuple.Tuple
	// Stamp writes the generation time (UnixNano) into the last payload
	// word so a Sink with TrackLatency can measure end-to-end latency
	// (§2.2 compares the threading models’ latency).
	Stamp bool

	produced atomic.Uint64
}

// Name implements graph.Operator.
func (g *Generator) Name() string {
	if g.OpName == "" {
		return "Src"
	}
	return g.OpName
}

// Process implements graph.Operator; sources receive no input.
func (g *Generator) Process(graph.Submitter, tuple.Tuple, int) {}

// Run implements graph.Source.
func (g *Generator) Run(out graph.Submitter, stop <-chan struct{}) {
	for i := uint64(0); g.Limit == 0 || i < g.Limit; i++ {
		select {
		case <-stop:
			return
		default:
		}
		var t tuple.Tuple
		if g.Payload != nil {
			t = g.Payload(i)
		} else {
			t = tuple.NewData(i)
		}
		if g.Stamp {
			t.Words[tuple.PayloadWords-1] = uint64(time.Now().UnixNano())
		}
		out.Submit(t, 0)
		g.produced.Store(i + 1)
	}
}

// Produced returns the number of tuples generated so far.
func (g *Generator) Produced() uint64 { return g.produced.Load() }

var (
	_ graph.Source = (*Generator)(nil)
)

// workSink absorbs the result of Spin so the compiler cannot eliminate
// the floating-point loop.
var workSink atomic.Uint64

// Spin performs cost floating-point operations and returns the result.
// It is the synthetic tuple-processing work from the paper's evaluation.
func Spin(cost int, seed uint64) float64 {
	x := float64(seed%1024) + 1.5
	for i := 0; i < cost; i++ {
		x += 1.000001 * x * 0.5 // two flops per iteration, kept dependent
		if x > 1e12 {
			x = math.Mod(x, 997) + 1.5
		}
	}
	return x
}

// Worker applies a fixed floating-point cost to every tuple and forwards
// it unchanged. It is stateless and therefore safe for concurrent
// execution of distinct input-port tuple sequences.
type Worker struct {
	// OpName is the diagnostic name.
	OpName string
	// Cost is the number of floating-point operations per tuple.
	Cost int
	// Prog, when set, lets the scheduler fuse this Worker into a
	// superinstruction chain (see WorkerProgram). Unfused dispatch
	// ignores it: the direct Spin call below is already optimal.
	Prog *vm.Program
}

// VMProgram implements vm.Programmed.
func (w *Worker) VMProgram() *vm.Program { return w.Prog }

// WorkerProgram assembles the bytecode form of a Worker with the given
// cost: push cost and the tuple's sequence number, call spin.work, pop,
// forward. Layouts are empty — the native payload rides in the tuple's
// fixed words, which forwarding segments preserve.
func WorkerProgram(name string, cost int) *vm.Program {
	b := vm.NewBuilder()
	if cost > 0 {
		b.ConstI(int64(cost))
		b.Ins(vm.OpLoadSeq, 0, 0)
		b.Call("spin.work:ii", 2)
		b.Op(vm.OpPop)
	}
	b.Op(vm.OpEmit)
	p, err := b.Finish(vm.Seg{Name: name}, vm.Layout{}, 0)
	if err != nil {
		return nil
	}
	if err := p.Bind(vm.Identity); err != nil {
		return nil
	}
	return p
}

// Name implements graph.Operator.
func (w *Worker) Name() string {
	if w.OpName == "" {
		return "Worker"
	}
	return w.OpName
}

// Process implements graph.Operator.
func (w *Worker) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if w.Cost > 0 {
		workSink.Add(uint64(Spin(w.Cost/2, t.Seq)))
	}
	out.Submit(t, 0)
}

// Sink counts tuples, protecting its local state with a lock exactly as
// the paper's Snk operator does (§5.2): operators may have local state,
// and SPL protects it when multiple threads can execute the operator.
type Sink struct {
	// OpName is the diagnostic name.
	OpName string
	// OnTuple, if set, observes every data tuple (used by examples).
	OnTuple func(t tuple.Tuple)
	// TrackLatency reads the generation stamp a Generator with Stamp
	// wrote and accumulates end-to-end latency statistics.
	TrackLatency bool

	mu         sync.Mutex
	count      uint64
	latSum     time.Duration
	latMax     time.Duration
	latSamples uint64
}

// Name implements graph.Operator.
func (s *Sink) Name() string {
	if s.OpName == "" {
		return "Snk"
	}
	return s.OpName
}

// Process implements graph.Operator.
func (s *Sink) Process(_ graph.Submitter, t tuple.Tuple, _ int) {
	var lat time.Duration
	if s.TrackLatency {
		if stamp := t.Words[tuple.PayloadWords-1]; stamp != 0 {
			lat = time.Duration(uint64(time.Now().UnixNano()) - stamp)
		}
	}
	s.mu.Lock()
	s.count++
	if lat > 0 {
		s.latSum += lat
		s.latSamples++
		if lat > s.latMax {
			s.latMax = lat
		}
	}
	s.mu.Unlock()
	if s.OnTuple != nil {
		s.OnTuple(t)
	}
}

// Latency returns the mean and maximum end-to-end latency observed so
// far (zero when TrackLatency is off or no stamped tuple arrived).
func (s *Sink) Latency() (mean, maxLat time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latSamples == 0 {
		return 0, 0
	}
	return s.latSum / time.Duration(s.latSamples), s.latMax
}

// Count returns the number of data tuples seen.
func (s *Sink) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Filter forwards only the tuples for which Pred returns true. A nil
// Pred forwards everything.
type Filter struct {
	// OpName is the diagnostic name.
	OpName string
	// Pred decides whether a tuple passes.
	Pred func(t tuple.Tuple) bool
}

// Name implements graph.Operator.
func (f *Filter) Name() string {
	if f.OpName == "" {
		return "Filter"
	}
	return f.OpName
}

// Process implements graph.Operator.
func (f *Filter) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if f.Pred == nil || f.Pred(t) {
		out.Submit(t, 0)
	}
}

// Custom runs a user function for every tuple, like SPL's Custom
// operator. The function receives the submitter and may emit zero or more
// tuples on any output port.
type Custom struct {
	// OpName is the diagnostic name.
	OpName string
	// Fn is the per-tuple logic.
	Fn func(out graph.Submitter, t tuple.Tuple, inPort int)
}

// Name implements graph.Operator.
func (c *Custom) Name() string {
	if c.OpName == "" {
		return "Custom"
	}
	return c.OpName
}

// Process implements graph.Operator.
func (c *Custom) Process(out graph.Submitter, t tuple.Tuple, inPort int) {
	if c.Fn != nil {
		c.Fn(out, t, inPort)
	}
}

// Functor transforms each tuple with a function, like SPL's Functor. A
// nil Fn forwards tuples unchanged.
type Functor struct {
	// OpName is the diagnostic name.
	OpName string
	// Fn maps an input tuple to the output tuple.
	Fn func(t tuple.Tuple) tuple.Tuple
}

// Name implements graph.Operator.
func (f *Functor) Name() string {
	if f.OpName == "" {
		return "Functor"
	}
	return f.OpName
}

// Process implements graph.Operator.
func (f *Functor) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if f.Fn != nil {
		t = f.Fn(t)
	}
	out.Submit(t, 0)
}

// RoundRobinSplit distributes incoming tuples across its output ports in
// round-robin order — the splitter @parallel inserts in front of replica
// operators. Tuple order within each output stream follows arrival order,
// preserving the per-stream ordering guarantee.
type RoundRobinSplit struct {
	// OpName is the diagnostic name.
	OpName string
	// Width is the number of output ports.
	Width int

	next atomic.Uint64
}

// Name implements graph.Operator.
func (s *RoundRobinSplit) Name() string {
	if s.OpName == "" {
		return "Split"
	}
	return s.OpName
}

// Process implements graph.Operator.
func (s *RoundRobinSplit) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	w := s.Width
	if w <= 0 {
		w = 1
	}
	out.Submit(t, int((s.next.Add(1)-1)%uint64(w)))
}

// SliceSource replays a fixed slice of tuples, used by tests and the SPL
// FileSource implementation.
type SliceSource struct {
	// OpName is the diagnostic name.
	OpName string
	// Tuples are emitted in order on output port 0.
	Tuples []tuple.Tuple
}

// Name implements graph.Operator.
func (s *SliceSource) Name() string {
	if s.OpName == "" {
		return "SliceSource"
	}
	return s.OpName
}

// Process implements graph.Operator; sources receive no input.
func (s *SliceSource) Process(graph.Submitter, tuple.Tuple, int) {}

// Run implements graph.Source.
func (s *SliceSource) Run(out graph.Submitter, stop <-chan struct{}) {
	for i, t := range s.Tuples {
		select {
		case <-stop:
			return
		default:
		}
		t.Seq = uint64(i)
		out.Submit(t, 0)
	}
}

var _ graph.Source = (*SliceSource)(nil)
