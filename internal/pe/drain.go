package pe

import (
	"sync/atomic"

	"streams/internal/graph"
	"streams/internal/tuple"
)

// drainState tracks final-punctuation progress for the manual and
// dedicated runners (the dynamic runner has its own copy inside the
// scheduler): how many finals each port still expects, how many open
// input ports each node retains, and how many ports remain open PE-wide.
type drainState struct {
	remainingProducers []atomic.Int32
	nodeOpenIns        []atomic.Int32
	portClosed         []atomic.Bool
	openPorts          atomic.Int32
	doneCh             chan struct{}
}

func newDrainState(g *graph.Graph) *drainState {
	d := &drainState{
		remainingProducers: make([]atomic.Int32, len(g.Ports)),
		nodeOpenIns:        make([]atomic.Int32, len(g.Nodes)),
		portClosed:         make([]atomic.Bool, len(g.Ports)),
		doneCh:             make(chan struct{}),
	}
	for _, p := range g.Ports {
		d.remainingProducers[p.ID].Store(int32(p.Producers))
	}
	for _, n := range g.Nodes {
		d.nodeOpenIns[n.ID].Store(int32(n.NumIn))
	}
	d.openPorts.Store(int32(len(g.Ports)))
	if len(g.Ports) == 0 {
		close(d.doneCh)
	}
	return d
}

// onFinal accounts one final punctuation arriving at port p. It reports
// (portNowClosed, nodeNowClosed); when the node closes the caller must
// flush any Finalizer and forward final punctuation downstream.
func (d *drainState) onFinal(p *graph.InPort) (portClosed, nodeClosed bool) {
	if d.remainingProducers[p.ID].Add(-1) > 0 {
		return false, false
	}
	d.portClosed[p.ID].Store(true)
	nodeClosed = d.nodeOpenIns[p.Node.ID].Add(-1) == 0
	if d.openPorts.Add(-1) == 0 {
		close(d.doneCh)
	}
	return true, nodeClosed
}

// finishNode runs the node's Finalizer (if any) under containment and
// forwards final punctuation on every output port via out. The forward
// runs even when the finalizer is quarantined or panics, so downstream
// drain progress never depends on a faulty operator.
func finishNode(c *containment, tid int, n *graph.Node, out graph.Submitter) {
	c.runFinish(tid, n, out)
	for port := 0; port < n.NumOut; port++ {
		out.Submit(tuple.Final(), port)
	}
}
