package pe

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/lfq"
	"streams/internal/metrics"
	"streams/internal/tuple"
)

// dedicatedRunner implements the dedicated threading model: a threaded
// port between every pair of operators, i.e. one thread and one queue per
// operator input port (§2.2). In the common case each queue has a single
// producer and its single dedicated consumer, so the handoff is the
// synchronization-free SPSC fast path; the producer lock only matters for
// fan-in ports. Producers block (with back-off) when a queue fills —
// dedicated threads never execute other operators' work, which is
// exactly why the model over-subscribes the machine when operators
// outnumber cores.
type dedicatedRunner struct {
	g       *graph.Graph
	queues  []*lfq.Enforcer[tuple.Tuple]
	drain   *drainState
	contain *containment
	exec    *metrics.Counter
	sink    *metrics.Counter
	latency *metrics.Histogram // nil when latency measurement is off

	stop atomic.Bool
	wg   sync.WaitGroup
}

const dedicatedBackoffMax = 10 * time.Millisecond

func newDedicatedRunner(g *graph.Graph, queueCap int, inj *fault.Injector, quarantineAfter int, latency *metrics.Histogram) *dedicatedRunner {
	if queueCap == 0 {
		queueCap = 64
	}
	shards := len(g.Ports) + len(g.SourceNodes)
	r := &dedicatedRunner{
		g:       g,
		queues:  make([]*lfq.Enforcer[tuple.Tuple], len(g.Ports)),
		drain:   newDrainState(g),
		contain: newContainment(g, inj, quarantineAfter, shards),
		exec:    metrics.NewCounter(shards),
		sink:    metrics.NewCounter(shards),
		latency: latency,
	}
	for i := range r.queues {
		r.queues[i] = lfq.NewEnforcer[tuple.Tuple](queueCap)
	}
	return r
}

func (r *dedicatedRunner) start() error {
	for _, p := range r.g.Ports {
		r.wg.Add(1)
		go func(p *graph.InPort) {
			defer r.wg.Done()
			r.portLoop(p)
		}(p)
	}
	return nil
}

// dedicatedBatch is the drain-batch size for dedicated port threads,
// matching the dynamic scheduler's cap.
const dedicatedBatch = 32

// portLoop is one dedicated thread: consume the port's queue forever in
// batches, backing off exponentially while it is empty, until the port
// closes or the PE shuts down. Batching reuses the scheduler's batch
// drain idea: one acquire refresh and one release store of the queue
// indices, and one counter charge, per batch instead of per tuple.
func (r *dedicatedRunner) portLoop(p *graph.InPort) {
	q := r.queues[p.ID].Queue() // sole consumer: no consumer lock needed
	batchCap := dedicatedBatch
	if c := q.Cap(); c < batchCap {
		batchCap = c
	}
	buf := make([]tuple.Tuple, batchCap)
	delay := time.Microsecond
	for {
		if n := q.PopN(buf); n > 0 {
			delay = time.Microsecond
			if r.deliverBatch(p, buf[:n]) {
				return // port closed by its final punctuation
			}
			continue
		}
		if r.stop.Load() {
			return
		}
		time.Sleep(delay)
		if delay < dedicatedBackoffMax {
			delay *= 10
		}
	}
}

// deliverBatch processes a batch of tuples at port p on p's dedicated
// thread, charging the execution counters once per batch, and reports
// whether the port just closed. As in the scheduler's batch drain, the
// counts are settled before a final punctuation is handled so every
// executed tuple is visible in the counters by the time the PE closes.
func (r *dedicatedRunner) deliverBatch(p *graph.InPort, batch []tuple.Tuple) bool {
	// One execution context serves the whole batch; it escapes into
	// operator code through the Submitter interface, so allocating it per
	// tuple would dominate small-tuple cost.
	ec := &dedicatedCtx{r: r, node: p.Node, tid: p.ID}
	data := 0
	charge := func() {
		if data == 0 {
			return
		}
		r.exec.Add(p.ID, uint64(data))
		if p.Node.NumOut == 0 {
			r.sink.Add(p.ID, uint64(data))
		}
		data = 0
	}
	for i := range batch {
		if batch[i].Kind == tuple.FinalMark {
			charge()
		}
		if r.deliver(ec, p, batch[i], &data) {
			charge()
			return true
		}
	}
	charge()
	return false
}

// deliver processes one tuple at port p on p's dedicated thread,
// reporting whether the port just closed. Data executions are tallied
// into *data; the caller charges the sharded counters per batch.
func (r *dedicatedRunner) deliver(ec *dedicatedCtx, p *graph.InPort, t tuple.Tuple, data *int) bool {
	switch t.Kind {
	case tuple.Data:
		if lat := r.latency; lat != nil && p.Node.NumOut == 0 && t.Stamp != 0 {
			lat.Record(p.ID, time.Duration(time.Now().UnixNano()-t.Stamp))
		}
		if r.contain.runData(p.ID, p.Node, ec, t, p.Index) {
			*data++
		}
	case tuple.WindowMark:
		r.contain.runPunct(p.ID, p.Node, ec, tuple.WindowMark, p.Index)
		for out := 0; out < p.Node.NumOut; out++ {
			ec.Submit(tuple.Window(), out)
		}
	case tuple.FinalMark:
		r.contain.runPunct(p.ID, p.Node, ec, tuple.FinalMark, p.Index)
		portClosed, nodeClosed := r.drain.onFinal(p)
		if nodeClosed {
			finishNode(r.contain, p.ID, p.Node, ec)
		}
		return portClosed
	}
	return false
}

// dedicatedCtx routes submissions with blocking pushes.
type dedicatedCtx struct {
	r    *dedicatedRunner
	node *graph.Node
	tid  int
	// stamp marks source submitters when latency measurement is on; see
	// the scheduler's ctx.stamp.
	stamp bool
}

// Submit implements graph.Submitter.
func (c *dedicatedCtx) Submit(t tuple.Tuple, outPort int) {
	if c.stamp && t.Kind == tuple.Data {
		t.Stamp = time.Now().UnixNano()
	}
	for _, pid := range c.node.Outs[outPort] {
		t2 := t
		t2.Port = int32(pid)
		c.r.blockingPush(pid, t2)
	}
}

// blockingPush retries until the destination queue accepts the tuple:
// the dedicated model's back-pressure. It yields between attempts so the
// (usually oversubscribed) consumer threads can drain.
func (c *dedicatedRunner) blockingPush(pid int, t tuple.Tuple) {
	c.contain.inj.StallFault()
	q := c.queues[pid]
	spins := 0
	for !q.Push(t) {
		if c.stop.Load() {
			return
		}
		if spins++; spins > 4 {
			time.Sleep(10 * time.Microsecond)
			spins = 0
		} else {
			runtime.Gosched()
		}
	}
}

func (r *dedicatedRunner) sourceSubmitter(i int) graph.Submitter {
	return &dedicatedCtx{r: r, node: r.g.SourceNodes[i], tid: len(r.g.Ports) + i, stamp: r.latency != nil}
}

func (r *dedicatedRunner) sourceDone(i int) {
	n := r.g.SourceNodes[i]
	ec := &dedicatedCtx{r: r, node: n, tid: len(r.g.Ports) + i}
	for port := 0; port < n.NumOut; port++ {
		ec.Submit(tuple.Final(), port)
	}
}

func (r *dedicatedRunner) executed() uint64 { return r.exec.Total() }

func (r *dedicatedRunner) backlog() int {
	total := 0
	for _, q := range r.queues {
		total += q.Queue().Len()
	}
	return total
}
func (r *dedicatedRunner) sinkDelivered() uint64          { return r.sink.Total() }
func (r *dedicatedRunner) done() <-chan struct{}          { return r.drain.doneCh }
func (r *dedicatedRunner) faults() metrics.FaultsSnapshot { return r.contain.snapshot() }
func (r *dedicatedRunner) lastFault() string              { return r.contain.last() }

func (r *dedicatedRunner) shutdown() error {
	r.stop.Store(true)
	r.wg.Wait()
	return nil
}
