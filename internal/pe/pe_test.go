package pe

import (
	"sync"
	"testing"
	"time"

	"streams/internal/cpuutil"
	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/sched"
	"streams/internal/tuple"
)

func pipelineGraph(t *testing.T, depth int, limit uint64, snk *ops.Sink) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: limit}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		n := b.AddNode(&ops.Worker{}, 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(prev, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mixedGraph(t *testing.T, width, depth int, limit uint64, snk *ops.Sink) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: limit}, 0, 1)
	split := b.AddNode(&ops.RoundRobinSplit{Width: width}, 1, width)
	b.Connect(src, 0, split, 0)
	sn := b.AddNode(snk, 1, 0)
	for w := 0; w < width; w++ {
		prev, prevPort := split, w
		for d := 0; d < depth; d++ {
			n := b.AddNode(&ops.Worker{}, 1, 1)
			b.Connect(prev, prevPort, n, 0)
			prev, prevPort = n, 0
		}
		b.Connect(prev, prevPort, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runToDrain(t *testing.T, p *PE) {
	t.Helper()
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("PE did not drain in 60s")
	}
}

func TestModelString(t *testing.T) {
	if Manual.String() != "manual" || Dedicated.String() != "dedicated" || Dynamic.String() != "dynamic" {
		t.Fatal("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Fatal("unknown model formatting wrong")
	}
}

func TestNewValidation(t *testing.T) {
	g := pipelineGraph(t, 1, 1, &ops.Sink{})
	if _, err := New(g, Config{Model: Manual, Elastic: true}); err == nil {
		t.Error("elastic manual accepted")
	}
	if _, err := New(g, Config{Threads: -2}); err == nil {
		t.Error("negative threads accepted")
	}
	if _, err := New(g, Config{Model: Model(42)}); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestAllModelsDeliverAll runs the same bounded pipeline under all three
// threading models and checks identical delivery counts and ordering.
func TestAllModelsDeliverAll(t *testing.T) {
	const n = 10000
	const depth = 15
	for _, model := range []Model{Manual, Dedicated, Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			var mu sync.Mutex
			var seen []uint64
			snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
				mu.Lock()
				seen = append(seen, tp.Words[0])
				mu.Unlock()
			}}
			g := pipelineGraph(t, depth, n, snk)
			p, err := New(g, Config{Model: model, Threads: 3, MaxThreads: 4})
			if err != nil {
				t.Fatal(err)
			}
			runToDrain(t, p)
			if got := snk.Count(); got != n {
				t.Fatalf("%v: sink saw %d tuples, want %d", model, got, n)
			}
			if got, want := p.Executed(), uint64(n*(depth+1)); got != want {
				t.Fatalf("%v: Executed = %d, want %d", model, got, want)
			}
			for i, v := range seen {
				if v != uint64(i) {
					t.Fatalf("%v: position %d got tuple %d", model, i, v)
				}
			}
		})
	}
}

// TestAllModelsMixedGraph exercises the w×d topology from Fig. 10 at
// small scale under each model.
func TestAllModelsMixedGraph(t *testing.T) {
	const n = 4000
	for _, model := range []Model{Manual, Dedicated, Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			snk := &ops.Sink{}
			g := mixedGraph(t, 4, 5, n, snk)
			p, err := New(g, Config{Model: model, Threads: 2, MaxThreads: 4, QueueCap: 16})
			if err != nil {
				t.Fatal(err)
			}
			runToDrain(t, p)
			if got := snk.Count(); got != n {
				t.Fatalf("%v: sink saw %d, want %d", model, got, n)
			}
		})
	}
}

func TestLevelReporting(t *testing.T) {
	g := pipelineGraph(t, 3, 100, &ops.Sink{})
	p, err := New(g, Config{Model: Manual})
	if err != nil {
		t.Fatal(err)
	}
	if p.Level() != 0 {
		t.Fatalf("manual level = %d, want 0", p.Level())
	}
	g2 := pipelineGraph(t, 3, 100, &ops.Sink{})
	p2, err := New(g2, Config{Model: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Level() != 4 { // 3 workers + sink
		t.Fatalf("dedicated level = %d, want 4", p2.Level())
	}
}

// TestStopUnboundedRun starts an unbounded source under each model and
// verifies Stop drains and returns.
func TestStopUnboundedRun(t *testing.T) {
	for _, model := range []Model{Manual, Dedicated, Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			snk := &ops.Sink{}
			g := pipelineGraph(t, 5, 0, snk)
			p, err := New(g, Config{Model: model, Threads: 2, MaxThreads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Start(); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(20 * time.Second)
			for snk.Count() < 500 {
				if time.Now().After(deadline) {
					t.Fatalf("%v: tuples did not flow", model)
				}
				time.Sleep(time.Millisecond)
			}
			done := make(chan struct{})
			go func() { p.Stop(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("%v: Stop hung", model)
			}
			if snk.Count() == 0 {
				t.Fatalf("%v: nothing delivered", model)
			}
		})
	}
}

// TestElasticAdaptsLevel runs an elastic dynamic PE with a fast adaptation
// period and verifies the controller moves the level and emits trace
// samples.
func TestElasticAdaptsLevel(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 10, 0, snk)
	var mu sync.Mutex
	var samples []Sample
	p, err := New(g, Config{
		Model:       Dynamic,
		Threads:     1,
		Elastic:     true,
		MaxThreads:  4,
		AdaptPeriod: 30 * time.Millisecond,
		CPUUsage:    cpuutil.Fixed(0.1),
		Trace: func(s Sample) {
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		enough := len(samples) >= 8
		mu.Unlock()
		if enough {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("not enough adaptation samples")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()
	mu.Lock()
	defer mu.Unlock()
	levelChanged := false
	for _, s := range samples {
		if s.Level != samples[0].Level {
			levelChanged = true
		}
		if s.Throughput < 0 {
			t.Fatalf("negative throughput sample %+v", s)
		}
	}
	if !levelChanged {
		t.Fatalf("elastic controller never changed level: %+v", samples)
	}
	if snk.Count() == 0 {
		t.Fatal("no tuples delivered during elastic run")
	}
}

// TestElasticCPUGateHolds verifies a saturated CPU gate pins the level at
// the minimum.
func TestElasticCPUGateHolds(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 5, 0, snk)
	p, err := New(g, Config{
		Model:       Dynamic,
		Threads:     1,
		Elastic:     true,
		MaxThreads:  8,
		AdaptPeriod: 20 * time.Millisecond,
		CPUUsage:    cpuutil.Fixed(0.99),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	// The deadlock-avoidance floor for this graph is MinLevel = 2 (one
	// input port per operator + 1); the gate must hold the level there.
	if got := p.Level(); got > 2 {
		t.Fatalf("level %d grew despite saturated CPU gate", got)
	}
	p.Stop()
}

func TestDoubleStartRejected(t *testing.T) {
	g := pipelineGraph(t, 2, 10, &ops.Sink{})
	p, err := New(g, Config{Model: Dynamic, Threads: 1, MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
	p.Wait()
}

// TestDynamicWithExplicitSchedConfig plumbs custom scheduler settings
// through the PE.
func TestDynamicWithExplicitSchedConfig(t *testing.T) {
	snk := &ops.Sink{}
	g := pipelineGraph(t, 8, 3000, snk)
	p, err := New(g, Config{
		Model:   Dynamic,
		Threads: 2,
		Sched:   sched.Config{QueueCap: 4, MaxThreads: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	runToDrain(t, p)
	if got := snk.Count(); got != 3000 {
		t.Fatalf("sink saw %d, want 3000", got)
	}
}
