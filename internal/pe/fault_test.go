package pe

import (
	"strings"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// panicky forwards tuples but panics on selected sequence numbers,
// modeling an operator with a data-dependent bug.
type panicky struct {
	name    string
	panicOn func(word uint64) bool
}

func (p *panicky) Name() string { return p.name }

func (p *panicky) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if p.panicOn(t.Words[0]) {
		panic("boom: " + p.name)
	}
	out.Submit(t, 0)
}

// TestPanicContainedAllModels runs the same buggy pipeline under all
// three threading models and checks the containment contract everywhere:
// the process survives, the operator is quarantined after its strike
// budget, final punctuation still propagates past the quarantined node
// (the PE drains), and delivered + dead-lettered == generated.
func TestPanicContainedAllModels(t *testing.T) {
	const n = 2000
	for _, model := range []Model{Manual, Dedicated, Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			snk := &ops.Sink{}
			b := graph.NewBuilder()
			src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
			// Panics on words 0, 500, 1000 (the third strike quarantines)
			// and would on 1500, which is dead-lettered instead.
			bad := b.AddNode(&panicky{name: "Bad", panicOn: func(w uint64) bool { return w%500 == 0 }}, 1, 1)
			wk := b.AddNode(&ops.Worker{}, 1, 1)
			sn := b.AddNode(snk, 1, 0)
			b.Connect(src, 0, bad, 0)
			b.Connect(bad, 0, wk, 0)
			b.Connect(wk, 0, sn, 0)
			g, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(g, Config{Model: model, Threads: 2, MaxThreads: 2, QuarantineAfter: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Start(); err != nil {
				t.Fatal(err)
			}
			// A bounded WaitTimeout returning nil is the drain proof: final
			// punctuation crossed the quarantined operator.
			if err := p.WaitTimeout(30 * time.Second); err != nil {
				t.Fatalf("%v: drain failed: %v", model, err)
			}
			fs := p.FaultStats()
			if fs.OpPanics != 3 {
				t.Errorf("%v: OpPanics = %d, want 3", model, fs.OpPanics)
			}
			if fs.Quarantines != 1 {
				t.Errorf("%v: Quarantines = %d, want 1", model, fs.Quarantines)
			}
			if got := snk.Count() + fs.DeadLetters; got != n {
				t.Errorf("%v: delivered %d + dead-lettered %d = %d, want %d (conservation broken)",
					model, snk.Count(), fs.DeadLetters, got, n)
			}
			if snk.Count() == 0 {
				t.Errorf("%v: sink saw nothing; containment swallowed the stream", model)
			}
			if lf := p.LastFault(); !strings.Contains(lf, "Bad") {
				t.Errorf("%v: LastFault %q does not name the operator", model, lf)
			}
		})
	}
}

// TestSchedStatsSurfaceFaults checks the dynamic model surfaces the
// containment meters through SchedStats as well as FaultStats.
func TestSchedStatsSurfaceFaults(t *testing.T) {
	const n = 100
	snk := &ops.Sink{}
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	bad := b.AddNode(&panicky{name: "Bad", panicOn: func(w uint64) bool { return w == 7 }}, 1, 1)
	sn := b.AddNode(snk, 1, 0)
	b.Connect(src, 0, bad, 0)
	b.Connect(bad, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(g, Config{Model: Dynamic, Threads: 1, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	runToDrain(t, p)
	st := p.SchedStats()
	if st.Faults != p.FaultStats() {
		t.Errorf("SchedStats.Faults %+v != FaultStats %+v", st.Faults, p.FaultStats())
	}
	if st.Faults.OpPanics != 1 || st.Faults.DeadLetters != 1 {
		t.Errorf("Faults = %+v, want exactly one contained panic and dead letter", st.Faults)
	}
}
