package pe

import (
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/tuple"
)

// fusedRunner implements the manual threading model: no scheduler
// threads, no queues, no tuple copies into buffers. Each source thread
// executes its whole downstream subgraph by direct (recursive) function
// calls — submission is synchronous, so by the time Submit returns, every
// downstream operator has fully processed the tuple. This gives the
// lowest latency of the three models and exactly one thread per source
// (§2.2).
type fusedRunner struct {
	g       *graph.Graph
	drain   *drainState
	contain *containment
	exec    *metrics.Counter
	sink    *metrics.Counter
	latency *metrics.Histogram // nil when latency measurement is off
}

func newFusedRunner(g *graph.Graph, inj *fault.Injector, quarantineAfter int, latency *metrics.Histogram) *fusedRunner {
	return &fusedRunner{
		g:       g,
		drain:   newDrainState(g),
		contain: newContainment(g, inj, quarantineAfter, len(g.SourceNodes)),
		exec:    metrics.NewCounter(len(g.SourceNodes)),
		sink:    metrics.NewCounter(len(g.SourceNodes)),
		latency: latency,
	}
}

func (f *fusedRunner) start() error { return nil }

// fusedCtx is the call-through submitter for one executing node.
type fusedCtx struct {
	r    *fusedRunner
	node *graph.Node
	tid  int
	// stamp marks source submitters when latency measurement is on; see
	// the scheduler's ctx.stamp.
	stamp bool
}

// Submit implements graph.Submitter by synchronously executing every
// subscribed downstream port.
func (c *fusedCtx) Submit(t tuple.Tuple, outPort int) {
	if c.stamp && t.Kind == tuple.Data {
		t.Stamp = time.Now().UnixNano()
	}
	for _, pid := range c.node.Outs[outPort] {
		p := c.r.g.Ports[pid]
		c.r.deliver(p, t, c.tid)
	}
}

// deliver processes one tuple at port p in the calling thread.
func (f *fusedRunner) deliver(p *graph.InPort, t tuple.Tuple, tid int) {
	ec := &fusedCtx{r: f, node: p.Node, tid: tid}
	switch t.Kind {
	case tuple.Data:
		if lat := f.latency; lat != nil && p.Node.NumOut == 0 && t.Stamp != 0 {
			lat.Record(tid, time.Duration(time.Now().UnixNano()-t.Stamp))
		}
		if f.contain.runData(tid, p.Node, ec, t, p.Index) {
			f.exec.Add(tid, 1)
			if p.Node.NumOut == 0 {
				f.sink.Add(tid, 1)
			}
		}
	case tuple.WindowMark:
		f.contain.runPunct(tid, p.Node, ec, tuple.WindowMark, p.Index)
		for out := 0; out < p.Node.NumOut; out++ {
			ec.Submit(tuple.Window(), out)
		}
	case tuple.FinalMark:
		f.contain.runPunct(tid, p.Node, ec, tuple.FinalMark, p.Index)
		if _, nodeClosed := f.drain.onFinal(p); nodeClosed {
			finishNode(f.contain, tid, p.Node, ec)
		}
	}
}

func (f *fusedRunner) sourceSubmitter(i int) graph.Submitter {
	return &fusedCtx{r: f, node: f.g.SourceNodes[i], tid: i, stamp: f.latency != nil}
}

func (f *fusedRunner) sourceDone(i int) {
	n := f.g.SourceNodes[i]
	ec := &fusedCtx{r: f, node: n, tid: i}
	for port := 0; port < n.NumOut; port++ {
		ec.Submit(tuple.Final(), port)
	}
}

func (f *fusedRunner) executed() uint64               { return f.exec.Total() }
func (f *fusedRunner) backlog() int                   { return 0 }
func (f *fusedRunner) sinkDelivered() uint64          { return f.sink.Total() }
func (f *fusedRunner) done() <-chan struct{}          { return f.drain.doneCh }
func (f *fusedRunner) faults() metrics.FaultsSnapshot { return f.contain.snapshot() }
func (f *fusedRunner) lastFault() string              { return f.contain.last() }
func (f *fusedRunner) shutdown() error                { return nil }
