package pe

import (
	"testing"
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/ops"
)

// mixedGraphWithSource is mixedGraph with a caller-supplied generator, so
// chaos tests can compare against the exact produced count.
func mixedGraphWithSource(t *testing.T, gen *ops.Generator, width, depth int, snk *ops.Sink) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(gen, 0, 1)
	split := b.AddNode(&ops.RoundRobinSplit{Width: width}, 1, width)
	b.Connect(src, 0, split, 0)
	sn := b.AddNode(snk, 1, 0)
	for w := 0; w < width; w++ {
		prev, prevPort := split, w
		for d := 0; d < depth; d++ {
			n := b.AddNode(&ops.Worker{}, 1, 1)
			b.Connect(prev, prevPort, n, 0)
			prev, prevPort = n, 0
		}
		b.Connect(prev, prevPort, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestChaosSoakMixed is the chaos soak: a mixed 10-wide, 100-deep
// topology under the dynamic scheduler with every operator- and
// queue-seam injector armed — deterministic seeded panics, slowdowns and
// queue stalls — plus the stall watchdog. The invariants are exactly the
// issue's: the process survives, the PE drains cleanly within a bounded
// wait, and tuple conservation is exact (delivered + dead-lettered ==
// generated).
//
// Run it under -race: `make chaos` pins the seed used here.
func TestChaosSoakMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	const n = 20000
	inj := fault.New(fault.Config{
		Seed:      42,
		PanicRate: 0.002,
		SlowRate:  0.002, SlowFor: 20 * time.Microsecond,
		StallRate: 0.002, StallFor: 20 * time.Microsecond,
	})
	gen := &ops.Generator{Limit: n}
	snk := &ops.Sink{}
	g := mixedGraphWithSource(t, gen, 10, 100, snk)
	p, err := New(g, Config{
		Model:            Dynamic,
		Threads:          4,
		MaxThreads:       4,
		Fault:            inj,
		QuarantineAfter:  1 << 30, // panics everywhere; quarantine would be noise
		WatchdogInterval: 10 * time.Millisecond,
		StallThreshold:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitTimeout(120 * time.Second); err != nil {
		t.Fatalf("chaos soak did not drain: %v", err)
	}
	fs := p.FaultStats()
	if fs.OpPanics == 0 {
		t.Fatal("injector never fired a panic over ~2M seam consultations")
	}
	if fired := inj.Fired(fault.OpPanic); fired != fs.OpPanics {
		t.Errorf("injector fired %d panics, containment recovered %d", fired, fs.OpPanics)
	}
	if fs.OpPanics != fs.DeadLetters {
		t.Errorf("OpPanics %d != DeadLetters %d with quarantine disabled", fs.OpPanics, fs.DeadLetters)
	}
	if got := snk.Count() + fs.DeadLetters; got != gen.Produced() {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d (conservation broken)",
			snk.Count(), fs.DeadLetters, got, gen.Produced())
	}
	t.Logf("soak: %d delivered, %d dead-lettered, %d panics, %d slowdowns, %d stalls, %d watchdog reports",
		snk.Count(), fs.DeadLetters, fs.OpPanics,
		inj.Fired(fault.OpSlow), inj.Fired(fault.QueueStall), fs.WatchdogStalls)
}

// TestChaosQuarantineUnderInjection re-runs a smaller soak with the
// default strike budget so injected panics drive real quarantines, and
// checks conservation still holds when whole operators go dark.
func TestChaosQuarantineUnderInjection(t *testing.T) {
	const n = 10000
	inj := fault.New(fault.Config{Seed: 7, PanicRate: 0.01})
	gen := &ops.Generator{Limit: n}
	snk := &ops.Sink{}
	g := mixedGraphWithSource(t, gen, 4, 25, snk)
	p, err := New(g, Config{Model: Dynamic, Threads: 2, MaxThreads: 4, Fault: inj, QuarantineAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitTimeout(60 * time.Second); err != nil {
		t.Fatalf("drain failed with quarantined operators: %v", err)
	}
	fs := p.FaultStats()
	if fs.Quarantines == 0 {
		t.Errorf("no quarantines at 1%% panic rate over ~%d executions", n*26)
	}
	if got := snk.Count() + fs.DeadLetters; got != gen.Produced() {
		t.Errorf("delivered %d + dead-lettered %d = %d, want %d (conservation broken)",
			snk.Count(), fs.DeadLetters, got, gen.Produced())
	}
}
