package pe

import (
	"fmt"
	"sync/atomic"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/sched"
	"streams/internal/tuple"
)

// containment is the fault-containment state shared by the manual and
// dedicated runners (the dynamic runner has its own copy inside the
// scheduler, wired to the same config): recovered-panic accounting,
// per-operator strike counts, and the quarantine set. An operator that
// panics quarantineAfter times is quarantined — its subsequent data
// tuples are dead-lettered instead of executed, while punctuation keeps
// flowing past it so the PE still drains.
type containment struct {
	after  int
	inj    *fault.Injector
	faults *metrics.Faults
	// seen gates the quarantine lookup: until the first panic, the data
	// path pays one atomic load here and nothing else.
	seen        atomic.Bool
	strikes     []atomic.Int32
	quarantined []atomic.Bool
	lastFault   atomic.Value // string
}

func newContainment(g *graph.Graph, inj *fault.Injector, after, shards int) *containment {
	if after <= 0 {
		after = 3
	}
	return &containment{
		after:       after,
		inj:         inj,
		faults:      metrics.NewFaults(shards),
		strikes:     make([]atomic.Int32, len(g.Nodes)),
		quarantined: make([]atomic.Bool, len(g.Nodes)),
	}
}

func (c *containment) isQuarantined(n *graph.Node) bool {
	return c.seen.Load() && c.quarantined[n.ID].Load()
}

// contain records a recovered panic from node n; deadLetter says a data
// tuple was consumed by the panicking call and must be accounted.
func (c *containment) contain(tid int, n *graph.Node, r any, deadLetter bool) {
	c.seen.Store(true)
	c.faults.OpPanics.Add(tid, 1)
	if deadLetter {
		c.faults.DeadLetters.Add(tid, 1)
	}
	if int(c.strikes[n.ID].Add(1)) == c.after {
		c.quarantined[n.ID].Store(true)
		c.faults.Quarantines.Add(tid, 1)
	}
	c.lastFault.Store(fmt.Sprintf("pe: operator %s (node %d) panicked: %v", n.Op.Name(), n.ID, r))
}

// runData executes one data tuple at node n under containment and
// reports whether the tuple counts as executed; false means it was
// dead-lettered (quarantined operator, or the call panicked).
func (c *containment) runData(tid int, n *graph.Node, ec graph.Submitter, t tuple.Tuple, idx int) (ok bool) {
	if c.isQuarantined(n) {
		c.faults.DeadLetters.Add(tid, 1)
		return false
	}
	defer func() {
		if r := recover(); r != nil {
			c.contain(tid, n, r, true)
			ok = false
		}
	}()
	// The injected fault fires before Process, so a panicking tuple has
	// not been partially forwarded and dead-lettering it keeps exact
	// conservation.
	c.inj.OpFault()
	n.Op.Process(ec, t, idx)
	return true
}

// runPunct delivers punctuation k to node n's operator callback under
// containment; quarantined operators are skipped. The runtime side of
// punctuation — drain bookkeeping, forwarding downstream — stays with
// the caller and always runs, which is what lets a PE drain past a
// quarantined operator.
func (c *containment) runPunct(tid int, n *graph.Node, ec graph.Submitter, k tuple.Kind, idx int) {
	ph, ok := n.Op.(graph.Puncts)
	if !ok || c.isQuarantined(n) {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			c.contain(tid, n, r, false)
		}
	}()
	ph.OnPunct(ec, k, idx)
}

// runFinish flushes node n's Finalizer (if any) under containment.
func (c *containment) runFinish(tid int, n *graph.Node, out graph.Submitter) {
	f, ok := n.Op.(sched.Finalizer)
	if !ok || c.isQuarantined(n) {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			c.contain(tid, n, r, false)
		}
	}()
	f.Finish(out)
}

func (c *containment) snapshot() metrics.FaultsSnapshot { return c.faults.Snapshot() }

func (c *containment) last() string {
	v, _ := c.lastFault.Load().(string)
	return v
}
