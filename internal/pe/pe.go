// Package pe implements the processing element: the unit that loads a
// stream graph and executes it under one of the paper's three threading
// models (§2.2).
//
//   - Manual: a single logical thread of control; every source thread
//     executes its entire downstream subgraph by direct function calls,
//     with no queues and no tuple copies.
//   - Dedicated: every operator input port gets its own dedicated thread
//     and queue, so threads scale linearly with operators.
//   - Dynamic: the paper's contribution — a pool of scheduler threads,
//     any of which can execute any operator, optionally grown and shrunk
//     at runtime by the elasticity controller.
//
// A PE owns the source operator threads (which it cannot schedule, only
// ask to stop), the scheduler threads, and the adaptation loop.
package pe

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/cpuutil"
	"streams/internal/elastic"
	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/metrics"
	"streams/internal/sched"
	"streams/internal/trace"
)

// Model selects a threading model.
type Model int

const (
	// Dynamic uses the scalable operator scheduler. It is the zero value
	// because it is the Streams 4.2 default for automatically fused PEs.
	Dynamic Model = iota
	// Manual is the pre-4.2 default: no scheduler threads.
	Manual
	// Dedicated gives each operator input port its own thread.
	Dedicated
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case Manual:
		return "manual"
	case Dedicated:
		return "dedicated"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Sample is one adaptation-period observation, delivered to the Trace
// callback: the Fig. 11 series.
type Sample struct {
	// Elapsed is time since Start.
	Elapsed time.Duration
	// Throughput is tuples processed per second across all operators
	// during the period.
	Throughput float64
	// Level is the thread level chosen for the next period.
	Level int
	// Rule names the controller rule that made the decision (the
	// elasticity decision log; see elastic.Rule).
	Rule string
}

// Config parametrizes a PE.
type Config struct {
	// Model selects the threading model. Default Dynamic.
	Model Model
	// Threads is the Dynamic model's initial (or static) thread level.
	// Default 1.
	Threads int
	// Elastic enables runtime thread adaptation (Dynamic only).
	Elastic bool
	// RelaxAdaptive lets the adaptation loop drive the scheduler's
	// free-list relaxation width from the contention meters (Dynamic
	// with Elastic only): each period the loop feeds the contention
	// rate — free-list contention events per executed tuple — to an
	// elastic.Relaxer and applies the width it returns, widening
	// multiplicatively under contention and narrowing additively when
	// it subsides. Off, the width stays at Sched.RelaxWidth (static).
	RelaxAdaptive bool
	// AdaptPeriod is the elasticity measurement period. Default 10s,
	// the product's setting; tests and benchmarks use much less.
	AdaptPeriod time.Duration
	// MaxThreads caps the dynamic thread level. Default: the number of
	// logical CPUs, the paper's oversubscription guard (§4.2.3).
	MaxThreads int
	// CPUUsage supplies the elasticity CPU gate; nil selects /proc/stat.
	CPUUsage cpuutil.UsageFunc
	// Sched tunes the dynamic scheduler.
	Sched sched.Config
	// Geometric selects geometric elastic level growth. Default true.
	GeometricOff bool
	// RememberHistory keeps elastic records across workload changes.
	RememberHistory bool
	// Sens overrides the elastic sensitivity (default 5%).
	Sens float64
	// Trace, if set, observes every adaptation period.
	Trace func(Sample)
	// QueueCap tunes the dedicated model's per-port queues. Default 64.
	QueueCap int
	// Fault installs a chaos injector, consulted at the operator and
	// queue seams of whichever runner executes the graph. Nil (the
	// default) means no injection and no injection cost.
	Fault *fault.Injector
	// QuarantineAfter is the per-operator panic budget before the
	// containment layer quarantines it. Default 3.
	QuarantineAfter int
	// ShutdownTimeout bounds the dynamic scheduler's wait for its threads
	// to exit on shutdown. Default 60s; negative waits forever.
	ShutdownTimeout time.Duration
	// WatchdogInterval enables the dynamic scheduler's stall watchdog at
	// the given sweep period. 0 (the default) disables it.
	WatchdogInterval time.Duration
	// StallThreshold is how long a scheduler thread may sit inside
	// operator code without progress before the watchdog reports it.
	// Default 2×WatchdogInterval.
	StallThreshold time.Duration
	// Tracer, if set, records scheduler decisions and elasticity level
	// changes into per-thread rings (Dynamic only). Size it with
	// pe.TraceRings.
	Tracer *trace.Tracer
	// Latency, if set, measures end-to-end tuple latency: stamped at the
	// source-submit seam, charged to this histogram at the sink-drain
	// seam. Honored by every threading model.
	Latency *metrics.Histogram
}

// PE is a processing element executing one graph. Create with New, run
// with Start, then either Wait for bounded sources to drain or Stop to
// end an unbounded run.
type PE struct {
	g   *graph.Graph
	cfg Config

	runner runner

	stopSources chan struct{}
	sourcesWG   sync.WaitGroup
	adaptWG     sync.WaitGroup
	adaptStop   chan struct{}
	started     atomic.Bool
	stopped     atomic.Bool

	errMu sync.Mutex
	err   error

	level atomic.Int64
}

// runner abstracts the three threading models.
type runner interface {
	// start launches execution threads and returns the submitters the
	// source threads will use, indexed like g.SourceNodes.
	start() error
	// sourceSubmitter returns the submitter for source i.
	sourceSubmitter(i int) graph.Submitter
	// sourceDone signals source i finished (final punctuation).
	sourceDone(i int)
	// executed returns tuples processed across all operators.
	executed() uint64
	// sinkDelivered returns tuples delivered to sinks.
	sinkDelivered() uint64
	// backlog returns the total tuple occupancy across the runner's
	// queues (0 for the queueless manual model).
	backlog() int
	// done is closed when the graph has drained.
	done() <-chan struct{}
	// faults snapshots the fault-containment meters.
	faults() metrics.FaultsSnapshot
	// lastFault describes the most recent contained fault ("" if none).
	lastFault() string
	// shutdown stops all execution threads, bounded by the configured
	// shutdown deadline where the model has one.
	shutdown() error
}

// New validates the configuration and builds a PE.
func New(g *graph.Graph, cfg Config) (*PE, error) {
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.Threads < 0 {
		return nil, fmt.Errorf("pe: negative thread count %d", cfg.Threads)
	}
	if cfg.AdaptPeriod == 0 {
		cfg.AdaptPeriod = 10 * time.Second
	}
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = runtime.NumCPU()
	}
	if cfg.Elastic && cfg.Model != Dynamic {
		return nil, fmt.Errorf("pe: elasticity requires the dynamic model, got %v", cfg.Model)
	}
	if cfg.RelaxAdaptive && !cfg.Elastic {
		return nil, fmt.Errorf("pe: RelaxAdaptive requires Elastic (the adaptation loop drives the width)")
	}
	pe := &PE{
		g:           g,
		cfg:         cfg,
		stopSources: make(chan struct{}),
		adaptStop:   make(chan struct{}),
	}
	switch cfg.Model {
	case Manual:
		pe.runner = newFusedRunner(g, cfg.Fault, cfg.QuarantineAfter, cfg.Latency)
	case Dedicated:
		pe.runner = newDedicatedRunner(g, cfg.QueueCap, cfg.Fault, cfg.QuarantineAfter, cfg.Latency)
	case Dynamic:
		sc := cfg.Sched
		if sc.MaxThreads == 0 {
			sc.MaxThreads = max(cfg.MaxThreads, cfg.Threads)
		}
		if cfg.Tracer != nil {
			sc.Tracer = cfg.Tracer
		}
		if cfg.Latency != nil {
			sc.Latency = cfg.Latency
		}
		if cfg.Fault != nil {
			sc.Fault = cfg.Fault
		}
		if cfg.QuarantineAfter != 0 {
			sc.QuarantineAfter = cfg.QuarantineAfter
		}
		if cfg.ShutdownTimeout != 0 {
			sc.ShutdownTimeout = cfg.ShutdownTimeout
		}
		if cfg.WatchdogInterval != 0 {
			sc.WatchdogInterval = cfg.WatchdogInterval
		}
		if cfg.StallThreshold != 0 {
			sc.StallThreshold = cfg.StallThreshold
		}
		pe.runner = newDynamicRunner(g, sc, cfg.Threads)
	default:
		return nil, fmt.Errorf("pe: unknown threading model %v", cfg.Model)
	}
	pe.level.Store(int64(pe.initialLevel()))
	return pe, nil
}

func (pe *PE) initialLevel() int {
	switch pe.cfg.Model {
	case Manual:
		return 0 // no scheduler threads; sources only
	case Dedicated:
		return len(pe.g.Ports)
	default:
		return pe.cfg.Threads
	}
}

// Start launches the execution threads, the source operator threads and,
// when configured, the adaptation loop.
func (pe *PE) Start() error {
	if pe.started.Swap(true) {
		return fmt.Errorf("pe: already started")
	}
	if err := pe.runner.start(); err != nil {
		return err
	}
	// Hand the shutdown deadline to sources that drain buffered work on
	// stop (the ingest front end flushes admitted tuples): their flush
	// must fit inside the same budget the runner's shutdown gets, or
	// Stop would blow its bound before the scheduler even begins.
	if dd := pe.cfg.ShutdownTimeout; dd >= 0 {
		if dd == 0 {
			dd = 60 * time.Second
		}
		for _, n := range pe.g.SourceNodes {
			if s, ok := n.Op.(interface{ SetDrainDeadline(time.Duration) }); ok {
				s.SetDrainDeadline(dd)
			}
		}
	}
	for i, n := range pe.g.SourceNodes {
		pe.sourcesWG.Add(1)
		go func(i int, n *graph.Node) {
			defer pe.sourcesWG.Done()
			n.Op.(graph.Source).Run(pe.runner.sourceSubmitter(i), pe.stopSources)
			pe.runner.sourceDone(i)
		}(i, n)
	}
	if pe.cfg.Elastic {
		pe.adaptWG.Add(1)
		go pe.adaptLoop()
	}
	return nil
}

// adaptLoop is the elasticity driver: every AdaptPeriod it measures the
// PE-wide throughput, verifies that last period's thread actions took
// effect, and applies the controller's decision.
func (pe *PE) adaptLoop() {
	defer pe.adaptWG.Done()
	dyn := pe.runner.(*dynamicRunner)
	ctl, err := elastic.New(elastic.Config{
		MinLevel:        dyn.s.MinLevel(),
		MaxLevel:        dyn.s.MaxLevel(),
		Sens:            pe.cfg.Sens,
		CPUAcceptable:   cpuutil.NewGate(pe.cfg.CPUUsage, 0).Acceptable,
		Geometric:       !pe.cfg.GeometricOff,
		RememberHistory: pe.cfg.RememberHistory,
	})
	if err != nil {
		panic(fmt.Sprintf("pe: elastic config invalid: %v", err)) // unreachable: inputs validated in New
	}
	// Move to the controller's starting level immediately.
	pe.applyLevel(dyn, ctl.Level())
	lt := NewLevelTrace(pe.cfg.Tracer)
	lt.Observe(ctl.Level(), 0)

	// The relaxation-width controller rides the same loop: one Relaxer
	// decision per adaptation period, fed by the contention-event rate
	// over the period. Created only under RelaxAdaptive.
	var relaxer *elastic.Relaxer
	var rt *RelaxTrace
	lastStats := dyn.s.Stats()
	if pe.cfg.RelaxAdaptive {
		relaxer, err = elastic.NewRelaxer(elastic.RelaxConfig{
			Max:     dyn.s.MaxLevel(),
			Initial: dyn.s.Relax(),
		})
		if err != nil {
			panic(fmt.Sprintf("pe: relax config invalid: %v", err)) // unreachable: inputs validated in New
		}
		rt = NewRelaxTrace(pe.cfg.Tracer)
		rt.Observe(relaxer.Width(), 0)
	}

	start := time.Now()
	lastCount := pe.runner.executed()
	lastAt := start
	ticker := time.NewTicker(pe.cfg.AdaptPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-pe.adaptStop:
			return
		case <-pe.runner.done():
			return
		case now := <-ticker.C:
			count := pe.runner.executed()
			dt := now.Sub(lastAt).Seconds()
			if dt <= 0 {
				continue
			}
			thput := float64(count-lastCount) / dt
			lastCount, lastAt = count, now
			if !dyn.s.SuspensionsEffective() {
				ctl.ActionsDidNotStick()
			}
			level := ctl.Update(thput)
			pe.applyLevel(dyn, level)
			lt.Observe(level, thput)
			if relaxer != nil {
				st := dyn.s.Stats()
				dExec := st.Executed - lastStats.Executed
				rate := 0.0
				if dExec > 0 {
					rate = float64(st.Contention.Events()-lastStats.Contention.Events()) / float64(dExec)
				}
				lastStats = st
				dyn.s.SetRelax(relaxer.Update(rate))
				rt.Observe(relaxer.Width(), rate)
			}
			if pe.cfg.Trace != nil {
				pe.cfg.Trace(Sample{
					Elapsed:    now.Sub(start),
					Throughput: thput,
					Level:      level,
					Rule:       ctl.LastRule().String(),
				})
			}
		}
	}
}

func (pe *PE) applyLevel(dyn *dynamicRunner, level int) {
	got := dyn.s.SetLevel(level)
	pe.level.Store(int64(got))
}

// TraceRings returns how many tracer rings a PE built from cfg needs:
// one per scheduler thread slot, one per source thread, and one for the
// elasticity controller (the last ring). Build the tracer with
// trace.New(pe.TraceRings(cfg, g), 0) and pass it in cfg.Tracer.
func TraceRings(cfg Config, g *graph.Graph) int {
	sc := cfg.Sched
	if sc.MaxThreads == 0 {
		if cfg.MaxThreads == 0 {
			cfg.MaxThreads = runtime.NumCPU()
		}
		if cfg.Threads == 0 {
			cfg.Threads = 1
		}
		sc.MaxThreads = max(cfg.MaxThreads, cfg.Threads)
	}
	return sched.TraceRings(sc, g)
}

// LevelTrace emits one KindElastic trace event per elasticity level
// change on the tracer's controller ring (the last ring, per the
// TraceRings convention). It deduplicates: an Update that keeps the
// level does not emit. The adaptation loop owns it; like every ring
// writer it must be used from a single goroutine.
type LevelTrace struct {
	tr   *trace.Tracer
	ring int
	last int
}

// NewLevelTrace returns a LevelTrace writing to tr's controller ring.
// A nil tracer yields a LevelTrace that swallows observations.
func NewLevelTrace(tr *trace.Tracer) *LevelTrace {
	lt := &LevelTrace{tr: tr, last: -1}
	if tr != nil {
		lt.ring = tr.Rings() - 1
	}
	return lt
}

// Observe records the level chosen for the next period and the
// throughput observation that drove the decision, emitting exactly one
// trace event when — and only when — the level changed. The throughput
// is packed into the event's low word, saturating at 2^32-1 tuples/s.
func (lt *LevelTrace) Observe(level int, thput float64) {
	if level == lt.last {
		return
	}
	lt.last = level
	if !lt.tr.On() {
		return
	}
	tp := uint64(0)
	if thput > 0 {
		tp = uint64(thput)
		if tp > 1<<32-1 {
			tp = 1<<32 - 1
		}
	}
	lt.tr.Emit(lt.ring, trace.KindElastic, trace.PackPair(int32(level), uint32(tp)))
}

// RelaxTrace is the LevelTrace analogue for the relaxation width: one
// KindRelax event on the controller ring per width change, carrying the
// width and the contention rate (scaled to events per 1000 executed
// tuples, saturating) that drove it. Owned by the adaptation loop.
type RelaxTrace struct {
	tr   *trace.Tracer
	ring int
	last int
}

// NewRelaxTrace returns a RelaxTrace writing to tr's controller ring.
// A nil tracer yields a RelaxTrace that swallows observations.
func NewRelaxTrace(tr *trace.Tracer) *RelaxTrace {
	rt := &RelaxTrace{tr: tr, last: -1}
	if tr != nil {
		rt.ring = tr.Rings() - 1
	}
	return rt
}

// Observe records the width chosen for the next period and the rate
// that drove the decision, emitting one trace event only on change.
func (rt *RelaxTrace) Observe(width int, rate float64) {
	if width == rt.last {
		return
	}
	rt.last = width
	if !rt.tr.On() {
		return
	}
	r := uint64(0)
	if rate > 0 {
		r = uint64(rate * 1000)
		if r > 1<<32-1 {
			r = 1<<32 - 1
		}
	}
	rt.tr.Emit(rt.ring, trace.KindRelax, trace.PackPair(int32(width), uint32(r)))
}

// Level returns the current thread level (0 under the manual model).
func (pe *PE) Level() int { return int(pe.level.Load()) }

// Model returns the PE's threading model.
func (pe *PE) Model() Model { return pe.cfg.Model }

// Executed returns tuples processed across all operators since Start.
func (pe *PE) Executed() uint64 { return pe.runner.executed() }

// OperatorCounts returns per-operator execution counts keyed by operator
// name (dynamic model only; nil otherwise).
func (pe *PE) OperatorCounts() map[string]uint64 {
	if d, ok := pe.runner.(*dynamicRunner); ok {
		return d.s.OperatorCounts()
	}
	return nil
}

// FlowEdges returns the static flow edges — one per input-port queue,
// with producer/consumer operator names and the queue capacity — for
// the observability layer (dynamic model only; nil otherwise).
func (pe *PE) FlowEdges() []sched.Edge {
	if d, ok := pe.runner.(*dynamicRunner); ok {
		return d.s.Edges()
	}
	return nil
}

// NumNodes returns the number of operator nodes in the graph.
func (pe *PE) NumNodes() int { return len(pe.g.Nodes) }

// SampleFlow fills the per-edge flow meters in one pass (see
// sched.Scheduler.SampleFlow); each slice must be len(FlowEdges())
// long, and a nil slice skips that meter. Reports false under models
// without a scheduler, leaving the slices untouched.
func (pe *PE) SampleFlow(depth []int, resched, blockedNs []uint64) bool {
	d, ok := pe.runner.(*dynamicRunner)
	if !ok {
		return false
	}
	d.s.SampleFlow(depth, resched, blockedNs)
	return true
}

// NodeExecuted fills per-node cumulative execution counts; out must be
// NumNodes() long. Reports false under models without a scheduler.
func (pe *PE) NodeExecuted(out []uint64) bool {
	d, ok := pe.runner.(*dynamicRunner)
	if !ok {
		return false
	}
	d.s.NodeExecuted(out)
	return true
}

// QuarantinedNode reports whether the fault-containment layer has
// quarantined the node (dynamic model only; false otherwise).
func (pe *PE) QuarantinedNode(nodeID int) bool {
	if d, ok := pe.runner.(*dynamicRunner); ok {
		return d.s.Quarantined(nodeID)
	}
	return false
}

// SinkDelivered returns tuples delivered to sink operators since Start.
func (pe *PE) SinkDelivered() uint64 { return pe.runner.sinkDelivered() }

// Backlog returns the total tuple occupancy across the runner's input
// queues (0 under the queueless manual model). Racy by design: it is an
// overload signal for admission control, not an accounting value.
func (pe *PE) Backlog() int { return pe.runner.backlog() }

// SchedStats bundles the dynamic scheduler's slow-path meters: how often
// threads fell into self-help (reschedules), came up empty from a work
// search (find failures), and hit free-structure contention events.
type SchedStats struct {
	// Reschedules counts full-queue pushes that fell into the reSchedule
	// self-help path.
	Reschedules uint64 `json:"reschedules"`
	// FindFailures counts findWorkNonBlocking calls that found no work.
	FindFailures uint64 `json:"find_failures"`
	// Contention snapshots the free-list meters: global push/pop
	// failures, shard steals and misses, and shard overflow spills.
	Contention metrics.ContentionSnapshot `json:"contention"`
	// Faults snapshots the fault-containment meters: recovered operator
	// panics, dead-lettered tuples, quarantines and watchdog reports.
	Faults metrics.FaultsSnapshot `json:"faults"`
	// Chain snapshots the inline chain-execution meters: sequences
	// started, links and tuples that bypassed the queues, and the
	// fall-back reasons (depth, budget, lock, occupied).
	Chain metrics.ChainSnapshot `json:"chain"`
	// VM snapshots the fused bytecode-dispatch meters: operator
	// programs installed, chain batches run as one fused program, the
	// tuple volume through fused loops, and per-operator fall-backs.
	VM metrics.VMSnapshot `json:"vm"`
	// Relax is the free-list relaxation width in effect at snapshot
	// time (1 = tight own-shard ordering).
	Relax int `json:"relax"`
	// ClaimWait snapshots the fair-claim wait-time histogram; empty
	// unless FairClaim producers actually waited in a ticket line.
	ClaimWait metrics.HistogramSnapshot `json:"claim_wait"`
}

// SchedStats returns the dynamic scheduler's slow-path meters (zero
// under the manual and dedicated models, which have no scheduler). It
// reads the scheduler's single-pass Stats snapshot, so the values are
// mutually consistent — the one code path every presenter (the
// streamsim panel, the debug endpoint) goes through.
func (pe *PE) SchedStats() SchedStats {
	d, ok := pe.runner.(*dynamicRunner)
	if !ok {
		return SchedStats{}
	}
	st := d.s.Stats()
	return SchedStats{
		Reschedules:  st.Reschedules,
		FindFailures: st.FindFailures,
		Contention:   st.Contention,
		Faults:       st.Faults,
		Chain:        st.Chain,
		VM:           st.VM,
		Relax:        st.Relax,
		ClaimWait:    st.ClaimWait,
	}
}

// FaultStats snapshots the fault-containment meters under every
// threading model.
func (pe *PE) FaultStats() metrics.FaultsSnapshot { return pe.runner.faults() }

// LastFault describes the most recent contained fault ("" if none).
func (pe *PE) LastFault() string { return pe.runner.lastFault() }

// Err returns the first error recorded while stopping the PE (for
// example a shutdown-deadline expiry naming a stuck scheduler thread).
func (pe *PE) Err() error {
	pe.errMu.Lock()
	defer pe.errMu.Unlock()
	return pe.err
}

func (pe *PE) setErr(err error) {
	pe.errMu.Lock()
	defer pe.errMu.Unlock()
	if pe.err == nil {
		pe.err = err
	}
}

// Done is closed once every input port has processed its final
// punctuation (bounded sources only).
func (pe *PE) Done() <-chan struct{} { return pe.runner.done() }

// Wait blocks until the graph drains, then releases all threads. Use
// with bounded sources.
func (pe *PE) Wait() {
	<-pe.runner.done()
	pe.finish()
}

// WaitTimeout is Wait with a deadline on the drain itself: if the graph
// has not drained within d — a wedged operator, a stalled thread — it
// returns an error carrying the last contained fault and a goroutine
// dump instead of blocking forever. On a successful drain it returns any
// shutdown error (see Err).
func (pe *PE) WaitTimeout(d time.Duration) error {
	select {
	case <-pe.runner.done():
	case <-time.After(d):
		last := ""
		if lf := pe.runner.lastFault(); lf != "" {
			last = " (last fault: " + lf + ")"
		}
		return fmt.Errorf("pe: drain deadline %v expired%s\n%s", d, last, fault.GoroutineDump(64<<10))
	}
	pe.finish()
	return pe.Err()
}

// Stop asks sources to stop, waits for the graph to drain, and releases
// all threads. Safe to call once, after Start.
func (pe *PE) Stop() {
	if pe.stopped.Swap(true) {
		return
	}
	close(pe.stopSources)
	pe.sourcesWG.Wait()
	<-pe.runner.done()
	pe.finish()
}

func (pe *PE) finish() {
	if pe.cfg.Elastic {
		select {
		case <-pe.adaptStop:
		default:
			close(pe.adaptStop)
		}
		pe.adaptWG.Wait()
	}
	if err := pe.runner.shutdown(); err != nil {
		pe.setErr(err)
	}
	pe.sourcesWG.Wait()
}

// dynamicRunner adapts sched.Scheduler to the runner interface.
type dynamicRunner struct {
	s       *sched.Scheduler
	g       *graph.Graph
	initial int
}

func newDynamicRunner(g *graph.Graph, cfg sched.Config, threads int) *dynamicRunner {
	return &dynamicRunner{s: sched.New(g, cfg), g: g, initial: threads}
}

func (d *dynamicRunner) start() error {
	d.s.Start(d.initial)
	return nil
}

func (d *dynamicRunner) sourceSubmitter(i int) graph.Submitter {
	return d.s.SourceSubmitter(d.g.SourceNodes[i], i)
}

func (d *dynamicRunner) sourceDone(i int)               { d.s.SourceDone(d.g.SourceNodes[i], i) }
func (d *dynamicRunner) executed() uint64               { return d.s.Executed() }
func (d *dynamicRunner) sinkDelivered() uint64          { return d.s.SinkDelivered() }
func (d *dynamicRunner) backlog() int                   { return d.s.Backlog() }
func (d *dynamicRunner) done() <-chan struct{}          { return d.s.Done() }
func (d *dynamicRunner) faults() metrics.FaultsSnapshot { return d.s.Faults() }
func (d *dynamicRunner) lastFault() string              { return d.s.LastFault() }
func (d *dynamicRunner) shutdown() error                { return d.s.Shutdown() }
