package pe

import (
	"sync"
	"testing"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// winSource emits alternating data tuples and window punctuation.
type winSource struct{ n int }

func (w *winSource) Name() string                              { return "winSrc" }
func (w *winSource) Process(graph.Submitter, tuple.Tuple, int) {}
func (w *winSource) Run(out graph.Submitter, stop <-chan struct{}) {
	for i := 0; i < w.n; i++ {
		select {
		case <-stop:
			return
		default:
		}
		out.Submit(tuple.NewData(uint64(i)), 0)
		out.Submit(tuple.Window(), 0)
	}
}

// punctCounter observes punctuation and forwards data.
type punctCounter struct {
	mu      sync.Mutex
	windows int
	finals  int
}

func (p *punctCounter) Name() string { return "punctCounter" }
func (p *punctCounter) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	out.Submit(t, 0)
}
func (p *punctCounter) OnPunct(_ graph.Submitter, k tuple.Kind, _ int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch k {
	case tuple.WindowMark:
		p.windows++
	case tuple.FinalMark:
		p.finals++
	}
}

func (p *punctCounter) counts() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.windows, p.finals
}

// TestPunctuationAcrossModels verifies window and final punctuation are
// forwarded and observable under all three threading models — the fused
// and dedicated punctuation paths are separate code from the scheduler's.
func TestPunctuationAcrossModels(t *testing.T) {
	const n = 200
	for _, model := range []Model{Manual, Dedicated, Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			b := graph.NewBuilder()
			src := b.AddNode(&winSource{n: n}, 0, 1)
			pc := &punctCounter{}
			mid := b.AddNode(pc, 1, 1)
			snk := &ops.Sink{}
			sn := b.AddNode(snk, 1, 0)
			b.Connect(src, 0, mid, 0)
			b.Connect(mid, 0, sn, 0)
			g, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(g, Config{Model: model, Threads: 2, MaxThreads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Start(); err != nil {
				t.Fatal(err)
			}
			p.Wait()
			if got := snk.Count(); got != n {
				t.Fatalf("%v: sink saw %d data tuples", model, got)
			}
			w, f := pc.counts()
			if w != n {
				t.Fatalf("%v: observed %d window punctuations, want %d", model, w, n)
			}
			if f != 1 {
				t.Fatalf("%v: observed %d final punctuations, want 1", model, f)
			}
		})
	}
}

// TestOperatorCounts verifies the dynamic model's per-operator metrics.
func TestOperatorCounts(t *testing.T) {
	const n = 3000
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	w1 := b.AddNode(&ops.Worker{OpName: "stage1"}, 1, 1)
	w2 := b.AddNode(&ops.Worker{OpName: "stage2"}, 1, 1)
	snk := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(src, 0, w1, 0)
	b.Connect(w1, 0, w2, 0)
	b.Connect(w2, 0, snk, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(g, Config{Model: Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	counts := p.OperatorCounts()
	for _, name := range []string{"stage1", "stage2", "Snk"} {
		if counts[name] != n {
			t.Fatalf("operator %q executed %d tuples, want %d (all: %v)", name, counts[name], n, counts)
		}
	}
	// Non-dynamic models report nil.
	g2, _, err := ops.Pipeline(1, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(g2, Config{Model: Manual})
	if err != nil {
		t.Fatal(err)
	}
	if p2.OperatorCounts() != nil {
		t.Fatal("manual model should not report operator counts")
	}
}
