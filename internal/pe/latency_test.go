package pe

import (
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
)

// TestManualHasLowestLatency reproduces the §2.2 claim: "The manual
// threading model has the lowest latency, as there are no queues between
// operators, and no tuple copies." We run the same pipeline with a
// throttled source (so queues stay shallow and latency measures the
// path, not the backlog) under manual and dynamic, and compare mean
// end-to-end latency.
func TestManualHasLowestLatency(t *testing.T) {
	latency := func(model Model) time.Duration {
		b := graph.NewBuilder()
		src := b.AddNode(&throttledGen{n: 400, gap: 200 * time.Microsecond}, 0, 1)
		prev := src
		for i := 0; i < 8; i++ {
			w := b.AddNode(&ops.Worker{Cost: 50}, 1, 1)
			b.Connect(prev, 0, w, 0)
			prev = w
		}
		snk := &ops.Sink{TrackLatency: true}
		sn := b.AddNode(snk, 1, 0)
		b.Connect(prev, 0, sn, 0)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(g, Config{Model: model, Threads: 2, MaxThreads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		p.Wait()
		if snk.Count() != 400 {
			t.Fatalf("%v: delivered %d", model, snk.Count())
		}
		mean, _ := snk.Latency()
		if mean <= 0 {
			t.Fatalf("%v: no latency recorded", model)
		}
		return mean
	}
	manual := latency(Manual)
	dynamic := latency(Dynamic)
	t.Logf("mean end-to-end latency: manual %v, dynamic %v", manual, dynamic)
	// Queued handoffs cannot be faster than direct calls; allow generous
	// scheduling noise but manual must not be slower.
	if manual > dynamic {
		t.Fatalf("manual latency %v exceeds dynamic %v; the paper's §2.2 ordering failed", manual, dynamic)
	}
}

// throttledGen emits n stamped tuples with a fixed gap, so queues stay
// near-empty and latency reflects the per-tuple path.
type throttledGen struct {
	n   int
	gap time.Duration
}

func (g *throttledGen) Name() string { return "ThrottledSrc" }

func (g *throttledGen) Process(graph.Submitter, tuple.Tuple, int) {}

func (g *throttledGen) Run(out graph.Submitter, stop <-chan struct{}) {
	for i := 0; i < g.n; i++ {
		select {
		case <-stop:
			return
		default:
		}
		t := tuple.NewData(uint64(i))
		t.Words[tuple.PayloadWords-1] = uint64(time.Now().UnixNano())
		out.Submit(t, 0)
		time.Sleep(g.gap)
	}
}
