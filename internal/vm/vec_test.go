package vm

import (
	"reflect"
	"strings"
	"testing"

	"streams/internal/tuple"
)

func init() {
	RegisterBuiltinInfo("test.add2:ii", EffectPure, KInt)
	RegisterBuiltin("test.impure:i", func(args []Val) Val { return args[0] })
}

// vecFilterProg builds a forwarding filter in the shape the spl
// compiler emits (conditional jump straight over a tail emit), which
// is the shape PlanVec turns into a selection-vector prune. The
// OpDrop-based filterProg in vm_test.go is deliberately NOT this
// shape and must stay scalar.
func vecFilterProg(t *testing.T, name string, mod, keep int64) *Program {
	t.Helper()
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstI(mod)
	b.Op(OpModI)
	b.ConstI(keep)
	b.Op(OpEqI)
	jf := b.Jump(OpJumpIfFalse)
	b.Op(OpEmit)
	b.Patch(jf)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 0, NOut: 1, Name: name, Out: intIn}, intIn, 1)
	if err != nil {
		t.Fatalf("vecFilterProg: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	return p
}

// diamondProg computes out.x = (x < cut ? x*10 : x+1) — the structured
// diamond the compiler emits for conditionals, which PlanVec
// if-converts into speculative execution of both sides plus a blend.
func diamondProg(t *testing.T, cut int64) *Program {
	t.Helper()
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstI(cut)
	b.Op(OpLtI)
	jf := b.Jump(OpJumpIfFalse)
	b.Ins(OpLoad, 0, 0)
	b.ConstI(10)
	b.Op(OpMulI)
	j := b.Jump(OpJump)
	b.Patch(jf)
	b.Ins(OpLoad, 0, 0)
	b.ConstI(1)
	b.Op(OpAddI)
	b.Patch(j)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "diamond", Out: intIn}, intIn, 2)
	if err != nil {
		t.Fatalf("diamondProg: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	return p
}

// batchOf wraps int payloads as a batch with increasing Seq.
func batchOf(xs []int64) []tuple.Tuple {
	batch := make([]tuple.Tuple, len(xs))
	for i, x := range xs {
		batch[i] = tuple.Tuple{Seq: uint64(i), Ref: []Val{{I: x}}}
	}
	return batch
}

// runVec plans p, runs the batch vectorized, and returns the emitted
// tuples. Fails the test if the program does not vectorize.
func runVec(t *testing.T, p *Program, batch []tuple.Tuple) ([]tuple.Tuple, *BatchMachine) {
	t.Helper()
	vp, err := PlanVec(p)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	var bm BatchMachine
	bm.Reset(vp)
	bm.Run(batch)
	var outs []tuple.Tuple
	bm.EmitRows(EmitFunc(func(o tuple.Tuple) { outs = append(outs, o) }))
	return outs, &bm
}

// scalarRef runs the batch tuple-at-a-time through the scalar Machine.
func scalarRef(p *Program, batch []tuple.Tuple) ([]tuple.Tuple, []uint64) {
	var m Machine
	m.Reset(p)
	var outs []tuple.Tuple
	for _, in := range batch {
		m.Run(p, in, EmitFunc(func(o tuple.Tuple) { outs = append(outs, o) }))
	}
	return outs, m.SegCounts()
}

func TestVecParityFusedChain(t *testing.T) {
	fused, err := Fuse([]*Program{
		funcProg(t, "a", 2, 1),      // x -> 2x+1
		vecFilterProg(t, "b", 3, 0), // keep multiples of 3
		funcProg(t, "c", 10, 0),     // x -> 10x
	})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	batch := batchOf([]int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	vecOuts, bm := runVec(t, fused, batch)
	scalOuts, scalCounts := scalarRef(fused, batch)
	if got, want := refInts(vecOuts), refInts(scalOuts); !reflect.DeepEqual(got, want) {
		t.Fatalf("vectorized disagrees with scalar: got %v want %v", got, want)
	}
	if got := bm.SegCounts(); !reflect.DeepEqual(got, scalCounts) {
		t.Fatalf("seg counts diverge: vec %v scalar %v", got, scalCounts)
	}
}

func TestVecParityDiamond(t *testing.T) {
	p := diamondProg(t, 5)
	batch := batchOf([]int64{0, 3, 5, 7, 4, 9})
	vecOuts, _ := runVec(t, p, batch)
	scalOuts, _ := scalarRef(p, batch)
	if got, want := refInts(vecOuts), refInts(scalOuts); !reflect.DeepEqual(got, want) {
		t.Fatalf("if-converted diamond disagrees: got %v want %v", got, want)
	}
}

func TestVecParityBuiltinAndSeq(t *testing.T) {
	// out.x = add2(x, seq): exercises vCall gather/scatter and the seq
	// lane in one program.
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.Op(OpLoadSeq)
	b.Call("test.add2:ii", 2)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "seqadd", Out: intIn}, intIn, 2)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	batch := batchOf([]int64{100, 200, 300})
	vecOuts, _ := runVec(t, p, batch)
	scalOuts, _ := scalarRef(p, batch)
	if got, want := refInts(vecOuts), refInts(scalOuts); !reflect.DeepEqual(got, want) {
		t.Fatalf("builtin+seq disagrees: got %v want %v", got, want)
	}
}

func TestVecForwardingPreservesTuple(t *testing.T) {
	fused, err := Fuse([]*Program{
		vecFilterProg(t, "a", 1, 0),
		vecFilterProg(t, "b", 2, 0),
	})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	batch := batchOf([]int64{2, 3, 4})
	batch[0].Stamp = 99
	batch[0].Words[3] = 42
	outs, _ := runVec(t, fused, batch)
	if len(outs) != 2 {
		t.Fatalf("kept %d rows, want 2", len(outs))
	}
	if o := outs[0]; o.Seq != 0 || o.Stamp != 99 || o.Words[3] != 42 {
		t.Fatalf("forwarding did not preserve the tuple: %+v", o)
	}
}

// TestVecParityFreshInteriorForwardingTail pins the map|filter chain
// shape the spl compiler emits (a fused Fresh segment followed by a
// forwarding filter tail): the final emit must expose the interior
// Fresh segment's rebuilt template — payload, Seq 0, Stamp 0 — exactly
// as the scalar interpreter threads tmpl, never the original input row.
func TestVecParityFreshInteriorForwardingTail(t *testing.T) {
	fused, err := Fuse([]*Program{
		funcProg(t, "a", 2, 1),         // fresh: x -> 2x+1
		vecFilterProg(t, "keep", 3, 0), // forwarding tail: keep multiples of 3
	})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	batch := batchOf([]int64{0, 1, 2, 3, 4, 5, 6, 7})
	// Poison the input rows: if the vectorized path forwards them
	// instead of materializing the rebuilt template, Stamp betrays it
	// even when payloads happen to collide.
	for i := range batch {
		batch[i].Stamp = 99
	}
	vecOuts, bm := runVec(t, fused, batch)
	scalOuts, scalCounts := scalarRef(fused, batch)
	if got, want := refInts(vecOuts), refInts(scalOuts); !reflect.DeepEqual(got, want) {
		t.Fatalf("fresh-interior/forwarding-tail disagrees: vec %v scalar %v", got, want)
	}
	if want := []int64{3, 9, 15}; !reflect.DeepEqual(refInts(vecOuts), want) {
		t.Fatalf("outputs = %v, want the transformed survivors %v", refInts(vecOuts), want)
	}
	for i := range vecOuts {
		if v, s := vecOuts[i], scalOuts[i]; v.Seq != s.Seq || v.Stamp != s.Stamp {
			t.Fatalf("row %d header diverges: vec {Seq %d Stamp %d} scalar {Seq %d Stamp %d}",
				i, v.Seq, v.Stamp, s.Seq, s.Stamp)
		}
	}
	if got := bm.SegCounts(); !reflect.DeepEqual(got, scalCounts) {
		t.Fatalf("seg counts diverge: vec %v scalar %v", got, scalCounts)
	}

	// Two Fresh segments before the tail: the LAST one's template is
	// what the forwarding emit exposes, mirroring needStore.
	fused2, err := Fuse([]*Program{
		funcProg(t, "a", 2, 1),
		funcProg(t, "b", 3, 0),
		vecFilterProg(t, "keep", 2, 0),
	})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	vecOuts2, _ := runVec(t, fused2, batch)
	scalOuts2, _ := scalarRef(fused2, batch)
	if got, want := refInts(vecOuts2), refInts(scalOuts2); !reflect.DeepEqual(got, want) {
		t.Fatalf("double-fresh/forwarding-tail disagrees: vec %v scalar %v", got, want)
	}
}

// TestBatchResetTwiceBeforeRun: Reset is idempotent before any Run has
// allocated lane storage — the constant-lane re-broadcast must not
// index lane tables that don't exist yet (regression: back-to-back
// Resets with a constant-string plan panicked).
func TestBatchResetTwiceBeforeRun(t *testing.T) {
	strIn := Layout{Fields: []Field{{Name: "s", Kind: KStr}}}
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstS("-suffix")
	b.Op(OpCatS)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "cat", Out: strIn}, strIn, 2)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	vp, err := PlanVec(p)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	if len(vp.fillS) == 0 {
		t.Fatalf("program has no const string lanes; test is vacuous")
	}
	var bm BatchMachine
	bm.Reset(vp)
	bm.Reset(vp) // must not panic: lanes are allocated lazily by Run
	bm.Run([]tuple.Tuple{{Ref: []Val{{S: "hello"}}}})
	var outs []tuple.Tuple
	bm.EmitRows(EmitFunc(func(o tuple.Tuple) { outs = append(outs, o) }))
	if got := outs[0].Ref.([]Val)[0].S; got != "hello-suffix" {
		t.Fatalf("concat after double Reset = %q, want %q", got, "hello-suffix")
	}
}

func TestPlanVecRejections(t *testing.T) {
	impure := func() *Program {
		b := NewBuilder()
		b.Ins(OpLoad, 0, 0)
		b.Call("test.impure:i", 1)
		b.Ins(OpStore, 1, 0)
		b.Op(OpEmit)
		p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "imp", Out: intIn}, intIn, 2)
		if err != nil {
			t.Fatalf("finish: %v", err)
		}
		if err := p.Bind(sliceCodec{}); err != nil {
			t.Fatalf("bind: %v", err)
		}
		return p
	}()
	multiEmit := func() *Program {
		b := NewBuilder()
		b.Ins(OpLoad, 0, 0)
		b.Ins(OpStore, 1, 0)
		b.Op(OpEmit)
		b.Op(OpEmit)
		p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "multi", Out: intIn}, intIn, 2)
		if err != nil {
			t.Fatalf("finish: %v", err)
		}
		if err := p.Bind(sliceCodec{}); err != nil {
			t.Fatalf("bind: %v", err)
		}
		return p
	}()
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{"drop-filter", filterProg(t, "f", 2, 0), "branch"},
		{"impure-builtin", impure, "side effects"},
		{"multi-emit", multiEmit, "tail position"},
		{"unbound", func() *Program { p := funcProg(t, "u", 1, 0); q, _ := Decode(p.Encode()); return q }(), "unbound"},
	}
	for _, tc := range cases {
		if _, err := PlanVec(tc.prog); err == nil {
			t.Errorf("%s: PlanVec accepted a non-vectorizable program", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestBatchFaultAttribution(t *testing.T) {
	// out.x = 100 / x: row with x == 0 faults. The machine must blame
	// the exact source row and segment, and must not have emitted
	// anything (the whole batch is replayable through the scalar path).
	fused, err := Fuse([]*Program{
		vecFilterProg(t, "keep", 1, 0),
		func() *Program {
			b := NewBuilder()
			b.ConstI(100)
			b.Ins(OpLoad, 0, 0)
			b.Op(OpDivI)
			b.Ins(OpStore, 1, 0)
			b.Op(OpEmit)
			p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "div", Out: intIn}, intIn, 2)
			if err != nil {
				t.Fatalf("finish: %v", err)
			}
			if err := p.Bind(sliceCodec{}); err != nil {
				t.Fatalf("bind: %v", err)
			}
			return p
		}(),
	})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	vp, err := PlanVec(fused)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	var bm BatchMachine
	bm.Reset(vp)
	emitted := 0
	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*Error); !ok {
				t.Fatalf("want *Error panic, got %v", r)
			}
		}()
		bm.Run(batchOf([]int64{4, 5, 0, 7}))
		t.Fatalf("Run did not panic on division by zero")
	}()
	if emitted != 0 {
		t.Fatalf("Run emitted %d rows before the fault; the contract is zero", emitted)
	}
	if bm.CurSeg() != 1 {
		t.Fatalf("CurSeg = %d, want 1 (the div segment)", bm.CurSeg())
	}
	if bm.FaultRow() != 2 {
		t.Fatalf("FaultRow = %d, want 2 (the x=0 row)", bm.FaultRow())
	}
}

func TestEmitRowsResumesPastPanic(t *testing.T) {
	p := funcProg(t, "f", 1, 0)
	vp, err := PlanVec(p)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	var bm BatchMachine
	bm.Reset(vp)
	bm.Run(batchOf([]int64{10, 20, 30, 40}))
	var got []int64
	poison := true
	emit := EmitFunc(func(o tuple.Tuple) {
		v := o.Ref.([]Val)[0].I
		if v == 20 && poison {
			poison = false
			panic("downstream fault")
		}
		got = append(got, v)
	})
	for i := 0; i < 4; i++ {
		done := func() (done bool) {
			defer func() { recover() }()
			bm.EmitRows(emit)
			return true
		}()
		if done {
			break
		}
	}
	// The faulting row is contained (lost downstream, exactly like the
	// scalar path's per-tuple containment); every other row is emitted
	// exactly once, in order.
	if want := []int64{10, 30, 40}; !reflect.DeepEqual(got, want) {
		t.Fatalf("resume after emit panic: got %v want %v", got, want)
	}
}

func TestBatchMachineReuseAcrossBatches(t *testing.T) {
	p := funcProg(t, "f", 3, 1)
	vp, err := PlanVec(p)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	var bm BatchMachine
	for round := 0; round < 3; round++ {
		bm.Reset(vp)
		batch := batchOf([]int64{int64(round), int64(round + 1)})
		bm.Run(batch)
		var outs []tuple.Tuple
		bm.EmitRows(EmitFunc(func(o tuple.Tuple) { outs = append(outs, o) }))
		want, _ := scalarRef(p, batch)
		if !reflect.DeepEqual(refInts(outs), refInts(want)) {
			t.Fatalf("round %d: got %v want %v", round, refInts(outs), refInts(want))
		}
		if counts := bm.SegCounts(); counts[0] != 2 {
			t.Fatalf("round %d: counts not reset: %v", round, counts)
		}
	}
}

func TestVecMinBatch(t *testing.T) {
	a := funcProg(t, "a", 2, 1)
	if got := a.VecMinBatch(); got != DefaultVecMinBatch {
		t.Fatalf("default cutoff = %d, want %d", got, DefaultVecMinBatch)
	}
	a.SetVecMinBatch(32)
	b := funcProg(t, "b", 10, 0)
	fused, err := Fuse([]*Program{a, b})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	if got := fused.VecMinBatch(); got != 32 {
		t.Fatalf("fused cutoff = %d, want the max of the inputs (32)", got)
	}
}

// TestMachineResetClearsState is the leak-shape regression for the
// scalar machine: after Reset, no stale Val (string refs especially)
// may survive in the stack or slot files to pin a retired batch's
// memory for the lifetime of the machine.
func TestMachineResetClearsState(t *testing.T) {
	strIn := Layout{Fields: []Field{{Name: "s", Kind: KStr}}}
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstS("-suffix")
	b.Op(OpCatS)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "cat", Out: strIn}, strIn, 2)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	var m Machine
	m.Run(p, tuple.Tuple{Ref: []Val{{S: strings.Repeat("x", 1<<10)}}}, EmitFunc(func(tuple.Tuple) {}))
	m.Reset(p)
	for i, v := range m.stack {
		if v != (Val{}) {
			t.Fatalf("stack[%d] survived Reset: %+v", i, v)
		}
	}
	for i, v := range m.slots {
		if v != (Val{}) {
			t.Fatalf("slots[%d] survived Reset: %+v", i, v)
		}
	}
}

// TestBatchResetClearsStringLanes is the same leak-shape guard for the
// batch machine's string lanes, and checks constant lanes are
// re-broadcast after the clear.
func TestBatchResetClearsStringLanes(t *testing.T) {
	strIn := Layout{Fields: []Field{{Name: "s", Kind: KStr}}}
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstS("-suffix")
	b.Op(OpCatS)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "cat", Out: strIn}, strIn, 2)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	vp, err := PlanVec(p)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	var bm BatchMachine
	bm.Reset(vp)
	bm.Run([]tuple.Tuple{{Ref: []Val{{S: "hello"}}}, {Ref: []Val{{S: "world"}}}})
	var outs []tuple.Tuple
	bm.EmitRows(EmitFunc(func(o tuple.Tuple) { outs = append(outs, o) }))
	if got := outs[1].Ref.([]Val)[0].S; got != "world-suffix" {
		t.Fatalf("concat = %q", got)
	}
	bm.Reset(vp)
	seen := map[string]bool{"": true, "-suffix": true}
	for li, l := range bm.strs {
		for r, s := range l {
			if !seen[s] {
				t.Fatalf("string lane %d row %d survived Reset: %q", li, r, s)
			}
		}
	}
	// Constant lanes must hold their fill value again, not "".
	refill := false
	for _, f := range vp.fillS {
		for _, s := range bm.strs[f.reg] {
			if s != f.val {
				t.Fatalf("const lane %d lost its fill after Reset: %q", f.reg, s)
			}
		}
		refill = true
	}
	if !refill {
		t.Fatalf("program has no const string lanes; test is vacuous")
	}
}

// TestNeedStoreElidesDeadInteriorEmit checks Verify's dead-store
// analysis: an interior Fresh emit whose template no later forwarding
// emit can observe skips payload construction entirely, and the fused
// program still produces the scalar chain's outputs.
func TestNeedStoreElidesDeadInteriorEmit(t *testing.T) {
	fused, err := Fuse([]*Program{
		funcProg(t, "a", 2, 0), // fresh, dead: b replaces the template
		funcProg(t, "b", 1, 5), // fresh, final
	})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	if fused.needStore == nil {
		t.Fatalf("Verify left needStore nil")
	}
	if fused.needStore[0] || !fused.needStore[1] {
		t.Fatalf("needStore = %v, want [false true]", fused.needStore)
	}
	// Forwarding tail: the interior fresh template IS observable.
	fwd, err := Fuse([]*Program{
		funcProg(t, "a", 2, 0),
		vecFilterProg(t, "keep", 1, 0),
	})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	if !fwd.needStore[0] {
		t.Fatalf("needStore = %v, want the interior fresh emit stored", fwd.needStore)
	}
	got := refInts(runAll(t, fused, []int64{1, 2, 3}))
	if want := []int64{7, 9, 11}; !reflect.DeepEqual(got, want) {
		t.Fatalf("elided chain output: got %v want %v", got, want)
	}
}
