package vm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// The wire format is deliberately hand-rolled over encoding/binary
// primitives rather than reflective struct encoding: every field is
// written explicitly in a fixed order with fixed widths, so two
// processes (or two builds) that construct equal programs produce
// byte-identical encodings — the property the content hash turns into
// a placement key. Little-endian throughout.

// magic identifies the format; bump the trailing digit on any layout
// change so stale bytes fail loudly instead of mis-decoding.
var magic = [4]byte{'T', 'V', 'M', '1'}

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}
func (e *encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}
func (e *encoder) i32(v int32) { e.u32(uint32(v)) }
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) layout(l Layout) {
	e.u32(uint32(len(l.Fields)))
	for _, f := range l.Fields {
		e.str(f.Name)
		e.u8(uint8(f.Kind))
	}
}

// Encode serializes the program's portable fields (everything except
// the process-local codec and builtin bindings).
func (p *Program) Encode() []byte {
	e := &encoder{buf: make([]byte, 0, 64+8*len(p.Code))}
	e.buf = append(e.buf, magic[:]...)
	e.layout(p.In)
	e.i32(p.NumSlots)
	e.i32(p.MaxStack)
	e.u32(uint32(len(p.Segs)))
	for _, s := range p.Segs {
		e.i32(s.Start)
		e.i32(s.End)
		e.i32(s.InBase)
		e.i32(s.NIn)
		e.i32(s.OutBase)
		e.i32(s.NOut)
		if s.Fresh {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.str(s.Name)
		e.layout(s.Out)
	}
	e.u32(uint32(len(p.Code)))
	for _, in := range p.Code {
		e.u16(uint16(in.Op))
		e.i32(in.A)
		e.i32(in.B)
	}
	e.u32(uint32(len(p.Ints)))
	for _, v := range p.Ints {
		e.i64(v)
	}
	e.u32(uint32(len(p.Floats)))
	for _, v := range p.Floats {
		e.u64(math.Float64bits(v))
	}
	e.u32(uint32(len(p.Strs)))
	for _, v := range p.Strs {
		e.str(v)
	}
	e.u32(uint32(len(p.Builtins)))
	for _, v := range p.Builtins {
		e.str(v)
	}
	return e.buf
}

// Hash returns the SHA-256 of the encoding — the content address two
// processes agree on for equal logic.
func (p *Program) Hash() [32]byte { return sha256.Sum256(p.Encode()) }

// HashString returns the hex content hash.
func (p *Program) HashString() string {
	h := p.Hash()
	return hex.EncodeToString(h[:])
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("vm: decode at %d: %s", d.off, msg)
	}
}
func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}
func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) i64() int64 { return int64(d.u64()) }

// count reads a length prefix and sanity-bounds it against the bytes
// that remain, so a corrupt length cannot drive a huge allocation.
func (d *decoder) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*max(elemSize, 1) > len(d.buf)-d.off {
		d.fail("length prefix exceeds input")
		return 0
	}
	return n
}
func (d *decoder) str() string {
	n := d.count(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
func (d *decoder) layout() Layout {
	n := d.count(5)
	if n == 0 {
		return Layout{}
	}
	fs := make([]Field, n)
	for i := range fs {
		fs[i].Name = d.str()
		fs[i].Kind = Kind(d.u8())
	}
	return Layout{Fields: fs}
}

// Decode deserializes a program and verifies it. The returned program
// is unbound: call Bind before running it.
func Decode(buf []byte) (*Program, error) {
	d := &decoder{buf: buf}
	m := d.take(4)
	if d.err == nil && string(m) != string(magic[:]) {
		return nil, fmt.Errorf("vm: bad magic")
	}
	p := &Program{}
	p.In = d.layout()
	p.NumSlots = d.i32()
	p.MaxStack = d.i32()
	if n := d.count(29); n > 0 {
		p.Segs = make([]Seg, n)
		for i := range p.Segs {
			s := &p.Segs[i]
			s.Start = d.i32()
			s.End = d.i32()
			s.InBase = d.i32()
			s.NIn = d.i32()
			s.OutBase = d.i32()
			s.NOut = d.i32()
			s.Fresh = d.u8() != 0
			s.Name = d.str()
			s.Out = d.layout()
		}
	}
	if n := d.count(10); n > 0 {
		p.Code = make([]Instr, n)
		for i := range p.Code {
			p.Code[i] = Instr{Op: Op(d.u16()), A: d.i32(), B: d.i32()}
		}
	}
	if n := d.count(8); n > 0 {
		p.Ints = make([]int64, n)
		for i := range p.Ints {
			p.Ints[i] = d.i64()
		}
	}
	if n := d.count(8); n > 0 {
		p.Floats = make([]float64, n)
		for i := range p.Floats {
			p.Floats[i] = math.Float64frombits(d.u64())
		}
	}
	if n := d.count(4); n > 0 {
		p.Strs = make([]string, n)
		for i := range p.Strs {
			p.Strs[i] = d.str()
		}
	}
	if n := d.count(4); n > 0 {
		p.Builtins = make([]string, n)
		for i := range p.Builtins {
			p.Builtins[i] = d.str()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("vm: %d trailing bytes", len(buf)-d.off)
	}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// Verify structurally validates a program: segment geometry, slot and
// constant-pool operand ranges, jump targets confined to the owning
// segment. Compile and Decode both run it, so an invalid program is
// rejected before it can index out of bounds mid-tuple.
func (p *Program) Verify() error {
	if len(p.Segs) == 0 {
		return fmt.Errorf("vm: program has no segments")
	}
	if p.NumSlots < 0 || p.MaxStack < 0 {
		return fmt.Errorf("vm: negative geometry")
	}
	for i := range p.Segs {
		s := &p.Segs[i]
		if s.Start < 0 || s.End < s.Start || int(s.End) > len(p.Code) {
			return fmt.Errorf("vm: seg %d code range [%d,%d) outside 0..%d", i, s.Start, s.End, len(p.Code))
		}
		if i > 0 && s.Start != p.Segs[i-1].End {
			return fmt.Errorf("vm: seg %d not contiguous with predecessor", i)
		}
		if s.NIn < 0 || s.NOut < 0 || s.InBase < 0 || s.OutBase < 0 ||
			s.InBase+s.NIn > p.NumSlots || s.OutBase+s.NOut > p.NumSlots {
			return fmt.Errorf("vm: seg %d windows outside %d slots", i, p.NumSlots)
		}
		if int(s.NOut) != len(s.Out.Fields) {
			return fmt.Errorf("vm: seg %d out window %d != layout %d", i, s.NOut, len(s.Out.Fields))
		}
		if i+1 < len(p.Segs) && s.NOut != p.Segs[i+1].NIn {
			return fmt.Errorf("vm: seg %d emits %d attrs, seg %d expects %d", i, s.NOut, i+1, p.Segs[i+1].NIn)
		}
		for pc := s.Start; pc < s.End; pc++ {
			in := p.Code[pc]
			bad := func(msg string) error {
				return fmt.Errorf("vm: seg %d pc %d (%s): %s", i, pc, in.Op, msg)
			}
			switch in.Op {
			case OpConstI:
				if in.A < 0 || int(in.A) >= len(p.Ints) {
					return bad("int constant out of range")
				}
			case OpConstF:
				if in.A < 0 || int(in.A) >= len(p.Floats) {
					return bad("float constant out of range")
				}
			case OpConstS:
				if in.A < 0 || int(in.A) >= len(p.Strs) {
					return bad("string constant out of range")
				}
			case OpLoad, OpStore:
				if in.A < 0 || in.A >= p.NumSlots {
					return bad("slot out of range")
				}
			case OpJump, OpJumpIfFalse, OpJumpIfTrue:
				if in.A < s.Start || in.A > s.End {
					return bad("jump target outside segment")
				}
			case OpCall:
				if in.A < 0 || int(in.A) >= len(p.Builtins) {
					return bad("builtin out of range")
				}
				if in.B < 0 || in.B > p.MaxStack {
					return bad("bad argument count")
				}
			default:
				if in.Op >= numOps {
					return bad("unknown opcode")
				}
			}
		}
	}
	if len(p.In.Fields) != int(p.Segs[0].NIn) {
		return fmt.Errorf("vm: program in layout %d != seg 0 window %d", len(p.In.Fields), p.Segs[0].NIn)
	}
	// A verified program also gets its store-liveness table: an interior
	// Fresh emit's payload rides the template tuple, and the template is
	// only ever exposed by a final *forwarding* emit — so if any later
	// segment is Fresh (it replaces the template before the end), the
	// Store is dead and the interpreter skips it. The final segment's
	// Fresh store is always live.
	p.needStore = make([]bool, len(p.Segs))
	fresh := false // a Fresh segment exists at index > si
	for si := len(p.Segs) - 1; si >= 0; si-- {
		p.needStore[si] = p.Segs[si].Fresh && !fresh
		if p.Segs[si].Fresh {
			fresh = true
		}
	}
	return nil
}
