package vm

import (
	"streams/internal/tuple"
)

// Emitter receives output tuples from Machine.Run. It is an interface
// rather than a func so operators can keep one reusable adapter and
// pay no per-tuple closure allocation on the hot path.
type Emitter interface {
	Emit(t tuple.Tuple)
}

// EmitFunc adapts a function to Emitter (tests, one-off callers).
type EmitFunc func(tuple.Tuple)

// Emit implements Emitter.
func (f EmitFunc) Emit(t tuple.Tuple) { f(t) }

// Machine executes programs. It owns the operand stack, the slot
// file and per-segment entry counts, all reused across runs so the
// steady state allocates nothing. A Machine is single-threaded;
// callers keep one per worker (or pool them).
type Machine struct {
	stack  []Val
	slots  []Val
	counts []uint64
	args   []Val
	seg    int
	// scratch is the decode staging tuple: Run copies its input here so
	// the &tuple passed into the codec's Load (an interface call the
	// compiler can't see through) escapes to the machine, not to a
	// fresh heap copy per run.
	scratch tuple.Tuple
	// store is the per-machine batch store for Fresh emits, created
	// lazily from the bound codec when it implements BatchStorer;
	// storeFor remembers which codec built it so a program switch with
	// a different codec rebuilds it.
	store    BatchStore
	storeFor RefCodec
}

// Reset sizes the machine for p and clears the per-segment counts.
// It also zeroes the stack and slot files: a retired program's stale
// Vals (string lanes especially) must not pin their backing memory for
// the lifetime of the machine. Call it when switching programs; Run
// calls it implicitly when the buffers are too small.
func (m *Machine) Reset(p *Program) {
	if cap(m.stack) < int(p.MaxStack) {
		m.stack = make([]Val, p.MaxStack)
	}
	m.stack = m.stack[:cap(m.stack)]
	if cap(m.slots) < int(p.NumSlots) {
		m.slots = make([]Val, p.NumSlots)
	}
	m.slots = m.slots[:cap(m.slots)]
	for i := range m.stack {
		m.stack[i] = Val{}
	}
	for i := range m.slots {
		m.slots[i] = Val{}
	}
	if cap(m.counts) < len(p.Segs) {
		m.counts = make([]uint64, len(p.Segs))
	}
	m.counts = m.counts[:len(p.Segs)]
	for i := range m.counts {
		m.counts[i] = 0
	}
}

// storeRef builds a Fresh emit's payload, through the machine's batch
// store when the codec provides one (no per-tuple allocation) and
// through plain Store otherwise.
func (m *Machine) storeRef(p *Program, vals []Val, out Layout) any {
	if m.storeFor != p.codec {
		m.storeFor = p.codec
		m.store = nil
		if bs, ok := p.codec.(BatchStorer); ok {
			m.store = bs.NewBatchStore()
		}
	}
	if m.store != nil {
		return m.store.Append(vals, out)
	}
	return p.codec.Store(vals, out)
}

// SegCounts returns how many tuples entered each segment since the
// last Reset. The scheduler charges per-node executed counters from
// this after a fused batch: a filter segment that drops mid-program
// means downstream segments saw fewer tuples.
func (m *Machine) SegCounts() []uint64 { return m.counts }

// CurSeg returns the segment index that was executing most recently —
// after a recovered panic, the segment (and so the operator) to blame.
func (m *Machine) CurSeg() int { return m.seg }

// Run executes p over the input tuple t, calling emit for each output
// tuple. Forwarding segments pass t through unchanged (preserving
// Seq, Stamp and payload words exactly as the closure path's
// out.Submit(t, 0) does); fresh segments emit a new tuple whose Ref
// the bound codec builds from the out window. Runtime errors panic
// with *Error (or a builtin's own panic); callers contain them at the
// same span boundary that contains closure panics.
func (m *Machine) Run(p *Program, t tuple.Tuple, emit Emitter) {
	if len(m.slots) < int(p.NumSlots) || len(m.stack) < int(p.MaxStack) || len(m.counts) != len(p.Segs) {
		m.Reset(p)
	}
	s0 := &p.Segs[0]
	m.scratch = t
	p.codec.Load(&m.scratch, p.In, m.slots[s0.InBase:s0.InBase+s0.NIn])
	m.runSeg(p, 0, t, 0, emit)
	m.scratch = tuple.Tuple{}
}

// runSeg interprets one segment. tmpl is the template tuple the
// segment would forward; sp is the operand-stack base (nested
// segments share one stack, each running in the region above its
// caller's live temporaries). An inner emit copies the out window
// into the next segment's in window and recurses — depth is bounded
// by the segment count, i.e. the fused chain length.
func (m *Machine) runSeg(p *Program, si int, tmpl tuple.Tuple, sp int, emit Emitter) {
	m.seg = si
	m.counts[si]++
	seg := &p.Segs[si]
	code := p.Code
	stack := m.stack
	slots := m.slots
	pc := seg.Start
	for pc < seg.End {
		in := code[pc]
		pc++
		switch in.Op {
		case OpNop:
		case OpConstI:
			stack[sp].I = p.Ints[in.A]
			sp++
		case OpConstF:
			stack[sp].F = p.Floats[in.A]
			sp++
		case OpConstS:
			stack[sp].S = p.Strs[in.A]
			sp++
		case OpLoad:
			stack[sp] = slots[in.A]
			sp++
		case OpStore:
			sp--
			slots[in.A] = stack[sp]
		case OpLoadSeq:
			stack[sp].I = int64(tmpl.Seq)
			sp++
		case OpPop:
			sp--

		case OpAddI:
			sp--
			stack[sp-1].I += stack[sp].I
		case OpSubI:
			sp--
			stack[sp-1].I -= stack[sp].I
		case OpMulI:
			sp--
			stack[sp-1].I *= stack[sp].I
		case OpDivI:
			sp--
			if stack[sp].I == 0 {
				panic(&Error{Seg: si, PC: pc - 1, Msg: "division by zero"})
			}
			stack[sp-1].I /= stack[sp].I
		case OpModI:
			sp--
			if stack[sp].I == 0 {
				panic(&Error{Seg: si, PC: pc - 1, Msg: "modulo by zero"})
			}
			stack[sp-1].I %= stack[sp].I
		case OpNegI:
			stack[sp-1].I = -stack[sp-1].I

		case OpAddF:
			sp--
			stack[sp-1].F += stack[sp].F
		case OpSubF:
			sp--
			stack[sp-1].F -= stack[sp].F
		case OpMulF:
			sp--
			stack[sp-1].F *= stack[sp].F
		case OpDivF:
			sp--
			stack[sp-1].F /= stack[sp].F
		case OpNegF:
			stack[sp-1].F = -stack[sp-1].F

		case OpCatS:
			sp--
			stack[sp-1].S += stack[sp].S

		case OpEqI:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].I == stack[sp].I)
		case OpNeI:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].I != stack[sp].I)
		case OpLtI:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].I < stack[sp].I)
		case OpLeI:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].I <= stack[sp].I)
		case OpGtI:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].I > stack[sp].I)
		case OpGeI:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].I >= stack[sp].I)

		case OpEqF:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].F == stack[sp].F)
		case OpNeF:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].F != stack[sp].F)
		case OpLtF:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].F < stack[sp].F)
		case OpLeF:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].F <= stack[sp].F)
		case OpGtF:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].F > stack[sp].F)
		case OpGeF:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].F >= stack[sp].F)

		case OpEqS:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].S == stack[sp].S)
			stack[sp-1].S = ""
		case OpNeS:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].S != stack[sp].S)
			stack[sp-1].S = ""
		case OpLtS:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].S < stack[sp].S)
			stack[sp-1].S = ""
		case OpLeS:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].S <= stack[sp].S)
			stack[sp-1].S = ""
		case OpGtS:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].S > stack[sp].S)
			stack[sp-1].S = ""
		case OpGeS:
			sp--
			stack[sp-1].I = b2i(stack[sp-1].S >= stack[sp].S)
			stack[sp-1].S = ""

		case OpNotB:
			stack[sp-1].I = 1 - stack[sp-1].I

		case OpJump:
			pc = in.A
		case OpJumpIfFalse:
			sp--
			if stack[sp].I == 0 {
				pc = in.A
			}
		case OpJumpIfTrue:
			sp--
			if stack[sp].I != 0 {
				pc = in.A
			}

		case OpCall:
			argc := int(in.B)
			sp -= argc
			if cap(m.args) < argc {
				m.args = make([]Val, argc)
			}
			args := m.args[:argc]
			copy(args, stack[sp:sp+argc])
			stack[sp] = p.funcs[in.A](args)
			sp++

		case OpEmit:
			if si == len(p.Segs)-1 {
				out := tmpl
				if seg.Fresh {
					out = tuple.Tuple{Ref: m.storeRef(p, slots[seg.OutBase:seg.OutBase+seg.NOut], seg.Out)}
				}
				emit.Emit(out)
			} else {
				next := &p.Segs[si+1]
				copy(slots[next.InBase:next.InBase+next.NIn], slots[seg.OutBase:seg.OutBase+seg.NOut])
				out := tmpl
				if seg.Fresh {
					// An interior Fresh emit only builds its payload
					// when some final forwarding emit can expose it
					// (needStore, computed by Verify); otherwise the
					// template it would build is dead — a later Fresh
					// segment replaces it before the program ends.
					if p.needStore == nil || p.needStore[si] {
						out = tuple.Tuple{Ref: m.storeRef(p, slots[seg.OutBase:seg.OutBase+seg.NOut], seg.Out)}
					} else {
						out = tuple.Tuple{}
					}
				}
				m.runSeg(p, si+1, out, sp, emit)
				m.seg = si
			}

		case OpDrop:
			return

		default:
			panic(&Error{Seg: si, PC: pc - 1, Msg: "invalid opcode " + in.Op.String()})
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
