package vm

// vecplan.go translates a verified, bound Program from its stack form
// into a register plan the BatchMachine executes batch-at-a-time: one
// typed lane (a column of int64/float64/string) per SSA value, one
// dispatch per instruction per *batch* instead of per tuple, and a
// selection vector instead of per-tuple branches.
//
// The translation is an abstract interpretation of the stack code at
// plan time: every push allocates a fresh lane, OpLoad/OpStore become
// pure copy propagation (a slot is just a name for whichever lane last
// stored to it), constants intern to broadcast lanes filled once per
// lane (re)allocation, and the structured diamonds the compiler emits
// for &&/||/?: are if-converted into speculative execution of both
// sides plus a blend. Filters keep their scalar shape — a trailing
// conditional jump over the segment's emit — and become a prune of the
// selection vector between segments, which also preserves SegCounts
// parity: a segment's count is charged per surviving row on entry,
// exactly as the scalar interpreter's runSeg entry count.
//
// Anything outside that shape — backward jumps (loops), emits inside
// branches or not in tail position, multi-emit segments, OpDrop,
// builtins without a declared vectorization effect — makes PlanVec
// return an error and the program simply stays on the scalar path.
// Vectorization is an opt-in fast path, never a semantic fork: the
// plan's only observable effect is the final emit, every instruction
// before it is pure or replayable, so a mid-batch panic (which the
// BatchMachine raises before *any* emission) lets the scheduler
// re-run the whole batch through the scalar interpreter and get
// byte-identical values, ordering, SegCounts and panic attribution.

import "fmt"

// vecOp is a vectorized opcode; each executes over every row of the
// current selection vector.
type vecOp uint8

const (
	vAddI vecOp = iota
	vSubI
	vMulI
	vDivI
	vModI
	vNegI
	vAddF
	vSubF
	vMulF
	vDivF
	vNegF
	vCatS
	vEqI
	vNeI
	vLtI
	vLeI
	vGtI
	vGeI
	vEqF
	vNeF
	vLtF
	vLeF
	vGtF
	vGeF
	vEqS
	vNeS
	vLtS
	vLeS
	vGtS
	vGeS
	vNotB
	vBlendI
	vBlendF
	vBlendS
	vCall
)

// vop is one vectorized instruction: d, a, b index lanes in the bank
// the opcode implies (blends read the predicate from p; vCall's
// argument list lives in VecProgram.calls[x]). pc is the source
// instruction, kept for *Error attribution.
type vop struct {
	op      vecOp
	d, a, b int32
	p       int32
	x       int32
	pc      int32
}

// vlane names one lane: a bank (by Kind; KBool shares the int bank)
// and an index within it. idx < 0 means "undefined" in planner slot
// state and never appears in an executable plan.
type vlane struct {
	kind Kind
	idx  int32
}

func (l vlane) defined() bool { return l.idx >= 0 }

// bank collapses Kind onto the three lane banks.
func bank(k Kind) int {
	switch k {
	case KFloat:
		return 1
	case KStr:
		return 2
	default: // KInt, KBool
		return 0
	}
}

// vecCall is the side table for one vCall site.
type vecCall struct {
	fn   int32 // builtin index in prog.Builtins / prog.funcs
	args []vlane
	ret  Kind
}

// vecSeg is one operator segment of the plan: its op range, and the
// optional filter lane (a bool/int lane) pruning the selection vector
// after the segment's ops and before the next segment is charged.
type vecSeg struct {
	opsStart, opsEnd int32
	filter           int32 // int-bank lane, or -1
	name             string
}

// laneFill pre-broadcasts one constant into a lane whenever the
// BatchMachine (re)allocates lane storage.
type laneFillI struct {
	reg int32
	val int64
}
type laneFillF struct {
	reg int32
	val float64
}
type laneFillS struct {
	reg int32
	val string
}

// VecProgram is the vectorized plan for one Program. It is pure data
// shared by any number of BatchMachines; all mutable state lives in
// the machine.
type VecProgram struct {
	prog       *Program
	nI, nF, nS int32 // lane counts per bank
	fillI      []laneFillI
	fillF      []laneFillF
	fillS      []laneFillS
	ops        []vop
	calls      []vecCall
	segs       []vecSeg
	in         []vlane // destination lane per input layout field
	seqLane    int32   // int lane carrying tuple Seq per row, or -1
	// emitFresh is true when the finally emitted tuple is a rebuilt
	// template rather than the forwarded input row — i.e. when ANY
	// segment is Fresh, not just the last: a Fresh interior emit
	// replaces the template a forwarding tail then exposes, exactly as
	// runSeg threads tmpl. emitOut/emitCols are the layout and lanes of
	// the last Fresh emit, which EmitRows materializes per surviving
	// row; lanes are SSA (written once per batch), so they still hold
	// that segment's values after downstream segments and filters run.
	emitFresh bool
	emitOut   Layout
	emitCols  []vlane
}

// Prog returns the scalar program the plan was derived from.
func (vp *VecProgram) Prog() *Program { return vp.prog }

// NumSegs returns the segment count (equal to len(prog.Segs)).
func (vp *VecProgram) NumSegs() int { return len(vp.segs) }

// vecFrame tracks one open structured diamond during planning.
type vecFrame struct {
	pred       vlane
	invert     bool  // conditional was OpJumpIfTrue
	elsePC     int32 // target of the conditional jump
	endPC      int32 // target of the unconditional jump; -1 until seen
	entryStack []vlane
	entrySlots []vlane
	thenStack  []vlane
	thenSlots  []vlane
}

type vecPlanner struct {
	p      *Program
	vp     *VecProgram
	constI map[int64]int32
	constF map[float64]int32
	constS map[string]int32
	stack  []vlane
	slots  []vlane
	frames []vecFrame
	// seqZero: after an interior Fresh emit the template tuple is
	// rebuilt with Seq 0, so a later OpLoadSeq must see the constant 0
	// rather than the input row's Seq — mirrored from runSeg's tmpl.
	seqZero bool
}

// PlanVec compiles a bound, verified program into a vectorized plan,
// or explains why the program must stay scalar.
func PlanVec(p *Program) (*VecProgram, error) {
	if p.codec == nil {
		return nil, fmt.Errorf("vm: planvec: program is unbound")
	}
	pl := &vecPlanner{
		p: p,
		vp: &VecProgram{
			prog:    p,
			seqLane: -1,
		},
		constI: map[int64]int32{},
		constF: map[float64]int32{},
		constS: map[string]int32{},
		slots:  make([]vlane, p.NumSlots),
	}
	for i := range pl.slots {
		pl.slots[i] = vlane{idx: -1}
	}

	// Input columns decode straight into fresh lanes.
	s0 := &p.Segs[0]
	pl.vp.in = make([]vlane, len(p.In.Fields))
	for i, f := range p.In.Fields {
		ln := pl.newLane(f.Kind)
		pl.vp.in[i] = ln
		pl.slots[s0.InBase+int32(i)] = ln
	}

	for si := range p.Segs {
		if err := pl.planSeg(si); err != nil {
			return nil, fmt.Errorf("vm: planvec: seg %d (%s): %w", si, p.Segs[si].Name, err)
		}
	}
	return pl.vp, nil
}

func (pl *vecPlanner) newLane(k Kind) vlane {
	var idx int32
	switch bank(k) {
	case 1:
		idx = pl.vp.nF
		pl.vp.nF++
	case 2:
		idx = pl.vp.nS
		pl.vp.nS++
	default:
		idx = pl.vp.nI
		pl.vp.nI++
	}
	return vlane{kind: k, idx: idx}
}

func (pl *vecPlanner) constLaneI(v int64) vlane {
	if idx, ok := pl.constI[v]; ok {
		return vlane{kind: KInt, idx: idx}
	}
	ln := pl.newLane(KInt)
	pl.constI[v] = ln.idx
	pl.vp.fillI = append(pl.vp.fillI, laneFillI{reg: ln.idx, val: v})
	return ln
}

func (pl *vecPlanner) constLaneF(v float64) vlane {
	if idx, ok := pl.constF[v]; ok {
		return vlane{kind: KFloat, idx: idx}
	}
	ln := pl.newLane(KFloat)
	pl.constF[v] = ln.idx
	pl.vp.fillF = append(pl.vp.fillF, laneFillF{reg: ln.idx, val: v})
	return ln
}

func (pl *vecPlanner) constLaneS(v string) vlane {
	if idx, ok := pl.constS[v]; ok {
		return vlane{kind: KStr, idx: idx}
	}
	ln := pl.newLane(KStr)
	pl.constS[v] = ln.idx
	pl.vp.fillS = append(pl.vp.fillS, laneFillS{reg: ln.idx, val: v})
	return ln
}

func (pl *vecPlanner) push(l vlane) { pl.stack = append(pl.stack, l) }

func (pl *vecPlanner) pop() (vlane, error) {
	if len(pl.stack) == 0 {
		return vlane{}, fmt.Errorf("stack underflow")
	}
	l := pl.stack[len(pl.stack)-1]
	pl.stack = pl.stack[:len(pl.stack)-1]
	return l, nil
}

// binOp pops b then a, allocates a result lane of kind rk and appends
// the vectorized op.
func (pl *vecPlanner) binOp(op vecOp, rk Kind, wantBank int, pc int32) error {
	b, err := pl.pop()
	if err != nil {
		return err
	}
	a, err := pl.pop()
	if err != nil {
		return err
	}
	if bank(a.kind) != wantBank || bank(b.kind) != wantBank {
		return fmt.Errorf("pc %d: operand kinds %v/%v for %d-bank op", pc, a.kind, b.kind, wantBank)
	}
	d := pl.newLane(rk)
	pl.vp.ops = append(pl.vp.ops, vop{op: op, d: d.idx, a: a.idx, b: b.idx, pc: pc})
	pl.push(d)
	return nil
}

// unOp pops one operand and pushes the result of op over it.
func (pl *vecPlanner) unOp(op vecOp, rk Kind, wantBank int, pc int32) error {
	a, err := pl.pop()
	if err != nil {
		return err
	}
	if bank(a.kind) != wantBank {
		return fmt.Errorf("pc %d: operand kind %v for %d-bank op", pc, a.kind, wantBank)
	}
	d := pl.newLane(rk)
	pl.vp.ops = append(pl.vp.ops, vop{op: op, d: d.idx, a: a.idx, pc: pc})
	pl.push(d)
	return nil
}

func snapLanes(s []vlane) []vlane { return append([]vlane(nil), s...) }

// blendOp maps a Kind onto its bank's blend opcode.
func blendOp(k Kind) vecOp {
	switch bank(k) {
	case 1:
		return vBlendF
	case 2:
		return vBlendS
	default:
		return vBlendI
	}
}

// merge if-converts one closed diamond: tStack/tSlots is the state
// after the fall-through (taken-when-pred-true for OpJumpIfFalse),
// eStack/eSlots after the jump target side. Values that differ blend
// under the predicate; slots defined on only one side become undefined
// (the compiler scopes such locals to the branch, so nothing reads
// them afterwards — an OpLoad of an undefined slot rejects the plan).
func (pl *vecPlanner) merge(f *vecFrame, tStack, tSlots, eStack, eSlots []vlane) error {
	if len(tStack) != len(eStack) {
		return fmt.Errorf("branch stack depths differ (%d vs %d)", len(tStack), len(eStack))
	}
	blend := func(t, e vlane) (vlane, error) {
		if t == e {
			return t, nil
		}
		if bank(t.kind) != bank(e.kind) {
			return vlane{}, fmt.Errorf("branch kinds differ (%v vs %v)", t.kind, e.kind)
		}
		a, b := t, e
		if f.invert {
			a, b = e, t
		}
		d := pl.newLane(t.kind)
		pl.vp.ops = append(pl.vp.ops, vop{op: blendOp(t.kind), d: d.idx, a: a.idx, b: b.idx, p: f.pred.idx})
		return d, nil
	}
	merged := make([]vlane, len(tStack))
	for i := range tStack {
		m, err := blend(tStack[i], eStack[i])
		if err != nil {
			return err
		}
		merged[i] = m
	}
	pl.stack = merged
	slots := make([]vlane, len(tSlots))
	for i := range tSlots {
		switch {
		case tSlots[i] == eSlots[i]:
			slots[i] = tSlots[i]
		case !tSlots[i].defined() || !eSlots[i].defined():
			slots[i] = vlane{idx: -1}
		default:
			m, err := blend(tSlots[i], eSlots[i])
			if err != nil {
				return err
			}
			slots[i] = m
		}
	}
	pl.slots = slots
	return nil
}

// closeFrames closes every diamond ending at pc: the innermost frame
// closes at its join point (endPC when an else side exists, elsePC
// when the conditional jumped straight to the join).
func (pl *vecPlanner) closeFrames(pc int32) error {
	for len(pl.frames) > 0 {
		f := &pl.frames[len(pl.frames)-1]
		switch {
		case f.endPC == pc:
			// Fall-through side was captured at the OpJump; current
			// state is the jump-target side.
			if err := pl.merge(f, f.thenStack, f.thenSlots, snapLanes(pl.stack), snapLanes(pl.slots)); err != nil {
				return err
			}
		case f.endPC == -1 && f.elsePC == pc:
			// No else side: the jump target IS the join; the untaken
			// side keeps the entry state.
			if err := pl.merge(f, snapLanes(pl.stack), snapLanes(pl.slots), f.entryStack, f.entrySlots); err != nil {
				return err
			}
		default:
			return nil
		}
		pl.frames = pl.frames[:len(pl.frames)-1]
	}
	return nil
}

func (pl *vecPlanner) planSeg(si int) error {
	p := pl.p
	seg := &p.Segs[si]
	vs := vecSeg{opsStart: int32(len(pl.vp.ops)), filter: -1, name: seg.Name}
	pl.frames = pl.frames[:0]
	pl.stack = pl.stack[:0]

	for pc := seg.Start; pc < seg.End; pc++ {
		if err := pl.closeFrames(pc); err != nil {
			return err
		}
		in := p.Code[pc]
		switch in.Op {
		case OpNop:

		case OpConstI:
			pl.push(pl.constLaneI(p.Ints[in.A]))
		case OpConstF:
			pl.push(pl.constLaneF(p.Floats[in.A]))
		case OpConstS:
			pl.push(pl.constLaneS(p.Strs[in.A]))

		case OpLoad:
			l := pl.slots[in.A]
			if !l.defined() {
				return fmt.Errorf("pc %d: load of undefined slot %d", pc, in.A)
			}
			pl.push(l)
		case OpStore:
			v, err := pl.pop()
			if err != nil {
				return err
			}
			pl.slots[in.A] = v
		case OpLoadSeq:
			if pl.seqZero {
				pl.push(pl.constLaneI(0))
			} else {
				if pl.vp.seqLane < 0 {
					pl.vp.seqLane = pl.newLane(KInt).idx
				}
				pl.push(vlane{kind: KInt, idx: pl.vp.seqLane})
			}
		case OpPop:
			if _, err := pl.pop(); err != nil {
				return err
			}

		case OpAddI:
			if err := pl.binOp(vAddI, KInt, 0, pc); err != nil {
				return err
			}
		case OpSubI:
			if err := pl.binOp(vSubI, KInt, 0, pc); err != nil {
				return err
			}
		case OpMulI:
			if err := pl.binOp(vMulI, KInt, 0, pc); err != nil {
				return err
			}
		case OpDivI:
			if err := pl.binOp(vDivI, KInt, 0, pc); err != nil {
				return err
			}
		case OpModI:
			if err := pl.binOp(vModI, KInt, 0, pc); err != nil {
				return err
			}
		case OpNegI:
			if err := pl.unOp(vNegI, KInt, 0, pc); err != nil {
				return err
			}

		case OpAddF:
			if err := pl.binOp(vAddF, KFloat, 1, pc); err != nil {
				return err
			}
		case OpSubF:
			if err := pl.binOp(vSubF, KFloat, 1, pc); err != nil {
				return err
			}
		case OpMulF:
			if err := pl.binOp(vMulF, KFloat, 1, pc); err != nil {
				return err
			}
		case OpDivF:
			if err := pl.binOp(vDivF, KFloat, 1, pc); err != nil {
				return err
			}
		case OpNegF:
			if err := pl.unOp(vNegF, KFloat, 1, pc); err != nil {
				return err
			}

		case OpCatS:
			if err := pl.binOp(vCatS, KStr, 2, pc); err != nil {
				return err
			}

		case OpEqI:
			if err := pl.binOp(vEqI, KBool, 0, pc); err != nil {
				return err
			}
		case OpNeI:
			if err := pl.binOp(vNeI, KBool, 0, pc); err != nil {
				return err
			}
		case OpLtI:
			if err := pl.binOp(vLtI, KBool, 0, pc); err != nil {
				return err
			}
		case OpLeI:
			if err := pl.binOp(vLeI, KBool, 0, pc); err != nil {
				return err
			}
		case OpGtI:
			if err := pl.binOp(vGtI, KBool, 0, pc); err != nil {
				return err
			}
		case OpGeI:
			if err := pl.binOp(vGeI, KBool, 0, pc); err != nil {
				return err
			}
		case OpEqF:
			if err := pl.binOp(vEqF, KBool, 1, pc); err != nil {
				return err
			}
		case OpNeF:
			if err := pl.binOp(vNeF, KBool, 1, pc); err != nil {
				return err
			}
		case OpLtF:
			if err := pl.binOp(vLtF, KBool, 1, pc); err != nil {
				return err
			}
		case OpLeF:
			if err := pl.binOp(vLeF, KBool, 1, pc); err != nil {
				return err
			}
		case OpGtF:
			if err := pl.binOp(vGtF, KBool, 1, pc); err != nil {
				return err
			}
		case OpGeF:
			if err := pl.binOp(vGeF, KBool, 1, pc); err != nil {
				return err
			}
		case OpEqS:
			if err := pl.binOp(vEqS, KBool, 2, pc); err != nil {
				return err
			}
		case OpNeS:
			if err := pl.binOp(vNeS, KBool, 2, pc); err != nil {
				return err
			}
		case OpLtS:
			if err := pl.binOp(vLtS, KBool, 2, pc); err != nil {
				return err
			}
		case OpLeS:
			if err := pl.binOp(vLeS, KBool, 2, pc); err != nil {
				return err
			}
		case OpGtS:
			if err := pl.binOp(vGtS, KBool, 2, pc); err != nil {
				return err
			}
		case OpGeS:
			if err := pl.binOp(vGeS, KBool, 2, pc); err != nil {
				return err
			}

		case OpNotB:
			if err := pl.unOp(vNotB, KBool, 0, pc); err != nil {
				return err
			}

		case OpJumpIfFalse, OpJumpIfTrue:
			if in.A <= pc {
				return fmt.Errorf("pc %d: backward jump", pc)
			}
			pred, err := pl.pop()
			if err != nil {
				return err
			}
			if bank(pred.kind) != 0 {
				return fmt.Errorf("pc %d: non-bool predicate", pc)
			}
			// Filter tail: a conditional jump straight over the final
			// emit becomes a selection-vector prune between segments.
			if in.Op == OpJumpIfFalse && in.A == seg.End && pc+2 == seg.End &&
				p.Code[pc+1].Op == OpEmit && len(pl.frames) == 0 {
				vs.filter = pred.idx
				continue
			}
			pl.frames = append(pl.frames, vecFrame{
				pred:       pred,
				invert:     in.Op == OpJumpIfTrue,
				elsePC:     in.A,
				endPC:      -1,
				entryStack: snapLanes(pl.stack),
				entrySlots: snapLanes(pl.slots),
			})

		case OpJump:
			if len(pl.frames) == 0 {
				return fmt.Errorf("pc %d: jump outside a diamond", pc)
			}
			f := &pl.frames[len(pl.frames)-1]
			if f.endPC != -1 || f.elsePC != pc+1 || in.A <= pc {
				return fmt.Errorf("pc %d: unstructured jump", pc)
			}
			f.thenStack = snapLanes(pl.stack)
			f.thenSlots = snapLanes(pl.slots)
			pl.stack = snapLanes(f.entryStack)
			pl.slots = snapLanes(f.entrySlots)
			f.endPC = in.A

		case OpCall:
			name := p.Builtins[in.A]
			info, ok := lookupBuiltinInfo(name)
			if !ok || info.effect == EffectImpure {
				return fmt.Errorf("pc %d: builtin %q has side effects", pc, name)
			}
			argc := int(in.B)
			if len(pl.stack) < argc {
				return fmt.Errorf("pc %d: stack underflow at call", pc)
			}
			args := snapLanes(pl.stack[len(pl.stack)-argc:])
			pl.stack = pl.stack[:len(pl.stack)-argc]
			d := pl.newLane(info.ret)
			pl.vp.calls = append(pl.vp.calls, vecCall{fn: in.A, args: args, ret: info.ret})
			pl.vp.ops = append(pl.vp.ops, vop{op: vCall, d: d.idx, x: int32(len(pl.vp.calls) - 1), pc: pc})
			pl.push(d)

		case OpEmit:
			if len(pl.frames) > 0 {
				return fmt.Errorf("pc %d: emit inside a branch", pc)
			}
			if pc != seg.End-1 {
				return fmt.Errorf("pc %d: emit not in tail position", pc)
			}
			cols := make([]vlane, seg.NOut)
			for k := int32(0); k < seg.NOut; k++ {
				l := pl.slots[seg.OutBase+k]
				if !l.defined() {
					return fmt.Errorf("pc %d: out slot %d undefined at emit", pc, seg.OutBase+k)
				}
				cols[k] = l
			}
			if seg.Fresh {
				// A Fresh emit rebuilds the template tuple the rest of
				// the chain forwards; the last one to run is what the
				// final emit exposes (whether that emit is itself Fresh
				// or a forwarding tail), so record it and let any later
				// Fresh emit overwrite it — the vectorized twin of
				// runSeg replacing tmpl, with needStore folded in: only
				// the surviving record is ever materialized.
				pl.vp.emitFresh = true
				pl.vp.emitOut = seg.Out
				pl.vp.emitCols = cols
			}
			if si < len(p.Segs)-1 {
				next := &p.Segs[si+1]
				for k := int32(0); k < next.NIn; k++ {
					pl.slots[next.InBase+k] = cols[k]
				}
				if seg.Fresh {
					pl.seqZero = true
				}
			}

		case OpDrop:
			return fmt.Errorf("pc %d: drop is not vectorizable", pc)

		default:
			return fmt.Errorf("pc %d: opcode %s is not vectorizable", pc, in.Op)
		}
	}
	if err := pl.closeFrames(seg.End); err != nil {
		return err
	}
	if len(pl.frames) > 0 {
		return fmt.Errorf("unclosed branch at segment end")
	}
	vs.opsEnd = int32(len(pl.vp.ops))
	pl.vp.segs = append(pl.vp.segs, vs)
	return nil
}
