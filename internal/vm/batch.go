package vm

// batch.go executes a VecProgram batch-at-a-time: decode the batch
// into struct-of-arrays lanes once, run every vectorized instruction
// over the whole selection vector in a tight loop, then emit the
// surviving rows. All lane storage is owned by the BatchMachine and
// reused across batches, so the steady state allocates nothing.
//
// The execution contract the scheduler's fall-back logic relies on:
// Run performs *no* emissions — every observable effect of the program
// is deferred to EmitRows — so a panic anywhere in Run (division by
// zero, a builtin fault, speculative execution of an if-converted
// branch the scalar path would not have taken) leaves the world
// untouched and the caller can re-run the entire batch through the
// scalar Machine for byte-identical results and per-row panic
// attribution. EmitRows advances an internal cursor past each row
// before emitting it, so a panic *during* an emission (downstream
// operator fault) can be contained by the caller exactly like the
// scalar path contains it, and a subsequent EmitRows call resumes with
// the next row instead of double-emitting.

import (
	"streams/internal/tuple"
)

// BatchMachine executes vectorized plans. Like Machine it is
// single-threaded and meant to live as long as its owner (one per
// fused run in the scheduler).
type BatchMachine struct {
	vp      *VecProgram
	ints    [][]int64
	floats  [][]float64
	strs    [][]string
	sel     []int32
	selBuf  []int32
	counts  []uint64
	args    []Val
	vals    []Val
	seg     int
	fault   int32
	rows    int
	laneCap int

	batch   []tuple.Tuple
	emitPos int

	store    BatchStore
	storeFor RefCodec
}

// Reset binds the machine to a plan and clears per-batch state
// (segment counts, emit cursor). Lane storage is kept and reused;
// string lanes are cleared so a retired batch's string refs don't pin
// their backing memory.
func (bm *BatchMachine) Reset(vp *VecProgram) {
	rebound := bm.vp != vp
	bm.vp = vp
	if cap(bm.counts) < len(vp.segs) {
		bm.counts = make([]uint64, len(vp.segs))
	}
	bm.counts = bm.counts[:len(vp.segs)]
	for i := range bm.counts {
		bm.counts[i] = 0
	}
	bm.seg = 0
	bm.fault = -1
	bm.rows = 0
	bm.batch = nil
	bm.emitPos = 0
	// Clear string lanes so the previous batch's refs don't pin their
	// backing memory, then re-broadcast constant string lanes (still
	// valid when the plan is unchanged). On a plan switch the lanes are
	// released outright — indices would not line up anyway.
	for _, l := range bm.strs {
		for i := range l {
			l[i] = ""
		}
	}
	if rebound {
		bm.laneCap = 0
		bm.ints, bm.floats, bm.strs = nil, nil, nil
	} else if len(bm.strs) > 0 {
		// Skip the re-broadcast when lane storage hasn't been allocated
		// yet (ensure runs lazily in Run): back-to-back Resets before
		// any Run would otherwise index empty lane tables.
		for _, f := range vp.fillS {
			l := bm.strs[f.reg]
			for i := range l {
				l[i] = f.val
			}
		}
	}
}

// SegCounts returns how many rows entered each segment since Reset —
// the same contract as Machine.SegCounts, so the scheduler charges
// per-node executed counters identically on both paths.
func (bm *BatchMachine) SegCounts() []uint64 { return bm.counts }

// CurSeg returns the segment that was executing most recently — after
// a recovered panic, the operator to blame.
func (bm *BatchMachine) CurSeg() int { return bm.seg }

// FaultRow returns the batch index of the row whose lane was executing
// when Run panicked (-1 when no fault has occurred): the mapping from
// a faulting lane back to the source tuple.
func (bm *BatchMachine) FaultRow() int { return int(bm.fault) }

// ensure grows lane storage to hold n rows and re-broadcasts the
// plan's constant lanes into the (re)allocated columns.
func (bm *BatchMachine) ensure(n int) {
	if n <= bm.laneCap {
		return
	}
	c := bm.laneCap
	if c < 64 {
		c = 64
	}
	for c < n {
		c *= 2
	}
	bm.laneCap = c
	vp := bm.vp
	bm.ints = make([][]int64, vp.nI)
	for i := range bm.ints {
		bm.ints[i] = make([]int64, c)
	}
	bm.floats = make([][]float64, vp.nF)
	for i := range bm.floats {
		bm.floats[i] = make([]float64, c)
	}
	bm.strs = make([][]string, vp.nS)
	for i := range bm.strs {
		bm.strs[i] = make([]string, c)
	}
	for _, f := range vp.fillI {
		l := bm.ints[f.reg]
		for i := range l {
			l[i] = f.val
		}
	}
	for _, f := range vp.fillF {
		l := bm.floats[f.reg]
		for i := range l {
			l[i] = f.val
		}
	}
	for _, f := range vp.fillS {
		l := bm.strs[f.reg]
		for i := range l {
			l[i] = f.val
		}
	}
	if cap(bm.sel) < c {
		bm.sel = make([]int32, c)
		bm.selBuf = make([]int32, c)
	}
}

// Run decodes batch into lanes and executes the plan's compute and
// filter stages. It emits nothing (see the contract above); call
// EmitRows afterwards to deliver the surviving rows. Runtime faults
// panic with *Error, with CurSeg/FaultRow identifying the segment and
// source row.
func (bm *BatchMachine) Run(batch []tuple.Tuple) {
	vp := bm.vp
	p := vp.prog
	n := len(batch)
	bm.ensure(n)
	bm.batch = batch
	bm.rows = n
	bm.emitPos = 0
	bm.seg = 0
	bm.fault = -1

	// Decode: one codec.Load per row, scattered into the input lanes.
	nIn := len(p.In.Fields)
	if nIn > 0 {
		if cap(bm.vals) < nIn {
			bm.vals = make([]Val, nIn)
		}
		vals := bm.vals[:nIn]
		for r := 0; r < n; r++ {
			p.codec.Load(&batch[r], p.In, vals)
			for i, ln := range vp.in {
				switch bank(ln.kind) {
				case 1:
					bm.floats[ln.idx][r] = vals[i].F
				case 2:
					bm.strs[ln.idx][r] = vals[i].S
				default:
					bm.ints[ln.idx][r] = vals[i].I
				}
			}
		}
	}
	if vp.seqLane >= 0 {
		seq := bm.ints[vp.seqLane]
		for r := 0; r < n; r++ {
			seq[r] = int64(batch[r].Seq)
		}
	}

	sel := bm.sel[:n]
	for r := range sel {
		sel[r] = int32(r)
	}
	for si := range vp.segs {
		vs := &vp.segs[si]
		bm.seg = si
		bm.counts[si] += uint64(len(sel))
		bm.exec(vp.ops[vs.opsStart:vs.opsEnd], sel)
		if vs.filter >= 0 {
			pred := bm.ints[vs.filter]
			kept := bm.selBuf[:0]
			for _, r := range sel {
				if pred[r] != 0 {
					kept = append(kept, r)
				}
			}
			bm.sel, bm.selBuf = bm.selBuf, bm.sel
			sel = kept
		}
		if len(sel) == 0 {
			break
		}
	}
	// sel aliases whichever buffer the last filter swap landed on;
	// keep that exact slice for EmitRows.
	bm.sel = sel
}

// exec interprets one segment's vectorized ops over the selection.
func (bm *BatchMachine) exec(ops []vop, sel []int32) {
	vp := bm.vp
	li, lf, ls := bm.ints, bm.floats, bm.strs
	for i := range ops {
		o := &ops[i]
		switch o.op {
		case vAddI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = a[r] + b[r]
			}
		case vSubI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = a[r] - b[r]
			}
		case vMulI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = a[r] * b[r]
			}
		case vDivI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				if b[r] == 0 {
					bm.fault = r
					panic(&Error{Seg: bm.seg, PC: o.pc, Msg: "division by zero"})
				}
				d[r] = a[r] / b[r]
			}
		case vModI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				if b[r] == 0 {
					bm.fault = r
					panic(&Error{Seg: bm.seg, PC: o.pc, Msg: "modulo by zero"})
				}
				d[r] = a[r] % b[r]
			}
		case vNegI:
			d, a := li[o.d], li[o.a]
			for _, r := range sel {
				d[r] = -a[r]
			}

		case vAddF:
			d, a, b := lf[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = a[r] + b[r]
			}
		case vSubF:
			d, a, b := lf[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = a[r] - b[r]
			}
		case vMulF:
			d, a, b := lf[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = a[r] * b[r]
			}
		case vDivF:
			d, a, b := lf[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = a[r] / b[r]
			}
		case vNegF:
			d, a := lf[o.d], lf[o.a]
			for _, r := range sel {
				d[r] = -a[r]
			}

		case vCatS:
			d, a, b := ls[o.d], ls[o.a], ls[o.b]
			for _, r := range sel {
				d[r] = a[r] + b[r]
			}

		case vEqI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] == b[r])
			}
		case vNeI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] != b[r])
			}
		case vLtI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] < b[r])
			}
		case vLeI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] <= b[r])
			}
		case vGtI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] > b[r])
			}
		case vGeI:
			d, a, b := li[o.d], li[o.a], li[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] >= b[r])
			}

		case vEqF:
			d, a, b := li[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] == b[r])
			}
		case vNeF:
			d, a, b := li[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] != b[r])
			}
		case vLtF:
			d, a, b := li[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] < b[r])
			}
		case vLeF:
			d, a, b := li[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] <= b[r])
			}
		case vGtF:
			d, a, b := li[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] > b[r])
			}
		case vGeF:
			d, a, b := li[o.d], lf[o.a], lf[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] >= b[r])
			}

		case vEqS:
			d, a, b := li[o.d], ls[o.a], ls[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] == b[r])
			}
		case vNeS:
			d, a, b := li[o.d], ls[o.a], ls[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] != b[r])
			}
		case vLtS:
			d, a, b := li[o.d], ls[o.a], ls[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] < b[r])
			}
		case vLeS:
			d, a, b := li[o.d], ls[o.a], ls[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] <= b[r])
			}
		case vGtS:
			d, a, b := li[o.d], ls[o.a], ls[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] > b[r])
			}
		case vGeS:
			d, a, b := li[o.d], ls[o.a], ls[o.b]
			for _, r := range sel {
				d[r] = b2i(a[r] >= b[r])
			}

		case vNotB:
			d, a := li[o.d], li[o.a]
			for _, r := range sel {
				d[r] = 1 - a[r]
			}

		case vBlendI:
			d, a, b, p := li[o.d], li[o.a], li[o.b], li[o.p]
			for _, r := range sel {
				if p[r] != 0 {
					d[r] = a[r]
				} else {
					d[r] = b[r]
				}
			}
		case vBlendF:
			d, a, b, p := lf[o.d], lf[o.a], lf[o.b], li[o.p]
			for _, r := range sel {
				if p[r] != 0 {
					d[r] = a[r]
				} else {
					d[r] = b[r]
				}
			}
		case vBlendS:
			d, a, b, p := ls[o.d], ls[o.a], ls[o.b], li[o.p]
			for _, r := range sel {
				if p[r] != 0 {
					d[r] = a[r]
				} else {
					d[r] = b[r]
				}
			}

		case vCall:
			c := &vp.calls[o.x]
			if cap(bm.args) < len(c.args) {
				bm.args = make([]Val, len(c.args))
			}
			args := bm.args[:len(c.args)]
			fn := vp.prog.funcs[c.fn]
			for _, r := range sel {
				for ai, al := range c.args {
					switch bank(al.kind) {
					case 1:
						args[ai] = Val{F: lf[al.idx][r]}
					case 2:
						args[ai] = Val{S: ls[al.idx][r]}
					default:
						args[ai] = Val{I: li[al.idx][r]}
					}
				}
				bm.fault = r
				v := fn(args)
				switch bank(c.ret) {
				case 1:
					lf[o.d][r] = v.F
				case 2:
					ls[o.d][r] = v.S
				default:
					li[o.d][r] = v.I
				}
			}
			bm.fault = -1
		}
	}
}

// EmitRows delivers the rows that survived Run's filters, in batch
// order. The cursor advances past a row before its emission, so if an
// emission panics (a downstream fault the caller contains exactly as
// it contains scalar per-tuple panics), calling EmitRows again resumes
// with the following row. Returns the number of rows emitted across
// all calls since Run.
func (bm *BatchMachine) EmitRows(emit Emitter) int {
	vp := bm.vp
	sel := bm.sel
	bm.seg = len(vp.segs) - 1
	if vp.emitFresh {
		nOut := len(vp.emitCols)
		if cap(bm.vals) < nOut {
			bm.vals = make([]Val, nOut)
		}
		vals := bm.vals[:nOut]
		store := bm.freshStore()
		for bm.emitPos < len(sel) {
			r := sel[bm.emitPos]
			bm.emitPos++
			for i, ln := range vp.emitCols {
				switch bank(ln.kind) {
				case 1:
					vals[i] = Val{F: bm.floats[ln.idx][r]}
				case 2:
					vals[i] = Val{S: bm.strs[ln.idx][r]}
				default:
					vals[i] = Val{I: bm.ints[ln.idx][r]}
				}
			}
			var ref any
			if store != nil {
				ref = store.Append(vals, vp.emitOut)
			} else {
				ref = vp.prog.codec.Store(vals, vp.emitOut)
			}
			emit.Emit(tuple.Tuple{Ref: ref})
		}
	} else {
		// No segment anywhere in the chain was Fresh (the planner sets
		// emitFresh for interior Fresh emits too): pure forwarding, the
		// surviving input rows pass through with Ref, Seq and Stamp
		// untouched.
		for bm.emitPos < len(sel) {
			r := sel[bm.emitPos]
			bm.emitPos++
			emit.Emit(bm.batch[r])
		}
	}
	bm.batch = nil
	return bm.emitPos
}

// freshStore returns the machine's batch store for the bound codec, or
// nil when the codec doesn't provide one.
func (bm *BatchMachine) freshStore() BatchStore {
	codec := bm.vp.prog.codec
	if bm.storeFor != codec {
		bm.storeFor = codec
		bm.store = nil
		if bs, ok := codec.(BatchStorer); ok {
			bm.store = bs.NewBatchStore()
		}
	}
	return bm.store
}
