package vm

import "fmt"

// Fuse concatenates the programs of a linear operator run into one
// superinstruction program: segment i's emit feeds segment i+1's
// input window directly, with no Process call, Submitter hop or batch
// flush in between. Each input program's code, constant pools and
// slot region are relocated by pure index shifts; builtin names are
// deduplicated so the fused name table (and hence the content hash)
// is canonical.
//
// Every program must already be single-codec compatible: adjacent
// out/in layouts must agree in names and kinds, and all programs must
// be bound to the same codec (the fused program inherits it). Fuse
// verifies the result before returning it.
func Fuse(progs []*Program) (*Program, error) {
	if len(progs) < 2 {
		return nil, fmt.Errorf("vm: fuse needs at least 2 programs, got %d", len(progs))
	}
	f := &Program{In: progs[0].In, codec: progs[0].codec}
	bidx := map[string]int32{}
	for pi, p := range progs {
		if p.codec == nil {
			return nil, fmt.Errorf("vm: fuse: program %d is unbound", pi)
		}
		if pi > 0 {
			prev := progs[pi-1]
			if !prev.Segs[len(prev.Segs)-1].Out.Equal(p.In) {
				return nil, fmt.Errorf("vm: fuse: %s emits %v, %s expects %v",
					prev.Segs[len(prev.Segs)-1].Name, prev.Segs[len(prev.Segs)-1].Out.Fields,
					p.Segs[0].Name, p.In.Fields)
			}
			if p.codec != f.codec {
				return nil, fmt.Errorf("vm: fuse: mixed codecs")
			}
		}
		codeOff := int32(len(f.Code))
		slotOff := f.NumSlots
		intOff := int32(len(f.Ints))
		floatOff := int32(len(f.Floats))
		strOff := int32(len(f.Strs))
		bmap := make([]int32, len(p.Builtins))
		for i, name := range p.Builtins {
			j, ok := bidx[name]
			if !ok {
				j = int32(len(f.Builtins))
				f.Builtins = append(f.Builtins, name)
				f.funcs = append(f.funcs, p.funcs[i])
				bidx[name] = j
			}
			bmap[i] = j
		}
		for _, in := range p.Code {
			switch in.Op {
			case OpConstI:
				in.A += intOff
			case OpConstF:
				in.A += floatOff
			case OpConstS:
				in.A += strOff
			case OpLoad, OpStore:
				in.A += slotOff
			case OpJump, OpJumpIfFalse, OpJumpIfTrue:
				in.A += codeOff
			case OpCall:
				in.A = bmap[in.A]
			}
			f.Code = append(f.Code, in)
		}
		for _, s := range p.Segs {
			s.Start += codeOff
			s.End += codeOff
			s.InBase += slotOff
			s.OutBase += slotOff
			f.Segs = append(f.Segs, s)
		}
		f.NumSlots += p.NumSlots
		// Stacks sum rather than max: an inner emit runs the next
		// segment above the emitter's live temporaries.
		f.MaxStack += p.MaxStack
		// The fused cutoff is the most conservative of the inputs'.
		if p.vecMin > f.vecMin {
			f.vecMin = p.vecMin
		}
		f.Ints = append(f.Ints, p.Ints...)
		f.Floats = append(f.Floats, p.Floats...)
		f.Strs = append(f.Strs, p.Strs...)
	}
	if err := f.Verify(); err != nil {
		return nil, err
	}
	return f, nil
}
