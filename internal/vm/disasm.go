package vm

import (
	"fmt"
	"strings"
)

// Disasm renders a program as human-readable assembly: header (hash,
// geometry, input layout), then each segment's instructions with
// constant-pool values and builtin names resolved inline. splc
// -dump-vm prints this per operator, and golden tests pin it.
func Disasm(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.HashString())
	fmt.Fprintf(&b, "  slots %d, stack %d, in %s\n", p.NumSlots, p.MaxStack, layoutString(p.In))
	for si := range p.Segs {
		s := &p.Segs[si]
		mode := "forward"
		if s.Fresh {
			mode = "fresh"
		}
		fmt.Fprintf(&b, "seg %d %q %s in=[%d:%d) out=[%d:%d) %s\n",
			si, s.Name, mode, s.InBase, s.InBase+s.NIn, s.OutBase, s.OutBase+s.NOut, layoutString(s.Out))
		for pc := s.Start; pc < s.End; pc++ {
			in := p.Code[pc]
			fmt.Fprintf(&b, "  %4d  %-10s", pc, in.Op.String())
			switch in.Op {
			case OpConstI:
				fmt.Fprintf(&b, " %d", p.Ints[in.A])
			case OpConstF:
				fmt.Fprintf(&b, " %g", p.Floats[in.A])
			case OpConstS:
				fmt.Fprintf(&b, " %q", p.Strs[in.A])
			case OpLoad, OpStore:
				fmt.Fprintf(&b, " s%d", in.A)
			case OpJump, OpJumpIfFalse, OpJumpIfTrue:
				fmt.Fprintf(&b, " @%d", in.A)
			case OpCall:
				fmt.Fprintf(&b, " %s/%d", p.Builtins[in.A], in.B)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func layoutString(l Layout) string {
	if len(l.Fields) == 0 {
		return "()"
	}
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range l.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Kind, f.Name)
	}
	b.WriteByte(')')
	return b.String()
}
