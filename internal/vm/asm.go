package vm

import (
	"fmt"
	"math"
)

// Builder assembles a single-segment program: it pools constants,
// resolves builtin names to indices, tracks the operand-stack
// high-water mark and patches forward jumps. Both the SPL bytecode
// compiler and the native operator library build programs through it.
//
// Stack accounting is linear (effects summed in code order), which
// overestimates whenever a jump skips pushes. It never underestimates
// as long as every skipped region has a non-negative net stack effect
// — true for all lowerings here, where jumps only ever skip an
// expression branch (net +1) or a balanced statement block (net 0).
type Builder struct {
	code     []Instr
	ints     []int64
	intIdx   map[int64]int32
	floats   []float64
	floatIdx map[uint64]int32
	strs     []string
	strIdx   map[string]int32
	builtins []string
	bIdx     map[string]int32
	depth    int32
	maxDepth int32
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		intIdx:   map[int64]int32{},
		floatIdx: map[uint64]int32{},
		strIdx:   map[string]int32{},
		bIdx:     map[string]int32{},
	}
}

// Here returns the next instruction's pc (the current jump target).
func (b *Builder) Here() int32 { return int32(len(b.code)) }

// Depth returns the current modeled stack depth (for sanity asserts).
func (b *Builder) Depth() int32 { return b.depth }

// effect is each opcode's net stack effect (OpCall is special-cased).
func effect(op Op) int32 {
	switch op {
	case OpConstI, OpConstF, OpConstS, OpLoad, OpLoadSeq:
		return 1
	case OpStore, OpPop, OpJumpIfFalse, OpJumpIfTrue,
		OpAddI, OpSubI, OpMulI, OpDivI, OpModI,
		OpAddF, OpSubF, OpMulF, OpDivF, OpCatS,
		OpEqI, OpNeI, OpLtI, OpLeI, OpGtI, OpGeI,
		OpEqF, OpNeF, OpLtF, OpLeF, OpGtF, OpGeF,
		OpEqS, OpNeS, OpLtS, OpLeS, OpGtS, OpGeS:
		return -1
	default:
		return 0
	}
}

// Ins appends an instruction and returns its pc.
func (b *Builder) Ins(op Op, a, arg2 int32) int32 {
	pc := b.Here()
	b.code = append(b.code, Instr{Op: op, A: a, B: arg2})
	if op == OpCall {
		b.depth += 1 - arg2
	} else {
		b.depth += effect(op)
	}
	if b.depth > b.maxDepth {
		b.maxDepth = b.depth
	}
	return pc
}

// Op appends a no-operand instruction.
func (b *Builder) Op(op Op) int32 { return b.Ins(op, 0, 0) }

// ConstI pushes an int constant through the pool.
func (b *Builder) ConstI(v int64) {
	i, ok := b.intIdx[v]
	if !ok {
		i = int32(len(b.ints))
		b.ints = append(b.ints, v)
		b.intIdx[v] = i
	}
	b.Ins(OpConstI, i, 0)
}

// ConstB pushes a bool constant (the int lane).
func (b *Builder) ConstB(v bool) {
	if v {
		b.ConstI(1)
	} else {
		b.ConstI(0)
	}
}

// ConstF pushes a float constant (pooled by bit pattern, so NaNs
// dedupe deterministically).
func (b *Builder) ConstF(v float64) {
	k := math.Float64bits(v)
	i, ok := b.floatIdx[k]
	if !ok {
		i = int32(len(b.floats))
		b.floats = append(b.floats, v)
		b.floatIdx[k] = i
	}
	b.Ins(OpConstF, i, 0)
}

// ConstS pushes a string constant through the pool.
func (b *Builder) ConstS(v string) {
	i, ok := b.strIdx[v]
	if !ok {
		i = int32(len(b.strs))
		b.strs = append(b.strs, v)
		b.strIdx[v] = i
	}
	b.Ins(OpConstS, i, 0)
}

// Call appends a builtin call by mangled name.
func (b *Builder) Call(name string, argc int32) {
	i, ok := b.bIdx[name]
	if !ok {
		i = int32(len(b.builtins))
		b.builtins = append(b.builtins, name)
		b.bIdx[name] = i
	}
	b.Ins(OpCall, i, argc)
}

// Jump appends a jump with an unresolved target; Patch resolves it.
func (b *Builder) Jump(op Op) int32 { return b.Ins(op, -1, 0) }

// Patch points the jump at pc to the current position.
func (b *Builder) Patch(pc int32) { b.code[pc].A = b.Here() }

// PatchTo points the jump at pc to target.
func (b *Builder) PatchTo(pc, target int32) { b.code[pc].A = target }

// Finish seals the builder into a verified single-segment program.
// The caller supplies the segment's window geometry (bases relative
// to slot 0) and numSlots, the total including locals.
func (b *Builder) Finish(seg Seg, in Layout, numSlots int32) (*Program, error) {
	seg.Start = 0
	seg.End = b.Here()
	p := &Program{
		In:       in,
		NumSlots: numSlots,
		MaxStack: b.maxDepth,
		Code:     b.code,
		Ints:     b.ints,
		Floats:   b.floats,
		Strs:     b.strs,
		Builtins: b.builtins,
		Segs:     []Seg{seg},
	}
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("vm: assembled program invalid: %w", err)
	}
	return p, nil
}
