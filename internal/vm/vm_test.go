package vm

import (
	"reflect"
	"strings"
	"testing"

	"streams/internal/tuple"
)

// sliceCodec is the test codec: payloads are plain []Val in layout
// order, so boundary conversion is a copy in each direction.
type sliceCodec struct{}

func (sliceCodec) Load(t *tuple.Tuple, in Layout, slots []Val) {
	copy(slots, t.Ref.([]Val))
}
func (sliceCodec) Store(slots []Val, out Layout) any {
	vs := make([]Val, len(slots))
	copy(vs, slots)
	return vs
}

func init() {
	RegisterBuiltin("test.add2:ii", func(args []Val) Val {
		return Val{I: args[0].I + args[1].I}
	})
}

var intIn = Layout{Fields: []Field{{Name: "x", Kind: KInt}}}

// funcProg builds a fresh single-segment program computing
// out.x = in.x*mul + add. Slot 0 is the in window, slot 1 the out.
func funcProg(t *testing.T, name string, mul, add int64) *Program {
	t.Helper()
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstI(mul)
	b.Op(OpMulI)
	b.ConstI(add)
	b.Op(OpAddI)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: name, Out: intIn}, intIn, 2)
	if err != nil {
		t.Fatalf("funcProg: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	return p
}

// filterProg builds a forwarding program keeping tuples with
// x % mod == keep.
func filterProg(t *testing.T, name string, mod, keep int64) *Program {
	t.Helper()
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstI(mod)
	b.Op(OpModI)
	b.ConstI(keep)
	b.Op(OpEqI)
	j := b.Jump(OpJumpIfFalse)
	b.Op(OpEmit)
	drop := b.Op(OpDrop)
	b.PatchTo(j, drop)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 0, NOut: 1, Name: name, Out: intIn}, intIn, 1)
	if err != nil {
		t.Fatalf("filterProg: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	return p
}

func runAll(t *testing.T, p *Program, inputs []int64) []tuple.Tuple {
	t.Helper()
	var m Machine
	var outs []tuple.Tuple
	for i, x := range inputs {
		in := tuple.Tuple{Seq: uint64(i), Ref: []Val{{I: x}}}
		m.Run(p, in, EmitFunc(func(o tuple.Tuple) { outs = append(outs, o) }))
	}
	return outs
}

func refInts(outs []tuple.Tuple) []int64 {
	var vs []int64
	for _, o := range outs {
		vs = append(vs, o.Ref.([]Val)[0].I)
	}
	return vs
}

func TestRoundTrip(t *testing.T) {
	p := funcProg(t, "f", 3, 1)
	enc := p.Encode()
	q, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := q.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind decoded: %v", err)
	}
	in := []int64{0, 1, 2, 41}
	got, want := refInts(runAll(t, q, in)), refInts(runAll(t, p, in))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded program disagrees: got %v want %v", got, want)
	}
	if p.HashString() != q.HashString() {
		t.Fatalf("hash changed across round trip: %s vs %s", p.HashString(), q.HashString())
	}
	if !reflect.DeepEqual(enc, q.Encode()) {
		t.Fatalf("re-encode differs from original encoding")
	}
}

func TestHashEquality(t *testing.T) {
	a := funcProg(t, "f", 3, 1)
	b := funcProg(t, "f", 3, 1)
	if a.HashString() != b.HashString() {
		t.Fatalf("independently built equal programs hash differently")
	}
	c := funcProg(t, "f", 3, 2)
	if a.HashString() == c.HashString() {
		t.Fatalf("different programs share a hash")
	}
	d := funcProg(t, "g", 3, 1)
	if a.HashString() == d.HashString() {
		t.Fatalf("operator name not covered by hash")
	}
}

func TestFilterAndArithmetic(t *testing.T) {
	p := filterProg(t, "even", 2, 0)
	got := refInts(runAll(t, p, []int64{0, 1, 2, 3, 4, 5}))
	if want := []int64{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("filter kept %v, want %v", got, want)
	}
}

func TestForwardPreservesTuple(t *testing.T) {
	p := filterProg(t, "all", 1, 0)
	in := tuple.Tuple{Seq: 7, Stamp: 99, Ref: []Val{{I: 4}}}
	in.Words[3] = 42
	var m Machine
	var out tuple.Tuple
	m.Run(p, in, EmitFunc(func(o tuple.Tuple) { out = o }))
	if out.Seq != 7 || out.Stamp != 99 || out.Words[3] != 42 {
		t.Fatalf("forwarding did not preserve the tuple: %+v", out)
	}
}

func TestDivisionByZeroPanics(t *testing.T) {
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstI(0)
	b.Op(OpDivI)
	b.Ins(OpStore, 0, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 0, NOut: 1, Name: "div", Out: intIn}, intIn, 1)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	defer func() {
		r := recover()
		if _, ok := r.(*Error); !ok {
			t.Fatalf("want *Error panic, got %v", r)
		}
	}()
	var m Machine
	m.Run(p, tuple.Tuple{Ref: []Val{{I: 5}}}, EmitFunc(func(tuple.Tuple) {}))
}

func TestBuiltinCall(t *testing.T) {
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstI(10)
	b.Call("test.add2:ii", 2)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	p, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "c", Out: intIn}, intIn, 2)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := p.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	got := refInts(runAll(t, p, []int64{1, 2}))
	if want := []int64{11, 12}; !reflect.DeepEqual(got, want) {
		t.Fatalf("builtin call: got %v want %v", got, want)
	}
}

func TestBindUnknownBuiltin(t *testing.T) {
	p := &Program{
		Builtins: []string{"no.such.builtin"},
		Segs:     []Seg{{}},
	}
	if err := p.Bind(sliceCodec{}); err == nil {
		t.Fatalf("bind of unknown builtin succeeded")
	}
}

func TestFuse(t *testing.T) {
	progs := []*Program{
		funcProg(t, "a", 2, 1), // x -> 2x+1
		filterProg(t, "b", 3, 0),
		funcProg(t, "c", 10, 0),
	}
	fused, err := Fuse(progs)
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	if len(fused.Segs) != 3 {
		t.Fatalf("fused segs = %d, want 3", len(fused.Segs))
	}
	inputs := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	// Reference: run the three programs by hand, feeding outputs on.
	var want []int64
	var m Machine
	for i, x := range inputs {
		t0 := tuple.Tuple{Seq: uint64(i), Ref: []Val{{I: x}}}
		m.Run(progs[0], t0, EmitFunc(func(t1 tuple.Tuple) {
			m2 := &Machine{}
			m2.Run(progs[1], t1, EmitFunc(func(t2 tuple.Tuple) {
				m3 := &Machine{}
				m3.Run(progs[2], t2, EmitFunc(func(t3 tuple.Tuple) {
					want = append(want, t3.Ref.([]Val)[0].I)
				}))
			}))
		}))
	}
	got := refInts(runAll(t, fused, inputs))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fused disagrees with sequential: got %v want %v", got, want)
	}

	// Per-segment entry counts reflect the filter's drops.
	var fm Machine
	fm.Reset(fused)
	for i, x := range inputs {
		fm.Run(fused, tuple.Tuple{Seq: uint64(i), Ref: []Val{{I: x}}}, EmitFunc(func(tuple.Tuple) {}))
	}
	counts := fm.SegCounts()
	if counts[0] != 10 || counts[1] != 10 || counts[2] != uint64(len(want)) {
		t.Fatalf("seg counts = %v (kept %d)", counts, len(want))
	}

	// The fused program round-trips and hashes deterministically too.
	enc := fused.Encode()
	back, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode fused: %v", err)
	}
	if back.HashString() != fused.HashString() {
		t.Fatalf("fused hash unstable across round trip")
	}
	fused2, err := Fuse(progs)
	if err != nil {
		t.Fatalf("refuse: %v", err)
	}
	if fused2.HashString() != fused.HashString() {
		t.Fatalf("fusing twice gives different hashes")
	}
}

func TestFuseLayoutMismatch(t *testing.T) {
	a := funcProg(t, "a", 2, 1)
	b := NewBuilder()
	b.Op(OpEmit)
	other := Layout{Fields: []Field{{Name: "y", Kind: KFloat}}}
	q, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 0, NOut: 1, Name: "q", Out: other}, other, 1)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := q.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if _, err := Fuse([]*Program{a, q}); err == nil {
		t.Fatalf("fuse of mismatched layouts succeeded")
	}
}

func TestMultiEmitSegment(t *testing.T) {
	// A custom segment that emits x+1 and then x+2: both must pass
	// through a downstream forwarding filter without clobbering the
	// emitter's live state.
	b := NewBuilder()
	b.Ins(OpLoad, 0, 0)
	b.ConstI(1)
	b.Op(OpAddI)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	b.Ins(OpLoad, 0, 0)
	b.ConstI(2)
	b.Op(OpAddI)
	b.Ins(OpStore, 1, 0)
	b.Op(OpEmit)
	twice, err := b.Finish(Seg{InBase: 0, NIn: 1, OutBase: 1, NOut: 1, Fresh: true, Name: "twice", Out: intIn}, intIn, 2)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := twice.Bind(sliceCodec{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	fused, err := Fuse([]*Program{twice, filterProg(t, "all", 1, 0)})
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	got := refInts(runAll(t, fused, []int64{10, 20}))
	if want := []int64{11, 12, 21, 22}; !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-emit through fusion: got %v want %v", got, want)
	}
}

func TestDisasmMentionsEverything(t *testing.T) {
	p := funcProg(t, "f", 3, 1)
	s := Disasm(p)
	for _, want := range []string{p.HashString(), "mul.i", "store", "emit", "int x", `"f"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("disasm missing %q in:\n%s", want, s)
		}
	}
}
