// Package vm implements a small typed, stack-based bytecode VM over
// tuple values — the portable form of operator logic. SPL logic blocks
// and parameter expressions compile to Programs (internal/spl), native
// library operators can carry hand-assembled Programs (internal/ops),
// and the scheduler fuses linear runs of programmed operators into one
// superinstruction Program executed in a single dispatch loop per
// input tuple (internal/sched), extending inline chain execution past
// the per-operator Process call boundary.
//
// Programs are deterministic, encoding/binary-serializable and
// content-hashed (encode.go), so equal logic hashes equally across
// processes — the placement key distributed re-placement needs: a
// closure cannot move to another host, a bytecode program can.
//
// The value model is deliberately small: a Val is an unboxed
// (int64, float64, string) triple and every opcode is typed (OpAddI
// vs OpAddF vs OpCatS), so the common int/float paths never box into
// interfaces and never dispatch on a runtime tag. Booleans live in the
// int lane as 0/1. Operators whose logic needs richer values (lists,
// nested tuples) simply do not compile and keep their closure path —
// the VM is an opt-in fast path, never a semantic fork.
package vm

import (
	"fmt"
	"sort"
	"sync"

	"streams/internal/tuple"
)

// Kind is the static type of a slot, stack cell or tuple attribute.
type Kind uint8

const (
	// KInt is a 64-bit signed integer (SPL int32/int64 both widen here).
	KInt Kind = iota
	// KFloat is a 64-bit float.
	KFloat
	// KStr is an immutable string (SPL rstring and timestamp).
	KStr
	// KBool is a boolean carried in the int lane as 0/1.
	KBool
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KStr:
		return "str"
	case KBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Val is one unboxed VM value. Exactly one lane is meaningful; the
// static Kind of the producing opcode or slot says which. Keeping all
// three lanes in one struct trades 24 bytes of width for tag-free
// dispatch: the interpreter never asks a value what it is.
type Val struct {
	// I is the int lane (ints and booleans).
	I int64
	// F is the float lane.
	F float64
	// S is the string lane.
	S string
}

// Field is one named, typed tuple attribute in a Layout.
type Field struct {
	// Name is the attribute name.
	Name string
	// Kind is the attribute's VM type.
	Kind Kind
}

// Layout maps a tuple type onto a contiguous slot window: attribute i
// of the layout lives at slot window[i]. Attribute-index resolution
// happens once at compile time; at run time the boundary codec walks
// the layout in order and the program body addresses slots by index —
// no per-tuple map lookups.
type Layout struct {
	// Fields are the attributes in slot order.
	Fields []Field
}

// Equal reports whether two layouts agree in names and kinds.
func (l Layout) Equal(o Layout) bool {
	if len(l.Fields) != len(o.Fields) {
		return false
	}
	for i, f := range l.Fields {
		if o.Fields[i] != f {
			return false
		}
	}
	return true
}

// Op is a bytecode opcode. The numbering is part of the serialized
// format: append new opcodes before numOps, never renumber.
type Op uint16

const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpConstI pushes Ints[A].
	OpConstI
	// OpConstF pushes Floats[A].
	OpConstF
	// OpConstS pushes Strs[A].
	OpConstS
	// OpLoad pushes slot A.
	OpLoad
	// OpStore pops into slot A.
	OpStore
	// OpLoadSeq pushes the current template tuple's Seq as an int.
	OpLoadSeq
	// OpPop discards the top of stack.
	OpPop

	// OpAddI..OpNegI are int arithmetic. OpDivI and OpModI panic with
	// *Error on a zero divisor, matching the closure evaluator.
	OpAddI
	OpSubI
	OpMulI
	OpDivI
	OpModI
	OpNegI

	// OpAddF..OpNegF are float arithmetic; division by zero yields
	// ±Inf/NaN per Go semantics, again matching the closure evaluator.
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF

	// OpCatS concatenates two strings.
	OpCatS

	// Comparisons pop two operands and push a bool (0/1 in the int
	// lane), one typed family per lane.
	OpEqI
	OpNeI
	OpLtI
	OpLeI
	OpGtI
	OpGeI
	OpEqF
	OpNeF
	OpLtF
	OpLeF
	OpGtF
	OpGeF
	OpEqS
	OpNeS
	OpLtS
	OpLeS
	OpGtS
	OpGeS

	// OpNotB negates a bool.
	OpNotB

	// OpJump sets pc to A (a segment-absolute code index; A may equal
	// the segment end, meaning return).
	OpJump
	// OpJumpIfFalse pops a bool and jumps to A when it is 0.
	OpJumpIfFalse
	// OpJumpIfTrue pops a bool and jumps to A when it is 1.
	OpJumpIfTrue

	// OpCall pops B arguments (last argument on top) and calls bound
	// builtin Builtins[A], pushing its result.
	OpCall
	// OpEmit emits the tuple currently materialized in the segment's
	// out window: the last segment's emit produces an output tuple,
	// an inner segment's emit feeds the next segment inline.
	OpEmit
	// OpDrop ends the current segment immediately without emitting —
	// the filter-drop path.
	OpDrop

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpConstI: "const.i", OpConstF: "const.f", OpConstS: "const.s",
	OpLoad: "load", OpStore: "store", OpLoadSeq: "load.seq", OpPop: "pop",
	OpAddI: "add.i", OpSubI: "sub.i", OpMulI: "mul.i", OpDivI: "div.i", OpModI: "mod.i", OpNegI: "neg.i",
	OpAddF: "add.f", OpSubF: "sub.f", OpMulF: "mul.f", OpDivF: "div.f", OpNegF: "neg.f",
	OpCatS: "cat.s",
	OpEqI:  "eq.i", OpNeI: "ne.i", OpLtI: "lt.i", OpLeI: "le.i", OpGtI: "gt.i", OpGeI: "ge.i",
	OpEqF: "eq.f", OpNeF: "ne.f", OpLtF: "lt.f", OpLeF: "le.f", OpGtF: "gt.f", OpGeF: "ge.f",
	OpEqS: "eq.s", OpNeS: "ne.s", OpLtS: "lt.s", OpLeS: "le.s", OpGtS: "gt.s", OpGeS: "ge.s",
	OpNotB: "not.b",
	OpJump: "jump", OpJumpIfFalse: "jump.false", OpJumpIfTrue: "jump.true",
	OpCall: "call", OpEmit: "emit", OpDrop: "drop",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint16(o))
}

// Instr is one fixed-width instruction. Fixed width keeps decode
// trivial and fusion relocation a pure index shift.
type Instr struct {
	// Op is the opcode.
	Op Op
	// A is the first operand (constant index, slot, target, builtin).
	A int32
	// B is the second operand (argument count for OpCall).
	B int32
}

// Seg is one operator's code and slot region inside a Program. A
// single-operator program has exactly one segment; Fuse concatenates
// segments with disjoint slot regions so an inner emit can hand its
// out window to the next segment's in window without clobbering live
// locals (a filter's out window aliases its in window, and a custom
// segment may emit more than once and keep running).
type Seg struct {
	// Start and End delimit the segment's code, [Start, End).
	Start int32
	// End is one past the segment's last instruction; a pc of End (or
	// OpDrop) returns from the segment.
	End int32
	// InBase is the first slot of the input attribute window.
	InBase int32
	// NIn is the input window length.
	NIn int32
	// OutBase is the first slot of the output attribute window; for
	// forwarding operators (filter, work) it aliases InBase.
	OutBase int32
	// NOut is the output window length.
	NOut int32
	// Fresh marks segments whose emit builds a fresh payload from the
	// out window (custom operators); forwarding segments pass the
	// template tuple through unchanged.
	Fresh bool
	// Name is the owning operator's name, for fault attribution and
	// disassembly.
	Name string
	// Out is the output window's layout (used by Fresh emits and by
	// fusion compatibility checks).
	Out Layout
}

// Program is one compiled, serializable unit of operator logic. The
// exported fields are the portable form covered by Encode and the
// content hash; codec and funcs are process-local bindings
// re-established with Bind after decode.
type Program struct {
	// In is the first segment's input layout.
	In Layout
	// NumSlots is the total slot count across all segments' windows
	// and locals.
	NumSlots int32
	// MaxStack bounds the operand stack (summed across segments when
	// fused, since inner emits run nested segments on one stack).
	MaxStack int32
	// Code is the instruction stream, all segments concatenated.
	Code []Instr
	// Ints, Floats and Strs are the constant pools.
	Ints   []int64
	Floats []float64
	Strs   []string
	// Builtins are the names OpCall resolves through the registry at
	// Bind time (signature-mangled, e.g. "substring:sii").
	Builtins []string
	// Segs are the operator segments in execution order (≥ 1).
	Segs []Seg

	codec RefCodec
	funcs []BuiltinFunc
	// needStore, computed by Verify, is per-segment: false when the
	// segment is Fresh but its emit payload can never be observed (some
	// later segment is also Fresh, so the template is replaced before
	// any final forwarding emit could expose it) — the interpreter
	// skips the codec Store entirely for those emits.
	needStore []bool
	// vecMin is the smallest batch size worth vectorizing for this
	// program (0 = DefaultVecMinBatch). Process-local tuning set by the
	// compiler's vectorizability pass, not part of the serialized form.
	vecMin int32
}

// DefaultVecMinBatch is the batch-size cutoff below which the
// scheduler runs a vectorizable program through the scalar
// interpreter: lane setup and selection-vector bookkeeping are
// amortized over the batch, and under a handful of rows the scalar
// loop wins.
const DefaultVecMinBatch = 8

// SetVecMinBatch tunes the program's vectorization cutoff (satellite
// of the compiler's vectorizability pass). Zero restores the default.
func (p *Program) SetVecMinBatch(n int) { p.vecMin = int32(n) }

// VecMinBatch returns the smallest batch size the scheduler should
// vectorize for this program.
func (p *Program) VecMinBatch() int {
	if p.vecMin <= 0 {
		return DefaultVecMinBatch
	}
	return int(p.vecMin)
}

// RefCodec bridges tuple payloads (tuple.Tuple.Ref) and slot windows.
// The VM cannot name concrete payload types (internal/spl's Tup is a
// named map type the spl package owns), so the owning package supplies
// the conversion and the program carries it after Bind. Load may panic
// on a malformed payload exactly as the closure path's type assertion
// would.
type RefCodec interface {
	// Load decodes t's payload into slots, one attribute per layout
	// field, in order.
	Load(t *tuple.Tuple, in Layout, slots []Val)
	// Store builds a fresh payload from slots per the layout.
	Store(slots []Val, out Layout) any
}

// BatchStore builds payloads without a per-tuple allocation: the
// owning codec amortizes allocation over many Append calls (internal/
// spl backs one with a columnar frame arena shared by a whole batch).
// A BatchStore is single-threaded, like the Machine that owns it.
type BatchStore interface {
	// Append builds a payload from slots per the layout, exactly like
	// RefCodec.Store, but may return interior pointers into storage
	// shared with earlier Append results. Returned payloads must stay
	// immutable and valid indefinitely (they ride on emitted tuples).
	Append(vals []Val, out Layout) any
}

// BatchStorer is an optional RefCodec extension. Codecs that implement
// it give each Machine/BatchMachine a private BatchStore, making the
// emit side allocation-free in steady state; codecs that do not fall
// back to per-emit Store.
type BatchStorer interface {
	NewBatchStore() BatchStore
}

type identityCodec struct{}

func (identityCodec) Load(*tuple.Tuple, Layout, []Val) {}
func (identityCodec) Store([]Val, Layout) any          { return nil }
func (identityCodec) NewBatchStore() BatchStore        { return identityStore{} }

type identityStore struct{}

func (identityStore) Append([]Val, Layout) any { return nil }

// Identity is the codec for programs with empty layouts whose tuples
// carry their payload inline (native library operators): nothing to
// decode, forwarding keeps the tuple bit-identical.
var Identity RefCodec = identityCodec{}

// BuiltinFunc is a bound builtin. It may panic (with *Error or the
// closure evaluator's own runtime-error type) exactly as the closure
// path would; the span recovery above the operator contains either.
type BuiltinFunc func(args []Val) Val

// Effect classifies a builtin for the vectorizer. The scheme exists
// because vectorized execution reorders work (instruction-major instead
// of tuple-major) and recovers from mid-batch panics by re-running the
// whole batch through the scalar interpreter — both are only sound for
// builtins whose calls can be reordered and repeated.
type Effect uint8

const (
	// EffectImpure is the default for builtins that never declared an
	// effect: assumed to have observable side effects, so any program
	// calling one is rejected by PlanVec and stays on the scalar path.
	EffectImpure Effect = iota
	// EffectPure builtins depend only on their arguments and have no
	// side effects (substring, length, toInt...).
	EffectPure
	// EffectReplay builtins have side effects that are harmless to
	// repeat or reorder (spin's CPU burn): vectorizable, and safe to
	// re-execute when a batch replays scalar after a panic.
	EffectReplay
)

// builtinInfo is the vectorizer-facing half of a builtin registration:
// its effect class and its result kind (the signature-mangled name
// encodes argument kinds but not the return, and the planner needs the
// return kind to type the destination lane).
type builtinInfo struct {
	effect Effect
	ret    Kind
}

var (
	regMu       sync.RWMutex
	builtinReg  = map[string]BuiltinFunc{}
	builtinMeta = map[string]builtinInfo{}
)

// RegisterBuiltin installs a builtin under a signature-mangled name.
// Registration happens in package init functions (spl, ops); duplicate
// names panic to surface collisions immediately.
func RegisterBuiltin(name string, fn BuiltinFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := builtinReg[name]; dup {
		panic("vm: duplicate builtin " + name)
	}
	builtinReg[name] = fn
}

// RegisterBuiltinInfo declares a builtin's effect class and result
// kind for the vectorizer. Builtins without an info record default to
// EffectImpure and are never vectorized; the scalar interpreter needs
// neither field, so old registrations keep working unchanged.
func RegisterBuiltinInfo(name string, e Effect, ret Kind) {
	regMu.Lock()
	defer regMu.Unlock()
	builtinMeta[name] = builtinInfo{effect: e, ret: ret}
}

// lookupBuiltinInfo returns the info record for name, defaulting to
// EffectImpure when the builtin never declared one.
func lookupBuiltinInfo(name string) (builtinInfo, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	bi, ok := builtinMeta[name]
	return bi, ok
}

// Builtins returns the registered builtin names, sorted (diagnostics).
func Builtins() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(builtinReg))
	for n := range builtinReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bind attaches the process-local halves a decoded or freshly built
// program needs to run: the payload codec and the builtin functions
// its name table references. Bind fails if any builtin is unknown —
// a program shipped from a newer build degrades to the closure path
// instead of crashing mid-tuple.
func (p *Program) Bind(codec RefCodec) error {
	funcs := make([]BuiltinFunc, len(p.Builtins))
	regMu.RLock()
	defer regMu.RUnlock()
	for i, name := range p.Builtins {
		fn, ok := builtinReg[name]
		if !ok {
			return fmt.Errorf("vm: unknown builtin %q", name)
		}
		funcs[i] = fn
	}
	p.codec = codec
	p.funcs = funcs
	return nil
}

// Codec returns the codec bound to the program (nil before Bind).
func (p *Program) Codec() RefCodec { return p.codec }

// Programmed is implemented by operators that carry a compiled VM
// program alongside their closure path. The scheduler and the splc
// disassembler discover programs through this interface; a nil return
// means "closure only" for this instance.
type Programmed interface {
	VMProgram() *Program
}

// Error is a VM runtime error. It panics out of Machine.Run exactly
// as the closure evaluator's RuntimeError panics out of Process, so
// the scheduler's span recovery contains both identically.
type Error struct {
	// Seg is the segment index that was executing.
	Seg int
	// PC is the faulting instruction's code index.
	PC int32
	// Msg describes the fault.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("vm: seg %d pc %d: %s", e.Seg, e.PC, e.Msg)
}
