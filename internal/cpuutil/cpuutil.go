// Package cpuutil implements the elasticity controller's CPU-usage gate:
// before increasing the thread level, the PE checks that total system CPU
// usage is acceptable so multiple greedy PEs do not oversubscribe a host
// (§4.2.3). IBM Streams reads /proc/stat and refuses to grow past 80%
// of system capacity; we do the same, behind an interface so the machine
// simulator and the tests can substitute their own readings.
package cpuutil

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// UsageFunc reports total system CPU usage in [0, 1]. Implementations
// must be safe for concurrent use.
type UsageFunc func() (float64, error)

// DefaultThreshold is the usage fraction above which the thread level
// must not grow, matching the product's 80% rule.
const DefaultThreshold = 0.80

// Gate answers isCPUUsageAcceptable() questions against a UsageFunc.
type Gate struct {
	usage     UsageFunc
	threshold float64
}

// NewGate builds a gate from a usage source and threshold. A nil usage
// source selects the /proc/stat reader; a non-positive threshold selects
// DefaultThreshold.
func NewGate(usage UsageFunc, threshold float64) *Gate {
	if usage == nil {
		usage = ProcStatUsage()
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Gate{usage: usage, threshold: threshold}
}

// Acceptable reports whether CPU usage permits adding threads. Errors
// reading usage fail open (allow growth): a PE that cannot observe the
// system behaves like pre-elastic Streams rather than refusing to scale.
func (g *Gate) Acceptable() bool {
	u, err := g.usage()
	if err != nil {
		return true
	}
	return u < g.threshold
}

// ProcStatUsage returns a UsageFunc that computes total CPU usage from
// consecutive /proc/stat aggregate lines. The first call has no baseline
// and reports 0. The reader keeps its file handle and read buffer
// between samples, so the per-sample adaptation tick allocates nothing.
func ProcStatUsage() UsageFunc {
	r := &procStatReader{path: "/proc/stat"}
	return r.usage
}

// procStatReader samples a /proc/stat-format file without per-sample
// allocation: the file stays open (procfs reads re-snapshot on seek)
// and the read buffer is reused, growing once if the first sample
// overflows it.
type procStatReader struct {
	mu                  sync.Mutex
	path                string
	f                   *os.File
	buf                 []byte
	prevBusy, prevTotal uint64
}

func (r *procStatReader) usage() (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	busy, total, err := r.sample()
	if err != nil {
		return 0, err
	}
	db, dt := busy-r.prevBusy, total-r.prevTotal
	first := r.prevTotal == 0
	r.prevBusy, r.prevTotal = busy, total
	if first || dt == 0 {
		return 0, nil
	}
	return float64(db) / float64(dt), nil
}

func (r *procStatReader) sample() (busy, total uint64, err error) {
	if r.f == nil {
		if r.f, err = os.Open(r.path); err != nil {
			return 0, 0, err
		}
	}
	if _, err = r.f.Seek(0, io.SeekStart); err != nil {
		// A handle that no longer seeks (e.g. the file was replaced
		// under us in a test) is reopened on the next sample.
		r.f.Close()
		r.f = nil
		return 0, 0, err
	}
	if r.buf == nil {
		r.buf = make([]byte, 8192)
	}
	n := 0
	for {
		m, rerr := r.f.Read(r.buf[n:])
		n += m
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return 0, 0, rerr
		}
		if n == len(r.buf) {
			r.buf = append(r.buf, make([]byte, len(r.buf))...)
		}
	}
	return parseStat(r.buf[:n])
}

// ParseStatLine extracts busy and total jiffies from the first "cpu "
// line of /proc/stat content. Busy excludes idle and iowait.
func ParseStatLine(content string) (busy, total uint64, err error) {
	return parseStat([]byte(content))
}

// parseStat is the allocation-free core of ParseStatLine, scanning the
// buffer in place instead of splitting it into per-field strings.
func parseStat(b []byte) (busy, total uint64, err error) {
	for len(b) > 0 {
		line := b
		if i := bytes.IndexByte(b, '\n'); i >= 0 {
			line, b = b[:i], b[i+1:]
		} else {
			b = nil
		}
		if len(line) < 4 || line[0] != 'c' || line[1] != 'p' || line[2] != 'u' || line[3] != ' ' {
			continue
		}
		rest := line[4:]
		nfields := 0
		for {
			for len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t' || rest[0] == '\r') {
				rest = rest[1:]
			}
			if len(rest) == 0 {
				break
			}
			var v uint64
			j := 0
			for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
				d := uint64(rest[j] - '0')
				if v > (math.MaxUint64-d)/10 {
					return 0, 0, fmt.Errorf("cpuutil: jiffy count overflows in %q", line)
				}
				v = v*10 + d
				j++
			}
			if j == 0 || (j < len(rest) && rest[j] != ' ' && rest[j] != '\t' && rest[j] != '\r') {
				return 0, 0, fmt.Errorf("cpuutil: bad field in %q", line)
			}
			rest = rest[j:]
			total += v
			// Fields: user nice system idle iowait irq softirq steal ...
			if nfields != 3 && nfields != 4 {
				busy += v
			}
			nfields++
		}
		if nfields < 4 {
			return 0, 0, fmt.Errorf("cpuutil: malformed cpu line %q", line)
		}
		return busy, total, nil
	}
	return 0, 0, fmt.Errorf("cpuutil: no aggregate cpu line found")
}

// Fixed returns a UsageFunc that always reports u; tests and the machine
// simulator use it.
func Fixed(u float64) UsageFunc {
	return func() (float64, error) { return u, nil }
}
