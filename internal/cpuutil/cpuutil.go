// Package cpuutil implements the elasticity controller's CPU-usage gate:
// before increasing the thread level, the PE checks that total system CPU
// usage is acceptable so multiple greedy PEs do not oversubscribe a host
// (§4.2.3). IBM Streams reads /proc/stat and refuses to grow past 80%
// of system capacity; we do the same, behind an interface so the machine
// simulator and the tests can substitute their own readings.
package cpuutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// UsageFunc reports total system CPU usage in [0, 1]. Implementations
// must be safe for concurrent use.
type UsageFunc func() (float64, error)

// DefaultThreshold is the usage fraction above which the thread level
// must not grow, matching the product's 80% rule.
const DefaultThreshold = 0.80

// Gate answers isCPUUsageAcceptable() questions against a UsageFunc.
type Gate struct {
	usage     UsageFunc
	threshold float64
}

// NewGate builds a gate from a usage source and threshold. A nil usage
// source selects the /proc/stat reader; a non-positive threshold selects
// DefaultThreshold.
func NewGate(usage UsageFunc, threshold float64) *Gate {
	if usage == nil {
		usage = ProcStatUsage()
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Gate{usage: usage, threshold: threshold}
}

// Acceptable reports whether CPU usage permits adding threads. Errors
// reading usage fail open (allow growth): a PE that cannot observe the
// system behaves like pre-elastic Streams rather than refusing to scale.
func (g *Gate) Acceptable() bool {
	u, err := g.usage()
	if err != nil {
		return true
	}
	return u < g.threshold
}

// ProcStatUsage returns a UsageFunc that computes total CPU usage from
// consecutive /proc/stat aggregate lines. The first call has no baseline
// and reports 0.
func ProcStatUsage() UsageFunc {
	var mu sync.Mutex
	var prevBusy, prevTotal uint64
	return func() (float64, error) {
		busy, total, err := readProcStat("/proc/stat")
		if err != nil {
			return 0, err
		}
		mu.Lock()
		defer mu.Unlock()
		db, dt := busy-prevBusy, total-prevTotal
		first := prevTotal == 0
		prevBusy, prevTotal = busy, total
		if first || dt == 0 {
			return 0, nil
		}
		return float64(db) / float64(dt), nil
	}
}

// readProcStat parses the aggregate "cpu " line of a /proc/stat-format
// file into busy and total jiffy counts.
func readProcStat(path string) (busy, total uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	return ParseStatLine(string(data))
}

// ParseStatLine extracts busy and total jiffies from the first "cpu "
// line of /proc/stat content. Busy excludes idle and iowait.
func ParseStatLine(content string) (busy, total uint64, err error) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)[1:]
		if len(fields) < 4 {
			return 0, 0, fmt.Errorf("cpuutil: malformed cpu line %q", line)
		}
		vals := make([]uint64, len(fields))
		for i, f := range fields {
			v, perr := strconv.ParseUint(f, 10, 64)
			if perr != nil {
				return 0, 0, fmt.Errorf("cpuutil: bad field %q in %q", f, line)
			}
			vals[i] = v
		}
		for i, v := range vals {
			total += v
			// Fields: user nice system idle iowait irq softirq steal ...
			if i != 3 && i != 4 {
				busy += v
			}
		}
		return busy, total, nil
	}
	return 0, 0, fmt.Errorf("cpuutil: no aggregate cpu line found")
}

// Fixed returns a UsageFunc that always reports u; tests and the machine
// simulator use it.
func Fixed(u float64) UsageFunc {
	return func() (float64, error) { return u, nil }
}
