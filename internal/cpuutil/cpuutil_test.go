package cpuutil

import (
	"errors"
	"testing"
)

func TestParseStatLine(t *testing.T) {
	content := "cpu  100 0 50 800 50 0 0 0 0 0\ncpu0 1 2 3 4\n"
	busy, total, err := ParseStatLine(content)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1000 {
		t.Fatalf("total = %d, want 1000", total)
	}
	if busy != 150 { // everything except idle(800) and iowait(50)
		t.Fatalf("busy = %d, want 150", busy)
	}
}

func TestParseStatLineErrors(t *testing.T) {
	cases := []string{
		"",
		"cpu0 1 2 3 4\n",       // no aggregate line
		"cpu  1 2\n",           // too few fields
		"cpu  1 2 three 4 5\n", // non-numeric
		// Truncated and garbage shapes a partial or corrupt read can
		// produce:
		"cpu  1 2 3",                          // truncated before the 4th field
		"cpu ",                                // truncated right after the prefix
		"cpu  1 2 3 4x 5\n",                   // garbage fused to a number
		"cpu  18446744073709551616 1 2 3 4\n", // overflows uint64
		"cpu  1 2 3 4 \x00\n",                 // binary garbage field
	}
	for _, c := range cases {
		if _, _, err := ParseStatLine(c); err == nil {
			t.Errorf("ParseStatLine(%q) succeeded, want error", c)
		}
	}
}

func TestParseStatLineTruncatedTail(t *testing.T) {
	// A read cut mid-file must still parse if the aggregate line itself
	// survived intact (no trailing newline).
	busy, total, err := ParseStatLine("cpu  100 0 50 800 50")
	if err != nil {
		t.Fatal(err)
	}
	if busy != 150 || total != 1000 {
		t.Fatalf("busy/total = %d/%d, want 150/1000", busy, total)
	}
}

func TestGateThreshold(t *testing.T) {
	g := NewGate(Fixed(0.5), 0.8)
	if !g.Acceptable() {
		t.Fatal("usage 0.5 below threshold 0.8 should be acceptable")
	}
	g = NewGate(Fixed(0.9), 0.8)
	if g.Acceptable() {
		t.Fatal("usage 0.9 above threshold 0.8 should not be acceptable")
	}
	g = NewGate(Fixed(0.8), 0.8)
	if g.Acceptable() {
		t.Fatal("usage exactly at threshold should not be acceptable")
	}
}

func TestGateFailsOpen(t *testing.T) {
	g := NewGate(func() (float64, error) { return 0, errors.New("boom") }, 0.8)
	if !g.Acceptable() {
		t.Fatal("errors should fail open")
	}
}

func TestGateDefaults(t *testing.T) {
	// Nil usage selects /proc/stat; on Linux hosts this must not error
	// through Acceptable (and fails open elsewhere).
	g := NewGate(nil, 0)
	_ = g.Acceptable()
	if g.threshold != DefaultThreshold {
		t.Fatalf("threshold = %g, want %g", g.threshold, DefaultThreshold)
	}
}

func TestProcStatUsageNoAllocs(t *testing.T) {
	u := ProcStatUsage()
	if _, err := u(); err != nil {
		t.Skipf("no /proc/stat on this platform: %v", err)
	}
	// After the first sample opens the file and sizes the buffer, the
	// steady-state tick must not allocate.
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := u(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ProcStatUsage allocates %.1f objects per sample, want 0", allocs)
	}
}

func TestProcStatUsageDelta(t *testing.T) {
	// First reading establishes the baseline and reports zero.
	u := ProcStatUsage()
	v, err := u()
	if err != nil {
		t.Skipf("no /proc/stat on this platform: %v", err)
	}
	if v != 0 {
		t.Fatalf("first reading = %g, want 0 (baseline)", v)
	}
	v, err = u()
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 1 {
		t.Fatalf("usage %g out of [0,1]", v)
	}
}
