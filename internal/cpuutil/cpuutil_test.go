package cpuutil

import (
	"errors"
	"testing"
)

func TestParseStatLine(t *testing.T) {
	content := "cpu  100 0 50 800 50 0 0 0 0 0\ncpu0 1 2 3 4\n"
	busy, total, err := ParseStatLine(content)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1000 {
		t.Fatalf("total = %d, want 1000", total)
	}
	if busy != 150 { // everything except idle(800) and iowait(50)
		t.Fatalf("busy = %d, want 150", busy)
	}
}

func TestParseStatLineErrors(t *testing.T) {
	cases := []string{
		"",
		"cpu0 1 2 3 4\n",       // no aggregate line
		"cpu  1 2\n",           // too few fields
		"cpu  1 2 three 4 5\n", // non-numeric
	}
	for _, c := range cases {
		if _, _, err := ParseStatLine(c); err == nil {
			t.Errorf("ParseStatLine(%q) succeeded, want error", c)
		}
	}
}

func TestGateThreshold(t *testing.T) {
	g := NewGate(Fixed(0.5), 0.8)
	if !g.Acceptable() {
		t.Fatal("usage 0.5 below threshold 0.8 should be acceptable")
	}
	g = NewGate(Fixed(0.9), 0.8)
	if g.Acceptable() {
		t.Fatal("usage 0.9 above threshold 0.8 should not be acceptable")
	}
	g = NewGate(Fixed(0.8), 0.8)
	if g.Acceptable() {
		t.Fatal("usage exactly at threshold should not be acceptable")
	}
}

func TestGateFailsOpen(t *testing.T) {
	g := NewGate(func() (float64, error) { return 0, errors.New("boom") }, 0.8)
	if !g.Acceptable() {
		t.Fatal("errors should fail open")
	}
}

func TestGateDefaults(t *testing.T) {
	// Nil usage selects /proc/stat; on Linux hosts this must not error
	// through Acceptable (and fails open elsewhere).
	g := NewGate(nil, 0)
	_ = g.Acceptable()
	if g.threshold != DefaultThreshold {
		t.Fatalf("threshold = %g, want %g", g.threshold, DefaultThreshold)
	}
}

func TestProcStatUsageDelta(t *testing.T) {
	// First reading establishes the baseline and reports zero.
	u := ProcStatUsage()
	v, err := u()
	if err != nil {
		t.Skipf("no /proc/stat on this platform: %v", err)
	}
	if v != 0 {
		t.Fatalf("first reading = %g, want 0 (baseline)", v)
	}
	v, err = u()
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 1 {
		t.Fatalf("usage %g out of [0,1]", v)
	}
}
