package cpuutil

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSysfsCPU lays out one cpuN directory in the sysfs fixture tree.
func writeSysfsCPU(t *testing.T, dir string, cpu, pkg, core int, llcList string) {
	t.Helper()
	base := filepath.Join(dir, fmt.Sprintf("cpu%d", cpu))
	for p, v := range map[string]string{
		"topology/physical_package_id": fmt.Sprintf("%d\n", pkg),
		"topology/core_id":             fmt.Sprintf("%d\n", core),
		"cache/index3/shared_cpu_list": llcList + "\n",
	} {
		full := filepath.Join(base, p)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(v), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDetectTopologyFS builds a 2-package, 2-cores-per-package,
// SMT-2 fixture (cpu layout: siblings (0,4),(1,5) on package 0 sharing
// one LLC; (2,6),(3,7) on package 1 sharing the other) and checks the
// three distance classes come out right.
func TestDetectTopologyFS(t *testing.T) {
	dir := t.TempDir()
	for cpu := 0; cpu < 8; cpu++ {
		pkg := (cpu % 4) / 2
		core := cpu % 4
		llc := "0-1,4-5"
		if pkg == 1 {
			llc = "2-3,6-7"
		}
		writeSysfsCPU(t, dir, cpu, pkg, core, llc)
	}
	topo, err := DetectTopologyFS(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCPU() != 8 {
		t.Fatalf("NumCPU = %d, want 8", topo.NumCPU())
	}
	cases := []struct{ a, b, want int }{
		{0, 4, DistSMT},    // SMT siblings
		{0, 0, DistSMT},    // same slot
		{0, 1, DistLLC},    // same package/LLC, different core
		{0, 5, DistLLC},    // sibling of an LLC peer
		{0, 2, DistRemote}, // across packages
		{1, 7, DistRemote},
		{8, 0, DistSMT}, // thread slots wrap onto CPUs mod NumCPU
	}
	for _, c := range cases {
		if got := topo.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDetectTopologyFSFallsBackWithoutCache(t *testing.T) {
	dir := t.TempDir()
	for cpu := 0; cpu < 4; cpu++ {
		writeSysfsCPU(t, dir, cpu, cpu/2, cpu, "")
		// Remove the cache directory so the package-ID fallback runs.
		if err := os.RemoveAll(filepath.Join(dir, fmt.Sprintf("cpu%d/cache", cpu))); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := DetectTopologyFS(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Distance(0, 1); got != DistLLC {
		t.Errorf("same-package distance without cache info = %d, want %d", got, DistLLC)
	}
	if got := topo.Distance(0, 2); got != DistRemote {
		t.Errorf("cross-package distance = %d, want %d", got, DistRemote)
	}
}

func TestDetectTopologyFSErrors(t *testing.T) {
	if _, err := DetectTopologyFS(t.TempDir(), 2); err == nil {
		t.Error("missing sysfs tree should error (caller falls back to flat)")
	}
	if _, err := DetectTopologyFS(t.TempDir(), 0); err == nil {
		t.Error("zero CPUs should error")
	}
}

func TestFlatTopology(t *testing.T) {
	topo := FlatTopology(4)
	if got := topo.Distance(1, 1); got != DistSMT {
		t.Errorf("self distance = %d, want %d", got, DistSMT)
	}
	for _, b := range []int{0, 2, 3} {
		if got := topo.Distance(1, b); got != DistRemote {
			t.Errorf("flat Distance(1,%d) = %d, want %d", b, got, DistRemote)
		}
	}
}

func TestVictimOrder(t *testing.T) {
	// 4 CPUs: SMT pairs (0,2) and (1,3), all one LLC.
	topo, err := NewTopology([]int{0, 1, 0, 1}, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	order, dist := topo.VictimOrder(0, 4)
	if len(order) != 3 || len(dist) != 3 {
		t.Fatalf("order/dist lengths = %d/%d, want 3/3", len(order), len(dist))
	}
	if order[0] != 2 || dist[0] != DistSMT {
		t.Errorf("nearest victim = %d (dist %d), want 2 (dist %d)", order[0], dist[0], DistSMT)
	}
	for i := 1; i < 3; i++ {
		if dist[i] != DistLLC {
			t.Errorf("victim %d distance = %d, want %d", order[i], dist[i], DistLLC)
		}
	}
	// Distances must be nondecreasing for every slot — the scheduler's
	// sweep relies on equal-distance runs being contiguous.
	for slot := 0; slot < 6; slot++ {
		_, d := topo.VictimOrder(slot, 6)
		for i := 1; i < len(d); i++ {
			if d[i] < d[i-1] {
				t.Fatalf("slot %d: victim distances not sorted: %v", slot, d)
			}
		}
	}
}

func TestParseCPUList(t *testing.T) {
	got, err := parseCPUList("0-2,5,7-8")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 5, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("parseCPUList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseCPUList = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"x", "3-1", "1-", "-2", "1,,2"} {
		if _, err := parseCPUList(bad); err == nil {
			t.Errorf("parseCPUList(%q) succeeded, want error", bad)
		}
	}
}

func TestDetectTopologyNeverNil(t *testing.T) {
	topo := DetectTopology()
	if topo == nil || topo.NumCPU() < 1 {
		t.Fatal("DetectTopology must always return a usable topology")
	}
}
