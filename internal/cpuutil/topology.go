package cpuutil

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// CPU topology for the scheduler's steal-victim ordering: stealing a
// port hint from an SMT sibling moves it within one physical core,
// stealing from an LLC peer moves it within one cache domain, and
// stealing from a remote CPU pays a cross-domain transfer. The
// scheduler orders its steal sweep nearest-first using Distance, so the
// common steal stays cheap and remote traffic is the last resort.

// Steal-distance classes, nearest first.
const (
	// DistSMT: same physical core (SMT siblings, or two threads
	// timesharing one CPU slot).
	DistSMT = 0
	// DistLLC: different core, same last-level cache domain.
	DistLLC = 1
	// DistRemote: different cache domain.
	DistRemote = 2
)

// Topology maps CPUs to physical cores and last-level cache domains.
// The zero value is not useful; build one with DetectTopology,
// FlatTopology, or NewTopology.
type Topology struct {
	core []int // physical-core group per CPU
	llc  []int // last-level-cache group per CPU
}

// NewTopology builds a topology from explicit per-CPU core and LLC
// group IDs (the simulator-injectable constructor). Both slices must
// have the same nonzero length.
func NewTopology(core, llc []int) (*Topology, error) {
	if len(core) == 0 || len(core) != len(llc) {
		return nil, fmt.Errorf("cpuutil: core/llc group lists must be equal-length and nonempty (%d, %d)", len(core), len(llc))
	}
	return &Topology{core: append([]int(nil), core...), llc: append([]int(nil), llc...)}, nil
}

// FlatTopology is the no-information fallback: n CPUs, each its own
// core and cache domain, so every distinct pair is DistRemote and the
// steal order degenerates to the old flat randomized sweep.
func FlatTopology(n int) *Topology {
	if n < 1 {
		n = 1
	}
	t := &Topology{core: make([]int, n), llc: make([]int, n)}
	for i := range t.core {
		t.core[i] = i
		t.llc[i] = i
	}
	return t
}

// NumCPU returns the number of CPUs the topology describes.
func (t *Topology) NumCPU() int { return len(t.core) }

// Distance classifies the cost of moving a cache line between two
// thread slots, which map onto CPUs round-robin (slot mod NumCPU).
func (t *Topology) Distance(a, b int) int {
	ca, cb := a%len(t.core), b%len(t.core)
	if ca < 0 || cb < 0 { // defensive: negative slots never occur
		return DistRemote
	}
	switch {
	case t.core[ca] == t.core[cb]:
		return DistSMT
	case t.llc[ca] == t.llc[cb]:
		return DistLLC
	default:
		return DistRemote
	}
}

// VictimOrder returns every other slot in 0..nThreads-1 sorted
// nearest-first from slot i, with the matching distance class for each
// entry. Ties keep slot order; the scheduler randomizes its start
// offset within each equal-distance run to avoid steal convoys.
func (t *Topology) VictimOrder(i, nThreads int) (order []int32, dist []uint8) {
	order = make([]int32, 0, nThreads-1)
	dist = make([]uint8, 0, nThreads-1)
	for j := 0; j < nThreads; j++ {
		if j != i {
			order = append(order, int32(j))
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return t.Distance(i, int(order[a])) < t.Distance(i, int(order[b]))
	})
	for _, v := range order {
		dist = append(dist, uint8(t.Distance(i, int(v))))
	}
	return order, dist
}

// DetectTopology reads the host's CPU topology from sysfs. Any failure
// falls back to FlatTopology(runtime.NumCPU()): a scheduler that cannot
// see the cache hierarchy behaves like the pre-topology code rather
// than refusing to run.
func DetectTopology() *Topology {
	t, err := DetectTopologyFS("/sys/devices/system/cpu", runtime.NumCPU())
	if err != nil {
		return FlatTopology(runtime.NumCPU())
	}
	return t
}

// DetectTopologyFS reads n CPUs' topology from a sysfs-format tree
// rooted at dir (exposed for tests, which point it at a fixture).
// Core groups come from topology/{physical_package_id,core_id}; LLC
// groups from cache/index3/shared_cpu_list, falling back to the package
// ID when the cache directory is absent.
func DetectTopologyFS(dir string, n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("cpuutil: no CPUs to detect")
	}
	t := &Topology{core: make([]int, n), llc: make([]int, n)}
	coreIDs := map[[2]int]int{}
	llcIDs := map[int]int{}
	for c := 0; c < n; c++ {
		base := fmt.Sprintf("%s/cpu%d", dir, c)
		pkg, err := readSysInt(base + "/topology/physical_package_id")
		if err != nil {
			return nil, err
		}
		core, err := readSysInt(base + "/topology/core_id")
		if err != nil {
			return nil, err
		}
		key := [2]int{pkg, core}
		id, ok := coreIDs[key]
		if !ok {
			id = len(coreIDs)
			coreIDs[key] = id
		}
		t.core[c] = id

		// LLC: the lowest CPU in the shared set names the group, so
		// every member resolves to the same ID without a second pass.
		if cpus, err := readCPUList(base + "/cache/index3/shared_cpu_list"); err == nil && len(cpus) > 0 {
			lo := cpus[0]
			id, ok := llcIDs[lo]
			if !ok {
				id = len(llcIDs)
				llcIDs[lo] = id
			}
			t.llc[c] = id
		} else {
			t.llc[c] = pkg
		}
	}
	return t, nil
}

func readSysInt(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return 0, fmt.Errorf("cpuutil: %s: %w", path, err)
	}
	return v, nil
}

func readCPUList(path string) ([]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseCPUList(strings.TrimSpace(string(data)))
}

// parseCPUList parses the sysfs CPU-list format: comma-separated CPU
// numbers or inclusive ranges, e.g. "0-3,8,10-11". The result is
// sorted ascending.
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		lo, hi, found := part, part, false
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi, found = part[:i], part[i+1:], true
		}
		l, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("cpuutil: bad cpu list %q: %w", s, err)
		}
		h := l
		if found {
			if h, err = strconv.Atoi(hi); err != nil {
				return nil, fmt.Errorf("cpuutil: bad cpu list %q: %w", s, err)
			}
		}
		if h < l || h-l > 1<<20 {
			return nil, fmt.Errorf("cpuutil: bad cpu range %q", part)
		}
		for c := l; c <= h; c++ {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out, nil
}
