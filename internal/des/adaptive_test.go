package des

import "testing"

// runSim is like run but keeps the Sim for post-run invariant checks.
func runSim(t *testing.T, width, depth, cost int, cfg Config) (*Sim, Result) {
	t.Helper()
	g, costOf := buildTopo(t, width, depth, cost)
	cfg.CostOf = costOf
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.Run()
}

// TestShardedWorkConservation: the sharded free-list model must deliver
// the same correctness guarantees as the global list — no ordering
// violations, no starved ports — and every on-list hint must sit on
// exactly one structure when the run ends, at every relaxation width
// and victim topology.
func TestShardedWorkConservation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"tight", Config{Cores: 8, Threads: 4, Duration: 5e7, Sharded: true}},
		{"relax2", Config{Cores: 8, Threads: 4, Duration: 5e7, Relax: 2}},
		{"relax4-llc", Config{Cores: 8, Threads: 4, Duration: 5e7, Relax: 4,
			LLCGroups: []int{0, 0, 1, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, r := runSim(t, 8, 3, 50, tc.cfg)
			if r.SinkTuples == 0 {
				t.Fatal("sharded run delivered nothing")
			}
			if r.OrderViolations != 0 {
				t.Fatalf("%d order violations", r.OrderViolations)
			}
			if r.PortStarved != 0 {
				t.Fatalf("%d ports starved", r.PortStarved)
			}
			if err := s.CheckHintConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRelaxationBound: a width-k release must never land a hint past
// rank k-1, and a tight (k=1) sharded run must never go lateral at all.
func TestRelaxationBound(t *testing.T) {
	_, r := runSim(t, 8, 3, 50, Config{Cores: 8, Threads: 6, Duration: 5e7, Relax: 4})
	if r.Lateral == 0 {
		t.Fatal("width-4 run recorded no lateral releases")
	}
	if r.MaxRelaxRank >= 4 {
		t.Fatalf("hint landed at rank %d, width is 4", r.MaxRelaxRank)
	}
	_, tight := runSim(t, 8, 3, 50, Config{Cores: 8, Threads: 6, Duration: 5e7, Sharded: true})
	if tight.Lateral != 0 || tight.MaxRelaxRank != 0 {
		t.Fatalf("tight run went lateral: %d releases, max rank %d", tight.Lateral, tight.MaxRelaxRank)
	}
}

// TestShardedShrinkConservation parks threads mid-run (the elastic
// shrink) with lateral releases on, then resumes: hints parked threads
// were holding in their shards and inboxes must stay reachable (the
// steal path covers parked victims), progress must continue, and
// conservation must hold at the end.
func TestShardedShrinkConservation(t *testing.T) {
	g, costOf := buildTopo(t, 8, 3, 50)
	s, err := New(g, Config{Cores: 8, Threads: 6, Duration: 2e8, Relax: 6, CostOf: costOf})
	if err != nil {
		t.Fatal(err)
	}
	for tid := range s.threads {
		s.schedule(tid, 0)
	}
	s.runUntil(4e7)
	s.setLevel(2)
	s.runUntil(8e7)
	mid := s.res.SinkTuples
	if mid == 0 {
		t.Fatal("no tuples delivered at the shrunken level")
	}
	s.setLevel(6)
	s.runUntil(1.6e8)
	if s.res.SinkTuples <= mid {
		t.Fatal("no progress after regrow")
	}
	if s.res.OrderViolations != 0 {
		t.Fatalf("%d order violations across shrink/regrow", s.res.OrderViolations)
	}
	if err := s.CheckHintConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestClaimPolicyStarvationFreedom compares the contended-claim
// policies on a wide fan-in (every chain pushes the same sink port)
// with oversubscribed cores: both policies must record waits, and the
// fair ticket line's longest wait must not exceed back-off's — the
// starvation-freedom property the native FairClaim path buys.
func TestClaimPolicyStarvationFreedom(t *testing.T) {
	base := Config{Cores: 2, Threads: 8, Duration: 1e8, QueueCap: 4}
	claim := func(p ClaimPolicy) Result {
		cfg := base
		cfg.ClaimPolicy = p
		_, r := runSim(t, 16, 1, 20, cfg)
		if r.SinkTuples == 0 {
			t.Fatalf("%v delivered nothing", p)
		}
		if r.OrderViolations != 0 {
			t.Fatalf("%v: %d order violations", p, r.OrderViolations)
		}
		if r.PortStarved != 0 {
			t.Fatalf("%v: %d ports starved", p, r.PortStarved)
		}
		return r
	}
	backoff := claim(ClaimBackoff)
	fair := claim(ClaimFair)
	if backoff.ClaimWaits == 0 || fair.ClaimWaits == 0 {
		t.Fatalf("fan-in produced no claim waits: backoff %d, fair %d",
			backoff.ClaimWaits, fair.ClaimWaits)
	}
	if fair.MaxClaimWaitNs > backoff.MaxClaimWaitNs {
		t.Fatalf("fair max wait %.3gns exceeds backoff %.3gns",
			fair.MaxClaimWaitNs, backoff.MaxClaimWaitNs)
	}
}

// TestClaimPolicyOrder sanity-checks the two-phase claim against the
// legacy atomic model on an ordinary pipeline: same guarantees, work
// still flows.
func TestClaimPolicyOrder(t *testing.T) {
	for _, p := range []ClaimPolicy{ClaimAtomic, ClaimBackoff, ClaimFair} {
		_, r := runSim(t, 1, 20, 100, Config{Cores: 4, Threads: 4, Duration: 5e7, QueueCap: 4, ClaimPolicy: p})
		if r.SinkTuples == 0 {
			t.Fatalf("%v delivered nothing", p)
		}
		if r.OrderViolations != 0 {
			t.Fatalf("%v: %d order violations", p, r.OrderViolations)
		}
	}
}

// TestClaimPolicyWithSharding: the adaptive pieces compose — fair
// claims over a relaxed sharded free list keep every invariant.
func TestClaimPolicyWithSharding(t *testing.T) {
	s, r := runSim(t, 8, 2, 50, Config{Cores: 4, Threads: 6, Duration: 5e7,
		QueueCap: 4, Relax: 3, ClaimPolicy: ClaimFair, LLCGroups: []int{0, 0, 0, 1, 1, 1}})
	if r.SinkTuples == 0 {
		t.Fatal("combined run delivered nothing")
	}
	if r.OrderViolations != 0 {
		t.Fatalf("%d order violations", r.OrderViolations)
	}
	if err := s.CheckHintConservation(); err != nil {
		t.Fatal(err)
	}
}
