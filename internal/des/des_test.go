package des

import (
	"testing"

	"streams/internal/graph"
	"streams/internal/ops"
)

// buildTopo materializes one of the evaluation topologies for the DES.
func buildTopo(t *testing.T, width, depth, cost int) (*graph.Graph, func(*graph.Node) int) {
	t.Helper()
	g, _, err := ops.Topology{Width: width, Depth: depth, Cost: cost}.Build()
	if err != nil {
		t.Fatal(err)
	}
	costOf := func(n *graph.Node) int {
		if w, ok := n.Op.(*ops.Worker); ok {
			return w.Cost
		}
		return 0
	}
	return g, costOf
}

func run(t *testing.T, width, depth, cost int, cfg Config) Result {
	t.Helper()
	g, costOf := buildTopo(t, width, depth, cost)
	cfg.CostOf = costOf
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestNewValidation(t *testing.T) {
	g, _ := buildTopo(t, 1, 2, 0)
	if _, err := New(g, Config{Cores: 0, Threads: 1}); err == nil {
		t.Error("Cores 0 accepted")
	}
	if _, err := New(g, Config{Cores: 1, Threads: 0}); err == nil {
		t.Error("Threads 0 accepted")
	}
}

func TestOrderPreservedEverywhere(t *testing.T) {
	configs := []Config{
		{Cores: 1, Threads: 1, Duration: 2e7},
		{Cores: 2, Threads: 2, Duration: 2e7},
		{Cores: 4, Threads: 4, Duration: 2e7, QueueCap: 2},
		{Cores: 2, Threads: 8, Duration: 2e7},
	}
	topos := [][3]int{{1, 20, 10}, {8, 1, 10}, {4, 5, 10}}
	for _, cfg := range configs {
		for _, tp := range topos {
			r := run(t, tp[0], tp[1], tp[2], cfg)
			if r.OrderViolations != 0 {
				t.Fatalf("topo %v cfg %+v: %d order violations", tp, cfg, r.OrderViolations)
			}
			if r.SinkTuples == 0 {
				t.Fatalf("topo %v cfg %+v: no tuples delivered", tp, cfg)
			}
		}
	}
}

// TestWorkConservation checks every executed tuple is accounted: the
// executed count at least path-length times the sink count (in-flight
// tuples make it slightly larger).
func TestWorkConservation(t *testing.T) {
	const depth = 10
	r := run(t, 1, depth, 5, Config{Cores: 2, Threads: 2, Duration: 2e7})
	pathLen := uint64(depth + 1) // workers + sink
	if r.Executed < r.SinkTuples*pathLen {
		t.Fatalf("executed %d < sink %d × path %d", r.Executed, r.SinkTuples, pathLen)
	}
	// In-flight tuples each account for up to pathLen executions; the
	// queue volume bounds how many can be in flight.
	slack := r.Executed - r.SinkTuples*pathLen
	maxInflight := uint64((depth + 1) * 64)
	if slack > maxInflight*pathLen {
		t.Fatalf("unaccounted executions: %d > %d", slack, maxInflight*pathLen)
	}
}

// TestThreadScalingDataParallel verifies the clean scaling regime:
// independent chains scale linearly with threads.
func TestThreadScalingDataParallel(t *testing.T) {
	tput := func(threads int) float64 {
		r := run(t, 8, 4, 200, Config{Cores: 16, Threads: threads, Duration: 5e7})
		return r.SinkThroughput
	}
	t1, t4, t8 := tput(1), tput(4), tput(8)
	if t4 < 3*t1 {
		t.Fatalf("4 threads only %.2fx of 1 thread (%g vs %g)", t4/t1, t4, t1)
	}
	if t8 < 1.7*t4 {
		t.Fatalf("8 threads only %.2fx of 4 threads (%g vs %g)", t8/t4, t8, t4)
	}
}

// TestThreadScalingPipelineSaturated documents the saturated-pipeline
// regime (see package notes): scaling is weak but must not be negative.
func TestThreadScalingPipelineSaturated(t *testing.T) {
	tput := func(threads int) float64 {
		r := run(t, 1, 30, 200, Config{Cores: 16, Threads: threads, Duration: 5e7})
		return r.SinkThroughput
	}
	t1, t12 := tput(1), tput(12)
	if t12 < 1.1*t1 {
		t.Fatalf("12 threads (%g) below 1.1x of 1 thread (%g)", t12, t1)
	}
}

// TestThreadScalingUnsaturatedPipeline: a source slower than capacity
// keeps queues shallow, and thread scaling reappears until the source
// binds.
func TestThreadScalingUnsaturatedPipeline(t *testing.T) {
	tput := func(threads int) float64 {
		g, costOf := buildTopo(t, 1, 30, 200)
		c := DefaultCosts()
		c.SourceNs = 1000 // ~1µs per generated tuple
		s, err := New(g, Config{Cores: 16, Threads: threads, Duration: 5e7, Costs: c, CostOf: costOf})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run().SinkThroughput
	}
	t1, t8 := tput(1), tput(8)
	if t8 < 2.5*t1 {
		t.Fatalf("8 threads only %.2fx of 1 thread (%g vs %g)", t8/t1, t8, t1)
	}
}

// TestCoreCap verifies threads beyond the hardware contexts do not help:
// the machine, not the thread count, is the limit.
func TestCoreCap(t *testing.T) {
	// Cores must cover threads + the source thread for the base case.
	base := run(t, 1, 30, 200, Config{Cores: 3, Threads: 2, Duration: 5e7})
	over := run(t, 1, 30, 200, Config{Cores: 3, Threads: 16, Duration: 5e7})
	if over.SinkThroughput > 1.5*base.SinkThroughput {
		t.Fatalf("16 threads on 2 cores (%.3g) should not beat 2 threads (%.3g) by >1.5x",
			over.SinkThroughput, base.SinkThroughput)
	}
	if over.CtxSwitches == 0 {
		t.Fatal("oversubscribed run recorded no context switches")
	}
	if base.CtxSwitches != 0 {
		t.Fatalf("non-oversubscribed run recorded %d context switches", base.CtxSwitches)
	}
}

// TestRescheduleUnderBackpressure forces full queues and checks the
// self-help path engages without losing order.
func TestRescheduleUnderBackpressure(t *testing.T) {
	r := run(t, 1, 20, 500, Config{Cores: 2, Threads: 2, Duration: 2e7, QueueCap: 2})
	if r.Reschedules == 0 {
		t.Fatal("capacity-2 queues did not trigger reSchedule")
	}
	if r.OrderViolations != 0 {
		t.Fatalf("%d order violations under backpressure", r.OrderViolations)
	}
}

// TestNoStarvation: every port that receives tuples eventually executes
// some — the LRU-ish free-list walk must not starve ports.
func TestNoStarvation(t *testing.T) {
	r := run(t, 16, 2, 20, Config{Cores: 4, Threads: 4, Duration: 5e7})
	if r.PortStarved != 0 {
		t.Fatalf("%d ports starved", r.PortStarved)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Cores: 3, Threads: 5, Duration: 2e7, QueueCap: 8}
	a := run(t, 4, 5, 50, cfg)
	b := run(t, 4, 5, 50, cfg)
	if a != b {
		t.Fatalf("results diverged:\n%+v\n%+v", a, b)
	}
}

// TestBackoffEngagesWhenIdle: with a slow source (high SourceNs), the
// scheduler threads should record find failures (empty walks) instead of
// spinning.
func TestBackoffEngagesWhenIdle(t *testing.T) {
	g, costOf := buildTopo(t, 1, 3, 0)
	c := DefaultCosts()
	c.SourceNs = 100000 // one tuple per 100µs: threads mostly idle
	s, err := New(g, Config{Cores: 4, Threads: 4, Duration: 2e7, Costs: c, CostOf: costOf})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.FindFailures == 0 {
		t.Fatal("idle threads never failed to find work")
	}
	if r.SinkTuples == 0 {
		t.Fatal("slow source delivered nothing")
	}
}

// TestCostSlowsThroughput: higher per-tuple cost must lower throughput.
func TestCostSlowsThroughput(t *testing.T) {
	cheap := run(t, 1, 10, 10, Config{Cores: 2, Threads: 2, Duration: 2e7})
	costly := run(t, 1, 10, 10000, Config{Cores: 2, Threads: 2, Duration: 2e7})
	if costly.SinkThroughput >= cheap.SinkThroughput {
		t.Fatalf("cost 10000 (%.3g) not slower than cost 10 (%.3g)",
			costly.SinkThroughput, cheap.SinkThroughput)
	}
}

// TestModelCrossCheck compares the DES and the analytic model on the
// direction of scaling for a width-parallel graph: both must agree that
// 8 threads beat 2 with ample cores.
func TestModelCrossCheck(t *testing.T) {
	t2 := run(t, 8, 4, 100, Config{Cores: 16, Threads: 2, Duration: 5e7})
	t8 := run(t, 8, 4, 100, Config{Cores: 16, Threads: 8, Duration: 5e7})
	if t8.SinkThroughput <= 1.5*t2.SinkThroughput {
		t.Fatalf("DES disagrees with the model: 8 threads %.3g not ≫ 2 threads %.3g",
			t8.SinkThroughput, t2.SinkThroughput)
	}
}

// TestDrainLimitKnob exercises the bounded-drain experiment: correctness
// must hold and ports must still rotate.
func TestDrainLimitKnob(t *testing.T) {
	r := run(t, 4, 5, 50, Config{Cores: 4, Threads: 4, Duration: 2e7, DrainLimit: 8})
	if r.OrderViolations != 0 {
		t.Fatalf("%d order violations with bounded drains", r.OrderViolations)
	}
	if r.SinkTuples == 0 {
		t.Fatal("bounded drains delivered nothing")
	}
}

// TestElasticOnDES drives the real elasticity controller against the
// event-level simulation of a width-parallel workload: the controller
// must grow from one thread toward the chain count and the settled
// throughput must beat the single-thread start.
func TestElasticOnDES(t *testing.T) {
	g, costOf := buildTopo(t, 8, 4, 200)
	s, err := New(g, Config{Cores: 16, Threads: 12, Duration: 4e8, CostOf: costOf})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := s.RunElastic(5e6 /* 5ms periods */, 60, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 60 {
		t.Fatalf("trace has %d points", len(trace))
	}
	first := trace[0].Throughput
	tail := trace[45:]
	var sum float64
	maxLevel := 0
	for _, p := range tail {
		sum += p.Throughput
		maxLevel = max(maxLevel, p.Threads)
	}
	settled := sum / float64(len(tail))
	if maxLevel < 4 {
		t.Fatalf("controller never grew past %d threads", maxLevel)
	}
	if settled < 2*first {
		t.Fatalf("settled throughput %.3g not ≫ initial %.3g", settled, first)
	}
	// Correctness invariants hold under suspension and resumption.
	if s.res.OrderViolations != 0 {
		t.Fatalf("%d order violations during elastic run", s.res.OrderViolations)
	}
}

// TestDESSetLevelParksThreads checks suspension mechanics directly.
func TestDESSetLevelParksThreads(t *testing.T) {
	g, costOf := buildTopo(t, 4, 2, 50)
	s, err := New(g, Config{Cores: 8, Threads: 6, Duration: 1e8, CostOf: costOf})
	if err != nil {
		t.Fatal(err)
	}
	for tid := range s.threads {
		s.schedule(tid, 0)
	}
	s.setLevel(2)
	s.runUntil(2e7)
	parked := 0
	for tid := 0; tid < s.cfg.Threads; tid++ {
		if s.parked[tid] {
			parked++
		}
	}
	if parked != 4 {
		t.Fatalf("%d threads parked, want 4", parked)
	}
	before := s.res.Executed
	s.setLevel(6)
	s.runUntil(4e7)
	if s.res.Executed <= before {
		t.Fatal("no progress after resume")
	}
	for tid := 0; tid < s.cfg.Threads; tid++ {
		if s.parked[tid] {
			t.Fatalf("thread %d still parked after resume", tid)
		}
	}
}
