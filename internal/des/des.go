// Package des is a deterministic discrete-event simulator of the
// dynamic operator scheduler. Where internal/sim is an analytic
// throughput model, des executes the paper's *algorithms* step by step —
// the free-list walk with its priming read and abandon-on-seeing-first
// rule, the enforcer try-locks, queue drains, reSchedule self-help and
// exponential back-off — against simulated data structures, with an
// explicit number of hardware contexts and explicit per-action costs.
//
// Because the engine is single-threaded, every shared-structure
// operation is atomic at action granularity and the simulation is fully
// deterministic; the actual interleaving of threads is produced by the
// event clock. That yields what the Go runtime cannot give the native
// scheduler on a small host: precise control of "hardware" parallelism,
// so tests can check policy-level properties (work conservation, per-
// stream ordering, thread scaling, starvation-freedom) at any simulated
// core count.
//
// The simulator executes real graph.Graph topologies; operator work is
// charged per node via a cost function rather than by running operator
// code.
//
// # Regimes
//
// The DES exposes two distinct operating regimes. When the source is
// slower than the pipeline's aggregate capacity, queues run shallow,
// drains terminate, threads rotate through the free list, and adding
// threads adds throughput until the source binds. When the source
// saturates a single deep chain, queues fill end to end, the unbounded
// schedule() drains pin threads to the head ports, and blocked pushes
// serialize the tail through nested reSchedule — throughput stops
// scaling with threads. Width-parallel graphs scale linearly in the
// number of chains regardless, because chains do not share queues.
// Real machines blur the saturated regime through preemption and cache
// stochasticity that a deterministic event clock does not reproduce, so
// treat saturated-pipeline DES results as a worst-case bound rather than
// a prediction.
package des

import (
	"container/heap"
	"fmt"

	"streams/internal/graph"
)

// Costs are the per-action durations (nanoseconds of simulated time).
type Costs struct {
	// FlopNs is charged per unit of a node's Cost.
	FlopNs float64
	// QueueOpNs is one queue push or pop.
	QueueOpNs float64
	// LockNs is one try-lock or unlock of an enforcer flag.
	LockNs float64
	// FreeListNs is one free-list pop or push.
	FreeListNs float64
	// CtxSwitchNs is charged when a thread is rotated onto a core.
	CtxSwitchNs float64
	// SourceNs is charged per generated tuple.
	SourceNs float64
	// BackoffStartNs and BackoffMaxNs bound the exponential back-off
	// (paper: 1µs growing ×10 to 10ms).
	BackoffStartNs, BackoffMaxNs float64
}

// DefaultCosts returns a plausible commodity-server cost set.
func DefaultCosts() Costs {
	return Costs{
		FlopNs:         0.5,
		QueueOpNs:      40,
		LockNs:         15,
		FreeListNs:     60,
		CtxSwitchNs:    2000,
		SourceNs:       30,
		BackoffStartNs: 1e3,
		BackoffMaxNs:   1e7,
	}
}

// Config describes one simulation run.
type Config struct {
	// Cores is the number of hardware contexts.
	Cores int
	// Threads is the number of dynamic scheduler threads.
	Threads int
	// QueueCap is the per-port queue capacity.
	QueueCap int
	// ReschedLimit bounds reSchedule drains; 0 means QueueCap/4.
	ReschedLimit int
	// DrainLimit optionally bounds the schedule()-loop drain, which the
	// paper leaves unbounded ("we can go ahead and pop off and execute
	// all of the tuples from its queue"). The knob exists to experiment
	// with the saturation convoy (see the package notes on regimes):
	// bounding the drain makes threads rotate ports but does not by
	// itself restore pipeline scaling under a saturating source, which
	// is itself an informative negative result. 0 keeps the paper's
	// unbounded drain.
	DrainLimit int
	// Quantum is the time-slice (ns) before a runnable thread yields the
	// core to a waiter; 0 means 50µs.
	Quantum float64
	// Duration is the simulated run length in nanoseconds.
	Duration float64
	// Costs are the action costs; zero value selects DefaultCosts.
	Costs Costs
	// CostOf returns the per-tuple work units of a node; nil charges
	// zero work (forwarding only).
	CostOf func(n *graph.Node) int

	// The contention-adaptive extensions (adaptive.go).

	// Sharded replaces the single global free list with per-thread
	// shard LIFOs plus lateral-hint inbox FIFOs, stolen nearest-first —
	// the policy model of the native sharded free list.
	Sharded bool
	// Relax is the free-list relaxation width k: a released hint may
	// land in the releaser's own shard (rank 0) or the inbox of one of
	// its k-1 nearest victims. 0 and 1 mean tight; > 1 implies Sharded.
	Relax int
	// LLCGroups assigns each scheduler thread an LLC group for the
	// nearest-first victim order (same group first). Nil means flat:
	// every victim equally remote, ordered by thread ID.
	LLCGroups []int
	// ClaimPolicy selects how a push resolves producer-lock contention;
	// the zero value keeps the legacy atomic-claim model.
	ClaimPolicy ClaimPolicy
}

// Result summarizes a run.
type Result struct {
	// SinkTuples is the number of tuples delivered to sink nodes.
	SinkTuples uint64
	// Executed is tuples processed across all operators.
	Executed uint64
	// SimSeconds is the simulated duration.
	SimSeconds float64
	// SinkThroughput is SinkTuples/SimSeconds.
	SinkThroughput float64
	// CtxSwitches counts thread rotations onto cores.
	CtxSwitches uint64
	// Reschedules counts entries into the reSchedule self-help path.
	Reschedules uint64
	// FindFailures counts free-list walks that found nothing.
	FindFailures uint64
	// OrderViolations counts per-stream ordering violations observed at
	// the sinks (must be zero).
	OrderViolations uint64
	// PortStarved is the number of ports that never executed a tuple
	// despite receiving one.
	PortStarved int
	// Lateral counts released hints that landed in a victim's inbox
	// instead of the releaser's own shard (Relax > 1 only).
	Lateral uint64
	// MaxRelaxRank is the largest rank a released hint ever landed at
	// (0 = own shard); the relaxation-bound check asserts it stays
	// below the configured width.
	MaxRelaxRank int
	// ClaimWaits counts pushes that found the producer lock held and
	// had to wait for it (ClaimBackoff and ClaimFair only).
	ClaimWaits uint64
	// MaxClaimWaitNs is the longest such wait in simulated nanoseconds
	// — the starvation-freedom comparison between claim policies.
	MaxClaimWaitNs float64
}

// ----- simulated data structures -----

type simTuple struct {
	port int
	// src and seq identify the producing edge and position for ordering
	// checks.
	src int // producing node
	seq uint64
}

type simQueue struct {
	buf        []simTuple
	capacity   int
	prodLocked bool
	consLocked bool
	// waiters is the fair-claim ticket line (ClaimFair): threads that
	// found prodLocked held, in arrival order. Releasing the lock hands
	// it directly to the head waiter.
	waiters []int
}

func (q *simQueue) push(t simTuple) bool {
	if len(q.buf) >= q.capacity {
		return false
	}
	q.buf = append(q.buf, t)
	return true
}

func (q *simQueue) pop() (simTuple, bool) {
	if len(q.buf) == 0 {
		return simTuple{}, false
	}
	t := q.buf[0]
	q.buf = q.buf[1:]
	return t, true
}

// ----- engine -----

type event struct {
	at  float64
	seq uint64 // tie-break for determinism
	tid int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// frame is one entry of a thread's explicit control stack; the scheduler
// algorithms are recursive (execute → submit → push full → reSchedule →
// execute …), so the state machine carries the recursion explicitly.
type frame struct {
	kind frameKind
	// exec: the tuple being processed and the next output edge to emit.
	tuple   simTuple
	node    int
	outPort int
	outIdx  int
	// drain: the port being drained, tuples processed so far, and the
	// drain bound (-1: unbounded schedule()-style drain).
	port      int
	processed int
	limit     int
	// push (non-atomic claim policies): whether this frame holds the
	// destination's producer lock, and when it started waiting for it
	// (0: not waiting).
	locked     bool
	claimStart float64
}

type frameKind int

const (
	fFindWork frameKind = iota
	fExec               // run node logic, then emit outputs
	fEmit               // emit tuple copies to successor ports
	fPush               // push one tuple into one port (may reSchedule)
	fDrain              // drain a consumer-locked port
)

type thread struct {
	id      int
	stack   []frame
	backoff float64
	// rng is a per-thread xorshift state for service-time jitter.
	rng uint64
	// walk state for findWorkNonBlocking
	first   int
	walking bool
	// core accounting
	sliceUsed float64
}

// Sim is one configured simulation.
type Sim struct {
	g   *graph.Graph
	cfg Config

	queues   []*simQueue
	freeList []int // FIFO of port IDs
	onList   []bool
	// Sharded free-list model (adaptive.go): per-scheduler-thread shard
	// LIFOs and lateral-hint inbox FIFOs, plus each thread's precomputed
	// nearest-first victim order. Nil unless cfg.Sharded.
	shards  [][]int
	inboxes [][]int
	victims [][]int

	threads []*thread
	// Elastic support (see elastic.go): suspension flags per scheduler
	// thread and whether each is parked awaiting resume.
	suspended []bool
	parked    []bool

	now    float64
	events eventHeap
	evSeq  uint64

	// source state: per source node, next seq and per-edge emit position
	srcSeq []uint64

	// ordering check: per (edge = src node, dest port) last seq seen
	lastSeq map[[2]int]uint64

	res            Result
	executedAtPort []uint64
	arrivedAtPort  []uint64
	seqs           [][]uint64 // per node, per out port: next seq
}

// New builds a simulation of g under cfg.
func New(g *graph.Graph, cfg Config) (*Sim, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("des: Cores must be positive")
	}
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("des: Threads must be positive")
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.ReschedLimit == 0 {
		cfg.ReschedLimit = cfg.QueueCap / 4
	}
	if cfg.ReschedLimit < 1 {
		cfg.ReschedLimit = 1
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 50e3
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 1e9
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Relax > 1 {
		cfg.Sharded = true
	}
	if cfg.Relax < 1 {
		cfg.Relax = 1
	}
	if cfg.Relax > cfg.Threads {
		cfg.Relax = cfg.Threads
	}
	if cfg.LLCGroups != nil && len(cfg.LLCGroups) != cfg.Threads {
		return nil, fmt.Errorf("des: LLCGroups has %d entries for %d threads", len(cfg.LLCGroups), cfg.Threads)
	}
	s := &Sim{
		g:              g,
		cfg:            cfg,
		queues:         make([]*simQueue, len(g.Ports)),
		onList:         make([]bool, len(g.Ports)),
		lastSeq:        map[[2]int]uint64{},
		srcSeq:         make([]uint64, len(g.Nodes)),
		executedAtPort: make([]uint64, len(g.Ports)),
		arrivedAtPort:  make([]uint64, len(g.Ports)),
		seqs:           make([][]uint64, len(g.Nodes)),
	}
	for i := range s.queues {
		s.queues[i] = &simQueue{capacity: cfg.QueueCap}
		s.freeList = append(s.freeList, i)
		s.onList[i] = true
	}
	for _, n := range g.Nodes {
		s.seqs[n.ID] = make([]uint64, n.NumOut)
	}
	for i := 0; i < cfg.Threads; i++ {
		t := &thread{id: i, backoff: cfg.Costs.BackoffStartNs, rng: uint64(i)*2654435761 + 1}
		t.stack = []frame{{kind: fFindWork}}
		s.threads = append(s.threads, t)
	}
	// Source nodes get their own simulated threads appended after the
	// scheduler threads (the paper's "threads we cannot control").
	for range g.SourceNodes {
		t := &thread{id: len(s.threads), rng: uint64(len(s.threads))*2654435761 + 1}
		s.threads = append(s.threads, t)
	}
	if cfg.Sharded {
		s.initSharded()
	}
	return s, nil
}

func (s *Sim) isSourceThread(tid int) bool { return tid >= s.cfg.Threads }

// Run executes the simulation and returns the result summary.
func (s *Sim) Run() Result {
	// Start every thread at time 0; core assignment happens lazily.
	for tid := range s.threads {
		s.schedule(tid, 0)
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at > s.cfg.Duration {
			break
		}
		s.now = e.at
		s.step(e.tid)
	}
	s.res.SimSeconds = s.cfg.Duration / 1e9
	s.res.SinkThroughput = float64(s.res.SinkTuples) / s.res.SimSeconds
	for p := range s.queues {
		if s.arrivedAtPort[p] > 0 && s.executedAtPort[p] == 0 {
			s.res.PortStarved++
		}
	}
	return s.res
}

func (s *Sim) schedule(tid int, delay float64) {
	s.evSeq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.evSeq, tid: tid})
}

// jitter scales a duration by a deterministic ±15% service-time
// variation. Without it, identical action costs put queues into perfect
// lockstep: a drain never observes an empty queue, consumer locks are
// never released, and the simulation convoys in a way real machines
// (with cache misses, interrupts and frequency jitter) do not.
func (t *thread) jitter(d float64) float64 {
	// xorshift64
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return d * (0.85 + 0.30*float64(x%1024)/1024)
}

// charge returns the action duration, inserting context-switch and
// core-contention delays: only Cores threads make progress at once, so a
// thread whose slice expires while others wait is charged a rotation.
func (s *Sim) charge(t *thread, d float64) float64 {
	d = t.jitter(d)
	over := len(s.threads) - s.cfg.Cores
	if over <= 0 {
		return d
	}
	t.sliceUsed += d
	if t.sliceUsed >= s.cfg.Quantum {
		t.sliceUsed = 0
		s.res.CtxSwitches++
		// The thread waits while the other over threads use the core.
		wait := float64(over) / float64(s.cfg.Cores) * s.cfg.Quantum
		return d + s.cfg.Costs.CtxSwitchNs + wait
	}
	return d
}

// step advances thread tid by one action and schedules its next event.
func (s *Sim) step(tid int) {
	t := s.threads[tid]
	if s.isSourceThread(tid) {
		s.stepSource(tid, t)
		return
	}
	if len(t.stack) == 0 {
		t.stack = append(t.stack, frame{kind: fFindWork})
	}
	if t.stack[len(t.stack)-1].kind == fFindWork {
		s.stepFindWork(tid, t)
		return
	}
	s.stepFrame(tid, t)
}

// stepSource advances a source thread: generate the next tuple when
// idle, otherwise keep working the push/drain frames (source threads
// execute operators through reSchedule exactly like the real runtime's
// uncontrolled threads).
func (s *Sim) stepSource(tid int, t *thread) {
	src := s.g.SourceNodes[tid-s.cfg.Threads]
	c := s.cfg.Costs
	if len(t.stack) == 0 {
		if src.NumOut == 0 || len(src.Outs[0]) == 0 {
			return // nothing to generate into; thread retires
		}
		// Round-robin across the out port's subscribers, like the
		// Generator + splitter pair in the evaluation graphs.
		dests := src.Outs[0]
		n := s.srcSeq[src.ID]
		s.srcSeq[src.ID]++
		dest := dests[int(n)%len(dests)]
		t.stack = append(t.stack, frame{
			kind:  fPush,
			tuple: simTuple{port: dest, src: src.ID, seq: n / uint64(len(dests))},
		})
		s.schedule(tid, s.charge(t, c.SourceNs))
		return
	}
	s.stepFrame(tid, t)
}

// stepFindWork is the paper's Figure 5 free-list walk, one action at a
// time.
func (s *Sim) stepFindWork(tid int, t *thread) {
	if s.suspended != nil && tid < len(s.suspended) && s.suspended[tid] {
		// Park between drains, like a suspended native thread; resume
		// re-schedules the event.
		s.parked[tid] = true
		return
	}
	c := s.cfg.Costs
	dur := c.FreeListNs
	port, ok := s.popFree(t)
	if !ok {
		s.res.FindFailures++
		t.walking = false
		delay := t.backoff
		if t.backoff < c.BackoffMaxNs {
			t.backoff *= 10
		}
		t.sliceUsed = 0 // blocking releases the core
		s.schedule(tid, dur+delay)
		return
	}
	q := s.queues[port]
	dur += c.LockNs
	if !q.consLocked {
		q.consLocked = true
		if tu, popped := q.pop(); popped {
			dur += c.QueueOpNs
			t.backoff = c.BackoffStartNs
			t.walking = false
			// Execute this tuple, then drain the port.
			limit := -1 // the paper's drain-until-empty
			if s.cfg.DrainLimit > 0 {
				limit = s.cfg.DrainLimit
			}
			t.stack = append(t.stack,
				frame{kind: fDrain, port: port, limit: limit},
				frame{kind: fExec, tuple: tu, node: s.g.Ports[tu.port].Node.ID})
			s.schedule(tid, s.charge(t, dur))
			return
		}
		q.consLocked = false
	}
	s.pushFree(tid, port)
	if t.walking && port == t.first {
		t.walking = false
		s.res.FindFailures++
		delay := t.backoff
		if t.backoff < c.BackoffMaxNs {
			t.backoff *= 10
		}
		t.sliceUsed = 0
		s.schedule(tid, dur+delay)
		return
	}
	if !t.walking {
		t.walking = true
		t.first = port
	}
	s.schedule(tid, s.charge(t, dur))
}

// stepFrame advances the top non-FindWork frame: operator execution,
// output emission, pushes with reSchedule, and queue drains. Shared by
// scheduler and source threads.
func (s *Sim) stepFrame(tid int, t *thread) {
	f := &t.stack[len(t.stack)-1]
	c := s.cfg.Costs
	switch f.kind {
	case fExec:
		node := s.g.Nodes[f.node]
		work := 0.0
		if s.cfg.CostOf != nil {
			work = float64(s.cfg.CostOf(node)) * c.FlopNs
		}
		s.res.Executed++
		s.executedAtPort[f.tuple.port]++
		s.checkOrder(f.tuple)
		if node.NumOut == 0 {
			s.res.SinkTuples++
			t.stack = t.stack[:len(t.stack)-1]
			s.schedule(tid, s.charge(t, work))
			return
		}
		t.stack[len(t.stack)-1] = frame{kind: fEmit, node: f.node, tuple: f.tuple}
		s.schedule(tid, s.charge(t, work))

	case fEmit:
		node := s.g.Nodes[f.node]
		for f.outPort < node.NumOut && f.outIdx >= len(node.Outs[f.outPort]) {
			f.outPort++
			f.outIdx = 0
		}
		if f.outPort >= node.NumOut {
			t.stack = t.stack[:len(t.stack)-1]
			s.schedule(tid, 0)
			return
		}
		dest := node.Outs[f.outPort][f.outIdx]
		seq := s.seqs[f.node][f.outPort]
		if f.outIdx == len(node.Outs[f.outPort])-1 {
			s.seqs[f.node][f.outPort]++
		}
		f.outIdx++
		t.stack = append(t.stack, frame{kind: fPush, tuple: simTuple{port: dest, src: f.node, seq: seq}})
		s.schedule(tid, 0)

	case fPush:
		if s.cfg.ClaimPolicy != ClaimAtomic {
			s.stepPushClaim(tid, t, f)
			return
		}
		q := s.queues[f.tuple.port]
		dur := c.LockNs
		if !q.prodLocked {
			q.prodLocked = true
			ok := q.push(f.tuple)
			q.prodLocked = false
			dur += c.QueueOpNs
			if ok {
				s.arrivedAtPort[f.tuple.port]++
				t.stack = t.stack[:len(t.stack)-1]
				s.schedule(tid, s.charge(t, dur))
				return
			}
		}
		// Full (or producer contended): reSchedule — drain the blocking
		// port ourselves when its consumer lock is free (paper Fig. 6).
		s.res.Reschedules++
		if !q.consLocked {
			q.consLocked = true
			t.stack = append(t.stack, frame{kind: fDrain, port: f.tuple.port, limit: s.cfg.ReschedLimit})
		}
		s.schedule(tid, s.charge(t, dur))

	case fDrain:
		q := s.queues[f.port]
		if f.limit >= 0 && f.processed >= f.limit {
			q.consLocked = false
			t.stack = t.stack[:len(t.stack)-1]
			if s.cfg.DrainLimit > 0 && f.limit == s.cfg.DrainLimit {
				// A bounded schedule()-drain stopped early: the port
				// still has work, so return it to the list.
				s.pushFree(tid, f.port)
			}
			s.schedule(tid, s.charge(t, c.LockNs))
			return
		}
		tu, ok := q.pop()
		if !ok {
			q.consLocked = false
			t.stack = t.stack[:len(t.stack)-1]
			if f.limit < 0 {
				// schedule()-style drain finished: return the port to
				// the back of the free list.
				s.pushFree(tid, f.port)
			}
			s.schedule(tid, s.charge(t, c.LockNs+c.FreeListNs))
			return
		}
		f.processed++
		t.stack = append(t.stack, frame{kind: fExec, tuple: tu, node: s.g.Ports[tu.port].Node.ID})
		s.schedule(tid, s.charge(t, c.QueueOpNs))

	default:
		t.stack = t.stack[:len(t.stack)-1]
		s.schedule(tid, 0)
	}
}

// checkOrder verifies per-edge FIFO delivery.
func (s *Sim) checkOrder(tu simTuple) {
	key := [2]int{tu.src, tu.port}
	if last, ok := s.lastSeq[key]; ok && tu.seq <= last && tu.seq != 0 {
		s.res.OrderViolations++
	}
	s.lastSeq[key] = tu.seq
}

// popFree pops the next port hint for thread t: the sharded lookup
// when configured (adaptive.go), else the head of the global list.
func (s *Sim) popFree(t *thread) (int, bool) {
	if s.cfg.Sharded && t.id < s.cfg.Threads {
		return s.popFreeSharded(t)
	}
	if len(s.freeList) == 0 {
		return 0, false
	}
	p := s.freeList[0]
	s.freeList = s.freeList[1:]
	s.onList[p] = false
	return p, true
}

// pushFree releases port p from thread tid: a k-relaxed shard release
// for sharded scheduler threads (adaptive.go), else the back of the
// global list (source threads always spill globally, like the native
// runtime's uncontrolled threads).
func (s *Sim) pushFree(tid, p int) {
	if s.onList[p] {
		return
	}
	s.onList[p] = true
	if s.cfg.Sharded && tid < s.cfg.Threads {
		s.pushFreeSharded(tid, p)
		return
	}
	s.freeList = append(s.freeList, p)
}
