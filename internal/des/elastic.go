package des

import (
	"container/heap"

	"streams/internal/elastic"
)

// Elastic support: the DES can suspend and resume scheduler threads at
// period boundaries, so the real elasticity controller
// (internal/elastic) can drive a simulated PE — Figure 11 on the
// event-level simulator instead of the analytic model.

// runUntil advances the event clock to the given simulated time.
func (s *Sim) runUntil(until float64) {
	for len(s.events) > 0 && s.events[0].at <= until {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.step(e.tid)
	}
	if s.now < until {
		s.now = until
	}
}

// setLevel suspends scheduler threads above level and resumes those
// below it. Suspended threads park at their next find-work step, exactly
// like the native scheduler's threads park between drains.
func (s *Sim) setLevel(level int) {
	if s.suspended == nil {
		s.suspended = make([]bool, s.cfg.Threads)
		s.parked = make([]bool, s.cfg.Threads)
	}
	for tid := 0; tid < s.cfg.Threads; tid++ {
		want := tid >= level
		if want == s.suspended[tid] {
			continue
		}
		s.suspended[tid] = want
		if !want && s.parked[tid] {
			s.parked[tid] = false
			s.schedule(tid, 0)
		}
	}
}

// ElasticPoint is one adaptation period of an elastic DES run.
type ElasticPoint struct {
	// Second is simulated seconds into the run.
	Second float64
	// Throughput is tuples executed across all operators per second
	// during the period.
	Throughput float64
	// Threads is the level chosen for the next period.
	Threads int
}

// RunElastic drives the elasticity controller against this simulation:
// every periodNs of simulated time it measures PE-wide throughput,
// updates the controller, and applies the new level. cfg.Threads is the
// maximum level. Call instead of Run.
func (s *Sim) RunElastic(periodNs float64, periods int, geometric bool) ([]ElasticPoint, error) {
	ctl, err := elastic.New(elastic.Config{
		MaxLevel:  s.cfg.Threads,
		Geometric: geometric,
	})
	if err != nil {
		return nil, err
	}
	for tid := range s.threads {
		s.schedule(tid, 0)
	}
	level := ctl.Level()
	s.setLevel(level)
	var trace []ElasticPoint
	lastExecuted := uint64(0)
	for p := 1; p <= periods; p++ {
		until := float64(p) * periodNs
		s.runUntil(until)
		delta := s.res.Executed - lastExecuted
		lastExecuted = s.res.Executed
		thput := float64(delta) / (periodNs / 1e9)
		level = ctl.Update(thput)
		s.setLevel(level)
		trace = append(trace, ElasticPoint{Second: until / 1e9, Throughput: thput, Threads: level})
	}
	return trace, nil
}
