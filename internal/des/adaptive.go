// The contention-adaptive extensions of the DES: a policy-level model
// of the native scheduler's sharded free list with k-relaxed lateral
// releases and nearest-first stealing (internal/sched), and of the
// port-claim alternatives behind the producer enforcer flag — legacy
// atomic claim, exponential back-off, and the fair ticket line
// (lfq.Enforcer.FairTicket). The DES versions trade the lock-free
// machinery for exact sequential structures so the *policies* can be
// checked at controlled core counts: work conservation (no hint is
// ever stranded), starvation freedom of the claim line, and the
// relaxation bound (a hint never lands farther than rank k-1).
package des

import "fmt"

// ClaimPolicy selects how an fPush resolves producer-lock contention.
type ClaimPolicy int

const (
	// ClaimAtomic is the legacy model: try-lock and push in one simulated
	// action; contention (or a full queue) falls straight into reSchedule.
	ClaimAtomic ClaimPolicy = iota
	// ClaimBackoff holds the claim across two actions (acquire, then
	// push) and retries a contended acquire after exponential back-off —
	// the native scheduler's default contended-push behaviour.
	ClaimBackoff
	// ClaimFair queues contended claimants on a ticket line per port and
	// hands the lock directly to the head waiter on release — the native
	// Config.FairClaim path.
	ClaimFair
)

func (p ClaimPolicy) String() string {
	switch p {
	case ClaimAtomic:
		return "atomic"
	case ClaimBackoff:
		return "backoff"
	case ClaimFair:
		return "fair"
	default:
		return fmt.Sprintf("ClaimPolicy(%d)", int(p))
	}
}

// nextRand draws 32 deterministic bits from the thread's jitter state
// (the release-rank choice, mirroring sched.thread.nextRand).
func (t *thread) nextRand() uint32 {
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return uint32(x >> 32)
}

// initSharded builds the per-scheduler-thread shard LIFOs, inbox FIFOs
// and nearest-first victim orders. With LLCGroups, same-group victims
// come first (ascending thread ID), then the rest; without, the order
// is flat: every other thread ascending — the same shape
// cpuutil.Topology.VictimOrder produces for the native scheduler.
func (s *Sim) initSharded() {
	n := s.cfg.Threads
	s.shards = make([][]int, n)
	s.inboxes = make([][]int, n)
	s.victims = make([][]int, n)
	for i := 0; i < n; i++ {
		var near, far []int
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if s.cfg.LLCGroups != nil && s.cfg.LLCGroups[j] == s.cfg.LLCGroups[i] {
				near = append(near, j)
			} else {
				far = append(far, j)
			}
		}
		s.victims[i] = append(near, far...)
	}
}

// popFreeSharded is a scheduler thread's sharded hint lookup: own inbox
// (lateral hints, FIFO), own shard (cache-warm, LIFO), steal from the
// victims nearest-first (their shard's cold end, then their inbox), and
// finally the global spill list. All structures are always reachable by
// every thread, so shrinking the relaxation width mid-run can never
// strand a hint — the invariant CheckHintConservation verifies.
func (s *Sim) popFreeSharded(t *thread) (int, bool) {
	if ib := s.inboxes[t.id]; len(ib) > 0 {
		p := ib[0]
		s.inboxes[t.id] = ib[1:]
		s.onList[p] = false
		return p, true
	}
	if sh := s.shards[t.id]; len(sh) > 0 {
		p := sh[len(sh)-1]
		s.shards[t.id] = sh[:len(sh)-1]
		s.onList[p] = false
		return p, true
	}
	for _, v := range s.victims[t.id] {
		if sh := s.shards[v]; len(sh) > 0 {
			p := sh[0]
			s.shards[v] = sh[1:]
			s.onList[p] = false
			return p, true
		}
		if ib := s.inboxes[v]; len(ib) > 0 {
			p := ib[0]
			s.inboxes[v] = ib[1:]
			s.onList[p] = false
			return p, true
		}
	}
	if len(s.freeList) > 0 {
		p := s.freeList[0]
		s.freeList = s.freeList[1:]
		s.onList[p] = false
		return p, true
	}
	return 0, false
}

// pushFreeSharded releases a hint from scheduler thread tid: rank 0
// keeps it on the releaser's own shard; ranks 1..k-1 push it laterally
// into the rank'th-nearest victim's inbox (the k-relaxed release).
func (s *Sim) pushFreeSharded(tid, p int) {
	t := s.threads[tid]
	if w := min(s.cfg.Relax, len(s.victims[tid])+1); w > 1 {
		if r := int(t.nextRand() % uint32(w)); r > 0 {
			v := s.victims[tid][r-1]
			s.inboxes[v] = append(s.inboxes[v], p)
			s.res.Lateral++
			if r > s.res.MaxRelaxRank {
				s.res.MaxRelaxRank = r
			}
			return
		}
	}
	s.shards[tid] = append(s.shards[tid], p)
}

// stepPushClaim is the fPush state machine under the non-atomic claim
// policies: acquire the producer lock in one action, push and release
// in the next, so contention for the claim is observable between them.
func (s *Sim) stepPushClaim(tid int, t *thread, f *frame) {
	q := s.queues[f.tuple.port]
	c := s.cfg.Costs
	if f.locked {
		// Second phase: we hold the producer lock; push and release.
		ok := q.push(f.tuple)
		f.locked = false
		s.releaseProd(q)
		dur := c.QueueOpNs + c.LockNs
		if ok {
			s.arrivedAtPort[f.tuple.port]++
			t.stack = t.stack[:len(t.stack)-1]
			s.schedule(tid, s.charge(t, dur))
			return
		}
		// Full: the lock is already released above, so the reSchedule
		// drain cannot deadlock the ticket line.
		s.res.Reschedules++
		if !q.consLocked {
			q.consLocked = true
			t.stack = append(t.stack, frame{kind: fDrain, port: f.tuple.port, limit: s.cfg.ReschedLimit})
		}
		s.schedule(tid, s.charge(t, dur))
		return
	}
	if !q.prodLocked {
		q.prodLocked = true
		f.locked = true
		s.recordClaimWait(f)
		t.backoff = c.BackoffStartNs
		s.schedule(tid, s.charge(t, c.LockNs))
		return
	}
	// Contended claim.
	if f.claimStart == 0 {
		f.claimStart = s.now
	}
	if s.cfg.ClaimPolicy == ClaimFair {
		// Join the ticket line and block; releaseProd wakes us with the
		// lock already held (direct handoff).
		q.waiters = append(q.waiters, tid)
		t.sliceUsed = 0
		return
	}
	// ClaimBackoff: retry after exponential back-off.
	delay := t.backoff
	if t.backoff < c.BackoffMaxNs {
		t.backoff *= 10
	}
	t.sliceUsed = 0 // blocking releases the core
	s.schedule(tid, c.LockNs+delay)
}

// releaseProd releases q's producer lock — or, under ClaimFair with a
// non-empty ticket line, hands it directly to the head waiter without
// the lock ever becoming observably free (the no-barging property that
// bounds each claimant's wait by the line length ahead of it).
func (s *Sim) releaseProd(q *simQueue) {
	if len(q.waiters) == 0 {
		q.prodLocked = false
		return
	}
	next := q.waiters[0]
	q.waiters = q.waiters[1:]
	nt := s.threads[next]
	nf := &nt.stack[len(nt.stack)-1]
	nf.locked = true
	s.recordClaimWait(nf)
	nt.backoff = s.cfg.Costs.BackoffStartNs
	s.schedule(next, 0)
}

// recordClaimWait accounts a finished claim wait on acquisition.
func (s *Sim) recordClaimWait(f *frame) {
	if f.claimStart == 0 {
		return
	}
	s.res.ClaimWaits++
	if w := s.now - f.claimStart; w > s.res.MaxClaimWaitNs {
		s.res.MaxClaimWaitNs = w
	}
	f.claimStart = 0
}

// CheckHintConservation verifies the free-structure invariant at the
// current instant: every port marked on-list appears on exactly one of
// the global list, a shard, or an inbox, and no off-list port appears
// anywhere. Tests call it after shrinking the relaxation width or
// suspending threads to prove no hint was stranded or duplicated.
func (s *Sim) CheckHintConservation() error {
	count := make([]int, len(s.onList))
	for _, p := range s.freeList {
		count[p]++
	}
	for _, sh := range s.shards {
		for _, p := range sh {
			count[p]++
		}
	}
	for _, ib := range s.inboxes {
		for _, p := range ib {
			count[p]++
		}
	}
	for p, n := range count {
		want := 0
		if s.onList[p] {
			want = 1
		}
		if n != want {
			return fmt.Errorf("des: port %d appears %d times across the free structures, want %d", p, n, want)
		}
	}
	return nil
}
