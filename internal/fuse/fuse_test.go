package fuse

import (
	"sync"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/tuple"
)

func pipelineGraph(t *testing.T, depth int, limit uint64) (*graph.Graph, *ops.Sink) {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: limit}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		w := b.AddNode(&ops.Worker{Cost: 10}, 1, 1)
		b.Connect(prev, 0, w, 0)
		prev = w
	}
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	b.Connect(prev, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, snk
}

func waitDeployment(t *testing.T, d *Deployment) {
	t.Helper()
	done := make(chan struct{})
	go func() { d.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deployment did not drain")
	}
}

// TestPipelineSplitAcrossPEs fuses a pipeline into several PEs and
// checks full, in-order delivery through every TCP boundary.
func TestPipelineSplitAcrossPEs(t *testing.T) {
	const n = 15000
	for _, parts := range []int{1, 2, 3, 5} {
		parts := parts
		t.Run(map[int]string{1: "one", 2: "two", 3: "three", 5: "five"}[parts], func(t *testing.T) {
			g, snk := pipelineGraph(t, 9, n)
			var mu sync.Mutex
			var seen []uint64
			snk.OnTuple = func(tp tuple.Tuple) {
				mu.Lock()
				seen = append(seen, tp.Words[0])
				mu.Unlock()
			}
			d, err := Plan(g, parts, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(d.PEs) != parts {
				t.Fatalf("planned %d PEs, want %d", len(d.PEs), parts)
			}
			if wantCuts := parts - 1; len(d.Exports) != wantCuts || len(d.Imports) != wantCuts {
				t.Fatalf("%d exports / %d imports, want %d", len(d.Exports), len(d.Imports), wantCuts)
			}
			if err := d.Start(); err != nil {
				t.Fatal(err)
			}
			waitDeployment(t, d)
			if err := d.Err(); err != nil {
				t.Fatalf("transport error: %v", err)
			}
			if snk.Count() != n {
				t.Fatalf("sink saw %d of %d tuples", snk.Count(), n)
			}
			for i, v := range seen {
				if v != uint64(i) {
					t.Fatalf("position %d: tuple %d out of order across %d PEs", i, v, parts)
				}
			}
		})
	}
}

// TestMixedGraphSplit fuses a width-parallel graph whose cut edges fan
// out and back in.
func TestMixedGraphSplit(t *testing.T) {
	const n = 8000
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	split := b.AddNode(&ops.RoundRobinSplit{Width: 4}, 1, 4)
	b.Connect(src, 0, split, 0)
	snk := &ops.Sink{}
	sn := b.AddNode(snk, 1, 0)
	for w := 0; w < 4; w++ {
		a := b.AddNode(&ops.Worker{Cost: 10}, 1, 1)
		c := b.AddNode(&ops.Worker{Cost: 10}, 1, 1)
		b.Connect(split, w, a, 0)
		b.Connect(a, 0, c, 0)
		b.Connect(c, 0, sn, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Plan(g, 3, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	waitDeployment(t, d)
	if err := d.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if snk.Count() != n {
		t.Fatalf("sink saw %d of %d tuples", snk.Count(), n)
	}
}

// TestStopUnboundedDeployment stops a deployment whose source never
// finishes.
func TestStopUnboundedDeployment(t *testing.T) {
	g, snk := pipelineGraph(t, 6, 0)
	d, err := Plan(g, 2, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for snk.Count() < 500 {
		if time.Now().After(deadline) {
			t.Fatal("no flow across the boundary")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { d.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Stop hung")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
}

func TestPlanValidation(t *testing.T) {
	g, _ := pipelineGraph(t, 2, 1)
	if _, err := Plan(g, 0, pe.Config{}); err == nil {
		t.Fatal("parts 0 accepted")
	}
	// parts beyond the node count clamps rather than failing.
	d, err := Plan(g, 100, pe.Config{Model: pe.Manual})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PEs) != len(g.Nodes) {
		t.Fatalf("clamped to %d PEs, want %d", len(d.PEs), len(g.Nodes))
	}
}

// TestFusionUnderAllModels checks boundary transports work whichever
// threading model executes each PE.
func TestFusionUnderAllModels(t *testing.T) {
	const n = 4000
	for _, model := range []pe.Model{pe.Manual, pe.Dedicated, pe.Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			g, snk := pipelineGraph(t, 5, n)
			d, err := Plan(g, 2, pe.Config{Model: model, Threads: 2, MaxThreads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Start(); err != nil {
				t.Fatal(err)
			}
			waitDeployment(t, d)
			if snk.Count() != n {
				t.Fatalf("%v: sink saw %d of %d", model, snk.Count(), n)
			}
		})
	}
}
