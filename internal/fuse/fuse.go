// Package fuse implements submission-time fusion: partitioning one
// logical stream graph into several processing elements connected by
// network transports. Streams 4.2 performs fusion automatically when
// applications are deployed (§1 of the paper; the fusion algorithm
// itself is outside the paper's scope, which is why this package keeps a
// deliberately simple policy): the deployer decides how many PEs to use,
// operators are assigned to PEs, and streams that cross PE boundaries
// are serialized over the network (internal/xport).
//
// The policy here assigns operators to PEs as contiguous blocks of a
// topological order, balanced by operator count. Contiguity in topo
// order guarantees every cut edge points from a lower-numbered PE to a
// higher-numbered one, so deployments drain cleanly front to back.
package fuse

import (
	"fmt"
	"net"
	"time"

	"streams/internal/graph"
	"streams/internal/pe"
	"streams/internal/xport"
)

// Deployment is a set of PEs jointly executing one logical graph.
type Deployment struct {
	// PEs in topological order: PEs[0] holds the sources.
	PEs []*pe.PE
	// Graphs are the per-PE fused graphs, aligned with PEs.
	Graphs []*graph.Graph
	// Exports and Imports are the boundary transports, for error
	// inspection.
	Exports []*xport.Export
	Imports []*xport.Import
}

// Plan partitions g into `parts` PEs (clamped to the node count) and
// wires the cut streams over loopback TCP. Operator instances are shared
// with the original graph, so sinks and stateful operators remain
// inspectable by the caller. cfg applies to every PE.
//
// Cut streams carry only the tuple's inline payload words (see
// internal/xport); graphs whose tuples rely on Ref payloads (for
// example SPL-compiled graphs) must keep Ref-dependent edges inside one
// PE.
func Plan(g *graph.Graph, parts int, cfg pe.Config) (*Deployment, error) {
	if parts < 1 {
		return nil, fmt.Errorf("fuse: parts must be positive")
	}
	if parts > len(g.Nodes) {
		parts = len(g.Nodes)
	}
	order := g.TopoOrder()
	partOf := make([]int, len(g.Nodes))
	// Balanced contiguous blocks: position i of the topo order lands in
	// part ⌊i·parts/len⌋, which uses every part and differs in size by at
	// most one node.
	for i, n := range order {
		partOf[n] = i * parts / len(order)
	}

	builders := make([]*graph.Builder, parts)
	for i := range builders {
		builders[i] = graph.NewBuilder()
	}
	// newID[n] is node n's ID within its part's builder.
	newID := make([]int, len(g.Nodes))
	for _, n := range order {
		node := g.Nodes[n]
		newID[n] = builders[partOf[n]].AddNode(node.Op, node.NumIn, node.NumOut)
	}

	d := &Deployment{}
	// boundary tracks one Export/Import pair per (source node, out port,
	// destination part).
	type cutKey struct{ node, port, dstPart int }
	type cutVal struct{ importNode int } // Import's node ID in dstPart
	cuts := map[cutKey]cutVal{}

	for _, n := range g.Nodes {
		srcPart := partOf[n.ID]
		for outPort, dests := range n.Outs {
			for _, pid := range dests {
				p := g.Ports[pid]
				dstPart := partOf[p.Node.ID]
				if dstPart == srcPart {
					builders[srcPart].Connect(newID[n.ID], outPort, newID[p.Node.ID], p.Index)
					continue
				}
				if dstPart < srcPart {
					return nil, fmt.Errorf("fuse: internal error: cut edge %d→%d points backwards", srcPart, dstPart)
				}
				key := cutKey{n.ID, outPort, dstPart}
				cv, ok := cuts[key]
				if !ok {
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						return nil, fmt.Errorf("fuse: boundary listener for %s:%d pe%d→pe%d: %w",
							n.Op.Name(), outPort, srcPart, dstPart, err)
					}
					addr := ln.Addr().String()
					// The name carries the PE pair so a failed boundary is
					// identifiable from Err alone. The dial is one bounded
					// attempt; the Export retries it under its own jittered
					// backoff and retry budget.
					exp := xport.NewExportWith(
						fmt.Sprintf("Export[%s:%d pe%d→pe%d]", n.Op.Name(), outPort, srcPart, dstPart),
						func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 2*time.Second) },
						xport.Options{Fault: cfg.Fault},
					)
					imp := xport.NewImport(
						fmt.Sprintf("Import[%s:%d pe%d→pe%d]", n.Op.Name(), outPort, srcPart, dstPart), ln)
					expNode := builders[srcPart].AddNode(exp, 1, 0)
					builders[srcPart].Connect(newID[n.ID], outPort, expNode, 0)
					impNode := builders[dstPart].AddNode(imp, 0, 1)
					cv = cutVal{importNode: impNode}
					cuts[key] = cv
					d.Exports = append(d.Exports, exp)
					d.Imports = append(d.Imports, imp)
				}
				builders[dstPart].Connect(cv.importNode, 0, newID[p.Node.ID], p.Index)
			}
		}
	}

	for i, b := range builders {
		fg, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("fuse: PE %d graph: %w", i, err)
		}
		p, err := pe.New(fg, cfg)
		if err != nil {
			return nil, fmt.Errorf("fuse: PE %d: %w", i, err)
		}
		d.Graphs = append(d.Graphs, fg)
		d.PEs = append(d.PEs, p)
	}
	return d, nil
}

// Start launches every PE, downstream first so imports are listening
// before exports dial (the transports tolerate either order; this just
// minimizes connection retries).
func (d *Deployment) Start() error {
	for i := len(d.PEs) - 1; i >= 0; i-- {
		if err := d.PEs[i].Start(); err != nil {
			return fmt.Errorf("fuse: starting PE %d: %w", i, err)
		}
	}
	return nil
}

// Wait drains the deployment front to back: the source PE drains first,
// its final punctuation crosses each boundary, and each downstream PE
// drains in turn.
func (d *Deployment) Wait() {
	for _, p := range d.PEs {
		p.Wait()
	}
}

// WaitTimeout drains the deployment front to back with one deadline over
// the whole drain. The returned error names the PE that failed to drain
// (with its diagnostic goroutine dump), or reports the first transport
// error — which names the boundary's PE pair — after a complete drain.
func (d *Deployment) WaitTimeout(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i, p := range d.PEs {
		remain := time.Until(deadline)
		if remain <= 0 {
			remain = time.Millisecond
		}
		if err := p.WaitTimeout(remain); err != nil {
			return fmt.Errorf("fuse: PE %d: %w", i, err)
		}
	}
	return d.Err()
}

// Stop asks the source PE's sources to stop, then drains the rest.
func (d *Deployment) Stop() {
	if len(d.PEs) == 0 {
		return
	}
	d.PEs[0].Stop()
	for _, p := range d.PEs[1:] {
		p.Wait()
	}
}

// Err returns the first transport error across all boundaries, if any.
func (d *Deployment) Err() error {
	for _, e := range d.Exports {
		if err := e.Err(); err != nil {
			return err
		}
	}
	for _, im := range d.Imports {
		if err := im.Err(); err != nil {
			return err
		}
	}
	return nil
}
