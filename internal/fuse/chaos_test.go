package fuse

import (
	"strings"
	"testing"
	"time"

	"streams/internal/fault"
	"streams/internal/pe"
)

// TestChaosDeploymentConnDrop splits a pipeline across three PEs and
// injects deterministic connection drops and write latency at every TCP
// boundary. The exports must reconnect and replay under their retry
// budget so the deployment still delivers every tuple exactly once, and
// each boundary transport must carry its PE pair in its name so a fault
// report identifies the failing link.
func TestChaosDeploymentConnDrop(t *testing.T) {
	const n = 8000
	inj := fault.New(fault.Config{
		Seed:        42,
		DropRate:    0.005,
		LatencyRate: 0.005, LatencyFor: 50 * time.Microsecond,
	})
	g, snk := pipelineGraph(t, 9, n)
	d, err := Plan(g, 3, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Exports) != 2 {
		t.Fatalf("planned %d boundaries, want 2", len(d.Exports))
	}
	if name := d.Exports[0].Name(); !strings.Contains(name, "pe0→pe1") {
		t.Errorf("first boundary name %q does not identify the PE pair", name)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitTimeout(120 * time.Second); err != nil {
		t.Fatalf("chaos deployment failed: %v", err)
	}
	var reconnects, dropped uint64
	for _, e := range d.Exports {
		reconnects += e.Reconnects()
		dropped += e.Dropped()
	}
	if fired := inj.Fired(fault.ConnDrop); fired == 0 {
		t.Fatal("injector never dropped a connection")
	}
	if reconnects == 0 {
		t.Error("exports never reconnected despite injected drops")
	}
	if dropped != 0 {
		t.Errorf("exports gave up on %d frames; retry budget should cover injected drops", dropped)
	}
	if snk.Count() != n {
		t.Fatalf("sink saw %d of %d tuples after reconnects", snk.Count(), n)
	}
	t.Logf("chaos deployment: %d drops fired, %d reconnects, all %d tuples delivered",
		inj.Fired(fault.ConnDrop), reconnects, n)
}
