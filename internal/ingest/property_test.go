package ingest_test

// Property tests for the admission contracts, meant to run under the
// race detector:
//
//   - Block: an admitted tuple is NEVER dropped, no matter how small
//     the queue or how hard concurrent clients push — the policy trades
//     client-side delay for loss-freedom.
//   - Shed: the tuples that survive keep their per-client FIFO order,
//     and punctuation is delivered even when every data tuple around it
//     was shed.

import (
	"sync"
	"testing"
	"time"

	"streams/internal/ingest"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/tuple"
)

// TestBlockNoAdmittedTupleDropped hammers a tiny Block queue from
// concurrent clients through a live PE and checks exact conservation:
// every offered tuple reaches the sink, in per-client FIFO order, with
// zero shed.
func TestBlockNoAdmittedTupleDropped(t *testing.T) {
	const clients, perClient = 4, 3000
	srv, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{{
			Name:   "acme",
			Policy: ingest.Block,
			// A deliberately tiny queue so the full-queue blocking path
			// runs constantly.
			QueueCap: 16,
			// A shaping contract well below the offered rate so the
			// bucket-wait path runs too.
			Rate:  200000,
			Burst: 64,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var seenMu sync.Mutex
	seen := make([][]uint64, clients)
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		seenMu.Lock()
		seen[tp.Words[1]] = append(seen[tp.Words[1]], tp.Words[0])
		seenMu.Unlock()
	}}
	p := buildPipeline(t, srv, snk, &punctCounter{}, pe.Config{Model: pe.Dynamic, Threads: 2})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := ingest.Dial(srv.Addr(), "acme")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perClient; i++ {
				if err := c.Send(tuple.NewData(uint64(i), uint64(cl))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := c.Close(); err != nil {
				t.Error(err)
			}
		}(cl)
	}
	wg.Wait()
	waitFor(t, 30*time.Second, "all offered tuples admitted", func() bool {
		return srv.Metrics().Snapshot().Admitted >= clients*perClient
	})
	stopWait(t, p)
	sn := srv.Snapshot()
	if sn.Totals.Shed != 0 {
		t.Fatalf("Block policy shed %d tuples", sn.Totals.Shed)
	}
	if got := snk.Count(); got != clients*perClient {
		t.Fatalf("sink saw %d tuples, want %d: admitted tuples were dropped", got, clients*perClient)
	}
	for cl := 0; cl < clients; cl++ {
		if len(seen[cl]) != perClient {
			t.Fatalf("client %d: %d tuples survived, want %d", cl, len(seen[cl]), perClient)
		}
		for i, v := range seen[cl] {
			if v != uint64(i) {
				t.Fatalf("client %d: position %d holds %d — FIFO order broken", cl, i, v)
			}
		}
	}
}

// TestShedOldestFIFOAndPunctSurvival fills a tiny shed-oldest queue
// with far more data than it can hold while the pump is NOT running,
// then starts the runtime and checks the two survival properties: the
// survivors arrive in FIFO order, and every window punctuation is
// delivered even though almost all data around it was shed.
func TestShedOldestFIFOAndPunctSurvival(t *testing.T) {
	const N, every = 2000, 100 // 20 window marks among 2000 tuples
	srv, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{{Name: "acme", Policy: ingest.ShedOldest, QueueCap: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var seenMu sync.Mutex
	var seen []uint64
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		seenMu.Lock()
		seen = append(seen, tp.Words[0])
		seenMu.Unlock()
	}}
	pc := &punctCounter{}
	p := buildPipeline(t, srv, snk, pc, pe.Config{Model: pe.Dynamic, Threads: 2})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// Offer the whole load before the pump exists: the queue sheds its
	// oldest entries over and over, parking any punctuation victims.
	c, err := ingest.Dial(srv.Addr(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if err := c.Send(tuple.NewData(uint64(i))); err != nil {
			t.Fatal(err)
		}
		if i%every == every-1 {
			c.Send(tuple.Window())
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// All dispositions are settled before the runtime starts (Close
	// returns after the server read the whole stream? No — Close only
	// flushes the socket). Wait for the server to account for every
	// offered tuple first.
	waitFor(t, 10*time.Second, "all offers accounted", func() bool {
		s := srv.Metrics().Snapshot()
		depth := 0
		for _, tn := range srv.Snapshot().Tenants {
			depth = tn.Depth
		}
		return s.Shed+uint64(depth) >= N // puncts park, data queues or sheds
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "queues to drain", func() bool {
		for _, tn := range srv.Snapshot().Tenants {
			if tn.Depth > 0 {
				return false
			}
		}
		return true
	})
	stopWait(t, p)

	if got := pc.n.Load(); got != N/every {
		t.Fatalf("%d window marks delivered, want %d: punctuation was shed", got, N/every)
	}
	seenMu.Lock()
	defer seenMu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no data survived at all")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("survivors out of order at %d: %d after %d", i, seen[i], seen[i-1])
		}
	}
	sn := srv.Snapshot()
	if sn.Totals.Shed == 0 {
		t.Fatal("overload run shed nothing — the test offered too little")
	}
	// Conservation: every data tuple was either shed or reached the sink.
	if got := sn.Totals.Shed + snk.Count(); got != N {
		t.Fatalf("shed %d + delivered %d != offered %d", sn.Totals.Shed, snk.Count(), N)
	}
}

// TestShedNewestKeepsBacklog checks the other shed flavor: with the
// pump stopped, the first QueueCap tuples survive and later arrivals
// are refused — the mirror image of shed-oldest.
func TestShedNewestKeepsBacklog(t *testing.T) {
	const N, qcap = 500, 16
	srv, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{{Name: "acme", Policy: ingest.ShedNewest, QueueCap: qcap}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var seenMu sync.Mutex
	var seen []uint64
	snk := &ops.Sink{OnTuple: func(tp tuple.Tuple) {
		seenMu.Lock()
		seen = append(seen, tp.Words[0])
		seenMu.Unlock()
	}}
	p := buildPipeline(t, srv, snk, &punctCounter{}, pe.Config{Model: pe.Dynamic, Threads: 2})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := ingest.Dial(srv.Addr(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if err := c.Send(tuple.NewData(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "all offers accounted", func() bool {
		return srv.Metrics().Snapshot().Shed >= N-qcap
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	stopWait(t, p)
	seenMu.Lock()
	defer seenMu.Unlock()
	if len(seen) != qcap {
		t.Fatalf("%d survivors, want the first %d", len(seen), qcap)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("survivor %d is %d: shed-newest must keep the oldest backlog intact", i, v)
		}
	}
}
