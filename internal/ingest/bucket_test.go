package ingest

import (
	"sync"
	"testing"
	"time"
)

// TestBucketConformance checks the GCRA arithmetic: a full burst is
// admitted instantly, the next take reports the per-tuple wait, and
// tokens come back as time passes.
func TestBucketConformance(t *testing.T) {
	b := newBucket(1000, 10) // 1ms per tuple, 10-deep burst
	now := time.Now().UnixNano()
	for i := 0; i < 10; i++ {
		ok, _ := b.take(now)
		if !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, wait := b.take(now)
	if ok {
		t.Fatal("take past burst conformed")
	}
	if wait <= 0 || wait > time.Millisecond {
		t.Fatalf("wait = %v, want (0, 1ms]", wait)
	}
	// One tuple's worth of time later there is exactly one token.
	later := now + int64(time.Millisecond)
	if ok, _ := b.take(later); !ok {
		t.Fatal("token did not come back after one interval")
	}
	if ok, _ := b.take(later); ok {
		t.Fatal("second token appeared from nowhere")
	}
}

// TestBucketFill checks the debugz gauge's range and direction.
func TestBucketFill(t *testing.T) {
	b := newBucket(1000, 10)
	now := time.Now().UnixNano()
	if f := b.fill(now); f != 0 {
		t.Fatalf("fresh bucket fill = %v, want 0", f)
	}
	for i := 0; i < 10; i++ {
		b.take(now)
	}
	if f := b.fill(now); f < 0.9 || f > 1 {
		t.Fatalf("exhausted bucket fill = %v, want ~1", f)
	}
}

// TestBucketConcurrentRate races many takers against one bucket and
// checks the admitted count never exceeds the contract: burst plus
// rate×elapsed, regardless of interleaving. This is the property the
// single-CAS design has to uphold.
func TestBucketConcurrentRate(t *testing.T) {
	const rate, burst, takers = 50000, 100, 8
	b := newBucket(rate, burst)
	start := time.Now()
	var wg sync.WaitGroup
	admitted := make([]int, takers)
	for g := 0; g < takers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Since(start) < 50*time.Millisecond {
				if ok, _ := b.take(time.Now().UnixNano()); ok {
					admitted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := 0
	for _, n := range admitted {
		total += n
	}
	limit := burst + int(float64(rate)*elapsed.Seconds()) + burst/10 // slack for timer skew
	if total > limit {
		t.Fatalf("admitted %d > contract %d over %v", total, limit, elapsed)
	}
	if total < burst {
		t.Fatalf("admitted %d < burst %d: bucket refused its own allowance", total, burst)
	}
}
