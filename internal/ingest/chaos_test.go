package ingest_test

// Chaos soak for the network front door: flooding, wedged-reader, and
// connection-reset faults fire on seeded schedules while concurrent
// clients overdrive a two-class tenant mix through a live PE with the
// stall watchdog armed. The invariants are the robustness acceptance
// criteria: the run finishes (no deadlock), the drain is clean, the
// watchdog never fires, and the admission boundary conserves exactly —
// every admitted tuple reaches the sink, no more, no fewer.

import (
	"sync"
	"testing"
	"time"

	"streams/internal/fault"
	"streams/internal/ingest"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/tuple"
)

func TestChaosIngest(t *testing.T) {
	const (
		clients   = 3 // per tenant
		perClient = 4000
	)
	inj := fault.New(fault.Config{
		Seed:            42,
		FloodRate:       0.01,
		ClientSlowRate:  0.002,
		ClientSlowFor:   200 * time.Microsecond,
		ClientResetRate: 0.0002,
	})
	srv, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{
			// Gold holds a loss-free contract: Block policy, generous
			// shaping bucket, guaranteed class.
			{Name: "gold", Policy: ingest.Block, Rate: 500000, Burst: 1024, Guaranteed: true},
			// Bronze is policed hard and shed under pressure. The
			// contract is set low enough that its clients overdrive it
			// even when the race detector and a loaded machine slow the
			// sender goroutines — at 20000/s the throttle assertion
			// below was timing-dependent.
			{Name: "bronze", Policy: ingest.ShedOldest, Rate: 2000, Burst: 128, QueueCap: 256},
		},
		Fault: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	snk := &ops.Sink{}
	p := buildPipeline(t, srv, snk, &punctCounter{}, pe.Config{
		Model:            pe.Dynamic,
		Threads:          2,
		WatchdogInterval: 100 * time.Millisecond,
		Fault:            inj, // the same injector serves the operator seams (all zero-rate here)
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, tenant := range []string{"gold", "bronze"} {
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(tenant string, cl int) {
				defer wg.Done()
				c, err := ingest.Dial(srv.Addr(), tenant)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < perClient; i++ {
					if err := c.Send(tuple.NewData(uint64(i), uint64(cl))); err != nil {
						// A seeded reset severed the connection under us:
						// that is the chaos working, not a failure.
						c.Abort()
						return
					}
					if i%256 == 255 {
						if err := c.Flush(); err != nil {
							c.Abort()
							return
						}
					}
				}
				c.Close()
			}(tenant, cl)
		}
	}
	wg.Wait()

	// Wait for the readers to finish consuming what the clients wrote,
	// then for the pump to absorb whatever the faults left queued. The
	// open-connection gauge matters: a client can complete its whole
	// stream into kernel socket buffers before the server's reader
	// goroutines catch up, and stopping on "queues empty" alone would
	// then sever the connections before admission ever saw the data.
	waitFor(t, 20*time.Second, "connections to settle and queues to drain", func() bool {
		sn := srv.Snapshot()
		if sn.Open > 0 {
			return false
		}
		for _, tn := range sn.Tenants {
			if tn.Depth > 0 {
				return false
			}
		}
		return true
	})
	stopWait(t, p)

	sn := srv.Snapshot()
	// Conservation at the admission boundary: the sink must see exactly
	// the admitted tuples — shed and throttled traffic never leaks
	// through, admitted traffic never vanishes.
	if got := snk.Count(); got != sn.Totals.Admitted {
		t.Fatalf("sink saw %d tuples, admission recorded %d", got, sn.Totals.Admitted)
	}
	// Bronze's contract is far below its offered rate: the policer and
	// shedder must have engaged.
	if sn.Totals.Throttled == 0 {
		t.Fatalf("bronze was never throttled despite a heavily overdriven contract; totals %+v tenants %+v", sn.Totals, sn.Tenants)
	}
	// The flood fault really ran.
	if inj.Fired(fault.ClientFlood) == 0 {
		t.Fatal("flood fault never fired")
	}
	// The scheduler's watchdog stayed quiet: chaos at the edge must not
	// stall the runtime's threads.
	if stalls := p.SchedStats().Faults.WatchdogStalls; stalls != 0 {
		t.Fatalf("watchdog reported %d stalled threads during the soak", stalls)
	}
	// Gold's loss-free contract held even under chaos: a gold client
	// either died to a seeded reset mid-stream or got every tuple in.
	for _, tn := range sn.Tenants {
		if tn.Name == "gold" && tn.Shed != 0 {
			t.Fatalf("gold (Block policy) shed %d tuples", tn.Shed)
		}
	}
}
