// Package ingest is the runtime's network front door: a TCP/HTTP
// listener that accepts many concurrent client connections and feeds
// their tuples into a stream graph's source port, with per-tenant
// admission control so offered load beyond capacity degrades service
// gracefully instead of collapsing it.
//
// The Röger/Mayer survey frames elasticity and load shedding as the two
// complementary overload responses; the runtime already has the
// elasticity half (the PE's adaptation loop), and this package supplies
// the shedding/admission half. Following Elasticutor's per-executor
// load model, every admission decision is per-tenant — a token bucket
// contract, a bounded queue, a shed policy, a priority class — so one
// hot tenant cannot starve the rest.
//
// Data path: connection readers decode frames (the xport wire layout)
// and run admission — token bucket, overload gate, bounded queue with
// the tenant's policy. A single pump goroutine, which is the graph's
// source operator thread (Server implements graph.Source), drains the
// tenant queues in strict priority order — guaranteed tenants before
// best-effort — and submits into the runtime, where the standard
// back-pressure path (full-queue reSchedule self-help) takes over.
// Under the Block policy a full tenant queue blocks the connection
// reader, which propagates back-pressure to the client through TCP; the
// shed policies instead drop from the queue's head (shed-oldest, bounds
// staleness) or refuse the arrival (shed-newest, bounds churn).
//
// Shutdown is a graceful drain: stop accepting, sever client
// connections, flush every already-admitted tuple into the runtime
// within the drain deadline, then return from Run so the runtime's
// final punctuation and the PE's Shutdown/WaitTimeout bounds do the
// rest.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/lfq"
	"streams/internal/metrics"
	"streams/internal/trace"
	"streams/internal/tuple"
	"streams/internal/xport"
)

// Wire protocol: a connection opens with the preamble — magic, version,
// tenant-name length and name — then carries frames in the xport layout
// (kind byte, sequence number, payload words; see xport.FrameSize).
// The stream is one-way like an xport link; a client signals clean end
// of stream with a FinalMark frame, which closes the connection but is
// NOT forwarded into the graph (the runtime emits the source's final
// punctuation itself when the server drains). Connections whose first
// bytes are not the magic are served as HTTP: POST /ingest?tenant=NAME
// with a body of concatenated frames returns a JSON disposition count.
const (
	magic   = "SPLN"
	version = 1
	// maxTenantName bounds the preamble's name field.
	maxTenantName = 256
)

// Policy selects what a tenant's full queue does with load.
type Policy uint8

const (
	// Block makes the connection reader wait for queue space: loss-free
	// admission, with back-pressure propagated to the client through
	// TCP. The rate limiter shapes (delays) rather than polices (drops)
	// under this policy, so an admitted tuple is never dropped.
	Block Policy = iota
	// ShedOldest drops from the queue's head to make room for new
	// arrivals: bounded staleness, freshest data survives.
	ShedOldest
	// ShedNewest refuses the new arrival when the queue is full: the
	// backlog drains in order, arrivals during overload are dropped.
	ShedNewest
)

// String implements fmt.Stringer; the names double as flag values.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case ShedOldest:
		return "shed-oldest"
	case ShedNewest:
		return "shed-newest"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy parses a Policy name as accepted by streamsim flags.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "block":
		return Block, nil
	case "shed-oldest", "oldest":
		return ShedOldest, nil
	case "shed-newest", "newest":
		return ShedNewest, nil
	default:
		return 0, fmt.Errorf("ingest: unknown policy %q (block, shed-oldest, shed-newest)", s)
	}
}

// TenantConfig is one tenant's admission contract.
type TenantConfig struct {
	// Name identifies the tenant on the wire (preamble / query param).
	Name string
	// Rate is the token-bucket rate in tuples/s; 0 leaves the tenant
	// unmetered (queue policy only).
	Rate float64
	// Burst is the bucket depth in tuples. Default: Rate/10 (100ms of
	// contracted rate), minimum 16.
	Burst int
	// QueueCap bounds the tenant's admission queue; rounded up to a
	// power of two. Default 1024.
	QueueCap int
	// Policy selects the full-queue behavior.
	Policy Policy
	// Guaranteed marks the priority class: guaranteed tenants are
	// pumped first and are exempt from the global overload gate, so
	// best-effort traffic is shed before guaranteed traffic ever is.
	Guaranteed bool
}

// Config parametrizes a Server.
type Config struct {
	// Tenants is the static tenant set. At least one is required.
	Tenants []TenantConfig
	// Metrics receives the admission meters; nil allocates a private
	// set (reachable via Metrics()).
	Metrics *metrics.Ingest
	// ShedAge, if non-nil, receives the queue residence time of every
	// shed-oldest victim — how stale the dropped data was.
	ShedAge *metrics.Histogram
	// Fault arms the client-facing chaos seams (ClientSlow,
	// ClientReset, ClientFlood). Nil means no injection.
	Fault *fault.Injector
	// Tracer, if non-nil, receives admit/shed/throttle instants on
	// TraceRing. The ring is shared by connection readers and the pump,
	// so emission is serialized by a mutex — fine for these slow-path,
	// per-batch events, unlike the scheduler's per-decision rings.
	Tracer *trace.Tracer
	// TraceRing is the tracer ring index for ingest events.
	TraceRing int
	// IdleTimeout evicts a connection that has not completed a frame
	// within it — both idle clients and slow-loris dribblers hold
	// resources no longer than this. Default 10s.
	IdleTimeout time.Duration
	// DrainDeadline bounds the shutdown flush of admitted tuples.
	// Default 5s; the PE overrides it with its shutdown budget through
	// SetDrainDeadline.
	DrainDeadline time.Duration
	// Backlog, if set with BacklogLimit > 0, is polled by the pump as
	// the global overload gate (pe.Backlog is the intended source):
	// while it exceeds BacklogLimit, best-effort tuples are shed at
	// admission instead of queued.
	Backlog      func() int
	BacklogLimit int
	// TagWord, if in [0, PayloadWords), makes admission write the
	// tenant ID into that payload word so sinks can attribute tuples
	// to priority classes. Default -1 (off).
	TagWord int
	// OpName is the source operator's diagnostic name. Default
	// "Ingest".
	OpName string
}

// item is one queued admission: the tuple and its enqueue time, kept so
// a shed-oldest victim's staleness can be measured.
type item struct {
	t  tuple.Tuple
	at int64
}

// tenant is one tenant's runtime state.
type tenant struct {
	id  int32
	cfg TenantConfig
	// bkt is nil for unmetered tenants.
	bkt *bucket
	q   *lfq.MPMC[item]
	// puncts is the punctuation overflow: window punctuation is never
	// shed, so when a shed policy would have to drop one (as the
	// arrival or as a victim) it is parked here and drained by the
	// pump ahead of the queue. Slow path only.
	poMu   sync.Mutex
	puncts []tuple.Tuple

	admitted  atomic.Uint64 // submitted into the runtime by the pump
	shed      atomic.Uint64 // dropped at the door or as queue victims
	throttled atomic.Uint64 // refused (or delayed, under Block) by the bucket
}

// depth returns the tenant's current queue occupancy including parked
// punctuation.
func (tn *tenant) depth() int {
	tn.poMu.Lock()
	po := len(tn.puncts)
	tn.poMu.Unlock()
	return tn.q.Len() + po
}

// Server is the ingest front end. It implements graph.Source: place it
// as a source node and the PE's source thread becomes the admission
// pump. Listen may be called before or after the PE starts; tuples
// admitted before Run simply wait in the tenant queues.
type Server struct {
	cfg     Config
	met     *metrics.Ingest
	tenants []*tenant
	byName  map[string]*tenant
	// order is the pump's strict-priority service order: guaranteed
	// tenants first, then best-effort.
	order []*tenant

	ln      net.Listener
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	connWG  sync.WaitGroup
	connSeq atomic.Uint64
	// openConns gauges currently-open client connections: incremented
	// when a connection is registered, decremented when its serve
	// goroutine exits. Tests and panels use it to tell "no data queued"
	// from "data still in flight behind a lagging reader".
	openConns atomic.Int64
	draining  atomic.Bool
	overload  atomic.Bool
	drainNs   atomic.Int64
	// lastPoll is the pump's overload-poll throttle; pump-thread only.
	lastPoll int64

	emitMu sync.Mutex
}

// NewServer validates cfg and builds a Server.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("ingest: no tenants configured")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewIngest(16)
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 10 * time.Second
	}
	if cfg.DrainDeadline <= 0 {
		cfg.DrainDeadline = 5 * time.Second
	}
	if cfg.TagWord == 0 {
		cfg.TagWord = -1
	}
	if cfg.TagWord >= tuple.PayloadWords {
		return nil, fmt.Errorf("ingest: TagWord %d out of range", cfg.TagWord)
	}
	s := &Server{cfg: cfg, met: cfg.Metrics, byName: make(map[string]*tenant), conns: make(map[net.Conn]struct{})}
	s.drainNs.Store(int64(cfg.DrainDeadline))
	for i, tc := range cfg.Tenants {
		if tc.Name == "" || len(tc.Name) > maxTenantName {
			return nil, fmt.Errorf("ingest: tenant %d has an invalid name %q", i, tc.Name)
		}
		if _, dup := s.byName[tc.Name]; dup {
			return nil, fmt.Errorf("ingest: duplicate tenant %q", tc.Name)
		}
		if tc.QueueCap <= 0 {
			tc.QueueCap = 1024
		}
		capPow := 1
		for capPow < tc.QueueCap {
			capPow <<= 1
		}
		tn := &tenant{id: int32(i), cfg: tc, q: lfq.NewMPMC[item](capPow)}
		if tc.Rate > 0 {
			burst := tc.Burst
			if burst <= 0 {
				burst = int(tc.Rate / 10)
				if burst < 16 {
					burst = 16
				}
			}
			tn.bkt = newBucket(tc.Rate, burst)
		}
		s.tenants = append(s.tenants, tn)
		s.byName[tc.Name] = tn
	}
	for _, tn := range s.tenants {
		if tn.cfg.Guaranteed {
			s.order = append(s.order, tn)
		}
	}
	for _, tn := range s.tenants {
		if !tn.cfg.Guaranteed {
			s.order = append(s.order, tn)
		}
	}
	return s, nil
}

// Metrics returns the server's admission meter set.
func (s *Server) Metrics() *metrics.Ingest { return s.met }

// Name implements graph.Operator.
func (s *Server) Name() string {
	if s.cfg.OpName == "" {
		return "Ingest"
	}
	return s.cfg.OpName
}

// Process implements graph.Operator; sources receive no input.
func (s *Server) Process(graph.Submitter, tuple.Tuple, int) {}

// SetDrainDeadline is the PE's shutdown-budget hand-off (see pe.Start):
// the flush of admitted tuples on stop must fit in the same bound the
// scheduler's own shutdown gets.
func (s *Server) SetDrainDeadline(d time.Duration) {
	if d > 0 {
		s.drainNs.Store(int64(d))
	}
}

// Listen opens the front door on addr and starts accepting connections.
// Call before the PE starts to know the bound address (Addr).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// Listener closed or broken outside a drain: stop accepting;
			// existing connections keep streaming.
			return
		}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.openConns.Add(1)
		s.connMu.Unlock()
		tid := int(s.connSeq.Add(1))
		s.met.Conns.Add(tid, 1)
		go s.serve(conn, tid)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	conn.Close()
	s.openConns.Add(-1)
	s.connWG.Done()
}

// serve sniffs the protocol and runs the connection to completion.
func (s *Server) serve(conn net.Conn, tid int) {
	defer s.dropConn(conn)
	br := bufio.NewReaderSize(conn, 16<<10)
	conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	head, err := br.Peek(len(magic))
	if err != nil {
		return
	}
	if string(head) == magic {
		s.serveFrames(conn, br, tid)
		return
	}
	s.serveHTTP(conn, br, tid)
}

// readPreamble consumes the magic/version/tenant preamble.
func (s *Server) readPreamble(br *bufio.Reader) (*tenant, error) {
	var pre [len(magic) + 1 + 2]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, err
	}
	if string(pre[:len(magic)]) != magic || pre[len(magic)] != version {
		return nil, fmt.Errorf("ingest: bad preamble %q", pre[:])
	}
	n := int(binary.BigEndian.Uint16(pre[len(magic)+1:]))
	if n == 0 || n > maxTenantName {
		return nil, fmt.Errorf("ingest: tenant name length %d out of range", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	tn := s.byName[string(name)]
	if tn == nil {
		return nil, fmt.Errorf("ingest: unknown tenant %q", name)
	}
	return tn, nil
}

// serveFrames runs the binary protocol: preamble, then frames until
// FinalMark, error, eviction, or drain.
func (s *Server) serveFrames(conn net.Conn, br *bufio.Reader, tid int) {
	tn, err := s.readPreamble(br)
	if err != nil {
		s.met.Rejected.Add(tid, 1)
		return
	}
	inj := s.cfg.Fault
	var buf [xport.FrameSize]byte
	for !s.draining.Load() {
		// The deadline covers one whole frame: an idle client times out
		// between frames, a slow-loris dribbler times out inside one.
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if inj.Should(fault.ClientSlow) {
			// A wedged reader: frames stack up in the kernel buffer and
			// back-pressure the client, exactly like a stalled consumer.
			time.Sleep(inj.Delay(fault.ClientSlow))
		}
		if inj.Should(fault.ClientReset) {
			// Peer vanishes mid-stream. Closing before the read models
			// the reset without leaving a half-consumed frame behind.
			return
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.met.Evicted.Add(tid, 1)
			}
			return
		}
		t, err := xport.DecodeFrame(buf[:])
		if err != nil {
			s.met.Rejected.Add(tid, 1)
			return
		}
		if t.Kind == tuple.FinalMark {
			// Client end-of-stream. Not forwarded: the runtime emits the
			// source's final punctuation when the server itself drains.
			return
		}
		s.admit(tn, t, tid)
		if inj.Should(fault.ClientFlood) {
			// One extra copy per firing: a burst past the client's
			// nominal rate that admission must absorb or shed. Exactly
			// one, so chaos tests can account for the surplus via the
			// injector's fired count.
			s.admit(tn, t, tid)
		}
	}
}

// Disposition is what admission did with one tuple.
type Disposition uint8

const (
	// Admitted: queued for the pump (it will reach the runtime, except
	// for shed-oldest victims evicted before the pump gets there).
	Admitted Disposition = iota
	// Throttled: refused by the tenant's token bucket.
	Throttled
	// Shed: dropped by a shed policy (overload gate or full queue).
	Shed
	// Rejected: structurally refused (draining, unknown tenant).
	Rejected
)

// admit runs the admission pipeline for one tuple: bucket, overload
// gate, bounded queue with the tenant's policy.
func (s *Server) admit(tn *tenant, t tuple.Tuple, tid int) Disposition {
	if s.draining.Load() {
		s.met.Rejected.Add(tid, 1)
		return Rejected
	}
	if s.cfg.TagWord >= 0 {
		t.Words[s.cfg.TagWord] = uint64(tn.id)
	}
	isPunct := t.IsPunct()
	// Punctuation is flow control, not load: it bypasses the bucket (it
	// was not part of the contracted tuple rate) and is never shed.
	if !isPunct && tn.bkt != nil {
		now := time.Now().UnixNano()
		if ok, wait := tn.bkt.take(now); !ok {
			if tn.cfg.Policy != Block {
				// Policing: the tuple exceeds the contract, drop it.
				tn.throttled.Add(1)
				s.met.Throttled.Add(tid, 1)
				s.emit(trace.KindThrottle, tn.id, 1)
				return Throttled
			}
			// Shaping: delay the tuple until it conforms, re-checking
			// for drain so shutdown is not held hostage by a long wait.
			tn.throttled.Add(1)
			s.met.Throttled.Add(tid, 1)
			s.emit(trace.KindThrottle, tn.id, 1)
			for {
				time.Sleep(wait)
				if s.draining.Load() {
					s.met.Rejected.Add(tid, 1)
					return Rejected
				}
				var ok bool
				ok, wait = tn.bkt.take(time.Now().UnixNano())
				if ok {
					break
				}
			}
		}
	}
	// Global overload gate: while the runtime itself is backlogged,
	// best-effort data is shed at the door — queuing it would only
	// trade memory for staleness. Guaranteed tenants pass; their
	// protection is the point of the priority class.
	if !isPunct && !tn.cfg.Guaranteed && s.overload.Load() {
		tn.shed.Add(1)
		s.met.Shed.Add(tid, 1)
		s.emit(trace.KindShed, tn.id, 1)
		return Shed
	}
	if isPunct {
		// Punctuation survives every policy: a full queue parks it in
		// the overflow the pump drains first.
		if s.tryPush(tn, t) {
			return Admitted
		}
		tn.poMu.Lock()
		tn.puncts = append(tn.puncts, t)
		tn.poMu.Unlock()
		return Admitted
	}
	switch tn.cfg.Policy {
	case Block:
		for {
			if s.tryPushWait(tn, t) {
				return Admitted
			}
			if s.draining.Load() {
				s.met.Rejected.Add(tid, 1)
				return Rejected
			}
			// Full: wait for the pump. This sleep is the back-pressure
			// seam — the reader stalls, the socket buffer fills, the
			// client's write blocks.
			time.Sleep(100 * time.Microsecond)
		}
	case ShedNewest:
		if s.tryPushWait(tn, t) {
			return Admitted
		}
		tn.shed.Add(1)
		s.met.Shed.Add(tid, 1)
		s.emit(trace.KindShed, tn.id, 1)
		return Shed
	default: // ShedOldest
		for {
			if s.tryPushWait(tn, t) {
				return Admitted
			}
			var victim item
			if !tn.q.Pop(&victim) {
				continue // lost the race to the pump; queue has room now
			}
			if victim.t.IsPunct() {
				tn.poMu.Lock()
				tn.puncts = append(tn.puncts, victim.t)
				tn.poMu.Unlock()
				continue
			}
			tn.shed.Add(1)
			s.met.Shed.Add(victimTid(victim), 1)
			if s.cfg.ShedAge != nil {
				s.cfg.ShedAge.Record(victimTid(victim), time.Duration(time.Now().UnixNano()-victim.at))
			}
			s.emit(trace.KindShed, tn.id, 1)
		}
	}
}

// victimTid picks a metric shard for a shed victim (any value works;
// Counter masks it).
func victimTid(it item) int { return int(it.t.Seq) }

// tryPush attempts one enqueue, retrying only transient slot busyness.
func (s *Server) tryPush(tn *tenant, t tuple.Tuple) bool {
	return s.tryPushWait(tn, t)
}

// tryPushWait pushes unless the queue is genuinely full, absorbing
// PushBusy (a consumer mid-pop) with a brief spin.
func (s *Server) tryPushWait(tn *tenant, t tuple.Tuple) bool {
	it := item{t: t, at: time.Now().UnixNano()}
	for {
		switch tn.q.PushEx(it) {
		case lfq.PushOK:
			return true
		case lfq.PushFull:
			return false
		default: // PushBusy: transient, the slot is being vacated
			continue
		}
	}
}

// emit serializes trace emission on the shared ingest ring. Slow path
// only (throttle/shed decisions and pump batches, not per-tuple).
func (s *Server) emit(k trace.Kind, tenantID int32, count uint32) {
	tr := s.cfg.Tracer
	if !tr.On() {
		return
	}
	s.emitMu.Lock()
	tr.Emit(s.cfg.TraceRing, k, trace.PackPair(tenantID, count))
	s.emitMu.Unlock()
}

// Run implements graph.Source: the admission pump. It drains tenant
// queues in strict priority order into the runtime until stop closes,
// then performs the graceful drain: stop accepting, sever connections,
// flush admitted tuples within the drain deadline.
func (s *Server) Run(out graph.Submitter, stop <-chan struct{}) {
	const batch = 256
	idle := time.Duration(0)
	for {
		select {
		case <-stop:
			s.beginDrain()
			s.flush(out, batch)
			return
		default:
		}
		n := s.pumpRound(out, batch)
		s.pollOverload()
		if n == 0 {
			// Nothing queued: back off up to 1ms so an idle front end
			// does not spin a core, while staying responsive to bursts.
			if idle < time.Millisecond {
				idle += 50 * time.Microsecond
			}
			time.Sleep(idle)
		} else {
			idle = 0
		}
	}
}

// pumpRound drains up to batch tuples from every tenant, guaranteed
// tenants first, and returns the number submitted.
func (s *Server) pumpRound(out graph.Submitter, batch int) int {
	total := 0
	for _, tn := range s.order {
		total += s.drainTenant(out, tn, batch)
	}
	return total
}

// drainTenant submits parked punctuation, then up to batch queued
// tuples, charging admission at this seam — "admitted" means handed to
// the runtime, which makes the disposition counters conserve exactly:
// every offered tuple ends in exactly one of admitted, shed, throttled,
// rejected, or is still queued.
func (s *Server) drainTenant(out graph.Submitter, tn *tenant, batch int) int {
	var po []tuple.Tuple
	tn.poMu.Lock()
	if len(tn.puncts) > 0 {
		po, tn.puncts = tn.puncts, nil
	}
	tn.poMu.Unlock()
	for _, t := range po {
		out.Submit(t, 0)
	}
	n := 0
	var it item
	for n < batch {
		if !tn.q.Pop(&it) {
			break
		}
		out.Submit(it.t, 0)
		n++
	}
	if tot := n + len(po); tot > 0 {
		tn.admitted.Add(uint64(tot))
		s.met.Admitted.Add(int(tn.id), uint64(tot))
		s.emit(trace.KindAdmit, tn.id, uint32(tot))
	}
	return n + len(po)
}

// pollOverload refreshes the global overload gate from the runtime
// backlog, at most once per millisecond (the poll walks every queue).
func (s *Server) pollOverload() {
	if s.cfg.Backlog == nil || s.cfg.BacklogLimit <= 0 {
		return
	}
	now := time.Now().UnixNano()
	if now-s.lastPoll < int64(time.Millisecond) {
		return
	}
	s.lastPoll = now
	s.overload.Store(s.cfg.Backlog() > s.cfg.BacklogLimit)
}

// beginDrain closes the front door: no new connections, no new
// admissions, existing connections severed so their readers exit.
func (s *Server) beginDrain() {
	if s.draining.Swap(true) {
		return
	}
	s.connMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
}

// flush pushes every remaining admitted tuple into the runtime, bounded
// by the drain deadline.
func (s *Server) flush(out graph.Submitter, batch int) {
	deadline := time.Now().Add(time.Duration(s.drainNs.Load()))
	for {
		if s.pumpRound(out, batch) == 0 {
			empty := true
			for _, tn := range s.tenants {
				if tn.depth() > 0 {
					empty = false
					break
				}
			}
			if empty {
				return
			}
		}
		if !time.Now().Before(deadline) {
			return
		}
	}
}

// Close severs the front end outside a PE run (tests, error paths).
// Safe to call repeatedly and alongside Run's own drain.
func (s *Server) Close() { s.beginDrain() }

// Overloaded reports whether the global overload gate is currently
// tripped (the runtime backlog exceeded BacklogLimit at the last pump
// poll). One atomic load — cheap enough for the flight-recorder
// trigger check every observability sampling tick.
func (s *Server) Overloaded() bool { return s.overload.Load() }

// TenantSnapshot is one tenant's point-in-time admission state.
type TenantSnapshot struct {
	Name       string  `json:"name"`
	Guaranteed bool    `json:"guaranteed"`
	Policy     string  `json:"policy"`
	Admitted   uint64  `json:"admitted"`
	Shed       uint64  `json:"shed"`
	Throttled  uint64  `json:"throttled"`
	Depth      int     `json:"depth"`
	Cap        int     `json:"cap"`
	Fill       float64 `json:"bucket_fill"`
}

// Snapshot is the server-wide admission state, read in one pass so
// panels cannot tear ratios across counters.
type Snapshot struct {
	Totals     metrics.IngestSnapshot `json:"totals"`
	Tenants    []TenantSnapshot       `json:"tenants"`
	Open       int                    `json:"open_conns"`
	Overloaded bool                   `json:"overloaded"`
	Draining   bool                   `json:"draining"`
}

// Snapshot reads every tenant and the global meters.
func (s *Server) Snapshot() Snapshot {
	now := time.Now().UnixNano()
	out := Snapshot{
		Totals:     s.met.Snapshot(),
		Open:       int(s.openConns.Load()),
		Overloaded: s.overload.Load(),
		Draining:   s.draining.Load(),
	}
	for _, tn := range s.tenants {
		ts := TenantSnapshot{
			Name:       tn.cfg.Name,
			Guaranteed: tn.cfg.Guaranteed,
			Policy:     tn.cfg.Policy.String(),
			Admitted:   tn.admitted.Load(),
			Shed:       tn.shed.Load(),
			Throttled:  tn.throttled.Load(),
			Depth:      tn.depth(),
			Cap:        tn.q.Cap(),
		}
		if tn.bkt != nil {
			ts.Fill = tn.bkt.fill(now)
		}
		out.Tenants = append(out.Tenants, ts)
	}
	return out
}

// ParseTenants parses the streamsim -tenants spec: comma-separated
// name:rate[:burst[:policy[:class]]] entries, e.g.
//
//	gold:50000:500:block:guaranteed,bronze:50000::shed-oldest
//
// Empty fields keep defaults; class is "guaranteed" or "besteffort"
// (default). defPolicy applies when an entry omits its policy.
func ParseTenants(spec string, defPolicy Policy) ([]TenantConfig, error) {
	var out []TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		tc := TenantConfig{Name: fields[0], Policy: defPolicy}
		if tc.Name == "" {
			return nil, fmt.Errorf("ingest: tenant entry %q has no name", part)
		}
		if len(fields) > 1 && fields[1] != "" {
			r, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("ingest: tenant %q rate %q invalid", tc.Name, fields[1])
			}
			tc.Rate = r
		}
		if len(fields) > 2 && fields[2] != "" {
			b, err := strconv.Atoi(fields[2])
			if err != nil || b < 0 {
				return nil, fmt.Errorf("ingest: tenant %q burst %q invalid", tc.Name, fields[2])
			}
			tc.Burst = b
		}
		if len(fields) > 3 && fields[3] != "" {
			p, err := ParsePolicy(fields[3])
			if err != nil {
				return nil, err
			}
			tc.Policy = p
		}
		if len(fields) > 4 && fields[4] != "" {
			switch strings.ToLower(fields[4]) {
			case "guaranteed", "gold":
				tc.Guaranteed = true
			case "besteffort", "best-effort":
			default:
				return nil, fmt.Errorf("ingest: tenant %q class %q invalid (guaranteed, besteffort)", tc.Name, fields[4])
			}
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, errors.New("ingest: empty tenant spec")
	}
	return out, nil
}

var _ graph.Source = (*Server)(nil)
