package ingest_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ingest"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/tuple"
	"streams/internal/xport"
)

// punctCounter is a pass-through operator that counts window
// punctuation — the probe for the "punctuation is never shed"
// guarantee.
type punctCounter struct {
	n atomic.Uint64
}

func (p *punctCounter) Name() string { return "PunctCount" }
func (p *punctCounter) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	out.Submit(t, 0)
}
func (p *punctCounter) OnPunct(_ graph.Submitter, kind tuple.Kind, _ int) {
	if kind == tuple.WindowMark {
		p.n.Add(1)
	}
}

// buildPipeline wires srv → punctCounter → sink and returns the PE.
func buildPipeline(t testing.TB, srv *ingest.Server, snk *ops.Sink, pc *punctCounter, cfg pe.Config) *pe.PE {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(srv, 0, 1)
	mid := b.AddNode(pc, 1, 1)
	b.Connect(src, 0, mid, 0)
	sn := b.AddNode(snk, 1, 0)
	b.Connect(mid, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pe.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// stopWait stops the PE and bounds the drain.
func stopWait(t testing.TB, p *pe.PE) {
	t.Helper()
	p.Stop()
	if err := p.WaitTimeout(30 * time.Second); err != nil {
		t.Fatalf("PE did not drain: %v", err)
	}
}

// TestIngestEndToEnd drives the binary protocol through a live PE: all
// offered tuples are admitted (Block policy, no contract), every one
// reaches the sink, punctuation arrives, and the drain is clean.
func TestIngestEndToEnd(t *testing.T) {
	srv, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{{Name: "acme", Policy: ingest.Block}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snk, pc := &ops.Sink{}, &punctCounter{}
	p := buildPipeline(t, srv, snk, pc, pe.Config{Model: pe.Dynamic, Threads: 2})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := ingest.Dial(srv.Addr(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	const N, puncts = 5000, 10
	for i := 0; i < N; i++ {
		if err := c.Send(tuple.NewData(uint64(i))); err != nil {
			t.Fatal(err)
		}
		if i%(N/puncts) == N/puncts-1 {
			c.Send(tuple.Window())
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "admission of all tuples", func() bool {
		return srv.Metrics().Snapshot().Admitted >= N+puncts
	})
	stopWait(t, p)
	if got := snk.Count(); got != N {
		t.Fatalf("sink saw %d tuples, want %d", got, N)
	}
	if got := pc.n.Load(); got != puncts {
		t.Fatalf("punct counter saw %d window marks, want %d", got, puncts)
	}
	sn := srv.Snapshot()
	if sn.Totals.Shed != 0 || sn.Totals.Rejected != 0 {
		t.Fatalf("loss on a loss-free run: %+v", sn.Totals)
	}
	if !sn.Draining {
		t.Fatal("snapshot after stop should report draining")
	}
}

// TestIngestHTTP exercises the HTTP face of the front door: batch POST
// with disposition accounting, the stats endpoint, keep-alive reuse,
// and unknown-tenant rejection.
func TestIngestHTTP(t *testing.T) {
	srv, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{{Name: "acme", Policy: ingest.ShedNewest, QueueCap: 4096}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snk, pc := &ops.Sink{}, &punctCounter{}
	p := buildPipeline(t, srv, snk, pc, pe.Config{Model: pe.Dynamic, Threads: 2})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer stopWait(t, p)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const N = 100
	body := make([]byte, 0, N*xport.FrameSize)
	var frame [xport.FrameSize]byte
	for i := 0; i < N; i++ {
		tp := tuple.NewData(uint64(i))
		tp.Seq = uint64(i + 1)
		xport.EncodeFrame(frame[:], tp)
		body = append(body, frame[:]...)
	}
	post := func(tenant string) (*http.Response, error) {
		fmt.Fprintf(conn, "POST /ingest?tenant=%s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n", tenant, len(body))
		if _, err := conn.Write(body); err != nil {
			return nil, err
		}
		return http.ReadResponse(newReader(conn), nil)
	}
	resp, err := post("acme")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch POST status %d", resp.StatusCode)
	}
	var counts struct {
		Admitted, Throttled, Shed, Rejected uint64
	}
	if err := json.NewDecoder(resp.Body).Decode(&counts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if counts.Admitted != N || counts.Shed != 0 {
		t.Fatalf("dispositions = %+v, want %d admitted", counts, N)
	}

	// Keep-alive: the same connection serves the stats probe.
	fmt.Fprintf(conn, "GET /ingest/stats HTTP/1.1\r\nHost: x\r\n\r\n")
	resp, err = http.ReadResponse(newReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sn ingest.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sn.Tenants) != 1 || sn.Tenants[0].Name != "acme" {
		t.Fatalf("stats snapshot = %+v", sn)
	}

	// Unknown tenant: rejected with 403, connection closed.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "POST /ingest?tenant=nobody HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
	resp, err = http.ReadResponse(newReader(conn2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown tenant status %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()

	waitFor(t, 10*time.Second, "batch to drain", func() bool { return snk.Count() == N })
}

// TestIdleEviction proves a connected-but-silent client is evicted at
// the idle deadline rather than holding resources forever.
func TestIdleEviction(t *testing.T) {
	srv, err := ingest.NewServer(ingest.Config{
		Tenants:     []ingest.TenantConfig{{Name: "acme"}},
		IdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := ingest.Dial(srv.Addr(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	waitFor(t, 5*time.Second, "idle eviction", func() bool {
		return srv.Metrics().Snapshot().Evicted >= 1
	})
}

// TestUnknownTenantPreamble checks the binary preamble rejects a tenant
// the server was not configured with.
func TestUnknownTenantPreamble(t *testing.T) {
	srv, err := ingest.NewServer(ingest.Config{Tenants: []ingest.TenantConfig{{Name: "acme"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := ingest.Dial(srv.Addr(), "nobody")
	if err != nil {
		t.Fatal(err)
	}
	c.Flush()
	defer c.Abort()
	waitFor(t, 5*time.Second, "preamble rejection", func() bool {
		return srv.Metrics().Snapshot().Rejected >= 1
	})
}

// TestParsePolicy covers the flag-facing parsers.
func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]ingest.Policy{
		"block": ingest.Block, "shed-oldest": ingest.ShedOldest,
		"oldest": ingest.ShedOldest, "Shed-Newest": ingest.ShedNewest,
	} {
		got, err := ingest.ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if back, err := ingest.ParsePolicy(want.String()); err != nil || back != want {
			t.Fatalf("Policy.String round trip broke for %v", want)
		}
	}
	if _, err := ingest.ParsePolicy("drop-tables"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestParseTenants(t *testing.T) {
	ts, err := ingest.ParseTenants("gold:50000:500:block:guaranteed, bronze:25000::shed-oldest", ingest.ShedNewest)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(ts))
	}
	g, b := ts[0], ts[1]
	if g.Name != "gold" || g.Rate != 50000 || g.Burst != 500 || g.Policy != ingest.Block || !g.Guaranteed {
		t.Fatalf("gold = %+v", g)
	}
	if b.Name != "bronze" || b.Rate != 25000 || b.Burst != 0 || b.Policy != ingest.ShedOldest || b.Guaranteed {
		t.Fatalf("bronze = %+v", b)
	}
	for _, bad := range []string{"", ":100", "x:abc", "x:1:-2", "x:1:1:what", "x:1:1:block:royal"} {
		if _, err := ingest.ParseTenants(bad, ingest.Block); err == nil {
			t.Fatalf("ParseTenants(%q) accepted", bad)
		}
	}
}

// newReader returns the one bufio.Reader for conn, so successive
// http.ReadResponse calls on a keep-alive connection never lose bytes
// buffered by an earlier call.
func newReader(conn net.Conn) *bufio.Reader {
	readerMu.Lock()
	defer readerMu.Unlock()
	br, ok := bufReaders[conn]
	if !ok {
		br = bufio.NewReader(conn)
		bufReaders[conn] = br
	}
	return br
}

var (
	readerMu   sync.Mutex
	bufReaders = map[net.Conn]*bufio.Reader{}
)
