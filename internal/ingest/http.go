package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"streams/internal/fault"
	"streams/internal/tuple"
	"streams/internal/xport"
)

// snapshotJSON marshals a Snapshot for the stats endpoint and debugz.
func snapshotJSON(sn Snapshot) ([]byte, error) { return json.MarshalIndent(sn, "", "  ") }

// serveHTTP runs the HTTP side of the front door on a connection whose
// first bytes were not the binary magic. Requests are read straight off
// the socket with http.ReadRequest in a keep-alive loop — the listener
// already demultiplexed the protocols, so there is no http.Server in
// the path, and the same idle-eviction deadline covers both protocols.
//
// The one endpoint is POST /ingest?tenant=NAME with a body of
// concatenated binary frames; the response is a JSON disposition count
// so batch clients can observe their own shedding. GET /ingest/stats
// returns the server Snapshot for scripted probes.
func (s *Server) serveHTTP(conn net.Conn, br *bufio.Reader, tid int) {
	for !s.draining.Load() {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		req, err := http.ReadRequest(br)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.met.Evicted.Add(tid, 1)
			}
			return
		}
		keep := s.handleRequest(conn, br, req, tid)
		req.Body.Close()
		if !keep {
			return
		}
	}
}

// handleRequest serves one request and reports whether the connection
// should be kept for another.
func (s *Server) handleRequest(conn net.Conn, br *bufio.Reader, req *http.Request, tid int) bool {
	switch {
	case req.Method == http.MethodPost && req.URL.Path == "/ingest":
		return s.handleBatch(conn, req, tid)
	case req.Method == http.MethodGet && req.URL.Path == "/ingest/stats":
		b, err := snapshotJSON(s.Snapshot())
		if err != nil {
			writeResponse(conn, http.StatusInternalServerError, "text/plain", []byte(err.Error()))
			return false
		}
		writeResponse(conn, http.StatusOK, "application/json", b)
		return true
	default:
		writeResponse(conn, http.StatusNotFound, "text/plain", []byte("ingest: POST /ingest or GET /ingest/stats\n"))
		return false
	}
}

// handleBatch admits a body of concatenated frames for one tenant.
func (s *Server) handleBatch(conn net.Conn, req *http.Request, tid int) bool {
	tn := s.byName[req.URL.Query().Get("tenant")]
	if tn == nil {
		s.met.Rejected.Add(tid, 1)
		writeResponse(conn, http.StatusForbidden, "text/plain", []byte("ingest: unknown tenant\n"))
		return false
	}
	inj := s.cfg.Fault
	var counts [4]uint64 // indexed by Disposition
	var buf [xport.FrameSize]byte
	for {
		if _, err := io.ReadFull(req.Body, buf[:]); err != nil {
			if err != io.EOF {
				s.met.Rejected.Add(tid, 1)
				writeResponse(conn, http.StatusBadRequest, "text/plain", []byte("ingest: truncated frame\n"))
				return false
			}
			break
		}
		t, err := xport.DecodeFrame(buf[:])
		if err != nil {
			s.met.Rejected.Add(tid, 1)
			writeResponse(conn, http.StatusBadRequest, "text/plain", []byte(err.Error()+"\n"))
			return false
		}
		if t.Kind == tuple.FinalMark {
			continue // end-of-batch marker; never forwarded (see serveFrames)
		}
		counts[s.admit(tn, t, tid)]++
		if inj.Should(fault.ClientFlood) {
			counts[s.admit(tn, t, tid)]++
		}
	}
	body := fmt.Sprintf("{\"admitted\":%d,\"throttled\":%d,\"shed\":%d,\"rejected\":%d}\n",
		counts[Admitted], counts[Throttled], counts[Shed], counts[Rejected])
	writeResponse(conn, http.StatusOK, "application/json", []byte(body))
	return req.ProtoAtLeast(1, 1) && !req.Close
}

// writeResponse emits a minimal HTTP/1.1 response. Content-Length is
// always set so keep-alive framing works without chunking.
func writeResponse(conn net.Conn, status int, ctype string, body []byte) {
	fmt.Fprintf(conn, "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		status, http.StatusText(status), ctype, len(body))
	conn.Write(body)
}
