package ingest_test

// BenchmarkIngestOverload is the overload SLO experiment: a two-class
// tenant mix (gold guaranteed + bronze best-effort, equal contracts)
// is offered load at 1x and 2x the contracted capacity by open-loop
// generators. The acceptance criteria from the robustness issue:
//
//   - at 2x offered load, admitted throughput stays within ~10% of the
//     contracted capacity (the admission layer polices the excess
//     rather than collapsing),
//   - shed+throttled accounts for the remainder,
//   - gold's p99 ingest-to-sink latency stays bounded while bronze
//     takes all the shedding.
//
// Run it through `make bench-ingest`, which archives the ReportMetric
// values as BENCH_ingest.json via cmd/benchjson.

import (
	"sync"
	"testing"
	"time"

	"streams/internal/ingest"
	"streams/internal/metrics"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/tuple"
)

func BenchmarkIngestOverload(b *testing.B) {
	for _, load := range []struct {
		name string
		mult float64
	}{{"1x", 1}, {"2x", 2}} {
		b.Run("load="+load.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOverloadCell(b, load.mult)
			}
		})
	}
}

// runOverloadCell runs one offered-load cell and reports its metrics.
func runOverloadCell(b *testing.B, mult float64) {
	const (
		classRate = 20000.0 // contracted tuples/s per class
		capacity  = 2 * classRate
		dur       = 300 * time.Millisecond
	)
	srv, err := ingest.NewServer(ingest.Config{
		Tenants: []ingest.TenantConfig{
			// Gold polices too (shed-newest past contract) so its
			// latency reflects scheduling, not generator back-pressure;
			// its clients stay inside the contract anyway.
			{Name: "gold", Policy: ingest.ShedNewest, Rate: classRate, Burst: 1024, Guaranteed: true, QueueCap: 4096},
			{Name: "bronze", Policy: ingest.ShedOldest, Rate: classRate, Burst: 1024, QueueCap: 4096},
		},
		// Tag admitted tuples with the tenant ID in the last payload
		// word so the sink can attribute latency to a class.
		TagWord: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	latGold := metrics.NewHistogram(8)
	latBronze := metrics.NewHistogram(8)
	snk := &ops.Sink{OnTuple: func(t tuple.Tuple) {
		if t.Stamp == 0 {
			return
		}
		d := time.Duration(time.Now().UnixNano() - t.Stamp)
		if t.Words[7] == 0 {
			latGold.Record(int(t.Words[0]), d)
		} else {
			latBronze.Record(int(t.Words[0]), d)
		}
	}}
	p := buildPipeline(b, srv, snk, &punctCounter{}, pe.Config{
		Model:   pe.Dynamic,
		Threads: 2,
		// Latency turns on source-seam stamping, which the per-class
		// histograms above read.
		Latency: metrics.NewHistogram(8),
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}

	// Gold offers its contract; bronze absorbs the rest of the offered
	// multiple, which is where the overload (if any) lands.
	goldRate := classRate
	bronzeRate := mult*capacity - goldRate
	gens := []*ingest.LoadGen{
		{Addr: srv.Addr(), Tenant: "gold", Rate: goldRate, Duration: dur},
		{Addr: srv.Addr(), Tenant: "bronze", Rate: bronzeRate, Duration: dur},
	}
	var wg sync.WaitGroup
	var sentMu sync.Mutex
	sent := uint64(0)
	start := time.Now()
	for _, g := range gens {
		wg.Add(1)
		go func(g *ingest.LoadGen) {
			defer wg.Done()
			n, err := g.Run()
			if err != nil {
				b.Error(err)
			}
			sentMu.Lock()
			sent += n
			sentMu.Unlock()
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	waitFor(b, 10*time.Second, "queues to drain", func() bool {
		for _, tn := range srv.Snapshot().Tenants {
			if tn.Depth > 0 {
				return false
			}
		}
		return true
	})
	stopWait(b, p)

	sn := srv.Snapshot()
	secs := elapsed.Seconds()
	refused := sn.Totals.Shed + sn.Totals.Throttled + sn.Totals.Rejected
	b.ReportMetric(float64(sn.Totals.Admitted)/secs, "admitted_tps")
	b.ReportMetric(float64(sent)/secs, "offered_tps")
	if sent > 0 {
		b.ReportMetric(float64(refused)/float64(sent), "shed_frac")
	}
	b.ReportMetric(float64(latGold.Snapshot().Quantile(0.99)), "gold_p99_ns")
	b.ReportMetric(float64(latBronze.Snapshot().Quantile(0.99)), "bronze_p99_ns")
}
