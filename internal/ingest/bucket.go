package ingest

import (
	"sync/atomic"
	"time"
)

// bucket is a lock-free token bucket implemented as GCRA (the generic
// cell rate algorithm): the whole state is one atomic nanosecond
// timestamp, the theoretical arrival time (TAT) of the next conforming
// tuple. A take advances the TAT by the per-tuple cost; the take
// conforms as long as the advanced TAT stays within the burst allowance
// of now. Compared with a counted bucket there is no refill loop and no
// lock — concurrent takers race one CAS, and a lost race just reloads,
// which matches the runtime's abandon-on-contention ethos.
type bucket struct {
	tat atomic.Int64
	// costNs is the token cost of one tuple: 1e9 / rate.
	costNs int64
	// burstNs is the allowance: costNs × burst tuples.
	burstNs int64
}

// newBucket returns a bucket admitting rate tuples/s with the given
// burst depth (minimum 1).
func newBucket(rate float64, burst int) *bucket {
	cost := int64(1e9 / rate)
	if cost < 1 {
		cost = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{costNs: cost, burstNs: cost * int64(burst)}
}

// take tries to reserve one tuple at time now (UnixNano). It returns
// (true, 0) when the tuple conforms, or (false, wait) where wait is how
// long the caller would have to delay the tuple for it to conform — the
// shaping interval a blocking tenant sleeps, and a policing tenant's
// signal to drop.
func (b *bucket) take(now int64) (bool, time.Duration) {
	for {
		cur := b.tat.Load()
		base := cur
		if now > base {
			base = now
		}
		next := base + b.costNs
		if over := next - now - b.burstNs; over > 0 {
			return false, time.Duration(over)
		}
		if b.tat.CompareAndSwap(cur, next) {
			return true, 0
		}
	}
}

// fill reports how much of the burst allowance is committed at time
// now, in [0, 1]: 0 means a full bucket of tokens, 1 means the next
// take would not conform.
func (b *bucket) fill(now int64) float64 {
	ahead := b.tat.Load() - now
	if ahead <= 0 {
		return 0
	}
	f := float64(ahead) / float64(b.burstNs)
	if f > 1 {
		f = 1
	}
	return f
}
