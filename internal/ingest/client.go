package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"streams/internal/tuple"
	"streams/internal/xport"
)

// Client is a binary-protocol ingest producer: one TCP connection
// streaming frames for one tenant. It is what streamsim's load
// generator and the tests speak; real clients only need the few dozen
// lines here (preamble + xport frames).
//
// A Client is not safe for concurrent use; open one per producer
// goroutine, like an xport export.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	seq  uint64
}

// Dial connects to an ingest server and sends the tenant preamble.
func Dial(addr, ten string) (*Client, error) {
	if ten == "" || len(ten) > maxTenantName {
		return nil, fmt.Errorf("ingest: invalid tenant name %q", ten)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, bw: bufio.NewWriterSize(conn, 16<<10)}
	c.bw.WriteString(magic)
	c.bw.WriteByte(version)
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(ten)))
	c.bw.Write(n[:])
	c.bw.WriteString(ten)
	return c, nil
}

// Send buffers one tuple, assigning the connection sequence number.
func (c *Client) Send(t tuple.Tuple) error {
	c.seq++
	t.Seq = c.seq
	var buf [xport.FrameSize]byte
	xport.EncodeFrame(buf[:], t)
	_, err := c.bw.Write(buf[:])
	return err
}

// Flush pushes buffered frames onto the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Close flushes, sends the end-of-stream FinalMark, and closes the
// connection.
func (c *Client) Close() error {
	c.Send(tuple.Final())
	c.bw.Flush()
	return c.conn.Close()
}

// Abort closes the connection without the end-of-stream mark — a
// client crash, from the server's point of view.
func (c *Client) Abort() error { return c.conn.Close() }

// LoadGen is an open-loop load generator: it offers tuples at a fixed
// rate regardless of what the server admits, which is the honest way to
// measure overload behavior (a closed-loop generator slows down with
// the server and hides the shedding). Payload Words[0] carries a
// per-generator monotone counter so tests can check FIFO survival.
type LoadGen struct {
	// Addr, Tenant configure the connection.
	Addr   string
	Tenant string
	// Rate is the offered load in tuples/s (required > 0).
	Rate float64
	// Duration bounds the run; Stop also ends it.
	Duration time.Duration

	sent    atomic.Uint64
	stopped atomic.Bool
	done    chan struct{}
}

// Run offers the load, returning the count of tuples written to the
// wire (whether or not admitted). Blocking-policy back-pressure shows
// up as this count falling short of Rate×Duration.
func (g *LoadGen) Run() (uint64, error) {
	g.done = make(chan struct{})
	defer close(g.done)
	c, err := Dial(g.Addr, g.Tenant)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	interval := time.Duration(float64(time.Second) / g.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	end := start.Add(g.Duration)
	next := start
	var i uint64
	for !g.stopped.Load() {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		// Open loop: send every tuple whose deadline has passed, then
		// sleep to the next one. Flush per burst, not per tuple.
		burst := 0
		for !next.After(now) {
			if err := c.Send(tuple.NewData(i, uint64(now.UnixNano()))); err != nil {
				return g.sent.Load(), err
			}
			i++
			g.sent.Add(1)
			burst++
			next = next.Add(interval)
		}
		if burst > 0 {
			if err := c.Flush(); err != nil {
				return g.sent.Load(), err
			}
		}
		if d := next.Sub(time.Now()); d > 0 {
			time.Sleep(d)
		}
	}
	return g.sent.Load(), nil
}

// Sent returns the tuples written so far (readable while running).
func (g *LoadGen) Sent() uint64 { return g.sent.Load() }

// Stop ends the run early and waits for Run to return.
func (g *LoadGen) Stop() {
	g.stopped.Store(true)
	if g.done != nil {
		<-g.done
	}
}
