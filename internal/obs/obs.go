// Package obs is the runtime's flow-observability layer: the bridge
// from the event-level substrate (trace rings, sharded counters,
// histograms) to flow-level answers — where is this pipeline
// bottlenecked, what does the whole system look like over time, and
// what happened in the seconds before a fault.
//
// Three pillars share one periodic sampler:
//
//   - Backpressure attribution. Every tick the collector reads each
//     edge's queue occupancy and the per-port blocked accounting the
//     scheduler charges on its congestion path, and Attribute rolls the
//     window up into a report naming the bottleneck operator/edge and
//     the dominant cause (consumer-slow, free-list pressure, ingest
//     shed, quarantine).
//   - Time series + OpenMetrics. The samples live in a fixed-size ring;
//     the latest one renders as an OpenMetrics text exposition behind
//     /metricz and as the /debugz/flows panel, both through the same
//     single-pass Snapshot so the views cannot drift.
//   - Flight recorder. A bounded ring of recent samples plus the trace
//     tail is dumped to a file when fault containment fires or the
//     ingest overload gate trips (detected as deltas between ticks), so
//     chaos-soak failures are post-mortemable.
//
// The sampler is pull-only: the scheduler's hot paths never call into
// this package. All charging happens at seams sched already pays for
// (the reSchedule congestion path, the per-node executed counters), so
// a runtime without a Collector pays nothing, and one with a Collector
// pays O(ports) atomic loads per tick on one background goroutine.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/ingest"
	"streams/internal/metrics"
	"streams/internal/pe"
	"streams/internal/sched"
	"streams/internal/trace"
)

// Options parametrizes a Collector.
type Options struct {
	// PE is the processing element to observe. Required; the flow
	// probes are live under the dynamic model and inert otherwise.
	PE *pe.PE
	// Ingest, if set, folds the admission front end's snapshot (totals,
	// per-tenant dispositions, overload gate) into every sample.
	Ingest *ingest.Server
	// Latency, if set, contributes end-to-end latency quantiles.
	Latency *metrics.Histogram
	// Tracer and Ring, if set, receive one bp-sample instant per tick
	// and a flightrec-dump instant per recorder trigger. The sampler
	// goroutine is the ring's only writer, per the tracer convention.
	Tracer *trace.Tracer
	Ring   int
	// Period is the sampling interval. Default 100ms.
	Period time.Duration
	// Window is the series ring length in samples. Default 120 (12s of
	// history at the default period).
	Window int
	// Recorder, if set, is armed: recorder triggers dump the sample
	// window (and trace tail) through it.
	Recorder *Recorder
	// Workload describes the run for panels and dumps.
	Workload string
}

// Sample is one sampling tick: the scheduler-wide meters plus the
// per-edge and per-node flow probes, read in one pass.
type Sample struct {
	// At is the wall-clock sample time; Elapsed is time since the
	// collector was created.
	At      time.Time     `json:"at"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Level is the thread level; Backlog the total queue occupancy.
	Level   int `json:"level"`
	Backlog int `json:"backlog"`
	// Executed and SinkDelivered are the PE-wide cumulative counts.
	Executed      uint64 `json:"executed"`
	SinkDelivered uint64 `json:"sink_delivered"`
	// Sched snapshots the scheduler's slow-path meters in one pass.
	Sched pe.SchedStats `json:"sched"`
	// Depth[i] is edge i's queue occupancy now; Resched[i] and
	// BlockedNs[i] are the cumulative congestion meters (see
	// sched.Scheduler.SampleFlow). Indexed like Collector.Edges.
	Depth     []int    `json:"depth,omitempty"`
	Resched   []uint64 `json:"resched,omitempty"`
	BlockedNs []uint64 `json:"blocked_ns,omitempty"`
	// NodeExec[n] is node n's cumulative executed-tuple count.
	NodeExec []uint64 `json:"node_exec,omitempty"`
	// Quarantined lists the node IDs fault containment has quarantined.
	Quarantined []int `json:"quarantined,omitempty"`
	// Latency quantiles (0 when latency measurement is off).
	LatCount uint64        `json:"lat_count,omitempty"`
	LatP50   time.Duration `json:"lat_p50_ns,omitempty"`
	LatP99   time.Duration `json:"lat_p99_ns,omitempty"`
	// Ingest is the admission front end's snapshot (nil without one).
	Ingest *ingest.Snapshot `json:"ingest,omitempty"`
}

// Collector owns the sampling loop and the series ring.
type Collector struct {
	o     Options
	edges []sched.Edge
	start time.Time

	mu    sync.Mutex
	ring  []Sample
	next  int    // ring write cursor
	count uint64 // total samples taken

	// Trigger-detection state, sampler-goroutine only (or the caller's
	// goroutine via SampleNow; the two never run concurrently in
	// practice, and the meters are cumulative so a race only dedups).
	prevFaults   metrics.FaultsSnapshot
	prevOverload bool

	started atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// New builds a Collector. Call Start to launch the sampler, or drive
// it manually with SampleNow (tests, one-shot tools).
func New(o Options) *Collector {
	if o.Period <= 0 {
		o.Period = 100 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 120
	}
	c := &Collector{
		o:     o,
		start: time.Now(),
		ring:  make([]Sample, o.Window),
		stop:  make(chan struct{}),
	}
	if o.PE != nil {
		c.edges = o.PE.FlowEdges()
	}
	if o.Recorder != nil {
		o.Recorder.bind(c)
	}
	return c
}

// Edges returns the static flow edges the per-edge sample slices are
// indexed by (empty under models without a scheduler).
func (c *Collector) Edges() []sched.Edge { return c.edges }

// Period returns the sampling interval in effect.
func (c *Collector) Period() time.Duration { return c.o.Period }

// Recorder returns the armed flight recorder (nil when none).
func (c *Collector) Recorder() *Recorder { return c.o.Recorder }

// Workload returns the run description given at construction.
func (c *Collector) Workload() string { return c.o.Workload }

// Start launches the background sampler. Idempotent.
func (c *Collector) Start() {
	if c == nil || c.started.Swap(true) {
		return
	}
	c.wg.Add(1)
	go c.run()
}

// Stop ends the sampler and waits for it. Idempotent; safe without
// Start.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
}

func (c *Collector) run() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.o.Period)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.SampleNow()
		}
	}
}

// SampleNow takes one sample synchronously: reads every probe, appends
// to the series ring, emits the bp-sample trace instant, and runs the
// flight-recorder trigger checks. Returns the sample.
func (c *Collector) SampleNow() Sample {
	s := c.observe()
	c.mu.Lock()
	c.ring[c.next] = s
	c.next = (c.next + 1) % len(c.ring)
	c.count++
	c.mu.Unlock()

	// bp-sample: the most occupied edge this tick (port -1 when every
	// queue is empty), so a trace alone shows where pressure sat.
	if c.o.Tracer.On() {
		port, occ := int32(-1), uint32(0)
		for i, d := range s.Depth {
			if d > int(occ) {
				port, occ = int32(c.edges[i].Port), uint32(d)
			}
		}
		c.o.Tracer.Emit(c.o.Ring, trace.KindBPSample, trace.PackPair(port, occ))
	}

	// Recorder triggers, detected as deltas between ticks: fault
	// containment fired (quarantine, watchdog stall) or the ingest
	// overload gate tripped.
	f := s.Sched.Faults
	if f.Quarantines > c.prevFaults.Quarantines {
		c.trigger(trace.FlightRecQuarantine)
	}
	if f.WatchdogStalls > c.prevFaults.WatchdogStalls {
		c.trigger(trace.FlightRecWatchdog)
	}
	if s.Ingest != nil && s.Ingest.Overloaded && !c.prevOverload {
		c.trigger(trace.FlightRecOverload)
	}
	c.prevFaults = f
	c.prevOverload = s.Ingest != nil && s.Ingest.Overloaded
	return s
}

// observe reads every probe in one pass.
func (c *Collector) observe() Sample {
	now := time.Now()
	s := Sample{At: now, Elapsed: now.Sub(c.start)}
	p := c.o.PE
	if p == nil {
		return s
	}
	s.Level = p.Level()
	s.Backlog = p.Backlog()
	s.Executed = p.Executed()
	s.SinkDelivered = p.SinkDelivered()
	s.Sched = p.SchedStats()
	if n := len(c.edges); n > 0 {
		s.Depth = make([]int, n)
		s.Resched = make([]uint64, n)
		s.BlockedNs = make([]uint64, n)
		p.SampleFlow(s.Depth, s.Resched, s.BlockedNs)
	}
	if n := p.NumNodes(); n > 0 {
		s.NodeExec = make([]uint64, n)
		if p.NodeExecuted(s.NodeExec) && s.Sched.Faults.Quarantines > 0 {
			for id := 0; id < n; id++ {
				if p.QuarantinedNode(id) {
					s.Quarantined = append(s.Quarantined, id)
				}
			}
		}
	}
	if c.o.Latency != nil {
		h := c.o.Latency.Snapshot()
		s.LatCount = h.Total
		s.LatP50 = h.Quantile(0.50)
		s.LatP99 = h.Quantile(0.99)
	}
	if c.o.Ingest != nil {
		snap := c.o.Ingest.Snapshot()
		s.Ingest = &snap
	}
	return s
}

// Window returns the buffered samples, oldest first.
func (c *Collector) Window() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windowLocked()
}

func (c *Collector) windowLocked() []Sample {
	n := int(c.count)
	if n > len(c.ring) {
		n = len(c.ring)
	}
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.ring[(c.next-n+i+len(c.ring))%len(c.ring)])
	}
	return out
}

// trigger runs one recorder trigger: emits the flightrec-dump trace
// instant and, when a Recorder is armed, dumps the window through it.
func (c *Collector) trigger(reason int32) {
	w := c.Window()
	if c.o.Tracer.On() {
		c.o.Tracer.Emit(c.o.Ring, trace.KindFlightRec, trace.PackPair(reason, uint32(len(w))))
	}
	if c.o.Recorder != nil {
		c.o.Recorder.Trigger(trace.FlightRecReason(reason), w)
	}
}

// Trigger forces a flight-recorder dump for an externally detected
// condition — the streamsim shutdown-deadline path, or an operator
// poking /debugz/flightrec?dump=now. The reason string should be one
// of the trace.FlightRecReason names; unknown strings dump as manual.
func (c *Collector) Trigger(reason string) {
	code := trace.FlightRecManual
	for _, r := range []int32{
		trace.FlightRecQuarantine, trace.FlightRecWatchdog,
		trace.FlightRecShutdown, trace.FlightRecOverload,
	} {
		if trace.FlightRecReason(r) == reason {
			code = r
			break
		}
	}
	c.mu.Lock()
	empty := c.count == 0
	c.mu.Unlock()
	if empty {
		c.SampleNow() // a dump with zero samples helps nobody
	}
	c.trigger(code)
}
