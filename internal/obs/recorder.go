package obs

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"streams/internal/fault"
	"streams/internal/trace"
)

// Dump is one flight-recorder dump: everything needed to post-mortem
// the seconds before a fault without having had a debugger attached.
type Dump struct {
	// Reason is the trigger (a trace.FlightRecReason name); At the dump
	// time; Seq the 1-based dump count this run.
	Reason   string    `json:"reason"`
	At       time.Time `json:"at"`
	Seq      int       `json:"seq"`
	Workload string    `json:"workload,omitempty"`
	// Samples is the buffered series window, oldest first.
	Samples []Sample `json:"samples"`
	// Trace is the tail of the scheduler trace (newest events, bounded),
	// present when the recorder has a tracer.
	Trace []TraceEvent `json:"trace,omitempty"`
	// Goroutines is a bounded goroutine dump, captured only for the
	// stuck-thread reasons (watchdog, shutdown-deadline) where the
	// interesting state is a stack, not a meter.
	Goroutines string `json:"goroutines,omitempty"`
}

// TraceEvent is one decoded trace record in a dump, with the kind
// rendered as its stable name.
type TraceEvent struct {
	TSNs int64  `json:"ts_ns"`
	Ring int    `json:"ring"`
	Kind string `json:"kind"`
	Arg  int64  `json:"arg"`
}

// Recorder persists flight-recorder dumps. It is always safe to share:
// Trigger is serialized and rate-limited, so a quarantine storm costs
// one file write per MinGap, not one per strike.
type Recorder struct {
	// Path is the dump file ("" keeps dumps in memory only). Each dump
	// overwrites the file; the newest state is the post-mortem target.
	Path string
	// Tracer, if set, contributes the trace tail (at most TraceTail
	// events, default 512).
	Tracer    *trace.Tracer
	TraceTail int
	// MinGap rate-limits dumps (default 500ms).
	MinGap time.Duration

	c *Collector // set by Collector New via bind

	mu     sync.Mutex
	lastAt time.Time
	last   []byte
	dumps  int
}

func (r *Recorder) bind(c *Collector) { r.c = c }

// Trigger builds and persists one dump from the given sample window.
// Returns the encoded dump, or nil when rate-limited. Encoding or
// write failures degrade silently to the in-memory copy: the recorder
// fires on the runtime's worst moments, which is exactly when a panic
// over a full disk would hurt most.
func (r *Recorder) Trigger(reason string, window []Sample) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	gap := r.MinGap
	if gap <= 0 {
		gap = 500 * time.Millisecond
	}
	if !r.lastAt.IsZero() && now.Sub(r.lastAt) < gap {
		return nil
	}
	r.lastAt = now
	r.dumps++
	d := Dump{Reason: reason, At: now, Seq: r.dumps, Samples: window}
	if r.c != nil {
		d.Workload = r.c.o.Workload
	}
	if r.Tracer != nil {
		tail := r.TraceTail
		if tail <= 0 {
			tail = 512
		}
		events := r.Tracer.Snapshot()
		if len(events) > tail {
			events = events[len(events)-tail:]
		}
		for _, e := range events {
			d.Trace = append(d.Trace, TraceEvent{
				TSNs: int64(e.TS), Ring: e.Ring, Kind: e.Kind.String(), Arg: e.Arg,
			})
		}
	}
	if reason == trace.FlightRecReason(trace.FlightRecWatchdog) ||
		reason == trace.FlightRecReason(trace.FlightRecShutdown) {
		d.Goroutines = fault.GoroutineDump(64 << 10)
	}
	buf, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return nil
	}
	r.last = buf
	if r.Path != "" {
		_ = os.WriteFile(r.Path, buf, 0o644)
	}
	return buf
}

// LastDump returns the most recent encoded dump (nil when none has
// fired) and how many dumps have fired.
func (r *Recorder) LastDump() ([]byte, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last, r.dumps
}
