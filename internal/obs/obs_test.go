package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/ingest"
	"streams/internal/metrics"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/sched"
	"streams/internal/trace"
)

// testEdges is a two-edge pipeline topology for the synthetic-window
// attribution tests: Src →(port 0)→ W →(port 1)→ Snk.
var testEdges = []sched.Edge{
	{Port: 0, From: "Src", To: "W", ToNode: 1, Cap: 64},
	{Port: 1, From: "W", To: "Snk", ToNode: 2, Cap: 64},
}

// synthWindow builds an n-sample window spaced 100ms apart with the
// given per-sample mutator applied after the defaults.
func synthWindow(n int, mut func(i int, s *Sample)) []Sample {
	base := time.Unix(1000, 0)
	w := make([]Sample, n)
	for i := range w {
		w[i] = Sample{
			At:        base.Add(time.Duration(i) * 100 * time.Millisecond),
			Depth:     []int{0, 0},
			Resched:   []uint64{0, 0},
			BlockedNs: []uint64{0, 0},
			NodeExec:  []uint64{0, 0, 0},
		}
		if mut != nil {
			mut(i, &w[i])
		}
	}
	return w
}

func TestAttributeEmptyAndQuiet(t *testing.T) {
	if r := Attribute(testEdges, nil); r.Cause != CauseNone {
		t.Errorf("nil window: cause %q, want none", r.Cause)
	}
	if r := Attribute(nil, synthWindow(5, nil)); r.Cause != CauseNone {
		t.Errorf("no edges: cause %q, want none", r.Cause)
	}
	if r := Attribute(testEdges, synthWindow(1, nil)); r.Cause != CauseNone {
		t.Errorf("one sample: cause %q, want none", r.Cause)
	}
	// Queues near-empty and no blocked time: below both thresholds.
	quiet := synthWindow(5, func(i int, s *Sample) {
		s.Depth = []int{2, 1}
	})
	if r := Attribute(testEdges, quiet); r.Cause != CauseNone {
		t.Errorf("quiet window: cause %q (%s), want none", r.Cause, r.Detail)
	}
}

func TestAttributeConsumerSlow(t *testing.T) {
	// Edge 0 (into W) sits at 75% fill with heavy producer blocked time;
	// edge 1 stays empty. No faults, no ingest, no hard contention.
	w := synthWindow(5, func(i int, s *Sample) {
		s.Depth = []int{48, 1}
		s.BlockedNs = []uint64{uint64(i) * uint64(50*time.Millisecond), 0}
		s.Executed = uint64(i) * 1000
	})
	r := Attribute(testEdges, w)
	if r.Cause != CauseConsumerSlow || r.Bottleneck != "W" || r.Port != 0 || r.Node != 1 {
		t.Fatalf("got %+v, want consumer-slow at W/port 0", r)
	}
	if r.MeanFill < 0.70 || r.MeanFill > 0.80 {
		t.Errorf("mean fill %v, want ~0.75", r.MeanFill)
	}
	if !strings.Contains(r.Detail, "Src→W") || !strings.Contains(r.Detail, "consumer-slow") {
		t.Errorf("detail %q missing edge or cause", r.Detail)
	}
}

func TestAttributeQuarantine(t *testing.T) {
	w := synthWindow(5, func(i int, s *Sample) {
		s.Depth = []int{60, 0}
		s.Executed = uint64(i) * 1000
	})
	w[len(w)-1].Quarantined = []int{1} // W's node ID
	r := Attribute(testEdges, w)
	if r.Cause != CauseQuarantine || r.Bottleneck != "W" {
		t.Fatalf("got %+v, want quarantine at W", r)
	}
}

func TestAttributeIngestShed(t *testing.T) {
	w := synthWindow(5, func(i int, s *Sample) {
		s.Depth = []int{60, 0}
		s.Executed = uint64(i) * 1000
		s.Ingest = &ingest.Snapshot{
			Totals:     metrics.IngestSnapshot{Shed: uint64(i) * 10},
			Overloaded: i == 3,
		}
	})
	r := Attribute(testEdges, w)
	if r.Cause != CauseIngestShed {
		t.Fatalf("got %+v, want ingest-shed", r)
	}
	// No shed delta and never overloaded: falls back to consumer-slow.
	w2 := synthWindow(5, func(i int, s *Sample) {
		s.Depth = []int{60, 0}
		s.Executed = uint64(i) * 1000
		s.Ingest = &ingest.Snapshot{Totals: metrics.IngestSnapshot{Shed: 42}}
	})
	if r := Attribute(testEdges, w2); r.Cause != CauseConsumerSlow {
		t.Fatalf("steady shed total: got %+v, want consumer-slow", r)
	}
}

func TestAttributeFreeListPressure(t *testing.T) {
	// Over 1.0 hard contention events per executed tuple — far past the
	// 0.25 threshold — while steal traffic stays excluded.
	w := synthWindow(5, func(i int, s *Sample) {
		s.Depth = []int{60, 0}
		s.Executed = uint64(i) * 1000
		s.Sched.Contention = metrics.ContentionSnapshot{
			PushFail: uint64(i) * 600, PopFail: uint64(i) * 600,
			Steal: uint64(i) * 100000, StealMiss: uint64(i) * 100000,
		}
	})
	r := Attribute(testEdges, w)
	if r.Cause != CauseFreeList {
		t.Fatalf("got %+v, want free-list-pressure", r)
	}
	// Steals alone, however many, never count as hard contention.
	w2 := synthWindow(5, func(i int, s *Sample) {
		s.Depth = []int{60, 0}
		s.Executed = uint64(i) * 1000
		s.Sched.Contention = metrics.ContentionSnapshot{
			Steal: uint64(i) * 100000, StealMiss: uint64(i) * 100000,
		}
	})
	if r := Attribute(testEdges, w2); r.Cause != CauseConsumerSlow {
		t.Fatalf("steal-only contention: got %+v, want consumer-slow", r)
	}
}

// buildSkewedPE runs an open-loop pipeline with one deliberately slow
// stage: Src → Fast → Slow → Fast2 → Snk, chaining disabled so the
// queues carry the real occupancy signal.
func buildSkewedPE(t *testing.T, slowCost int) *pe.PE {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{}, 0, 1)
	f1 := b.AddNode(&ops.Worker{OpName: "Fast", Cost: 1}, 1, 1)
	b.Connect(src, 0, f1, 0)
	slow := b.AddNode(&ops.Worker{OpName: "Slow", Cost: slowCost}, 1, 1)
	b.Connect(f1, 0, slow, 0)
	f2 := b.AddNode(&ops.Worker{OpName: "Fast2", Cost: 1}, 1, 1)
	b.Connect(slow, 0, f2, 0)
	sn := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(f2, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pe.New(g, pe.Config{
		Model: pe.Dynamic, Threads: 2, MaxThreads: 2,
		Sched: sched.Config{DisableChain: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

// TestAttributeSkewedPipeline is the acceptance property: on a live
// pipeline with one operator ~1000x more expensive than its peers, the
// report must name that operator with cause consumer-slow.
func TestAttributeSkewedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("live pipeline run")
	}
	p := buildSkewedPE(t, 20000)
	c := New(Options{PE: p, Period: 20 * time.Millisecond, Workload: "skewed"})
	for i := 0; i < 12; i++ {
		time.Sleep(20 * time.Millisecond)
		c.SampleNow()
	}
	r := Attribute(c.Edges(), c.Window())
	t.Logf("report: %s", r.Detail)
	if r.Bottleneck != "Slow" {
		t.Fatalf("bottleneck %q (%s), want Slow", r.Bottleneck, r.Detail)
	}
	if r.Cause != CauseConsumerSlow {
		t.Fatalf("cause %q (%s), want consumer-slow", r.Cause, r.Detail)
	}
	fs := c.Snapshot()
	if fs.Report.Bottleneck != "Slow" {
		t.Errorf("snapshot report bottleneck %q, want Slow", fs.Report.Bottleneck)
	}
	var sb strings.Builder
	fs.WriteText(&sb)
	if !strings.Contains(sb.String(), "bottleneck: Slow") {
		t.Errorf("panel missing bottleneck line:\n%s", sb.String())
	}
}

func TestCollectorWindowRing(t *testing.T) {
	p := buildSkewedPE(t, 1)
	c := New(Options{PE: p, Window: 4, Workload: "ring"})
	for i := 0; i < 7; i++ {
		c.SampleNow()
	}
	w := c.Window()
	if len(w) != 4 {
		t.Fatalf("window length %d, want 4 (ring capacity)", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i].Elapsed <= 0 || w[i].Elapsed < w[i-1].Elapsed {
			t.Fatalf("window not oldest-first: %v then %v", w[i-1].Elapsed, w[i].Elapsed)
		}
	}
	if len(w[0].Depth) != len(c.Edges()) {
		t.Errorf("depth slice %d entries, want one per edge (%d)", len(w[0].Depth), len(c.Edges()))
	}
}

func TestCollectorStartStop(t *testing.T) {
	p := buildSkewedPE(t, 1)
	c := New(Options{PE: p, Period: 5 * time.Millisecond})
	c.Start()
	c.Start() // idempotent
	time.Sleep(30 * time.Millisecond)
	c.Stop()
	c.Stop() // idempotent
	if len(c.Window()) == 0 {
		t.Fatal("background sampler took no samples")
	}
}

func TestWriteMetricsParses(t *testing.T) {
	p := buildSkewedPE(t, 1)
	lat := metrics.NewHistogram(2)
	lat.Record(0, time.Millisecond)
	c := New(Options{PE: p, Latency: lat, Workload: "metricz"})
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"streams_executed", "streams_sink_delivered", "streams_contention",
		"streams_faults", "streams_backlog", "streams_edge_depth",
		"streams_edge_resched", "streams_edge_blocked_seconds",
		"streams_latency_seconds",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %q missing from exposition", want)
		}
	}
}

func TestParseExpositionRejects(t *testing.T) {
	bad := map[string]string{
		"no EOF":          "# TYPE a counter\na_total 1\n",
		"blank line":      "# TYPE a counter\n\na_total 1\n# EOF\n",
		"after EOF":       "# TYPE a counter\na_total 1\n# EOF\na_total 2\n",
		"bare counter":    "# TYPE a counter\na 1\n# EOF\n",
		"bad value":       "# TYPE a gauge\na x\n# EOF\n",
		"dup TYPE":        "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n",
		"unknown type":    "# TYPE a widget\na 1\n# EOF\n",
		"unclosed label":  "# TYPE a gauge\na{x=\"1 2\n# EOF\n",
		"undeclared name": "# TYPE a gauge\nb 1\n# EOF\n",
	}
	for label, body := range bad {
		if _, err := ParseExposition(strings.NewReader(body)); err == nil {
			t.Errorf("%s: parser accepted malformed exposition", label)
		}
	}
}

func TestRecorderDumpAndRateLimit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fr.json")
	tr := trace.New(1, 16)
	tr.Enable()
	tr.Emit(0, trace.KindBPSample, trace.PackPair(0, 3))
	r := &Recorder{Path: path, Tracer: tr, MinGap: time.Hour}
	w := synthWindow(3, nil)

	buf := r.Trigger("manual", w)
	if buf == nil {
		t.Fatal("first trigger rate-limited")
	}
	var d Dump
	if err := json.Unmarshal(buf, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if d.Reason != "manual" || d.Seq != 1 || len(d.Samples) != 3 || len(d.Trace) == 0 {
		t.Fatalf("dump = reason %q seq %d samples %d trace %d", d.Reason, d.Seq, len(d.Samples), len(d.Trace))
	}
	if d.Goroutines != "" {
		t.Error("manual dump captured goroutines, want stuck-thread reasons only")
	}
	if onDisk, err := os.ReadFile(path); err != nil || !bytes.Equal(onDisk, buf) {
		t.Fatalf("file dump mismatch (err %v)", err)
	}
	if got := r.Trigger("manual", w); got != nil {
		t.Fatal("second trigger inside MinGap not rate-limited")
	}
	last, n := r.LastDump()
	if n != 1 || !bytes.Equal(last, buf) {
		t.Fatalf("LastDump = %d dumps", n)
	}
}

func TestRecorderGoroutinesOnStuckReasons(t *testing.T) {
	r := &Recorder{MinGap: time.Nanosecond}
	buf := r.Trigger("watchdog", synthWindow(2, nil))
	var d Dump
	if err := json.Unmarshal(buf, &d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Goroutines, "goroutine") {
		t.Error("watchdog dump has no goroutine stacks")
	}
}

// TestChaosFlightRecorder is the chaos acceptance path: injected panics
// drive a real quarantine, and the collector's delta trigger must fire
// a non-empty dump naming the quarantine reason. The dump file lands in
// FLIGHTREC_DIR when set (CI uploads it as an artifact on failure).
func TestChaosFlightRecorder(t *testing.T) {
	dir := os.Getenv("FLIGHTREC_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	path := filepath.Join(dir, "flightrec-chaos.json")

	const n = 10000
	inj := fault.New(fault.Config{Seed: 7, PanicRate: 0.01})
	b := graph.NewBuilder()
	src := b.AddNode(&ops.Generator{Limit: n}, 0, 1)
	w := b.AddNode(&ops.Worker{OpName: "W", Cost: 25}, 1, 1)
	b.Connect(src, 0, w, 0)
	sn := b.AddNode(&ops.Sink{}, 1, 0)
	b.Connect(w, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pe.New(g, pe.Config{
		Model: pe.Dynamic, Threads: 2, MaxThreads: 2,
		Fault: inj, QuarantineAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{Path: path, MinGap: time.Millisecond}
	c := New(Options{PE: p, Period: time.Millisecond, Recorder: rec, Workload: "chaos"})
	c.Start()
	defer c.Stop()
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitTimeout(60 * time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	p.Stop()
	c.Stop()
	if p.FaultStats().Quarantines == 0 {
		t.Skip("no quarantine at this seed/rate; nothing to record")
	}
	// The quarantine may land between ticks of the stopped sampler; one
	// explicit sample picks up the delta deterministically.
	c.SampleNow()
	buf, dumps := rec.LastDump()
	if dumps == 0 || len(buf) == 0 {
		t.Fatal("quarantine fired but the flight recorder dumped nothing")
	}
	var d Dump
	if err := json.Unmarshal(buf, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if d.Reason != "quarantine" || len(d.Samples) == 0 {
		t.Fatalf("dump reason %q with %d samples, want quarantine with samples", d.Reason, len(d.Samples))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("dump file %s missing or empty (err %v)", path, err)
	}
	t.Logf("flight recorder: %d dump(s), last %d bytes, %d samples", dumps, len(buf), len(d.Samples))
}

// TestCollectorManualTrigger covers the /debugz/flightrec?dump=now and
// shutdown-deadline paths: an explicit Trigger works even before any
// periodic sample has been taken.
func TestCollectorManualTrigger(t *testing.T) {
	p := buildSkewedPE(t, 1)
	rec := &Recorder{MinGap: time.Nanosecond}
	c := New(Options{PE: p, Recorder: rec, Workload: "manual"})
	c.Trigger("shutdown-deadline")
	buf, n := rec.LastDump()
	if n != 1 || buf == nil {
		t.Fatalf("manual trigger produced %d dumps", n)
	}
	var d Dump
	if err := json.Unmarshal(buf, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "shutdown-deadline" || len(d.Samples) == 0 {
		t.Fatalf("dump reason %q with %d samples", d.Reason, len(d.Samples))
	}
	if d.Goroutines == "" {
		t.Error("shutdown-deadline dump missing goroutine stacks")
	}
	c.Trigger("not-a-reason")
	if _, n := rec.LastDump(); n != 2 {
		t.Fatalf("unknown reason did not dump as manual: %d dumps", n)
	}
}
