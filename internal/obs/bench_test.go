package obs

import (
	"testing"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/pe"
)

// benchPipeline runs a Src → W×3 → Snk pipeline to completion over
// b.N tuples under the dynamic model, with an optional collector
// armed, and reports end-to-end throughput. The acceptance budget in
// EXPERIMENTS.md compares the off/sampling cells: the sampler is one
// background goroutine doing O(ports) atomic loads per tick, so
// enabled-vs-disabled must stay within ~2%.
func benchPipeline(b *testing.B, period time.Duration, start bool) {
	gb := graph.NewBuilder()
	src := gb.AddNode(&ops.Generator{Limit: uint64(b.N)}, 0, 1)
	prev := src
	for i := 0; i < 3; i++ {
		w := gb.AddNode(&ops.Worker{Cost: 50}, 1, 1)
		gb.Connect(prev, 0, w, 0)
		prev = w
	}
	sn := gb.AddNode(&ops.Sink{}, 1, 0)
	gb.Connect(prev, 0, sn, 0)
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	p, err := pe.New(g, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		b.Fatal(err)
	}
	var c *Collector
	if period > 0 {
		c = New(Options{PE: p, Period: period, Workload: "bench"})
		if start {
			c.Start()
		}
	}
	b.ResetTimer()
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	p.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	c.Stop()
	p.Stop()
}

// BenchmarkObsOverhead measures what flow observability costs the data
// path, cell by cell:
//
//	off           — no collector at all (the baseline every run pays)
//	enabled-idle  — collector constructed but never sampling (probes
//	                allocated, sampler parked; the -obs flag's floor)
//	sample-100ms  — the default production sampling rate
//	sample-5ms    — 20x the default rate, an adversarial ceiling
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchPipeline(b, 0, false) })
	b.Run("enabled-idle", func(b *testing.B) { benchPipeline(b, time.Hour, true) })
	b.Run("sample-100ms", func(b *testing.B) { benchPipeline(b, 100*time.Millisecond, true) })
	b.Run("sample-5ms", func(b *testing.B) { benchPipeline(b, 5*time.Millisecond, true) })
}
