package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ContentType is the OpenMetrics text exposition media type /metricz
// responds with.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// mw accumulates exposition lines, capturing the first write error so
// the emit helpers stay unconditional.
type mw struct {
	w   io.Writer
	err error
}

func (m *mw) line(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

func (m *mw) family(name, typ, help string) {
	m.line("# TYPE %s %s\n", name, typ)
	if help != "" {
		m.line("# HELP %s %s\n", name, help)
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// WriteMetrics renders the newest sample as an OpenMetrics text
// exposition — every scheduler counter, the elastic/relax gauges, the
// per-edge flow series, latency quantiles, and the per-tenant ingest
// dispositions — terminated by the mandatory # EOF. If no sample has
// been taken yet it takes one, so a fresh /metricz scrape works.
func (c *Collector) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	var s Sample
	if c.count > 0 {
		s = c.ring[(c.next-1+len(c.ring))%len(c.ring)]
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
		s = c.SampleNow()
	}

	m := &mw{w: w}
	m.family("streams_executed", "counter", "Tuples processed across all operators.")
	m.line("streams_executed_total %d\n", s.Executed)
	m.family("streams_sink_delivered", "counter", "Tuples delivered to sink operators.")
	m.line("streams_sink_delivered_total %d\n", s.SinkDelivered)
	m.family("streams_reschedules", "counter", "Full-queue pushes that fell into reSchedule self-help.")
	m.line("streams_reschedules_total %d\n", s.Sched.Reschedules)
	m.family("streams_find_failures", "counter", "Work searches that came up empty.")
	m.line("streams_find_failures_total %d\n", s.Sched.FindFailures)

	m.family("streams_contention", "counter", "Free-structure contention events by kind.")
	ct := s.Sched.Contention
	for _, kv := range []struct {
		k string
		v uint64
	}{
		{"push_fail", ct.PushFail}, {"pop_fail", ct.PopFail}, {"steal", ct.Steal},
		{"steal_miss", ct.StealMiss}, {"spill", ct.Spill}, {"lateral", ct.Lateral},
	} {
		m.line("streams_contention_total{kind=\"%s\"} %d\n", kv.k, kv.v)
	}
	m.family("streams_faults", "counter", "Fault-containment events by kind.")
	ft := s.Sched.Faults
	for _, kv := range []struct {
		k string
		v uint64
	}{
		{"op_panics", ft.OpPanics}, {"dead_letters", ft.DeadLetters},
		{"quarantines", ft.Quarantines}, {"watchdog_stalls", ft.WatchdogStalls},
	} {
		m.line("streams_faults_total{kind=\"%s\"} %d\n", kv.k, kv.v)
	}
	m.family("streams_chain", "counter", "Inline chain execution meters.")
	for _, kv := range []struct {
		k string
		v uint64
	}{
		{"starts", s.Sched.Chain.Starts}, {"links", s.Sched.Chain.Links}, {"tuples", s.Sched.Chain.Tuples},
	} {
		m.line("streams_chain_total{kind=\"%s\"} %d\n", kv.k, kv.v)
	}
	m.family("streams_vm", "counter", "Fused bytecode dispatch meters.")
	for _, kv := range []struct {
		k string
		v uint64
	}{
		{"fused_runs", s.Sched.VM.FusedRuns}, {"fused_tuples", s.Sched.VM.FusedTuples},
		{"fallbacks", s.Sched.VM.Fallbacks},
	} {
		m.line("streams_vm_total{kind=\"%s\"} %d\n", kv.k, kv.v)
	}

	m.family("streams_level", "gauge", "Elastic thread level.")
	m.line("streams_level %d\n", s.Level)
	m.family("streams_relax", "gauge", "Free-list relaxation width.")
	m.line("streams_relax %d\n", s.Sched.Relax)
	m.family("streams_backlog", "gauge", "Total queue occupancy across all edges.")
	m.line("streams_backlog %d\n", s.Backlog)

	if len(c.edges) > 0 {
		m.family("streams_edge_depth", "gauge", "Per-edge queue occupancy at the last sample.")
		for i, e := range c.edges {
			if i < len(s.Depth) {
				m.line("streams_edge_depth{port=\"%d\",from=\"%s\",to=\"%s\"} %d\n",
					e.Port, escapeLabel(e.From), escapeLabel(e.To), s.Depth[i])
			}
		}
		m.family("streams_edge_resched", "counter", "Per-edge reSchedule entries (full-queue pushes).")
		for i, e := range c.edges {
			if i < len(s.Resched) {
				m.line("streams_edge_resched_total{port=\"%d\",from=\"%s\",to=\"%s\"} %d\n",
					e.Port, escapeLabel(e.From), escapeLabel(e.To), s.Resched[i])
			}
		}
		m.family("streams_edge_blocked_seconds", "counter", "Per-edge producer blocked time.")
		for i, e := range c.edges {
			if i < len(s.BlockedNs) {
				m.line("streams_edge_blocked_seconds_total{port=\"%d\",from=\"%s\",to=\"%s\"} %.6f\n",
					e.Port, escapeLabel(e.From), escapeLabel(e.To),
					float64(s.BlockedNs[i])/float64(time.Second))
			}
		}
	}

	if s.LatCount > 0 {
		m.family("streams_latency_seconds", "gauge", "End-to-end latency quantiles (log2-bucket upper bounds).")
		m.line("streams_latency_seconds{quantile=\"0.5\"} %.6f\n", s.LatP50.Seconds())
		m.line("streams_latency_seconds{quantile=\"0.99\"} %.6f\n", s.LatP99.Seconds())
	}

	if s.Ingest != nil {
		m.family("streams_ingest", "counter", "Ingest admission dispositions.")
		tot := s.Ingest.Totals
		for _, kv := range []struct {
			k string
			v uint64
		}{
			{"admitted", tot.Admitted}, {"shed", tot.Shed},
			{"throttled", tot.Throttled}, {"rejected", tot.Rejected},
		} {
			m.line("streams_ingest_total{disposition=\"%s\"} %d\n", kv.k, kv.v)
		}
		m.family("streams_ingest_overloaded", "gauge", "Whether the global overload gate is tripped.")
		ov := 0
		if s.Ingest.Overloaded {
			ov = 1
		}
		m.line("streams_ingest_overloaded %d\n", ov)
		m.family("streams_tenant", "counter", "Per-tenant admission dispositions.")
		for _, tn := range s.Ingest.Tenants {
			for _, kv := range []struct {
				k string
				v uint64
			}{
				{"admitted", tn.Admitted}, {"shed", tn.Shed}, {"throttled", tn.Throttled},
			} {
				m.line("streams_tenant_total{tenant=\"%s\",disposition=\"%s\"} %d\n",
					escapeLabel(tn.Name), kv.k, kv.v)
			}
		}
		m.family("streams_tenant_queue_depth", "gauge", "Per-tenant admission queue occupancy.")
		for _, tn := range s.Ingest.Tenants {
			m.line("streams_tenant_queue_depth{tenant=\"%s\"} %d\n", escapeLabel(tn.Name), tn.Depth)
		}
	}

	m.line("# EOF\n")
	return m.err
}

// Family summarizes one metric family found by ParseExposition.
type Family struct {
	Name    string
	Type    string
	Samples int
}

// ParseExposition validates an OpenMetrics text exposition — the
// subset this package emits, strictly — and returns the families seen.
// It enforces the rules a scraper depends on: one TYPE declaration per
// family, samples grouped under their declaration, counter samples
// suffixed _total, parseable values, well-formed label syntax, and the
// mandatory # EOF terminator as the final line.
func ParseExposition(r io.Reader) (map[string]Family, error) {
	families := map[string]Family{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	current := "" // family the sample lines must belong to
	sawEOF := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if line == "" {
			return nil, fmt.Errorf("line %d: blank line (not allowed in OpenMetrics)", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP" && fields[1] != "UNIT") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE missing type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "info", "stateset", "unknown":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				families[name] = Family{Name: name, Type: typ}
				current = name
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, ok := matchFamily(families, current, name)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q outside its family's TYPE block", lineNo, name)
		}
		value := strings.Fields(rest)
		if len(value) < 1 || len(value) > 2 {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(value[0], 64); err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, value[0], err)
		}
		f := families[fam]
		f.Samples++
		families[fam] = f
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("missing # EOF terminator")
	}
	return families, nil
}

// matchFamily checks that a sample named name belongs to the family
// whose TYPE block we are in, honoring the counter _total suffix rule.
func matchFamily(families map[string]Family, current, name string) (string, bool) {
	f, ok := families[current]
	if !ok {
		return "", false
	}
	switch f.Type {
	case "counter":
		if name == current+"_total" || name == current+"_created" {
			return current, true
		}
	default:
		if name == current {
			return current, true
		}
	}
	return "", false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// splitSample splits one sample line into metric name and the
// value(+timestamp) remainder, validating the label set syntax.
func splitSample(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Parse {k="v",...} with escape-aware scanning.
	j := i + 1
	for {
		if j >= len(line) {
			return "", "", fmt.Errorf("unterminated label set in %q", line)
		}
		if line[j] == '}' {
			j++
			break
		}
		// label name
		k := j
		for j < len(line) && line[j] != '=' {
			j++
		}
		if j >= len(line) || !validMetricName(strings.TrimPrefix(line[k:j], ",")) {
			return "", "", fmt.Errorf("bad label name in %q", line)
		}
		j++ // '='
		if j >= len(line) || line[j] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", line)
		}
		j++
		for j < len(line) && line[j] != '"' {
			if line[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(line) {
			return "", "", fmt.Errorf("unterminated label value in %q", line)
		}
		j++ // closing quote
		if j < len(line) && line[j] == ',' {
			j++
		}
	}
	if j >= len(line) || line[j] != ' ' {
		return "", "", fmt.Errorf("missing value in %q", line)
	}
	return name, line[j+1:], nil
}
