package obs

import (
	"fmt"
	"io"
	"time"

	"streams/internal/sched"
)

// Cause tags the dominant reason the bottleneck edge is backed up.
type Cause string

const (
	// CauseNone: no edge shows meaningful pressure.
	CauseNone Cause = "none"
	// CauseConsumerSlow: the consuming operator cannot keep up — the
	// default explanation for a full queue with a healthy runtime.
	CauseConsumerSlow Cause = "consumer-slow"
	// CauseFreeList: free-structure contention (global push/pop
	// failures, shard spills) is burning cycles threads could spend
	// draining — the queue is full because the machinery, not the
	// operator, is the limiter.
	CauseFreeList Cause = "free-list-pressure"
	// CauseIngestShed: the ingest overload gate tripped or shed tuples
	// during the window — the system is past capacity at the front
	// door, and the internal edge pressure is a symptom of that.
	CauseIngestShed Cause = "ingest-shed"
	// CauseQuarantine: the bottleneck edge's consumer is quarantined,
	// so nothing drains it (or only punctuation does).
	CauseQuarantine Cause = "quarantine"
)

// Report names the critical edge of a topology over one sample window.
type Report struct {
	// Bottleneck is the consumer operator's name ("" when Cause is
	// none); Node its node ID; Port the edge's global input-port ID.
	Bottleneck string `json:"bottleneck"`
	Node       int    `json:"node"`
	Port       int    `json:"port"`
	// Cause is the dominant explanation (see the Cause constants).
	Cause Cause `json:"cause"`
	// MeanFill is the edge's mean queue occupancy over the window as a
	// fraction of capacity; BlockedMsPerSec is how many milliseconds of
	// producer blocked-time the edge accrued per second of window.
	MeanFill        float64 `json:"mean_fill"`
	BlockedMsPerSec float64 `json:"blocked_ms_per_sec"`
	// Detail is a one-line human rendering of the above.
	Detail string `json:"detail"`
}

// Attribution thresholds. An edge must show either minFill mean
// occupancy or minBlockedMsPerSec of producer blocked-time before the
// report names a bottleneck at all, and the free-list cause needs
// hardContentionPerTuple hard contention failures per executed tuple.
const (
	minFill                = 0.10
	minBlockedMsPerSec     = 1.0
	hardContentionPerTuple = 0.25
	// blockedDominance discounts edges whose producer blocked-time is
	// under this fraction of the window's worst edge: occupancy alone
	// also rises from claim batching (a rarely visited port accumulates
	// a near-full queue between drains), so when any edge shows real
	// blocked time, only edges within 10x of the worst one count as
	// backpressured.
	blockedDominance = 0.10
)

// Attribute rolls a sample window up into a critical-path report. It is
// a pure function of its inputs (the property tests feed synthetic
// windows): edges indexes the samples' per-edge slices, and the window
// must be ordered oldest first. Fewer than two samples yield CauseNone —
// rates need an interval.
func Attribute(edges []sched.Edge, window []Sample) Report {
	if len(edges) == 0 || len(window) < 2 {
		return Report{Cause: CauseNone, Node: -1, Port: -1}
	}
	first, last := window[0], window[len(window)-1]
	dt := last.At.Sub(first.At).Seconds()
	if dt <= 0 {
		return Report{Cause: CauseNone, Node: -1, Port: -1}
	}

	// Score every edge: mean occupancy fraction plus the fraction of
	// wall time its producers spent blocked in reSchedule. Occupancy
	// alone misses chained pipelines (inline execution keeps queues
	// shallow while producers still stall); blocked time alone misses
	// consumers slow enough that producers park instead of spinning.
	type edgeScore struct {
		fill, blockedMsPerSec, score float64
		congested                    bool
	}
	scores := make([]edgeScore, len(edges))
	for i, e := range edges {
		fill := 0.0
		if e.Cap > 0 {
			sum := 0.0
			for _, s := range window {
				if i < len(s.Depth) {
					sum += float64(s.Depth[i]) / float64(e.Cap)
				}
			}
			fill = sum / float64(len(window))
		}
		var blocked float64
		if i < len(last.BlockedNs) && i < len(first.BlockedNs) {
			blocked = float64(last.BlockedNs[i]-first.BlockedNs[i]) / float64(time.Second) / dt
		}
		scores[i] = edgeScore{
			fill: fill, blockedMsPerSec: blocked * 1000, score: fill + blocked,
		}
	}

	// Congestion candidacy. Producer blocked-time is the primary signal
	// — it only accrues when a push actually failed — so when any edge
	// shows it, candidates are the edges within blockedDominance of the
	// worst. Only a window with no blocked time at all (blocked meters
	// absent, or consumers stalled rather than slow) falls back to mean
	// occupancy.
	maxBlocked := 0.0
	for _, sc := range scores {
		if sc.blockedMsPerSec > maxBlocked {
			maxBlocked = sc.blockedMsPerSec
		}
	}
	if maxBlocked >= minBlockedMsPerSec {
		floor := maxBlocked * blockedDominance
		if floor < minBlockedMsPerSec {
			floor = minBlockedMsPerSec
		}
		for i := range scores {
			scores[i].congested = scores[i].blockedMsPerSec >= floor
		}
	} else {
		for i := range scores {
			scores[i].congested = scores[i].fill >= minFill
		}
	}

	// Backpressure propagates upstream: one slow stage fills every queue
	// above it, and the top of the pipeline accrues the most blocked
	// time. The bottleneck is the pressure sink — a congested edge whose
	// consumer's own output edges are all uncongested; anything it feeds
	// is draining fine, so the pressure stops with it. A congestion
	// cycle (closed loop saturated end to end) has no sink; highest
	// score wins there.
	best := -1
	for i, e := range edges {
		if !scores[i].congested {
			continue
		}
		sink := true
		for j, f := range edges {
			if !scores[j].congested || j == i {
				continue
			}
			for _, fn := range f.FromNodes {
				if fn == e.ToNode {
					sink = false
				}
			}
		}
		if sink && (best < 0 || scores[i].score > scores[best].score) {
			best = i
		}
	}
	if best < 0 {
		for i := range edges {
			if scores[i].congested && (best < 0 || scores[i].score > scores[best].score) {
				best = i
			}
		}
	}
	if best < 0 {
		return Report{Cause: CauseNone, Node: -1, Port: -1}
	}
	e := edges[best]
	r := Report{
		Bottleneck:      e.To,
		Node:            e.ToNode,
		Port:            e.Port,
		MeanFill:        scores[best].fill,
		BlockedMsPerSec: scores[best].blockedMsPerSec,
	}

	// Cause, most specific first. Quarantine is node-specific truth;
	// ingest shed says the whole system is past contracted capacity;
	// hard free-list contention says the scheduling machinery is the
	// limiter; a slow consumer is the remaining explanation.
	r.Cause = CauseConsumerSlow
	for _, id := range last.Quarantined {
		if id == e.ToNode {
			r.Cause = CauseQuarantine
		}
	}
	if r.Cause == CauseConsumerSlow && last.Ingest != nil {
		shedDelta := last.Ingest.Totals.Shed
		if first.Ingest != nil {
			shedDelta -= first.Ingest.Totals.Shed
		}
		overloaded := false
		for _, s := range window {
			if s.Ingest != nil && s.Ingest.Overloaded {
				overloaded = true
			}
		}
		if overloaded || shedDelta > 0 {
			r.Cause = CauseIngestShed
		}
	}
	if r.Cause == CauseConsumerSlow {
		// Hard contention only: push/pop CAS failures and shard spills.
		// Steals and steal misses are routine traffic — an idle thread
		// sweeping for work next to one slow operator produces millions
		// of misses that say nothing about free-list pressure.
		hc := func(s Sample) uint64 {
			ct := s.Sched.Contention
			return ct.PushFail + ct.PopFail + ct.Spill
		}
		dExec := last.Executed - first.Executed
		if dExec > 0 && float64(hc(last)-hc(first))/float64(dExec) > hardContentionPerTuple {
			r.Cause = CauseFreeList
		}
	}
	r.Detail = fmt.Sprintf(
		"edge %d %s→%s: mean fill %.0f%%, producers blocked %.1fms/s, cause %s",
		e.Port, e.From, e.To, r.MeanFill*100, r.BlockedMsPerSec, r.Cause)
	return r
}

// EdgeFlow is one edge's windowed flow summary for the /debugz/flows
// panel and its JSON view.
type EdgeFlow struct {
	sched.Edge
	// Depth is the occupancy at the newest sample; MeanFill the mean
	// occupancy fraction over the window.
	Depth    int     `json:"depth"`
	MeanFill float64 `json:"mean_fill"`
	// Resched and BlockedMs are the window deltas of the congestion
	// meters; ConsumerTPS is the consuming operator's execution rate
	// over the window.
	Resched     uint64  `json:"resched"`
	BlockedMs   float64 `json:"blocked_ms"`
	ConsumerTPS float64 `json:"consumer_tps"`
}

// FlowSnapshot is the single-pass flow view: every edge's windowed
// summary plus the attribution report, all derived from one locked read
// of the series ring so the text panel and the JSON endpoint cannot
// disagree.
type FlowSnapshot struct {
	Workload string        `json:"workload,omitempty"`
	At       time.Time     `json:"at"`
	Samples  int           `json:"samples"`
	Window   time.Duration `json:"window_ns"`
	Period   time.Duration `json:"period_ns"`
	Edges    []EdgeFlow    `json:"edges"`
	Report   Report        `json:"report"`
}

// Snapshot computes the flow view over the buffered window, taking an
// immediate sample first if the ring is empty (so a just-attached
// debugz handler never renders an empty panel).
func (c *Collector) Snapshot() FlowSnapshot {
	c.mu.Lock()
	w := c.windowLocked()
	c.mu.Unlock()
	if len(w) == 0 {
		w = []Sample{c.SampleNow()}
	}
	first, last := w[0], w[len(w)-1]
	dt := last.At.Sub(first.At).Seconds()
	fs := FlowSnapshot{
		Workload: c.o.Workload,
		At:       last.At,
		Samples:  len(w),
		Window:   last.At.Sub(first.At),
		Period:   c.o.Period,
		Report:   Attribute(c.edges, w),
	}
	for i, e := range c.edges {
		ef := EdgeFlow{Edge: e}
		if i < len(last.Depth) {
			ef.Depth = last.Depth[i]
		}
		if e.Cap > 0 {
			sum := 0.0
			for _, s := range w {
				if i < len(s.Depth) {
					sum += float64(s.Depth[i]) / float64(e.Cap)
				}
			}
			ef.MeanFill = sum / float64(len(w))
		}
		if i < len(last.Resched) && i < len(first.Resched) {
			ef.Resched = last.Resched[i] - first.Resched[i]
		}
		if i < len(last.BlockedNs) && i < len(first.BlockedNs) {
			ef.BlockedMs = float64(last.BlockedNs[i]-first.BlockedNs[i]) / float64(time.Millisecond)
		}
		if dt > 0 && e.ToNode < len(last.NodeExec) && e.ToNode < len(first.NodeExec) {
			ef.ConsumerTPS = float64(last.NodeExec[e.ToNode]-first.NodeExec[e.ToNode]) / dt
		}
		fs.Edges = append(fs.Edges, ef)
	}
	return fs
}

// WriteText renders the snapshot as the /debugz/flows panel.
func (fs FlowSnapshot) WriteText(w io.Writer) {
	if fs.Workload != "" {
		fmt.Fprintf(w, "workload: %s\n", fs.Workload)
	}
	fmt.Fprintf(w, "flows: %d samples over %v (period %v)\n",
		fs.Samples, fs.Window.Round(time.Millisecond), fs.Period)
	for _, e := range fs.Edges {
		fmt.Fprintf(w, "  edge %d %s→%s: depth %d/%d, mean fill %.0f%%, resched %d, blocked %.1fms, consumer %.0f t/s\n",
			e.Port, e.From, e.To, e.Depth, e.Cap, e.MeanFill*100, e.Resched, e.BlockedMs, e.ConsumerTPS)
	}
	if fs.Report.Cause == CauseNone || fs.Report.Cause == "" {
		fmt.Fprintf(w, "bottleneck: none\n")
		return
	}
	fmt.Fprintf(w, "bottleneck: %s (%s)\n", fs.Report.Bottleneck, fs.Report.Detail)
}
