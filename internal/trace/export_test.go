package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTE decodes an exported trace back into the generic structure
// the Chrome/Perfetto loaders read.
func decodeTE(t *testing.T, buf []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("export has no traceEvents array: %v", doc)
	}
	return doc
}

func TestExportPairsDrainsAndParks(t *testing.T) {
	events := []Event{
		{TS: 10 * time.Microsecond, Ring: 0, Kind: KindAcquire, Arg: 4},
		{TS: 15 * time.Microsecond, Ring: 1, Kind: KindPark},
		{TS: 30 * time.Microsecond, Ring: 0, Kind: KindRelease, Arg: 17},
		{TS: 45 * time.Microsecond, Ring: 1, Kind: KindUnpark},
		{TS: 50 * time.Microsecond, Ring: 0, Kind: KindSteal, Arg: PackPair(2, 9)},
	}
	var buf bytes.Buffer
	if err := ExportEvents(&buf, events, []string{"sched-0", "sched-1"}); err != nil {
		t.Fatal(err)
	}
	doc := decodeTE(t, buf.Bytes())
	evs := doc["traceEvents"].([]any)

	var drains, parks, steals int
	for _, raw := range evs {
		e := raw.(map[string]any)
		name, _ := e["name"].(string)
		ph, _ := e["ph"].(string)
		switch name {
		case "drain":
			drains++
			if ph != "X" {
				t.Fatalf("drain not paired into an X event: %v", e)
			}
			if dur := e["dur"].(float64); dur != 20 {
				t.Fatalf("drain dur = %v µs, want 20", dur)
			}
			args := e["args"].(map[string]any)
			if args["port"].(float64) != 4 || args["tuples"].(float64) != 17 {
				t.Fatalf("drain args = %v", args)
			}
		case "park":
			parks++
			if ph != "X" || e["dur"].(float64) != 30 {
				t.Fatalf("park not paired: %v", e)
			}
			if e["tid"].(float64) != 1 {
				t.Fatalf("park on tid %v, want 1", e["tid"])
			}
		case "steal":
			steals++
			args := e["args"].(map[string]any)
			if args["victim"].(float64) != 2 || args["port"].(float64) != 9 {
				t.Fatalf("steal args = %v", args)
			}
		}
	}
	if drains != 1 || parks != 1 || steals != 1 {
		t.Fatalf("drains %d parks %d steals %d, want 1 each", drains, parks, steals)
	}
}

func TestExportUnpairedBeginBecomesInstant(t *testing.T) {
	events := []Event{
		{TS: 5 * time.Microsecond, Ring: 0, Kind: KindAcquire, Arg: 3},
		{TS: 7 * time.Microsecond, Ring: 2, Kind: KindPark},
	}
	var buf bytes.Buffer
	if err := ExportEvents(&buf, events, nil); err != nil {
		t.Fatal(err)
	}
	doc := decodeTE(t, buf.Bytes())
	found := 0
	for _, raw := range doc["traceEvents"].([]any) {
		e := raw.(map[string]any)
		if n := e["name"].(string); n == "drain" || n == "park" {
			if e["ph"].(string) != "i" {
				t.Fatalf("unpaired begin exported as %v", e)
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("want 2 instants, got %d", found)
	}
}

func TestExportLiveTracer(t *testing.T) {
	tr := New(2, 64)
	tr.SetLabel(0, "sched-0")
	tr.SetLabel(1, "elastic")
	tr.Enable()
	tr.Emit(0, KindAcquire, 1)
	tr.Emit(0, KindRelease, 5)
	tr.Emit(1, KindElastic, PackPair(4, 123456))
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeTE(t, buf.Bytes())
	var sawThreadName, sawElastic bool
	for _, raw := range doc["traceEvents"].([]any) {
		e := raw.(map[string]any)
		if e["name"] == "thread_name" {
			if args := e["args"].(map[string]any); args["name"] == "elastic" {
				sawThreadName = true
			}
		}
		if e["name"] == "elastic-level" {
			args := e["args"].(map[string]any)
			if args["level"].(float64) != 4 || args["throughput"].(float64) != 123456 {
				t.Fatalf("elastic args = %v", args)
			}
			sawElastic = true
		}
	}
	if !sawThreadName || !sawElastic {
		t.Fatalf("thread_name %v elastic %v", sawThreadName, sawElastic)
	}
}

func TestKindsTally(t *testing.T) {
	events := []Event{
		{Kind: KindSteal}, {Kind: KindSteal}, {Kind: KindPark},
	}
	got := Kinds(events)
	if got["steal"] != 2 || got["park"] != 1 {
		t.Fatalf("tally = %v", got)
	}
}
