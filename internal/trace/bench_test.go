package trace

import "testing"

// BenchmarkTraceOverhead prices the tracer at its three states, the
// numbers EXPERIMENTS.md records:
//
//   - baseline: the seam with no tracer compiled in (empty loop body)
//   - nil: the seam with a nil *Tracer — the cost every run pays when
//     tracing is not configured
//   - disabled: a constructed but disabled tracer — the single
//     atomic-load gate, required to stay ≤1ns/op
//   - enabled: the full emit path, required to stay allocation-free
//
// sink defeats dead-code elimination of the gate check.
var sink bool

func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		v := false
		for i := 0; i < b.N; i++ {
			v = !v
		}
		sink = v
	})
	b.Run("nil", func(b *testing.B) {
		var tr *Tracer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tr.On() {
				tr.Emit(0, KindSteal, int64(i))
			}
		}
		sink = tr.On()
	})
	b.Run("disabled", func(b *testing.B) {
		tr := New(1, 1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tr.On() {
				tr.Emit(0, KindSteal, int64(i))
			}
		}
		sink = tr.On()
	})
	b.Run("enabled", func(b *testing.B) {
		tr := New(1, 1024)
		tr.Enable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tr.On() {
				tr.Emit(0, KindSteal, int64(i))
			}
		}
		sink = tr.On()
	})
}
