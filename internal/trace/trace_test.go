package trace

import (
	"sync"
	"testing"
	"time"
)

func TestDisabledDropsEvents(t *testing.T) {
	tr := New(2, 64)
	tr.Emit(0, KindSteal, 7)
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
	tr.Enable()
	tr.Emit(0, KindSteal, 7)
	tr.Disable()
	tr.Emit(0, KindSteal, 8)
	got := tr.Snapshot()
	if len(got) != 1 || got[0].Arg != 7 {
		t.Fatalf("want the one enabled-window event, got %v", got)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.On() {
		t.Fatal("nil tracer reports On")
	}
	tr.Emit(0, KindPark, 0)
	tr.SetLabel(0, "x")
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
}

func TestOutOfRangeRingDrops(t *testing.T) {
	tr := New(1, 64)
	tr.Enable()
	tr.Emit(-1, KindSteal, 1)
	tr.Emit(5, KindSteal, 2)
	tr.Emit(0, KindSteal, 3)
	got := tr.Snapshot()
	if len(got) != 1 || got[0].Arg != 3 {
		t.Fatalf("want only the in-range event, got %v", got)
	}
}

func TestRingOrderAndMerge(t *testing.T) {
	tr := New(3, 64)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Emit(i%3, KindSpill, int64(i))
	}
	got := tr.Snapshot()
	if len(got) != 10 {
		t.Fatalf("want 10 events, got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("events not time-sorted: %v then %v", got[i-1], got[i])
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(1, 8)
	tr.Enable()
	const n = 100
	for i := 0; i < n; i++ {
		tr.Emit(0, KindResched, int64(i))
	}
	got := tr.Snapshot()
	if len(got) != 8 {
		t.Fatalf("want the 8 newest events, got %d", len(got))
	}
	for i, e := range got {
		if want := int64(n - 8 + i); e.Arg != want {
			t.Fatalf("event %d: arg %d, want %d", i, e.Arg, want)
		}
	}
}

// TestConcurrentSnapshotIsConsistent hammers one writer per ring while
// readers snapshot continuously. Run under -race this also proves the
// rings are data-race-free; the assertion checks no torn event is ever
// returned (kind and arg must agree by construction).
func TestConcurrentSnapshotIsConsistent(t *testing.T) {
	tr := New(4, 256)
	tr.Enable()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ring := 0; ring < 4; ring++ {
		wg.Add(1)
		go func(ring int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Writer r only ever emits kind KindSteal with arg
				// ring*1e9+i, so any mixed-up slot is detectable.
				tr.Emit(ring, KindSteal, int64(ring)*1_000_000_000+int64(i))
			}
		}(ring)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, e := range tr.Snapshot() {
			if e.Kind != KindSteal {
				t.Errorf("torn event: kind %v", e.Kind)
			}
			if got := int(e.Arg / 1_000_000_000); got != e.Ring {
				t.Errorf("torn event: ring %d carries arg %d", e.Ring, e.Arg)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestPackPair(t *testing.T) {
	hi, lo := UnpackPair(PackPair(-3, 12345))
	if hi != -3 || lo != 12345 {
		t.Fatalf("round trip gave %d, %d", hi, lo)
	}
	hi, lo = UnpackPair(PackPair(1<<31-1, 1<<32-1))
	if hi != 1<<31-1 || lo != 1<<32-1 {
		t.Fatalf("extremes gave %d, %d", hi, lo)
	}
}

func TestKindStringsAreStable(t *testing.T) {
	// The export uses Kind.String() as the trace_event name and the
	// smoke test greps for these; renaming is a compatibility break.
	want := map[Kind]string{
		KindSteal:      "steal",
		KindPark:       "park",
		KindQuarantine: "quarantine",
		KindElastic:    "elastic-level",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind %d renamed to %q (want %q)", k, k.String(), s)
		}
	}
}
