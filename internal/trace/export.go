package trace

import (
	"encoding/json"
	"io"
	"time"
)

// The Chrome trace_event JSON export: open the file in chrome://tracing
// or https://ui.perfetto.dev to see the run on a timeline. Each ring
// becomes one named thread row; acquire/release and park/unpark pairs
// become complete ("X") duration events, everything else an instant
// ("i"). Timestamps are microseconds (the format's unit) with
// sub-microsecond precision kept as fractions.

// teEvent is one trace_event record. Only the fields the viewers read
// are emitted.
type teEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type teFile struct {
	TraceEvents     []teEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

const tracePID = 1

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Export writes the tracer's current snapshot in Chrome trace_event
// format. It may run while the trace is live; see Snapshot for the
// consistency guarantee.
func (t *Tracer) Export(w io.Writer) error {
	return writeTraceEvents(w, t.Snapshot(), t.ringLabels())
}

func (t *Tracer) ringLabels() []string {
	if t == nil {
		return nil
	}
	return t.labels
}

// ExportEvents renders an already-captured event list (for tests and
// offline processing). labels may be nil or shorter than the ring
// count; missing rings fall back to "ring-N".
func ExportEvents(w io.Writer, events []Event, labels []string) error {
	return writeTraceEvents(w, events, labels)
}

func writeTraceEvents(w io.Writer, events []Event, labels []string) error {
	out := teFile{
		TraceEvents:     make([]teEvent, 0, len(events)+len(labels)+1),
		DisplayTimeUnit: "ns",
	}
	out.TraceEvents = append(out.TraceEvents, teEvent{
		Name: "process_name", Phase: "M", PID: tracePID,
		Args: map[string]any{"name": "streams"},
	})
	for i, l := range labels {
		out.TraceEvents = append(out.TraceEvents, teEvent{
			Name: "thread_name", Phase: "M", PID: tracePID, TID: i,
			Args: map[string]any{"name": l},
		})
	}
	// Open acquire/park per ring, for pairing into duration events.
	// Events arrive sorted by time, and within one ring the begin/end
	// kinds strictly alternate (they are emitted by straight-line code),
	// so a one-slot pending record per ring suffices.
	type pending struct {
		ok bool
		ev Event
	}
	acq := map[int]pending{}
	park := map[int]pending{}
	flush := func(p pending, name string, args map[string]any) {
		// An unpaired begin (snapshot cut mid-drain): emit as instant.
		out.TraceEvents = append(out.TraceEvents, teEvent{
			Name: name, Phase: "i", TS: usec(p.ev.TS), PID: tracePID, TID: p.ev.Ring, Scope: "t", Args: args,
		})
	}
	for _, e := range events {
		switch e.Kind {
		case KindAcquire:
			if p := acq[e.Ring]; p.ok {
				flush(p, "drain", map[string]any{"port": p.ev.Arg})
			}
			acq[e.Ring] = pending{ok: true, ev: e}
		case KindRelease:
			if p := acq[e.Ring]; p.ok {
				delete(acq, e.Ring)
				out.TraceEvents = append(out.TraceEvents, teEvent{
					Name: "drain", Phase: "X", TS: usec(p.ev.TS), Dur: usec(e.TS - p.ev.TS),
					PID: tracePID, TID: e.Ring,
					Args: map[string]any{"port": p.ev.Arg, "tuples": e.Arg},
				})
			} else {
				// Acquire lost to ring wrap: keep the release as an instant
				// so the drain still shows up.
				out.TraceEvents = append(out.TraceEvents, teEvent{
					Name: "drain", Phase: "i", TS: usec(e.TS), PID: tracePID, TID: e.Ring, Scope: "t",
					Args: map[string]any{"tuples": e.Arg},
				})
			}
		case KindPark:
			if p := park[e.Ring]; p.ok {
				flush(p, "park", nil)
			}
			park[e.Ring] = pending{ok: true, ev: e}
		case KindUnpark:
			if p := park[e.Ring]; p.ok {
				delete(park, e.Ring)
				out.TraceEvents = append(out.TraceEvents, teEvent{
					Name: "park", Phase: "X", TS: usec(p.ev.TS), Dur: usec(e.TS - p.ev.TS),
					PID: tracePID, TID: e.Ring,
				})
			} else {
				out.TraceEvents = append(out.TraceEvents, teEvent{
					Name: "park", Phase: "i", TS: usec(e.TS), PID: tracePID, TID: e.Ring, Scope: "t",
				})
			}
		case KindSteal:
			victim, lo := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"victim": victim, "port": lo & 0xffffff, "dist": lo >> 24,
			}))
		case KindElastic:
			level, thput := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"level": level, "throughput": thput,
			}))
		case KindChain:
			depth, port := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"depth": depth, "port": port,
			}))
		case KindChainStop:
			reason, port := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"reason": ChainStopReason(reason), "port": port,
			}))
		case KindRelax:
			width, rate := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"width": width, "rate": rate,
			}))
		case KindFairClaim:
			port, waitNs := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"port": port, "wait_ns": waitNs,
			}))
		case KindVMFuse:
			segs, port := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"segs": segs, "port": port,
			}))
		case KindVMVec, KindVMVecAbort:
			rows, port := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"rows": rows, "port": port,
			}))
		case KindAdmit, KindShed, KindThrottle:
			tenant, count := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"tenant": tenant, "count": count,
			}))
		case KindBPSample:
			port, occ := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"port": port, "occ": occ,
			}))
		case KindFlightRec:
			reason, samples := UnpackPair(e.Arg)
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{
				"reason": FlightRecReason(reason), "samples": samples,
			}))
		case KindSpill, KindResched:
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{"port": e.Arg}))
		case KindQuarantine:
			out.TraceEvents = append(out.TraceEvents, instant(e, map[string]any{"node": e.Arg}))
		default:
			out.TraceEvents = append(out.TraceEvents, instant(e, nil))
		}
	}
	for _, p := range acq {
		flush(p, "drain", map[string]any{"port": p.ev.Arg})
	}
	for _, p := range park {
		flush(p, "park", nil)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func instant(e Event, args map[string]any) teEvent {
	return teEvent{
		Name: e.Kind.String(), Phase: "i", TS: usec(e.TS),
		PID: tracePID, TID: e.Ring, Scope: "t", Args: args,
	}
}

// Kinds tallies an event list by kind name — the smoke test's "≥4 event
// kinds" check and a handy summary for CLI output.
func Kinds(events []Event) map[string]int {
	out := map[string]int{}
	for _, e := range events {
		out[e.Kind.String()]++
	}
	return out
}
