// Package trace is the runtime's scheduler event tracer: per-thread,
// fixed-size ring buffers that record scheduler decisions — port
// acquires and releases, free-list steals and spills, parks and
// unparks, reschedules, quarantine strikes, and elasticity level
// changes — with nanosecond timestamps, cheap enough to leave compiled
// into the hot path.
//
// The tracer obeys the same discipline as the scheduler it observes
// (the paper's §4.1.2 principle): every executing thread writes only
// its own ring, so recording an event touches no shared cache lines and
// takes no lock; the only shared state is a single enabled flag, read
// with one atomic load. Callers gate emission with On(), which is
// nil-receiver-safe and inlines to a nil check plus that load, so a
// runtime built without a tracer pays a nil check and a runtime with a
// disabled tracer pays ~1ns per seam (BenchmarkTraceOverhead holds the
// line).
//
// Rings are bounded and wrap: tracing overwrites the oldest events
// instead of ever blocking or allocating. Snapshot drops the (rare)
// events the writer overtook mid-read, so readers always observe
// consistent records even while the run is live. Every slot field is an
// atomic word, which keeps the reader/writer race benign under the Go
// memory model and clean under the race detector.
package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Kind identifies one scheduler decision recorded in a ring.
type Kind uint8

const (
	// KindNone marks an empty slot; never emitted.
	KindNone Kind = iota
	// KindAcquire marks a thread winning a port's consumer lock with
	// work queued; arg is the port ID. Paired with the next KindRelease
	// on the same ring by the trace_event export.
	KindAcquire
	// KindRelease marks the end of a port drain; arg is the number of
	// tuples drained (the batch-drain record).
	KindRelease
	// KindSteal marks a port hint taken from another thread's shard or
	// inbox; arg packs victim<<32|dist<<24|port, where dist is the
	// cpuutil steal-distance class (0 SMT sibling, 1 LLC peer, 2
	// remote) and port occupies the low 24 bits.
	KindSteal
	// KindSpill marks a local-shard overflow redirected to the global
	// free list; arg is the port ID.
	KindSpill
	// KindPark marks a thread parking on its suspension condvar. Paired
	// with the next KindUnpark on the same ring by the export.
	KindPark
	// KindUnpark marks a parked thread resuming.
	KindUnpark
	// KindResched marks a full-queue push falling into the reSchedule
	// self-help path; arg is the blocking port ID.
	KindResched
	// KindQuarantine marks an operator quarantined after exhausting its
	// strike budget; arg is the node ID.
	KindQuarantine
	// KindElastic marks an elasticity level change; arg packs
	// level<<32|throughput (tuples/s, saturating at 2^32-1).
	KindElastic
	// KindChain marks one inline chain link: the executing thread won
	// the downstream port's consumer lock and ran the operator directly
	// instead of queueing; arg packs depth<<32|port, where depth is the
	// 1-based link position in its chain.
	KindChain
	// KindChainStop marks a chain attempt that fell back to the queue;
	// arg packs reason<<32|port (see the ChainStop constants).
	KindChainStop
	// KindRelax marks a free-list relaxation-width change (or the
	// initial width observation); arg packs width<<32|rate, where rate
	// is the observed contention events per 1000 executed tuples
	// (saturating at 2^32-1).
	KindRelax
	// KindFairClaim marks a fair-path port claim that had to wait in
	// the ticket line; arg packs port<<32|waitNs (saturating at
	// 2^32-1 ≈ 4.3s).
	KindFairClaim
	// KindVMFuse marks a chain batch committed to fused bytecode
	// dispatch: the whole operator run executed as one superinstruction
	// program, no per-operator Process calls; arg packs segs<<32|port,
	// where segs is the fused chain length.
	KindVMFuse
	// KindAdmit marks a batch of tuples admitted past ingest admission
	// into a tenant queue; arg packs tenant<<32|count.
	KindAdmit
	// KindShed marks a batch of tuples dropped by an ingest shed
	// policy (queue overflow under shed-oldest/shed-newest, or priority
	// shedding under global overload); arg packs tenant<<32|count.
	KindShed
	// KindThrottle marks a batch rejected by a tenant's token bucket —
	// the client exceeded its contracted rate; arg packs
	// tenant<<32|count.
	KindThrottle
	// KindBPSample marks one flow-observability sampling tick: the obs
	// collector read every edge's queue occupancy and recorded the most
	// occupied one; arg packs port<<32|occupancy for that edge (port -1
	// when every queue was empty).
	KindBPSample
	// KindFlightRec marks a flight-recorder dump: fault containment or
	// the ingest overload gate fired and the recent-history ring was
	// persisted; arg packs reason<<32|samples (see the FlightRec
	// constants).
	KindFlightRec
	// KindVMVec marks a fused chain batch executed through the
	// vectorized batch-at-a-time machine: the whole batch decoded into
	// lanes and every instruction dispatched once per batch; arg packs
	// rows<<32|port, where rows is the batch size.
	KindVMVec
	// KindVMVecAbort marks a vectorized compute phase that panicked
	// mid-batch (having emitted nothing) and was replayed through the
	// scalar dispatch loop — the batch paid vectorized compute AND a
	// full scalar run, so a recurring abort on the same operator is a
	// silent 2x worth surfacing; arg packs rows<<32|port like KindVMVec.
	KindVMVecAbort

	numKinds
)

// ChainStop reason codes, packed into KindChainStop's arg high word.
const (
	// ChainStopDepth: the link-depth budget was exhausted.
	ChainStopDepth int32 = iota
	// ChainStopBudget: the per-drain tuple budget was exhausted.
	ChainStopBudget
	// ChainStopLock: the destination's consumer try-lock was lost.
	ChainStopLock
	// ChainStopOccupied: the destination queue held tuples (FIFO bars
	// chaining ahead of them).
	ChainStopOccupied
	// ChainStopHalt: suspension or shutdown was requested.
	ChainStopHalt
)

// ChainStopReason names a ChainStop code for the trace_event export and
// tracecheck validation.
func ChainStopReason(code int32) string {
	switch code {
	case ChainStopDepth:
		return "depth"
	case ChainStopBudget:
		return "budget"
	case ChainStopLock:
		return "lock"
	case ChainStopOccupied:
		return "occupied"
	case ChainStopHalt:
		return "halt"
	default:
		return fmt.Sprintf("reason(%d)", code)
	}
}

// FlightRec reason codes, packed into KindFlightRec's arg high word.
const (
	// FlightRecQuarantine: an operator was quarantined.
	FlightRecQuarantine int32 = iota
	// FlightRecWatchdog: the scheduler watchdog saw a stalled thread.
	FlightRecWatchdog
	// FlightRecShutdown: shutdown missed its drain deadline.
	FlightRecShutdown
	// FlightRecOverload: the ingest overload gate tripped.
	FlightRecOverload
	// FlightRecManual: an operator-requested dump (CLI or /debugz).
	FlightRecManual
)

// FlightRecReason names a FlightRec code for the trace_event export and
// tracecheck validation.
func FlightRecReason(code int32) string {
	switch code {
	case FlightRecQuarantine:
		return "quarantine"
	case FlightRecWatchdog:
		return "watchdog"
	case FlightRecShutdown:
		return "shutdown-deadline"
	case FlightRecOverload:
		return "overload"
	case FlightRecManual:
		return "manual"
	default:
		return fmt.Sprintf("reason(%d)", code)
	}
}

// String implements fmt.Stringer; the names double as trace_event event
// names, so they are stable.
func (k Kind) String() string {
	switch k {
	case KindAcquire:
		return "acquire"
	case KindRelease:
		return "release"
	case KindSteal:
		return "steal"
	case KindSpill:
		return "spill"
	case KindPark:
		return "park"
	case KindUnpark:
		return "unpark"
	case KindResched:
		return "resched"
	case KindQuarantine:
		return "quarantine"
	case KindElastic:
		return "elastic-level"
	case KindChain:
		return "chain"
	case KindChainStop:
		return "chain-stop"
	case KindRelax:
		return "relax-level"
	case KindFairClaim:
		return "fair-claim"
	case KindVMFuse:
		return "vm-fuse"
	case KindAdmit:
		return "admit"
	case KindShed:
		return "shed"
	case KindThrottle:
		return "throttle"
	case KindBPSample:
		return "bp-sample"
	case KindFlightRec:
		return "flightrec-dump"
	case KindVMVec:
		return "vm-vec"
	case KindVMVecAbort:
		return "vm-vec-abort"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindNames returns every emitted kind's name in declaration order —
// a stable ordering for presenters that render Kinds tallies.
func KindNames() []string {
	names := make([]string, 0, numKinds-1)
	for k := KindNone + 1; k < numKinds; k++ {
		names = append(names, k.String())
	}
	return names
}

// PackPair packs two 32-bit values into one event arg (KindSteal,
// KindElastic).
func PackPair(hi int32, lo uint32) int64 {
	return int64(hi)<<32 | int64(lo)
}

// UnpackPair reverses PackPair.
func UnpackPair(arg int64) (hi int32, lo uint32) {
	return int32(arg >> 32), uint32(arg)
}

// Event is one decoded trace record.
type Event struct {
	// TS is the event time as an offset from the tracer's start.
	TS time.Duration
	// Ring is the index of the ring (≈ thread) that recorded the event.
	Ring int
	// Kind is the decision recorded.
	Kind Kind
	// Arg is the kind-specific argument (see the Kind constants).
	Arg int64
}

// slot is one ring entry: the timestamp and kind packed into one atomic
// word (ts<<8|kind; 2^56ns ≈ 2.3 years of run time), the argument in a
// second, and the slot's 1-based sequence number in a third. Atomic
// words make concurrent snapshot reads well-defined under the Go memory
// model; the sequence word resolves the wrap-race between a lapping
// writer and a reader exactly: the writer zeroes it before rewriting
// the data words and stores the new sequence after, so a reader that
// observes the expected sequence on both sides of its data reads knows
// the slot held that generation throughout.
type slot struct {
	seq atomic.Uint64
	w0  atomic.Uint64
	w1  atomic.Uint64
}

// Ring is one thread's event buffer. Exactly one goroutine may record
// into a ring (the owning thread); any goroutine may snapshot it.
type Ring struct {
	head atomic.Uint64 // next sequence number to write; monotonic
	buf  []slot
	mask uint64
	// pad keeps the write-hot head off the next ring's cache lines when
	// rings end up adjacent in memory.
	_ [48]byte
}

func newRing(capacity int) *Ring {
	return &Ring{buf: make([]slot, capacity), mask: uint64(capacity - 1)}
}

// record appends one event. Owner-only: the head load/store pair is not
// a read-modify-write because no other goroutine writes head.
func (r *Ring) record(ts int64, k Kind, arg int64) {
	h := r.head.Load()
	s := &r.buf[h&r.mask]
	s.seq.Store(0) // invalidate while the data words are in flux
	s.w0.Store(uint64(ts)<<8 | uint64(k))
	s.w1.Store(uint64(arg))
	s.seq.Store(h + 1)
	r.head.Store(h + 1)
}

// snapshot appends the ring's events, oldest first, to out. Each slot
// is validated against its sequence word before and after the data
// reads, so events the writer overwrote (or was overwriting) during the
// walk are dropped rather than returned torn, and a quiescent ring
// yields every event it holds.
func (r *Ring) snapshot(ring int, out []Event) []Event {
	h1 := r.head.Load()
	capacity := uint64(len(r.buf))
	lo := uint64(0)
	if h1 > capacity {
		lo = h1 - capacity
	}
	for i := lo; i < h1; i++ {
		s := &r.buf[i&r.mask]
		if s.seq.Load() != i+1 {
			continue // overwritten by a lapping writer, or mid-write
		}
		w0 := s.w0.Load()
		w1 := s.w1.Load()
		if s.seq.Load() != i+1 {
			continue // writer moved in during the data reads
		}
		out = append(out, Event{
			TS:   time.Duration(w0 >> 8),
			Ring: ring,
			Kind: Kind(w0 & 0xff),
			Arg:  int64(w1),
		})
	}
	return out
}

// Tracer is a set of per-thread rings behind one enable gate.
type Tracer struct {
	enabled atomic.Bool
	start   time.Time
	rings   []*Ring
	labels  []string
}

// DefaultRingCap is the per-ring capacity used when New is given a
// non-positive one: 8192 events ≈ 128KiB per thread.
const DefaultRingCap = 8192

// New returns a tracer with the given number of rings, each holding
// perRingCap events (rounded up to a power of two; ≤0 selects
// DefaultRingCap). Rings map one-to-one onto event writers — scheduler
// threads, source threads, the elasticity controller — and out-of-range
// ring indices drop silently, so sizing short loses events rather than
// corrupting them. The tracer starts disabled.
func New(rings, perRingCap int) *Tracer {
	if rings < 1 {
		rings = 1
	}
	if perRingCap <= 0 {
		perRingCap = DefaultRingCap
	}
	c := 1
	for c < perRingCap {
		c <<= 1
	}
	t := &Tracer{
		start:  time.Now(),
		rings:  make([]*Ring, rings),
		labels: make([]string, rings),
	}
	for i := range t.rings {
		t.rings[i] = newRing(c)
		t.labels[i] = fmt.Sprintf("ring-%d", i)
	}
	return t
}

// Rings returns the number of rings. By convention a tracer built for a
// PE has one ring per scheduler thread slot, then one per source
// thread, then one final ring for the elasticity controller.
func (t *Tracer) Rings() int { return len(t.rings) }

// SetLabel names a ring for the trace_event export (thread names in
// Perfetto). Call before Enable; out-of-range indices are ignored.
func (t *Tracer) SetLabel(ring int, label string) {
	if t == nil || ring < 0 || ring >= len(t.labels) {
		return
	}
	t.labels[ring] = label
}

// Enable opens the gate. Events emitted before Enable are dropped.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable closes the gate; in-flight Emit calls may still land.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// On reports whether the tracer exists and is enabled. It is the hot
// seams' gate: nil-receiver-safe and small enough to inline, so a
// disabled tracer costs one atomic load and an absent one costs a nil
// check.
func (t *Tracer) On() bool {
	return t != nil && t.enabled.Load()
}

// Emit records one event on the given ring. Callers must respect the
// single-writer rule: only the goroutine that owns ring may emit on it.
// Nil tracers, disabled tracers and out-of-range rings drop the event.
func (t *Tracer) Emit(ring int, k Kind, arg int64) {
	if !t.On() || ring < 0 || ring >= len(t.rings) {
		return
	}
	t.rings[ring].record(int64(time.Since(t.start)), k, arg)
}

// Snapshot decodes every ring, merged and sorted by timestamp. It is
// safe while the run is live: events overtaken by their writer during
// the read are dropped rather than returned torn.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i, r := range t.rings {
		out = r.snapshot(i, out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
