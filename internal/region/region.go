// Package region implements a simplified consistent-region protocol, the
// companion feature of the paper's runtime (§6 recounts how running the
// consistent-region tests under the dynamic threading model became a
// stress test that exposed latent races — legal interleavings the old
// runtime never produced). The protocol here establishes periodic
// consistent cuts: sources inject numbered markers in-band, every
// operator in the region checkpoints its state when it has seen the
// marker on all producers of all of its input ports, markers propagate
// downstream, and a cut completes when every sink has seen it.
//
// Markers travel as ordinary data tuples carrying a magic payload, so
// the protocol needs nothing from the scheduler beyond the ordering
// guarantee the paper's runtime already provides — per-stream FIFO. That
// also means cuts flow unmodified through every threading model and
// across inter-PE TCP boundaries (internal/xport serializes payload
// words).
//
// Alignment is per input port: an operator completes a cut on a port
// once markers from all of the port's producers have arrived. Tuples
// from early producers that arrive after their marker but before the
// port completes are processed into the *next* cut's state (unaligned
// checkpointing); single-producer ports — every port in the paper's
// evaluation graphs — are exactly aligned.
package region

import (
	"fmt"
	"sync"

	"streams/internal/graph"
	"streams/internal/tuple"
)

// Marker magic: two payload words that mark a data tuple as a cut
// marker. Words[0] carries the cut ID.
const (
	magic1 = 0xC0517EC7_0A11A11E // "collects all in line"
	magic2 = 0x5AFEBA12_D0_C0DE5
)

// IsMarker reports whether t is a cut marker and returns its cut ID.
func IsMarker(t tuple.Tuple) (uint64, bool) {
	if t.Kind == tuple.Data && t.Words[1] == magic1 && t.Words[2] == magic2 {
		return t.Words[0], true
	}
	return 0, false
}

// markerTuple builds the marker for cut id.
func markerTuple(id uint64) tuple.Tuple {
	var t tuple.Tuple
	t.Words[0] = id
	t.Words[1] = magic1
	t.Words[2] = magic2
	return t
}

// Checkpointer is implemented by operators with state worth saving.
// Checkpoint is called with the operator quiesced for the cut (all
// input ports aligned); Restore must reinstate the snapshot.
type Checkpointer interface {
	Checkpoint() []byte
	Restore(snapshot []byte) error
}

// Region coordinates cuts across a set of wrapped operators.
type Region struct {
	mu          sync.Mutex
	nextCut     uint64
	members     []*member
	sources     []*sourceWrapper
	sinkCount   int
	sinksSeen   map[uint64]int
	completed   uint64 // highest cut completed at every sink
	checkpoints map[uint64]map[string][]byte
	onComplete  func(cut uint64)
}

// New returns an empty region. Wrap the graph's operators with Wrap and
// WrapSource while building the topology, then call Attach on the built
// graph.
func New() *Region {
	return &Region{
		sinksSeen:   map[uint64]int{},
		checkpoints: map[uint64]map[string][]byte{},
	}
}

// OnComplete registers a callback invoked (on the thread that completes
// the cut) whenever a cut becomes consistent at every sink.
func (r *Region) OnComplete(fn func(cut uint64)) { r.onComplete = fn }

// Wrap returns op wrapped for cut processing. name keys the operator's
// checkpoints and must be unique within the region.
func (r *Region) Wrap(name string, op graph.Operator) graph.Operator {
	m := &member{region: r, name: name, inner: op, cuts: map[uint64]*cutState{}}
	r.members = append(r.members, m)
	return m
}

// WrapSource returns src wrapped so that TriggerCut causes a marker to
// be injected into the source's output stream at the next submission.
func (r *Region) WrapSource(src graph.Source) graph.Source {
	w := &sourceWrapper{inner: src}
	r.sources = append(r.sources, w)
	return w
}

// Attach resolves the wrapped operators' port structure from the built
// graph. Call once, after graph.Builder.Build and before running.
func (r *Region) Attach(g *graph.Graph) error {
	byOp := map[graph.Operator]*graph.Node{}
	for _, n := range g.Nodes {
		byOp[n.Op] = n
	}
	for _, m := range r.members {
		n, ok := byOp[graph.Operator(m)]
		if !ok {
			return fmt.Errorf("region: wrapped operator %q not found in the graph", m.name)
		}
		m.producers = make([]int, n.NumIn)
		for i, pid := range n.InPorts {
			m.producers[i] = g.Ports[pid].Producers
		}
		m.numOut = n.NumOut
		if n.NumOut == 0 {
			r.sinkCount++
		}
	}
	if r.sinkCount == 0 {
		return fmt.Errorf("region: no wrapped sink operators; cuts could never complete")
	}
	return nil
}

// TriggerCut starts a new cut and returns its ID. Every wrapped source
// injects the marker before its next tuple.
func (r *Region) TriggerCut() uint64 {
	r.mu.Lock()
	r.nextCut++
	id := r.nextCut
	r.mu.Unlock()
	for _, s := range r.sources {
		s.inject(id)
	}
	return id
}

// LastCompleted returns the highest cut ID that completed at every sink.
func (r *Region) LastCompleted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed
}

// Checkpoints returns the per-operator snapshots of a completed cut.
func (r *Region) Checkpoints(cut uint64) map[string][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string][]byte{}
	for k, v := range r.checkpoints[cut] {
		out[k] = v
	}
	return out
}

// RestoreLatest reinstates every Checkpointer member from the most
// recently completed cut, returning its ID (0 when no cut completed).
func (r *Region) RestoreLatest() (uint64, error) {
	r.mu.Lock()
	cut := r.completed
	snaps := r.checkpoints[cut]
	r.mu.Unlock()
	if cut == 0 {
		return 0, nil
	}
	for _, m := range r.members {
		cp, ok := m.inner.(Checkpointer)
		if !ok {
			continue
		}
		snap, have := snaps[m.name]
		if !have {
			return cut, fmt.Errorf("region: cut %d has no snapshot for %q", cut, m.name)
		}
		if err := cp.Restore(snap); err != nil {
			return cut, fmt.Errorf("region: restoring %q: %w", m.name, err)
		}
	}
	return cut, nil
}

// saveCheckpoint records a member's snapshot for a cut.
func (r *Region) saveCheckpoint(cut uint64, name string, snap []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.checkpoints[cut] == nil {
		r.checkpoints[cut] = map[string][]byte{}
	}
	r.checkpoints[cut][name] = snap
}

// sinkCompleted accounts a sink finishing a cut.
func (r *Region) sinkCompleted(cut uint64) {
	r.mu.Lock()
	r.sinksSeen[cut]++
	done := r.sinksSeen[cut] == r.sinkCount
	if done {
		delete(r.sinksSeen, cut)
		if cut > r.completed {
			r.completed = cut
		}
	}
	fn := r.onComplete
	r.mu.Unlock()
	if done && fn != nil {
		fn(cut)
	}
}

// member wraps one operator.
type member struct {
	region    *Region
	name      string
	inner     graph.Operator
	producers []int // per input port, filled by Attach
	numOut    int

	mu   sync.Mutex
	cuts map[uint64]*cutState
}

type cutState struct {
	perPort []int // markers seen per input port
	done    bool
}

// Name implements graph.Operator.
func (m *member) Name() string { return m.inner.Name() }

// Process implements graph.Operator.
func (m *member) Process(out graph.Submitter, t tuple.Tuple, inPort int) {
	cut, isMarker := IsMarker(t)
	if !isMarker {
		m.inner.Process(out, t, inPort)
		return
	}
	if m.markPort(cut, inPort) {
		if cp, ok := m.inner.(Checkpointer); ok {
			m.region.saveCheckpoint(cut, m.name, cp.Checkpoint())
		}
		if m.numOut == 0 {
			m.region.sinkCompleted(cut)
			return
		}
		for port := 0; port < m.numOut; port++ {
			out.Submit(markerTuple(cut), port)
		}
	}
}

// OnPunct implements graph.Puncts, delegating observation to the inner
// operator (markers are data tuples, so punctuation passes through
// untouched).
func (m *member) OnPunct(out graph.Submitter, k tuple.Kind, inPort int) {
	if ph, ok := m.inner.(graph.Puncts); ok {
		ph.OnPunct(out, k, inPort)
	}
}

// markPort records a marker arrival and reports whether the cut just
// completed across all input ports.
func (m *member) markPort(cut uint64, inPort int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs := m.cuts[cut]
	if cs == nil {
		cs = &cutState{perPort: make([]int, len(m.producers))}
		m.cuts[cut] = cs
	}
	if cs.done {
		return false
	}
	cs.perPort[inPort]++
	for p, seen := range cs.perPort {
		if seen < m.producers[p] {
			return false
		}
	}
	cs.done = true
	delete(m.cuts, cut) // completed cuts need no further state
	return true
}

// sourceWrapper injects pending markers into a source's submissions.
type sourceWrapper struct {
	inner graph.Source

	mu      sync.Mutex
	pending []uint64
}

func (s *sourceWrapper) inject(cut uint64) {
	s.mu.Lock()
	s.pending = append(s.pending, cut)
	s.mu.Unlock()
}

// Name implements graph.Operator.
func (s *sourceWrapper) Name() string { return s.inner.Name() }

// Process implements graph.Operator; sources receive no input.
func (s *sourceWrapper) Process(out graph.Submitter, t tuple.Tuple, inPort int) {
	s.inner.Process(out, t, inPort)
}

// Run implements graph.Source, wrapping the submitter so pending markers
// are flushed before each tuple; any still-pending markers are flushed
// when the source finishes, so a cut triggered near the end still
// completes.
func (s *sourceWrapper) Run(out graph.Submitter, stop <-chan struct{}) {
	w := &injectingSubmitter{src: s, out: out}
	s.inner.Run(w, stop)
	w.flush()
}

type injectingSubmitter struct {
	src *sourceWrapper
	out graph.Submitter
}

// Submit implements graph.Submitter.
func (w *injectingSubmitter) Submit(t tuple.Tuple, outPort int) {
	w.flush()
	w.out.Submit(t, outPort)
}

func (w *injectingSubmitter) flush() {
	w.src.mu.Lock()
	pending := w.src.pending
	w.src.pending = nil
	w.src.mu.Unlock()
	for _, cut := range pending {
		// Markers go to every output port of the source.
		w.out.Submit(markerTuple(cut), 0)
	}
}
