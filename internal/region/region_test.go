package region

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streams/internal/fuse"
	"streams/internal/graph"
	"streams/internal/pe"
	"streams/internal/tuple"
)

// cutSource emits `perCut` tuples, triggers a cut, and repeats `cuts`
// times — so cut c's marker sits exactly after tuple perCut·c in the
// stream, making checkpoint values exactly predictable.
type cutSource struct {
	r      *Region
	perCut int
	cuts   int
}

func (s *cutSource) Name() string                              { return "cutSrc" }
func (s *cutSource) Process(graph.Submitter, tuple.Tuple, int) {}
func (s *cutSource) Run(out graph.Submitter, stop <-chan struct{}) {
	n := uint64(0)
	for c := 0; c < s.cuts; c++ {
		for i := 0; i < s.perCut; i++ {
			select {
			case <-stop:
				return
			default:
			}
			out.Submit(tuple.NewData(n), 0)
			n++
		}
		s.r.TriggerCut()
	}
	// One trailing tuple flushes the final cut's marker.
	out.Submit(tuple.NewData(n), 0)
}

// counter is a stateful, checkpointable operator: it counts data tuples
// and forwards them.
type counter struct {
	n atomic.Uint64
}

func (c *counter) Name() string { return "counter" }
func (c *counter) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	c.n.Add(1)
	out.Submit(t, 0)
}
func (c *counter) Checkpoint() []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], c.n.Load())
	return b[:]
}
func (c *counter) Restore(snap []byte) error {
	c.n.Store(binary.BigEndian.Uint64(snap))
	return nil
}

// terminal is a checkpointable sink counting deliveries.
type terminal struct {
	counter
}

func (t *terminal) Process(_ graph.Submitter, _ tuple.Tuple, _ int) { t.n.Add(1) }

// buildRegionGraph wires cutSource → counter×depth → terminal, all
// wrapped.
func buildRegionGraph(t *testing.T, r *Region, perCut, cuts, depth int) (*graph.Graph, []*counter, *terminal) {
	t.Helper()
	b := graph.NewBuilder()
	src := b.AddNode(r.WrapSource(&cutSource{r: r, perCut: perCut, cuts: cuts}), 0, 1)
	prev := src
	var counters []*counter
	for i := 0; i < depth; i++ {
		c := &counter{}
		counters = append(counters, c)
		n := b.AddNode(r.Wrap(names[i], c), 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	term := &terminal{}
	sn := b.AddNode(r.Wrap("sink", term), 1, 0)
	b.Connect(prev, 0, sn, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(g); err != nil {
		t.Fatal(err)
	}
	return g, counters, term
}

var names = []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}

// TestCutsAreExactlyConsistent is the §6 stress test: under the dynamic
// threading model with several threads, every checkpoint of every
// operator at cut c must record exactly perCut·c tuples — the cut is a
// consistent snapshot across the whole pipeline.
func TestCutsAreExactlyConsistent(t *testing.T) {
	const perCut, cuts, depth = 500, 8, 4
	for _, model := range []pe.Model{pe.Manual, pe.Dedicated, pe.Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			r := New()
			g, _, term := buildRegionGraph(t, r, perCut, cuts, depth)
			p, err := pe.New(g, pe.Config{Model: model, Threads: 3, MaxThreads: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Start(); err != nil {
				t.Fatal(err)
			}
			p.Wait()
			if got := r.LastCompleted(); got != cuts {
				t.Fatalf("%v: %d cuts completed, want %d", model, got, cuts)
			}
			if term.n.Load() != perCut*cuts+1 {
				t.Fatalf("%v: sink saw %d tuples", model, term.n.Load())
			}
			for c := uint64(1); c <= cuts; c++ {
				snaps := r.Checkpoints(c)
				want := uint64(perCut) * c
				for i := 0; i < depth; i++ {
					snap, ok := snaps[names[i]]
					if !ok {
						t.Fatalf("%v: cut %d missing snapshot for %s", model, c, names[i])
					}
					if got := binary.BigEndian.Uint64(snap); got != want {
						t.Fatalf("%v: cut %d snapshot of %s = %d, want %d (inconsistent cut)",
							model, c, names[i], got, want)
					}
				}
				if got := binary.BigEndian.Uint64(snaps["sink"]); got != want {
					t.Fatalf("%v: cut %d sink snapshot %d, want %d", model, c, got, want)
				}
			}
		})
	}
}

// TestRestoreLatest rewinds operators to the last consistent cut.
func TestRestoreLatest(t *testing.T) {
	const perCut, cuts = 300, 3
	r := New()
	g, counters, _ := buildRegionGraph(t, r, perCut, cuts, 2)
	p, err := pe.New(g, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	// Post-run the counters include the trailing tuple past the last cut.
	if counters[0].n.Load() != perCut*cuts+1 {
		t.Fatalf("counter at %d", counters[0].n.Load())
	}
	cut, err := r.RestoreLatest()
	if err != nil {
		t.Fatal(err)
	}
	if cut != cuts {
		t.Fatalf("restored cut %d, want %d", cut, cuts)
	}
	for i, c := range counters {
		if got := c.n.Load(); got != perCut*cuts {
			t.Fatalf("counter %d restored to %d, want %d", i, got, perCut*cuts)
		}
	}
}

// TestOnCompleteOrdering: cuts complete monotonically.
func TestOnCompleteOrdering(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var order []uint64
	r.OnComplete(func(cut uint64) {
		mu.Lock()
		order = append(order, cut)
		mu.Unlock()
	})
	g, _, _ := buildRegionGraph(t, r, 100, 5, 3)
	p, err := pe.New(g, pe.Config{Model: pe.Dynamic, Threads: 3, MaxThreads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("completed %d cuts: %v", len(order), order)
	}
	for i, c := range order {
		if c != uint64(i+1) {
			t.Fatalf("cuts completed out of order: %v", order)
		}
	}
}

// TestCutsAcrossDistributedDeployment runs the protocol through a fused
// two-PE deployment: markers are plain data tuples, so they cross the
// TCP boundary and cuts stay consistent end to end.
func TestCutsAcrossDistributedDeployment(t *testing.T) {
	const perCut, cuts, depth = 400, 4, 4
	r := New()
	g, _, _ := buildRegionGraph(t, r, perCut, cuts, depth)
	d, err := fuse.Plan(g, 2, pe.Config{Model: pe.Dynamic, Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { d.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("distributed region run did not drain")
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if got := r.LastCompleted(); got != cuts {
		t.Fatalf("%d cuts completed across PEs, want %d", got, cuts)
	}
	for c := uint64(1); c <= cuts; c++ {
		snaps := r.Checkpoints(c)
		want := uint64(perCut) * c
		for i := 0; i < depth; i++ {
			if got := binary.BigEndian.Uint64(snaps[names[i]]); got != want {
				t.Fatalf("cut %d snapshot of %s = %d, want %d", c, names[i], got, want)
			}
		}
	}
}

// TestAttachValidation rejects regions with no sinks or unattached
// members.
func TestAttachValidation(t *testing.T) {
	r := New()
	b := graph.NewBuilder()
	src := b.AddNode(r.WrapSource(&cutSource{r: r, perCut: 1, cuts: 1}), 0, 1)
	c := &counter{}
	n := b.AddNode(r.Wrap("c", c), 1, 1)
	plain := b.AddNode(&terminal{}, 1, 0) // unwrapped sink
	b.Connect(src, 0, n, 0)
	b.Connect(n, 0, plain, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(g); err == nil {
		t.Fatal("region without wrapped sinks accepted")
	}

	r2 := New()
	r2.Wrap("ghost", &counter{})
	g2, _, _ := buildRegionGraph(t, New(), 1, 1, 1)
	if err := r2.Attach(g2); err == nil {
		t.Fatal("unattached member accepted")
	}
}

func TestIsMarker(t *testing.T) {
	m := markerTuple(7)
	if id, ok := IsMarker(m); !ok || id != 7 {
		t.Fatalf("IsMarker(marker) = %d, %v", id, ok)
	}
	if _, ok := IsMarker(tuple.NewData(7)); ok {
		t.Fatal("plain tuple recognized as marker")
	}
	if _, ok := IsMarker(tuple.Final()); ok {
		t.Fatal("punctuation recognized as marker")
	}
}
