package xport

import (
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/pe"
	"streams/internal/tuple"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(kindSel uint8, seq uint64, w0, w1, w7 uint64) bool {
		kinds := []tuple.Kind{tuple.Data, tuple.WindowMark, tuple.FinalMark}
		in := tuple.Tuple{Kind: kinds[int(kindSel)%3], Seq: seq}
		in.Words[0], in.Words[1], in.Words[7] = w0, w1, w7
		var buf [frameSize]byte
		EncodeFrame(buf[:], in)
		out, err := DecodeFrame(buf[:])
		if err != nil {
			return false
		}
		return out.Kind == in.Kind && out.Seq == in.Seq && out.Words == in.Words
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 3)); err == nil {
		t.Error("short frame accepted")
	}
	bad := make([]byte, frameSize)
	bad[0] = 99
	if _, err := DecodeFrame(bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

// buildPEs wires PE1 (Generator → Worker → Export) to PE2 (Import →
// Worker → Sink) over a loopback TCP connection and returns both plus
// the sink and the transports.
func buildPEs(t *testing.T, n uint64, model pe.Model) (*pe.PE, *pe.PE, *ops.Sink, *Export, *Import) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	exp := NewExport("Export", func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	})
	b1 := graph.NewBuilder()
	src := b1.AddNode(&ops.Generator{Limit: n}, 0, 1)
	w1 := b1.AddNode(&ops.Worker{Cost: 5}, 1, 1)
	ex := b1.AddNode(exp, 1, 0)
	b1.Connect(src, 0, w1, 0)
	b1.Connect(w1, 0, ex, 0)
	g1, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}
	pe1, err := pe.New(g1, pe.Config{Model: model, Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}

	imp := NewImport("Import", ln)
	snk := &ops.Sink{}
	b2 := graph.NewBuilder()
	in := b2.AddNode(imp, 0, 1)
	w2 := b2.AddNode(&ops.Worker{Cost: 5}, 1, 1)
	sn := b2.AddNode(snk, 1, 0)
	b2.Connect(in, 0, w2, 0)
	b2.Connect(w2, 0, sn, 0)
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	pe2, err := pe.New(g2, pe.Config{Model: model, Threads: 2, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return pe1, pe2, snk, exp, imp
}

// TestTwoPEsDrainAcrossTCP runs a bounded stream across two PEs and
// verifies full delivery, in-order arrival, and final-punctuation-driven
// drain of the downstream PE.
func TestTwoPEsDrainAcrossTCP(t *testing.T) {
	const n = 20000
	for _, model := range []pe.Model{pe.Dynamic, pe.Manual} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			var mu sync.Mutex
			var seen []uint64
			pe1, pe2, snk, exp, imp := buildPEs(t, n, model)
			snk.OnTuple = func(tp tuple.Tuple) {
				mu.Lock()
				seen = append(seen, tp.Words[0])
				mu.Unlock()
			}
			if err := pe2.Start(); err != nil {
				t.Fatal(err)
			}
			if err := pe1.Start(); err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				pe1.Wait()
				pe2.Wait()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("distributed drain timed out")
			}
			if err := exp.Err(); err != nil {
				t.Fatalf("export error: %v", err)
			}
			if err := imp.Err(); err != nil {
				t.Fatalf("import error: %v", err)
			}
			if got := snk.Count(); got != n {
				t.Fatalf("downstream sink saw %d tuples, want %d", got, n)
			}
			if imp.Received() != n {
				t.Fatalf("import received %d, want %d", imp.Received(), n)
			}
			// exp.Sent counts data + final punctuation.
			if exp.Sent() != n+1 {
				t.Fatalf("export sent %d frames, want %d", exp.Sent(), n+1)
			}
			for i, v := range seen {
				if v != uint64(i) {
					t.Fatalf("position %d: tuple %d out of order across the wire", i, v)
				}
			}
		})
	}
}

// TestImportStopsWithoutPeer verifies the PE input port thread honors
// stop while waiting for a connection.
func TestImportStopsWithoutPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	imp := NewImport("Import", ln)
	stop := make(chan struct{})
	ret := make(chan struct{})
	go func() {
		imp.Run(nopSubmitter{}, stop)
		close(ret)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-ret:
	case <-time.After(5 * time.Second):
		t.Fatal("Import.Run did not stop")
	}
}

type nopSubmitter struct{}

func (nopSubmitter) Submit(tuple.Tuple, int) {}

// TestImportRejectsBadPreamble checks protocol validation.
func TestImportRejectsBadPreamble(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	imp := NewImport("Import", ln)
	stop := make(chan struct{})
	ret := make(chan struct{})
	go func() {
		imp.Run(nopSubmitter{}, stop)
		close(ret)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("BOGUS")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case <-ret:
	case <-time.After(5 * time.Second):
		t.Fatal("Import.Run did not return on bad preamble")
	}
	if imp.Err() == nil {
		t.Fatal("bad preamble produced no error")
	}
}

// TestWindowPunctuationCrossesWire checks in-band window marks survive
// the transport.
func TestWindowPunctuationCrossesWire(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	exp := NewExport("Export", func() (net.Conn, error) { return net.Dial("tcp", addr) })
	imp := NewImport("Import", ln)

	var mu sync.Mutex
	var got []tuple.Kind
	collect := submitterFunc(func(t tuple.Tuple, _ int) {
		mu.Lock()
		got = append(got, t.Kind)
		mu.Unlock()
	})
	stop := make(chan struct{})
	ret := make(chan struct{})
	go func() {
		imp.Run(collect, stop)
		close(ret)
	}()
	exp.Process(nil, tuple.NewData(1), 0)
	exp.OnPunct(nil, tuple.WindowMark, 0)
	exp.Process(nil, tuple.NewData(2), 0)
	exp.Finish(nil)
	select {
	case <-ret:
	case <-time.After(5 * time.Second):
		t.Fatal("import did not finish")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []tuple.Kind{tuple.Data, tuple.WindowMark, tuple.Data}
	if len(got) != len(want) {
		t.Fatalf("received kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d kind %v, want %v", i, got[i], want[i])
		}
	}
}

type submitterFunc func(tuple.Tuple, int)

func (f submitterFunc) Submit(t tuple.Tuple, p int) { f(t, p) }

// TestExportDialFailure: a dead peer surfaces as Err once the retry
// budget runs out, not a hang; abandoned frames are counted dropped.
func TestExportDialFailure(t *testing.T) {
	exp := NewExportWith("Export", func() (net.Conn, error) {
		return net.DialTimeout("tcp", "127.0.0.1:1", 50*time.Millisecond)
	}, Options{RetryBudget: 200 * time.Millisecond, BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond})
	exp.Process(nil, tuple.NewData(1), 0)
	if exp.Err() == nil {
		t.Fatal("dial failure produced no error")
	}
	if exp.Dropped() == 0 {
		t.Fatal("abandoned frame not counted dropped")
	}
	// Further sends are no-ops, not panics.
	exp.Process(nil, tuple.NewData(2), 0)
	exp.Finish(nil)
	if exp.Dropped() < 3 {
		t.Fatalf("dropped %d, want ≥3 (data ×2 + final)", exp.Dropped())
	}
}
