package xport

import (
	"net"
	"sync"
	"testing"
	"time"

	"streams/internal/fault"
	"streams/internal/tuple"
)

// killableListener wraps a Listener and remembers the live connection so
// a test can sever it mid-stream, simulating a network partition or peer
// reset between two PEs.
type killableListener struct {
	net.Listener
	mu   sync.Mutex
	last net.Conn
}

func (k *killableListener) Accept() (net.Conn, error) {
	conn, err := k.Listener.Accept()
	if err == nil {
		k.mu.Lock()
		k.last = conn
		k.mu.Unlock()
	}
	return conn, err
}

// killActive closes the most recently accepted connection, killing the
// in-flight stream from the import side.
func (k *killableListener) killActive() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.last != nil {
		k.last.Close()
	}
}

// TestReconnectJitterDecorrelated: two exports — even with the same
// boundary name, as happens when a restarted PE re-creates its links —
// must not share a retry schedule. A shared schedule means every link
// dropped by one outage redials at the same instants, defeating the
// backoff's jitter.
func TestReconnectJitterDecorrelated(t *testing.T) {
	schedule := func() []time.Duration {
		e := NewExportWith("pe1->pe2:out", nil, Options{})
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = e.jittered(100 * time.Millisecond)
		}
		return out
	}
	a, b := schedule(), schedule()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	// The jitter range holds 50M distinct nanosecond values; two
	// decorrelated streams colliding even a handful of times in 32
	// draws is implausible, while the old name-only seeding collides
	// on every draw.
	if same > 3 {
		t.Fatalf("identically-named exports shared %d/%d backoff draws — retry schedules are correlated", same, len(a))
	}
	for i, d := range a {
		if d < 50*time.Millisecond || d >= 100*time.Millisecond {
			t.Fatalf("draw %d: %v outside [d/2, d)", i, d)
		}
	}
}

// orderedCollector records data payloads and flags duplicates or gaps.
type orderedCollector struct {
	mu   sync.Mutex
	seen []uint64
}

func (c *orderedCollector) Submit(t tuple.Tuple, _ int) {
	if t.Kind != tuple.Data {
		return
	}
	c.mu.Lock()
	c.seen = append(c.seen, t.Words[0])
	c.mu.Unlock()
}

func (c *orderedCollector) check(t *testing.T, n uint64) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if got := uint64(len(c.seen)); got != n {
		t.Fatalf("collector saw %d tuples, want %d", got, n)
	}
	for i, v := range c.seen {
		if v != uint64(i) {
			t.Fatalf("position %d holds tuple %d: loss, duplication or reorder across reconnect", i, v)
		}
	}
}

// runImport starts an Import on its own goroutine and returns a wait
// function that fails the test if Run does not finish.
func runImport(t *testing.T, imp *Import, out *orderedCollector) func() {
	t.Helper()
	stop := make(chan struct{})
	ret := make(chan struct{})
	go func() {
		imp.Run(out, stop)
		close(ret)
	}()
	return func() {
		t.Helper()
		select {
		case <-ret:
		case <-time.After(30 * time.Second):
			close(stop)
			t.Fatal("Import.Run did not finish")
		}
	}
}

// TestReconnectResumesWithoutLoss severs the live connection twice in
// the middle of a bounded stream and verifies the resume handshake
// redelivers exactly the unacknowledged tail: every tuple arrives once,
// in order, and both sides finish clean.
func TestReconnectResumesWithoutLoss(t *testing.T) {
	const n = 5000
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kl := &killableListener{Listener: ln}
	addr := ln.Addr().String()
	exp := NewExportWith("Export[pe1→pe2]", func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}, Options{BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond})
	imp := NewImport("Import", kl)
	out := &orderedCollector{}
	wait := runImport(t, imp, out)

	for i := uint64(0); i < n; i++ {
		if i == 1000 || i == 3000 {
			kl.killActive()
		}
		exp.Process(nil, tuple.NewData(i), 0)
	}
	exp.Finish(nil)
	wait()

	if err := exp.Err(); err != nil {
		t.Fatalf("export error: %v", err)
	}
	if err := imp.Err(); err != nil {
		t.Fatalf("import error: %v", err)
	}
	out.check(t, n)
	if imp.Received() != n {
		t.Fatalf("import received %d, want %d", imp.Received(), n)
	}
	if exp.Sent() != n+1 {
		t.Fatalf("export sent %d frames, want %d (replays must not count)", exp.Sent(), n+1)
	}
	if exp.Reconnects() == 0 {
		t.Fatal("stream survived without reconnecting — the kill did not land")
	}
	if exp.Resent() == 0 {
		t.Fatal("reconnect replayed nothing — unacked tail was lost, not resent")
	}
	if exp.Dropped() != 0 {
		t.Fatalf("export dropped %d frames", exp.Dropped())
	}
	t.Logf("reconnects=%d resent=%d accepts=%d", exp.Reconnects(), exp.Resent(), imp.Accepts())
}

// TestChaosConnDropNoLoss drives the same conservation property through
// the fault injector's ConnDrop/ConnLatency seams instead of an external
// kill: with drops injected at 1%, the stream still delivers every tuple
// exactly once, in order.
func TestChaosConnDropNoLoss(t *testing.T) {
	const n = 3000
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	inj := fault.New(fault.Config{Seed: 42, DropRate: 0.01, LatencyRate: 0.01, LatencyFor: 50 * time.Microsecond})
	exp := NewExportWith("Export[pe1→pe2]", func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}, Options{BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond, Fault: inj})
	imp := NewImport("Import", ln)
	out := &orderedCollector{}
	wait := runImport(t, imp, out)

	for i := uint64(0); i < n; i++ {
		exp.Process(nil, tuple.NewData(i), 0)
	}
	// Injected drops race Finish's drain; disable before finishing so the
	// drain itself is not sabotaged forever.
	inj.SetEnabled(false)
	exp.Finish(nil)
	wait()

	if err := exp.Err(); err != nil {
		t.Fatalf("export error: %v", err)
	}
	out.check(t, n)
	if fired := inj.Fired(fault.ConnDrop); fired == 0 {
		t.Fatal("drop injector never fired; test exercised nothing")
	}
	if exp.Reconnects() == 0 {
		t.Fatal("injected drops caused no reconnects")
	}
	if exp.Dropped() != 0 {
		t.Fatalf("export dropped %d frames", exp.Dropped())
	}
	t.Logf("drops fired=%d reconnects=%d resent=%d", inj.Fired(fault.ConnDrop), exp.Reconnects(), exp.Resent())
}
