// Package xport connects processing elements over the network, the way
// IBM Streams runs distributed applications: streams that cross PE
// boundaries are serialized onto TCP connections, and each PE input port
// has its own thread that receives data, deserializes tuples, and
// executes the receiving operators (§2.3 — one more kind of thread the
// operator scheduler does not control but must coexist with).
//
// An Export operator terminates a stream in one PE and writes
// length-delimited tuple frames to a connection; an Import source opens
// the peer PE's side, reading frames and submitting tuples. Final
// punctuation travels in-band, so a bounded upstream PE drains its
// downstream PE exactly like a fused graph would.
//
// # Fault containment
//
// The v2 protocol survives connection loss without losing or duplicating
// tuples. Frames carry no sequence numbers on the wire; instead position
// is implicit in TCP's ordering and re-established on reconnect by a
// resume handshake: the Import, after validating the preamble, tells the
// Export how many frames it has fully processed, and the Export replays
// its retained unacknowledged tail from exactly that offset. The Import
// acknowledges its cumulative processed count every ackEvery frames (and
// on final punctuation), which lets the Export prune its retain buffer;
// because the Export never prunes past the last ack and the Import never
// acknowledges an unprocessed frame, the replay window always covers
// whatever a dying connection swallowed. Reconnection uses capped
// exponential backoff with jitter under a total retry budget; exhausting
// the budget latches an error naming the export and counts the unacked
// frames as dropped. Export.Finish waits (bounded by DrainTimeout) for
// the final frame's acknowledgement, so a clean drain is end-to-end
// confirmed, not just locally flushed.
package xport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streams/internal/fault"
	"streams/internal/graph"
	"streams/internal/tuple"
)

// Wire format: a fixed preamble per connection, then frames one way and
// cumulative acks the other.
//
//	preamble: "SPLX" version(1)            export → import
//	resume:   processed(8)                 import → export, once per conn
//	frame:    kind(1) seq(8) words(8×8)    export → import
//	ack:      processed(8)                 import → export
//
// Tuple.Ref is not transmitted: like the product, typed payloads need
// per-type serializers, and the evaluation workloads carry their payload
// in the inline words.
const (
	magic      = "SPLX"
	version    = 2
	frameSize  = 1 + 8 + 8*tuple.PayloadWords
	ioDeadline = 200 * time.Millisecond
	// ackEvery is the import-side acknowledgement cadence: one cumulative
	// position ack per this many processed frames, plus one on final
	// punctuation so the exporter's drain wait completes promptly.
	ackEvery = 64
	// ackDeadline bounds an 8-byte ack write; a peer that cannot absorb
	// it is treated as a dead connection.
	ackDeadline = 2 * time.Second
	// pruneBytes is how much acknowledged prefix the retain buffer
	// accumulates before compacting.
	pruneBytes = 64 << 10
)

// FrameSize is the encoded size of one frame: kind byte, sequence
// number, payload words. Exported so other wire front ends (ingest)
// can reuse EncodeFrame/DecodeFrame with correctly-sized buffers.
const FrameSize = frameSize

// EncodeFrame serializes t into buf (which must hold frameSize bytes).
func EncodeFrame(buf []byte, t tuple.Tuple) {
	buf[0] = byte(t.Kind)
	binary.BigEndian.PutUint64(buf[1:9], t.Seq)
	for i, w := range t.Words {
		binary.BigEndian.PutUint64(buf[9+8*i:], w)
	}
}

// DecodeFrame deserializes a frame.
func DecodeFrame(buf []byte) (tuple.Tuple, error) {
	var t tuple.Tuple
	if len(buf) < frameSize {
		return t, fmt.Errorf("xport: short frame (%d bytes)", len(buf))
	}
	k := tuple.Kind(buf[0])
	switch k {
	case tuple.Data, tuple.WindowMark, tuple.FinalMark:
		t.Kind = k
	default:
		return t, fmt.Errorf("xport: unknown tuple kind %d", buf[0])
	}
	t.Seq = binary.BigEndian.Uint64(buf[1:9])
	for i := range t.Words {
		t.Words[i] = binary.BigEndian.Uint64(buf[9+8*i:])
	}
	return t, nil
}

// Options tunes an Export's reconnect and drain behavior. The zero value
// selects the defaults noted per field.
type Options struct {
	// RetryBudget is the total time send may spend redialing one outage
	// before giving up and latching an error (default 15s).
	RetryBudget time.Duration
	// BackoffMin/BackoffMax bound the jittered exponential backoff
	// between dial attempts (defaults 10ms / 1s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// HandshakeTimeout bounds the preamble write and resume read on a
	// fresh connection (default 2s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each frame write or flush (default 5s).
	WriteTimeout time.Duration
	// DrainTimeout bounds Finish's wait for the peer to acknowledge the
	// final frame (default 10s).
	DrainTimeout time.Duration
	// Fault optionally injects connection drops and write latency at the
	// send seam (sites ConnDrop, ConnLatency). Nil means no injection.
	Fault *fault.Injector
}

func (o Options) withDefaults() Options {
	if o.RetryBudget == 0 {
		o.RetryBudget = 15 * time.Second
	}
	if o.BackoffMin == 0 {
		o.BackoffMin = 10 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = time.Second
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 2 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// errNoResume marks a handshake whose resume position falls outside the
// retained window — the peer lost its position state (e.g. restarted),
// so retrying cannot help.
var errNoResume = errors.New("xport: peer position not resumable")

// Export is a sink operator that forwards every tuple to a peer PE over
// a connection, retaining unacknowledged frames so a dropped connection
// can be resumed without loss. Its local state is lock-protected because
// under the dynamic model any thread may execute it.
type Export struct {
	name string
	dial func() (net.Conn, error)
	opt  Options

	mu       sync.Mutex
	conn     net.Conn
	bw       *bufio.Writer
	connDead bool
	err      error

	// retain holds the frames [retainBase, xseq) back to back; everything
	// at an index ≥ the peer's last ack may need replaying.
	retain     []byte
	retainBase uint64
	// xseq counts frames enqueued (data and punctuation, replays
	// excluded); written tracks the highest frame handed to a connection
	// at least once, so replays can be told apart from first sends.
	xseq    uint64
	written uint64

	everConnected bool
	reconnects    uint64
	resent        uint64
	dropped       uint64
	jit           uint64

	// acked is the peer's cumulative processed count, advanced by the
	// per-connection ack reader; atomic so that reader never needs mu.
	acked atomic.Uint64
}

// NewExport returns an Export with default Options that lazily dials its
// peer on the first tuple. Name is diagnostic and should identify the PE
// pair the export bridges.
func NewExport(name string, dial func() (net.Conn, error)) *Export {
	return NewExportWith(name, dial, Options{})
}

// jitEntropy decorrelates export jitter states across exports and across
// process runs. Seeding from the name alone would make every export's
// retry schedule a pure function of its name, so two links dropped by
// the same outage — or the same link across restarts — would redial in
// lockstep, which is exactly the thundering herd jitter exists to break.
var jitEntropy atomic.Uint64

// NewExportWith is NewExport with explicit Options.
func NewExportWith(name string, dial func() (net.Conn, error), opt Options) *Export {
	e := &Export{name: name, dial: dial, opt: opt.withDefaults()}
	for _, c := range name {
		e.jit = e.jit*31 + uint64(c)
	}
	e.jit ^= uint64(time.Now().UnixNano()) * 0x9e3779b97f4a7c15
	e.jit ^= jitEntropy.Add(0x6a09e667f3bcc909)
	e.jit |= 1
	return e
}

// Name implements graph.Operator.
func (e *Export) Name() string { return e.name }

// Sent returns the number of frames enqueued for the peer (including
// punctuation, excluding reconnect replays).
func (e *Export) Sent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.xseq
}

// Reconnects returns how many times the export re-established its
// connection after losing one.
func (e *Export) Reconnects() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reconnects
}

// Resent returns how many frames were replayed on reconnects.
func (e *Export) Resent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resent
}

// Dropped returns how many frames were abandoned after the retry budget
// ran out (0 unless Err is non-nil).
func (e *Export) Dropped() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Err returns the first unrecoverable transport error, if any.
func (e *Export) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Process implements graph.Operator.
func (e *Export) Process(_ graph.Submitter, t tuple.Tuple, _ int) {
	e.send(t)
}

// OnPunct implements graph.Puncts: window marks travel in-band. (Final
// marks are sent by Finish so they are emitted exactly once, after all
// data.)
func (e *Export) OnPunct(_ graph.Submitter, k tuple.Kind, _ int) {
	if k == tuple.WindowMark {
		e.send(tuple.Window())
	}
}

// Finish implements sched.Finalizer: send the final punctuation, then
// wait — reconnecting if necessary, bounded by DrainTimeout — until the
// peer has acknowledged every frame, and close.
func (e *Export) Finish(graph.Submitter) {
	e.send(tuple.Final())
	e.mu.Lock()
	if e.err == nil && e.bw != nil && !e.connDead {
		if err := e.flushLocked(); err != nil {
			e.connDead = true
		}
	}
	e.mu.Unlock()
	deadline := time.Now().Add(e.opt.DrainTimeout)
	for {
		e.mu.Lock()
		if e.err != nil || e.acked.Load() >= e.xseq {
			e.closeLocked()
			e.mu.Unlock()
			return
		}
		if e.connDead || e.conn == nil {
			if !e.reconnectLocked() {
				e.closeLocked()
				e.mu.Unlock()
				return
			}
		}
		e.mu.Unlock()
		if !time.Now().Before(deadline) {
			e.mu.Lock()
			if e.err == nil {
				e.err = fmt.Errorf("xport: export %s: drain deadline %v expired with %d of %d frames unacknowledged",
					e.name, e.opt.DrainTimeout, e.xseq-e.acked.Load(), e.xseq)
			}
			e.closeLocked()
			e.mu.Unlock()
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func (e *Export) send(t tuple.Tuple) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		e.dropped++
		return
	}
	if inj := e.opt.Fault; inj.Enabled() {
		if inj.Should(fault.ConnLatency) {
			time.Sleep(inj.Delay(fault.ConnLatency))
		}
		if e.conn != nil && inj.Should(fault.ConnDrop) {
			// Simulate a peer reset: the closed socket fails the next
			// write or flush, driving the reconnect path below.
			e.conn.Close()
			e.connDead = true
		}
	}
	// Retain before writing: position accounting must already cover this
	// frame when a write fails and the handshake replays the tail.
	e.pruneLocked()
	off := len(e.retain)
	e.retain = append(e.retain, make([]byte, frameSize)...)
	EncodeFrame(e.retain[off:], t)
	e.xseq++
	if e.conn != nil && !e.connDead {
		// bufio flushes on a full buffer; flush eagerly on punctuation
		// and every 128 frames so slow streams keep bounded latency.
		err := e.writeLocked(e.retain[off:off+frameSize], t.IsPunct() || e.xseq%128 == 0)
		if err == nil {
			e.written = e.xseq
			return
		}
		e.connDead = true
	}
	// The handshake replays every unacknowledged frame, this one
	// included; failure latches e.err.
	e.reconnectLocked()
}

// writeLocked writes p through the buffered writer under the write
// deadline, flushing if asked.
func (e *Export) writeLocked(p []byte, flush bool) error {
	if err := e.conn.SetWriteDeadline(time.Now().Add(e.opt.WriteTimeout)); err != nil {
		return err
	}
	if _, err := e.bw.Write(p); err != nil {
		return err
	}
	if flush {
		return e.bw.Flush()
	}
	return nil
}

func (e *Export) flushLocked() error {
	if err := e.conn.SetWriteDeadline(time.Now().Add(e.opt.WriteTimeout)); err != nil {
		return err
	}
	return e.bw.Flush()
}

// pruneLocked compacts the acknowledged prefix of the retain buffer once
// it exceeds pruneBytes, so a long-lived export retains O(unacked)
// frames, not O(stream).
func (e *Export) pruneLocked() {
	acked := e.acked.Load()
	if acked > e.xseq {
		acked = e.xseq
	}
	n := acked - e.retainBase
	if n*frameSize < pruneBytes {
		return
	}
	fresh := make([]byte, len(e.retain)-int(n)*frameSize)
	copy(fresh, e.retain[int(n)*frameSize:])
	e.retain = fresh
	e.retainBase = acked
}

// reconnectLocked (re)establishes the connection with capped, jittered
// exponential backoff under the retry budget, replaying unacknowledged
// frames through the resume handshake. It reports success; on failure
// the error is latched and unacked frames are counted dropped.
func (e *Export) reconnectLocked() bool {
	if e.conn != nil {
		e.conn.Close()
		e.conn, e.bw = nil, nil
	}
	e.connDead = false
	deadline := time.Now().Add(e.opt.RetryBudget)
	backoff := e.opt.BackoffMin
	var lastErr error
	for {
		conn, err := e.dial()
		if err == nil {
			if err = e.handshakeLocked(conn); err == nil {
				return true
			}
			conn.Close()
			if errors.Is(err, errNoResume) {
				lastErr = err
				break
			}
		}
		lastErr = err
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(e.jittered(backoff))
		if backoff *= 2; backoff > e.opt.BackoffMax {
			backoff = e.opt.BackoffMax
		}
	}
	unacked := e.xseq - e.acked.Load()
	e.dropped += unacked
	e.err = fmt.Errorf("xport: export %s: giving up after %v of reconnect attempts (%d unacked frames dropped): %w",
		e.name, e.opt.RetryBudget, unacked, lastErr)
	return false
}

// handshakeLocked runs the v2 preamble/resume exchange on a fresh
// connection and replays the tail the peer has not processed. On success
// the connection is installed and its ack reader started.
func (e *Export) handshakeLocked(conn net.Conn) error {
	hs := time.Now().Add(e.opt.HandshakeTimeout)
	if err := conn.SetWriteDeadline(hs); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(conn, 64*1024)
	bw.WriteString(magic)
	bw.WriteByte(version)
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := conn.SetReadDeadline(hs); err != nil {
		return err
	}
	var rb [8]byte
	if _, err := io.ReadFull(conn, rb[:]); err != nil {
		return fmt.Errorf("resume handshake: %w", err)
	}
	resume := binary.BigEndian.Uint64(rb[:])
	if resume < e.retainBase || resume > e.xseq {
		return fmt.Errorf("%w: peer resumes at frame %d, retained [%d, %d)",
			errNoResume, resume, e.retainBase, e.xseq)
	}
	// The resume position is also an ack: the previous connection's ack
	// stream may have died before reporting this far.
	e.ackTo(resume)
	if tail := e.retain[(resume-e.retainBase)*frameSize:]; len(tail) > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(e.opt.WriteTimeout)); err != nil {
			return err
		}
		if _, err := bw.Write(tail); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if e.written > resume {
			e.resent += e.written - resume
		}
	}
	e.written = e.xseq
	if e.everConnected {
		e.reconnects++
	} else {
		e.everConnected = true
	}
	// The ack reader owns reads from here on; clear the handshake read
	// deadline so it blocks until data or close.
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return err
	}
	e.conn, e.bw = conn, bw
	e.connDead = false
	go e.ackLoop(conn)
	return nil
}

// ackLoop reads cumulative acks from one connection until it dies,
// marking the connection dead if it is still the current one.
func (e *Export) ackLoop(conn net.Conn) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(conn, buf[:]); err != nil {
			e.mu.Lock()
			if e.conn == conn {
				e.connDead = true
			}
			e.mu.Unlock()
			return
		}
		e.ackTo(binary.BigEndian.Uint64(buf[:]))
	}
}

// ackTo advances acked monotonically (acks from an old connection may
// race a newer resume position).
func (e *Export) ackTo(a uint64) {
	for {
		cur := e.acked.Load()
		if a <= cur || e.acked.CompareAndSwap(cur, a) {
			return
		}
	}
}

func (e *Export) closeLocked() {
	if e.conn != nil {
		e.conn.Close()
		e.conn, e.bw = nil, nil
	}
}

// jittered returns a duration in [d/2, d) from the export's xorshift
// state, decorrelating concurrent exports' retry storms.
func (e *Export) jittered(d time.Duration) time.Duration {
	x := e.jit
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.jit = x
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + x%half)
}

// Import is a source operator that accepts upstream connections — across
// reconnects — and replays their tuples into the local PE exactly once.
// Its Run loop is the paper's "PE input port thread": receive,
// deserialize, execute downstream operators (via the scheduler's
// submitter).
type Import struct {
	name string
	ln   net.Listener

	// processed counts frames fully handled across all connections; it is
	// the resume position offered to a reconnecting exporter and is only
	// touched by the Run goroutine.
	processed uint64

	mu       sync.Mutex
	received uint64
	accepts  uint64
	err      error
}

// NewImport returns an Import accepting from ln. The Import owns the
// listener and closes it when Run returns.
func NewImport(name string, ln net.Listener) *Import {
	return &Import{name: name, ln: ln}
}

// Name implements graph.Operator.
func (im *Import) Name() string { return im.name }

// Process implements graph.Operator; sources receive no input.
func (im *Import) Process(graph.Submitter, tuple.Tuple, int) {}

// Received returns the number of data tuples submitted locally.
func (im *Import) Received() uint64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.received
}

// Accepts returns how many upstream connections were served.
func (im *Import) Accepts() uint64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.accepts
}

// Err returns the first protocol error, if any. Transport errors are not
// reported here: they are survivable (the exporter reconnects and
// resumes), so the import just re-accepts.
func (im *Import) Err() error {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.err
}

func (im *Import) setErr(err error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.err == nil {
		im.err = err
	}
}

// Run implements graph.Source: accept a connection, serve it until final
// punctuation or failure, and — because a broken connection is the
// exporter's problem to redial — keep accepting until the stream
// actually finishes, a protocol error latches, or stop closes.
func (im *Import) Run(out graph.Submitter, stop <-chan struct{}) {
	defer im.ln.Close()
	for {
		conn, err := im.accept(stop)
		if err != nil {
			if !errors.Is(err, errStopped) {
				im.setErr(err)
			}
			return
		}
		im.mu.Lock()
		im.accepts++
		im.mu.Unlock()
		done := im.serve(conn, out, stop)
		conn.Close()
		if done {
			return
		}
	}
}

// serve handles one connection. It reports true when Run should return
// (final punctuation, stop, or an unrecoverable protocol error) and
// false on a transport failure the exporter can repair by reconnecting.
func (im *Import) serve(conn net.Conn, out graph.Submitter, stop <-chan struct{}) (done bool) {
	br := bufio.NewReaderSize(conn, 64*1024)
	var pre [len(magic) + 1]byte
	if err := im.readFull(conn, br, pre[:], stop); err != nil {
		// A peer that dies before completing the preamble is a transport
		// casualty, not a protocol violation; await its reconnect.
		return errors.Is(err, errStopped)
	}
	if string(pre[:len(magic)]) != magic || pre[len(magic)] != version {
		im.setErr(fmt.Errorf("xport: import %s: bad preamble %q v%d", im.name, pre[:len(magic)], pre[len(magic)]))
		return true
	}
	// Resume handshake: tell the exporter how many frames are already
	// processed so it replays exactly the rest.
	if err := im.writeAck(conn); err != nil {
		return false
	}
	var buf [frameSize]byte
	for {
		if err := im.readFull(conn, br, buf[:], stop); err != nil {
			return errors.Is(err, errStopped)
		}
		t, err := DecodeFrame(buf[:])
		if err != nil {
			im.setErr(err)
			return true
		}
		// Submit before counting the frame processed: a frame is only
		// resumable-past once its tuple is locally owned.
		switch t.Kind {
		case tuple.FinalMark:
			// Upstream PE drained. Acknowledge the final frame so the
			// exporter's drain wait completes; the PE emits local final
			// punctuation when Run returns.
			im.processed++
			_ = im.writeAck(conn)
			return true
		case tuple.WindowMark:
			out.Submit(tuple.Window(), 0)
		default:
			im.mu.Lock()
			im.received++
			im.mu.Unlock()
			out.Submit(t, 0)
		}
		im.processed++
		if im.processed%ackEvery == 0 {
			if err := im.writeAck(conn); err != nil {
				return false
			}
		}
	}
}

// writeAck sends the cumulative processed count upstream; it doubles as
// the resume position at connection start.
func (im *Import) writeAck(conn net.Conn) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], im.processed)
	if err := conn.SetWriteDeadline(time.Now().Add(ackDeadline)); err != nil {
		return err
	}
	_, err := conn.Write(b[:])
	return err
}

var errStopped = errors.New("xport: stopped")

// accept waits for the upstream connection, polling stop.
func (im *Import) accept(stop <-chan struct{}) (net.Conn, error) {
	for {
		select {
		case <-stop:
			return nil, errStopped
		default:
		}
		if d, ok := im.ln.(interface{ SetDeadline(time.Time) error }); ok {
			if err := d.SetDeadline(time.Now().Add(ioDeadline)); err != nil {
				return nil, err
			}
		}
		conn, err := im.ln.Accept()
		if err == nil {
			return conn, nil
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			continue
		}
		return nil, err
	}
}

// readFull fills buf from br, renewing deadlines and honoring stop.
func (im *Import) readFull(conn net.Conn, br *bufio.Reader, buf []byte, stop <-chan struct{}) error {
	got := 0
	for got < len(buf) {
		select {
		case <-stop:
			return errStopped
		default:
		}
		if err := conn.SetReadDeadline(time.Now().Add(ioDeadline)); err != nil {
			return err
		}
		n, err := br.Read(buf[got:])
		got += n
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			if errors.Is(err, io.EOF) && got > 0 && got < len(buf) {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

var (
	_ graph.Source = (*Import)(nil)
	_ graph.Puncts = (*Export)(nil)
)
