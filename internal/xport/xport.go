// Package xport connects processing elements over the network, the way
// IBM Streams runs distributed applications: streams that cross PE
// boundaries are serialized onto TCP connections, and each PE input port
// has its own thread that receives data, deserializes tuples, and
// executes the receiving operators (§2.3 — one more kind of thread the
// operator scheduler does not control but must coexist with).
//
// An Export operator terminates a stream in one PE and writes
// length-delimited tuple frames to a connection; an Import source opens
// the peer PE's side, reading frames and submitting tuples. Final
// punctuation travels in-band, so a bounded upstream PE drains its
// downstream PE exactly like a fused graph would.
package xport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"streams/internal/graph"
	"streams/internal/tuple"
)

// Wire format: a fixed preamble per connection, then frames.
//
//	preamble: "SPLX" version(1)
//	frame:    kind(1) seq(8) words(8×8)
//
// Tuple.Ref is not transmitted: like the product, typed payloads need
// per-type serializers, and the evaluation workloads carry their payload
// in the inline words.
const (
	magic      = "SPLX"
	version    = 1
	frameSize  = 1 + 8 + 8*tuple.PayloadWords
	ioDeadline = 200 * time.Millisecond
)

// EncodeFrame serializes t into buf (which must hold frameSize bytes).
func EncodeFrame(buf []byte, t tuple.Tuple) {
	buf[0] = byte(t.Kind)
	binary.BigEndian.PutUint64(buf[1:9], t.Seq)
	for i, w := range t.Words {
		binary.BigEndian.PutUint64(buf[9+8*i:], w)
	}
}

// DecodeFrame deserializes a frame.
func DecodeFrame(buf []byte) (tuple.Tuple, error) {
	var t tuple.Tuple
	if len(buf) < frameSize {
		return t, fmt.Errorf("xport: short frame (%d bytes)", len(buf))
	}
	k := tuple.Kind(buf[0])
	switch k {
	case tuple.Data, tuple.WindowMark, tuple.FinalMark:
		t.Kind = k
	default:
		return t, fmt.Errorf("xport: unknown tuple kind %d", buf[0])
	}
	t.Seq = binary.BigEndian.Uint64(buf[1:9])
	for i := range t.Words {
		t.Words[i] = binary.BigEndian.Uint64(buf[9+8*i:])
	}
	return t, nil
}

// Export is a sink operator that forwards every tuple to a peer PE over
// a connection. Its local state (the connection and write buffer) is
// lock-protected because under the dynamic model any thread may execute
// it.
type Export struct {
	name string
	dial func() (net.Conn, error)

	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	sent uint64
	err  error
}

// NewExport returns an Export that lazily dials its peer on the first
// tuple. Name is diagnostic.
func NewExport(name string, dial func() (net.Conn, error)) *Export {
	return &Export{name: name, dial: dial}
}

// Name implements graph.Operator.
func (e *Export) Name() string { return e.name }

// Sent returns the number of frames written (including punctuation).
func (e *Export) Sent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent
}

// Err returns the first transport error, if any.
func (e *Export) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Process implements graph.Operator.
func (e *Export) Process(_ graph.Submitter, t tuple.Tuple, _ int) {
	e.send(t)
}

// OnPunct implements graph.Puncts: window marks travel in-band. (Final
// marks are sent by Finish so they are emitted exactly once, after all
// data.)
func (e *Export) OnPunct(_ graph.Submitter, k tuple.Kind, _ int) {
	if k == tuple.WindowMark {
		e.send(tuple.Window())
	}
}

// Finish implements sched.Finalizer: send the final punctuation, flush
// and close.
func (e *Export) Finish(graph.Submitter) {
	e.send(tuple.Final())
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bw != nil {
		if err := e.bw.Flush(); err != nil && e.err == nil {
			e.err = err
		}
	}
	if e.conn != nil {
		if err := e.conn.Close(); err != nil && e.err == nil {
			e.err = err
		}
		e.conn, e.bw = nil, nil
	}
}

func (e *Export) send(t tuple.Tuple) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	if e.conn == nil {
		conn, err := e.dial()
		if err != nil {
			e.err = fmt.Errorf("xport: export %s dial: %w", e.name, err)
			return
		}
		e.conn = conn
		e.bw = bufio.NewWriterSize(conn, 64*1024)
		if _, err := e.bw.WriteString(magic); err != nil {
			e.err = err
			return
		}
		if err := e.bw.WriteByte(version); err != nil {
			e.err = err
			return
		}
	}
	var buf [frameSize]byte
	EncodeFrame(buf[:], t)
	if _, err := e.bw.Write(buf[:]); err != nil {
		e.err = err
		return
	}
	e.sent++
	// bufio flushes on a full buffer; flush eagerly on punctuation and
	// every 128 frames so slow streams keep bounded latency.
	if t.IsPunct() || e.sent%128 == 0 {
		if err := e.bw.Flush(); err != nil {
			e.err = err
		}
	}
}

// Import is a source operator that accepts one upstream connection and
// replays its tuples into the local PE. Its Run loop is exactly the
// paper's "PE input port thread": receive, deserialize, execute
// downstream operators (via the scheduler's submitter).
type Import struct {
	name string
	ln   net.Listener

	mu       sync.Mutex
	received uint64
	err      error
}

// NewImport returns an Import accepting from ln. The Import owns the
// listener and closes it when Run returns.
func NewImport(name string, ln net.Listener) *Import {
	return &Import{name: name, ln: ln}
}

// Name implements graph.Operator.
func (im *Import) Name() string { return im.name }

// Process implements graph.Operator; sources receive no input.
func (im *Import) Process(graph.Submitter, tuple.Tuple, int) {}

// Received returns the number of data tuples submitted locally.
func (im *Import) Received() uint64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.received
}

// Err returns the first transport error, if any.
func (im *Import) Err() error {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.err
}

func (im *Import) setErr(err error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.err == nil {
		im.err = err
	}
}

// Run implements graph.Source.
func (im *Import) Run(out graph.Submitter, stop <-chan struct{}) {
	defer im.ln.Close()
	conn, err := im.accept(stop)
	if err != nil {
		if !errors.Is(err, errStopped) {
			im.setErr(err)
		}
		return
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64*1024)

	// Preamble.
	var pre [len(magic) + 1]byte
	if err := im.readFull(conn, br, pre[:], stop); err != nil {
		im.setErr(fmt.Errorf("xport: import %s preamble: %w", im.name, err))
		return
	}
	if string(pre[:len(magic)]) != magic || pre[len(magic)] != version {
		im.setErr(fmt.Errorf("xport: import %s: bad preamble %q v%d", im.name, pre[:len(magic)], pre[len(magic)]))
		return
	}

	var buf [frameSize]byte
	for {
		if err := im.readFull(conn, br, buf[:], stop); err != nil {
			if !errors.Is(err, errStopped) && !errors.Is(err, io.EOF) {
				im.setErr(err)
			}
			return
		}
		t, err := DecodeFrame(buf[:])
		if err != nil {
			im.setErr(err)
			return
		}
		switch t.Kind {
		case tuple.FinalMark:
			// Upstream PE drained: this source is done; the PE emits
			// local final punctuation when Run returns.
			return
		case tuple.WindowMark:
			out.Submit(tuple.Window(), 0)
		default:
			im.mu.Lock()
			im.received++
			im.mu.Unlock()
			out.Submit(t, 0)
		}
	}
}

var errStopped = errors.New("xport: stopped")

// accept waits for the upstream connection, polling stop.
func (im *Import) accept(stop <-chan struct{}) (net.Conn, error) {
	for {
		select {
		case <-stop:
			return nil, errStopped
		default:
		}
		if d, ok := im.ln.(interface{ SetDeadline(time.Time) error }); ok {
			if err := d.SetDeadline(time.Now().Add(ioDeadline)); err != nil {
				return nil, err
			}
		}
		conn, err := im.ln.Accept()
		if err == nil {
			return conn, nil
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			continue
		}
		return nil, err
	}
}

// readFull fills buf from br, renewing deadlines and honoring stop.
func (im *Import) readFull(conn net.Conn, br *bufio.Reader, buf []byte, stop <-chan struct{}) error {
	got := 0
	for got < len(buf) {
		select {
		case <-stop:
			return errStopped
		default:
		}
		if err := conn.SetReadDeadline(time.Now().Add(ioDeadline)); err != nil {
			return err
		}
		n, err := br.Read(buf[got:])
		got += n
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			if errors.Is(err, io.EOF) && got > 0 && got < len(buf) {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

var (
	_ graph.Source = (*Import)(nil)
	_ graph.Puncts = (*Export)(nil)
)
