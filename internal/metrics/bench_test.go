package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// unpaddedCounter is the deliberately stride-1 control for the
// cache-line audit: shards are adjacent words, so up to eight of them
// share one 64-byte line and parallel writers ping-pong it between
// cores. It exists only to give BenchmarkCounterShards a before/after;
// production code always uses Counter's shardStride layout.
type unpaddedCounter struct {
	shards []atomic.Uint64
	mask   uint64
}

func newUnpaddedCounter(shards int) *unpaddedCounter {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &unpaddedCounter{shards: make([]atomic.Uint64, n), mask: uint64(n - 1)}
}

func (c *unpaddedCounter) Add(tid int, n uint64) {
	c.shards[uint64(tid)&c.mask].Add(n)
}

func (c *unpaddedCounter) total() uint64 {
	var t uint64
	for i := range c.shards {
		t += c.shards[i].Load()
	}
	return t
}

// BenchmarkCounterShards verifies the layout rule documented on
// shardStride: each writer increments only its own shard, so with the
// padded layout the adds are uncontended and per-op cost stays flat as
// writers are added, while the unpadded stride-1 control puts several
// shards on one cache line and slows down with every extra writer
// (false sharing). The padded variant must not lose to the unpadded one
// at any width, and the gap must widen with parallelism.
func BenchmarkCounterShards(b *testing.B) {
	for _, impl := range []string{"padded", "unpadded"} {
		for _, writers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/writers=%d", impl, writers), func(b *testing.B) {
				var add func(tid int, n uint64)
				var total func() uint64
				if impl == "padded" {
					c := NewCounter(writers)
					add, total = c.Add, c.Total
				} else {
					c := newUnpaddedCounter(writers)
					add, total = c.Add, c.total
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					n := b.N / writers
					if w < b.N%writers {
						n++
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							add(w, 1)
						}
					}(w, n)
				}
				wg.Wait()
				b.StopTimer()
				if got := total(); got != uint64(b.N) {
					b.Fatalf("total %d, want %d", got, b.N)
				}
			})
		}
	}
}
