// Package metrics provides the measurement plumbing for the runtime:
// sharded tuple counters that do not reintroduce the global-data
// contention the scheduler works to avoid, periodic throughput sampling,
// and the small statistics helpers the experiment harness uses for its
// mean/stddev error bars.
package metrics

import (
	"math"
	"sync/atomic"
)

// shardStride spaces counter shards so each lives on its own cache line
// (16 × 8 bytes = 128 bytes, covering Power8-style lines too).
//
// Layout rule (the cache-line audit, shared with sched.Thread): any
// word one thread writes at per-tuple or per-batch rate must sit at
// least 128 bytes from any word a different thread writes or polls.
// Shard 0 starts at offset 0 of its own allocation and successive
// shards are a full stride apart, so no two shards — and no shard and
// any neighboring heap object's hot field — share a line.
// BenchmarkCounterShards holds the line: it compares this layout
// against a deliberately unpadded stride-1 variant under parallel
// writers.
const shardStride = 16

// Counter is a monotonically increasing tuple counter sharded across a
// fixed number of slots. Each executing thread increments its own shard
// (by thread ID), so the hot path is a single uncontended atomic add;
// readers sum the shards. This mirrors the paper's principle of keeping
// threads off shared cache lines (§4.1.2).
//
// Snapshot contract: a Counter is strictly monotonic — there is
// deliberately no Reset, so a Total read never races with reuse and
// every read is a valid lower bound of every later read. Code that
// derives a ratio or difference across *several* counters (steals per
// spill, dead-letters versus delivered) must not call Total on each in
// sequence: the counters advance between the calls and the ratio comes
// out torn. Read them through the owning bundle's Snapshot method
// (Contention.Snapshot, Faults.Snapshot, the scheduler's Stats), which
// reads the whole set in one pass so the values are mutually consistent
// to within the increments in flight during that pass.
type Counter struct {
	shards []atomic.Uint64
	// mask selects a shard from a thread ID with one AND instead of the
	// modulo-of-a-division the hot path would otherwise recompute on
	// every call; the shard count is rounded up to a power of two at
	// construction to make that possible.
	mask uint64
}

// NewCounter returns a counter with at least the given number of shards
// (rounded up to a power of two); callers pass the maximum number of
// executing threads. A non-positive value is treated as 1.
func NewCounter(shards int) *Counter {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Counter{
		shards: make([]atomic.Uint64, n*shardStride),
		mask:   uint64(n - 1),
	}
}

// Add increments shard tid by n. tid values beyond the shard count wrap,
// preserving correctness (only spreading degrades). Batch-friendly by
// design: charging a whole drained batch with one Add(tid, n) costs the
// same single uncontended atomic add as charging one tuple, so callers
// moving tuples in batches should accumulate locally and charge once.
func (c *Counter) Add(tid int, n uint64) {
	c.shards[(uint64(tid)&c.mask)*shardStride].Add(n)
}

// Total sums all shards. The result is a lower bound of the true count at
// return time, exactly like reading any concurrently updated metric.
func (c *Counter) Total() uint64 {
	var t uint64
	for i := 0; i < len(c.shards); i += shardStride {
		t += c.shards[i].Load()
	}
	return t
}

// Contention bundles the scheduler's free-list contention meters, one
// sharded Counter per event kind so the measurement itself stays off
// shared cache lines. The scheduler charges them on its slow paths only
// (a failed push, a steal, a spill); the hot path pays nothing.
type Contention struct {
	// PushFail counts failed pushes to the global free list (a slot in
	// transit, or — out of an abundance of accounting — a full list).
	PushFail *Counter
	// PopFail counts global free-list pops that came back empty-handed;
	// the MPMC cannot distinguish empty from contended, so this is the
	// union of both.
	PopFail *Counter
	// Steal counts ports taken from another thread's shard.
	Steal *Counter
	// StealMiss counts steal sweeps that obtained at least one port but
	// found no runnable work among them.
	StealMiss *Counter
	// Spill counts local-shard overflows redirected to the global list.
	Spill *Counter
	// Lateral counts port hints released into a neighbor's inbox under
	// k-relaxation (relax width > 1) instead of the releaser's own
	// shard.
	Lateral *Counter
	// StealSMT/StealLLC/StealRemote break Steal down by topology
	// distance between thief and victim: same physical core, same
	// last-level cache, and cross-domain respectively. Their sum equals
	// Steal (to within increments in flight).
	StealSMT    *Counter
	StealLLC    *Counter
	StealRemote *Counter
}

// NewContention returns a Contention set sized for the given number of
// executing threads (see NewCounter).
func NewContention(shards int) *Contention {
	return &Contention{
		PushFail:    NewCounter(shards),
		PopFail:     NewCounter(shards),
		Steal:       NewCounter(shards),
		StealMiss:   NewCounter(shards),
		Spill:       NewCounter(shards),
		Lateral:     NewCounter(shards),
		StealSMT:    NewCounter(shards),
		StealLLC:    NewCounter(shards),
		StealRemote: NewCounter(shards),
	}
}

// ContentionSnapshot is a point-in-time reading of a Contention set,
// with the same lower-bound semantics as Counter.Total. Readers that
// present more than one of these values together (panels, the debug
// endpoint) must take one snapshot and render from it, never mix
// values from two snapshots.
type ContentionSnapshot struct {
	PushFail    uint64 `json:"push_fail"`
	PopFail     uint64 `json:"pop_fail"`
	Steal       uint64 `json:"steal"`
	StealMiss   uint64 `json:"steal_miss"`
	Spill       uint64 `json:"spill"`
	Lateral     uint64 `json:"lateral"`
	StealSMT    uint64 `json:"steal_smt"`
	StealLLC    uint64 `json:"steal_llc"`
	StealRemote uint64 `json:"steal_remote"`
}

// Events sums the snapshot's contention signals — the events-per-tuple
// numerator the relaxation controller watches. Lateral is excluded: it
// is a consequence of widening, and feeding it back would make the
// controller self-exciting.
func (s ContentionSnapshot) Events() uint64 {
	return s.PushFail + s.PopFail + s.Steal + s.StealMiss + s.Spill
}

// Snapshot sums every meter.
func (c *Contention) Snapshot() ContentionSnapshot {
	return ContentionSnapshot{
		PushFail:    c.PushFail.Total(),
		PopFail:     c.PopFail.Total(),
		Steal:       c.Steal.Total(),
		StealMiss:   c.StealMiss.Total(),
		Spill:       c.Spill.Total(),
		Lateral:     c.Lateral.Total(),
		StealSMT:    c.StealSMT.Total(),
		StealLLC:    c.StealLLC.Total(),
		StealRemote: c.StealRemote.Total(),
	}
}

// Faults bundles the runtime's fault-containment meters, one sharded
// Counter per event kind. Like Contention, these are charged only on
// slow paths (a recovered panic, a dead-lettered tuple, a watchdog
// report); the fault-free hot path never touches them.
type Faults struct {
	// OpPanics counts operator panics recovered by the containment layer
	// (injected panics included).
	OpPanics *Counter
	// DeadLetters counts data tuples that were consumed from a queue but
	// not processed: the tuple whose execution panicked, and every tuple
	// subsequently routed to a quarantined operator. Tuple conservation
	// is delivered + dead-lettered == generated.
	DeadLetters *Counter
	// Quarantines counts operators quarantined after accumulating their
	// strike budget.
	Quarantines *Counter
	// WatchdogStalls counts watchdog reports of a scheduler thread stuck
	// in operator code past the stall threshold.
	WatchdogStalls *Counter
}

// NewFaults returns a Faults set sized for the given number of executing
// threads (see NewCounter).
func NewFaults(shards int) *Faults {
	return &Faults{
		OpPanics:       NewCounter(shards),
		DeadLetters:    NewCounter(shards),
		Quarantines:    NewCounter(shards),
		WatchdogStalls: NewCounter(shards),
	}
}

// FaultsSnapshot is a point-in-time reading of a Faults set, with the
// same lower-bound semantics as Counter.Total.
type FaultsSnapshot struct {
	OpPanics       uint64 `json:"op_panics"`
	DeadLetters    uint64 `json:"dead_letters"`
	Quarantines    uint64 `json:"quarantines"`
	WatchdogStalls uint64 `json:"watchdog_stalls"`
}

// Snapshot sums every meter.
func (f *Faults) Snapshot() FaultsSnapshot {
	return FaultsSnapshot{
		OpPanics:       f.OpPanics.Total(),
		DeadLetters:    f.DeadLetters.Total(),
		Quarantines:    f.Quarantines.Total(),
		WatchdogStalls: f.WatchdogStalls.Total(),
	}
}

// Chain bundles the scheduler's inline chain-execution meters, one
// sharded Counter per event kind. Links and Tuples are charged once per
// chained link (a batch, not a tuple), so even a run that chains every
// flush pays two uncontended atomic adds per batch; the stop meters are
// charged only when a chain attempt declines.
type Chain struct {
	// Starts counts chain sequences entered from an unchained execution
	// frame (a root drain). Links/Starts is the mean chain length.
	Starts *Counter
	// Links counts inline link executions; each one bypassed a queue
	// push, a free-list hint cycle, and a cross-thread drain hand-off.
	Links *Counter
	// Tuples counts tuples moved through chained links without ever
	// touching a queue (the bypass volume).
	Tuples *Counter
	// DepthStops counts flushes to a chainable port that fell back to
	// the queue because the link-depth budget was exhausted.
	DepthStops *Counter
	// BudgetStops counts chain attempts declined because the per-drain
	// tuple budget was exhausted.
	BudgetStops *Counter
	// LockMisses counts chain attempts that lost the destination's
	// consumer try-lock to a concurrent drainer.
	LockMisses *Counter
	// Occupied counts chain attempts declined because the destination
	// queue held tuples (chaining ahead of them would break per-stream
	// FIFO).
	Occupied *Counter
}

// NewChain returns a Chain set sized for the given number of executing
// threads (see NewCounter).
func NewChain(shards int) *Chain {
	return &Chain{
		Starts:      NewCounter(shards),
		Links:       NewCounter(shards),
		Tuples:      NewCounter(shards),
		DepthStops:  NewCounter(shards),
		BudgetStops: NewCounter(shards),
		LockMisses:  NewCounter(shards),
		Occupied:    NewCounter(shards),
	}
}

// ChainSnapshot is a point-in-time reading of a Chain set, with the
// same lower-bound semantics as Counter.Total.
type ChainSnapshot struct {
	Starts      uint64 `json:"starts"`
	Links       uint64 `json:"links"`
	Tuples      uint64 `json:"tuples"`
	DepthStops  uint64 `json:"depth_stops"`
	BudgetStops uint64 `json:"budget_stops"`
	LockMisses  uint64 `json:"lock_misses"`
	Occupied    uint64 `json:"occupied"`
}

// Snapshot sums every meter.
func (c *Chain) Snapshot() ChainSnapshot {
	return ChainSnapshot{
		Starts:      c.Starts.Total(),
		Links:       c.Links.Total(),
		Tuples:      c.Tuples.Total(),
		DepthStops:  c.DepthStops.Total(),
		BudgetStops: c.BudgetStops.Total(),
		LockMisses:  c.LockMisses.Total(),
		Occupied:    c.Occupied.Total(),
	}
}

// VM bundles the bytecode-dispatch meters: how many operators compiled
// to programs, how often the scheduler ran fused superinstruction
// batches, the tuple volume through those fused loops, and how often a
// fused attempt fell back to per-operator dispatch.
type VM struct {
	// Programs counts operator programs installed at graph build
	// (charged once per fused run set, not per tuple).
	Programs *Counter
	// FusedRuns counts chain batches executed as one fused program.
	FusedRuns *Counter
	// FusedTuples counts tuples pushed through fused dispatch loops —
	// each skipped per-operator Process calls and Submitter hops.
	FusedTuples *Counter
	// Fallbacks counts chain batches that were eligible for fused
	// dispatch but declined (locks, occupancy, budget, puncts) and ran
	// the per-operator path instead.
	Fallbacks *Counter
	// VecBatches counts fused batches executed through the vectorized
	// batch-at-a-time machine (one dispatch per instruction per batch).
	VecBatches *Counter
	// VecRows counts rows pushed through vectorized lanes.
	VecRows *Counter
	// VecFallbacks counts fused batches that ran the scalar dispatch
	// loop instead: no vectorized plan, batch under the program's
	// cutoff, or a panic-triggered scalar replay.
	VecFallbacks *Counter
	// VecAborts counts the replay subset of VecFallbacks: batches whose
	// vectorized compute phase panicked mid-batch (emitting nothing)
	// and were replayed tuple-at-a-time. Each such batch pays the
	// vectorized compute cost AND the full scalar run, so a recurring
	// per-batch fault shows here, distinct from the benign "program
	// declined vectorization" fall-backs.
	VecAborts *Counter
}

// NewVM returns a VM meter set sized for the given number of executing
// threads (see NewCounter).
func NewVM(shards int) *VM {
	return &VM{
		Programs:     NewCounter(shards),
		FusedRuns:    NewCounter(shards),
		FusedTuples:  NewCounter(shards),
		Fallbacks:    NewCounter(shards),
		VecBatches:   NewCounter(shards),
		VecRows:      NewCounter(shards),
		VecFallbacks: NewCounter(shards),
		VecAborts:    NewCounter(shards),
	}
}

// VMSnapshot is a point-in-time reading of a VM set, with the same
// lower-bound semantics as Counter.Total.
type VMSnapshot struct {
	Programs     uint64 `json:"programs"`
	FusedRuns    uint64 `json:"fused_runs"`
	FusedTuples  uint64 `json:"fused_tuples"`
	Fallbacks    uint64 `json:"fallbacks"`
	VecBatches   uint64 `json:"vec_batches"`
	VecRows      uint64 `json:"vec_rows"`
	VecFallbacks uint64 `json:"vec_fallbacks"`
	VecAborts    uint64 `json:"vec_aborts"`
}

// Snapshot sums every meter.
func (v *VM) Snapshot() VMSnapshot {
	return VMSnapshot{
		Programs:     v.Programs.Total(),
		FusedRuns:    v.FusedRuns.Total(),
		FusedTuples:  v.FusedTuples.Total(),
		Fallbacks:    v.Fallbacks.Total(),
		VecBatches:   v.VecBatches.Total(),
		VecRows:      v.VecRows.Total(),
		VecFallbacks: v.VecFallbacks.Total(),
		VecAborts:    v.VecAborts.Total(),
	}
}

// Ingest bundles the admission-control meters for the network front
// end: tuple dispositions at the admission seam (admitted past the
// token bucket into a tenant queue, throttled by the bucket, shed by a
// queue-overflow or priority policy), plus connection-level events.
type Ingest struct {
	// Admitted counts tuples accepted into a tenant queue.
	Admitted *Counter
	// Shed counts tuples dropped by a shed policy: queue overflow
	// under shed-oldest/shed-newest, or best-effort tuples refused at
	// admission while the runtime is backlogged.
	Shed *Counter
	// Throttled counts tuples rejected by a tenant's token bucket.
	Throttled *Counter
	// Rejected counts tuples refused for structural reasons: unknown
	// tenant, malformed frame, or arrival after drain began.
	Rejected *Counter
	// Conns counts accepted client connections.
	Conns *Counter
	// Evicted counts connections closed by the idle/slow-client
	// evictor rather than by the client.
	Evicted *Counter
}

// NewIngest returns an Ingest meter set sized for the given number of
// concurrently-counting threads (see NewCounter).
func NewIngest(shards int) *Ingest {
	return &Ingest{
		Admitted:  NewCounter(shards),
		Shed:      NewCounter(shards),
		Throttled: NewCounter(shards),
		Rejected:  NewCounter(shards),
		Conns:     NewCounter(shards),
		Evicted:   NewCounter(shards),
	}
}

// IngestSnapshot is a point-in-time reading of an Ingest set, with the
// same lower-bound semantics as Counter.Total.
type IngestSnapshot struct {
	Admitted  uint64 `json:"admitted"`
	Shed      uint64 `json:"shed"`
	Throttled uint64 `json:"throttled"`
	Rejected  uint64 `json:"rejected"`
	Conns     uint64 `json:"conns"`
	Evicted   uint64 `json:"evicted"`
}

// Snapshot sums every meter.
func (g *Ingest) Snapshot() IngestSnapshot {
	return IngestSnapshot{
		Admitted:  g.Admitted.Total(),
		Shed:      g.Shed.Total(),
		Throttled: g.Throttled.Total(),
		Rejected:  g.Rejected.Total(),
		Conns:     g.Conns.Total(),
		Evicted:   g.Evicted.Total(),
	}
}

// Welford accumulates streaming mean and standard deviation (Welford's
// algorithm). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the sample standard deviation (0 with fewer than two
// observations).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}
