package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(4)
	h.Record(0, 1)           // bucket 0: [1,2)
	h.Record(0, 0)           // clamps to bucket 0
	h.Record(1, 3)           // bucket 1: [2,4)
	h.Record(2, 1024)        // bucket 10: [1024,2048)
	h.Record(3, time.Second) // bucket 29 (2^29 ≤ 1e9 < 2^30)
	s := h.Snapshot()
	if s.Total != 5 {
		t.Fatalf("total = %d, want 5", s.Total)
	}
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[10] != 1 || s.Counts[29] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1)
	// 90 fast samples in [1024,2048), 10 slow in [2^20, 2^21).
	for i := 0; i < 90; i++ {
		h.Record(0, 1500)
	}
	for i := 0; i < 10; i++ {
		h.Record(0, 1<<20+5)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 2048 {
		t.Fatalf("p50 = %v, want 2048ns", got)
	}
	if got := s.Quantile(0.99); got != 1<<21 {
		t.Fatalf("p99 = %v, want %v", got, time.Duration(1<<21))
	}
	if got := s.Min(); got != 1024 {
		t.Fatalf("min = %v, want 1024ns", got)
	}
	if got := s.Max(); got != 1<<21 {
		t.Fatalf("max = %v, want %v", got, time.Duration(1<<21))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var nilH *Histogram
	s := nilH.Snapshot()
	if s.Total != 0 || s.Quantile(0.99) != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatalf("nil histogram snapshot not empty: %+v", s)
	}
	if s.String() != "no samples" {
		t.Fatalf("empty String() = %q", s.String())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(1)
	h.Record(0, 100)
	s := h.Snapshot()
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Fatal("out-of-range quantiles not clamped")
	}
}

// TestHistogramConcurrent hammers shards from many goroutines while a
// reader snapshots; under -race this proves the histogram is
// data-race-free, and the final count proves no increment is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(8)
	const perWorker = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot()
			}
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(w, time.Duration(1+i%4096))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := h.Snapshot().Total; got != 8*perWorker {
		t.Fatalf("total = %d, want %d", got, 8*perWorker)
	}
}

func TestHistogramShardWrap(t *testing.T) {
	h := NewHistogram(2)
	// tids beyond the shard count must wrap, not panic.
	h.Record(100, 50)
	h.Record(-1, 50)
	if got := h.Snapshot().Total; got != 2 {
		t.Fatalf("total = %d, want 2", got)
	}
}
